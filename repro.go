// Package repro is a scalable capture-and-comparison toolkit for studying
// the reproducibility of HPC applications, a from-scratch Go
// implementation of "Towards Affordable Reproducibility Using Scalable
// Capture and Comparison of Intermediate Multi-Run Results"
// (MIDDLEWARE '24).
//
// The core idea: instead of comparing the final outputs of two application
// runs — which says nothing about where or when they diverged — capture
// intermediate checkpoints during both runs and compare the checkpoint
// histories. To make that affordable at scale, each checkpoint is
// summarized at capture time into compact Merkle-tree metadata whose
// leaves are error-bounded hashes of fixed-size chunks: two values
// differing by more than the user's absolute error bound ε always hash
// differently, values within ε usually hash identically. Comparing two
// checkpoints then starts as a pruned tree diff that touches no checkpoint
// data at all, and only the few candidate chunks whose hashes differ are
// streamed back from the parallel file system (overlapping I/O with
// comparison) for an exact element-wise check.
//
// # Quick start
//
//	store, _ := repro.NewStore(dir, repro.LustreModel())
//	opts := repro.Options{Epsilon: 1e-6, ChunkSize: 64 << 10}
//
//	// At checkpoint time (both runs):
//	repro.WriteCheckpoint(store, meta, fields)
//	m, _, _ := repro.BuildAndSave(ctx, store, repro.CheckpointName("run1", 10, 0), opts)
//
//	// At analysis time:
//	res, _ := repro.Compare(ctx, store, nameRun1, nameRun2, opts)
//	for _, d := range res.Diffs {
//	    fmt.Println(d.Field, len(d.Indices), "elements diverged")
//	}
//
// See the runnable programs under examples/ for full workflows, including
// driving the bundled HACC-style cosmology simulation, comparing whole
// checkpoint histories, and the continuous-integration golden-tree mode.
//
// # Virtual performance clock
//
// All performance-sensitive layers (PFS, async I/O, device kernels) do
// their real work AND report a virtual duration from a calibrated cost
// model of the paper's evaluation platform (Lustre + A100 GPUs), so the
// performance studies in cmd/experiments reproduce the paper's
// comparative shapes on laptop hardware. Correctness results never depend
// on the virtual clock.
package repro

import (
	"context"
	"sync"

	"repro/internal/aio"
	"repro/internal/cas"
	"repro/internal/ckpt"
	"repro/internal/compare"
	"repro/internal/device"
	"repro/internal/errbound"
	"repro/internal/merkle"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/retry"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/wal"
)

// Core comparison API.
type (
	// Options parameterizes metadata construction and comparison.
	Options = compare.Options
	// Result reports one checkpoint-pair comparison.
	Result = compare.Result
	// FieldDiff lists the divergent elements of one field.
	FieldDiff = compare.FieldDiff
	// Metadata is the compact Merkle representation of a checkpoint.
	Metadata = compare.Metadata
	// BuildStats reports metadata construction cost.
	BuildStats = compare.BuildStats
	// FieldMeta is one field's tree within a Metadata container.
	FieldMeta = compare.FieldMeta
	// Tree is the flattened error-bounded Merkle tree of one field.
	Tree = merkle.Tree
	// Method selects a comparison approach.
	Method = compare.Method
	// HistoryReport is a whole-history multi-run comparison.
	HistoryReport = compare.HistoryReport
	// PairReport is one aligned checkpoint pair within a history.
	PairReport = compare.PairReport
	// Topology selects the pair coverage of a group comparison.
	Topology = compare.Topology
	// GroupReport is an N-run group comparison's outcome.
	GroupReport = compare.GroupReport
	// GroupPairReport is one pair within a group comparison.
	GroupPairReport = compare.GroupPairReport
	// RetryPolicy caps and paces storage retries (Options.Retry).
	RetryPolicy = retry.Policy
)

// DefaultRetryPolicy returns the storage retry policy used when
// Options.Retry is the zero value: three attempts with capped exponential
// backoff, priced on the virtual clock.
func DefaultRetryPolicy() RetryPolicy { return retry.Default() }

// Service plane API: lifecycle-owned resources and admission-controlled
// sessions (internal/service). Every one-shot entry point below is a
// thin wrapper over a session on the process-wide default plane, so the
// CLI path and the reprod daemon path execute identical plans.
type (
	// Plane owns the shared comparison resources — one persistent
	// kernel pool, one persistent ring engine, per-store CAS handles,
	// per-ε verdict memos, and the per-tenant run catalog — with
	// deterministic startup/shutdown and a leak-checked Close.
	Plane = service.Plane
	// PlaneConfig sizes a plane: pool/ring shape, global in-flight
	// bound, admission-queue bound, per-tenant quota, and the
	// backpressure price range.
	PlaneConfig = service.Config
	// Session is one tenant's submission surface on a plane: every
	// comparison entry point, plus run registration and per-session
	// outcome statistics.
	Session = service.Session
	// SessionStats counts one session's submissions by outcome.
	SessionStats = service.Stats
	// RunBinding is a run's immutable registration: code ref, params,
	// ε, chunk size, dataset version. Submissions that contradict a
	// binding are rejected before any work runs.
	RunBinding = service.Binding
	// AdmissionError is a backpressure rejection carrying a
	// deterministic virtual RetryAfter.
	AdmissionError = service.AdmissionError
	// BindingError reports a submission contradicting a run binding.
	BindingError = service.BindingError
	// JobSpec describes an asynchronous job submission (Session.Submit).
	JobSpec = service.JobSpec
	// JobKind selects what a submitted job runs.
	JobKind = service.JobKind
	// Job is an asynchronous submission; wait on Done, snapshot with
	// Status.
	Job = service.Job
	// JobStatus is a wire-friendly snapshot of one job (Job.Status);
	// the reprod daemon also synthesizes it from ledger verdicts.
	JobStatus = service.JobStatus
	// JobVerdict is a comparison outcome on the reprocmp exit-code
	// contract (0 clean / 1 error / 2 divergent / 3 degraded).
	JobVerdict = service.Verdict
)

// ErrPlaneClosed is returned by every submission path of a closed plane.
var ErrPlaneClosed = service.ErrPlaneClosed

// Asynchronous job kinds (JobSpec.Kind).
const (
	// JobCompare is a two-checkpoint Merkle comparison.
	JobCompare = service.JobCompare
	// JobGroup is an N-run group comparison.
	JobGroup = service.JobGroup
	// JobShard is a subtree-sharded comparison.
	JobShard = service.JobShard
)

// Durability & audit API: the crash-durable job journal and hash-chained
// verdict ledger (internal/wal) the reprod daemon runs on when started
// with -journal, surfaced for the reprocmp attest/verify-log tooling.
type (
	// Journal is the chaining writer over one store-backed journal file.
	Journal = wal.Journal
	// WALRecord is one journal entry: chain coordinates plus the job
	// lifecycle event (accepted / started / verdict) it records.
	WALRecord = wal.Record
	// JournalReplay is what opening an existing journal recovered:
	// the valid chain plus crash-damage accounting.
	JournalReplay = wal.Replay
	// JournalVerifyReport summarizes one full chain walk: record and
	// job counts, pending jobs, crash damage, exactly-once violations.
	JournalVerifyReport = wal.VerifyReport
	// PlaneRecovery is what Plane.Recover reconstructed: the servable
	// verdict ledger and the re-admitted unfinished jobs.
	PlaneRecovery = service.Recovery
	// TenantAdmission is one tenant's cumulative admission counters
	// (GET /v1/metrics on reprod).
	TenantAdmission = metrics.TenantAdmission
)

// ErrJournalTampered reports a journal whose hash chain is broken — a
// record altered or removed after it was written. Crash damage never
// produces it; torn frames replay as visible holes instead.
var ErrJournalTampered = wal.ErrTampered

// DefaultJournalName is the conventional store-relative journal path
// (reprod's -journal flag and reprocmp's -journal flags default to it).
const DefaultJournalName = wal.DefaultName

// Journal record types (WALRecord.Type), in lifecycle order.
const (
	// WALAccepted: the job passed admission, durable before Submit
	// returned.
	WALAccepted = wal.TypeAccepted
	// WALStarted: the job acquired an execution slot.
	WALStarted = wal.TypeStarted
	// WALVerdict: the job's outcome, durable before it was published.
	WALVerdict = wal.TypeVerdict
)

// OpenJournal replays (creating if absent) the named journal on a store
// and returns the chaining writer positioned at the chain head. name ""
// selects DefaultJournalName. A tampered journal refuses to open.
func OpenJournal(ctx context.Context, store *Store, name string) (*Journal, *JournalReplay, error) {
	return wal.Open(ctx, store, name)
}

// VerifyJournal re-walks the named journal's full chain: ErrJournalTampered
// on a broken chain, an error on duplicated or orphaned verdicts, and a
// report of counts, pending jobs, and crash damage otherwise.
func VerifyJournal(ctx context.Context, store *Store, name string) (*JournalVerifyReport, error) {
	return wal.Verify(ctx, store, name)
}

// NewPlane creates a plane owning a fresh pool and ring sized by cfg;
// Close it to join them. The zero Config selects production defaults.
func NewPlane(cfg PlaneConfig) *Plane { return service.New(cfg) }

// DefaultPlane returns the process-wide plane the one-shot entry points
// below run on.
func DefaultPlane() *Plane { return service.Default() }

// localSession lazily opens the default plane's "local" tenant session,
// shared by every one-shot facade call in the process.
var (
	localOnce sync.Once
	local     *service.Session
)

func localSession() *service.Session {
	localOnce.Do(func() { local = service.Default().Open("local") })
	return local
}

// Group-comparison topologies.
const (
	// TopologyStar compares every run against the baseline.
	TopologyStar = compare.TopologyStar
	// TopologyAllPairs compares every run against every other.
	TopologyAllPairs = compare.TopologyAllPairs
)

// Comparison methods.
const (
	// MethodMerkle is the paper's metadata-driven two-stage comparison.
	MethodMerkle = compare.MethodMerkle
	// MethodDirect is the optimized element-wise baseline.
	MethodDirect = compare.MethodDirect
	// MethodAllClose is the naive boolean baseline.
	MethodAllClose = compare.MethodAllClose
)

// Checkpoint capture API.
type (
	// Checkpoint identifies a checkpoint and its field schema.
	Checkpoint = ckpt.Meta
	// FieldSpec describes one captured variable.
	FieldSpec = ckpt.FieldSpec
	// Reader reads checkpoint files.
	Reader = ckpt.Reader
	// Checkpointer captures checkpoints through two storage tiers
	// asynchronously.
	Checkpointer = ckpt.Checkpointer
)

// Storage API.
type (
	// Store is a cost-modelled storage tier backed by a real directory.
	Store = pfs.Store
	// CostModel prices storage operations on the virtual clock.
	CostModel = pfs.CostModel
	// Cost is the resource consumption of storage operations.
	Cost = pfs.Cost
)

// Element types.
type DType = errbound.DType

// Supported element types.
const (
	Float32 = errbound.Float32
	Float64 = errbound.Float64
)

// Device execution API.
type (
	// Executor runs data-parallel kernels.
	Executor = device.Executor
	// DeviceModel prices kernels and transfers on the virtual clock.
	DeviceModel = device.Model
)

// NewStore creates a storage tier rooted at dir with the given cost model.
func NewStore(dir string, model CostModel) (*Store, error) {
	return pfs.NewStore(dir, model)
}

// LustreModel approximates the paper's Lustre parallel file system.
func LustreModel() CostModel { return pfs.LustreModel() }

// NVMeModel approximates node-local NVMe storage.
func NVMeModel() CostModel { return pfs.NVMeModel() }

// GPUModel approximates one NVIDIA A100.
func GPUModel() DeviceModel { return device.GPUModel() }

// CPUModel approximates a single CPU core.
func CPUModel() DeviceModel { return device.CPUModel() }

// NewParallelExecutor returns a spawn-per-loop executor (workers <= 0
// selects GOMAXPROCS). Prefer DefaultExecutor or NewPoolExecutor, which
// reuse persistent workers across kernels.
func NewParallelExecutor(workers int) Executor { return device.NewParallel(workers) }

// NewPoolExecutor returns a persistent worker-pool executor (workers <= 0
// selects GOMAXPROCS). Workers are started once and reused by every
// kernel dispatched through the executor; call its Close method when the
// pool is no longer needed.
func NewPoolExecutor(workers int) *device.Pool { return device.NewPool(workers) }

// DefaultExecutor returns the default plane's persistent pool, the
// executor injected when Options.Exec is nil.
func DefaultExecutor() Executor { return DefaultPlane().Executor() }

// SerialExecutor returns the single-threaded executor.
func SerialExecutor() Executor { return device.Serial{} }

// NewUringBackend returns an io_uring-style asynchronous read backend.
// Its submission/completion ring is persistent — started on first use and
// reused across every batch — and run-A/run-B request batches submitted
// through it overlap in one ring. Call its Close method when the backend
// is no longer needed (DefaultBackend never needs closing).
func NewUringBackend(queueDepth, workers int) *aio.Uring {
	return aio.NewUring(queueDepth, workers)
}

// DefaultBackend returns the default plane's persistent io_uring-style
// engine, the backend the comparison layer builds on when Options.Backend
// is nil (wrapped in read coalescing; see Options.CoalesceMaxGap).
func DefaultBackend() *aio.Uring { return DefaultPlane().Backend() }

// MmapBackend returns the synchronous page-fault read backend.
func MmapBackend() aio.Mmap { return aio.Mmap{} }

// CoalescingBackend wraps a backend so nearby scattered reads merge into
// fewer, larger operations (gaps up to maxGap bytes are bridged). A nil
// inner backend selects the shared persistent io_uring engine.
func CoalescingBackend(inner aio.Backend, maxGap int) aio.Coalescing {
	return aio.NewCoalescing(inner, maxGap)
}

// CheckpointName returns the canonical history file name for a checkpoint.
func CheckpointName(runID string, iteration, rank int) string {
	return ckpt.Name(runID, iteration, rank)
}

// WriteCheckpoint encodes a checkpoint synchronously onto a store.
// data[i] must hold exactly meta.Fields[i].Bytes() raw little-endian
// bytes.
func WriteCheckpoint(store *Store, meta Checkpoint, data [][]byte) (Cost, error) {
	return ckpt.WriteCheckpoint(store, meta, data)
}

// NewCheckpointer starts an asynchronous two-tier checkpointer: captures
// are written to the local tier synchronously and flushed to the remote
// tier in the background. Close it to guarantee durability.
func NewCheckpointer(local, remote *Store, flushWorkers int) *Checkpointer {
	return ckpt.NewCheckpointer(local, remote, flushWorkers)
}

// OpenCheckpoint opens a checkpoint file for reading.
func OpenCheckpoint(store *Store, name string) (*Reader, error) {
	r, _, err := ckpt.OpenReader(store, name)
	return r, err
}

// History lists a run's checkpoint file names, ordered by iteration then
// rank.
func History(store *Store, runID string) ([]string, error) {
	return ckpt.History(store, runID)
}

// BuildMetadata constructs Merkle metadata from in-memory field buffers
// (the checkpoint-time path).
func BuildMetadata(fields []FieldSpec, data [][]byte, opts Options) (*Metadata, BuildStats, error) {
	opts, err := DefaultPlane().NormalizeOptions(opts)
	if err != nil {
		return nil, BuildStats{}, err
	}
	return compare.Build(fields, data, opts)
}

// BuildAndSave builds metadata for a checkpoint already on the store and
// saves it alongside under MetadataName(name).
func BuildAndSave(ctx context.Context, store *Store, name string, opts Options) (*Metadata, BuildStats, error) {
	return localSession().BuildAndSave(ctx, store, name, opts)
}

// SaveMetadata writes metadata next to its checkpoint on a store.
func SaveMetadata(store *Store, checkpointName string, m *Metadata) error {
	_, err := compare.SaveMetadata(store, checkpointName, m)
	return err
}

// LoadMetadata reads a checkpoint's saved metadata from a store.
func LoadMetadata(ctx context.Context, store *Store, checkpointName string) (*Metadata, error) {
	m, _, _, err := compare.LoadMetadata(ctx, store, checkpointName)
	return m, err
}

// MetadataName returns the canonical metadata file name for a checkpoint
// file name.
func MetadataName(checkpointName string) string {
	return compare.MetadataName(checkpointName)
}

// Compare runs the paper's two-stage Merkle comparison of one checkpoint
// pair. Both checkpoints and their metadata (see BuildAndSave) must exist
// on the store. Canceling the context stops the comparison at the next
// plan-step, kernel-poll, or pipeline boundary with ctx.Err(); the engine
// closes everything it opened on the way out.
func Compare(ctx context.Context, store *Store, nameA, nameB string, opts Options) (*Result, error) {
	return localSession().Compare(ctx, store, nameA, nameB, opts)
}

// CompareDirect runs the optimized element-wise baseline.
func CompareDirect(ctx context.Context, store *Store, nameA, nameB string, opts Options) (*Result, error) {
	return localSession().CompareDirect(ctx, store, nameA, nameB, opts)
}

// AllClose runs the naive boolean baseline (numpy.allclose with atol=ε,
// rtol=0): true means every element pair is within ε.
func AllClose(ctx context.Context, store *Store, nameA, nameB string, opts Options) (bool, error) {
	return localSession().AllClose(ctx, store, nameA, nameB, opts)
}

// CompareHistories aligns two runs' checkpoint histories on a store and
// compares every pair, reporting the earliest divergence. Histories align
// on the union of data checkpoints and compacted (metadata-only)
// survivors; a pair with a compacted side degrades to the metadata-only
// tree diff. On error or cancellation the returned report holds the pairs
// completed so far.
func CompareHistories(ctx context.Context, store *Store, runA, runB string, method Method, opts Options) (*HistoryReport, error) {
	return localSession().CompareHistories(ctx, store, runA, runB, method, opts)
}

// GroupCompare compares N runs' checkpoints as one group: every member's
// metadata is loaded once and the candidate chunks of pairs sharing a
// member are fetched with one deduplicated batched read per member, so an
// N-run comparison does strictly less PFS I/O than the equivalent
// sequential pairwise comparisons. Member 0 is the baseline; topology
// selects star (baseline vs each run) or all-pairs coverage.
func GroupCompare(ctx context.Context, store *Store, baseline string, runs []string, topology Topology, opts Options) (*GroupReport, error) {
	return localSession().GroupCompare(ctx, store, baseline, runs, topology, opts)
}

// Subtree-sharded scale-out API (internal/shard).
type (
	// ShardConfig parameterizes the sharded comparison: worker count,
	// per-worker buffer budget, subtree granularity, assignment policy,
	// and work stealing.
	ShardConfig = shard.Config
	// ShardStats reports the sharded execution's schedule: per-worker
	// units, steals, virtual makespan, and buffer high-water marks.
	ShardStats = shard.Stats
	// ShardAssignment selects the subtree-to-worker assignment policy.
	ShardAssignment = shard.Assignment
	// Striping describes the store's simulated OST layout.
	Striping = pfs.Striping
)

// Shard assignment policies.
const (
	// ShardAssignBlock assigns contiguous chunk-key blocks (owner computes).
	ShardAssignBlock = shard.AssignBlock
	// ShardAssignPlacement assigns by the subtree's home OST when the store
	// is striped, keeping each target single-reader.
	ShardAssignPlacement = shard.AssignPlacement
	// ShardAssignRandom assigns uniformly at random (seeded baseline).
	ShardAssignRandom = shard.AssignRandom
)

// ShardCompare runs the two-stage Merkle comparison of Compare with
// stage 2 sharded by Merkle subtree across cfg.Workers simulated workers:
// the coordinator prunes equal subtrees on metadata alone, ships the
// divergent ones as self-describing work units over the in-process MPI
// fabric, and folds the returned verdicts hierarchically into the same
// Result the single-node path produces — bit-identical diffs, roots, and
// verdicts. The returned stats expose the schedule's shape (steals,
// per-worker clocks, virtual makespan).
func ShardCompare(ctx context.Context, store *Store, nameA, nameB string, cfg ShardConfig, opts Options) (*Result, *ShardStats, error) {
	return localSession().ShardCompare(ctx, store, nameA, nameB, cfg, opts)
}

// ShardGroupCompare is GroupCompare with every pair's stage 2 pooled into
// one worker fleet: the group's divergent subtrees across all pairs form
// a single work-unit key space, so a straggler pair is absorbed by the
// whole fleet instead of serializing its own pair comparison.
func ShardGroupCompare(ctx context.Context, store *Store, baseline string, runs []string, topology Topology, cfg ShardConfig, opts Options) (*GroupReport, *ShardStats, error) {
	return localSession().ShardGroupCompare(ctx, store, baseline, runs, topology, cfg, opts)
}

// CAS is a content-addressed chunk store shared by every run capturing
// differentially onto the same Store: chunks are keyed by their
// ε-quantized leaf digest, so a chunk equal (within ε) to one already
// captured — by a previous iteration or a sibling run — is never written
// twice. The pack is append-only and torn-write safe: a capture that
// fails mid-write leaves an unreferenced hole, never a future dedup hit.
type CAS = cas.Store

// DiffCapturer captures a run's checkpoints differentially through a CAS,
// maintaining each checkpoint's Merkle metadata by incremental update
// (only changed leaves rehash) instead of a full rebuild.
type DiffCapturer = compare.DiffCapturer

// DiffCaptureReport summarizes one differential capture: dedup outcome,
// write cost, and the incremental-update accounting.
type DiffCaptureReport = compare.DiffCaptureReport

// CASMemo caches stage-2 verdicts keyed by full leaf-digest pairs, letting
// repeated differential comparisons replay verified verdicts with zero
// data reads. Sound only for CompareDiff/GroupCompareDiff at a matching ε.
type CASMemo = compare.CASMemo

// OpenCAS opens (or creates) the store's shared chunk pack, replaying its
// index; a torn tail from a crashed capture is ignored, a corrupt index
// record is an error.
func OpenCAS(ctx context.Context, store *Store) (*CAS, error) {
	cs, _, err := cas.Open(ctx, store)
	return cs, err
}

// NewDiffCapturer returns a capturer writing one run's checkpoints
// through the shared CAS. One capturer serves one run; concurrent ranks
// are safe.
func NewDiffCapturer(store *Store, cs *CAS, opts Options) (*DiffCapturer, error) {
	return compare.NewDiffCapturer(store, cs, opts)
}

// NewCASMemo returns a verdict memo for Options.Memo, pinned to ε.
func NewCASMemo(epsilon float64) *CASMemo { return compare.NewCASMemo(epsilon) }

// CompareDiff compares two differentially captured checkpoints: stage 2
// reads candidate chunks from the shared pack in one merged batch, chunks
// sharing a pack extent are pruned as provably identical, and a warmed
// Options.Memo replays previously verified verdicts without any reads.
func CompareDiff(ctx context.Context, store *Store, cs *CAS, nameA, nameB string, opts Options) (*Result, error) {
	return localSession().CompareDiff(ctx, store, cs, nameA, nameB, opts)
}

// GroupCompareDiff compares N differentially captured runs as one plan:
// group-level read dedup (each pack extent fetched once for all pairs)
// composes with CAS pruning and the degradation ladder.
func GroupCompareDiff(ctx context.Context, store *Store, cs *CAS, baseline string, runs []string, topology Topology, opts Options) (*GroupReport, error) {
	return localSession().GroupCompareDiff(ctx, store, cs, baseline, runs, topology, opts)
}

// Analysis characterizes how two checkpoints differ: per-field divergence
// magnitude histograms, used to choose an error bound.
type Analysis = compare.Analysis

// FieldHistogram is one field's divergence profile within an Analysis.
type FieldHistogram = compare.FieldHistogram

// Analyze reads both checkpoints fully and profiles their divergence
// magnitudes per field — the tool for picking ε before committing to it.
func Analyze(ctx context.Context, store *Store, nameA, nameB string) (*Analysis, error) {
	return localSession().Analyze(ctx, store, nameA, nameB)
}

// EvolutionReport profiles how fast one run's state changes relative to ε
// from metadata alone (consecutive-checkpoint tree diffs).
type EvolutionReport = compare.EvolutionReport

// Evolution builds a run's state-evolution profile from saved metadata.
func Evolution(ctx context.Context, store *Store, runID string, opts Options) (*EvolutionReport, error) {
	return localSession().Evolution(ctx, store, runID, opts)
}

// CompactReport summarizes one history-compaction pass.
type CompactReport = compare.CompactReport

// CompactHistory compacts every checkpoint of a run except the keepLatest
// most recent iterations to metadata-only form (the paper's §5 online
// compaction): the data files are removed, the compact Merkle trees stay,
// and CompareTreesOnly keeps every compacted iteration comparable at chunk
// granularity. Metadata is built first where missing.
func CompactHistory(ctx context.Context, store *Store, runID string, keepLatest int, opts Options) (*CompactReport, error) {
	return localSession().CompactHistory(ctx, store, runID, keepLatest, opts)
}

// CompareTreesOnly answers the reproducibility question from metadata
// alone — no checkpoint data is touched, so it works on compacted history.
// Result.DiffCount is 0 for a within-bound pair and -1 (unknown count)
// when candidate chunks differ.
func CompareTreesOnly(ctx context.Context, store *Store, nameA, nameB string, opts Options) (*Result, error) {
	return localSession().CompareTreesOnly(ctx, store, nameA, nameB, opts)
}

// IsCompacted reports whether a checkpoint survives only as metadata.
func IsCompacted(store *Store, name string) bool {
	return compare.IsCompacted(store, name)
}

// MetadataHistory lists a run's checkpoints that still have metadata,
// compacted or not.
func MetadataHistory(store *Store, runID string) ([]string, error) {
	return compare.MetadataHistory(store, runID)
}

// DiffTrees runs the pruned breadth-first tree comparison directly on two
// trees with identical geometry (the metadata-only stage of the method,
// enough to answer "did anything move beyond ε, and in which chunks"
// without any data I/O — the online-comparison building block). It
// returns the indices of chunks whose error-bounded hashes differ. A nil
// executor selects the default parallel one.
func DiffTrees(a, b *Tree, exec Executor) ([]int, error) {
	if exec == nil {
		exec = DefaultPlane().Executor()
	}
	chunks, _, err := merkle.Diff(a, b, a.DefaultStartLevel(exec.Workers()), exec)
	return chunks, err
}
