// Benchmarks regenerating each paper artifact at benchmark scale: one
// testing.B target per table/figure (see DESIGN.md §4 for the experiment
// index; cmd/experiments produces the full tables) plus the ablation
// benches of DESIGN.md §6. Custom metrics carry the figure's own units
// (virtual seconds, GB/s, marked fraction) alongside wall ns/op.
package repro_test

import (
	"context"
	"fmt"
	"testing"

	"repro"
	"repro/internal/aio"
	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/compare"
	"repro/internal/device"
	"repro/internal/errbound"
	"repro/internal/merkle"
	"repro/internal/murmur3"
	"repro/internal/pfs"
	"repro/internal/synth"
)

// benchPair provisions a synthetic checkpoint pair (1 MiB per field by
// default) with metadata on a fresh store.
type benchPair struct {
	store        *pfs.Store
	nameA, nameB string
	fields       []ckpt.FieldSpec
	dataA, dataB [][]byte
	opts         compare.Options
}

func newBenchPair(b *testing.B, elems int, eps float64, chunk int) *benchPair {
	b.Helper()
	store, err := pfs.NewStore(b.TempDir(), pfs.LustreModel())
	if err != nil {
		b.Fatal(err)
	}
	const nFields = 3
	dataA, dataB := synth.RunPair(elems, nFields, 11, synth.DefaultPerturb(13))
	fields := make([]ckpt.FieldSpec, nFields)
	for i, n := range []string{"x", "vx", "phi"} {
		fields[i] = ckpt.FieldSpec{Name: n, DType: errbound.Float32, Count: int64(elems)}
	}
	opts := compare.Options{Epsilon: eps, ChunkSize: chunk, Exec: device.NewParallel(2)}
	bp := &benchPair{
		store: store, fields: fields, dataA: dataA, dataB: dataB, opts: opts,
		nameA: ckpt.Name("bA", 0, 0), nameB: ckpt.Name("bB", 0, 0),
	}
	for _, rd := range []struct {
		meta ckpt.Meta
		data [][]byte
		name string
	}{
		{ckpt.Meta{RunID: "bA", Fields: fields}, dataA, bp.nameA},
		{ckpt.Meta{RunID: "bB", Fields: fields}, dataB, bp.nameB},
	} {
		if _, err := ckpt.WriteCheckpoint(store, rd.meta, rd.data); err != nil {
			b.Fatal(err)
		}
		m, _, err := compare.Build(fields, rd.data, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := compare.SaveMetadata(store, rd.name, m); err != nil {
			b.Fatal(err)
		}
	}
	return bp
}

func (bp *benchPair) bytesPerRun() int64 {
	var t int64
	for _, f := range bp.fields {
		t += f.Bytes()
	}
	return t
}

// BenchmarkTable1Checkpoint measures capture of a Table 1 HACC-schema
// checkpoint (write + header parse round trip).
func BenchmarkTable1Checkpoint(b *testing.B) {
	store, err := pfs.NewStore(b.TempDir(), pfs.NVMeModel())
	if err != nil {
		b.Fatal(err)
	}
	const particles = 1 << 16
	fields := make([]ckpt.FieldSpec, 0, 7)
	data := make([][]byte, 0, 7)
	for i, n := range []string{"x", "y", "z", "vx", "vy", "vz", "phi"} {
		fields = append(fields, ckpt.FieldSpec{Name: n, DType: errbound.Float32, Count: particles})
		data = append(data, synth.FieldF32(particles, int64(i)))
	}
	b.SetBytes(7 * particles * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meta := ckpt.Meta{RunID: "t1", Iteration: i, Rank: 0, Fields: fields}
		if _, err := ckpt.WriteCheckpoint(store, meta, data); err != nil {
			b.Fatal(err)
		}
		r, _, err := ckpt.OpenReader(store, ckpt.Name("t1", i, 0))
		if err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

// benchCompare runs one comparison per iteration, reporting the figure's
// virtual-clock throughput as a custom metric.
func benchCompare(b *testing.B, bp *benchPair, method compare.Method) {
	b.Helper()
	b.SetBytes(2 * bp.bytesPerRun())
	var lastTh float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp.store.EvictAll()
		res, err := method.Run(context.Background(), bp.store, bp.nameA, bp.nameB, bp.opts)
		if err != nil {
			b.Fatal(err)
		}
		lastTh = res.ThroughputGBps()
	}
	b.ReportMetric(lastTh, "modelGB/s")
}

// BenchmarkFig5 benchmarks the three compared approaches of Fig. 5 at two
// representative sweep points.
func BenchmarkFig5(b *testing.B) {
	for _, cfg := range []struct {
		eps   float64
		chunk int
	}{{1e-3, 4 << 10}, {1e-7, 64 << 10}} {
		bp := newBenchPair(b, 1<<18, cfg.eps, cfg.chunk)
		for _, m := range []compare.Method{compare.MethodAllClose, compare.MethodDirect, compare.MethodMerkle} {
			b.Run(fmt.Sprintf("eps=%.0e/chunk=%dK/%s", cfg.eps, cfg.chunk/1024, m), func(b *testing.B) {
				benchCompare(b, bp, m)
			})
		}
	}
}

// BenchmarkFig6Breakdown measures the full Merkle comparison and reports
// the phase split of Fig. 6 as custom metrics (virtual milliseconds).
func BenchmarkFig6Breakdown(b *testing.B) {
	bp := newBenchPair(b, 1<<18, 1e-5, 32<<10)
	var res *compare.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp.store.EvictAll()
		var err error
		res, err = compare.CompareMerkle(context.Background(), bp.store, bp.nameA, bp.nameB, bp.opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if res != nil {
		b.ReportMetric(res.Breakdown.Get(2).Virtual.Seconds()*1e3, "read-ms")
		b.ReportMetric(res.Breakdown.Get(5).Virtual.Seconds()*1e3, "verify-ms")
	}
}

// BenchmarkFig7Effectiveness reports the hash-stage effectiveness metrics
// of Fig. 7 (marked fraction, false positive rate).
func BenchmarkFig7Effectiveness(b *testing.B) {
	bp := newBenchPair(b, 1<<18, 1e-5, 8<<10)
	var res *compare.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp.store.EvictAll()
		var err error
		res, err = compare.CompareMerkle(context.Background(), bp.store, bp.nameA, bp.nameB, bp.opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if res != nil {
		b.ReportMetric(res.MarkedFraction(), "marked-frac")
		b.ReportMetric(res.FalsePositiveRate(), "fp-rate")
	}
}

// BenchmarkFig8TreeBuild measures Merkle metadata construction with the
// serial "CPU" executor vs the parallel "GPU" executor (Fig. 8's wall
// counterpart; the virtual gap is in cmd/experiments -fig 8).
func BenchmarkFig8TreeBuild(b *testing.B) {
	const elems = 1 << 19
	fields := []ckpt.FieldSpec{{Name: "x", DType: errbound.Float32, Count: elems}}
	data := [][]byte{synth.FieldF32(elems, 3)}
	for _, cfg := range []struct {
		name string
		opts compare.Options
	}{
		{"CPU", compare.Options{Epsilon: 1e-7, ChunkSize: 4 << 10, Exec: device.Serial{}, Device: device.CPUModel()}},
		{"GPU", compare.Options{Epsilon: 1e-7, ChunkSize: 4 << 10, Exec: device.NewParallel(0), Device: device.GPUModel()}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.SetBytes(4 * elems)
			var stats compare.BuildStats
			for i := 0; i < b.N; i++ {
				var err error
				_, stats, err = compare.Build(fields, data, cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(stats.TotalVirtual().Seconds()*1e3, "model-ms")
		})
	}
}

// BenchmarkFig9Backends measures the scattered verification reads with
// the mmap vs io_uring backends.
func BenchmarkFig9Backends(b *testing.B) {
	for _, backend := range []aio.Backend{aio.Mmap{}, aio.NewUring(256, 4)} {
		b.Run(backend.Name(), func(b *testing.B) {
			bp := newBenchPair(b, 1<<18, 1e-7, 4<<10)
			bp.opts.Backend = backend
			benchCompare(b, bp, compare.MethodMerkle)
		})
	}
}

// BenchmarkFig10Scaling measures the strong-scaling harness at a few
// process counts.
func BenchmarkFig10Scaling(b *testing.B) {
	bp := newBenchPair(b, 1<<17, 1e-3, 64<<10)
	pairs := []cluster.Pair{{NameA: bp.nameA, NameB: bp.nameB}}
	for _, procs := range []int{1, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			var res *cluster.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = cluster.Run(context.Background(), bp.store, pairs, cluster.Config{
					Processes: procs, PerNode: 4, Method: compare.MethodMerkle, Opts: bp.opts,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			if res != nil {
				b.ReportMetric(res.AggregateThroughputGBps(), "modelGB/s")
			}
		})
	}
}

// --- Ablation benches (DESIGN.md §6) ---

// BenchmarkAblationBlockChain compares the paper's chained 128-bit block
// hashing against hashing the whole quantized chunk in one Murmur3F call.
func BenchmarkAblationBlockChain(b *testing.B) {
	chunk := synth.FieldF32(16<<10/4, 5)
	h, err := errbound.NewHasher(errbound.Float32, 1e-6)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("chained", func(b *testing.B) {
		b.SetBytes(int64(len(chunk)))
		var scratch [16]byte
		for i := 0; i < b.N; i++ {
			if _, err := h.HashChunkScratch(chunk, scratch[:]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("flat", func(b *testing.B) {
		b.SetBytes(int64(len(chunk)))
		// Flat variant: quantize into one buffer, single hash call.
		cells := make([]byte, len(chunk)*2)
		for i := 0; i < b.N; i++ {
			murmur3.SumDigest(cells, murmur3.Digest{})
		}
	})
}

// BenchmarkAblationBFSStart compares starting the tree diff at the root
// vs the paper's mid-tree heuristic.
func BenchmarkAblationBFSStart(b *testing.B) {
	const leaves = 1 << 14
	mk := func(mutate bool) *merkle.Tree {
		ds := make([]murmur3.Digest, leaves)
		for i := range ds {
			tag := []byte{byte(i), byte(i >> 8)}
			if mutate && i%97 == 0 {
				tag = append(tag, 1)
			}
			ds[i] = murmur3.SumDigest(tag, murmur3.Digest{})
		}
		tr, err := merkle.New(leaves*64, 64, ds)
		if err != nil {
			b.Fatal(err)
		}
		tr.Build(nil)
		return tr
	}
	ta, tb := mk(false), mk(true)
	exec := device.NewParallel(2)
	for _, cfg := range []struct {
		name  string
		level int
	}{{"root", 0}, {"mid", ta.DefaultStartLevel(exec.Workers())}} {
		b.Run(cfg.name, func(b *testing.B) {
			var nodes int64
			for i := 0; i < b.N; i++ {
				var err error
				_, nodes, err = merkle.Diff(ta, tb, cfg.level, exec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(nodes), "nodes-visited")
		})
	}
}

// BenchmarkAblationPipeline compares the double-buffered verification
// pipeline against an effectively synchronous one (one giant slice).
func BenchmarkAblationPipeline(b *testing.B) {
	for _, cfg := range []struct {
		name       string
		sliceBytes int
	}{{"double-buffered", 256 << 10}, {"synchronous", 1 << 30}} {
		b.Run(cfg.name, func(b *testing.B) {
			bp := newBenchPair(b, 1<<18, 1e-7, 8<<10)
			bp.opts.SliceBytes = cfg.sliceBytes
			benchCompare(b, bp, compare.MethodMerkle)
		})
	}
}

// BenchmarkAblationCoalescing compares plain scattered reads against the
// coalescing wrapper on a clustered candidate set.
func BenchmarkAblationCoalescing(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		backend aio.Backend
	}{
		{"plain", aio.NewUring(256, 4)},
		{"coalesced", aio.NewCoalescing(aio.NewUring(256, 4), 16<<10)},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			bp := newBenchPair(b, 1<<18, 1e-5, 4<<10)
			bp.opts.Backend = cfg.backend
			benchCompare(b, bp, compare.MethodMerkle)
		})
	}
}

// BenchmarkAblationRounding compares the conservative ε-grid quantization
// against naive mantissa truncation.
func BenchmarkAblationRounding(b *testing.B) {
	chunk := synth.FieldF32(16<<10/4, 7)
	grid, err := errbound.NewHasher(errbound.Float32, 1e-6)
	if err != nil {
		b.Fatal(err)
	}
	trunc, err := errbound.NewTruncationHasher(errbound.Float32, 12)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("grid", func(b *testing.B) {
		b.SetBytes(int64(len(chunk)))
		var scratch [16]byte
		for i := 0; i < b.N; i++ {
			if _, err := grid.HashChunkScratch(chunk, scratch[:]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("truncation", func(b *testing.B) {
		b.SetBytes(int64(len(chunk)))
		for i := 0; i < b.N; i++ {
			if _, err := trunc.HashChunk(chunk); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHistoryCompare measures the public-API whole-history flow.
func BenchmarkHistoryCompare(b *testing.B) {
	store, err := repro.NewStore(b.TempDir(), repro.LustreModel())
	if err != nil {
		b.Fatal(err)
	}
	opts := repro.Options{Epsilon: 1e-5, ChunkSize: 16 << 10}
	const elems = 1 << 16
	fields := []repro.FieldSpec{{Name: "x", DType: repro.Float32, Count: elems}}
	for _, run := range []string{"hA", "hB"} {
		for iter := 0; iter < 4; iter++ {
			data := synth.FieldF32(elems, int64(iter))
			if run == "hB" {
				data = synth.PerturbF32(data, synth.DefaultPerturb(int64(iter)))
			}
			meta := repro.Checkpoint{RunID: run, Iteration: iter, Rank: 0, Fields: fields}
			if _, err := repro.WriteCheckpoint(store, meta, [][]byte{data}); err != nil {
				b.Fatal(err)
			}
			if _, _, err := repro.BuildAndSave(context.Background(), store, repro.CheckpointName(run, iter, 0), opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.EvictAll()
		if _, err := repro.CompareHistories(context.Background(), store, "hA", "hB", repro.MethodMerkle, opts); err != nil {
			b.Fatal(err)
		}
	}
}
