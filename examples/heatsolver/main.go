// heatsolver demonstrates the second divergence mechanism the paper's
// introduction cites: a convergence decision driven by a nondeterministic
// floating-point reduction. Two runs of a Jacobi heat solver compute
// (bitwise) identical fields every sweep — but each run reduces its
// residual with a differently-ordered float32 accumulation, so the runs
// can decide to stop at different iterations. Comparing only final
// outputs would just show "different files"; comparing the captured
// intermediate history shows every shared iteration matched exactly and
// isolates the divergence to the termination decision.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/jacobi"
)

const (
	gridN     = 96
	tolFactor = 60 // steps of deterministic pre-run used to derive the tolerance
	maxSteps  = 200
	every     = 10
	eps       = 1e-4
	chunkSize = 4 << 10
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "repro-heat-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	pfsTier, err := repro.NewStore(filepath.Join(dir, "pfs"), repro.LustreModel())
	if err != nil {
		return err
	}
	localTier, err := repro.NewStore(filepath.Join(dir, "local"), repro.NVMeModel())
	if err != nil {
		return err
	}
	opts := repro.Options{Epsilon: eps, ChunkSize: chunkSize}

	// Derive a convergence tolerance that the solver reaches mid-run.
	probe, err := jacobi.New(jacobi.DefaultConfig(gridN))
	if err != nil {
		return err
	}
	probe.RunUntil(0, tolFactor)
	tol := probe.Residual()
	fmt.Printf("convergence tolerance: %.6g (residual after %d deterministic sweeps)\n", tol, tolFactor)

	// Two runs, identical initial field, nondeterministic residual
	// reduction seeded differently.
	stopped := make(map[string]int, 2)
	for i, runID := range []string{"heat1", "heat2"} {
		cfg := jacobi.DefaultConfig(gridN)
		cfg.Nondet = true
		cfg.NondetSeed = int64(i + 1)
		sim, err := jacobi.New(cfg)
		if err != nil {
			return err
		}
		ckpter := repro.NewCheckpointer(localTier, pfsTier, 2)
		for sim.Iteration() < maxSteps {
			sim.Step()
			if sim.Iteration()%every == 0 {
				if err := sim.Capture(ckpter, runID, 0); err != nil {
					return err
				}
			}
			//lint:ignore epsflow convergence test against an explicit tolerance
			if sim.Residual() < tol {
				break
			}
		}
		if err := ckpter.Close(); err != nil {
			return err
		}
		stopped[runID] = sim.Iteration()
		fmt.Printf("%s: converged after %d sweeps (residual %.6g)\n", runID, sim.Iteration(), sim.Residual())
	}

	// Compare the shared prefix of the two histories.
	h1, err := repro.History(pfsTier, "heat1")
	if err != nil {
		return err
	}
	h2, err := repro.History(pfsTier, "heat2")
	if err != nil {
		return err
	}
	shared := len(h1)
	if len(h2) < shared {
		shared = len(h2)
	}
	fmt.Printf("\ncomparing the %d shared checkpoint iterations:\n", shared)
	for i := 0; i < shared; i++ {
		for _, n := range []string{h1[i], h2[i]} {
			if _, _, err := repro.BuildAndSave(ctx, pfsTier, n, opts); err != nil {
				return err
			}
		}
		res, err := repro.Compare(ctx, pfsTier, h1[i], h2[i], opts)
		if err != nil {
			return err
		}
		state := "identical within eps"
		if !res.Identical() {
			state = fmt.Sprintf("%d divergent elements", res.DiffCount)
		}
		fmt.Printf("  %s vs %s: %s (read %.1f%% of data)\n", h1[i], h2[i], state,
			100*float64(res.BytesRead)/float64(2*res.CheckpointBytes))
	}
	if stopped["heat1"] != stopped["heat2"] {
		fmt.Printf("\nthe runs diverged ONLY in the termination decision (%d vs %d sweeps):\n",
			stopped["heat1"], stopped["heat2"])
		fmt.Println("every shared intermediate state matched — exactly the insight a")
		fmt.Println("final-output comparison cannot provide.")
	} else {
		fmt.Printf("\nboth runs stopped at %d sweeps this time; the intermediate\n", stopped["heat1"])
		fmt.Println("history confirms they were reproducible throughout.")
	}
	return nil
}
