// ciregression implements the paper's proposed continuous-integration use
// case (§5): a project stores the Merkle metadata of a known-good test
// run ("golden tree"); every CI run rebuilds only the metadata of its own
// output and compares the trees. If the new output drifts beyond the
// test's error bound, CI fails and names the variables and indices that
// moved — without ever storing or re-reading the golden run's full data.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	"repro"
)

const (
	n         = 200_000
	eps       = 1e-5
	chunkSize = 8 << 10
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// simulateSolver is the "application under test": a toy iterative solver
// whose output depends on a code version. Version 2 contains a regression
// that perturbs part of the solution above the error bound.
func simulateSolver(version int) []float32 {
	rng := rand.New(rand.NewSource(99))
	out := make([]float32, n)
	for i := range out {
		x := float64(i) / n
		out[i] = float32(math.Exp(-x) * math.Cos(12*x) * (1 + 1e-7*rng.Float64()))
	}
	if version == 2 {
		// The regression: a changed reduction order shifted a band of the
		// solution by ~5e-5.
		for i := 150_000; i < 152_000; i++ {
			out[i] += 5e-5
		}
	}
	return out
}

func run() error {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "repro-ci-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := repro.NewStore(dir, repro.NVMeModel())
	if err != nil {
		return err
	}
	opts := repro.Options{Epsilon: eps, ChunkSize: chunkSize}
	fields := []repro.FieldSpec{{Name: "solution", DType: repro.Float32, Count: n}}

	// --- One-time setup: run the blessed version and store ONLY its
	// metadata as the golden reference (plus the data itself here so the
	// demo can verify candidate chunks; a space-constrained CI could keep
	// just the tree and fail on any mismatch without locating indices).
	golden := simulateSolver(1)
	goldenMeta := repro.Checkpoint{RunID: "golden", Iteration: 0, Rank: 0, Fields: fields}
	if _, err := repro.WriteCheckpoint(store, goldenMeta, [][]byte{f32bytes(golden)}); err != nil {
		return err
	}
	goldenName := repro.CheckpointName("golden", 0, 0)
	if _, _, err := repro.BuildAndSave(ctx, store, goldenName, opts); err != nil {
		return err
	}
	m, err := repro.LoadMetadata(ctx, store, goldenName)
	if err != nil {
		return err
	}
	fmt.Printf("golden tree stored: %d bytes of metadata for %d bytes of output (%.2f%%)\n",
		m.Bytes(), goldenMeta.TotalBytes(), 100*float64(m.Bytes())/float64(goldenMeta.TotalBytes()))

	// --- Every CI run: capture the new output, compare against golden.
	for _, version := range []int{1, 2} {
		output := simulateSolver(version)
		ciMeta := repro.Checkpoint{RunID: fmt.Sprintf("ci-v%d", version), Iteration: 0, Rank: 0, Fields: fields}
		if _, err := repro.WriteCheckpoint(store, ciMeta, [][]byte{f32bytes(output)}); err != nil {
			return err
		}
		ciName := repro.CheckpointName(ciMeta.RunID, 0, 0)
		if _, _, err := repro.BuildAndSave(ctx, store, ciName, opts); err != nil {
			return err
		}

		res, err := repro.Compare(ctx, store, goldenName, ciName, opts)
		if err != nil {
			return err
		}
		if res.Identical() {
			fmt.Printf("version %d: PASS — output matches golden within eps=%g "+
				"(tree comparison touched %d of %d chunks)\n",
				version, eps, res.CandidateChunks, res.TotalChunks)
			continue
		}
		fmt.Printf("version %d: FAIL — reproducibility regression detected:\n", version)
		for _, d := range res.Diffs {
			fmt.Printf("  %s: %d elements beyond eps, range [%d, %d]\n",
				d.Field, len(d.Indices), d.Indices[0], d.Indices[len(d.Indices)-1])
		}
	}
	return nil
}

func f32bytes(vals []float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(v))
	}
	return b
}
