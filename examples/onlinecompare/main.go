// onlinecompare demonstrates the paper's future-work online mode (§5):
// instead of comparing two completed histories offline, the second run
// compares itself against the first run's stored metadata AT EVERY
// CHECKPOINT, while it executes. Only the previous run's compact trees
// are read from the PFS; the current run's data is still in memory, so
// its trees are built in place and no second copy of the data ever hits
// storage. The run aborts the moment it leaves the reproducible envelope.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/hacc"
)

const (
	particles = 6000
	steps     = 60
	every     = 10
	chunkSize = 8 << 10
	eps       = 5e-7
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "repro-online-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	pfsTier, err := repro.NewStore(filepath.Join(dir, "pfs"), repro.LustreModel())
	if err != nil {
		return err
	}
	localTier, err := repro.NewStore(filepath.Join(dir, "local"), repro.NVMeModel())
	if err != nil {
		return err
	}
	opts := repro.Options{Epsilon: eps, ChunkSize: chunkSize}

	// --- Reference run: capture history + metadata (the usual flow).
	if err := referenceRun(ctx, localTier, pfsTier, opts); err != nil {
		return err
	}
	fmt.Println("reference run captured with metadata")

	// --- Monitored run: compare online at every checkpoint.
	cfg := simConfig(2)
	sim, err := hacc.New(cfg)
	if err != nil {
		return err
	}
	for s := 1; s <= steps; s++ {
		if err := sim.Step(); err != nil {
			return err
		}
		if s%every != 0 {
			continue
		}
		diverged, diffs, err := onlineCheck(ctx, pfsTier, sim, opts)
		if err != nil {
			return err
		}
		if !diverged {
			fmt.Printf("iteration %2d: within eps=%g, continuing\n", s, eps)
			continue
		}
		fmt.Printf("iteration %2d: DIVERGED — %d chunk-level differences; stopping the run early\n", s, diffs)
		fmt.Printf("saved %d iterations of wasted compute by catching the divergence online\n", steps-s)
		return nil
	}
	fmt.Println("run completed fully reproducible within the bound")
	return nil
}

func simConfig(nondetSeed int64) hacc.Config {
	cfg := hacc.DefaultConfig(particles)
	cfg.Grid = 16
	cfg.Box = 16
	cfg.Nondet = true
	cfg.NondetSeed = nondetSeed
	return cfg
}

func referenceRun(ctx context.Context, localTier, pfsTier *repro.Store, opts repro.Options) error {
	sim, err := hacc.New(simConfig(1))
	if err != nil {
		return err
	}
	ckpter := repro.NewCheckpointer(localTier, pfsTier, 2)
	for s := 1; s <= steps; s++ {
		if err := sim.Step(); err != nil {
			return err
		}
		if s%every == 0 {
			if err := sim.Capture(ckpter, "reference", 0); err != nil {
				return err
			}
		}
	}
	if err := ckpter.Close(); err != nil {
		return err
	}
	names, err := repro.History(pfsTier, "reference")
	if err != nil {
		return err
	}
	for _, n := range names {
		if _, _, err := repro.BuildAndSave(ctx, pfsTier, n, opts); err != nil {
			return err
		}
	}
	return nil
}

// onlineCheck builds the current state's trees in memory and diffs them
// against the reference run's stored metadata. Only metadata is read from
// the PFS; chunk-level mismatches are reported without any data I/O
// (locating exact indices would additionally stream the reference chunks).
func onlineCheck(ctx context.Context, pfsTier *repro.Store, sim *hacc.Sim, opts repro.Options) (bool, int, error) {
	refName := repro.CheckpointName("reference", sim.Iteration(), 0)
	refMeta, err := repro.LoadMetadata(ctx, pfsTier, refName)
	if err != nil {
		return false, 0, fmt.Errorf("reference metadata for iteration %d: %w", sim.Iteration(), err)
	}
	liveMeta, _, err := repro.BuildMetadata(hacc.Schema(particles), sim.Snapshot(), opts)
	if err != nil {
		return false, 0, err
	}
	if len(refMeta.Fields) != len(liveMeta.Fields) {
		return false, 0, errors.New("schema drift between runs")
	}
	total := 0
	for i := range refMeta.Fields {
		chunks, err := repro.DiffTrees(refMeta.Fields[i].Tree, liveMeta.Fields[i].Tree, nil)
		if err != nil {
			return false, 0, err
		}
		total += len(chunks)
	}
	return total > 0, total, nil
}
