// haccrepro is the paper's headline workflow end to end: run the bundled
// HACC-style cosmology simulation twice with nondeterministic force
// accumulation (identical initial conditions, different thread
// interleavings), capture both checkpoint histories asynchronously through
// the two-tier checkpointer, then compare the histories to find where the
// runs diverge beyond the error bound — information a final-result
// comparison could never provide.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/hacc"
)

const (
	particles = 8000
	steps     = 40
	every     = 10
	eps       = 1e-6
	chunkSize = 8 << 10
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "repro-hacc-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	pfsTier, err := repro.NewStore(filepath.Join(dir, "pfs"), repro.LustreModel())
	if err != nil {
		return err
	}
	localTier, err := repro.NewStore(filepath.Join(dir, "local"), repro.NVMeModel())
	if err != nil {
		return err
	}

	opts := repro.Options{Epsilon: eps, ChunkSize: chunkSize}

	// --- Simulate both runs, capturing checkpoints as they go.
	for runIdx, runID := range []string{"run1", "run2"} {
		cfg := hacc.DefaultConfig(particles)
		cfg.Grid = 16
		cfg.Box = 16
		cfg.Nondet = true
		cfg.NondetSeed = int64(runIdx + 1)
		sim, err := hacc.New(cfg)
		if err != nil {
			return err
		}
		ckpter := repro.NewCheckpointer(localTier, pfsTier, 2)
		for s := 1; s <= steps; s++ {
			if err := sim.Step(); err != nil {
				return err
			}
			if s%every == 0 {
				// Asynchronous capture: the local write returns fast and
				// the PFS flush happens in the background.
				if err := sim.Capture(ckpter, runID, 0); err != nil {
					return err
				}
			}
		}
		if err := ckpter.Close(); err != nil {
			return err
		}
		fmt.Printf("%s: %d steps, checkpoints at every %d iterations\n", runID, steps, every)
	}

	// --- Build metadata for every captured checkpoint (checkpoint-time
	// step in production; offline here).
	for _, runID := range []string{"run1", "run2"} {
		names, err := repro.History(pfsTier, runID)
		if err != nil {
			return err
		}
		for _, n := range names {
			if _, _, err := repro.BuildAndSave(ctx, pfsTier, n, opts); err != nil {
				return err
			}
		}
	}

	// --- Compare the two histories.
	report, err := repro.CompareHistories(ctx, pfsTier, "run1", "run2", repro.MethodMerkle, opts)
	if err != nil {
		return err
	}
	fmt.Printf("\nhistory comparison (eps=%g):\n", eps)
	for _, p := range report.Pairs {
		fmt.Printf("  iteration %2d: %6d divergent elements", p.Iteration, p.Result.DiffCount)
		if p.Result.DiffCount > 0 {
			fields := make([]string, 0, len(p.Result.Diffs))
			for _, d := range p.Result.Diffs {
				fields = append(fields, fmt.Sprintf("%s(%d)", d.Field, len(d.Indices)))
			}
			fmt.Printf("  %v", fields)
		}
		fmt.Println()
	}
	if report.Reproducible() {
		fmt.Println("\nruns are reproducible within the bound at every captured iteration")
	} else {
		fmt.Printf("\nruns first diverge beyond eps=%g at iteration %d — "+
			"the divergence was caught mid-run, not post-mortem\n",
			eps, report.FirstDivergence.Iteration)
	}
	return nil
}
