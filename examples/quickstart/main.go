// Quickstart: capture two checkpoints, build error-bounded Merkle
// metadata, and compare them — the smallest end-to-end use of the library.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"os"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "repro-quickstart-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// A store is a cost-modelled storage tier backed by a real directory.
	store, err := repro.NewStore(dir, repro.LustreModel())
	if err != nil {
		return err
	}

	// Two "runs" of a toy application: one float32 temperature field.
	// Run 2 agrees with run 1 within the bound everywhere — scattered
	// rounding-scale noise only — except indices 1000-1009, where it
	// drifted by ~0.01.
	const n = 100_000
	temps1 := make([]float32, n)
	temps2 := make([]float32, n)
	for i := range temps1 {
		v := float32(20.0 + 5.0*math.Sin(float64(i)/500))
		temps1[i] = v
		temps2[i] = v
		if i%50 == 0 {
			temps2[i] = v + 1e-7 // nondeterministic rounding noise, far below eps
		}
	}
	for i := 1000; i < 1010; i++ {
		temps2[i] += 0.01 // a real divergence
	}

	fields := []repro.FieldSpec{{Name: "temp", DType: repro.Float32, Count: n}}
	opts := repro.Options{Epsilon: 1e-4, ChunkSize: 16 << 10}

	for i, temps := range [][]float32{temps1, temps2} {
		meta := repro.Checkpoint{
			RunID:     fmt.Sprintf("run%d", i+1),
			Iteration: 0,
			Rank:      0,
			Fields:    fields,
		}
		if _, err := repro.WriteCheckpoint(store, meta, [][]byte{f32bytes(temps)}); err != nil {
			return err
		}
		// Build the compact Merkle metadata at checkpoint time.
		name := repro.CheckpointName(meta.RunID, 0, 0)
		if _, _, err := repro.BuildAndSave(ctx, store, name, opts); err != nil {
			return err
		}
	}

	// Compare: stage 1 walks the trees (no data I/O), stage 2 reads only
	// the chunks whose hashes differ.
	res, err := repro.Compare(ctx, store,
		repro.CheckpointName("run1", 0, 0),
		repro.CheckpointName("run2", 0, 0),
		opts)
	if err != nil {
		return err
	}

	fmt.Printf("compared %d elements with eps=%g\n", res.TotalElements, opts.Epsilon)
	fmt.Printf("hash stage marked %d of %d chunks; %d really changed\n",
		res.CandidateChunks, res.TotalChunks, res.ChangedChunks)
	fmt.Printf("read %d of %d checkpoint bytes (%.1f%%)\n",
		res.BytesRead, 2*res.CheckpointBytes,
		100*float64(res.BytesRead)/float64(2*res.CheckpointBytes))
	for _, d := range res.Diffs {
		fmt.Printf("field %q diverged at %d elements: first=%d last=%d\n",
			d.Field, len(d.Indices), d.Indices[0], d.Indices[len(d.Indices)-1])
	}
	if res.Identical() {
		return fmt.Errorf("expected a divergence")
	}
	return nil
}

func f32bytes(vals []float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(v))
	}
	return b
}
