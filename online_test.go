package repro_test

import (
	"context"
	"testing"

	"repro"
	"repro/internal/synth"
)

// TestOnlineModeBuildingBlocks exercises the metadata-only comparison flow
// used by examples/onlinecompare: build trees from in-memory state, save
// one side, reload it, and diff against the live side without any
// checkpoint data I/O.
func TestOnlineModeBuildingBlocks(t *testing.T) {
	store, err := repro.NewStore(t.TempDir(), repro.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	const elems = 64 << 10
	fields := []repro.FieldSpec{{Name: "state", DType: repro.Float32, Count: elems}}
	opts := repro.Options{Epsilon: 1e-5, ChunkSize: 4 << 10}

	refData := synth.FieldF32(elems, 42)
	pert := synth.DefaultPerturb(43)
	pert.MagLo, pert.MagHi = 1e-3, 1e-2 // clearly beyond eps
	pert.BlockElems = 1024
	pert.ChangedFrac = 0.1
	pert.UntouchedFrac = 0.5
	liveData := synth.PerturbF32(refData, pert)

	// Reference side: the checkpoint must exist so metadata has a home.
	meta := repro.Checkpoint{RunID: "ref", Iteration: 0, Rank: 0, Fields: fields}
	if _, err := repro.WriteCheckpoint(store, meta, [][]byte{refData}); err != nil {
		t.Fatal(err)
	}
	refMeta, stats, err := repro.BuildMetadata(fields, [][]byte{refData}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bytes != 4*elems {
		t.Errorf("hashed %d bytes", stats.Bytes)
	}
	name := repro.CheckpointName("ref", 0, 0)
	if err := repro.SaveMetadata(store, name, refMeta); err != nil {
		t.Fatal(err)
	}
	loaded, err := repro.LoadMetadata(context.Background(), store, name)
	if err != nil {
		t.Fatal(err)
	}

	// Live side: trees built in memory, diffed against the loaded trees.
	liveMeta, _, err := repro.BuildMetadata(fields, [][]byte{liveData}, opts)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := repro.DiffTrees(loaded.Fields[0].Tree, liveMeta.Fields[0].Tree, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) == 0 {
		t.Fatal("online diff found no divergent chunks")
	}
	// Self-diff must be empty.
	self, err := repro.DiffTrees(loaded.Fields[0].Tree, refMeta.Fields[0].Tree, repro.SerialExecutor())
	if err != nil {
		t.Fatal(err)
	}
	if len(self) != 0 {
		t.Errorf("self diff = %v", self)
	}
	// Geometry mismatch surfaces as an error.
	small, _, err := repro.BuildMetadata(fields, [][]byte{refData}, repro.Options{Epsilon: 1e-5, ChunkSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.DiffTrees(loaded.Fields[0].Tree, small.Fields[0].Tree, nil); err == nil {
		t.Error("geometry mismatch accepted")
	}
}
