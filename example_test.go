package repro_test

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"repro"
)

// f32le encodes float32 values little-endian, the raw checkpoint field
// layout.
func f32le(vals ...float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(v))
	}
	return b
}

// captureExample writes one checkpoint with metadata for a run.
func captureExample(store *repro.Store, run string, vals []float32, opts repro.Options) (string, error) {
	meta := repro.Checkpoint{
		RunID:     run,
		Iteration: 0,
		Rank:      0,
		Fields:    []repro.FieldSpec{{Name: "u", DType: repro.Float32, Count: int64(len(vals))}},
	}
	if _, err := repro.WriteCheckpoint(store, meta, [][]byte{f32le(vals...)}); err != nil {
		return "", err
	}
	name := repro.CheckpointName(run, 0, 0)
	if _, _, err := repro.BuildAndSave(context.Background(), store, name, opts); err != nil {
		return "", err
	}
	return name, nil
}

// Example_compare captures two small runs and locates their divergence.
func Example_compare() {
	dir, err := os.MkdirTemp("", "repro-example-")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)
	store, err := repro.NewStore(dir, repro.LustreModel())
	if err != nil {
		fmt.Println(err)
		return
	}
	opts := repro.Options{Epsilon: 1e-4, ChunkSize: 4096}

	run1 := make([]float32, 4096)
	run2 := make([]float32, 4096)
	for i := range run1 {
		run1[i] = float32(i)
		run2[i] = float32(i)
	}
	run2[1234] += 0.5 // one out-of-bound divergence

	name1, err := captureExample(store, "run1", run1, opts)
	if err != nil {
		fmt.Println(err)
		return
	}
	name2, err := captureExample(store, "run2", run2, opts)
	if err != nil {
		fmt.Println(err)
		return
	}

	res, err := repro.Compare(context.Background(), store, name1, name2, opts)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("identical: %v\n", res.Identical())
	fmt.Printf("candidate chunks: %d of %d\n", res.CandidateChunks, res.TotalChunks)
	for _, d := range res.Diffs {
		fmt.Printf("field %s diverged at index %d\n", d.Field, d.Indices[0])
	}
	// Output:
	// identical: false
	// candidate chunks: 1 of 4
	// field u diverged at index 1234
}

// Example_diffTrees shows the metadata-only comparison used for online
// monitoring: no checkpoint data is read.
func Example_diffTrees() {
	fields := []repro.FieldSpec{{Name: "u", DType: repro.Float32, Count: 2048}}
	opts := repro.Options{Epsilon: 1e-5, ChunkSize: 1024}

	ref := make([]float32, 2048)
	live := make([]float32, 2048)
	live[2000] = 0.001 // beyond eps, in the last quarter of the data

	refMeta, _, err := repro.BuildMetadata(fields, [][]byte{f32le(ref...)}, opts)
	if err != nil {
		fmt.Println(err)
		return
	}
	liveMeta, _, err := repro.BuildMetadata(fields, [][]byte{f32le(live...)}, opts)
	if err != nil {
		fmt.Println(err)
		return
	}
	chunks, err := repro.DiffTrees(refMeta.Fields[0].Tree, liveMeta.Fields[0].Tree, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("divergent chunks: %v\n", chunks)
	// Output:
	// divergent chunks: [7]
}
