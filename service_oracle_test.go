package repro_test

import (
	"context"
	"reflect"
	"testing"

	"repro"
	"repro/internal/compare"
	"repro/internal/synth"
)

// TestFacadeOracleBitIdentical pins the service-plane refactor's core
// contract: the facade entry points — now thin wrappers over the default
// plane's session — return Results and GroupReports bit-identical to the
// internal planners invoked directly, on every deterministic field
// (wall-clock-bearing Breakdown/Steps excluded).
func TestFacadeOracleBitIdentical(t *testing.T) {
	store, err := repro.NewStore(t.TempDir(), repro.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	opts := repro.Options{Epsilon: 1e-5, ChunkSize: 8 << 10}
	const elems = 32 << 10
	fields := []repro.FieldSpec{
		{Name: "x", DType: repro.Float32, Count: elems},
		{Name: "v", DType: repro.Float32, Count: elems},
	}
	dataA := [][]byte{synth.FieldF32(elems, 1), synth.FieldF32(elems, 2)}
	pert := synth.DefaultPerturb(3)
	pert.MagLo, pert.MagHi = 1e-4, 1e-2
	pert.UntouchedFrac = 0.5
	dataB := [][]byte{synth.PerturbF32(dataA[0], pert), synth.PerturbF32(dataA[1], pert)}
	ctx := context.Background()
	for _, rd := range []struct {
		run  string
		data [][]byte
	}{{"runA", dataA}, {"runB", dataB}} {
		meta := repro.Checkpoint{RunID: rd.run, Iteration: 10, Rank: 0, Fields: fields}
		if _, err := repro.WriteCheckpoint(store, meta, rd.data); err != nil {
			t.Fatal(err)
		}
		if _, _, err := repro.BuildAndSave(ctx, store, repro.CheckpointName(rd.run, 10, 0), opts); err != nil {
			t.Fatal(err)
		}
	}
	nameA := repro.CheckpointName("runA", 10, 0)
	nameB := repro.CheckpointName("runB", 10, 0)

	scrub := func(r *repro.Result) *repro.Result {
		c := *r
		c.Breakdown = compare.Result{}.Breakdown
		c.Steps = nil
		return &c
	}

	store.EvictAll()
	direct, err := compare.CompareMerkle(ctx, store, nameA, nameB, compare.Options(opts))
	if err != nil {
		t.Fatal(err)
	}
	store.EvictAll()
	facade, err := repro.Compare(ctx, store, nameA, nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if direct.DiffCount == 0 {
		t.Fatal("fixture pair does not diverge; oracle is vacuous")
	}
	if !reflect.DeepEqual(scrub(facade), scrub(direct)) {
		t.Errorf("repro.Compare diverges from compare.CompareMerkle:\nfacade: %+v\ndirect: %+v", scrub(facade), scrub(direct))
	}

	store.EvictAll()
	directG, err := compare.GroupCompare(ctx, store, nameA, []string{nameB}, compare.TopologyStar, compare.Options(opts))
	if err != nil {
		t.Fatal(err)
	}
	store.EvictAll()
	facadeG, err := repro.GroupCompare(ctx, store, nameA, []string{nameB}, repro.TopologyStar, opts)
	if err != nil {
		t.Fatal(err)
	}
	fg, dg := *facadeG, *directG
	fg.Breakdown, dg.Breakdown = compare.GroupReport{}.Breakdown, compare.GroupReport{}.Breakdown
	fg.Steps, dg.Steps = nil, nil
	for i := range fg.Pairs {
		fg.Pairs[i].Result = scrub(fg.Pairs[i].Result)
		dg.Pairs[i].Result = scrub(dg.Pairs[i].Result)
	}
	if !reflect.DeepEqual(fg, dg) {
		t.Errorf("repro.GroupCompare diverges from compare.GroupCompare:\nfacade: %+v\ndirect: %+v", fg, dg)
	}
}
