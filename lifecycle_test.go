package repro_test

import (
	"context"
	"testing"

	"repro"
	"repro/internal/catalog"
	"repro/internal/hacc"
	"repro/internal/jacobi"
	"repro/internal/mpi"
)

// TestFullLifecycle drives the complete production workflow across both
// bundled applications: multi-rank simulation, asynchronous two-tier
// capture, metadata construction, history comparison, divergence
// analysis, state-evolution profiling, provenance manifests, and finally
// compaction of old history — confirming everything stays consistent at
// each stage.
func TestFullLifecycle(t *testing.T) {
	pfsTier, err := repro.NewStore(t.TempDir(), repro.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	localTier, err := repro.NewStore(t.TempDir(), repro.NVMeModel())
	if err != nil {
		t.Fatal(err)
	}
	opts := repro.Options{Epsilon: 1e-7, ChunkSize: 4 << 10}

	// --- Stage 1: two nondeterministic multi-rank cosmology runs.
	const (
		particles = 600
		ranks     = 2
		steps     = 10
		every     = 5
	)
	for i, runID := range []string{"lc1", "lc2"} {
		cfg := hacc.DefaultConfig(particles)
		cfg.Grid = 16
		cfg.Box = 16
		cfg.Nondet = true
		cfg.NondetSeed = int64(i + 1)
		ckpter := repro.NewCheckpointer(localTier, pfsTier, 2)
		err := mpi.Run(ranks, func(r *mpi.Rank) error {
			sim, err := hacc.NewRankSim(cfg, r)
			if err != nil {
				return err
			}
			for s := 1; s <= steps; s++ {
				if err := sim.Step(); err != nil {
					return err
				}
				if s%every == 0 {
					if err := sim.Capture(ckpter, runID); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ckpter.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// --- Stage 2: metadata + provenance manifests.
	for _, runID := range []string{"lc1", "lc2"} {
		names, err := repro.History(pfsTier, runID)
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != (steps/every)*ranks {
			t.Fatalf("%s history = %v", runID, names)
		}
		for _, n := range names {
			if _, _, err := repro.BuildAndSave(context.Background(), pfsTier, n, opts); err != nil {
				t.Fatal(err)
			}
		}
		m, err := catalog.Scan(context.Background(), pfsTier, runID, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := catalog.Save(pfsTier, m); err != nil {
			t.Fatal(err)
		}
	}
	m1, err := catalog.Load(context.Background(), pfsTier, "lc1")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := catalog.Load(context.Background(), pfsTier, "lc2")
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := catalog.SameProvenance(m1, m2); !ok {
		t.Fatalf("provenance mismatch: %s", why)
	}

	// --- Stage 3: history comparison (paired per rank automatically).
	report, err := repro.CompareHistories(context.Background(), pfsTier, "lc1", "lc2", repro.MethodMerkle, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Pairs) != (steps/every)*ranks {
		t.Fatalf("compared %d pairs", len(report.Pairs))
	}
	if report.Reproducible() {
		t.Fatal("nondeterministic runs reported reproducible at 1e-7")
	}

	// --- Stage 4: divergence analysis on the first divergent pair.
	fd := report.FirstDivergence
	an, err := repro.Analyze(context.Background(), pfsTier, fd.NameA, fd.NameB)
	if err != nil {
		t.Fatal(err)
	}
	var observed int64
	for i := range an.Fields {
		observed += an.Fields[i].CountAbove(opts.Epsilon)
	}
	if observed == 0 {
		t.Error("analysis sees no divergence where the comparator found some")
	}

	// --- Stage 5: per-run evolution profile from metadata only.
	evo, err := repro.Evolution(context.Background(), pfsTier, "lc1", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(evo.Points) != ranks { // one transition per rank
		t.Fatalf("evolution points = %+v", evo.Points)
	}
	for _, p := range evo.Points {
		if p.ChangedFraction() <= 0 {
			t.Errorf("evolving simulation shows no change: %+v", p)
		}
	}

	// --- Stage 6: compact old history; tree-level comparison survives.
	for _, runID := range []string{"lc1", "lc2"} {
		rep, err := repro.CompactHistory(context.Background(), pfsTier, runID, 1, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Removed) != ranks { // the older iteration, both ranks
			t.Fatalf("%s compacted %v", runID, rep.Removed)
		}
	}
	oldA := repro.CheckpointName("lc1", every, 0)
	oldB := repro.CheckpointName("lc2", every, 0)
	if !repro.IsCompacted(pfsTier, oldA) {
		t.Error("old checkpoint not compacted")
	}
	treeRes, err := repro.CompareTreesOnly(context.Background(), pfsTier, oldA, oldB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if treeRes.CandidateChunks == 0 && fd.Iteration == every {
		t.Error("compacted tree comparison lost the divergence")
	}

	// The latest iteration still supports full data-level comparison.
	lastA := repro.CheckpointName("lc1", steps, 0)
	lastB := repro.CheckpointName("lc2", steps, 0)
	if _, err := repro.Compare(context.Background(), pfsTier, lastA, lastB, opts); err != nil {
		t.Fatalf("full comparison on retained history failed: %v", err)
	}
}

// TestJacobiLifecycle runs the second application through capture and
// comparison, confirming the library is not HACC-specific.
func TestJacobiLifecycle(t *testing.T) {
	pfsTier, err := repro.NewStore(t.TempDir(), repro.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	localTier, err := repro.NewStore(t.TempDir(), repro.NVMeModel())
	if err != nil {
		t.Fatal(err)
	}
	opts := repro.Options{Epsilon: 1e-4, ChunkSize: 4 << 10}
	for i, runID := range []string{"j1", "j2"} {
		cfg := jacobi.DefaultConfig(48)
		cfg.Nondet = true
		cfg.NondetSeed = int64(i + 1)
		sim, err := jacobi.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ckpter := repro.NewCheckpointer(localTier, pfsTier, 1)
		for s := 0; s < 10; s++ {
			sim.Step()
			if sim.Iteration()%5 == 0 {
				if err := sim.Capture(ckpter, runID, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := ckpter.Close(); err != nil {
			t.Fatal(err)
		}
		names, err := repro.History(pfsTier, runID)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range names {
			if _, _, err := repro.BuildAndSave(context.Background(), pfsTier, n, opts); err != nil {
				t.Fatal(err)
			}
		}
	}
	report, err := repro.CompareHistories(context.Background(), pfsTier, "j1", "j2", repro.MethodMerkle, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The Jacobi fields are identical between runs (only the residual
	// reduction is nondeterministic), so the histories must match.
	if !report.Reproducible() {
		t.Errorf("jacobi fields diverged: %+v", report.FirstDivergence)
	}
}
