package repro_test

import (
	"context"
	"testing"

	"repro"
	"repro/internal/synth"
)

// TestPublicAPIEndToEnd drives the whole public surface the way a
// downstream user would: capture two runs' checkpoints, build metadata,
// compare pairwise and across histories, and check the baselines agree.
func TestPublicAPIEndToEnd(t *testing.T) {
	store, err := repro.NewStore(t.TempDir(), repro.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	opts := repro.Options{Epsilon: 1e-5, ChunkSize: 8 << 10}

	const elems = 32 << 10
	fields := []repro.FieldSpec{
		{Name: "x", DType: repro.Float32, Count: elems},
		{Name: "v", DType: repro.Float32, Count: elems},
	}
	// Three iterations; divergence appears from iteration 20 on.
	for _, iter := range []int{10, 20, 30} {
		dataA := [][]byte{synth.FieldF32(elems, int64(iter)), synth.FieldF32(elems, int64(iter)+1000)}
		var dataB [][]byte
		if iter == 10 {
			dataB = [][]byte{append([]byte(nil), dataA[0]...), append([]byte(nil), dataA[1]...)}
		} else {
			pert := synth.DefaultPerturb(int64(iter))
			pert.MagLo, pert.MagHi = 1e-4, 1e-2 // all perturbations above ε
			pert.UntouchedFrac = 0.5
			pert.BlockElems = 1024
			dataB = [][]byte{synth.PerturbF32(dataA[0], pert), synth.PerturbF32(dataA[1], pert)}
		}
		for _, rd := range []struct {
			run  string
			data [][]byte
		}{{"runA", dataA}, {"runB", dataB}} {
			meta := repro.Checkpoint{RunID: rd.run, Iteration: iter, Rank: 0, Fields: fields}
			if _, err := repro.WriteCheckpoint(store, meta, rd.data); err != nil {
				t.Fatal(err)
			}
			name := repro.CheckpointName(rd.run, iter, 0)
			if _, _, err := repro.BuildAndSave(context.Background(), store, name, opts); err != nil {
				t.Fatal(err)
			}
		}
	}
	store.EvictAll()

	// History listing.
	hist, err := repro.History(store, "runA")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history has %d checkpoints", len(hist))
	}

	// Pairwise comparison at the first iteration: identical.
	nameA := repro.CheckpointName("runA", 10, 0)
	nameB := repro.CheckpointName("runB", 10, 0)
	res, err := repro.Compare(context.Background(), store, nameA, nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical() {
		t.Error("iteration 10 should be identical")
	}
	ok, err := repro.AllClose(context.Background(), store, nameA, nameB, opts)
	if err != nil || !ok {
		t.Errorf("AllClose(iter 10) = %v, %v", ok, err)
	}

	// Divergent iteration: merkle and direct must agree.
	nameA = repro.CheckpointName("runA", 20, 0)
	nameB = repro.CheckpointName("runB", 20, 0)
	rm, err := repro.Compare(context.Background(), store, nameA, nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := repro.CompareDirect(context.Background(), store, nameA, nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rm.DiffCount == 0 {
		t.Error("iteration 20 should diverge")
	}
	if rm.DiffCount != rd.DiffCount {
		t.Errorf("merkle %d diffs, direct %d", rm.DiffCount, rd.DiffCount)
	}
	ok, err = repro.AllClose(context.Background(), store, nameA, nameB, opts)
	if err != nil || ok {
		t.Errorf("AllClose(iter 20) = %v, %v; want false", ok, err)
	}

	// Whole-history comparison pinpoints the first divergence.
	report, err := repro.CompareHistories(context.Background(), store, "runA", "runB", repro.MethodMerkle, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.Reproducible() {
		t.Fatal("histories should not be reproducible")
	}
	if report.FirstDivergence.Iteration != 20 {
		t.Errorf("first divergence at iteration %d, want 20", report.FirstDivergence.Iteration)
	}
	if len(report.Pairs) != 3 {
		t.Errorf("report has %d pairs", len(report.Pairs))
	}
	if report.TotalDiffs() == 0 {
		t.Error("TotalDiffs = 0")
	}

	// Metadata round trip through the store.
	m, err := repro.LoadMetadata(context.Background(), store, nameA)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Fields) != 2 {
		t.Errorf("metadata has %d fields", len(m.Fields))
	}
	if repro.MetadataName("x.ckpt") != "x.ckpt.mrkl" {
		t.Errorf("MetadataName = %q", repro.MetadataName("x.ckpt"))
	}

	// Reader surface.
	r, err := repro.OpenCheckpoint(store, nameA)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumFields() != 2 || r.Meta().Iteration != 20 {
		t.Error("reader metadata wrong")
	}
}

func TestFacadeConstructors(t *testing.T) {
	if repro.LustreModel().Name != "lustre" || repro.NVMeModel().Name != "nvme" {
		t.Error("storage model names wrong")
	}
	if repro.GPUModel().Name != "GPU" || repro.CPUModel().Name != "CPU" {
		t.Error("device model names wrong")
	}
	if repro.NewParallelExecutor(3).Workers() != 3 {
		t.Error("parallel executor workers wrong")
	}
	if repro.SerialExecutor().Workers() != 1 {
		t.Error("serial executor workers wrong")
	}
	if repro.NewUringBackend(8, 2).Name() != "io_uring" {
		t.Error("uring backend name wrong")
	}
	if repro.MmapBackend().Name() != "mmap" {
		t.Error("mmap backend name wrong")
	}
	if repro.MethodMerkle.String() != "merkle" {
		t.Error("method alias broken")
	}
}

func TestCheckpointerFacade(t *testing.T) {
	local, err := repro.NewStore(t.TempDir(), repro.NVMeModel())
	if err != nil {
		t.Fatal(err)
	}
	remote, err := repro.NewStore(t.TempDir(), repro.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	c := repro.NewCheckpointer(local, remote, 1)
	meta := repro.Checkpoint{
		RunID: "facade", Iteration: 0, Rank: 0,
		Fields: []repro.FieldSpec{{Name: "x", DType: repro.Float32, Count: 100}},
	}
	if err := c.Capture(meta, [][]byte{make([]byte, 400)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.OpenCheckpoint(remote, repro.CheckpointName("facade", 0, 0)); err != nil {
		t.Errorf("flushed checkpoint unreadable: %v", err)
	}
}

// TestDifferentialFacade drives the differential-capture surface through
// the public aliases: open a CAS, capture two runs across iterations,
// compare with CompareDiff, and replay through a warmed memo.
func TestDifferentialFacade(t *testing.T) {
	store, err := repro.NewStore(t.TempDir(), repro.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	cs, err := repro.OpenCAS(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	opts := repro.Options{Epsilon: 1e-5, ChunkSize: 4 << 10, Memo: repro.NewCASMemo(1e-5)}
	const elems = 16 << 10
	fields := []repro.FieldSpec{{Name: "x", DType: repro.Float32, Count: elems}}
	pert := synth.DefaultPerturb(7)
	pert.MagLo, pert.MagHi = 1e-3, 1e-2
	base, diverged := synth.RunPair(elems, 1, 11, pert)
	for _, rd := range []struct {
		run  string
		data [][]byte
	}{{"runA", base}, {"runB", diverged}} {
		capt, err := repro.NewDiffCapturer(store, cs, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, iter := range []int{10, 20} {
			meta := repro.Checkpoint{RunID: rd.run, Iteration: iter, Rank: 0, Fields: fields}
			rep, err := capt.Capture(context.Background(), meta, rd.data)
			if err != nil {
				t.Fatal(err)
			}
			if iter == 20 && rep.Stats.DedupHits != rep.Stats.Chunks {
				t.Fatalf("identical iteration wrote chunks: %+v", rep.Stats)
			}
		}
	}
	store.EvictAll()
	nameA := repro.CheckpointName("runA", 20, 0)
	nameB := repro.CheckpointName("runB", 20, 0)
	res, err := repro.CompareDiff(context.Background(), store, cs, nameA, nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiffCount == 0 || res.Identical() {
		t.Fatalf("perturbed pair compared clean: %+v", res)
	}
	// Second comparison replays the memo: every candidate pruned.
	res2, err := repro.CompareDiff(context.Background(), store, cs, nameA, nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CASPrunedChunks != res2.CandidateChunks || res2.DiffCount != res.DiffCount {
		t.Fatalf("memo replay diverged: pruned %d of %d, diffs %d vs %d",
			res2.CASPrunedChunks, res2.CandidateChunks, res2.DiffCount, res.DiffCount)
	}
	gr, err := repro.GroupCompareDiff(context.Background(), store, cs, nameA, []string{nameB}, repro.TopologyStar, opts)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Reproducible() {
		t.Fatal("divergent group reported reproducible")
	}
}
