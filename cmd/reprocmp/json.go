package main

import (
	"encoding/json"
	"io"

	"repro"
)

// jsonResult is the machine-readable form of a comparison, for CI
// integration (the paper's §5 use case).
type jsonResult struct {
	Method          string          `json:"method"`
	Identical       bool            `json:"identical"`
	DiffCount       int64           `json:"diffCount"`
	TotalElements   int64           `json:"totalElements"`
	CandidateChunks int             `json:"candidateChunks"`
	ChangedChunks   int             `json:"changedChunks"`
	TotalChunks     int             `json:"totalChunks"`
	FalsePositives  int             `json:"falsePositiveChunks"`
	CheckpointBytes int64           `json:"checkpointBytes"`
	BytesRead       int64           `json:"bytesRead"`
	MetadataBytes   int64           `json:"metadataBytes"`
	WallMicros      int64           `json:"wallMicros"`
	VirtualMicros   int64           `json:"virtualMicros"`
	ModelGBps       float64         `json:"modelGBps"`
	Degraded        bool            `json:"degraded,omitempty"`
	Unverified      int             `json:"unverifiedChunks,omitempty"`
	ReadRetries     int             `json:"readRetries,omitempty"`
	RingFallbacks   int             `json:"ringFallbacks,omitempty"`
	Fields          []jsonFieldDiff `json:"fields,omitempty"`
}

type jsonFieldDiff struct {
	Field   string  `json:"field"`
	Count   int     `json:"count"`
	First   int64   `json:"first"`
	Last    int64   `json:"last"`
	Indices []int64 `json:"indices,omitempty"`
}

// jsonHistory is the machine-readable form of a history comparison.
type jsonHistory struct {
	RunA            string     `json:"runA"`
	RunB            string     `json:"runB"`
	Method          string     `json:"method"`
	Epsilon         float64    `json:"epsilon"`
	Reproducible    bool       `json:"reproducible"`
	Degraded        bool       `json:"degraded,omitempty"`
	FirstDivergence *jsonPair  `json:"firstDivergence,omitempty"`
	Pairs           []jsonPair `json:"pairs"`
}

type jsonPair struct {
	Iteration int   `json:"iteration"`
	Rank      int   `json:"rank"`
	DiffCount int64 `json:"diffCount"`
	Degraded  bool  `json:"degraded,omitempty"`
}

func toJSONResult(res *repro.Result, verbose bool) jsonResult {
	out := jsonResult{
		Method:          res.Method,
		Identical:       res.Identical(),
		DiffCount:       res.DiffCount,
		TotalElements:   res.TotalElements,
		CandidateChunks: res.CandidateChunks,
		ChangedChunks:   res.ChangedChunks,
		TotalChunks:     res.TotalChunks,
		FalsePositives:  res.FalsePositiveChunks(),
		CheckpointBytes: res.CheckpointBytes,
		BytesRead:       res.BytesRead,
		MetadataBytes:   res.MetadataBytes,
		WallMicros:      res.WallElapsed().Microseconds(),
		VirtualMicros:   res.VirtualElapsed().Microseconds(),
		ModelGBps:       res.ThroughputGBps(),
		Degraded:        res.Degraded,
		Unverified:      res.UnverifiedChunks,
		ReadRetries:     res.ReadRetries,
		RingFallbacks:   res.RingFallbacks,
	}
	for _, d := range res.Diffs {
		fd := jsonFieldDiff{
			Field: d.Field,
			Count: len(d.Indices),
			First: d.Indices[0],
			Last:  d.Indices[len(d.Indices)-1],
		}
		if verbose {
			fd.Indices = d.Indices
		}
		out.Fields = append(out.Fields, fd)
	}
	return out
}

func toJSONHistory(report *repro.HistoryReport, method repro.Method, eps float64) jsonHistory {
	out := jsonHistory{
		RunA:         report.RunA,
		RunB:         report.RunB,
		Method:       method.String(),
		Epsilon:      eps,
		Reproducible: report.Reproducible(),
		Degraded:     report.Degraded(),
	}
	for _, p := range report.Pairs {
		out.Pairs = append(out.Pairs, jsonPair{
			Iteration: p.Iteration,
			Rank:      p.Rank,
			DiffCount: p.Result.DiffCount,
			Degraded:  p.Result.Degraded,
		})
	}
	if fd := report.FirstDivergence; fd != nil {
		out.FirstDivergence = &jsonPair{
			Iteration: fd.Iteration,
			Rank:      fd.Rank,
			DiffCount: fd.Result.DiffCount,
		}
	}
	return out
}

func emitJSON(out io.Writer, v any) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
