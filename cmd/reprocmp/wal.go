package main

// attest and verify-log: the audit surface over the crash-durable job
// journal the reprod daemon writes with -journal (internal/wal).
//
//	reprocmp attest     -store DIR -job ID [-journal NAME] [-json]
//	reprocmp verify-log -store DIR [-journal NAME] [-recompute JOB] [-json]
//
// attest emits one job's chained lifecycle records — acceptance,
// execution, and verdict, each bound to its predecessor's digest — after
// re-walking the whole chain (a tampered journal refuses to attest
// anything). verify-log walks the full chain: it fails on tampering and
// on exactly-once violations (duplicate or orphaned verdicts), reports
// crash damage (holes, torn tail), and with -recompute re-derives a
// historical verdict's inputs by rebuilding the named snapshots'
// combined Merkle roots from the store and comparing them against the
// roots the verdict record bound.

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"

	"repro"
)

func cmdAttest(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("attest", flag.ContinueOnError)
	dir := fs.String("store", "", "store directory")
	name := fs.String("journal", repro.DefaultJournalName, "store-relative journal path")
	jobID := fs.Uint64("job", 0, "job ID to attest")
	asJSON := fs.Bool("json", false, "emit the chained records as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *jobID == 0 {
		return errors.New("attest: -store and -job are required")
	}
	store, err := openStore(*dir)
	if err != nil {
		return err
	}
	// Open replays and chain-verifies: a tampered journal fails here.
	_, rep, err := repro.OpenJournal(ctx, store, *name)
	if err != nil {
		return err
	}
	var recs []repro.WALRecord
	hasVerdict := false
	for _, r := range rep.Records {
		if r.Job != *jobID {
			continue
		}
		recs = append(recs, r)
		if r.Type == repro.WALVerdict {
			hasVerdict = true
		}
	}
	if len(recs) == 0 {
		return fmt.Errorf("attest: journal %s has no records for job %d", *name, *jobID)
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recs); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(out, "journal %s: chain verified, %d records, %d holes, %d torn tail bytes\n",
			*name, len(rep.Records), rep.Holes, rep.TornTailBytes)
		fmt.Fprintf(out, "job %d attestation (%d chained records):\n", *jobID, len(recs))
		for _, r := range recs {
			printRecord(out, r)
		}
	}
	if !hasVerdict {
		return fmt.Errorf("attest: job %d has no verdict yet (accepted but unfinished)", *jobID)
	}
	return nil
}

// printRecord renders one journal record for the attestation listing.
func printRecord(out io.Writer, r repro.WALRecord) {
	fmt.Fprintf(out, "  [seq %d] %-8s tenant=%s kind=%s eps=%g chunk=%d tool=%s\n",
		r.Seq, r.Type, r.Tenant, r.Kind, r.Epsilon, r.ChunkSize, r.ToolVersion)
	for _, n := range r.Names {
		fmt.Fprintf(out, "           name  %s\n", n)
	}
	if r.Type == repro.WALVerdict {
		fmt.Fprintf(out, "           exit=%d (%s) diffCount=%d degraded=%v unverified=%d\n",
			r.Exit, repro.JobVerdict(r.Exit), r.DiffCount, r.Degraded, r.UnverifiedChunks)
		if r.ErrMsg != "" {
			fmt.Fprintf(out, "           error %s\n", r.ErrMsg)
		}
		for i, root := range r.Roots {
			fmt.Fprintf(out, "           root  %s = %s\n", r.Names[i], root)
		}
	}
	fmt.Fprintf(out, "           prev=%s\n           digest=%s\n", r.Prev, r.Digest)
}

// verifyLogJSON is verify-log's machine-readable output.
type verifyLogJSON struct {
	*repro.JournalVerifyReport
	Recomputed *recomputeJSON `json:"recomputed,omitempty"`
}

type recomputeJSON struct {
	Job     uint64   `json:"job"`
	Names   []string `json:"names"`
	Matched bool     `json:"rootsMatch"`
}

func cmdVerifyLog(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("verify-log", flag.ContinueOnError)
	dir := fs.String("store", "", "store directory")
	name := fs.String("journal", repro.DefaultJournalName, "store-relative journal path")
	recompute := fs.Uint64("recompute", 0, "re-derive this job's verdict inputs: rebuild the snapshots' combined Merkle roots from the store and compare against the verdict record")
	asJSON := fs.Bool("json", false, "emit the verification report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return errors.New("verify-log: -store is required")
	}
	store, err := openStore(*dir)
	if err != nil {
		return err
	}
	rep, err := repro.VerifyJournal(ctx, store, *name)
	if err != nil {
		return err
	}
	body := verifyLogJSON{JournalVerifyReport: rep}
	if *recompute != 0 {
		rc, err := recomputeRoots(ctx, store, *name, *recompute, out, *asJSON)
		if err != nil {
			return err
		}
		body.Recomputed = rc
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(body)
	}
	fmt.Fprintf(out, "journal %s: chain verified\n", *name)
	fmt.Fprintf(out, "  records  %d (accepted %d, started %d, verdicts %d)\n",
		rep.Records, rep.Accepted, rep.Started, rep.Verdicts)
	fmt.Fprintf(out, "  jobs     %d (%d pending)\n", rep.Jobs, len(rep.PendingJobs))
	if len(rep.PendingJobs) > 0 {
		fmt.Fprintf(out, "  pending  %v\n", rep.PendingJobs)
	}
	fmt.Fprintf(out, "  damage   %d holes, %d torn tail bytes\n", rep.Holes, rep.TornTailBytes)
	if rep.Records > 0 {
		fmt.Fprintf(out, "  head     seq %d digest %s\n", rep.Seq, rep.Head)
	}
	if body.Recomputed != nil {
		fmt.Fprintf(out, "  recomputed job %d: roots match the ledger\n", body.Recomputed.Job)
	}
	return nil
}

// recomputeRoots re-derives one verdict's inputs: each named snapshot's
// metadata is reloaded from the store and its combined Merkle root is
// compared against the root the verdict record bound into the chain. A
// mismatch means the store's metadata no longer matches what was
// compared — the verdict is about data that has since changed.
func recomputeRoots(ctx context.Context, store *repro.Store, name string, jobID uint64, out io.Writer, quiet bool) (*recomputeJSON, error) {
	_, rep, err := repro.OpenJournal(ctx, store, name)
	if err != nil {
		return nil, err
	}
	var verdict *repro.WALRecord
	for i := range rep.Records {
		if r := &rep.Records[i]; r.Job == jobID && r.Type == repro.WALVerdict {
			verdict = r
			break
		}
	}
	if verdict == nil {
		return nil, fmt.Errorf("verify-log: journal has no verdict for job %d", jobID)
	}
	if len(verdict.Roots) == 0 {
		return nil, fmt.Errorf("verify-log: job %d's verdict bound no Merkle roots (failed before loading metadata); nothing to recompute", jobID)
	}
	if len(verdict.Roots) != len(verdict.Names) {
		return nil, fmt.Errorf("verify-log: job %d's verdict has %d roots for %d names", jobID, len(verdict.Roots), len(verdict.Names))
	}
	for i, snap := range verdict.Names {
		m, err := repro.LoadMetadata(ctx, store, snap)
		if err != nil {
			return nil, fmt.Errorf("verify-log: recompute %s: %w", snap, err)
		}
		got := m.CombinedRoot()
		if got != verdict.Roots[i] {
			return nil, fmt.Errorf("verify-log: job %d: %s recomputes to root %s, ledger has %s — store contents changed since the verdict",
				jobID, snap, got, verdict.Roots[i])
		}
		if !quiet {
			fmt.Fprintf(out, "  root %s = %s (matches ledger)\n", snap, got)
		}
	}
	return &recomputeJSON{Job: jobID, Names: verdict.Names, Matched: true}, nil
}
