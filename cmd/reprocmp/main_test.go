package main

import (
	"context"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro"
	"repro/internal/synth"
)

// seedStore writes a two-run single-iteration store; run2 diverges beyond
// 1e-5 when diverge is true.
func seedStore(t *testing.T, diverge bool) string {
	t.Helper()
	dir := t.TempDir()
	store, err := repro.NewStore(dir, repro.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	const elems = 8 << 10
	fields := []repro.FieldSpec{{Name: "x", DType: repro.Float32, Count: elems}}
	dataA := synth.FieldF32(elems, 1)
	dataB := append([]byte(nil), dataA...)
	if diverge {
		pert := synth.DefaultPerturb(2)
		pert.MagLo, pert.MagHi = 1e-3, 1e-2
		pert.BlockElems = 512
		pert.ChangedFrac = 0.2
		pert.UntouchedFrac = 0.5
		dataB = synth.PerturbF32(dataA, pert)
	}
	for run, data := range map[string][]byte{"run1": dataA, "run2": dataB} {
		meta := repro.Checkpoint{RunID: run, Iteration: 10, Rank: 0, Fields: fields}
		if _, err := repro.WriteCheckpoint(store, meta, [][]byte{data}); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), nil, &out); err == nil {
		t.Error("no args accepted")
	}
	if err := run(context.Background(), []string{"bogus"}, &out); err == nil {
		t.Error("unknown subcommand accepted")
	}
	for _, sub := range []string{"hash", "compare", "history", "inspect", "compact"} {
		if err := run(context.Background(), []string{sub}, &out); err == nil {
			t.Errorf("%s without -store accepted", sub)
		}
	}
}

func TestHashCompareHistoryFlow(t *testing.T) {
	dir := seedStore(t, true)
	var out bytes.Buffer

	// hash both checkpoints
	for _, run2 := range []string{"run1", "run2"} {
		err := run(context.Background(), []string{"hash", "-store", dir, "-ckpt", run2 + "/iter0010.rank000.ckpt",
			"-eps", "1e-5", "-chunk", "4096"}, &out)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(out.String(), "built metadata") {
		t.Errorf("hash output: %s", out.String())
	}

	// compare: divergence reported through errDivergent
	out.Reset()
	err := run(context.Background(), []string{"compare", "-store", dir,
		"-a", "run1/iter0010.rank000.ckpt", "-b", "run2/iter0010.rank000.ckpt",
		"-eps", "1e-5", "-chunk", "4096"}, &out)
	if !errors.Is(err, errDivergent) {
		t.Fatalf("compare error = %v, want errDivergent", err)
	}
	if !strings.Contains(out.String(), "divergent elements") {
		t.Errorf("compare output: %s", out.String())
	}

	// direct method agrees
	out.Reset()
	err = run(context.Background(), []string{"compare", "-store", dir,
		"-a", "run1/iter0010.rank000.ckpt", "-b", "run2/iter0010.rank000.ckpt",
		"-eps", "1e-5", "-method", "direct"}, &out)
	if !errors.Is(err, errDivergent) {
		t.Fatalf("direct error = %v", err)
	}

	// allclose answers the boolean
	out.Reset()
	err = run(context.Background(), []string{"compare", "-store", dir,
		"-a", "run1/iter0010.rank000.ckpt", "-b", "run2/iter0010.rank000.ckpt",
		"-eps", "1e-5", "-method", "allclose"}, &out)
	if !errors.Is(err, errDivergent) {
		t.Fatalf("allclose error = %v", err)
	}
	if !strings.Contains(out.String(), "allclose(eps=1e-05): false") {
		t.Errorf("allclose output: %s", out.String())
	}

	// history with -hash finds the divergence
	out.Reset()
	err = run(context.Background(), []string{"history", "-store", dir, "-runa", "run1", "-runb", "run2",
		"-eps", "1e-5", "-chunk", "4096", "-hash"}, &out)
	if !errors.Is(err, errDivergent) {
		t.Fatalf("history error = %v", err)
	}
	if !strings.Contains(out.String(), "first divergence: iteration 10") {
		t.Errorf("history output: %s", out.String())
	}

	// inspect prints the schema
	out.Reset()
	if err := run(context.Background(), []string{"inspect", "-store", dir, "-ckpt", "run1/iter0010.rank000.ckpt"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "f32 x 8192") {
		t.Errorf("inspect output: %s", out.String())
	}

	// compact the older history (everything, keep 0) and verify output
	out.Reset()
	if err := run(context.Background(), []string{"compact", "-store", dir, "-run", "run1", "-keep", "0",
		"-eps", "1e-5", "-chunk", "4096"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "metadata only") {
		t.Errorf("compact output: %s", out.String())
	}
}

func TestIdenticalRunsExitClean(t *testing.T) {
	dir := seedStore(t, false)
	var out bytes.Buffer
	for _, r := range []string{"run1", "run2"} {
		if err := run(context.Background(), []string{"hash", "-store", dir, "-ckpt", r + "/iter0010.rank000.ckpt",
			"-eps", "1e-5"}, &out); err != nil {
			t.Fatal(err)
		}
	}
	err := run(context.Background(), []string{"history", "-store", dir, "-runa", "run1", "-runb", "run2", "-eps", "1e-5"}, &out)
	if err != nil {
		t.Fatalf("identical history error = %v", err)
	}
	if !strings.Contains(out.String(), "reproducible within the error bound") {
		t.Errorf("history output: %s", out.String())
	}
}

func TestBadMethodRejected(t *testing.T) {
	dir := seedStore(t, false)
	var out bytes.Buffer
	err := run(context.Background(), []string{"compare", "-store", dir, "-a", "x", "-b", "y",
		"-eps", "1e-5", "-method", "nope"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Errorf("error = %v", err)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := seedStore(t, true)
	var out bytes.Buffer
	for _, r := range []string{"run1", "run2"} {
		if err := run(context.Background(), []string{"hash", "-store", dir, "-ckpt", r + "/iter0010.rank000.ckpt",
			"-eps", "1e-5", "-chunk", "4096"}, &out); err != nil {
			t.Fatal(err)
		}
	}
	out.Reset()
	err := run(context.Background(), []string{"compare", "-store", dir,
		"-a", "run1/iter0010.rank000.ckpt", "-b", "run2/iter0010.rank000.ckpt",
		"-eps", "1e-5", "-chunk", "4096", "-json"}, &out)
	if !errors.Is(err, errDivergent) {
		t.Fatalf("json compare error = %v", err)
	}
	var res jsonResult
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if res.Method != "merkle" || res.Identical || res.DiffCount == 0 || len(res.Fields) == 0 {
		t.Errorf("json result = %+v", res)
	}
	if res.Fields[0].Field != "x" || res.Fields[0].Count == 0 {
		t.Errorf("json field = %+v", res.Fields[0])
	}
	if len(res.Fields[0].Indices) != 0 {
		t.Error("indices emitted without -v")
	}

	out.Reset()
	err = run(context.Background(), []string{"history", "-store", dir, "-runa", "run1", "-runb", "run2",
		"-eps", "1e-5", "-chunk", "4096", "-json"}, &out)
	if !errors.Is(err, errDivergent) {
		t.Fatalf("json history error = %v", err)
	}
	var hist jsonHistory
	if err := json.Unmarshal(out.Bytes(), &hist); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if hist.Reproducible || hist.FirstDivergence == nil || hist.FirstDivergence.Iteration != 10 {
		t.Errorf("json history = %+v", hist)
	}
}

func TestStatsSubcommand(t *testing.T) {
	dir := seedStore(t, false)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"hash", "-store", dir, "-ckpt", "run1/iter0010.rank000.ckpt",
		"-eps", "1e-5", "-chunk", "4096"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(context.Background(), []string{"stats", "-store", dir, "-run", "run1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "run run1: 1 checkpoints") || !strings.Contains(s, "data+meta") {
		t.Errorf("stats output: %s", s)
	}
	// JSON form parses.
	out.Reset()
	if err := run(context.Background(), []string{"stats", "-store", dir, "-run", "run1", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(out.Bytes(), &m); err != nil {
		t.Fatalf("stats json: %v", err)
	}
	if m["runId"] != "run1" {
		t.Errorf("manifest runId = %v", m["runId"])
	}
	// Missing run errors.
	if err := run(context.Background(), []string{"stats", "-store", dir, "-run", "nope"}, &out); err == nil {
		t.Error("missing run accepted")
	}
	if err := run(context.Background(), []string{"stats", "-store", dir}, &out); err == nil {
		t.Error("missing -run accepted")
	}
}

func TestAnalyzeSubcommand(t *testing.T) {
	dir := seedStore(t, true)
	var out bytes.Buffer
	err := run(context.Background(), []string{"analyze", "-store", dir,
		"-a", "run1/iter0010.rank000.ckpt", "-b", "run2/iter0010.rank000.ckpt"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "divergence profile") || !strings.Contains(s, "suggested eps") {
		t.Errorf("analyze output: %s", s)
	}
	if err := run(context.Background(), []string{"analyze", "-store", dir}, &out); err == nil {
		t.Error("missing -a/-b accepted")
	}
}

func TestEvolutionSubcommand(t *testing.T) {
	dir := seedStore(t, true) // single iteration: evolution needs >= 2
	var out bytes.Buffer
	if err := run(context.Background(), []string{"evolution", "-store", dir, "-run", "run1", "-eps", "1e-5"}, &out); err == nil {
		t.Error("single-checkpoint run accepted")
	}
	// Add a second iteration with metadata for both.
	store, err := repro.NewStore(dir, repro.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	fields := []repro.FieldSpec{{Name: "x", DType: repro.Float32, Count: 8 << 10}}
	meta := repro.Checkpoint{RunID: "run1", Iteration: 20, Rank: 0, Fields: fields}
	if _, err := repro.WriteCheckpoint(store, meta, [][]byte{synth.FieldF32(8<<10, 9)}); err != nil {
		t.Fatal(err)
	}
	opts := repro.Options{Epsilon: 1e-5, ChunkSize: 4096}
	for _, it := range []int{10, 20} {
		if _, _, err := repro.BuildAndSave(context.Background(), store, repro.CheckpointName("run1", it, 0), opts); err != nil {
			t.Fatal(err)
		}
	}
	out.Reset()
	if err := run(context.Background(), []string{"evolution", "-store", dir, "-run", "run1",
		"-eps", "1e-5", "-chunk", "4096"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "iter   10 ->   20") {
		t.Errorf("evolution output: %s", out.String())
	}
}
