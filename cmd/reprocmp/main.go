// Command reprocmp is the offline comparison tool of the paper (§2.5,
// "offline (using a command line tool)"): it builds error-bounded Merkle
// metadata for checkpoints and compares checkpoint pairs or whole run
// histories on a store directory.
//
// Usage:
//
//	reprocmp hash    -store DIR -ckpt NAME -eps 1e-6 [-chunk 65536]
//	reprocmp compare -store DIR -a NAME -b NAME -eps 1e-6 [-chunk 65536] [-method merkle|direct|allclose]
//	reprocmp shard   -store DIR -a NAME -b NAME -eps 1e-6 [-workers 4] [-assign block|placement|random] [-static] [-targets K [-stripe BYTES]]
//	reprocmp group   -store DIR -baseline NAME -runs NAME,NAME,... -eps 1e-6 [-topology star|all-pairs]
//	reprocmp history -store DIR -runa RUN1 -runb RUN2 -eps 1e-6 [-method merkle] [-hash]
//	reprocmp inspect -store DIR -ckpt NAME
//	reprocmp attest     -store DIR -job ID [-journal NAME] [-json]
//	reprocmp verify-log -store DIR [-journal NAME] [-recompute JOB] [-json]
//
// Exit codes: 0 clean match, 1 operational error, 2 proven divergence,
// 3 degraded-but-inconclusive (only with -degrade: the comparison
// completed on a degraded path, found no out-of-bound element, but could
// not verify every candidate chunk). Proven divergence wins over
// degradation.
//
// Every subcommand honours SIGINT/SIGTERM: an interrupted comparison
// cancels its engine plan and exits with the context error.
//
// Checkpoint names follow the canonical <run>/iterNNNN.rankRRR.ckpt
// layout produced by the capture library and cmd/haccgen.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro"
	"repro/internal/catalog"
)

// errDivergent signals a successful comparison that found out-of-bound
// differences; main maps it to exit code 2 so scripts can branch on it.
var errDivergent = errors.New("runs diverge beyond the error bound")

// errDegraded signals a comparison that completed on a degraded path with
// NO proven divergence: some chunks were unread or unverifiable, so the
// clean verdict is inconclusive. main maps it to exit code 3 — distinct
// from both a clean match (0) and proven divergence (2). Proven
// divergence always wins: a degraded run that still found out-of-bound
// elements exits 2.
var errDegraded = errors.New("comparison degraded: result is inconclusive")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errDivergent) {
			os.Exit(2)
		}
		if errors.Is(err, errDegraded) {
			fmt.Fprintln(os.Stderr, "reprocmp:", err)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "reprocmp:", err)
		os.Exit(1)
	}
}

// verdict maps a completed comparison onto the exit-code contract.
func verdict(diverged, degraded bool) error {
	switch {
	case diverged:
		return errDivergent
	case degraded:
		return errDegraded
	}
	return nil
}

func run(ctx context.Context, args []string, out io.Writer) error {
	if len(args) < 1 {
		return errors.New("usage: reprocmp <hash|compare|shard|group|history|inspect|compact|stats|analyze|evolution|attest|verify-log> [flags]")
	}
	switch args[0] {
	case "hash":
		return cmdHash(ctx, args[1:], out)
	case "compare":
		return cmdCompare(ctx, args[1:], out)
	case "shard":
		return cmdShard(ctx, args[1:], out)
	case "group":
		return cmdGroup(ctx, args[1:], out)
	case "history":
		return cmdHistory(ctx, args[1:], out)
	case "inspect":
		return cmdInspect(ctx, args[1:], out)
	case "compact":
		return cmdCompact(ctx, args[1:], out)
	case "stats":
		return cmdStats(ctx, args[1:], out)
	case "analyze":
		return cmdAnalyze(ctx, args[1:], out)
	case "evolution":
		return cmdEvolution(ctx, args[1:], out)
	case "attest":
		return cmdAttest(ctx, args[1:], out)
	case "verify-log":
		return cmdVerifyLog(ctx, args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func cmdEvolution(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("evolution", flag.ContinueOnError)
	dir := fs.String("store", "", "store directory")
	runID := fs.String("run", "", "run ID")
	eps := fs.Float64("eps", 0, "error bound the metadata was built with")
	chunk := fs.Int("chunk", 64<<10, "chunk size the metadata was built with")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := openStore(*dir)
	if err != nil {
		return err
	}
	if *runID == "" {
		return errors.New("-run is required")
	}
	report, err := repro.Evolution(ctx, store, *runID, repro.Options{Epsilon: *eps, ChunkSize: *chunk})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "state evolution of run %s relative to eps=%g (metadata only):\n", *runID, *eps)
	for _, p := range report.Points {
		fmt.Fprintf(out, "  iter %4d -> %4d rank %3d: %5.1f%% of chunks changed (%d/%d)\n",
			p.FromIter, p.ToIter, p.Rank, 100*p.ChangedFraction(), p.CandidateChunks, p.TotalChunks)
	}
	return nil
}

func cmdAnalyze(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	dir := fs.String("store", "", "store directory")
	a := fs.String("a", "", "first checkpoint name")
	b := fs.String("b", "", "second checkpoint name")
	budget := fs.Float64("budget", 0.01, "divergent-element budget for the ε suggestion")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := openStore(*dir)
	if err != nil {
		return err
	}
	if *a == "" || *b == "" {
		return errors.New("-a and -b are required")
	}
	an, err := repro.Analyze(ctx, store, *a, *b)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "divergence profile of %s vs %s:\n", *a, *b)
	for i := range an.Fields {
		h := &an.Fields[i]
		fmt.Fprintln(out, h.String())
		if eps := h.SuggestEpsilon(*budget); eps > 0 {
			fmt.Fprintf(out, "  suggested eps (<=%.1f%% divergent): %g\n", 100**budget, eps)
		}
	}
	return nil
}

func cmdStats(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	dir := fs.String("store", "", "store directory")
	runID := fs.String("run", "", "run ID")
	asJSON := fs.Bool("json", false, "emit the manifest as JSON")
	rescan := fs.Bool("rescan", false, "rebuild the manifest from the store contents")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := openStore(*dir)
	if err != nil {
		return err
	}
	if *runID == "" {
		return errors.New("-run is required")
	}
	m, err := catalog.Load(ctx, store, *runID)
	if err != nil || *rescan {
		m, err = catalog.Scan(ctx, store, *runID, nil)
		if err != nil {
			return err
		}
		if err := catalog.Save(store, m); err != nil {
			return err
		}
	}
	if *asJSON {
		return emitJSON(out, m)
	}
	fmt.Fprintf(out, "run %s: %d checkpoints, %s of data (%s live after compaction)\n",
		m.RunID, len(m.Checkpoints), byteCount(m.TotalDataBytes()), byteCount(m.LiveDataBytes()))
	if m.App != "" {
		fmt.Fprintf(out, "produced by: %s %s\n", m.App, m.Config)
	}
	for _, e := range m.Checkpoints {
		state := "data+meta"
		switch {
		case e.Compacted:
			state = "meta only"
		case !e.HasMetadata:
			state = "data only"
		}
		fmt.Fprintf(out, "  iter %4d rank %3d: %d fields, %s  [%s", e.Iteration, e.Rank,
			e.Fields, byteCount(e.DataBytes), state)
		if e.HasMetadata {
			fmt.Fprintf(out, ", eps=%g chunk=%d meta=%s", e.Epsilon, e.ChunkSize, byteCount(e.MetaBytes))
		}
		fmt.Fprintln(out, "]")
	}
	return nil
}

func byteCount(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

func cmdCompact(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("compact", flag.ContinueOnError)
	dir := fs.String("store", "", "store directory")
	run := fs.String("run", "", "run ID to compact")
	keep := fs.Int("keep", 1, "latest iterations to keep at full data")
	eps := fs.Float64("eps", 0, "error bound for metadata built during the pass")
	chunk := fs.Int("chunk", 64<<10, "chunk size for metadata built during the pass")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := openStore(*dir)
	if err != nil {
		return err
	}
	if *run == "" {
		return errors.New("-run is required")
	}
	report, err := repro.CompactHistory(ctx, store, *run, *keep, repro.Options{Epsilon: *eps, ChunkSize: *chunk})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "compacted %d checkpoints of run %s, freed %d bytes (metadata built for %d)\n",
		len(report.Removed), *run, report.BytesFreed, len(report.MetadataBuilt))
	for _, n := range report.Removed {
		fmt.Fprintf(out, "  %s -> metadata only\n", n)
	}
	return nil
}

func openStore(dir string) (*repro.Store, error) {
	if dir == "" {
		return nil, errors.New("-store is required")
	}
	return repro.NewStore(dir, repro.LustreModel())
}

func methodByName(name string) (repro.Method, error) {
	switch name {
	case "merkle", "":
		return repro.MethodMerkle, nil
	case "direct":
		return repro.MethodDirect, nil
	case "allclose":
		return repro.MethodAllClose, nil
	default:
		return 0, fmt.Errorf("unknown method %q", name)
	}
}

func cmdHash(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hash", flag.ContinueOnError)
	dir := fs.String("store", "", "store directory")
	name := fs.String("ckpt", "", "checkpoint name within the store")
	eps := fs.Float64("eps", 0, "absolute error bound")
	chunk := fs.Int("chunk", 64<<10, "chunk size in bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := openStore(*dir)
	if err != nil {
		return err
	}
	if *name == "" {
		return errors.New("-ckpt is required")
	}
	opts := repro.Options{Epsilon: *eps, ChunkSize: *chunk}
	m, stats, err := repro.BuildAndSave(ctx, store, *name, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "built metadata for %s: %d fields, %d bytes, hashed %d bytes in %v (wall)\n",
		*name, len(m.Fields), m.Bytes(), stats.Bytes, stats.Wall)
	fmt.Fprintf(out, "saved as %s\n", repro.MetadataName(*name))
	return nil
}

func cmdCompare(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	dir := fs.String("store", "", "store directory")
	a := fs.String("a", "", "first checkpoint name")
	b := fs.String("b", "", "second checkpoint name")
	eps := fs.Float64("eps", 0, "absolute error bound")
	chunk := fs.Int("chunk", 64<<10, "chunk size in bytes")
	methodName := fs.String("method", "merkle", "merkle | direct | allclose")
	verbose := fs.Bool("v", false, "list divergent indices")
	asJSON := fs.Bool("json", false, "emit a machine-readable JSON report")
	degrade := fs.Bool("degrade", false, "degrade on storage failures instead of aborting (exit 3 when inconclusive)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := openStore(*dir)
	if err != nil {
		return err
	}
	if *a == "" || *b == "" {
		return errors.New("-a and -b are required")
	}
	method, err := methodByName(*methodName)
	if err != nil {
		return err
	}
	opts := repro.Options{Epsilon: *eps, ChunkSize: *chunk, Degrade: *degrade}

	if method == repro.MethodAllClose && !*asJSON {
		ok, err := repro.AllClose(ctx, store, *a, *b, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "allclose(eps=%g): %v\n", *eps, ok)
		if !ok {
			return errDivergent
		}
		return nil
	}
	res, err := method.Run(ctx, store, *a, *b, opts)
	if err != nil {
		return err
	}
	if *asJSON {
		if err := emitJSON(out, toJSONResult(res, *verbose)); err != nil {
			return err
		}
	} else {
		printResult(out, res, *verbose)
	}
	return verdict(res.DiffCount != 0, res.Degraded || res.UnverifiedChunks > 0)
}

func printResult(out io.Writer, res *repro.Result, verbose bool) {
	fmt.Fprintf(out, "method=%s diffs=%d elements=%d\n", res.Method, res.DiffCount, res.TotalElements)
	if res.Degraded || res.UnverifiedChunks > 0 {
		fmt.Fprintf(out, "DEGRADED: %d candidate chunks unverified (retries=%d, ring fallbacks=%d); absence of diffs is inconclusive\n",
			res.UnverifiedChunks, res.ReadRetries, res.RingFallbacks)
	}
	if res.Method == "merkle" {
		fmt.Fprintf(out, "chunks: %d candidates of %d total, %d really changed (%d false positives)\n",
			res.CandidateChunks, res.TotalChunks, res.ChangedChunks, res.FalsePositiveChunks())
		fmt.Fprintf(out, "metadata: %d bytes per run\n", res.MetadataBytes)
	}
	fmt.Fprintf(out, "read %d bytes; wall %v; virtual %v (%.2f GB/s model throughput)\n",
		res.BytesRead, res.WallElapsed().Round(1000), res.VirtualElapsed().Round(1000), res.ThroughputGBps())
	for _, d := range res.Diffs {
		fmt.Fprintf(out, "field %-4s: %d divergent elements", d.Field, len(d.Indices))
		if verbose {
			fmt.Fprintf(out, " at %v", d.Indices)
		} else if len(d.Indices) > 0 {
			fmt.Fprintf(out, " (first at %d, last at %d)", d.Indices[0], d.Indices[len(d.Indices)-1])
		}
		fmt.Fprintln(out)
	}
}

// cmdShard runs the two-stage Merkle comparison with stage 2 sharded
// across simulated workers (the ShardCompare API), reporting both the
// comparison verdict and the schedule's shape.
func cmdShard(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("shard", flag.ContinueOnError)
	dir := fs.String("store", "", "store directory")
	a := fs.String("a", "", "first checkpoint name")
	b := fs.String("b", "", "second checkpoint name")
	eps := fs.Float64("eps", 0, "absolute error bound")
	chunk := fs.Int("chunk", 64<<10, "chunk size in bytes")
	workers := fs.Int("workers", 4, "simulated worker count")
	budget := fs.Int64("budget", 0, "per-worker in-flight buffer budget in bytes (0 = default)")
	subtree := fs.Int("subtree", 0, "chunks per work-unit subtree (0 = default)")
	assign := fs.String("assign", "block", "block | placement | random")
	static := fs.Bool("static", false, "disable work stealing")
	seed := fs.Uint64("seed", 0, "seed for the random assignment policy")
	targets := fs.Int("targets", 0, "stripe the store across K simulated OSTs (0 = unstriped)")
	stripe := fs.Int64("stripe", 1<<20, "stripe width in bytes (with -targets)")
	verbose := fs.Bool("v", false, "list divergent indices")
	asJSON := fs.Bool("json", false, "emit a machine-readable JSON report")
	degrade := fs.Bool("degrade", false, "degrade on storage failures instead of aborting (exit 3 when inconclusive)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := openStore(*dir)
	if err != nil {
		return err
	}
	if *a == "" || *b == "" {
		return errors.New("-a and -b are required")
	}
	var policy repro.ShardAssignment
	switch *assign {
	case "block", "":
		policy = repro.ShardAssignBlock
	case "placement":
		policy = repro.ShardAssignPlacement
	case "random":
		policy = repro.ShardAssignRandom
	default:
		return fmt.Errorf("unknown assignment policy %q", *assign)
	}
	if *targets > 0 {
		if err := store.SetStriping(repro.Striping{Targets: *targets, StripeBytes: *stripe}); err != nil {
			return err
		}
	}
	cfg := repro.ShardConfig{
		Workers:       *workers,
		Budget:        *budget,
		SubtreeChunks: *subtree,
		Assignment:    policy,
		Stealing:      !*static,
		Seed:          *seed,
	}
	opts := repro.Options{Epsilon: *eps, ChunkSize: *chunk, Degrade: *degrade}
	res, stats, err := repro.ShardCompare(ctx, store, *a, *b, cfg, opts)
	if err != nil {
		return err
	}
	if *asJSON {
		if err := emitJSON(out, struct {
			Result jsonResult        `json:"result"`
			Shard  *repro.ShardStats `json:"shard"`
		}{toJSONResult(res, *verbose), stats}); err != nil {
			return err
		}
	} else {
		printResult(out, res, *verbose)
		fmt.Fprintf(out, "shard: %d workers (%s%s), %d units", stats.Workers, stats.Assignment,
			map[bool]string{true: ", stealing", false: ""}[stats.Stealing], stats.Units)
		if stats.Targets > 0 {
			fmt.Fprintf(out, " over %d OSTs", stats.Targets)
		}
		fmt.Fprintf(out, "; makespan %v, %d steals (%d units), peak in-flight %d of %d budget\n",
			stats.MakespanVirtual.Round(1000), stats.Steals, stats.StolenUnits,
			stats.PeakInFlight, stats.BudgetBytes)
		if stats.WorkerFailures > 0 {
			fmt.Fprintf(out, "shard: %d worker(s) died; %d units drained by the coordinator\n",
				stats.WorkerFailures, stats.CoordinatorUnits)
		}
	}
	return verdict(res.DiffCount != 0, res.Degraded || res.UnverifiedChunks > 0)
}

// cmdGroup compares N runs' checkpoints against a baseline in one engine
// plan, sharing stage-2 reads between pairs (the GroupCompare API).
func cmdGroup(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("group", flag.ContinueOnError)
	dir := fs.String("store", "", "store directory")
	baseline := fs.String("baseline", "", "baseline checkpoint name")
	runs := fs.String("runs", "", "comma-separated checkpoint names to compare against the baseline")
	eps := fs.Float64("eps", 0, "absolute error bound")
	chunk := fs.Int("chunk", 64<<10, "chunk size in bytes")
	topoName := fs.String("topology", "star", "star | all-pairs")
	asJSON := fs.Bool("json", false, "emit a machine-readable JSON report")
	degrade := fs.Bool("degrade", false, "degrade on storage failures instead of aborting (exit 3 when inconclusive)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := openStore(*dir)
	if err != nil {
		return err
	}
	if *baseline == "" || *runs == "" {
		return errors.New("-baseline and -runs are required")
	}
	var topo repro.Topology
	switch *topoName {
	case "star", "":
		topo = repro.TopologyStar
	case "all-pairs":
		topo = repro.TopologyAllPairs
	default:
		return fmt.Errorf("unknown topology %q", *topoName)
	}
	names := strings.Split(*runs, ",")
	rep, err := repro.GroupCompare(ctx, store, *baseline, names, topo, repro.Options{Epsilon: *eps, ChunkSize: *chunk, Degrade: *degrade})
	if err != nil {
		return err
	}
	diverged := false
	for _, p := range rep.Pairs {
		if p.Result.DiffCount != 0 {
			diverged = true
		}
	}
	if *asJSON {
		if err := emitJSON(out, rep); err != nil {
			return err
		}
		return verdict(diverged, rep.Degraded())
	}
	fmt.Fprintf(out, "group comparison of %d members (%s): %d pairs, %d read ops, %d bytes read\n",
		len(rep.Members), topo, len(rep.Pairs), rep.ReadOps, rep.ReadBytes)
	for _, p := range rep.Pairs {
		status := "match"
		switch {
		case p.Result.DiffCount != 0:
			status = fmt.Sprintf("%d divergent elements", p.Result.DiffCount)
			if p.Result.Degraded {
				status += fmt.Sprintf(" (DEGRADED: %d chunks unverified)", p.Result.UnverifiedChunks)
			}
		case p.Result.Degraded:
			status = fmt.Sprintf("DEGRADED: %d chunks unverified, no proven divergence", p.Result.UnverifiedChunks)
		}
		fmt.Fprintf(out, "  %s vs %s: %s\n", p.NameA, p.NameB, status)
	}
	return verdict(diverged, rep.Degraded())
}

func cmdHistory(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("history", flag.ContinueOnError)
	dir := fs.String("store", "", "store directory")
	runA := fs.String("runa", "", "first run ID")
	runB := fs.String("runb", "", "second run ID")
	eps := fs.Float64("eps", 0, "absolute error bound")
	chunk := fs.Int("chunk", 64<<10, "chunk size in bytes")
	methodName := fs.String("method", "merkle", "merkle | direct | allclose")
	hash := fs.Bool("hash", false, "build any missing metadata first")
	asJSON := fs.Bool("json", false, "emit a machine-readable JSON report")
	degrade := fs.Bool("degrade", false, "degrade on storage failures instead of aborting (exit 3 when inconclusive)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := openStore(*dir)
	if err != nil {
		return err
	}
	if *runA == "" || *runB == "" {
		return errors.New("-runa and -runb are required")
	}
	method, err := methodByName(*methodName)
	if err != nil {
		return err
	}
	opts := repro.Options{Epsilon: *eps, ChunkSize: *chunk, Degrade: *degrade}

	if *hash && method == repro.MethodMerkle {
		for _, run := range []string{*runA, *runB} {
			names, err := repro.History(store, run)
			if err != nil {
				return err
			}
			for _, n := range names {
				if _, _, err := repro.BuildAndSave(ctx, store, n, opts); err != nil {
					return fmt.Errorf("hash %s: %w", n, err)
				}
			}
		}
	}

	report, err := repro.CompareHistories(ctx, store, *runA, *runB, method, opts)
	if err != nil {
		return err
	}
	if *asJSON {
		if err := emitJSON(out, toJSONHistory(report, method, *eps)); err != nil {
			return err
		}
		return verdict(!report.Reproducible(), report.Degraded())
	}
	fmt.Fprintf(out, "compared %d checkpoint pairs of %s vs %s (eps=%g, method=%s)\n",
		len(report.Pairs), *runA, *runB, *eps, method)
	for _, p := range report.Pairs {
		status := "match"
		if p.Result.DiffCount > 0 {
			status = fmt.Sprintf("%d divergent elements", p.Result.DiffCount)
		} else if p.Result.DiffCount < 0 {
			status = "diverged (allclose)"
		}
		if p.Result.Degraded {
			status += fmt.Sprintf(" (DEGRADED: %d chunks unverified)", p.Result.UnverifiedChunks)
		}
		fmt.Fprintf(out, "  iter %4d rank %3d: %s\n", p.Iteration, p.Rank, status)
	}
	if report.Reproducible() {
		if report.Degraded() {
			fmt.Fprintln(out, "no proven divergence, but the comparison degraded: inconclusive")
		} else {
			fmt.Fprintln(out, "runs are reproducible within the error bound")
		}
		return verdict(false, report.Degraded())
	}
	fmt.Fprintf(out, "first divergence: iteration %d, rank %d\n",
		report.FirstDivergence.Iteration, report.FirstDivergence.Rank)
	return errDivergent
}

func cmdInspect(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	dir := fs.String("store", "", "store directory")
	name := fs.String("ckpt", "", "checkpoint name within the store")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := openStore(*dir)
	if err != nil {
		return err
	}
	if *name == "" {
		return errors.New("-ckpt is required")
	}
	r, err := repro.OpenCheckpoint(store, *name)
	if err != nil {
		return err
	}
	defer r.Close()
	meta := r.Meta()
	fmt.Fprintf(out, "checkpoint %s: run=%s iteration=%d rank=%d, %d fields, %d data bytes\n",
		*name, meta.RunID, meta.Iteration, meta.Rank, len(meta.Fields), meta.TotalBytes())
	for i, f := range meta.Fields {
		fmt.Fprintf(out, "  field %d: %-6s %s x %d (%d bytes)\n", i, f.Name, f.DType, f.Count, f.Bytes())
	}
	if m, err := repro.LoadMetadata(ctx, store, *name); err == nil {
		fmt.Fprintf(out, "metadata present: eps=%g, %d bytes\n", m.Epsilon, m.Bytes())
	} else {
		fmt.Fprintln(out, "no metadata saved for this checkpoint")
	}
	return nil
}
