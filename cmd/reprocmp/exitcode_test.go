package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

const (
	ck1 = "run1/iter0010.rank000.ckpt"
	ck2 = "run2/iter0010.rank000.ckpt"
)

// hashBoth builds metadata for both seeded runs.
func hashBoth(t *testing.T, dir string) {
	t.Helper()
	var out bytes.Buffer
	for _, ck := range []string{ck1, ck2} {
		if err := run(context.Background(), []string{"hash", "-store", dir, "-ckpt", ck,
			"-eps", "1e-5", "-chunk", "4096"}, &out); err != nil {
			t.Fatal(err)
		}
	}
}

// corruptCheckpoint flips one high exponent bit every 256 bytes of the
// checkpoint's data region on disk, after metadata was built — every chunk
// re-reads corrupt, so with -degrade every candidate chunk goes Unverified.
func corruptCheckpoint(t *testing.T, dir, name string) {
	t.Helper()
	store, err := repro.NewStore(dir, repro.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	r, err := repro.OpenCheckpoint(store, name)
	if err != nil {
		t.Fatal(err)
	}
	dataStart := r.FieldFileOffset(0)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, filepath.FromSlash(name))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := dataStart + 3; off < int64(len(raw)); off += 256 {
		raw[off] ^= 0x40
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestVerdictPrecedence(t *testing.T) {
	if err := verdict(true, true); !errors.Is(err, errDivergent) {
		t.Errorf("proven divergence must win over degradation, got %v", err)
	}
	if err := verdict(false, true); !errors.Is(err, errDegraded) {
		t.Errorf("degraded-only = %v, want errDegraded", err)
	}
	if err := verdict(false, false); err != nil {
		t.Errorf("clean = %v, want nil", err)
	}
}

// TestExitCodeContractCompare walks the compare subcommand through all
// four exit classes: clean match, proven divergence, degraded
// inconclusive, and operational error.
func TestExitCodeContractCompare(t *testing.T) {
	var out bytes.Buffer

	// Clean match -> nil (exit 0).
	clean := seedStore(t, false)
	hashBoth(t, clean)
	if err := run(context.Background(), []string{"compare", "-store", clean, "-a", ck1, "-b", ck2,
		"-eps", "1e-5", "-chunk", "4096"}, &out); err != nil {
		t.Errorf("clean match error = %v, want nil", err)
	}

	// Proven divergence -> errDivergent (exit 2).
	div := seedStore(t, true)
	hashBoth(t, div)
	if err := run(context.Background(), []string{"compare", "-store", div, "-a", ck1, "-b", ck2,
		"-eps", "1e-5", "-chunk", "4096"}, &out); !errors.Is(err, errDivergent) {
		t.Errorf("divergence error = %v, want errDivergent", err)
	}

	// Degraded, no proven divergence -> errDegraded (exit 3): all of
	// run2's chunks fail integrity verification, so the divergent
	// candidates are excluded from diffing and the verdict is
	// inconclusive rather than clean.
	corruptCheckpoint(t, div, ck2)
	out.Reset()
	err := run(context.Background(), []string{"compare", "-store", div, "-a", ck1, "-b", ck2,
		"-eps", "1e-5", "-chunk", "4096", "-degrade"}, &out)
	if !errors.Is(err, errDegraded) {
		t.Errorf("degraded error = %v, want errDegraded", err)
	}
	if !strings.Contains(out.String(), "DEGRADED") {
		t.Errorf("degraded output missing marker: %s", out.String())
	}

	// Operational error -> plain error (exit 1), never the verdict
	// sentinels.
	err = run(context.Background(), []string{"compare", "-store", t.TempDir(), "-a", ck1, "-b", ck2,
		"-eps", "1e-5"}, &out)
	if err == nil || errors.Is(err, errDivergent) || errors.Is(err, errDegraded) {
		t.Errorf("operational error = %v, want a plain failure", err)
	}
}

// TestExitCodeContractGroup covers the same contract through the group
// subcommand.
func TestExitCodeContractGroup(t *testing.T) {
	var out bytes.Buffer

	clean := seedStore(t, false)
	hashBoth(t, clean)
	if err := run(context.Background(), []string{"group", "-store", clean, "-baseline", ck1,
		"-runs", ck2, "-eps", "1e-5", "-chunk", "4096"}, &out); err != nil {
		t.Errorf("clean group error = %v, want nil", err)
	}

	div := seedStore(t, true)
	hashBoth(t, div)
	if err := run(context.Background(), []string{"group", "-store", div, "-baseline", ck1,
		"-runs", ck2, "-eps", "1e-5", "-chunk", "4096"}, &out); !errors.Is(err, errDivergent) {
		t.Errorf("divergent group error = %v, want errDivergent", err)
	}

	corruptCheckpoint(t, div, ck2)
	out.Reset()
	err := run(context.Background(), []string{"group", "-store", div, "-baseline", ck1,
		"-runs", ck2, "-eps", "1e-5", "-chunk", "4096", "-degrade"}, &out)
	if !errors.Is(err, errDegraded) {
		t.Errorf("degraded group error = %v, want errDegraded", err)
	}
	if !strings.Contains(out.String(), "DEGRADED") {
		t.Errorf("degraded group output missing marker: %s", out.String())
	}

	// Strict mode on the corrupt store still completes (no integrity
	// check) but must not report the degraded verdict.
	err = run(context.Background(), []string{"group", "-store", div, "-baseline", ck1,
		"-runs", ck2, "-eps", "1e-5", "-chunk", "4096"}, &out)
	if errors.Is(err, errDegraded) {
		t.Errorf("strict group returned degraded verdict: %v", err)
	}

	err = run(context.Background(), []string{"group", "-store", t.TempDir(), "-baseline", ck1,
		"-runs", ck2, "-eps", "1e-5"}, &out)
	if err == nil || errors.Is(err, errDivergent) || errors.Is(err, errDegraded) {
		t.Errorf("operational group error = %v, want a plain failure", err)
	}
}

// TestExitCodeContractHistory covers the degraded verdict through the
// history subcommand.
func TestExitCodeContractHistory(t *testing.T) {
	var out bytes.Buffer
	div := seedStore(t, true)
	hashBoth(t, div)
	corruptCheckpoint(t, div, ck2)
	err := run(context.Background(), []string{"history", "-store", div, "-runa", "run1", "-runb", "run2",
		"-eps", "1e-5", "-chunk", "4096", "-degrade"}, &out)
	if !errors.Is(err, errDegraded) {
		t.Errorf("degraded history error = %v, want errDegraded", err)
	}
	if !strings.Contains(out.String(), "inconclusive") {
		t.Errorf("degraded history output: %s", out.String())
	}
}
