package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro"
)

// server is the HTTP surface over one plane and one store. Sessions are
// opened per tenant on first use and shared across requests; jobs are
// indexed by their plane-unique ID for polling.
type server struct {
	plane *repro.Plane
	store *repro.Store
	mux   *http.ServeMux

	mu       sync.Mutex
	sessions map[string]*repro.Session
	jobs     map[uint64]*repro.Job
}

func newServer(plane *repro.Plane, store *repro.Store) *server {
	s := &server{
		plane:    plane,
		store:    store,
		mux:      http.NewServeMux(),
		sessions: make(map[string]*repro.Session),
		jobs:     make(map[uint64]*repro.Job),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /v1/runs", s.handleRegister)
	s.mux.HandleFunc("GET /v1/runs", s.handleListRuns)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/wait", s.handleJobWait)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// session returns (opening on first use) the tenant's session. An empty
// tenant parameter maps to the "default" tenant.
func (s *server) session(r *http.Request) *repro.Session {
	tenant := r.URL.Query().Get("tenant")
	if tenant == "" {
		tenant = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[tenant]
	if !ok {
		sess = s.plane.Open(tenant)
		s.sessions[tenant] = sess
	}
	return sess
}

// writeJSON emits one JSON document with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
	// RetryAfterMs carries the virtual backpressure price of an
	// admission rejection (429 responses only).
	RetryAfterMs int64 `json:"retryAfterMs,omitempty"`
}

// writeError maps the service error taxonomy onto HTTP:
// *AdmissionError → 429 with a Retry-After header, *BindingError → the
// caller's chosen binding status (409 register conflict, 422 submission
// contradiction), ErrPlaneClosed → 503, anything else → 400.
func writeError(w http.ResponseWriter, err error, bindingStatus int) {
	var adm *repro.AdmissionError
	if errors.As(err, &adm) {
		// HTTP Retry-After is whole seconds; round the virtual price up
		// so a compliant client never resubmits early. The exact price
		// rides in the JSON body.
		secs := int64((adm.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeJSON(w, http.StatusTooManyRequests, errorBody{
			Error:        adm.Error(),
			RetryAfterMs: adm.RetryAfter.Milliseconds(),
		})
		return
	}
	var bind *repro.BindingError
	if errors.As(err, &bind) {
		writeJSON(w, bindingStatus, errorBody{Error: bind.Error()})
		return
	}
	if errors.Is(err, repro.ErrPlaneClosed) {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleRegister installs an immutable run binding for the tenant.
// Registering the identical binding again is a no-op 200; a conflicting
// one is a 409 and changes nothing.
func (s *server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var b repro.RunBinding
	if err := json.NewDecoder(r.Body).Decode(&b); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad binding JSON: " + err.Error()})
		return
	}
	if err := s.session(r).Register(b); err != nil {
		writeError(w, err, http.StatusConflict)
		return
	}
	writeJSON(w, http.StatusOK, b)
}

func (s *server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.session(r).Bindings())
}

// jobRequest is the submission body: the job's checkpoint names plus the
// comparison knobs the daemon exposes.
type jobRequest struct {
	Kind     string   `json:"kind"` // "compare" | "group" | "shard"
	A        string   `json:"a,omitempty"`
	B        string   `json:"b,omitempty"`
	Baseline string   `json:"baseline,omitempty"`
	Runs     []string `json:"runs,omitempty"`
	Topology string   `json:"topology,omitempty"` // "star" (default) | "all-pairs"
	// Epsilon is the error bound ε (required).
	Epsilon float64 `json:"epsilon"`
	// ChunkSize overrides the 64 KiB default.
	ChunkSize int `json:"chunkSize,omitempty"`
	// Degrade enables the degradation ladder (verdict 3 instead of a
	// failed job when stage 2 cannot verify every candidate chunk).
	Degrade bool `json:"degrade,omitempty"`
	// ShardWorkers sizes the simulated fleet of a shard job.
	ShardWorkers int `json:"shardWorkers,omitempty"`
}

func (jr jobRequest) spec() (repro.JobSpec, error) {
	spec := repro.JobSpec{
		Kind:     repro.JobKind(jr.Kind),
		A:        jr.A,
		B:        jr.B,
		Baseline: jr.Baseline,
		Runs:     jr.Runs,
		Options: repro.Options{
			Epsilon:   jr.Epsilon,
			ChunkSize: jr.ChunkSize,
			Degrade:   jr.Degrade,
		},
	}
	switch jr.Topology {
	case "", "star":
		spec.Topology = repro.TopologyStar
	case "all-pairs":
		spec.Topology = repro.TopologyAllPairs
	default:
		return spec, fmt.Errorf("unknown topology %q", jr.Topology)
	}
	spec.Shard.Workers = jr.ShardWorkers
	return spec, nil
}

// handleSubmit accepts a job: 202 with the job snapshot when admitted,
// 429 + Retry-After under backpressure, 422 when the submission
// contradicts a run binding.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var jr jobRequest
	if err := json.NewDecoder(r.Body).Decode(&jr); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job JSON: " + err.Error()})
		return
	}
	spec, err := jr.spec()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	job, err := s.session(r).Submit(s.store, spec)
	if err != nil {
		writeError(w, err, http.StatusUnprocessableEntity)
		return
	}
	s.mu.Lock()
	s.jobs[job.ID()] = job
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, job.Status())
}

// job resolves the {id} path value.
func (s *server) job(w http.ResponseWriter, r *http.Request) (*repro.Job, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job id"})
		return nil, false
	}
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no job %d", id)})
		return nil, false
	}
	return job, true
}

func (s *server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleJobWait long-polls the verdict: it responds as soon as the job
// publishes, or after timeoutMs (default 30s) with the current snapshot
// and status 200 either way — the "state" field says which.
func (s *server) handleJobWait(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	timeout := 30 * time.Second
	if ms := r.URL.Query().Get("timeoutMs"); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad timeoutMs"})
			return
		}
		timeout = time.Duration(n) * time.Millisecond
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-job.Done():
	case <-timer.C:
	case <-r.Context().Done():
	}
	writeJSON(w, http.StatusOK, job.Status())
}
