package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
)

// server is the HTTP surface over one plane and one store. Sessions are
// opened per tenant on first use and shared across requests; jobs are
// indexed by their plane-unique ID for polling. When the daemon runs
// with -journal, verdicts recovered from the ledger are served from the
// ledger map — a completed job survives kill -9 without recomputation.
type server struct {
	plane *repro.Plane
	store *repro.Store
	mux   *http.ServeMux

	// drain closes when graceful shutdown begins: in-flight long-polls
	// wake up and answer (final verdict if published, clean 503
	// otherwise) instead of hanging into the HTTP shutdown deadline.
	drain     chan struct{}
	drainOnce sync.Once

	mu       sync.Mutex
	sessions map[string]*repro.Session
	jobs     map[uint64]*repro.Job
	// ledger maps completed jobs recovered from the journal to their
	// durable verdict records (served, never recomputed).
	ledger map[uint64]repro.WALRecord
}

func newServer(plane *repro.Plane, store *repro.Store) *server {
	s := &server{
		plane:    plane,
		store:    store,
		mux:      http.NewServeMux(),
		drain:    make(chan struct{}),
		sessions: make(map[string]*repro.Session),
		jobs:     make(map[uint64]*repro.Job),
		ledger:   make(map[uint64]repro.WALRecord),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/runs", s.handleRegister)
	s.mux.HandleFunc("GET /v1/runs", s.handleListRuns)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/wait", s.handleJobWait)
	return s
}

// adopt installs a journal recovery into the serving maps: ledger
// verdicts become servable and re-admitted jobs become pollable under
// their original IDs.
func (s *server) adopt(rec *repro.PlaneRecovery) {
	if rec == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, r := range rec.Ledger {
		s.ledger[id] = r
	}
	for _, job := range rec.Resumed {
		s.jobs[job.ID()] = job
	}
}

// beginDrain wakes every in-flight long-poll; idempotent.
func (s *server) beginDrain() {
	s.drainOnce.Do(func() { close(s.drain) })
}

// jsonErrorWriter guarantees the error contract: any response the
// handlers did not shape themselves (the mux's own 404/405, for
// example) is rewritten as the uniform JSON error body instead of
// net/http's text/plain default.
type jsonErrorWriter struct {
	http.ResponseWriter
	intercepted bool
}

func (w *jsonErrorWriter) WriteHeader(status int) {
	// The handlers' own errors arrive with the JSON Content-Type already
	// set and pass through. net/http's internals (the mux's 404/405 via
	// http.Error) set text/plain before calling WriteHeader, so matching
	// only an empty Content-Type would miss exactly the responses this
	// wrapper exists for.
	ct := w.Header().Get("Content-Type")
	if status >= 400 && (ct == "" || strings.HasPrefix(ct, "text/plain")) {
		w.intercepted = true
		w.Header().Del("X-Content-Type-Options")
		w.Header().Set("Content-Type", "application/json")
		w.ResponseWriter.WriteHeader(status)
		body, _ := json.Marshal(errorBody{Error: http.StatusText(status)})
		_, _ = w.ResponseWriter.Write(append(body, '\n'))
		return
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *jsonErrorWriter) Write(p []byte) (int, error) {
	if w.intercepted {
		// Swallow the handler's plain-text body; the JSON body is
		// already written.
		return len(p), nil
	}
	return w.ResponseWriter.Write(p)
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(&jsonErrorWriter{ResponseWriter: w}, r)
}

// session returns (opening on first use) the tenant's session. An empty
// tenant parameter maps to the "default" tenant.
func (s *server) session(r *http.Request) *repro.Session {
	tenant := r.URL.Query().Get("tenant")
	if tenant == "" {
		tenant = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[tenant]
	if !ok {
		sess = s.plane.Open(tenant)
		s.sessions[tenant] = sess
	}
	return sess
}

// writeJSON emits one JSON document with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
	// RetryAfterMs carries the virtual backpressure price of an
	// admission rejection (429 responses only).
	RetryAfterMs int64 `json:"retryAfterMs,omitempty"`
}

// writeError maps the service error taxonomy onto HTTP:
// *AdmissionError → 429 with a Retry-After header, *BindingError → the
// caller's chosen binding status (409 register conflict, 422 submission
// contradiction), ErrPlaneClosed → 503, anything else → 400. Every
// branch writes the JSON errorBody with Content-Type set.
func writeError(w http.ResponseWriter, err error, bindingStatus int) {
	var adm *repro.AdmissionError
	if errors.As(err, &adm) {
		// HTTP Retry-After is whole seconds; round the virtual price up
		// so a compliant client never resubmits early. The exact price
		// rides in the JSON body.
		secs := int64((adm.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeJSON(w, http.StatusTooManyRequests, errorBody{
			Error:        adm.Error(),
			RetryAfterMs: adm.RetryAfter.Milliseconds(),
		})
		return
	}
	var bind *repro.BindingError
	if errors.As(err, &bind) {
		writeJSON(w, bindingStatus, errorBody{Error: bind.Error()})
		return
	}
	if errors.Is(err, repro.ErrPlaneClosed) {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// metricsBody is the GET /v1/metrics document: per-tenant admission
// counters plus plane- and journal-level gauges.
type metricsBody struct {
	Tenants      []repro.TenantAdmission `json:"tenants"`
	PeakInFlight int                     `json:"peakInFlight"`
	Journal      *journalMetrics         `json:"journal,omitempty"`
}

type journalMetrics struct {
	Name      string `json:"name"`
	Seq       uint64 `json:"seq"`
	SizeBytes int64  `json:"sizeBytes"`
	Wedged    string `json:"wedged,omitempty"`
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	body := metricsBody{
		Tenants:      s.plane.AdmissionMetrics(),
		PeakInFlight: s.plane.PeakInFlight(),
	}
	if jn := s.plane.Journal(); jn != nil {
		jm := &journalMetrics{Name: jn.Name(), Seq: jn.Seq(), SizeBytes: jn.Size()}
		if err := jn.Wedged(); err != nil {
			jm.Wedged = err.Error()
		}
		body.Journal = jm
	}
	writeJSON(w, http.StatusOK, body)
}

// handleRegister installs an immutable run binding for the tenant.
// Registering the identical binding again is a no-op 200; a conflicting
// one is a 409 and changes nothing.
func (s *server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var b repro.RunBinding
	if err := json.NewDecoder(r.Body).Decode(&b); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad binding JSON: " + err.Error()})
		return
	}
	if err := s.session(r).Register(b); err != nil {
		writeError(w, err, http.StatusConflict)
		return
	}
	writeJSON(w, http.StatusOK, b)
}

func (s *server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.session(r).Bindings())
}

// jobRequest is the submission body: the job's checkpoint names plus the
// comparison knobs the daemon exposes.
type jobRequest struct {
	Kind     string   `json:"kind"` // "compare" | "group" | "shard"
	A        string   `json:"a,omitempty"`
	B        string   `json:"b,omitempty"`
	Baseline string   `json:"baseline,omitempty"`
	Runs     []string `json:"runs,omitempty"`
	Topology string   `json:"topology,omitempty"` // "star" (default) | "all-pairs"
	// Epsilon is the error bound ε (required).
	Epsilon float64 `json:"epsilon"`
	// ChunkSize overrides the 64 KiB default.
	ChunkSize int `json:"chunkSize,omitempty"`
	// Degrade enables the degradation ladder (verdict 3 instead of a
	// failed job when stage 2 cannot verify every candidate chunk).
	Degrade bool `json:"degrade,omitempty"`
	// ShardWorkers sizes the simulated fleet of a shard job.
	ShardWorkers int `json:"shardWorkers,omitempty"`
}

func (jr jobRequest) spec() (repro.JobSpec, error) {
	spec := repro.JobSpec{
		Kind:     repro.JobKind(jr.Kind),
		A:        jr.A,
		B:        jr.B,
		Baseline: jr.Baseline,
		Runs:     jr.Runs,
		Options: repro.Options{
			Epsilon:   jr.Epsilon,
			ChunkSize: jr.ChunkSize,
			Degrade:   jr.Degrade,
		},
	}
	switch jr.Topology {
	case "", "star":
		spec.Topology = repro.TopologyStar
	case "all-pairs":
		spec.Topology = repro.TopologyAllPairs
	default:
		return spec, fmt.Errorf("unknown topology %q", jr.Topology)
	}
	spec.Shard.Workers = jr.ShardWorkers
	return spec, nil
}

// handleSubmit accepts a job: 202 with the job snapshot when admitted,
// 429 + Retry-After under backpressure, 422 when the submission
// contradicts a run binding.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var jr jobRequest
	if err := json.NewDecoder(r.Body).Decode(&jr); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job JSON: " + err.Error()})
		return
	}
	spec, err := jr.spec()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	job, err := s.session(r).Submit(s.store, spec)
	if err != nil {
		writeError(w, err, http.StatusUnprocessableEntity)
		return
	}
	s.mu.Lock()
	s.jobs[job.ID()] = job
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, job.Status())
}

// ledgerStatus synthesizes a done-job snapshot from a durable verdict
// record.
func ledgerStatus(rec repro.WALRecord) repro.JobStatus {
	return repro.JobStatus{
		ID:        rec.Job,
		Kind:      rec.Kind,
		Tenant:    rec.Tenant,
		State:     "done",
		Verdict:   repro.JobVerdict(rec.Exit).String(),
		ExitCode:  rec.Exit,
		Error:     rec.ErrMsg,
		DiffCount: rec.DiffCount,
		Degraded:  rec.Degraded,
	}
}

// jobID parses the {id} path value.
func (s *server) jobID(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job id"})
		return 0, false
	}
	return id, true
}

// lookupJob resolves an ID to a live job or a ledger verdict.
func (s *server) lookupJob(id uint64) (job *repro.Job, rec repro.WALRecord, fromLedger bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j, repro.WALRecord{}, false
	}
	if r, ok := s.ledger[id]; ok {
		return nil, r, true
	}
	return nil, repro.WALRecord{}, false
}

func (s *server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id, ok := s.jobID(w, r)
	if !ok {
		return
	}
	job, rec, fromLedger := s.lookupJob(id)
	switch {
	case job != nil:
		writeJSON(w, http.StatusOK, job.Status())
	case fromLedger:
		writeJSON(w, http.StatusOK, ledgerStatus(rec))
	default:
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no job %d", id)})
	}
}

// handleJobWait long-polls the verdict: it responds as soon as the job
// publishes, or after timeoutMs (default 30s) with the current snapshot
// and status 200 either way — the "state" field says which. A
// ledger-recovered verdict answers immediately. When graceful shutdown
// begins mid-wait, the wait wakes up: the final verdict if the job
// already published, a clean 503 otherwise — never a hung connection.
func (s *server) handleJobWait(w http.ResponseWriter, r *http.Request) {
	id, ok := s.jobID(w, r)
	if !ok {
		return
	}
	job, rec, fromLedger := s.lookupJob(id)
	if fromLedger {
		writeJSON(w, http.StatusOK, ledgerStatus(rec))
		return
	}
	if job == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no job %d", id)})
		return
	}
	timeout := 30 * time.Second
	if ms := r.URL.Query().Get("timeoutMs"); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad timeoutMs"})
			return
		}
		timeout = time.Duration(n) * time.Millisecond
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-job.Done():
	case <-timer.C:
	case <-r.Context().Done():
	case <-s.drain:
		select {
		case <-job.Done():
			// The verdict beat the drain; serve it.
		default:
			writeError(w, repro.ErrPlaneClosed, 0)
			return
		}
	}
	writeJSON(w, http.StatusOK, job.Status())
}
