package main

// Durability and contract tests for the daemon: the uniform JSON error
// surface, the long-poll/shutdown race, and the kill -9 smoke that
// proves a verdict survives the process (the wal-smoke make target).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

// assertJSONError decodes resp's body as the uniform error document and
// checks the Content-Type contract every error response must honor.
func assertJSONError(t *testing.T, label string, status int, header http.Header, body []byte) {
	t.Helper()
	if ct := header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("%s: Content-Type %q, want application/json (body %q)", label, ct, body)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Errorf("%s: body is not the JSON error document: %v (body %q)", label, err, body)
		return
	}
	if eb.Error == "" {
		t.Errorf("%s: error document with empty error field (body %q)", label, body)
	}
	if status == http.StatusTooManyRequests && header.Get("Retry-After") == "" {
		t.Errorf("%s: 429 without Retry-After header", label)
	}
}

// TestErrorResponseContract sweeps every error status the daemon can
// produce — including the mux's own 404/405, which net/http would
// answer in text/plain without the jsonErrorWriter — and asserts each
// one is application/json carrying the uniform error body, with
// Retry-After on every 429.
func TestErrorResponseContract(t *testing.T) {
	dir := seedStore(t)
	store, err := repro.NewStore(dir, repro.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	plane := repro.NewPlane(repro.PlaneConfig{MaxInFlight: 1, MaxQueued: 1, TenantPending: 1})
	gate := make(chan struct{})
	var openGate sync.Once
	release := func() { openGate.Do(func() { close(gate) }) }
	defer func() {
		release()
		if err := plane.Close(); err != nil {
			t.Errorf("plane close: %v", err)
		}
	}()
	srv := newServer(plane, store)

	// Bind run1 so a contradicting submission can earn its 422, and park
	// a completed job so the bad-timeoutMs branch of wait is reachable.
	sess := plane.Open("default")
	if err := sess.Register(repro.RunBinding{RunID: "run1", Epsilon: testEps, ChunkSize: testChunk}); err != nil {
		t.Fatal(err)
	}
	done, err := sess.Submit(store, repro.JobSpec{
		Kind: repro.JobCompare, A: ckptName("run1"), B: ckptName("run2"),
		Options: repro.Options{Epsilon: testEps, ChunkSize: testChunk},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done.Done()
	srv.mu.Lock()
	srv.jobs[done.ID()] = done
	srv.mu.Unlock()

	jobBody := func(jr jobRequest) string {
		b, err := json.Marshal(jr)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"mux route miss", "GET", "/v1/nope", "", http.StatusNotFound},
		{"mux method miss on runs", "DELETE", "/v1/runs", "", http.StatusMethodNotAllowed},
		{"mux method miss on jobs", "PUT", "/v1/jobs", "", http.StatusMethodNotAllowed},
		{"malformed job id", "GET", "/v1/jobs/xyz", "", http.StatusBadRequest},
		{"unknown job", "GET", "/v1/jobs/999999999", "", http.StatusNotFound},
		{"malformed job id on wait", "GET", "/v1/jobs/xyz/wait", "", http.StatusBadRequest},
		{"unknown job on wait", "GET", "/v1/jobs/999999999/wait", "", http.StatusNotFound},
		{"bad wait timeout", "GET", fmt.Sprintf("/v1/jobs/%d/wait?timeoutMs=soon", done.ID()), "", http.StatusBadRequest},
		{"bad binding JSON", "POST", "/v1/runs", "{", http.StatusBadRequest},
		{"conflicting binding", "POST", "/v1/runs", `{"runId":"run1","epsilon":0.5}`, http.StatusConflict},
		{"bad job JSON", "POST", "/v1/jobs", "{", http.StatusBadRequest},
		{"unknown topology", "POST", "/v1/jobs", jobBody(jobRequest{Kind: "group", Baseline: ckptName("run1"), Runs: []string{ckptName("run2")}, Topology: "ring", Epsilon: testEps}), http.StatusBadRequest},
		{"unknown job kind", "POST", "/v1/jobs", jobBody(jobRequest{Kind: "fuzz", Epsilon: testEps}), http.StatusBadRequest},
		{"binding contradiction", "POST", "/v1/jobs", jobBody(jobRequest{Kind: "compare", A: ckptName("run1"), B: ckptName("run2"), Epsilon: 0.5, ChunkSize: testChunk}), http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body)))
			if rec.Code != tc.want {
				t.Fatalf("status %d, want %d (body %s)", rec.Code, tc.want, rec.Body.String())
			}
			assertJSONError(t, tc.name, rec.Code, rec.Header(), rec.Body.Bytes())
		})
	}

	// The 429 needs a saturated plane: hold the only slot with a gated
	// divergent comparison, then overflow the tenant's pending quota.
	t.Run("backpressure", func(t *testing.T) {
		held, err := sess.Submit(store, repro.JobSpec{
			Kind: repro.JobCompare, A: ckptName("run1"), B: ckptName("run3"),
			Options: repro.Options{
				Epsilon: testEps, ChunkSize: testChunk,
				Backend: &gateBackend{gate: gate, inner: repro.DefaultBackend()},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs",
			strings.NewReader(jobBody(jobRequest{Kind: "compare", A: ckptName("run1"), B: ckptName("run2"), Epsilon: testEps, ChunkSize: testChunk}))))
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("saturated submit: status %d, want 429 (body %s)", rec.Code, rec.Body.String())
		}
		assertJSONError(t, "backpressure", rec.Code, rec.Header(), rec.Body.Bytes())
		release()
		<-held.Done()
	})
}

// TestDrainLongPollRace pins the shutdown contract for in-flight waits:
// a long-poll standing at drain time gets the final verdict when the
// job already published, a clean JSON 503 when it did not — never a
// connection that hangs into the HTTP shutdown deadline. Exercised over
// a real listener so the waits genuinely block, and in both orders plus
// a deliberate race (run under -race via `make race`).
func TestDrainLongPollRace(t *testing.T) {
	dir := seedStore(t)
	store, err := repro.NewStore(dir, repro.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	orders := []string{"drain-first", "verdict-first", "concurrent"}
	for _, order := range orders {
		t.Run(order, func(t *testing.T) {
			plane := repro.NewPlane(repro.PlaneConfig{MaxInFlight: 1})
			gate := make(chan struct{})
			var openGate sync.Once
			release := func() { openGate.Do(func() { close(gate) }) }
			srv := newServer(plane, store)
			ts := httptest.NewServer(srv)
			defer func() {
				release()
				ts.Close()
				if err := plane.Close(); err != nil {
					t.Errorf("plane close: %v", err)
				}
			}()

			sess := plane.Open("default")
			job, err := sess.Submit(store, repro.JobSpec{
				Kind: repro.JobCompare, A: ckptName("run1"), B: ckptName("run3"),
				Options: repro.Options{
					Epsilon: testEps, ChunkSize: testChunk,
					Backend: &gateBackend{gate: gate, inner: repro.DefaultBackend()},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			srv.mu.Lock()
			srv.jobs[job.ID()] = job
			srv.mu.Unlock()

			type outcome struct {
				status int
				header http.Header
				body   []byte
				err    error
			}
			const waiters = 4
			results := make(chan outcome, waiters)
			for i := 0; i < waiters; i++ {
				go func() {
					resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/wait?timeoutMs=30000", ts.URL, job.ID()))
					if err != nil {
						results <- outcome{err: err}
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					results <- outcome{status: resp.StatusCode, header: resp.Header, body: body}
				}()
			}
			// Let the waiters reach the select before the shutdown fires.
			time.Sleep(100 * time.Millisecond)

			switch order {
			case "drain-first":
				srv.beginDrain()
			case "verdict-first":
				release()
				<-job.Done()
				srv.beginDrain()
			case "concurrent":
				var wg sync.WaitGroup
				wg.Add(2)
				go func() { defer wg.Done(); srv.beginDrain() }()
				go func() { defer wg.Done(); release() }()
				wg.Wait()
			}

			for i := 0; i < waiters; i++ {
				select {
				case out := <-results:
					if out.err != nil {
						t.Fatalf("waiter failed: %v", out.err)
					}
					switch out.status {
					case http.StatusOK:
						if order == "drain-first" {
							t.Fatalf("gated job served a verdict before it could publish: %s", out.body)
						}
						var st jobStatusBody
						if err := json.Unmarshal(out.body, &st); err != nil {
							t.Fatalf("wait body: %v (%q)", err, out.body)
						}
						if st.State != "done" || st.ExitCode != 2 {
							t.Fatalf("drained wait returned a non-final verdict: %+v", st)
						}
					case http.StatusServiceUnavailable:
						if order == "verdict-first" {
							t.Fatalf("published verdict answered 503: %s", out.body)
						}
						assertJSONError(t, order, out.status, out.header, out.body)
					default:
						t.Fatalf("wait status %d, want 200 or 503 (body %s)", out.status, out.body)
					}
				case <-time.After(20 * time.Second):
					t.Fatal("long-poll hung through drain")
				}
			}
		})
	}
}

// TestWALKillRestartSmoke is the wal-smoke gate: a real daemon process
// with -journal takes a job to its verdict, dies by SIGKILL, and a
// restarted process serves that verdict from the hash-chained ledger —
// no recomputation — with reprocmp verify-log green over the surviving
// chain.
func TestWALKillRestartSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes")
	}
	bin := t.TempDir()
	reprod := filepath.Join(bin, "reprod")
	reprocmp := filepath.Join(bin, "reprocmp")
	for tool, path := range map[string]string{"./": reprod, "../reprocmp": reprocmp} {
		out, err := exec.Command("go", "build", "-o", path, tool).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", tool, err, out)
		}
	}

	dir := seedStore(t)
	journal := "wal/journal.log"
	startDaemon := func(pf string) *exec.Cmd {
		cmd := exec.Command(reprod, "-store", dir, "-journal", journal, "-addr", "127.0.0.1:0", "-portfile", pf)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	awaitPort := func(pf string) string {
		deadline := time.Now().Add(30 * time.Second)
		for {
			if b, err := os.ReadFile(pf); err == nil && len(b) > 0 {
				return "http://" + strings.TrimSpace(string(b))
			}
			if time.Now().After(deadline) {
				t.Fatal("daemon never wrote portfile")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Life 1: submit a divergent compare, wait for the verdict (which is
	// durable before it is ever published), then kill -9.
	pf1 := filepath.Join(t.TempDir(), "port1")
	life1 := startDaemon(pf1)
	base := awaitPort(pf1)
	var accepted jobStatusBody
	req := jobRequest{Kind: "compare", A: ckptName("run1"), B: ckptName("run3"), Epsilon: testEps, ChunkSize: testChunk}
	if resp := postJSON(t, base+"/v1/jobs", req, &accepted); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	verdict := waitVerdict(t, base, accepted.ID)
	if verdict.ExitCode != 2 {
		t.Fatalf("life 1 verdict: %+v", verdict)
	}
	if err := life1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = life1.Wait() // reaps the SIGKILLed child; its error is the point

	// Life 2: the restarted daemon must serve the verdict from the
	// ledger under the original job ID.
	pf2 := filepath.Join(t.TempDir(), "port2")
	life2 := startDaemon(pf2)
	defer func() {
		_ = life2.Process.Kill()
		_ = life2.Wait()
	}()
	base = awaitPort(pf2)
	var replayed jobStatusBody
	if resp := getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", base, accepted.ID), &replayed); resp.StatusCode != http.StatusOK {
		t.Fatalf("ledger status: %d", resp.StatusCode)
	}
	if replayed.State != "done" || replayed.ExitCode != verdict.ExitCode || replayed.DiffCount != verdict.DiffCount {
		t.Fatalf("ledger verdict %+v does not match life 1's %+v", replayed, verdict)
	}
	var mb struct {
		Journal *struct {
			Seq uint64 `json:"seq"`
		} `json:"journal"`
	}
	if resp := getJSON(t, base+"/v1/metrics", &mb); resp.StatusCode != http.StatusOK || mb.Journal == nil || mb.Journal.Seq == 0 {
		t.Fatalf("metrics journal gauge missing: %+v", mb)
	}

	// Graceful stop, then audit the chain the two lives left behind.
	if err := life2.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := life2.Wait(); err != nil {
		t.Fatalf("life 2 shutdown: %v", err)
	}
	var audit bytes.Buffer
	cmpCmd := exec.Command(reprocmp, "verify-log", "-store", dir, "-journal", journal,
		"-recompute", fmt.Sprint(accepted.ID))
	cmpCmd.Stdout = &audit
	cmpCmd.Stderr = &audit
	if err := cmpCmd.Run(); err != nil {
		t.Fatalf("verify-log: %v\n%s", err, audit.String())
	}
	attest := exec.Command(reprocmp, "attest", "-store", dir, "-journal", journal, "-job", fmt.Sprint(accepted.ID))
	attest.Stdout = &audit
	attest.Stderr = &audit
	if err := attest.Run(); err != nil {
		t.Fatalf("attest: %v\n%s", err, audit.String())
	}
}
