// Command reprod serves comparisons over HTTP/JSON: a thin daemon on the
// service plane (internal/service, surfaced through the repro facade).
// Where reprocmp runs one comparison per process, reprod keeps one plane
// — one persistent kernel pool, one persistent ring, the per-tenant run
// catalog — and multiplexes concurrent submissions over it behind
// admission control. Clients register immutable run bindings, submit
// compare/group/shard jobs, and poll (or long-poll) verdicts on the same
// 0/2/3/1 contract reprocmp encodes in its exit codes.
//
// Usage:
//
//	reprod -store DIR [-addr 127.0.0.1:0] [-portfile FILE] [-journal NAME]
//	       [-max-inflight N] [-max-queued N] [-tenant-pending N]
//
// -journal enables the crash-durable job journal and hash-chained
// verdict ledger (internal/wal) at the store-relative NAME
// (conventionally wal/journal.log). On startup the daemon replays the journal: verdicts
// from previous lives are served from the ledger (never recomputed),
// and jobs that were accepted but unfinished when the process died —
// kill -9 included — are re-admitted under their original IDs. Audit
// the chain with reprocmp verify-log / attest.
//
// Endpoints (see server.go):
//
//	GET  /healthz                     liveness
//	GET  /v1/metrics                  per-tenant admission counters + journal gauges
//	POST /v1/runs?tenant=T            register a run binding (409 on conflict)
//	GET  /v1/runs?tenant=T            list the tenant's bindings
//	POST /v1/jobs?tenant=T            submit a job (202; 429 + Retry-After
//	                                  under backpressure; 422 on binding
//	                                  violation)
//	GET  /v1/jobs/{id}                job status snapshot
//	GET  /v1/jobs/{id}/wait?timeoutMs long-poll the verdict
//
// -portfile writes the bound address after listen succeeds, so scripts
// (and the make-check smoke test) can use -addr 127.0.0.1:0 and discover
// the kernel-assigned port race-free. Shutdown (SIGINT/SIGTERM) is
// graceful and deterministic: stop accepting, drain in-flight jobs
// through Plane.Close, exit 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], stop, os.Stdout, os.Stderr))
}

// run is the testable daemon body: it returns the process exit code and
// shuts down cleanly when stop delivers.
func run(args []string, stop <-chan os.Signal, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reprod", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir           = fs.String("store", "", "store directory (required)")
		addr          = fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
		portfile      = fs.String("portfile", "", "write the bound address here after listen succeeds")
		journal       = fs.String("journal", "", "store-relative journal path enabling the crash-durable job ledger (e.g. "+repro.DefaultJournalName+"; empty disables)")
		maxInFlight   = fs.Int("max-inflight", 0, "concurrent comparisons across all tenants (0 = plane default)")
		maxQueued     = fs.Int("max-queued", 0, "admission queue bound (0 = plane default)")
		tenantPending = fs.Int("tenant-pending", 0, "per-tenant pending-job quota (0 = MaxInFlight)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dir == "" {
		fmt.Fprintln(stderr, "reprod: -store is required")
		return 2
	}

	store, err := repro.NewStore(*dir, repro.LustreModel())
	if err != nil {
		fmt.Fprintf(stderr, "reprod: %v\n", err)
		return 1
	}
	plane := repro.NewPlane(repro.PlaneConfig{
		MaxInFlight:   *maxInFlight,
		MaxQueued:     *maxQueued,
		TenantPending: *tenantPending,
	})

	srv := newServer(plane, store)
	if *journal != "" {
		// Replay the journal before listening: ledger verdicts become
		// servable, unfinished jobs re-admit, and only then can clients
		// reach us — recovery is never racing live traffic.
		rec, err := plane.Recover(context.Background(), store, *journal)
		if err != nil {
			fmt.Fprintf(stderr, "reprod: journal recovery: %v\n", err)
			return 1
		}
		srv.adopt(rec)
		fmt.Fprintf(stdout, "reprod: journal %s replayed: %d ledger verdicts, %d jobs re-admitted\n",
			*journal, len(rec.Ledger), len(rec.Resumed))
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "reprod: %v\n", err)
		return 1
	}
	if *portfile != "" {
		if err := os.WriteFile(*portfile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "reprod: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(stdout, "reprod: serving %s on %s\n", *dir, ln.Addr())

	httpSrv := &http.Server{Handler: srv}
	served := make(chan error, 1)
	go func() { served <- httpSrv.Serve(ln) }()

	var exit int
	select {
	case <-stop:
		// Wake in-flight long-polls first so Shutdown's drain of open
		// requests cannot hang on a 30s wait timeout.
		srv.beginDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := httpSrv.Shutdown(shutdownCtx)
		cancel()
		if err != nil {
			fmt.Fprintf(stderr, "reprod: shutdown: %v\n", err)
			exit = 1
		}
		<-served // Serve has returned ErrServerClosed
	case err := <-served:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "reprod: serve: %v\n", err)
			exit = 1
		}
	}
	// Drain the plane last: queued jobs fail with ErrPlaneClosed, running
	// comparisons publish their verdicts, the pool and ring are joined.
	if err := plane.Close(); err != nil {
		fmt.Fprintf(stderr, "reprod: close plane: %v\n", err)
		exit = 1
	}
	fmt.Fprintln(stdout, "reprod: drained and closed")
	return exit
}
