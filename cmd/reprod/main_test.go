package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro"
	"repro/internal/aio"
	"repro/internal/pfs"
	"repro/internal/synth"
)

const (
	testEps   = 1e-5
	testChunk = 4096
)

// seedStore writes three one-checkpoint runs — run2 identical to run1,
// run3 diverged beyond ε — and builds their Merkle metadata.
func seedStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	store, err := repro.NewStore(dir, repro.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	const elems = 8 << 10
	fields := []repro.FieldSpec{{Name: "x", DType: repro.Float32, Count: elems}}
	dataA := synth.FieldF32(elems, 1)
	pert := synth.DefaultPerturb(2)
	pert.MagLo, pert.MagHi = 1e-3, 1e-2
	pert.BlockElems = 512
	pert.ChangedFrac = 0.2
	pert.UntouchedFrac = 0.5
	dataDiv := synth.PerturbF32(dataA, pert)
	ctx := context.Background()
	for run, data := range map[string][]byte{"run1": dataA, "run2": dataA, "run3": dataDiv} {
		meta := repro.Checkpoint{RunID: run, Iteration: 10, Rank: 0, Fields: fields}
		if _, err := repro.WriteCheckpoint(store, meta, [][]byte{data}); err != nil {
			t.Fatal(err)
		}
		name := repro.CheckpointName(run, 10, 0)
		opts := repro.Options{Epsilon: testEps, ChunkSize: testChunk}
		if _, _, err := repro.BuildAndSave(ctx, store, name, opts); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func ckptName(run string) string { return repro.CheckpointName(run, 10, 0) }

// postJSON posts v and decodes the response body into out (if non-nil).
func postJSON(t *testing.T, url string, v any, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp
}

// getJSON fetches url and decodes into out (if non-nil).
func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp
}

// waitVerdict long-polls a job to completion and returns its status.
func waitVerdict(t *testing.T, base string, id uint64) jobStatusBody {
	t.Helper()
	var st jobStatusBody
	resp := getJSON(t, fmt.Sprintf("%s/v1/jobs/%d/wait?timeoutMs=30000", base, id), &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait job %d: status %d", id, resp.StatusCode)
	}
	if st.State != "done" {
		t.Fatalf("job %d did not finish: %+v", id, st)
	}
	return st
}

// jobStatusBody mirrors service.JobStatus on the wire.
type jobStatusBody struct {
	ID        uint64 `json:"id"`
	State     string `json:"state"`
	Verdict   string `json:"verdict"`
	ExitCode  int    `json:"exitCode"`
	Error     string `json:"error"`
	DiffCount int64  `json:"diffCount"`
	Degraded  bool   `json:"degraded"`
}

// TestReprodSmoke drives the daemon end to end over a real loopback
// listener: health, run registration (including the 409 conflict),
// compare/group/shard submissions mapping onto the reprocmp verdict
// contract, the 422 binding rejection, and graceful drain on SIGTERM.
func TestReprodSmoke(t *testing.T) {
	dir := seedStore(t)
	pf := filepath.Join(t.TempDir(), "port")
	stop := make(chan os.Signal, 1)
	var stdout, stderr bytes.Buffer
	exited := make(chan int, 1)
	go func() {
		exited <- run([]string{"-store", dir, "-addr", "127.0.0.1:0", "-portfile", pf}, stop, &stdout, &stderr)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(pf); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never wrote portfile; stderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	base := "http://" + addr

	if resp := getJSON(t, base+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	// Register run1's binding; identical re-registration is a no-op,
	// a conflicting ε is a 409 and changes nothing.
	bind := map[string]any{"runId": "run1", "epsilon": testEps, "chunkSize": testChunk}
	if resp := postJSON(t, base+"/v1/runs", bind, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, base+"/v1/runs", bind, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-register identical: status %d", resp.StatusCode)
	}
	conflict := map[string]any{"runId": "run1", "epsilon": 1e-4}
	if resp := postJSON(t, base+"/v1/runs", conflict, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting register: status %d, want 409", resp.StatusCode)
	}
	var listed []map[string]any
	if resp := getJSON(t, base+"/v1/runs", &listed); resp.StatusCode != http.StatusOK || len(listed) != 1 {
		t.Fatalf("list runs: status %d, %d bindings", resp.StatusCode, len(listed))
	}

	// Clean pair → verdict 0; divergent pair → verdict 2.
	var accepted jobStatusBody
	req := jobRequest{Kind: "compare", A: ckptName("run1"), B: ckptName("run2"), Epsilon: testEps, ChunkSize: testChunk}
	if resp := postJSON(t, base+"/v1/jobs", req, &accepted); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit clean compare: status %d", resp.StatusCode)
	}
	if st := waitVerdict(t, base, accepted.ID); st.ExitCode != 0 || st.Verdict != "clean" {
		t.Fatalf("clean pair verdict: %+v", st)
	}
	req.B = ckptName("run3")
	if resp := postJSON(t, base+"/v1/jobs", req, &accepted); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit divergent compare: status %d", resp.StatusCode)
	}
	if st := waitVerdict(t, base, accepted.ID); st.ExitCode != 2 || st.DiffCount == 0 {
		t.Fatalf("divergent pair verdict: %+v", st)
	}

	// Group and shard kinds ride the same contract.
	greq := jobRequest{Kind: "group", Baseline: ckptName("run1"), Runs: []string{ckptName("run2"), ckptName("run3")}, Epsilon: testEps, ChunkSize: testChunk}
	if resp := postJSON(t, base+"/v1/jobs", greq, &accepted); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit group: status %d", resp.StatusCode)
	}
	if st := waitVerdict(t, base, accepted.ID); st.ExitCode != 2 {
		t.Fatalf("group verdict: %+v", st)
	}
	sreq := jobRequest{Kind: "shard", A: ckptName("run1"), B: ckptName("run3"), Epsilon: testEps, ChunkSize: testChunk, ShardWorkers: 2}
	if resp := postJSON(t, base+"/v1/jobs", sreq, &accepted); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit shard: status %d", resp.StatusCode)
	}
	if st := waitVerdict(t, base, accepted.ID); st.ExitCode != 2 {
		t.Fatalf("shard verdict: %+v", st)
	}

	// A submission contradicting run1's bound ε is rejected before any
	// work runs.
	bad := jobRequest{Kind: "compare", A: ckptName("run1"), B: ckptName("run2"), Epsilon: 1e-4, ChunkSize: testChunk}
	if resp := postJSON(t, base+"/v1/jobs", bad, nil); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("ε-mismatch submit: status %d, want 422", resp.StatusCode)
	}

	// Unknown jobs and malformed IDs are client errors.
	if resp := getJSON(t, base+"/v1/jobs/999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, base+"/v1/jobs/xyz", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad job id: status %d, want 400", resp.StatusCode)
	}

	// Graceful drain: SIGTERM → serve loop exits, plane closes, exit 0.
	stop <- syscall.SIGTERM
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("daemon exit code %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(stdout.String(), "drained and closed") {
		t.Fatalf("shutdown log missing: %s", stdout.String())
	}
}

// gateBackend delegates reads to the real engine only after the gate
// opens, letting the test hold a comparison in flight deterministically.
type gateBackend struct {
	gate  <-chan struct{}
	inner aio.Backend
}

func (g *gateBackend) Name() string { return "gate:" + g.inner.Name() }

func (g *gateBackend) ReadBatch(ctx context.Context, f *pfs.File, reqs []aio.ReadReq) (pfs.Cost, time.Duration, error) {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return pfs.Cost{}, 0, ctx.Err()
	}
	return g.inner.ReadBatch(ctx, f, reqs)
}

// TestServerBackpressure saturates a one-slot plane through a gated
// comparison and asserts the HTTP mapping of admission control: 429 with
// a Retry-After header and the virtual price in the body.
func TestServerBackpressure(t *testing.T) {
	dir := seedStore(t)
	store, err := repro.NewStore(dir, repro.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	plane := repro.NewPlane(repro.PlaneConfig{MaxInFlight: 1, MaxQueued: 1, TenantPending: 1})
	gate := make(chan struct{})
	var openGate sync.Once
	release := func() { openGate.Do(func() { close(gate) }) }
	defer func() {
		release()
		if err := plane.Close(); err != nil {
			t.Errorf("plane close: %v", err)
		}
	}()
	srv := newServer(plane, store)

	// Hold the only slot: a divergent pair must read chunks in stage 2,
	// and the gated backend blocks that read until released.
	sess := plane.Open("default")
	job, err := sess.Submit(store, repro.JobSpec{
		Kind: repro.JobCompare,
		A:    ckptName("run1"),
		B:    ckptName("run3"),
		Options: repro.Options{
			Epsilon:   testEps,
			ChunkSize: testChunk,
			Backend:   &gateBackend{gate: gate, inner: repro.DefaultBackend()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The tenant's quota (1 pending) is now spent: an HTTP submission for
	// the same tenant is priced and rejected, never executed.
	body, _ := json.Marshal(jobRequest{Kind: "compare", A: ckptName("run1"), B: ckptName("run2"), Epsilon: testEps, ChunkSize: testChunk})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: status %d, want 429 (body %s)", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	var eb struct {
		Error        string `json:"error"`
		RetryAfterMs int64  `json:"retryAfterMs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.RetryAfterMs <= 0 || eb.Error == "" {
		t.Fatalf("429 body missing price: %+v", eb)
	}

	// Releasing the gate lets the held job publish its verdict, and the
	// freed quota admits the retried submission.
	release()
	<-job.Done()
	if job.Status().ExitCode != 2 {
		t.Fatalf("gated job verdict: %+v", job.Status())
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("retried submit: status %d, want 202 (body %s)", rec.Code, rec.Body.String())
	}
}
