package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestSmokeRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-smoke", "-o", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if !report.Smoke {
		t.Error("smoke run not marked as smoke")
	}
	want := []string{
		"plain_fresh_serial_depth1",
		"plain_fresh_serial_depth2",
		"ring_pair_depth1",
		"ring_pair_depth2",
		"ring_pair_depth4",
		"ring_pair_coalesce_depth2",
		"ring_pair_coalesce_depth4",
	}
	if len(report.Pipelines) != len(want) {
		t.Fatalf("got %d pipelines, want %d", len(report.Pipelines), len(want))
	}
	byName := map[string]Pipeline{}
	for i, p := range report.Pipelines {
		if p.Name != want[i] {
			t.Errorf("pipeline %d: name %q, want %q", i, p.Name, want[i])
		}
		if p.Slices < 1 || p.ReadOps < 1 || p.BytesRead <= 0 ||
			p.PipelineVirtualMs <= 0 || p.WallMs <= 0 || p.SpeedupVsBaseline <= 0 {
			t.Errorf("pipeline %q has degenerate measurement: %+v", p.Name, p)
		}
		byName[p.Name] = p
	}

	// Every variant streams the same candidate bytes.
	base := report.Pipelines[0]
	for _, p := range report.Pipelines[1:] {
		if p.BytesRead != base.BytesRead {
			t.Errorf("%s read %d bytes, baseline %d", p.Name, p.BytesRead, base.BytesRead)
		}
	}
	// Coalescing must collapse the clustered batches into fewer PFS ops.
	if co, plain := byName["ring_pair_coalesce_depth2"], byName["ring_pair_depth2"]; co.ReadOps >= plain.ReadOps {
		t.Errorf("coalesced read ops = %d, plain = %d", co.ReadOps, plain.ReadOps)
	}
	// The default compare configuration must beat the pre-persistent-ring
	// pipeline on the virtual clock.
	if s := byName["ring_pair_coalesce_depth2"].SpeedupVsBaseline; s < 1.5 {
		t.Errorf("ring_pair_coalesce_depth2 speedup = %.2f, want >= 1.5", s)
	}
	// Persistent-ring variants recycle every buffer: no marginal
	// allocations per slice once warm. (Depth-4 is excluded: the smoke
	// workload's half run has fewer slices than the pool, so the
	// differencing doesn't cancel pool fills.)
	for _, name := range []string{"ring_pair_depth1", "ring_pair_depth2", "ring_pair_coalesce_depth2"} {
		if a := byName[name].AllocsPerSlice; a > 0.5 {
			t.Errorf("%s steady-state allocations = %.2f per slice, want 0", name, a)
		}
	}
}

func TestSmokeRunStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-smoke"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	var report Report
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
}

func TestBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}
