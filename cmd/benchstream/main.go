// Command benchstream measures the comparator's stage-2 verification
// pipeline end to end — scattered candidate-chunk reads from two run files
// through an internal/aio backend into the internal/stream pipeline — and
// emits the results as JSON. The checked-in BENCH_stream.json at the
// repository root is the tracked baseline; regenerate it with
// `make bench-json` and diff it in review to catch pipeline regressions.
//
// The workload is the paper's clustered-divergence pattern: candidate
// chunks come in bursts of adjacent 4 KiB chunks separated by large clean
// regions, so read coalescing can collapse each burst into one PFS op.
// Every variant streams the identical chunk set; they differ only in the
// I/O engine and pipeline depth:
//
//	plain_fresh_serial_depth1   the pre-persistent-ring pipeline: a fresh
//	                            ring per batch, run A and run B read
//	                            serially, one buffer set (the speedup
//	                            baseline)
//	ring_pair_depth{1,2,4}      persistent ring, A+B submitted as one
//	                            overlapped batch, depth-N buffering
//	ring_pair_coalesce_depth{2,4}  the default compare path: + coalescing
//
// Usage:
//
//	benchstream [-smoke] [-o file]
//
// Flags:
//
//	-smoke  tiny files and chunk counts: validates the runner end-to-end
//	        in milliseconds (wired into `make check`)
//	-o      output file ("" writes JSON to stdout)
//
// The headline column is pipeline_virtual_ms (deterministic, from the
// cost models); wall_ms comes from the host clock and varies with
// hardware. allocs_per_slice is measured on a warmed run and should be 0
// for the persistent-ring variants.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/aio"
	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/stream"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Report is the JSON document benchstream emits.
type Report struct {
	// GeneratedAt is the RFC 3339 wall-clock timestamp of the run.
	GeneratedAt string `json:"generated_at"`
	// GoVersion and GOMAXPROCS identify the toolchain and parallelism.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Smoke marks reduced-size validation runs; their numbers are not
	// comparable to full runs.
	Smoke bool `json:"smoke,omitempty"`
	// Workload describes the candidate-chunk pattern every variant reads.
	Workload Workload `json:"workload"`
	// Pipelines are the per-variant measurements, in fixed order; the
	// first entry is the speedup baseline.
	Pipelines []Pipeline `json:"pipelines"`
}

// Workload describes the shared benchmark input.
type Workload struct {
	// FileBytes is the size of each run's checkpoint file.
	FileBytes int64 `json:"file_bytes"`
	// ChunkBytes is the candidate chunk size.
	ChunkBytes int `json:"chunk_bytes"`
	// Chunks is the number of candidate chunk pairs streamed.
	Chunks int `json:"chunks"`
	// Clusters is the number of bursts the chunks are grouped into
	// (Chunks/Clusters adjacent chunks per burst).
	Clusters int `json:"clusters"`
	// SliceBytes is the pipeline slice size per run.
	SliceBytes int `json:"slice_bytes"`
}

// Pipeline is one measured variant.
type Pipeline struct {
	// Name identifies the variant, e.g. "ring_pair_coalesce_depth2".
	Name string `json:"name"`
	// Backend is the aio backend's self-reported name.
	Backend string `json:"backend"`
	// Depth is the stream pipeline depth.
	Depth int `json:"depth"`
	// Slices is the number of pipeline slices executed.
	Slices int `json:"slices"`
	// ReadOps is the cold PFS operation count (coalescing shrinks it).
	ReadOps int `json:"read_ops"`
	// BytesRead counts requested bytes from both files.
	BytesRead int64 `json:"bytes_read"`
	// PipelineVirtualMs is the overlapped end-to-end virtual time — the
	// headline, deterministic number.
	PipelineVirtualMs float64 `json:"pipeline_virtual_ms"`
	// IOVirtualMs and ComputeVirtualMs are the un-overlapped stage sums.
	IOVirtualMs      float64 `json:"io_virtual_ms"`
	ComputeVirtualMs float64 `json:"compute_virtual_ms"`
	// WallMs is the measured wall time of the cold run (hardware noise).
	WallMs float64 `json:"wall_ms"`
	// AllocsPerSlice is the steady-state heap allocation rate: the
	// marginal allocations per additional slice, measured on warmed runs
	// by differencing a full run against a half run (which cancels the
	// per-run fixed costs: the producer goroutine, channels, and the
	// buffer pool itself).
	AllocsPerSlice float64 `json:"allocs_per_slice"`
	// SpeedupVsBaseline is baseline virtual time / this virtual time.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchstream", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		smoke = fs.Bool("smoke", false, "tiny sizes; validates the runner, numbers not comparable")
		out   = fs.String("o", "", "output file (empty writes to stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Full workload: two 64 MiB files, 2048 candidate chunks of 4 KiB in
	// 256 bursts of 8 — 8 MiB of candidates per run through 1 MiB slices.
	w := Workload{
		FileBytes:  64 << 20,
		ChunkBytes: 4 << 10,
		Chunks:     2048,
		Clusters:   256,
		SliceBytes: 1 << 20,
	}
	if *smoke {
		w = Workload{
			FileBytes:  4 << 20,
			ChunkBytes: 4 << 10,
			Chunks:     128,
			Clusters:   16,
			SliceBytes: 128 << 10,
		}
	}

	report, err := collect(w)
	if err != nil {
		fmt.Fprintf(stderr, "benchstream: %v\n", err)
		return 1
	}
	report.Smoke = *smoke

	//lint:ignore detflow benchmark reports record measured wall-clock durations by design
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchstream: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fmt.Fprintf(stderr, "benchstream: %v\n", err)
		return 1
	}
	return 0
}

// variant pairs a pipeline configuration with its backend factory; close
// releases persistent ring workers after the variant is measured.
type variant struct {
	name    string
	depth   int
	backend func() (aio.Backend, func())
}

func collect(w Workload) (*Report, error) {
	report := &Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Workload:    w,
	}

	dir, err := os.MkdirTemp("", "benchstream")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := pfs.NewStore(dir, pfs.LustreModel())
	if err != nil {
		return nil, err
	}
	fA, fB, err := writeRuns(store, w.FileBytes)
	if err != nil {
		return nil, err
	}
	defer fA.Close()
	defer fB.Close()
	pairs := clusteredPairs(w)
	dev := device.GPUModel()

	const queueDepth, workers = 64, 4
	uring := func() (aio.Backend, func()) {
		u := aio.NewUring(queueDepth, workers)
		return u, u.Close
	}
	coalescing := func() (aio.Backend, func()) {
		u := aio.NewUring(queueDepth, workers)
		return aio.NewCoalescing(u, 16<<10), u.Close
	}
	variants := []variant{
		{"plain_fresh_serial_depth1", 1, func() (aio.Backend, func()) {
			return aio.Legacy{QueueDepth: queueDepth, Workers: workers}, func() {}
		}},
		{"plain_fresh_serial_depth2", 2, func() (aio.Backend, func()) {
			return aio.Legacy{QueueDepth: queueDepth, Workers: workers}, func() {}
		}},
		{"ring_pair_depth1", 1, uring},
		{"ring_pair_depth2", 2, uring},
		{"ring_pair_depth4", 4, uring},
		{"ring_pair_coalesce_depth2", 2, coalescing},
		{"ring_pair_coalesce_depth4", 4, coalescing},
	}

	for _, v := range variants {
		backend, close := v.backend()
		p, err := measure(v, backend, store, fA, fB, pairs, w, dev)
		close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		if n := len(report.Pipelines); n > 0 {
			p.SpeedupVsBaseline = report.Pipelines[0].PipelineVirtualMs / p.PipelineVirtualMs
		} else {
			p.SpeedupVsBaseline = 1
		}
		report.Pipelines = append(report.Pipelines, p)
	}
	return report, nil
}

// measure runs one variant: a cold run for the virtual numbers, then a
// warm run bracketed by MemStats for the steady-state allocation rate.
func measure(v variant, backend aio.Backend, store *pfs.Store, fA, fB *pfs.File,
	pairs []stream.ChunkPair, w Workload, dev device.Model) (Pipeline, error) {
	cfg := stream.Config{Backend: backend, Device: dev, SliceBytes: w.SliceBytes, Depth: v.depth}
	compute := func(p stream.ChunkPair, a, b []byte) (time.Duration, error) {
		return dev.CompareRateTime(int64(len(a))), nil
	}

	store.EvictAll()
	stats, err := stream.Run(context.Background(), fA, fB, pairs, cfg, compute)
	if err != nil {
		return Pipeline{}, err
	}

	// Warm allocation pass: page cache, ring, buffer pools, and scratch
	// arenas are all at their high-water marks after one more run.
	warm, err := stream.Run(context.Background(), fA, fB, pairs, cfg, compute)
	if err != nil {
		return Pipeline{}, err
	}
	runN := func(n int) error {
		_, err := stream.Run(context.Background(), fA, fB, pairs[:n], cfg, compute)
		return err
	}
	half, full := len(pairs)/2, len(pairs)
	allocsHalf, err := countAllocs(func() error { return runN(half) })
	if err != nil {
		return Pipeline{}, err
	}
	allocsFull, err := countAllocs(func() error { return runN(full) })
	if err != nil {
		return Pipeline{}, err
	}
	extraSlices := float64(warm.Slices) / 2
	allocsPerSlice := float64(allocsFull-allocsHalf) / extraSlices
	if allocsPerSlice < 0 {
		allocsPerSlice = 0
	}

	return Pipeline{
		Name:              v.name,
		Backend:           backend.Name(),
		Depth:             v.depth,
		Slices:            stats.Slices,
		ReadOps:           stats.ReadCost.Ops,
		BytesRead:         stats.BytesRead,
		PipelineVirtualMs: ms(stats.PipelineVirtual),
		IOVirtualMs:       ms(stats.IOVirtual),
		ComputeVirtualMs:  ms(stats.ComputeVirtual),
		WallMs:            ms(stats.Wall),
		AllocsPerSlice:    allocsPerSlice,
	}, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// countAllocs measures the heap allocations of one execution of fn,
// taking the minimum over a few repetitions to shake off GC and runtime
// noise.
func countAllocs(fn func() error) (uint64, error) {
	var best uint64
	var before, after runtime.MemStats
	for i := 0; i < 3; i++ {
		runtime.GC()
		runtime.ReadMemStats(&before)
		if err := fn(); err != nil {
			return 0, err
		}
		runtime.ReadMemStats(&after)
		if n := after.Mallocs - before.Mallocs; i == 0 || n < best {
			best = n
		}
	}
	return best, nil
}

// writeRuns creates the two run files with cheap deterministic content and
// evicts them from the page cache.
func writeRuns(store *pfs.Store, size int64) (*pfs.File, *pfs.File, error) {
	block := make([]byte, 1<<20)
	open := func(name string, seed byte) (*pfs.File, error) {
		for i := range block {
			block[i] = byte(i>>8) ^ byte(i)*7 ^ seed
		}
		wtr, err := store.Create(name)
		if err != nil {
			return nil, err
		}
		for written := int64(0); written < size; written += int64(len(block)) {
			if _, err := wtr.Write(block); err != nil {
				return nil, err
			}
		}
		if err := wtr.Close(); err != nil {
			return nil, err
		}
		store.Evict(name)
		return store.Open(name)
	}
	fA, err := open("runA.ckpt", 0x11)
	if err != nil {
		return nil, nil, err
	}
	fB, err := open("runB.ckpt", 0x22)
	if err != nil {
		return nil, nil, err
	}
	return fA, fB, nil
}

// clusteredPairs lays the candidate chunks out in bursts of adjacent
// chunks separated by clean regions — the spatially correlated divergence
// pattern coalescing exploits. Run B's bursts sit at a fixed offset from
// run A's so the two request sets differ.
func clusteredPairs(w Workload) []stream.ChunkPair {
	perCluster := w.Chunks / w.Clusters
	stride := w.FileBytes / int64(w.Clusters)
	pairs := make([]stream.ChunkPair, 0, w.Chunks)
	shift := int64(perCluster * w.ChunkBytes) // B's bursts trail A's by one burst length
	for c := 0; c < w.Clusters; c++ {
		base := int64(c) * stride
		for j := 0; j < perCluster; j++ {
			off := base + int64(j*w.ChunkBytes)
			pairs = append(pairs, stream.ChunkPair{
				Index: len(pairs),
				OffA:  off,
				OffB:  off + shift,
				Len:   w.ChunkBytes,
			})
		}
	}
	return pairs
}
