// Command benchgroup measures the N-run group-comparison engine against
// its sequential-pairwise equivalent and emits the results as JSON. The
// checked-in BENCH_group.json at the repository root is the tracked
// baseline; regenerate it with `make bench-json` and diff it in review.
//
// Each scenario builds one baseline checkpoint plus N perturbed replica
// runs with Merkle metadata, then compares the baseline against every
// replica two ways:
//
//	pairwise  N sequential compare.CompareMerkle calls — each pair
//	          re-opens the baseline, re-reads its metadata, and re-reads
//	          every candidate chunk the baseline shares between pairs
//	group     one compare.GroupCompare star plan — metadata loaded once
//	          per member, candidate sets of pairs sharing a member merged,
//	          one deduplicated batched read per member
//
// The headline columns are read_ops and read_bytes (store-level PFS
// operation counts, cached and uncached alike): the group plan must issue
// strictly fewer of both. Virtual milliseconds are deterministic model
// time; wall_ms is host noise.
//
// Usage:
//
//	benchgroup [-smoke] [-o file]
//
// Flags:
//
//	-smoke  tiny sizes: validates the runner end-to-end in milliseconds
//	        (wired into `make check`)
//	-o      output file ("" writes JSON to stdout)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/ckpt"
	"repro/internal/compare"
	"repro/internal/device"
	"repro/internal/errbound"
	"repro/internal/pfs"
	"repro/internal/synth"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Report is the JSON document benchgroup emits.
type Report struct {
	// GeneratedAt is the RFC 3339 wall-clock timestamp of the run.
	GeneratedAt string `json:"generated_at"`
	// GoVersion and GOMAXPROCS identify the toolchain and parallelism.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Smoke marks reduced-size validation runs; their numbers are not
	// comparable to full runs.
	Smoke bool `json:"smoke,omitempty"`
	// Workload describes the shared input every scenario compares.
	Workload Workload `json:"workload"`
	// Scenarios holds one pairwise-vs-group measurement per group size.
	Scenarios []Scenario `json:"scenarios"`
}

// Workload describes the synthetic runs every scenario is built from.
type Workload struct {
	// FieldElems is the element count of each float32 field.
	FieldElems int `json:"field_elems"`
	// Fields is the number of fields per checkpoint.
	Fields int `json:"fields"`
	// ChunkBytes is the Merkle chunk size.
	ChunkBytes int `json:"chunk_bytes"`
	// Epsilon is the error bound metadata was built with.
	Epsilon float64 `json:"epsilon"`
	// CheckpointBytes is one member's raw data size.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
}

// Side is one approach's cost for a scenario.
type Side struct {
	// ReadOps and ReadBytes are store-level PFS read operations and bytes
	// (cached + uncached) over the whole approach.
	ReadOps   int64 `json:"read_ops"`
	ReadBytes int64 `json:"read_bytes"`
	// VirtualMs is the summed deterministic model time.
	VirtualMs float64 `json:"virtual_ms"`
	// WallMs is the measured wall time (hardware noise).
	WallMs float64 `json:"wall_ms"`
	// Diffs is the total divergent element count found (must match the
	// other side).
	Diffs int64 `json:"diffs"`
}

// Scenario is one group size's pairwise-vs-group measurement.
type Scenario struct {
	// Runs is N: the number of replicas compared against the baseline.
	Runs int `json:"runs"`
	// Topology is the group plan's pair coverage.
	Topology string `json:"topology"`
	// Pairwise is the cost of N sequential CompareMerkle calls.
	Pairwise Side `json:"pairwise"`
	// Group is the cost of one GroupCompare plan over the same pairs.
	Group Side `json:"group"`
	// ReadOpsSaved and ReadBytesSaved are 1 - group/pairwise: the shared
	// stage-2 I/O win. Positive means the group plan read less.
	ReadOpsSaved   float64 `json:"read_ops_saved_frac"`
	ReadBytesSaved float64 `json:"read_bytes_saved_frac"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgroup", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		smoke = fs.Bool("smoke", false, "tiny sizes; validates the runner, numbers not comparable")
		out   = fs.String("o", "", "output file (empty writes to stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rep, err := measureAll(*smoke)
	if err != nil {
		fmt.Fprintln(stderr, "benchgroup:", err)
		return 1
	}
	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "benchgroup:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lint:ignore detflow benchmark reports record measured wall-clock durations by design
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(stderr, "benchgroup:", err)
		return 1
	}
	return 0
}

// groupSizes are the N values measured: the paper's multi-run scenarios.
var groupSizes = []int{2, 4, 8}

func measureAll(smoke bool) (*Report, error) {
	ctx := context.Background()
	elems, chunk := 1<<20, 64<<10
	if smoke {
		elems, chunk = 8<<10, 4<<10
	}
	const (
		nFields = 3
		eps     = 1e-7
	)
	rep := &Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Smoke:       smoke,
		Workload: Workload{
			FieldElems:      elems,
			Fields:          nFields,
			ChunkBytes:      chunk,
			Epsilon:         eps,
			CheckpointBytes: int64(elems) * 4 * nFields,
		},
	}
	dir, err := os.MkdirTemp("", "benchgroup-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := pfs.NewStore(dir, pfs.LustreModel())
	if err != nil {
		return nil, err
	}
	opts := compare.Options{Epsilon: eps, ChunkSize: chunk, Exec: device.NewParallel(runtime.GOMAXPROCS(0))}

	maxRuns := groupSizes[len(groupSizes)-1]
	baseline, members, err := buildRuns(ctx, store, maxRuns, elems, nFields, opts)
	if err != nil {
		return nil, err
	}

	for _, n := range groupSizes {
		sc, err := measureScenario(ctx, store, baseline, members[:n], opts)
		if err != nil {
			return nil, fmt.Errorf("runs=%d: %w", n, err)
		}
		rep.Scenarios = append(rep.Scenarios, sc)
	}
	return rep, nil
}

// buildRuns writes the baseline and n perturbed replicas with metadata.
func buildRuns(ctx context.Context, store *pfs.Store, n, elems, nFields int, opts compare.Options) (string, []string, error) {
	fields := make([]ckpt.FieldSpec, nFields)
	for i := range fields {
		fields[i] = ckpt.FieldSpec{Name: fmt.Sprintf("f%d", i), DType: errbound.Float32, Count: int64(elems)}
	}
	write := func(runID string, data [][]byte) (string, error) {
		meta := ckpt.Meta{RunID: runID, Iteration: 0, Rank: 0, Fields: fields}
		if _, err := ckpt.WriteCheckpoint(store, meta, data); err != nil {
			return "", err
		}
		name := ckpt.Name(runID, 0, 0)
		if _, _, err := compare.BuildAndSave(ctx, store, name, opts); err != nil {
			return "", err
		}
		return name, nil
	}
	var baseline string
	var members []string
	for i := 0; i <= n; i++ {
		// Same dataSeed reproduces the identical base run; each replica
		// gets its own clustered perturbation beyond ε.
		pert := synth.DefaultPerturb(int64(1000 + i))
		pert.MagLo, pert.MagHi = 1e-3, 1e-2
		base, replica := synth.RunPair(elems, nFields, 42, pert)
		if i == 0 {
			name, err := write("baseline", base)
			if err != nil {
				return "", nil, err
			}
			baseline = name
			continue
		}
		name, err := write(fmt.Sprintf("run%02d", i), replica)
		if err != nil {
			return "", nil, err
		}
		members = append(members, name)
	}
	return baseline, members, nil
}

func measureScenario(ctx context.Context, store *pfs.Store, baseline string, runs []string, opts compare.Options) (Scenario, error) {
	sc := Scenario{Runs: len(runs), Topology: compare.TopologyStar.String()}

	// Sequential pairwise: each pair pays the baseline's metadata load and
	// overlapping candidate reads again.
	store.EvictAll()
	startOps, startBytes := store.ReadStats()
	sw := time.Now()
	for _, name := range runs {
		res, err := compare.CompareMerkle(ctx, store, baseline, name, opts)
		if err != nil {
			return sc, err
		}
		sc.Pairwise.VirtualMs += float64(res.VirtualElapsed()) / float64(time.Millisecond)
		sc.Pairwise.Diffs += res.DiffCount
	}
	sc.Pairwise.WallMs = float64(time.Since(sw)) / float64(time.Millisecond)
	ops, bytes := store.ReadStats()
	sc.Pairwise.ReadOps = ops - startOps
	sc.Pairwise.ReadBytes = bytes - startBytes

	// Group: one shared plan over the same pairs.
	store.EvictAll()
	sw = time.Now()
	grp, err := compare.GroupCompare(ctx, store, baseline, runs, compare.TopologyStar, opts)
	if err != nil {
		return sc, err
	}
	sc.Group.WallMs = float64(time.Since(sw)) / float64(time.Millisecond)
	sc.Group.ReadOps = grp.ReadOps
	sc.Group.ReadBytes = grp.ReadBytes
	sc.Group.VirtualMs = float64(grp.Breakdown.Total().Virtual) / float64(time.Millisecond)
	for _, p := range grp.Pairs {
		sc.Group.Diffs += p.Result.DiffCount
	}

	if sc.Group.Diffs != sc.Pairwise.Diffs {
		return sc, fmt.Errorf("group found %d diffs, pairwise %d", sc.Group.Diffs, sc.Pairwise.Diffs)
	}
	if sc.Pairwise.ReadOps > 0 {
		sc.ReadOpsSaved = 1 - float64(sc.Group.ReadOps)/float64(sc.Pairwise.ReadOps)
	}
	if sc.Pairwise.ReadBytes > 0 {
		sc.ReadBytesSaved = 1 - float64(sc.Group.ReadBytes)/float64(sc.Pairwise.ReadBytes)
	}
	if sc.Group.ReadOps >= sc.Pairwise.ReadOps {
		return sc, fmt.Errorf("group issued %d read ops, pairwise %d: shared-read win missing",
			sc.Group.ReadOps, sc.Pairwise.ReadOps)
	}
	if sc.Group.ReadBytes >= sc.Pairwise.ReadBytes {
		return sc, fmt.Errorf("group read %d bytes, pairwise %d: shared-read win missing",
			sc.Group.ReadBytes, sc.Pairwise.ReadBytes)
	}
	return sc, nil
}
