// Command benchkernels measures the throughput of the comparator's four
// hot kernels — leaf hashing, tree construction, tree diffing, and exact
// element-wise comparison — and emits the results as JSON. The checked-in
// BENCH_kernels.json at the repository root is the tracked baseline;
// regenerate it with `make bench-json` and diff it in review to catch
// kernel regressions.
//
// Usage:
//
//	benchkernels [-smoke] [-mintime d] [-o file]
//
// Flags:
//
//	-smoke    tiny sizes and a short measurement window: validates the
//	          runner end-to-end in milliseconds (wired into `make check`)
//	-mintime  minimum measurement window per kernel (default 300ms)
//	-o        output file ("" writes JSON to stdout)
//
// Numbers come from the host wall clock (this is a cmd/ tool; the
// library's virtual clock is not involved) and therefore vary with
// hardware; treat cross-machine deltas as noise and same-machine deltas
// as signal.
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/ckpt"
	"repro/internal/compare"
	"repro/internal/errbound"
	"repro/internal/merkle"
	"repro/internal/service"
	"repro/internal/synth"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Report is the JSON document benchkernels emits.
type Report struct {
	// GeneratedAt is the RFC 3339 wall-clock timestamp of the run.
	GeneratedAt string `json:"generated_at"`
	// GoVersion and GOMAXPROCS identify the toolchain and parallelism.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Smoke marks reduced-size validation runs; their numbers are not
	// comparable to full runs.
	Smoke bool `json:"smoke,omitempty"`
	// Kernels are the per-kernel measurements, in fixed order.
	Kernels []Kernel `json:"kernels"`
}

// Kernel is one measured kernel.
type Kernel struct {
	// Name identifies the kernel and dtype, e.g. "leaf_hash_f64".
	Name string `json:"name"`
	// Bytes is the data processed per operation (both inputs for the
	// comparison kernels, the covered data for the diff kernel).
	Bytes int64 `json:"bytes"`
	// Iters is the number of operations timed.
	Iters int `json:"iters"`
	// NsPerOp is the mean wall time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerS is Bytes·Iters / elapsed, in SI megabytes per second.
	MBPerS float64 `json:"mb_per_s"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchkernels", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		smoke   = fs.Bool("smoke", false, "tiny sizes and window; validates the runner, numbers not comparable")
		minTime = fs.Duration("mintime", 300*time.Millisecond, "minimum measurement window per kernel")
		out     = fs.String("o", "", "output file (empty writes to stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Kernel working-set sizes: a 64 KiB chunk (the default hashing
	// granularity) and a 4 MiB field for the tree-level kernels.
	chunkSize := 64 << 10
	fieldBytes := 4 << 20
	window := *minTime
	if *smoke {
		chunkSize = 4 << 10
		fieldBytes = 64 << 10
		window = 2 * time.Millisecond
	}

	report, err := collect(chunkSize, fieldBytes, window)
	if err != nil {
		fmt.Fprintf(stderr, "benchkernels: %v\n", err)
		return 1
	}
	report.Smoke = *smoke

	//lint:ignore detflow benchmark reports record measured wall-clock durations by design
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchkernels: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fmt.Fprintf(stderr, "benchkernels: %v\n", err)
		return 1
	}
	return 0
}

// collect measures every kernel once and assembles the report.
func collect(chunkSize, fieldBytes int, window time.Duration) (*Report, error) {
	const eps = 1e-6
	report := &Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	// Deterministic inputs: the synth generator for f32 (and its
	// perturbed twin for the comparison kernels), a sine sweep for f64.
	f32Chunk := synth.FieldF32(chunkSize/4, 1)
	f64Chunk := make([]byte, 0, chunkSize)
	for i := 0; i < chunkSize/8; i++ {
		f64Chunk = binary.LittleEndian.AppendUint64(f64Chunk, math.Float64bits(math.Sin(float64(i)*0.001)))
	}
	f32Pair := synth.PerturbF32(f32Chunk, synth.DefaultPerturb(2))

	h32, err := errbound.NewHasher(errbound.Float32, eps)
	if err != nil {
		return nil, err
	}
	h64, err := errbound.NewHasher(errbound.Float64, eps)
	if err != nil {
		return nil, err
	}

	report.add(measure("leaf_hash_f32", int64(len(f32Chunk)), window, func() error {
		_, err := h32.HashChunk(f32Chunk)
		return err
	}))
	report.add(measure("leaf_hash_f64", int64(len(f64Chunk)), window, func() error {
		_, err := h64.HashChunk(f64Chunk)
		return err
	}))

	// Tree build: full metadata construction (leaf hashing + interior
	// levels) over one field through the default persistent-pool executor.
	field := synth.FieldF32(fieldBytes/4, 3)
	specs := []ckpt.FieldSpec{{Name: "x", DType: errbound.Float32, Count: int64(fieldBytes / 4)}}
	opts := compare.Options{Epsilon: eps, ChunkSize: chunkSize}
	report.add(measure("tree_build", int64(len(field)), window, func() error {
		_, _, err := compare.Build(specs, [][]byte{field}, opts)
		return err
	}))

	// Tree diff: the pruned BFS over two precomputed trees of a perturbed
	// pair. Bytes is the data the metadata covers — the rate at which the
	// diff answers "which chunks moved" without touching that data.
	fieldB := synth.PerturbF32(field, synth.DefaultPerturb(4))
	ma, _, err := compare.Build(specs, [][]byte{field}, opts)
	if err != nil {
		return nil, err
	}
	mb, _, err := compare.Build(specs, [][]byte{fieldB}, opts)
	if err != nil {
		return nil, err
	}
	ta, tb := ma.Fields[0].Tree, mb.Fields[0].Tree
	exec := service.Default().Executor()
	report.add(measure("tree_diff", int64(len(field)), window, func() error {
		_, _, err := merkle.Diff(ta, tb, ta.DefaultStartLevel(exec.Workers()), exec)
		return err
	}))

	// Element compare: the stage-2 exact verification kernel.
	var dst []int64
	report.add(measure("element_compare_f32", 2*int64(len(f32Chunk)), window, func() error {
		var err error
		dst, _, err = h32.CompareSlices(dst[:0], f32Chunk, f32Pair)
		return err
	}))

	return report, nil
}

// add appends a measurement, panicking on measurement errors (a kernel
// error here is a programming error in the runner, not a benchmark
// outcome).
func (r *Report) add(k Kernel, err error) {
	if err != nil {
		panic(err)
	}
	r.Kernels = append(r.Kernels, k)
}

// measure times fn until the window elapses (always at least one call
// after a warmup) and returns the aggregate rate.
func measure(name string, bytes int64, window time.Duration, fn func() error) (Kernel, error) {
	if err := fn(); err != nil { // warmup + error check
		return Kernel{}, fmt.Errorf("%s: %w", name, err)
	}
	var (
		iters   int
		elapsed time.Duration
	)
	start := time.Now()
	for elapsed < window {
		if err := fn(); err != nil {
			return Kernel{}, fmt.Errorf("%s: %w", name, err)
		}
		iters++
		elapsed = time.Since(start)
	}
	nsPerOp := float64(elapsed.Nanoseconds()) / float64(iters)
	return Kernel{
		Name:    name,
		Bytes:   bytes,
		Iters:   iters,
		NsPerOp: nsPerOp,
		MBPerS:  float64(bytes) * float64(iters) / elapsed.Seconds() / 1e6,
	}, nil
}
