package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestSmokeRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-smoke", "-o", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if !report.Smoke {
		t.Error("smoke run not marked as smoke")
	}
	want := []string{"leaf_hash_f32", "leaf_hash_f64", "tree_build", "tree_diff", "element_compare_f32"}
	if len(report.Kernels) != len(want) {
		t.Fatalf("got %d kernels, want %d", len(report.Kernels), len(want))
	}
	for i, k := range report.Kernels {
		if k.Name != want[i] {
			t.Errorf("kernel %d: name %q, want %q", i, k.Name, want[i])
		}
		if k.Iters < 1 || k.NsPerOp <= 0 || k.MBPerS <= 0 || k.Bytes <= 0 {
			t.Errorf("kernel %q has degenerate measurement: %+v", k.Name, k)
		}
	}
}

func TestSmokeRunStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-smoke"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	var report Report
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
}

func TestBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}
