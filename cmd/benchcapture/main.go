// Command benchcapture measures the differential-capture pipeline against
// classic full-container checkpointing across three divergence regimes.
//
// Each workload evolves two runs (A and B) over T iterations. Per field,
// a chunk-aligned *divergent* region separates B from A (stable across
// iterations — real reproducibility divergence is sticky), a *churn*
// region evolves identically in both runs every iteration (the shared
// physics both runs agree on), and the remainder is static. The same data
// is captured twice: classically (ckpt.WriteCheckpoint, one container per
// iteration) and differentially (compare.DiffCapturer over a shared CAS).
//
// Reported per level:
//
//   - capture bytes: full vs differential, the saved fraction, and the
//     CAS dedup hit rate — the paper's capture-affordability claim;
//   - cold path: a first-ever differential capture (empty CAS) vs one
//     full-container write of the same checkpoint — the overhead a run
//     pays before dedup has anything to hit;
//   - tree maintenance: incremental Merkle update (leaves touched, nodes
//     rehashed, wall per capture) vs a full rebuild of the final tree,
//     plus a golden re-check that the incremental root is bit-identical
//     to the rebuilt root;
//   - stage 2: read ops/bytes for classic CompareMerkle, CompareDiff
//     without a memo, and CompareDiff with a warmed CASMemo (full
//     pruning) — the with/without-CAS-pruning read-op comparison.
//
// The run self-checks its own acceptance floors (≥40% capture bytes
// saved at low divergence, memoized reads strictly below unmemoized and
// classic, identical verdicts across all three comparison paths, roots
// matching the rebuild) and exits nonzero on any violation, so `make
// check` catches regressions, not just slowdowns.
//
// Usage:
//
//	benchcapture [-smoke] [-o out.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/cas"
	"repro/internal/ckpt"
	"repro/internal/compare"
	"repro/internal/device"
	"repro/internal/errbound"
	"repro/internal/merkle"
	"repro/internal/pfs"
	"repro/internal/synth"
)

// Report is the checked-in benchmark artifact (BENCH_capture.json).
type Report struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Smoke       bool     `json:"smoke"`
	Workload    Workload `json:"workload"`
	Levels      []Level  `json:"levels"`
}

// Workload pins the synthetic-run shape shared by every level.
type Workload struct {
	FieldElems      int     `json:"field_elems"`
	Fields          int     `json:"fields"`
	ChunkBytes      int     `json:"chunk_bytes"`
	Epsilon         float64 `json:"epsilon"`
	Iterations      int     `json:"iterations"`
	Runs            int     `json:"runs"`
	CheckpointBytes int64   `json:"checkpoint_bytes"`
}

// Level is one divergence regime's measurements.
type Level struct {
	Name          string  `json:"name"`
	DivergentFrac float64 `json:"divergent_frac"`
	ChurnFrac     float64 `json:"churn_frac"`
	Capture       Capture `json:"capture"`
	Tree          Tree    `json:"tree"`
	Stage2        Stage2  `json:"stage2"`
}

// Capture compares write-side cost: classic containers vs the CAS.
type Capture struct {
	// FullBytes is every classic container write across runs × iterations.
	FullBytes int64 `json:"full_bytes"`
	// DiffBytes is every differential-capture write: pack, index,
	// manifests, and per-iteration Merkle metadata.
	DiffBytes      int64   `json:"diff_bytes"`
	BytesSavedFrac float64 `json:"bytes_saved_frac"`
	ChunksOffered  int     `json:"chunks_offered"`
	DedupHits      int     `json:"dedup_hits"`
	DedupHitRate   float64 `json:"dedup_hit_rate"`
	ChunksWritten  int     `json:"chunks_written"`
	PackBytes      int64   `json:"pack_bytes_written"`
	// ColdBytes is one differential capture into an empty CAS;
	// FullIterBytes is one classic container of the same checkpoint.
	ColdBytes     int64   `json:"cold_capture_bytes"`
	FullIterBytes int64   `json:"full_capture_bytes_per_iter"`
	// ColdOverheadFrac = ColdBytes/FullIterBytes - 1: the index +
	// manifest + metadata premium the no-dedup-yet path pays.
	ColdOverheadFrac float64 `json:"cold_overhead_frac"`
}

// Tree compares incremental Merkle maintenance against a full rebuild.
type Tree struct {
	WarmCaptures  int     `json:"warm_captures"`
	UpdatedLeaves int     `json:"updated_leaves"`
	RehashedNodes int     `json:"rehashed_nodes"`
	IncrementalMs float64 `json:"incremental_ms_per_capture"`
	RebuildMs     float64 `json:"full_rebuild_ms"`
	// RootsMatch re-checks the golden property on this workload: the
	// incrementally maintained roots equal a from-scratch rebuild's.
	RootsMatch bool `json:"roots_match_rebuild"`
}

// Stage2 compares read-side scheduling for the final-iteration pair.
type Stage2 struct {
	Classic    S2Side `json:"classic"`
	DiffNoMemo S2Side `json:"diff_no_memo"`
	DiffMemo   S2Side `json:"diff_memo"`
}

// S2Side is one comparison strategy's cold-cache read profile.
type S2Side struct {
	ReadOps    int64   `json:"read_ops"`
	ReadBytes  int64   `json:"read_bytes"`
	Candidates int     `json:"candidate_chunks"`
	CASPruned  int     `json:"cas_pruned_chunks"`
	Changed    int     `json:"changed_chunks"`
	Diffs      int64   `json:"diffs"`
	VirtualMs  float64 `json:"virtual_ms"`
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcapture", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		smoke = fs.Bool("smoke", false, "tiny sizes; validates the runner, numbers not comparable")
		out   = fs.String("o", "", "output file (empty writes to stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rep, err := measureAll(*smoke)
	if err != nil {
		fmt.Fprintln(stderr, "benchcapture:", err)
		return 1
	}
	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "benchcapture:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lint:ignore detflow benchmark reports record measured wall-clock durations by design
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(stderr, "benchcapture:", err)
		return 1
	}
	return 0
}

// levels are the divergence regimes: (divergent, churn) fractions of each
// field. Low is the paper's sweet spot — runs that mostly agree.
var levels = []struct {
	name       string
	div, churn float64
}{
	{"low", 0.02, 0.10},
	{"medium", 0.10, 0.30},
	{"high", 0.30, 0.60},
}

func measureAll(smoke bool) (*Report, error) {
	ctx := context.Background()
	elems, chunk, iters := 1<<19, 64<<10, 6
	if smoke {
		elems, chunk, iters = 8<<10, 4<<10, 4
	}
	const (
		nFields = 3
		eps     = 1e-5
	)
	rep := &Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Smoke:       smoke,
		Workload: Workload{
			FieldElems:      elems,
			Fields:          nFields,
			ChunkBytes:      chunk,
			Epsilon:         eps,
			Iterations:      iters,
			Runs:            2,
			CheckpointBytes: int64(elems) * 4 * nFields,
		},
	}
	dir, err := os.MkdirTemp("", "benchcapture-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	opts := compare.Options{Epsilon: eps, ChunkSize: chunk, Exec: device.NewParallel(runtime.GOMAXPROCS(0))}

	for _, lv := range levels {
		res, err := measureLevel(ctx, filepath.Join(dir, lv.name), lv.name, lv.div, lv.churn, elems, nFields, iters, opts)
		if err != nil {
			return nil, fmt.Errorf("level %s: %w", lv.name, err)
		}
		rep.Levels = append(rep.Levels, res)
	}
	return rep, selfCheck(rep)
}

// workload synthesizes both runs' data for one level. Regions are
// chunk-aligned so the nominal fractions land on dedup boundaries.
type workload struct {
	base                 [][]byte // per-field static baseline
	bDiv                 [][]byte // per-field divergent content for run B
	divBytes, churnBytes int
}

func newWorkload(elems, nFields, chunk int, div, churn float64) *workload {
	chunkElems := chunk / 4
	align := func(frac float64) int {
		n := int(frac * float64(elems))
		c := (n + chunkElems - 1) / chunkElems
		if c*chunkElems > elems {
			return elems
		}
		return c * chunkElems
	}
	w := &workload{divBytes: 4 * align(div), churnBytes: 4 * align(churn)}
	if w.divBytes+w.churnBytes > 4*elems {
		w.churnBytes = 4*elems - w.divBytes
	}
	for fi := 0; fi < nFields; fi++ {
		base := synth.FieldF32(elems, int64(100+fi))
		w.base = append(w.base, base)
		w.bDiv = append(w.bDiv, perturb(base[:w.divBytes], int64(555+fi)))
	}
	return w
}

// perturb rewrites a chunk-aligned region with deviations far above ε, so
// every chunk it covers changes its quantized leaf digest.
func perturb(region []byte, seed int64) []byte {
	return synth.PerturbF32(region, synth.PerturbConfig{
		Seed: seed, BlockElems: 256,
		MagLo: 1e-3, MagHi: 1e-2, ChangedFrac: 0.5,
	})
}

// iter returns both runs' field data at iteration t: the churn region is
// re-perturbed identically for A and B, the divergent region separates B.
func (w *workload) iter(t int) (a, b [][]byte) {
	for fi, base := range w.base {
		af := append([]byte(nil), base...)
		if w.churnBytes > 0 {
			ch := perturb(base[w.divBytes:w.divBytes+w.churnBytes], int64(10_000*t+fi))
			copy(af[w.divBytes:], ch)
		}
		bf := append([]byte(nil), af...)
		copy(bf, w.bDiv[fi])
		a = append(a, af)
		b = append(b, bf)
	}
	return a, b
}

func measureLevel(ctx context.Context, dir, name string, div, churn float64, elems, nFields, iters int, opts compare.Options) (Level, error) {
	lv := Level{Name: name, DivergentFrac: div, ChurnFrac: churn}
	w := newWorkload(elems, nFields, opts.ChunkSize, div, churn)

	fields := make([]ckpt.FieldSpec, nFields)
	for i := range fields {
		fields[i] = ckpt.FieldSpec{Name: fmt.Sprintf("f%d", i), DType: errbound.Float32, Count: int64(elems)}
	}
	newStore := func(sub string) (*pfs.Store, error) {
		d := filepath.Join(dir, sub)
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
		return pfs.NewStore(d, pfs.LustreModel())
	}
	storeFull, err := newStore("full")
	if err != nil {
		return lv, err
	}
	storeDiff, err := newStore("diff")
	if err != nil {
		return lv, err
	}
	cs, _, err := cas.Open(ctx, storeDiff)
	if err != nil {
		return lv, err
	}
	capA, err := compare.NewDiffCapturer(storeDiff, cs, opts)
	if err != nil {
		return lv, err
	}
	capB, err := compare.NewDiffCapturer(storeDiff, cs, opts)
	if err != nil {
		return lv, err
	}

	// Capture every iteration both ways; A before B so B's shared regions
	// dedup against A's freshly written chunks.
	var firstA [][]byte
	var treeWall time.Duration
	for t := 1; t <= iters; t++ {
		dataA, dataB := w.iter(t)
		if t == 1 {
			firstA = dataA
		}
		for _, side := range []struct {
			runID string
			cap   *compare.DiffCapturer
			data  [][]byte
		}{{"runA", capA, dataA}, {"runB", capB, dataB}} {
			meta := ckpt.Meta{RunID: side.runID, Iteration: t, Rank: 0, Fields: fields}
			cost, err := ckpt.WriteCheckpoint(storeFull, meta, side.data)
			if err != nil {
				return lv, err
			}
			lv.Capture.FullBytes += cost.Bytes
			if t == 1 && side.runID == "runA" {
				lv.Capture.FullIterBytes = cost.Bytes
			}
			rep, err := side.cap.Capture(ctx, meta, side.data)
			if err != nil {
				return lv, err
			}
			lv.Capture.DiffBytes += rep.Cost.Bytes
			lv.Capture.ChunksOffered += rep.Stats.Chunks
			lv.Capture.DedupHits += rep.Stats.DedupHits
			lv.Capture.ChunksWritten += rep.Stats.ChunksWritten
			lv.Capture.PackBytes += rep.Stats.BytesWritten
			if !rep.Cold {
				lv.Tree.WarmCaptures++
				lv.Tree.UpdatedLeaves += rep.UpdatedLeaves
				lv.Tree.RehashedNodes += rep.RehashedNodes
				treeWall += rep.TreeWall
			}
		}
	}
	lv.Capture.BytesSavedFrac = 1 - float64(lv.Capture.DiffBytes)/float64(lv.Capture.FullBytes)
	lv.Capture.DedupHitRate = float64(lv.Capture.DedupHits) / float64(lv.Capture.ChunksOffered)
	if lv.Tree.WarmCaptures > 0 {
		lv.Tree.IncrementalMs = float64(treeWall) / float64(time.Millisecond) / float64(lv.Tree.WarmCaptures)
	}

	// Cold path: the same first checkpoint into an empty CAS.
	storeCold, err := newStore("cold")
	if err != nil {
		return lv, err
	}
	csCold, _, err := cas.Open(ctx, storeCold)
	if err != nil {
		return lv, err
	}
	capCold, err := compare.NewDiffCapturer(storeCold, csCold, opts)
	if err != nil {
		return lv, err
	}
	coldRep, err := capCold.Capture(ctx, ckpt.Meta{RunID: "runA", Iteration: 1, Rank: 0, Fields: fields}, firstA)
	if err != nil {
		return lv, err
	}
	lv.Capture.ColdBytes = coldRep.Cost.Bytes
	lv.Capture.ColdOverheadFrac = float64(lv.Capture.ColdBytes)/float64(lv.Capture.FullIterBytes) - 1

	// Golden re-check + rebuild timing on run A's final tree: the
	// incrementally maintained metadata on disk must match a from-scratch
	// rebuild of the manifest's leaf digests, bit for bit.
	nameA := ckpt.Name("runA", iters, 0)
	nameB := ckpt.Name("runB", iters, 0)
	manA, _, err := cas.LoadManifest(ctx, storeDiff, nameA)
	if err != nil {
		return lv, err
	}
	metaA, _, _, err := compare.LoadMetadata(ctx, storeDiff, nameA)
	if err != nil {
		return lv, err
	}
	sw := time.Now()
	lv.Tree.RootsMatch = true
	for fi := range manA.Fields {
		fm := &manA.Fields[fi]
		t, err := merkle.New(fm.Bytes(), manA.ChunkSize, fm.Digests)
		if err != nil {
			return lv, err
		}
		t.Build(opts.Exec)
		if t.Root() != metaA.Fields[fi].Tree.Root() {
			lv.Tree.RootsMatch = false
		}
	}
	lv.Tree.RebuildMs = float64(time.Since(sw)) / float64(time.Millisecond)

	// Stage 2 on the final pair, cold cache each time. Classic needs the
	// containers' Merkle metadata built first (the diff store saved its
	// own at capture time).
	for _, n := range []string{nameA, nameB} {
		if _, _, err := compare.BuildAndSave(ctx, storeFull, n, opts); err != nil {
			return lv, err
		}
	}
	measure := func(store *pfs.Store, cmp func() (*compare.Result, error)) (S2Side, error) {
		store.EvictAll()
		ops0, bytes0 := store.ReadStats()
		res, err := cmp()
		if err != nil {
			return S2Side{}, err
		}
		ops1, bytes1 := store.ReadStats()
		return S2Side{
			ReadOps:    ops1 - ops0,
			ReadBytes:  bytes1 - bytes0,
			Candidates: res.CandidateChunks,
			CASPruned:  res.CASPrunedChunks,
			Changed:    res.ChangedChunks,
			Diffs:      res.DiffCount,
			VirtualMs:  float64(res.VirtualElapsed()) / float64(time.Millisecond),
		}, nil
	}
	lv.Stage2.Classic, err = measure(storeFull, func() (*compare.Result, error) {
		return compare.CompareMerkle(ctx, storeFull, nameA, nameB, opts)
	})
	if err != nil {
		return lv, err
	}
	lv.Stage2.DiffNoMemo, err = measure(storeDiff, func() (*compare.Result, error) {
		return compare.CompareDiff(ctx, storeDiff, cs, nameA, nameB, opts)
	})
	if err != nil {
		return lv, err
	}
	memoOpts := opts
	memoOpts.Memo = compare.NewCASMemo(opts.Epsilon)
	if _, err := compare.CompareDiff(ctx, storeDiff, cs, nameA, nameB, memoOpts); err != nil {
		return lv, err // warm the memo, unmeasured
	}
	lv.Stage2.DiffMemo, err = measure(storeDiff, func() (*compare.Result, error) {
		return compare.CompareDiff(ctx, storeDiff, cs, nameA, nameB, memoOpts)
	})
	if err != nil {
		return lv, err
	}
	return lv, nil
}

// selfCheck enforces the acceptance floors so `make check` fails on a
// capture-pipeline regression, not just a slower number.
func selfCheck(rep *Report) error {
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	for _, lv := range rep.Levels {
		c, s := lv.Capture, lv.Stage2
		if !lv.Tree.RootsMatch {
			fail("%s: incremental Merkle root diverged from full rebuild", lv.Name)
		}
		if s.Classic.Diffs == 0 {
			fail("%s: divergent workload compared clean", lv.Name)
		}
		if s.DiffNoMemo.Diffs != s.Classic.Diffs || s.DiffMemo.Diffs != s.Classic.Diffs ||
			s.DiffNoMemo.Changed != s.Classic.Changed || s.DiffMemo.Changed != s.Classic.Changed {
			fail("%s: comparison paths disagree: classic %d/%d, diff %d/%d, memo %d/%d diffs/changed",
				lv.Name, s.Classic.Diffs, s.Classic.Changed,
				s.DiffNoMemo.Diffs, s.DiffNoMemo.Changed, s.DiffMemo.Diffs, s.DiffMemo.Changed)
		}
		if s.DiffMemo.CASPruned != s.DiffMemo.Candidates {
			fail("%s: warmed memo pruned %d of %d candidates", lv.Name, s.DiffMemo.CASPruned, s.DiffMemo.Candidates)
		}
		if s.DiffMemo.ReadOps >= s.DiffNoMemo.ReadOps {
			fail("%s: CAS pruning did not reduce read ops: %d memoized vs %d", lv.Name, s.DiffMemo.ReadOps, s.DiffNoMemo.ReadOps)
		}
		//lint:ignore floatcmp acceptance thresholds are exact gates, not ε comparisons
		if c.ColdOverheadFrac > 0.25 || c.ColdOverheadFrac < -0.05 {
			fail("%s: cold capture overhead %.1f%% outside [-5%%, 25%%]", lv.Name, 100*c.ColdOverheadFrac)
		}
		if lv.Name == "low" {
			//lint:ignore floatcmp acceptance threshold is an exact gate, not an ε comparison
			if c.BytesSavedFrac < 0.40 {
				fail("low: capture bytes saved %.1f%% below the 40%% floor", 100*c.BytesSavedFrac)
			}
			if s.DiffMemo.ReadOps >= s.Classic.ReadOps {
				fail("low: memoized differential reads (%d ops) not below classic (%d ops)", s.DiffMemo.ReadOps, s.Classic.ReadOps)
			}
		}
	}
	if len(errs) > 0 {
		msg := "self-check failed:"
		for _, e := range errs {
			msg += "\n  " + e.Error()
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}
