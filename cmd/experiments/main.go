// Command experiments regenerates the paper's tables and figures at
// laptop scale.
//
// Usage:
//
//	experiments -all                 # everything (takes a while)
//	experiments -table 1 -table 2
//	experiments -fig 5 -fig 10
//	experiments -fig 5 -scale 1792   # smaller/faster sweep
//	experiments -dir /tmp/repro-exp  # keep generated data between runs
//
// Output is aligned text tables, one per paper artifact, with notes
// recording the scale factor and cost-model caveats. See EXPERIMENTS.md
// for recorded results and paper-vs-measured commentary.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"repro/internal/experiments"
)

type intList []int

func (l *intList) String() string { return fmt.Sprint([]int(*l)) }

func (l *intList) Set(s string) error {
	v, err := strconv.Atoi(s)
	if err != nil {
		return err
	}
	*l = append(*l, v)
	return nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		tables intList
		figs   intList
		all    = fs.Bool("all", false, "run every table and figure")
		scale  = fs.Int("scale", 448, "scale divisor for paper sizes (bigger = smaller/faster)")
		dir    = fs.String("dir", "", "working directory (default: a temp dir, removed on exit)")
		pairs  = fs.Int("pairs", 128, "workload size for the fig 10 scaling study")
	)
	fs.Var(&tables, "table", "paper table to regenerate (1 or 2); repeatable")
	fs.Var(&figs, "fig", "paper figure to regenerate (5-10); repeatable")
	ablations := fs.Bool("ablations", false, "run the DESIGN.md §6 design-choice ablations")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *all {
		tables = intList{1, 2}
		figs = intList{5, 6, 7, 8, 9, 10}
		*ablations = true
	}
	if len(tables) == 0 && len(figs) == 0 && !*ablations {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -all, -table N or -fig N")
	}

	workDir := *dir
	if workDir == "" {
		td, err := os.MkdirTemp("", "repro-experiments-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(td)
		workDir = td
	}
	env, err := experiments.NewEnv(workDir, *scale)
	if err != nil {
		return err
	}

	emit := func(t *experiments.Table, err error) error {
		if err != nil {
			return err
		}
		return t.Render(out)
	}

	for _, n := range tables {
		switch n {
		case 1:
			if err := emit(env.Table1()); err != nil {
				return err
			}
		case 2:
			if err := emit(env.Table2()); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown table %d", n)
		}
	}
	for _, n := range figs {
		switch n {
		case 5:
			for _, size := range []string{"500M", "1B", "2B"} {
				if err := emit(env.Fig5(ctx, size)); err != nil {
					return err
				}
			}
		case 6:
			for _, eps := range []float64{1e-7, 1e-3} {
				if err := emit(env.Fig6(ctx, eps)); err != nil {
					return err
				}
			}
		case 7:
			marked, fpr, err := env.Fig7(ctx)
			if err != nil {
				return err
			}
			if err := marked.Render(out); err != nil {
				return err
			}
			if err := fpr.Render(out); err != nil {
				return err
			}
		case 8:
			if err := emit(env.Fig8()); err != nil {
				return err
			}
		case 9:
			if err := emit(env.Fig9(ctx)); err != nil {
				return err
			}
		case 10:
			for _, eps := range []float64{1e-7, 1e-3} {
				if err := emit(env.Fig10(ctx, eps, *pairs, nil)); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("unknown figure %d", n)
		}
	}
	if *ablations {
		if err := emit(env.Ablations(ctx)); err != nil {
			return err
		}
	}
	return nil
}
