package main

import (
	"context"
	"bytes"
	"strings"
	"testing"
)

func TestRunNothingToDo(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{}, &out); err == nil {
		t.Error("empty invocation accepted")
	}
}

func TestRunUnknownArtifacts(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-table", "9"}, &out); err == nil {
		t.Error("unknown table accepted")
	}
	if err := run(context.Background(), []string{"-fig", "42"}, &out); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run(context.Background(), []string{"-table", "abc"}, &out); err == nil {
		t.Error("non-numeric table accepted")
	}
}

func TestRunTablesOnly(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-table", "1", "-table", "2", "-scale", "7000"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Table 1", "Table 2", "phi", "4KB-512KB"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSmallFigure(t *testing.T) {
	// Fig 8 is the cheapest figure; run it at an aggressive scale into a
	// persistent dir to exercise the -dir path too.
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-fig", "8", "-scale", "7000", "-dir", t.TempDir()}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 8") || !strings.Contains(out.String(), "CPU/GPU") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunAblations(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-ablations", "-scale", "7000"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Ablations", "baseline", "mmap backend", "no pipelining"} {
		if !strings.Contains(s, want) {
			t.Errorf("ablations output missing %q", want)
		}
	}
}
