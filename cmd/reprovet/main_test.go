package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for the CLI to lint.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fixture\n\ngo 1.22\n"
	for rel, content := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const dirtySource = `package sub
func f(a, b float64) bool { return a == b }
`

const suppressedSource = `package sub
func f(a, b float64) bool {
	//lint:ignore floatcmp fixture reason
	return a == b
}
`

const cleanSource = `package sub
func f(a, b int) bool { return a == b }
`

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitZeroOnCleanTree(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/sub/ok.go": cleanSource})
	code, stdout, stderr := runCLI(t, "-C", root, "./...")
	if code != 0 {
		t.Fatalf("exit %d on clean tree; stdout=%q stderr=%q", code, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean tree should print nothing, got %q", stdout)
	}
}

func TestExitOneOnFindings(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/sub/bad.go": dirtySource})
	code, stdout, _ := runCLI(t, "-C", root, "./...")
	if code != 1 {
		t.Fatalf("exit %d on dirty tree, want 1; stdout=%q", code, stdout)
	}
	if !strings.Contains(stdout, "floatcmp") || !strings.Contains(stdout, "bad.go:2") {
		t.Fatalf("finding not reported: %q", stdout)
	}
	if !strings.Contains(stdout, "1 finding(s)") {
		t.Fatalf("summary line missing: %q", stdout)
	}
}

func TestSuppressionComment(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/sub/ok.go": suppressedSource})
	code, stdout, stderr := runCLI(t, "-C", root, "./...")
	if code != 0 {
		t.Fatalf("suppressed finding must not fail: exit %d stdout=%q stderr=%q", code, stdout, stderr)
	}
}

func TestJSONOutput(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/sub/bad.go": dirtySource})
	code, stdout, _ := runCLI(t, "-C", root, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var diags []map[string]any
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout)
	}
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %d", len(diags))
	}
	d := diags[0]
	if d["rule"] != "floatcmp" || d["severity"] != "error" || d["line"] != float64(2) {
		t.Fatalf("unexpected diagnostic payload: %v", d)
	}
}

func TestJSONOutputEmptyArrayOnClean(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/sub/ok.go": cleanSource})
	code, stdout, _ := runCLI(t, "-C", root, "-json", "./...")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Fatalf("clean JSON output should be [], got %q", stdout)
	}
}

func TestRulesSubset(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/sub/bad.go": dirtySource})
	// gocheck alone cannot see the float comparison.
	code, stdout, _ := runCLI(t, "-C", root, "-rules", "gocheck", "./...")
	if code != 0 {
		t.Fatalf("rule subset should be clean: exit %d stdout=%q", code, stdout)
	}
	code, _, stderr := runCLI(t, "-C", root, "-rules", "bogus", "./...")
	if code != 2 || !strings.Contains(stderr, "unknown rule") {
		t.Fatalf("unknown rule: exit %d stderr=%q", code, stderr)
	}
}

func TestTestsFlag(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/sub/ok.go":         cleanSource,
		"internal/sub/dirty_test.go": "package sub\nfunc g(a, b float64) bool { return a == b }\n",
	})
	if code, _, _ := runCLI(t, "-C", root, "./..."); code != 0 {
		t.Fatalf("test files must be skipped by default (exit %d)", code)
	}
	if code, _, _ := runCLI(t, "-C", root, "-tests", "./..."); code != 1 {
		t.Fatalf("-tests must include test files (exit %d)", code)
	}
}

func TestListFlag(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, rule := range []string{"floatcmp", "maphash", "gocheck", "errclose", "walltime"} {
		if !strings.Contains(stdout, rule) {
			t.Fatalf("-list missing %s:\n%s", rule, stdout)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t, "-definitely-not-a-flag"); code != 2 {
		t.Fatalf("bad flag should exit 2, got %d", code)
	}
	root := writeModule(t, map[string]string{"internal/sub/ok.go": cleanSource})
	if code, _, _ := runCLI(t, "-C", root, "./no/such/dir"); code != 2 {
		t.Fatalf("bad pattern should exit 2, got %d", code)
	}
	if code, _, _ := runCLI(t, "-C", t.TempDir()); code != 2 {
		t.Fatalf("no go.mod should exit 2, got %d", code)
	}
}

func TestChdirScopesPatterns(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/bad/bad.go": dirtySource,
		"internal/ok/ok.go":   cleanSource,
	})
	// From inside internal/ok, ./... must only cover that subtree.
	code, stdout, _ := runCLI(t, "-C", filepath.Join(root, "internal", "ok"), "./...")
	if code != 0 {
		t.Fatalf("scoped run saw findings outside its subtree: exit %d stdout=%q", code, stdout)
	}
	code, _, _ = runCLI(t, "-C", filepath.Join(root, "internal", "bad"), "./...")
	if code != 1 {
		t.Fatalf("scoped run missed its own findings: exit %d", code)
	}
}

func TestParseErrorExitsTwo(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/sub/broken.go": "package sub {{{\n"})
	code, _, stderr := runCLI(t, "-C", root, "./...")
	if code != 2 || stderr == "" {
		t.Fatalf("parse error: exit %d stderr=%q", code, stderr)
	}
}

// typedEscapeSource compares floats behind a struct field, which the
// syntactic floatcmp rule cannot see: only the tier-2 epsflow rule
// (with type information) flags it.
const typedEscapeSource = `package sub

type pt struct{ x float64 }

func eq(a, b pt) bool { return a.x == b.x }
`

func TestTierFlag(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/sub/esc.go": typedEscapeSource})
	code, stdout, _ := runCLI(t, "-C", root, "./...")
	if code != 1 || !strings.Contains(stdout, "epsflow") {
		t.Fatalf("default tier 2 must flag the typed escape: exit %d stdout=%q", code, stdout)
	}
	code, stdout, _ = runCLI(t, "-C", root, "-tier", "1", "./...")
	if code != 0 {
		t.Fatalf("-tier 1 must not run dataflow rules: exit %d stdout=%q", code, stdout)
	}
	code, _, stderr := runCLI(t, "-C", root, "-tier", "3", "./...")
	if code != 2 || !strings.Contains(stderr, "-tier") {
		t.Fatalf("bad tier: exit %d stderr=%q", code, stderr)
	}
}

// detFlowSource routes wall-clock time into an encoded record; lives in
// cmd/ so the tier-1 walltime rule (scoped to internal/) stays quiet and
// the only finding is detflow's, complete with its source→sink path.
const detFlowSource = `package main

import (
	"encoding/json"
	"time"
)

func stamp() ([]byte, error) {
	t := time.Now()
	return json.Marshal(t)
}

func main() {}
`

func TestTextOutputPrintsPath(t *testing.T) {
	root := writeModule(t, map[string]string{"cmd/tool/main.go": detFlowSource})
	code, stdout, _ := runCLI(t, "-C", root, "./...")
	if code != 1 || !strings.Contains(stdout, "detflow") {
		t.Fatalf("detflow finding missing: exit %d stdout=%q", code, stdout)
	}
	if !strings.Contains(stdout, "\t") || !strings.Contains(stdout, "reads the wall clock") {
		t.Fatalf("path steps should print indented under the finding:\n%s", stdout)
	}
}

func TestSarifOutput(t *testing.T) {
	root := writeModule(t, map[string]string{"cmd/tool/main.go": detFlowSource})
	code, stdout, _ := runCLI(t, "-C", root, "-sarif", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID           string `json:"ruleId"`
				RelatedLocations []any  `json:"relatedLocations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("-sarif output is not JSON: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) != 1 {
		t.Fatalf("unexpected SARIF shape: %s", stdout)
	}
	res := log.Runs[0].Results[0]
	if res.RuleID != "detflow" || len(res.RelatedLocations) == 0 {
		t.Fatalf("detflow result should carry its path as relatedLocations: %s", stdout)
	}

	code, _, stderr := runCLI(t, "-C", root, "-sarif", "-json", "./...")
	if code != 2 || !strings.Contains(stderr, "mutually exclusive") {
		t.Fatalf("-sarif -json: exit %d stderr=%q", code, stderr)
	}
}

func TestFixFlag(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/sub/clock.go":         "package sub\n\nimport \"time\"\n\nfunc when() time.Time { return time.Now() }\n",
		"internal/simclock/simclock.go": "package simclock\n\nimport \"time\"\n\nfunc Epoch() time.Time { return time.Unix(0, 0).UTC() }\n",
	})
	code, stdout, stderr := runCLI(t, "-C", root, "-fix", "./...")
	if code != 0 {
		t.Fatalf("-fix exit %d stdout=%q stderr=%q", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "clock.go: 1 fixed, 0 skipped") {
		t.Fatalf("fix report missing: %q", stdout)
	}
	fixed, err := os.ReadFile(filepath.Join(root, "internal", "sub", "clock.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "simclock.Epoch()") || strings.Contains(string(fixed), "time.Now") {
		t.Fatalf("file not rewritten:\n%s", fixed)
	}
	// The rewritten tree lints clean.
	if code, stdout, _ := runCLI(t, "-C", root, "./..."); code != 0 {
		t.Fatalf("tree still dirty after -fix: exit %d stdout=%q", code, stdout)
	}
}

func TestAuditIgnoresFlag(t *testing.T) {
	root := writeModule(t, map[string]string{"internal/sub/ok.go": suppressedSource})
	if code, stdout, _ := runCLI(t, "-C", root, "-audit-ignores", "./..."); code != 0 {
		t.Fatalf("live directive reported stale: exit %d stdout=%q", code, stdout)
	}

	root = writeModule(t, map[string]string{
		"internal/sub/ok.go": "package sub\n\nfunc f(a, b int) bool {\n\t//lint:ignore floatcmp these are ints now\n\treturn a == b\n}\n",
	})
	code, stdout, _ := runCLI(t, "-C", root, "-audit-ignores", "./...")
	if code != 1 {
		t.Fatalf("stale directive must exit 1: exit %d stdout=%q", code, stdout)
	}
	if !strings.Contains(stdout, "ok.go:4: stale //lint:ignore floatcmp") || !strings.Contains(stdout, "these are ints now") {
		t.Fatalf("stale report: %q", stdout)
	}
}
