// Command reprovet runs the project's static-analysis suite
// (internal/lint) over the source tree and exits nonzero on findings.
//
// Usage:
//
//	reprovet [flags] [packages]
//
// Packages follow go-tool patterns ("./...", "./internal/ckpt");
// the default is "./..." from the enclosing module root.
//
// Flags:
//
//	-json           emit findings as a JSON array instead of text
//	-sarif          emit findings as SARIF 2.1.0 instead of text
//	-tier N         analysis depth: 1 = syntactic rules only,
//	                2 = also type-check and run the dataflow rules
//	                (default 2; packages that fail to type-check
//	                silently degrade to tier 1)
//	-tests          include _test.go files
//	-rules          comma-separated rule subset (default: all)
//	-list           print the rule set and exit
//	-fix            rewrite fixable findings in place (errclose
//	                dropped-Close → safeclose.Do, walltime time.Now
//	                → simclock.Epoch) and report what changed
//	-audit-ignores  report //lint:ignore directives that suppress
//	                nothing (runs the full suite at tier 2)
//	-C dir          run as if invoked from dir
//
// Exit status: 0 when no error-severity finding survives suppression
// (for -audit-ignores: no stale directive; for -fix: nothing left
// unfixable), 1 otherwise, 2 on usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so tests can drive exit
// codes and output without spawning a process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reprovet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit findings as JSON")
		sarifOut = fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
		tier     = fs.Int("tier", 2, "analysis depth: 1 syntactic, 2 adds type-aware dataflow rules")
		tests    = fs.Bool("tests", false, "include _test.go files")
		rules    = fs.String("rules", "", "comma-separated subset of rules to run")
		list     = fs.Bool("list", false, "list available rules and exit")
		fix      = fs.Bool("fix", false, "rewrite fixable findings in place")
		audit    = fs.Bool("audit-ignores", false, "report lint:ignore directives that suppress nothing")
		chdir    = fs.String("C", ".", "run as if invoked from this directory")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-10s tier %d  %s\n", a.Name, displayTier(a), a.Doc)
		}
		return 0
	}
	if *tier != 1 && *tier != 2 {
		fmt.Fprintf(stderr, "reprovet: -tier must be 1 or 2, got %d\n", *tier)
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "reprovet: -json and -sarif are mutually exclusive")
		return 2
	}

	analyzers := lint.All()
	if *tier == 1 {
		analyzers = tierSubset(analyzers, 1)
	}
	if *rules != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "reprovet: unknown rule %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
		if len(analyzers) == 0 {
			fmt.Fprintln(stderr, "reprovet: -rules selected no rules")
			return 2
		}
	}

	root, err := lint.FindModuleRoot(*chdir)
	if err != nil {
		fmt.Fprintf(stderr, "reprovet: %v\n", err)
		return 2
	}

	// Patterns are written relative to -C (like the go tool); the lint
	// runner resolves them against the module root.
	patterns, err := rebasePatterns(root, *chdir, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "reprovet: %v\n", err)
		return 2
	}
	cfg := lint.Config{
		Root:         root,
		Analyzers:    analyzers,
		IncludeTests: *tests,
		Tier:         *tier,
	}

	if *fix {
		return runFix(cfg, patterns, stdout, stderr)
	}
	if *audit {
		// Auditing against a rule subset or the shallow tier would call
		// directives for the excluded rules stale; always use the full
		// suite at full depth.
		cfg.Analyzers = lint.All()
		cfg.Tier = 2
		return runAudit(cfg, patterns, stdout, stderr)
	}

	diags, err := lint.Run(cfg, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "reprovet: %v\n", err)
		return 2
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "reprovet: %v\n", err)
			return 2
		}
	case *sarifOut:
		out, err := lint.ToSARIF(diags, root)
		if err != nil {
			fmt.Fprintf(stderr, "reprovet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", out)
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
			// Tier-2 findings carry their source→sink trail; print it
			// indented so the finding reads as a story, not a position.
			for _, step := range d.Path {
				fmt.Fprintf(stdout, "\t%s\n", step.String())
			}
		}
		if len(diags) > 0 {
			fmt.Fprintf(stdout, "reprovet: %d finding(s)\n", len(diags))
		}
	}

	if lint.HasErrors(diags) {
		return 1
	}
	return 0
}

// runFix applies the mechanical fixes and reports per-file counts. Exit
// 1 when flagged sites remain that the fixer could not rewrite.
func runFix(cfg lint.Config, patterns []string, stdout, stderr io.Writer) int {
	results, err := lint.Fix(cfg, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "reprovet: %v\n", err)
		return 2
	}
	applied, skipped := 0, 0
	for _, r := range results {
		fmt.Fprintf(stdout, "%s: %d fixed, %d skipped\n", r.File, r.Applied, r.Skipped)
		applied += r.Applied
		skipped += r.Skipped
	}
	fmt.Fprintf(stdout, "reprovet: fixed %d site(s), %d unfixable\n", applied, skipped)
	if skipped > 0 {
		return 1
	}
	return 0
}

// runAudit reports stale suppression directives. Exit 1 when any exist.
func runAudit(cfg lint.Config, patterns []string, stdout, stderr io.Writer) int {
	_, stale, err := lint.RunAudit(cfg, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "reprovet: %v\n", err)
		return 2
	}
	for _, s := range stale {
		reason := s.Reason
		if reason == "" {
			reason = "(no reason given)"
		}
		fmt.Fprintf(stdout, "%s:%d: stale //lint:ignore %s — %s\n", s.File, s.Line, strings.Join(s.Rules, ","), reason)
	}
	if len(stale) > 0 {
		fmt.Fprintf(stdout, "reprovet: %d stale ignore directive(s)\n", len(stale))
		return 1
	}
	return 0
}

// displayTier mirrors the analyzer's normalized tier for -list output.
func displayTier(a *lint.Analyzer) int {
	if a.Tier < 2 {
		return 1
	}
	return a.Tier
}

// tierSubset filters analyzers to those at or below the given tier.
func tierSubset(analyzers []*lint.Analyzer, tier int) []*lint.Analyzer {
	var out []*lint.Analyzer
	for _, a := range analyzers {
		if displayTier(a) <= tier {
			out = append(out, a)
		}
	}
	return out
}

// rebasePatterns rewrites patterns given relative to dir so they resolve
// correctly against the module root.
func rebasePatterns(root, dir string, patterns []string) ([]string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		return patterns, nil
	}
	out := make([]string, len(patterns))
	for i, p := range patterns {
		out[i] = filepath.ToSlash(filepath.Join(rel, p))
		// filepath.Join cleans "x/..." into "x/...", but a bare "..."
		// suffix must survive the rebase.
		if strings.HasSuffix(p, "...") && !strings.HasSuffix(out[i], "...") {
			out[i] += "/..."
		}
	}
	return out, nil
}
