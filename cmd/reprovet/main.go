// Command reprovet runs the project's static-analysis suite
// (internal/lint) over the source tree and exits nonzero on findings.
//
// Usage:
//
//	reprovet [flags] [packages]
//
// Packages follow go-tool patterns ("./...", "./internal/ckpt");
// the default is "./..." from the enclosing module root.
//
// Flags:
//
//	-json     emit findings as a JSON array instead of text
//	-tests    include _test.go files
//	-rules    comma-separated rule subset (default: all)
//	-list     print the rule set and exit
//	-C dir    run as if invoked from dir
//
// Exit status: 0 when no error-severity finding survives suppression,
// 1 when at least one does, 2 on usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so tests can drive exit
// codes and output without spawning a process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reprovet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit findings as JSON")
		tests   = fs.Bool("tests", false, "include _test.go files")
		rules   = fs.String("rules", "", "comma-separated subset of rules to run")
		list    = fs.Bool("list", false, "list available rules and exit")
		chdir   = fs.String("C", ".", "run as if invoked from this directory")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *rules != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "reprovet: unknown rule %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
		if len(analyzers) == 0 {
			fmt.Fprintln(stderr, "reprovet: -rules selected no rules")
			return 2
		}
	}

	root, err := lint.FindModuleRoot(*chdir)
	if err != nil {
		fmt.Fprintf(stderr, "reprovet: %v\n", err)
		return 2
	}

	// Patterns are written relative to -C (like the go tool); the lint
	// runner resolves them against the module root.
	patterns, err := rebasePatterns(root, *chdir, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "reprovet: %v\n", err)
		return 2
	}
	diags, err := lint.Run(lint.Config{
		Root:         root,
		Analyzers:    analyzers,
		IncludeTests: *tests,
	}, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "reprovet: %v\n", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "reprovet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
		if len(diags) > 0 {
			fmt.Fprintf(stdout, "reprovet: %d finding(s)\n", len(diags))
		}
	}

	if lint.HasErrors(diags) {
		return 1
	}
	return 0
}

// rebasePatterns rewrites patterns given relative to dir so they resolve
// correctly against the module root.
func rebasePatterns(root, dir string, patterns []string) ([]string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		return patterns, nil
	}
	out := make([]string, len(patterns))
	for i, p := range patterns {
		out[i] = filepath.ToSlash(filepath.Join(rel, p))
		// filepath.Join cleans "x/..." into "x/...", but a bare "..."
		// suffix must survive the rebase.
		if strings.HasSuffix(p, "...") && !strings.HasSuffix(out[i], "...") {
			out[i] += "/..."
		}
	}
	return out, nil
}
