// Command haccgen runs the bundled HACC-style P³M cosmology simulation
// twice with nondeterministic force accumulation (distinct interleaving
// seeds, identical initial conditions) and captures both runs' checkpoint
// histories through the asynchronous two-tier checkpointer — producing the
// input data for reprocmp, exactly the paper's evaluation flow (§3.3.1).
//
// Usage:
//
//	haccgen -store DIR [-particles 20000] [-steps 50] [-every 10]
//	        [-runa run1 -runb run2] [-eps 1e-6 -chunk 65536 -hash]
//
// With -hash, Merkle metadata is built and saved next to every captured
// checkpoint so the store is immediately comparable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro"
	"repro/internal/catalog"
	"repro/internal/hacc"
	"repro/internal/mpi"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "haccgen:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("haccgen", flag.ContinueOnError)
	var (
		dir       = fs.String("store", "", "store directory (PFS tier)")
		particles = fs.Int("particles", 20000, "particle count")
		grid      = fs.Int("grid", 32, "mesh extent per axis (power of two)")
		steps     = fs.Int("steps", 50, "simulation steps")
		every     = fs.Int("every", 10, "checkpoint every N steps")
		ranks     = fs.Int("ranks", 1, "simulation ranks (slab decomposition; 1 = serial)")
		runA      = fs.String("runa", "run1", "first run ID")
		runB      = fs.String("runb", "run2", "second run ID")
		seed      = fs.Int64("seed", 1, "initial-conditions seed (shared)")
		hash      = fs.Bool("hash", false, "build Merkle metadata for every checkpoint")
		eps       = fs.Float64("eps", 1e-6, "error bound for -hash")
		chunk     = fs.Int("chunk", 64<<10, "chunk size for -hash")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return errors.New("-store is required")
	}
	if *every <= 0 || *steps <= 0 {
		return errors.New("-steps and -every must be positive")
	}

	remote, err := repro.NewStore(*dir, repro.LustreModel())
	if err != nil {
		return err
	}
	local, err := repro.NewStore(filepath.Join(*dir, ".node-local"), repro.NVMeModel())
	if err != nil {
		return err
	}

	for i, runID := range []string{*runA, *runB} {
		cfg := hacc.DefaultConfig(*particles)
		cfg.Grid = *grid
		cfg.Box = float64(*grid)
		cfg.Seed = *seed
		cfg.Nondet = true
		cfg.NondetSeed = int64(i + 1) // the only difference between the runs
		if *ranks > 1 {
			err = simulateParallel(cfg, *ranks, runID, *steps, *every, local, remote)
		} else {
			err = simulate(cfg, runID, *steps, *every, local, remote)
		}
		if err != nil {
			return fmt.Errorf("run %s: %w", runID, err)
		}
		fmt.Fprintf(out, "run %s: %d steps on %d rank(s), history captured\n", runID, *steps, *ranks)
	}

	if *hash {
		opts := repro.Options{Epsilon: *eps, ChunkSize: *chunk}
		for _, runID := range []string{*runA, *runB} {
			names, err := repro.History(remote, runID)
			if err != nil {
				return err
			}
			for _, n := range names {
				if _, _, err := repro.BuildAndSave(ctx, remote, n, opts); err != nil {
					return fmt.Errorf("hash %s: %w", n, err)
				}
			}
			fmt.Fprintf(out, "run %s: metadata built for %d checkpoints (eps=%g)\n", runID, len(names), *eps)
		}
	}
	// Record provenance manifests for both runs.
	for i, runID := range []string{*runA, *runB} {
		m, err := catalog.Scan(ctx, remote, runID, nil)
		if err != nil {
			return err
		}
		cfg := hacc.DefaultConfig(*particles)
		cfg.Grid = *grid
		cfg.Box = float64(*grid)
		cfg.Seed = *seed
		cfg.Nondet = true
		cfg.NondetSeed = int64(i + 1)
		if err := m.SetApp("hacc", cfg); err != nil {
			return err
		}
		if err := catalog.Save(remote, m); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "done; compare with: reprocmp history -store %s -runa %s -runb %s -eps %g\n",
		*dir, *runA, *runB, *eps)
	return nil
}

// simulateParallel runs the slab-decomposed simulation: every rank steps
// in lockstep and captures its own ID-range shard.
func simulateParallel(cfg hacc.Config, ranks int, runID string, steps, every int, local, remote *repro.Store) error {
	c := repro.NewCheckpointer(local, remote, 2)
	err := mpi.Run(ranks, func(r *mpi.Rank) error {
		sim, err := hacc.NewRankSim(cfg, r)
		if err != nil {
			return err
		}
		for s := 1; s <= steps; s++ {
			if err := sim.Step(); err != nil {
				return err
			}
			if s%every == 0 {
				if err := sim.Capture(c, runID); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if cerr := c.Close(); err == nil {
		err = cerr
	}
	return err
}

func simulate(cfg hacc.Config, runID string, steps, every int, local, remote *repro.Store) error {
	sim, err := hacc.New(cfg)
	if err != nil {
		return err
	}
	c := repro.NewCheckpointer(local, remote, 2)
	defer c.Close()
	for s := 1; s <= steps; s++ {
		if err := sim.Step(); err != nil {
			return err
		}
		if s%every == 0 {
			if err := sim.Capture(c, runID, 0); err != nil {
				return err
			}
		}
	}
	return c.Close()
}
