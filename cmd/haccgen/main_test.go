package main

import (
	"context"
	"bytes"
	"strings"
	"testing"

	"repro"
)

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{}, &out); err == nil {
		t.Error("missing -store accepted")
	}
	if err := run(context.Background(), []string{"-store", t.TempDir(), "-steps", "0"}, &out); err == nil {
		t.Error("steps=0 accepted")
	}
	if err := run(context.Background(), []string{"-store", t.TempDir(), "-every", "-1"}, &out); err == nil {
		t.Error("negative -every accepted")
	}
}

func TestSerialGeneration(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run(context.Background(), []string{"-store", dir, "-particles", "600", "-grid", "16",
		"-steps", "4", "-every", "2", "-hash", "-eps", "1e-6", "-chunk", "4096"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "metadata built for 2 checkpoints") {
		t.Errorf("output: %s", out.String())
	}
	store, err := repro.NewStore(dir, repro.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	for _, runID := range []string{"run1", "run2"} {
		h, err := repro.History(store, runID)
		if err != nil {
			t.Fatal(err)
		}
		if len(h) != 2 {
			t.Errorf("%s history = %v", runID, h)
		}
		for _, n := range h {
			if _, err := repro.LoadMetadata(context.Background(), store, n); err != nil {
				t.Errorf("metadata missing for %s: %v", n, err)
			}
		}
	}
}

func TestParallelGeneration(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run(context.Background(), []string{"-store", dir, "-particles", "400", "-grid", "16",
		"-steps", "2", "-every", "2", "-ranks", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	store, err := repro.NewStore(dir, repro.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	h, err := repro.History(store, "run1")
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 2 { // one iteration × two ranks
		t.Errorf("parallel history = %v", h)
	}
}
