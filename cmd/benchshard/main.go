// Command benchshard measures the subtree-sharded comparison engine
// (internal/shard) across worker counts, assignment policies, and work
// stealing, and emits the results as JSON. The checked-in
// BENCH_shard.json at the repository root is the tracked baseline;
// regenerate it with `make bench-json` and diff it in review.
//
// Two workloads exercise the two scheduling claims:
//
//	skewed   every divergent subtree sits in the first quarter of field 0,
//	         the shape that punishes static owner-computes assignment: the
//	         whole stage-2 load lands on one worker's key-space block.
//	         Rows sweep workers × {static, stealing}; the tracked floor is
//	         stealing cutting the 8-worker virtual makespan ≥ 1.5×.
//	uniform  every subtree diverges, over a store striped across 4 OSTs.
//	         Rows sweep assignment policies at 4 workers; the tracked
//	         floor is placement-aware assignment (each OST read by one
//	         worker) beating seeded-random assignment on read virtual
//	         time.
//
// Every row is cross-checked against the single-node CompareMerkle
// oracle — identical divergent-element counts — and against the bounded
// buffer budget (peak in-flight bytes ≤ Budget). All scheduling numbers
// are deterministic virtual model time; wall_ms is host noise.
//
// Usage:
//
//	benchshard [-smoke] [-o file]
//
// Flags:
//
//	-smoke  tiny sizes: validates the runner and the oracle identity in
//	        milliseconds, skips the performance floors (wired into
//	        `make check`)
//	-o      output file ("" writes JSON to stdout)
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/ckpt"
	"repro/internal/compare"
	"repro/internal/device"
	"repro/internal/errbound"
	"repro/internal/pfs"
	"repro/internal/shard"
	"repro/internal/synth"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Report is the JSON document benchshard emits.
type Report struct {
	// GeneratedAt is the RFC 3339 wall-clock timestamp of the run.
	GeneratedAt string `json:"generated_at"`
	// GoVersion and GOMAXPROCS identify the toolchain and parallelism.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Smoke marks reduced-size validation runs; their numbers are not
	// comparable to full runs and the floors are not enforced.
	Smoke bool `json:"smoke,omitempty"`
	// Skewed and Uniform are the two workload sections.
	Skewed  Section `json:"skewed"`
	Uniform Section `json:"uniform"`
	// Floors are the self-checked performance claims of the full run.
	Floors Floors `json:"floors"`
}

// Workload describes one section's synthetic input.
type Workload struct {
	// FieldElems is the element count of each float32 field.
	FieldElems int `json:"field_elems"`
	// Fields is the number of fields per checkpoint.
	Fields int `json:"fields"`
	// ChunkBytes is the Merkle chunk size.
	ChunkBytes int `json:"chunk_bytes"`
	// SubtreeChunks is the work-unit granularity.
	SubtreeChunks int `json:"subtree_chunks"`
	// Epsilon is the error bound metadata was built with.
	Epsilon float64 `json:"epsilon"`
	// Targets and StripeBytes describe OST striping (0 targets = unstriped).
	Targets     int   `json:"targets,omitempty"`
	StripeBytes int64 `json:"stripe_bytes,omitempty"`
	// OracleDiffs is the single-node CompareMerkle divergent-element count
	// every sharded row must reproduce exactly.
	OracleDiffs int64 `json:"oracle_diffs"`
}

// Section is one workload's sweep.
type Section struct {
	Workload Workload `json:"workload"`
	Rows     []Row    `json:"rows"`
}

// Row is one sharded-run measurement.
type Row struct {
	// Workers, Assignment, and Stealing identify the configuration.
	Workers    int    `json:"workers"`
	Assignment string `json:"assignment"`
	Stealing   bool   `json:"stealing"`
	// Units is the number of divergent-subtree work units executed.
	Units int64 `json:"units"`
	// MakespanVirtualMs is the slowest worker's virtual clock — the
	// scale-out headline.
	MakespanVirtualMs float64 `json:"makespan_virtual_ms"`
	// ReadVirtualMs and TotalVirtualMs split the fleet's summed model time.
	ReadVirtualMs  float64 `json:"read_virtual_ms"`
	TotalVirtualMs float64 `json:"total_virtual_ms"`
	// Steals and StolenUnits count work-stealing activity.
	Steals      int64 `json:"steals"`
	StolenUnits int64 `json:"stolen_units"`
	// PeakInFlight is the largest per-worker in-flight buffer footprint
	// observed; always ≤ BudgetBytes.
	PeakInFlight int64 `json:"peak_in_flight"`
	BudgetBytes  int64 `json:"budget_bytes"`
	// Diffs is the divergent element count (must equal the oracle's).
	Diffs int64 `json:"diffs"`
	// WallMs is the measured wall time (hardware noise).
	WallMs float64 `json:"wall_ms"`
}

// Floors are the tracked performance claims, enforced on full runs.
type Floors struct {
	// StealSpeedup is static/stealing virtual makespan at the highest
	// worker count on the skewed workload. Floor: ≥ 1.5.
	StealSpeedup float64 `json:"steal_speedup_skewed_8w"`
	// PlacementReadVirtualMs vs RandomReadVirtualMs on the striped uniform
	// workload. Floor: placement strictly below random.
	PlacementReadVirtualMs float64 `json:"placement_read_virtual_ms"`
	RandomReadVirtualMs    float64 `json:"random_read_virtual_ms"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchshard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		smoke = fs.Bool("smoke", false, "tiny sizes; validates the runner, numbers not comparable")
		out   = fs.String("o", "", "output file (empty writes to stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rep, err := measureAll(*smoke)
	if err != nil {
		fmt.Fprintln(stderr, "benchshard:", err)
		return 1
	}
	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "benchshard:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lint:ignore detflow benchmark reports record measured wall-clock durations by design
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(stderr, "benchshard:", err)
		return 1
	}
	return 0
}

const eps = 1e-3

// bumpF32 pushes the float32 at element index i of data beyond ε.
func bumpF32(data []byte, i int) {
	v := math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:]))
	binary.LittleEndian.PutUint32(data[i*4:], math.Float32bits(v+float32(50*eps)))
}

// buildPair writes one checkpoint pair (B mutated from A per field) with
// Merkle metadata and returns the pair's names.
func buildPair(store *pfs.Store, label string, elems int, opts compare.Options, mutateB func(fi int, data []byte)) (string, string, error) {
	const nFields = 3
	fields := make([]ckpt.FieldSpec, nFields)
	dataA := make([][]byte, nFields)
	dataB := make([][]byte, nFields)
	for fi := 0; fi < nFields; fi++ {
		fields[fi] = ckpt.FieldSpec{Name: fmt.Sprintf("f%d", fi), DType: errbound.Float32, Count: int64(elems)}
		dataA[fi] = synth.FieldF32(elems, int64(700+fi))
		dataB[fi] = append([]byte{}, dataA[fi]...)
		if mutateB != nil {
			mutateB(fi, dataB[fi])
		}
	}
	nameA, nameB := ckpt.Name(label+"A", 0, 0), ckpt.Name(label+"B", 0, 0)
	for i, nd := range []struct {
		run  string
		data [][]byte
	}{{label + "A", dataA}, {label + "B", dataB}} {
		meta := ckpt.Meta{RunID: nd.run, Iteration: 0, Rank: 0, Fields: fields}
		if _, err := ckpt.WriteCheckpoint(store, meta, nd.data); err != nil {
			return "", "", err
		}
		m, _, err := compare.Build(fields, nd.data, opts)
		if err != nil {
			return "", "", err
		}
		name := []string{nameA, nameB}[i]
		if _, err := compare.SaveMetadata(store, name, m); err != nil {
			return "", "", err
		}
	}
	return nameA, nameB, nil
}

func measureAll(smoke bool) (*Report, error) {
	ctx := context.Background()
	rep := &Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Smoke:       smoke,
	}
	dir, err := os.MkdirTemp("", "benchshard-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := pfs.NewStore(dir, pfs.LustreModel())
	if err != nil {
		return nil, err
	}

	if err := measureSkewed(ctx, store, smoke, rep); err != nil {
		return nil, fmt.Errorf("skewed: %w", err)
	}
	if err := measureUniform(ctx, store, smoke, rep); err != nil {
		return nil, fmt.Errorf("uniform: %w", err)
	}
	if !smoke {
		//lint:ignore floatcmp,epsflow acceptance threshold is an exact gate, not an ε comparison
		if rep.Floors.StealSpeedup < 1.5 {
			return nil, fmt.Errorf("floor violated: stealing speedup %.2f < 1.5 on the skewed workload",
				rep.Floors.StealSpeedup)
		}
		//lint:ignore floatcmp,epsflow acceptance threshold is an exact gate, not an ε comparison
		if rep.Floors.PlacementReadVirtualMs >= rep.Floors.RandomReadVirtualMs {
			return nil, fmt.Errorf("floor violated: placement read virtual %.3fms not below random %.3fms",
				rep.Floors.PlacementReadVirtualMs, rep.Floors.RandomReadVirtualMs)
		}
	}
	return rep, nil
}

// runRow executes one sharded comparison and folds it into a Row,
// checking the oracle identity and the budget invariant.
func runRow(ctx context.Context, store *pfs.Store, nameA, nameB string, cfg shard.Config, opts compare.Options, oracleDiffs int64) (Row, error) {
	store.EvictAll()
	sw := time.Now()
	res, stats, err := shard.Compare(ctx, store, nameA, nameB, cfg, opts)
	if err != nil {
		return Row{}, err
	}
	row := Row{
		Workers:           stats.Workers,
		Assignment:        stats.Assignment,
		Stealing:          stats.Stealing,
		Units:             int64(stats.Units),
		MakespanVirtualMs: ms(stats.MakespanVirtual),
		ReadVirtualMs:     ms(stats.ReadVirtual),
		TotalVirtualMs:    ms(stats.TotalVirtual),
		Steals:            stats.Steals,
		StolenUnits:       stats.StolenUnits,
		PeakInFlight:      stats.PeakInFlight,
		BudgetBytes:       stats.BudgetBytes,
		Diffs:             res.DiffCount,
		WallMs:            ms(time.Since(sw)),
	}
	if row.Diffs != oracleDiffs {
		return row, fmt.Errorf("%s workers=%d stealing=%v: %d diffs, oracle found %d",
			row.Assignment, row.Workers, row.Stealing, row.Diffs, oracleDiffs)
	}
	if row.PeakInFlight > row.BudgetBytes {
		return row, fmt.Errorf("%s workers=%d: peak in-flight %d exceeds budget %d",
			row.Assignment, row.Workers, row.PeakInFlight, row.BudgetBytes)
	}
	return row, nil
}

func measureSkewed(ctx context.Context, store *pfs.Store, smoke bool, rep *Report) error {
	elems, chunk, subtree := 1<<20, 16<<10, 4
	workerGrid := []int{1, 2, 4, 8}
	if smoke {
		elems, chunk, subtree = 64<<10, 4<<10, 2
		workerGrid = []int{2, 8}
	}
	opts := compare.Options{Epsilon: eps, ChunkSize: chunk, Exec: device.NewParallel(runtime.GOMAXPROCS(0))}
	// Divergence confined to the first quarter of field 0: a narrow band at
	// the front of the global chunk-key space.
	nameA, nameB, err := buildPair(store, "skew", elems, opts, func(fi int, data []byte) {
		if fi != 0 {
			return
		}
		for i := 0; i < elems/4; i += chunk / 4 {
			bumpF32(data, i)
		}
	})
	if err != nil {
		return err
	}
	store.EvictAll()
	oracle, err := compare.CompareMerkle(ctx, store, nameA, nameB, opts)
	if err != nil {
		return err
	}
	rep.Skewed.Workload = Workload{
		FieldElems: elems, Fields: 3, ChunkBytes: chunk, SubtreeChunks: subtree,
		Epsilon: eps, OracleDiffs: oracle.DiffCount,
	}
	var makespan = map[bool]float64{} // stealing -> last grid point's makespan
	for _, workers := range workerGrid {
		for _, stealing := range []bool{false, true} {
			cfg := shard.Config{Workers: workers, Assignment: shard.AssignBlock, Stealing: stealing, SubtreeChunks: subtree}
			row, err := runRow(ctx, store, nameA, nameB, cfg, opts, oracle.DiffCount)
			if err != nil {
				return err
			}
			rep.Skewed.Rows = append(rep.Skewed.Rows, row)
			makespan[stealing] = row.MakespanVirtualMs
		}
	}
	if makespan[true] > 0 {
		rep.Floors.StealSpeedup = makespan[false] / makespan[true]
	}
	return nil
}

func measureUniform(ctx context.Context, store *pfs.Store, smoke bool, rep *Report) error {
	// 64KiB chunks keep the policy comparison honest: no single chunk read
	// can be a whole-op cache hit, so the per-target sharers factor on the
	// scattered-bandwidth term is the only difference between policies.
	elems, chunk, subtree, workers := 1<<20, 64<<10, 4, 4
	if smoke {
		elems, chunk, subtree = 128<<10, 32<<10, 2
	}
	const targets = 4
	stripe := int64(subtree * chunk) // one work unit per stripe
	opts := compare.Options{Epsilon: eps, ChunkSize: chunk, Exec: device.NewParallel(runtime.GOMAXPROCS(0))}
	nameA, nameB, err := buildPair(store, "unif", elems, opts, func(fi int, data []byte) {
		for i := 0; i < elems; i += chunk / 4 {
			bumpF32(data, i)
		}
	})
	if err != nil {
		return err
	}
	store.EvictAll()
	oracle, err := compare.CompareMerkle(ctx, store, nameA, nameB, opts)
	if err != nil {
		return err
	}
	rep.Uniform.Workload = Workload{
		FieldElems: elems, Fields: 3, ChunkBytes: chunk, SubtreeChunks: subtree,
		Epsilon: eps, Targets: targets, StripeBytes: stripe, OracleDiffs: oracle.DiffCount,
	}
	if err := store.SetStriping(pfs.Striping{Targets: targets, StripeBytes: stripe}); err != nil {
		return err
	}
	defer func() { _ = store.SetStriping(pfs.Striping{}) }()
	for _, a := range []shard.Assignment{shard.AssignBlock, shard.AssignPlacement, shard.AssignRandom} {
		cfg := shard.Config{Workers: workers, Assignment: a, Seed: 7, SubtreeChunks: subtree}
		row, err := runRow(ctx, store, nameA, nameB, cfg, opts, oracle.DiffCount)
		if err != nil {
			return err
		}
		rep.Uniform.Rows = append(rep.Uniform.Rows, row)
		switch a {
		case shard.AssignPlacement:
			rep.Floors.PlacementReadVirtualMs = row.ReadVirtualMs
		case shard.AssignRandom:
			rep.Floors.RandomReadVirtualMs = row.ReadVirtualMs
		}
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
