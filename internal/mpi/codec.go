package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// encodeF64 serializes a float64 vector little-endian.
func encodeF64(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// decodeF64 inverts encodeF64.
func decodeF64(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("mpi: float64 payload length %d not a multiple of 8", len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out, nil
}

// EncodeParts serializes a list of byte slices with length prefixes
// (u32 part count, then u32 length + bytes per part, little-endian).
// Exported so higher layers — the shard wire format in internal/shard —
// can compose self-describing messages on the same framing the
// collectives use.
func EncodeParts(parts [][]byte) []byte {
	total := 4
	for _, p := range parts {
		total += 4 + len(p)
	}
	out := make([]byte, 0, total)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(parts)))
	for _, p := range parts {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p)))
		out = append(out, p...)
	}
	return out
}

// DecodeParts inverts EncodeParts, rejecting truncated payloads.
func DecodeParts(data []byte) ([][]byte, error) {
	if len(data) < 4 {
		return nil, errors.New("mpi: truncated parts payload")
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	parts := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if len(data) < 4 {
			return nil, errors.New("mpi: truncated parts payload")
		}
		l := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if len(data) < l {
			return nil, errors.New("mpi: truncated parts payload")
		}
		p := make([]byte, l)
		copy(p, data[:l])
		data = data[l:]
		parts = append(parts, p)
	}
	return parts, nil
}
