package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestNewCommValidation(t *testing.T) {
	if _, err := NewComm(0); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewComm(-2); err == nil {
		t.Error("negative size accepted")
	}
	c, err := NewComm(3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 3 {
		t.Errorf("Size = %d", c.Size())
	}
	if _, err := c.Rank(3); !errors.Is(err, ErrInvalidRank) {
		t.Errorf("out-of-range rank error = %v", err)
	}
	if _, err := c.Rank(-1); !errors.Is(err, ErrInvalidRank) {
		t.Errorf("negative rank error = %v", err)
	}
}

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, 7, []byte("hello rank 1"))
		}
		data, err := r.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(data) != "hello rank 1" {
			return fmt.Errorf("got %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	err := Run(2, func(r *Rank) error {
		if r.ID() == 0 {
			buf := []byte("original")
			if err := r.Send(1, 0, buf); err != nil {
				return err
			}
			copy(buf, "CLOBBER!")
			return nil
		}
		time.Sleep(10 * time.Millisecond) // let rank 0 clobber first
		data, err := r.Recv(0, 0)
		if err != nil {
			return err
		}
		if string(data) != "original" {
			return fmt.Errorf("payload aliased: %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	err := Run(2, func(r *Rank) error {
		if r.ID() == 0 {
			for _, tag := range []int{1, 2, 3} {
				if err := r.Send(1, tag, []byte{byte(tag)}); err != nil {
					return err
				}
			}
			return nil
		}
		// Receive in reverse tag order: mismatches must be parked.
		for _, tag := range []int{3, 2, 1} {
			data, err := r.Recv(0, tag)
			if err != nil {
				return err
			}
			if len(data) != 1 || int(data[0]) != tag {
				return fmt.Errorf("tag %d got %v", tag, data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPerTagFIFO(t *testing.T) {
	const n = 50
	err := Run(2, func(r *Rank) error {
		if r.ID() == 0 {
			for i := 0; i < n; i++ {
				if err := r.Send(1, 5, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			data, err := r.Recv(0, 5)
			if err != nil {
				return err
			}
			if int(data[0]) != i {
				return fmt.Errorf("message %d arrived as %d", i, data[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvInvalidPeers(t *testing.T) {
	err := Run(2, func(r *Rank) error {
		if err := r.Send(5, 0, nil); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("send to 5 error = %v", err)
		}
		if _, err := r.Recv(-1, 0); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("recv from -1 error = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvExchange(t *testing.T) {
	err := Run(4, func(r *Rank) error {
		partner := r.ID() ^ 1 // pairs (0,1) and (2,3)
		got, err := r.Sendrecv(partner, 9, []byte{byte(r.ID())})
		if err != nil {
			return err
		}
		if len(got) != 1 || int(got[0]) != partner {
			return fmt.Errorf("rank %d got %v from partner %d", r.ID(), got, partner)
		}
		// Self-exchange returns a copy of the payload.
		self, err := r.Sendrecv(r.ID(), 9, []byte{0xAB})
		if err != nil {
			return err
		}
		if len(self) != 1 || self[0] != 0xAB {
			return fmt.Errorf("self exchange got %v", self)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const ranks = 8
	var before, after int32
	err := Run(ranks, func(r *Rank) error {
		atomic.AddInt32(&before, 1)
		r.Barrier()
		// Everyone must have incremented before anyone proceeds.
		if got := atomic.LoadInt32(&before); got != ranks {
			return fmt.Errorf("rank %d passed barrier with before=%d", r.ID(), got)
		}
		atomic.AddInt32(&after, 1)
		r.Barrier() // reusable
		if got := atomic.LoadInt32(&after); got != ranks {
			return fmt.Errorf("rank %d passed 2nd barrier with after=%d", r.ID(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSum(t *testing.T) {
	const ranks = 5
	err := Run(ranks, func(r *Rank) error {
		vals := []float64{float64(r.ID()), 1, float64(r.ID() * r.ID())}
		sum, err := r.AllReduceSum(vals)
		if err != nil {
			return err
		}
		want := []float64{0 + 1 + 2 + 3 + 4, ranks, 0 + 1 + 4 + 9 + 16}
		for i := range want {
			if sum[i] != want[i] {
				return fmt.Errorf("rank %d: sum[%d] = %v, want %v", r.ID(), i, sum[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSingleRank(t *testing.T) {
	err := Run(1, func(r *Rank) error {
		in := []float64{1, 2, 3}
		out, err := r.AllReduceSum(in)
		if err != nil {
			return err
		}
		out[0] = 99 // must not alias the input
		if in[0] != 1 {
			return errors.New("allreduce aliased its input")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceDeterministicOrder(t *testing.T) {
	// Summation order is fixed (rank 0, 1, 2...), so results are bitwise
	// identical across repetitions even for ill-conditioned values.
	run := func() []float64 {
		results := make([]float64, 4)
		err := Run(4, func(r *Rank) error {
			v := []float64{1e16 * float64(1+r.ID()%2), 1.0}
			sum, err := r.AllReduceSum(v)
			if err != nil {
				return err
			}
			results[r.ID()] = sum[0] + sum[1]
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("allreduce not deterministic at rank %d", i)
		}
	}
}

func TestAllGather(t *testing.T) {
	const ranks = 4
	err := Run(ranks, func(r *Rank) error {
		payload := []byte(fmt.Sprintf("rank-%d", r.ID()))
		parts, err := r.AllGather(payload)
		if err != nil {
			return err
		}
		if len(parts) != ranks {
			return fmt.Errorf("got %d parts", len(parts))
		}
		for i, p := range parts {
			if string(p) != fmt.Sprintf("rank-%d", i) {
				return fmt.Errorf("part %d = %q", i, p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := errors.New("rank failure")
	err := Run(3, func(r *Rank) error {
		if r.ID() == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("error = %v", err)
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		dec, err := decodeF64(encodeF64(vals))
		if err != nil || len(dec) != len(vals) {
			return false
		}
		for i := range vals {
			// NaN-safe bitwise comparison via re-encode.
			a, b := encodeF64(vals[i:i+1]), encodeF64(dec[i:i+1])
			for j := range a {
				if a[j] != b[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(parts [][]byte) bool {
		dec, err := DecodeParts(EncodeParts(parts))
		if err != nil || len(dec) != len(parts) {
			return false
		}
		for i := range parts {
			if string(dec[i]) != string(parts[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestCodecRejectsCorrupt(t *testing.T) {
	if _, err := decodeF64(make([]byte, 7)); err == nil {
		t.Error("misaligned f64 payload accepted")
	}
	if _, err := DecodeParts(nil); err == nil {
		t.Error("nil parts payload accepted")
	}
	if _, err := DecodeParts([]byte{2, 0, 0, 0, 10, 0, 0, 0, 1}); err == nil {
		t.Error("truncated parts payload accepted")
	}
}

func TestManyRanksStress(t *testing.T) {
	// A ring exchange across 16 ranks, repeated, with random payloads.
	rng := rand.New(rand.NewSource(3))
	payloads := make([][]byte, 16)
	for i := range payloads {
		payloads[i] = make([]byte, 128+rng.Intn(512))
		rng.Read(payloads[i])
	}
	err := Run(16, func(r *Rank) error {
		right := (r.ID() + 1) % r.Size()
		left := (r.ID() + r.Size() - 1) % r.Size()
		for round := 0; round < 10; round++ {
			if err := r.Send(right, round, payloads[r.ID()]); err != nil {
				return err
			}
			got, err := r.Recv(left, round)
			if err != nil {
				return err
			}
			if string(got) != string(payloads[left]) {
				return fmt.Errorf("round %d: payload mismatch from %d", round, left)
			}
			r.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
