// Package mpi provides the in-process message-passing substrate that
// stands in for MPI in the multi-rank simulation runs of the evaluation
// (the paper's HACC runs span up to 128 nodes × 4 ranks; see DESIGN.md
// §2). Ranks are goroutines connected by buffered point-to-point channels
// with tagged matching, plus the small set of collectives the simulation
// needs: barrier, all-reduce, all-gather and broadcast.
//
// The communicator is deliberately deterministic: point-to-point delivery
// between a pair of ranks is FIFO per tag, and all collectives produce
// rank-order-deterministic results, so a parallel simulation can be made
// bitwise reproducible when its local computation is.
package mpi

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInvalidRank is returned for out-of-range rank arguments.
var ErrInvalidRank = errors.New("mpi: invalid rank")

// message is one tagged point-to-point payload.
type message struct {
	tag  int
	data []byte
}

// Comm is a communicator connecting size ranks.
type Comm struct {
	size int
	// links[src][dst] carries messages from src to dst.
	links [][]chan message
	// pending[dst][src] holds messages received out of tag order.
	pending []map[int][]message
	mu      []sync.Mutex

	barrier *barrier
}

// NewComm creates a communicator for size ranks.
func NewComm(size int) (*Comm, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: communicator size %d must be positive", size)
	}
	c := &Comm{
		size:    size,
		links:   make([][]chan message, size),
		pending: make([]map[int][]message, size),
		mu:      make([]sync.Mutex, size),
		barrier: newBarrier(size),
	}
	for src := 0; src < size; src++ {
		c.links[src] = make([]chan message, size)
		for dst := 0; dst < size; dst++ {
			// Generous buffering keeps lockstep neighbour exchanges from
			// deadlocking without a rendezvous protocol.
			c.links[src][dst] = make(chan message, 64)
		}
		c.pending[src] = make(map[int][]message)
	}
	return c, nil
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Rank returns the handle for one rank.
func (c *Comm) Rank(r int) (*Rank, error) {
	if r < 0 || r >= c.size {
		return nil, fmt.Errorf("%w: %d of %d", ErrInvalidRank, r, c.size)
	}
	return &Rank{comm: c, rank: r}, nil
}

// Rank is one process's endpoint. Each Rank must be used by only one
// goroutine.
type Rank struct {
	comm *Comm
	rank int
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.rank }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.comm.size }

// Send delivers data to rank `to` with a tag. It copies the payload, so
// the caller may reuse the buffer. Send does not block (channel buffering
// plus FIFO semantics stand in for MPI's eager protocol); it fails only on
// an invalid destination.
func (r *Rank) Send(to, tag int, data []byte) error {
	if to < 0 || to >= r.comm.size {
		return fmt.Errorf("%w: send to %d", ErrInvalidRank, to)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	r.comm.links[r.rank][to] <- message{tag: tag, data: cp}
	return nil
}

// Recv blocks until a message with the tag arrives from rank `from`.
// Messages from the same sender with other tags are queued, preserving
// per-tag FIFO order.
func (r *Rank) Recv(from, tag int) ([]byte, error) {
	if from < 0 || from >= r.comm.size {
		return nil, fmt.Errorf("%w: recv from %d", ErrInvalidRank, from)
	}
	me := r.rank
	// Check messages parked by earlier mismatched receives.
	r.comm.mu[me].Lock()
	key := from*1_000_003 + tag
	if q := r.comm.pending[me][key]; len(q) > 0 {
		m := q[0]
		r.comm.pending[me][key] = q[1:]
		r.comm.mu[me].Unlock()
		return m.data, nil
	}
	r.comm.mu[me].Unlock()

	for {
		m := <-r.comm.links[from][me]
		if m.tag == tag {
			return m.data, nil
		}
		r.comm.mu[me].Lock()
		k := from*1_000_003 + m.tag
		r.comm.pending[me][k] = append(r.comm.pending[me][k], m)
		r.comm.mu[me].Unlock()
	}
}

// Sendrecv exchanges payloads with a partner rank in one step, the
// halo-exchange primitive.
func (r *Rank) Sendrecv(partner, tag int, send []byte) ([]byte, error) {
	if partner == r.rank {
		cp := make([]byte, len(send))
		copy(cp, send)
		return cp, nil
	}
	if err := r.Send(partner, tag, send); err != nil {
		return nil, err
	}
	return r.Recv(partner, tag)
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() { r.comm.barrier.await() }

// reduceTag is the collective tag space (separate from user tags by
// convention: collectives use negative tags).
const (
	tagReduce = -1
	tagBcast  = -2
	tagGather = -3
)

// AllReduceSum sums float64 vectors across all ranks; every rank receives
// the identical, rank-0-ordered result (deterministic accumulation order).
func (r *Rank) AllReduceSum(vals []float64) ([]float64, error) {
	if r.comm.size == 1 {
		out := make([]float64, len(vals))
		copy(out, vals)
		return out, nil
	}
	if r.rank == 0 {
		sum := make([]float64, len(vals))
		copy(sum, vals)
		// Deterministic order: accumulate ranks 1..n-1 in sequence.
		for src := 1; src < r.comm.size; src++ {
			data, err := r.Recv(src, tagReduce)
			if err != nil {
				return nil, err
			}
			vec, err := decodeF64(data)
			if err != nil {
				return nil, err
			}
			if len(vec) != len(sum) {
				return nil, fmt.Errorf("mpi: allreduce length mismatch from rank %d: %d != %d",
					src, len(vec), len(sum))
			}
			for i := range sum {
				sum[i] += vec[i]
			}
		}
		enc := encodeF64(sum)
		for dst := 1; dst < r.comm.size; dst++ {
			if err := r.Send(dst, tagBcast, enc); err != nil {
				return nil, err
			}
		}
		return sum, nil
	}
	if err := r.Send(0, tagReduce, encodeF64(vals)); err != nil {
		return nil, err
	}
	data, err := r.Recv(0, tagBcast)
	if err != nil {
		return nil, err
	}
	return decodeF64(data)
}

// AllGather concatenates every rank's payload in rank order; every rank
// receives the identical [][]byte.
func (r *Rank) AllGather(data []byte) ([][]byte, error) {
	if r.comm.size == 1 {
		cp := make([]byte, len(data))
		copy(cp, data)
		return [][]byte{cp}, nil
	}
	if r.rank == 0 {
		parts := make([][]byte, r.comm.size)
		cp := make([]byte, len(data))
		copy(cp, data)
		parts[0] = cp
		for src := 1; src < r.comm.size; src++ {
			d, err := r.Recv(src, tagGather)
			if err != nil {
				return nil, err
			}
			parts[src] = d
		}
		enc := EncodeParts(parts)
		for dst := 1; dst < r.comm.size; dst++ {
			if err := r.Send(dst, tagBcast, enc); err != nil {
				return nil, err
			}
		}
		return parts, nil
	}
	if err := r.Send(0, tagGather, data); err != nil {
		return nil, err
	}
	enc, err := r.Recv(0, tagBcast)
	if err != nil {
		return nil, err
	}
	return DecodeParts(enc)
}

// Run spawns fn on every rank of a fresh communicator and waits for all
// of them, returning the first error.
func Run(size int, fn func(r *Rank) error) error {
	comm, err := NewComm(size)
	if err != nil {
		return err
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := 0; i < size; i++ {
		rank, err := comm.Rank(i)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(rk *Rank) {
			defer wg.Done()
			if err := fn(rk); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("mpi: rank %d: %w", rk.ID(), err)
				}
				mu.Unlock()
			}
		}(rank)
	}
	wg.Wait()
	return firstErr
}

// barrier is a reusable N-party barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	phase int
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.count++
	if b.count == b.size {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
}
