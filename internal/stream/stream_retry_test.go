package stream

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aio"
	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/retry"
)

var errBlip = errors.New("storage blip")

// flakyBackend fails its first `fails` ReadBatch calls with a
// Transient-classified error, then delegates to the inner backend.
type flakyBackend struct {
	inner aio.Backend
	fails int32
	calls int32
}

func (f *flakyBackend) Name() string { return "flaky" }

func (f *flakyBackend) ReadBatch(ctx context.Context, file *pfs.File, reqs []aio.ReadReq) (pfs.Cost, time.Duration, error) {
	atomic.AddInt32(&f.calls, 1)
	if atomic.AddInt32(&f.fails, -1) >= 0 {
		return pfs.Cost{}, 0, retry.Mark(errBlip, retry.Transient)
	}
	return f.inner.ReadBatch(ctx, file, reqs)
}

// closedBackend always reports the shared ring as closed.
type closedBackend struct{}

func (closedBackend) Name() string { return "closed" }

func (closedBackend) ReadBatch(context.Context, *pfs.File, []aio.ReadReq) (pfs.Cost, time.Duration, error) {
	return pfs.Cost{}, 0, aio.ErrRingClosed
}

func retryPolicy() retry.Policy {
	return retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Multiplier: 2}
}

func TestStreamRetriesTransientReads(t *testing.T) {
	fa, fb, da, _ := twoFiles(t, 64<<10)
	pairs := pairsEvery(4, 4096, 8192)
	fb2 := &flakyBackend{inner: aio.Mmap{}, fails: 2}
	cfg := Config{Backend: fb2, Device: device.GPUModel(), Retry: retryPolicy()}
	ok := true
	stats, err := Run(context.Background(), fa, fb, pairs, cfg, func(p ChunkPair, a, b []byte) (time.Duration, error) {
		if !bytes.Equal(a, da[p.OffA:p.OffA+int64(p.Len)]) {
			ok = false
		}
		return 0, nil
	})
	if err != nil {
		t.Fatalf("transient blips should be retried away: %v", err)
	}
	if !ok {
		t.Error("retried pipeline delivered wrong bytes")
	}
	if stats.ReadRetries != 2 {
		t.Errorf("ReadRetries = %d, want 2", stats.ReadRetries)
	}
	if stats.IOVirtual <= 0 {
		t.Error("backoff should be priced into IOVirtual")
	}
}

func TestStreamExhaustedRetryIsPermanent(t *testing.T) {
	fa, fb, _, _ := twoFiles(t, 64<<10)
	pairs := pairsEvery(4, 4096, 8192)
	fb2 := &flakyBackend{inner: aio.Mmap{}, fails: 100}
	cfg := Config{Backend: fb2, Device: device.GPUModel(), Retry: retryPolicy()}
	_, err := Run(context.Background(), fa, fb, pairs, cfg, func(ChunkPair, []byte, []byte) (time.Duration, error) {
		return 0, nil
	})
	if !errors.Is(err, errBlip) {
		t.Fatalf("err = %v, want the underlying blip", err)
	}
	if retry.Classify(err) != retry.Permanent {
		t.Errorf("exhausted stream error must classify Permanent, got %v", retry.Classify(err))
	}
	if calls := atomic.LoadInt32(&fb2.calls); calls != 3 {
		t.Errorf("backend called %d times, want 3 (MaxAttempts)", calls)
	}
}

func TestStreamZeroPolicyDoesNotRetry(t *testing.T) {
	fa, fb, _, _ := twoFiles(t, 64<<10)
	pairs := pairsEvery(4, 4096, 8192)
	fb2 := &flakyBackend{inner: aio.Mmap{}, fails: 1}
	cfg := Config{Backend: fb2, Device: device.GPUModel()}
	_, err := Run(context.Background(), fa, fb, pairs, cfg, func(ChunkPair, []byte, []byte) (time.Duration, error) {
		return 0, nil
	})
	if !errors.Is(err, errBlip) {
		t.Fatalf("zero policy must surface the first transient error, got %v", err)
	}
	if calls := atomic.LoadInt32(&fb2.calls); calls != 1 {
		t.Errorf("backend called %d times, want 1", calls)
	}
}

func TestStreamRingClosedFallsBackToLegacy(t *testing.T) {
	fa, fb, da, db := twoFiles(t, 256<<10)
	pairs := pairsEvery(16, 4096, 16384)
	cfg := Config{Backend: closedBackend{}, Device: device.GPUModel(), SliceBytes: 32 << 10, Retry: retryPolicy()}
	ok := true
	stats, err := Run(context.Background(), fa, fb, pairs, cfg, func(p ChunkPair, a, b []byte) (time.Duration, error) {
		if !bytes.Equal(a, da[p.OffA:p.OffA+int64(p.Len)]) || !bytes.Equal(b, db[p.OffB:p.OffB+int64(p.Len)]) {
			ok = false
		}
		return 0, nil
	})
	if err != nil {
		t.Fatalf("ring-closed should degrade to Legacy, not fail: %v", err)
	}
	if !ok {
		t.Error("fallback pipeline delivered wrong bytes")
	}
	if stats.RingFallbacks != stats.Slices || stats.Slices == 0 {
		t.Errorf("RingFallbacks = %d over %d slices, want all", stats.RingFallbacks, stats.Slices)
	}
}
