package stream

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/aio"
	"repro/internal/device"
)

// serialSum is the depth-1 closed form: no overlap at all.
func serialSum(ios, comps []time.Duration) time.Duration {
	var total time.Duration
	for i := range ios {
		total += ios[i] + comps[i]
	}
	return total
}

// doubleBuffer is the depth-2 closed form from the package doc:
// io_0 + Σ_{i≥1} max(io_i, comp_{i-1}) + comp_last.
func doubleBuffer(ios, comps []time.Duration) time.Duration {
	total := ios[0]
	for i := 1; i < len(ios); i++ {
		if ios[i] > comps[i-1] {
			total += ios[i]
		} else {
			total += comps[i-1]
		}
	}
	return total + comps[len(comps)-1]
}

// TestVirtualPipelineClosedForms is the recurrence property test: for
// random slice workloads the depth-N recurrence must reduce to the serial
// sum at depth 1 and the classic double-buffer formula at depth 2, and
// deeper pipelines can only help, bounded below by either stage alone.
func TestVirtualPipelineClosedForms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dur := func() time.Duration {
		if rng.Intn(8) == 0 {
			return 0 // degenerate stages must not break the recurrence
		}
		return time.Duration(rng.Intn(1000)) * time.Microsecond
	}
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(12)
		ios := make([]time.Duration, n)
		comps := make([]time.Duration, n)
		var sumIO, sumComp time.Duration
		for i := 0; i < n; i++ {
			ios[i], comps[i] = dur(), dur()
			sumIO += ios[i]
			sumComp += comps[i]
		}
		feed := func(depth int) time.Duration {
			vp := NewVirtualPipeline(depth)
			for i := 0; i < n; i++ {
				vp.Advance(ios[i], comps[i])
			}
			return vp.Total()
		}
		d1, d2, d4 := feed(1), feed(2), feed(4)
		if want := serialSum(ios, comps); d1 != want {
			t.Fatalf("trial %d: depth-1 total %v, serial sum %v", trial, d1, want)
		}
		if want := doubleBuffer(ios, comps); d2 != want {
			t.Fatalf("trial %d: depth-2 total %v, closed form %v", trial, d2, want)
		}
		if d4 > d2 || d2 > d1 {
			t.Fatalf("trial %d: depth must not hurt: d1=%v d2=%v d4=%v", trial, d1, d2, d4)
		}
		lower := sumIO
		if sumComp > lower {
			lower = sumComp
		}
		if d4 < lower {
			t.Fatalf("trial %d: depth-4 total %v below stage bound %v", trial, d4, lower)
		}
	}
}

// TestRunErrorPathsSetWall is the regression test for the error-path
// stats fix: Stats.Wall used to be set only on success.
func TestRunErrorPathsSetWall(t *testing.T) {
	fa, fb, _, _ := twoFiles(t, 1<<20)
	cfg := Config{Backend: aio.NewUring(16, 2), Device: device.GPUModel(), SliceBytes: 32 << 10}

	boom := errors.New("boom")
	stats, err := Run(context.Background(), fa, fb, pairsEvery(32, 4096, 8192), cfg, func(p ChunkPair, a, b []byte) (time.Duration, error) {
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("compute error = %v", err)
	}
	if stats.Wall <= 0 {
		t.Errorf("compute-error stats.Wall = %v, want > 0", stats.Wall)
	}

	// Read error: a negative offset is rejected by the backend.
	bad := []ChunkPair{{Index: 0, OffA: -4096, OffB: 0, Len: 4096}}
	stats, err = Run(context.Background(), fa, fb, bad, cfg, func(p ChunkPair, a, b []byte) (time.Duration, error) {
		return 0, nil
	})
	if err == nil {
		t.Fatal("read error not propagated")
	}
	if stats.Wall <= 0 {
		t.Errorf("read-error stats.Wall = %v, want > 0", stats.Wall)
	}
}

func TestRunDepths(t *testing.T) {
	fa, fb, da, _ := twoFiles(t, 1<<20)
	pairs := pairsEvery(64, 4096, 8192)
	var prev time.Duration
	for _, depth := range []int{1, 2, 4} {
		u := aio.NewUring(16, 2)
		cfg := Config{Backend: u, Device: device.GPUModel(), SliceBytes: 32 << 10, Depth: depth}
		stats, err := Run(context.Background(), fa, fb, pairs, cfg, func(p ChunkPair, a, b []byte) (time.Duration, error) {
			if int64(len(a)) != int64(p.Len) || a[0] != da[p.OffA] {
				t.Errorf("depth %d: chunk %d misdelivered", depth, p.Index)
			}
			return 50 * time.Microsecond, nil
		})
		u.Close()
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if stats.Slices < 2 {
			t.Fatalf("depth %d: only %d slices", depth, stats.Slices)
		}
		if depth > 1 && stats.PipelineVirtual > prev {
			t.Errorf("depth %d pipeline %v slower than shallower %v", depth, stats.PipelineVirtual, prev)
		}
		prev = stats.PipelineVirtual
	}
}

// TestSteadyStateSliceAllocs verifies the recycling buffer pool: once the
// page cache and the pool are warm, each additional slice through the
// pipeline performs no heap allocations. Per-Run fixed costs (channels,
// the producer goroutine, the pool itself) are cancelled by differencing
// an N-slice run against a 2N-slice run.
func TestSteadyStateSliceAllocs(t *testing.T) {
	fa, fb, _, _ := twoFiles(t, 1<<20)
	const chunk = 4096
	const perSlice = 8 // 8 chunks × 4 KiB = one 32 KiB slice
	const extra = 8    // slices added by the longer run
	pairs := pairsEvery(2*extra*perSlice, chunk, 8192)

	u := aio.NewUring(64, 2)
	defer u.Close()
	cfg := Config{Backend: u, Device: device.GPUModel(), SliceBytes: perSlice * chunk, Depth: 2}
	runN := func(n int) {
		_, err := Run(context.Background(), fa, fb, pairs[:n*perSlice], cfg, func(p ChunkPair, a, b []byte) (time.Duration, error) {
			return 0, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	runN(2 * extra) // warm the page cache and the ring's completion queue

	short := testing.AllocsPerRun(5, func() { runN(extra) })
	long := testing.AllocsPerRun(5, func() { runN(2 * extra) })
	perExtraSlice := (long - short) / extra
	if perExtraSlice > 0.5 {
		t.Errorf("steady-state allocations = %.2f per slice, want 0 (short run %.1f, long run %.1f)",
			perExtraSlice, short, long)
	}
}

// TestSteadyStateSliceAllocsCoalescing covers the coalescing wrapper's
// scratch arena the same way.
func TestSteadyStateSliceAllocsCoalescing(t *testing.T) {
	fa, fb, _, _ := twoFiles(t, 1<<20)
	const chunk = 4096
	const perSlice = 8
	const extra = 8
	pairs := pairsEvery(2*extra*perSlice, chunk, 8192)

	u := aio.NewUring(64, 2)
	defer u.Close()
	co := aio.NewCoalescing(u, 16<<10)
	cfg := Config{Backend: co, Device: device.GPUModel(), SliceBytes: perSlice * chunk, Depth: 2}
	runN := func(n int) {
		_, err := Run(context.Background(), fa, fb, pairs[:n*perSlice], cfg, func(p ChunkPair, a, b []byte) (time.Duration, error) {
			return 0, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	runN(2 * extra)

	short := testing.AllocsPerRun(5, func() { runN(extra) })
	long := testing.AllocsPerRun(5, func() { runN(2 * extra) })
	perExtraSlice := (long - short) / extra
	if perExtraSlice > 0.5 {
		t.Errorf("steady-state allocations = %.2f per slice with coalescing, want 0 (short %.1f, long %.1f)",
			perExtraSlice, short, long)
	}
}
