package stream

import (
	"context"
	"bytes"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aio"
	"repro/internal/device"
	"repro/internal/pfs"
)

// twoFiles creates two files with deterministic distinct content.
func twoFiles(t *testing.T, size int) (*pfs.File, *pfs.File, []byte, []byte) {
	t.Helper()
	s, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, seed int64) ([]byte, *pfs.File) {
		data := make([]byte, size)
		rand.New(rand.NewSource(seed)).Read(data)
		w, err := s.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		s.Evict(name)
		f, err := s.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		return data, f
	}
	da, fa := mk("a.bin", 1)
	db, fb := mk("b.bin", 2)
	return fa, fb, da, db
}

func pairsEvery(n, chunk, stride int) []ChunkPair {
	pairs := make([]ChunkPair, n)
	for i := range pairs {
		off := int64(i * stride)
		pairs[i] = ChunkPair{Index: i, OffA: off, OffB: off, Len: chunk}
	}
	return pairs
}

func TestRunDeliversCorrectBuffers(t *testing.T) {
	fa, fb, da, db := twoFiles(t, 1<<20)
	pairs := pairsEvery(64, 4096, 8192)
	var visited int32
	cfg := Config{Backend: aio.NewUring(16, 2), Device: device.GPUModel(), SliceBytes: 64 << 10}
	stats, err := Run(context.Background(), fa, fb, pairs, cfg, func(p ChunkPair, a, b []byte) (time.Duration, error) {
		atomic.AddInt32(&visited, 1)
		if !bytes.Equal(a, da[p.OffA:p.OffA+int64(p.Len)]) {
			t.Errorf("chunk %d: run A buffer mismatch", p.Index)
		}
		if !bytes.Equal(b, db[p.OffB:p.OffB+int64(p.Len)]) {
			t.Errorf("chunk %d: run B buffer mismatch", p.Index)
		}
		return time.Microsecond, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 64 {
		t.Errorf("visited %d chunks, want 64", visited)
	}
	if stats.BytesRead != 2*64*4096 {
		t.Errorf("BytesRead = %d", stats.BytesRead)
	}
	if stats.Slices < 2 {
		t.Errorf("Slices = %d, want >= 2 with 64 KiB slices", stats.Slices)
	}
	if stats.PipelineVirtual <= 0 || stats.IOVirtual <= 0 || stats.ComputeVirtual <= 0 {
		t.Errorf("virtual stats not accounted: %+v", stats)
	}
}

func TestPipelineOverlapBound(t *testing.T) {
	// The overlapped total must be between max(io, compute) and io+compute.
	fa, fb, _, _ := twoFiles(t, 1<<20)
	pairs := pairsEvery(128, 4096, 8192)
	cfg := Config{Backend: aio.NewUring(32, 2), Device: device.GPUModel(), SliceBytes: 128 << 10}
	kernel := 500 * time.Microsecond
	stats, err := Run(context.Background(), fa, fb, pairs, cfg, func(ChunkPair, []byte, []byte) (time.Duration, error) {
		return kernel, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	lower := stats.IOVirtual
	if stats.ComputeVirtual > lower {
		lower = stats.ComputeVirtual
	}
	sum := stats.IOVirtual + stats.ComputeVirtual
	if stats.PipelineVirtual < lower || stats.PipelineVirtual > sum {
		t.Errorf("pipeline %v outside [max=%v, sum=%v]", stats.PipelineVirtual, lower, sum)
	}
	if stats.PipelineVirtual >= sum {
		t.Error("pipeline achieved no overlap at all")
	}
}

func TestRunEmptyPairs(t *testing.T) {
	fa, fb, _, _ := twoFiles(t, 4096)
	stats, err := Run(context.Background(), fa, fb, nil, Config{Device: device.GPUModel()}, func(ChunkPair, []byte, []byte) (time.Duration, error) {
		t.Error("compute called for empty pairs")
		return 0, nil
	})
	if err != nil || stats.Slices != 0 {
		t.Errorf("empty run: %+v, %v", stats, err)
	}
}

func TestRunBadPair(t *testing.T) {
	fa, fb, _, _ := twoFiles(t, 4096)
	pairs := []ChunkPair{{Index: 0, OffA: 0, OffB: 0, Len: 0}}
	if _, err := Run(context.Background(), fa, fb, pairs, Config{Device: device.GPUModel()}, nil); err == nil {
		t.Error("zero-length chunk accepted")
	}
}

func TestRunComputeErrorStopsPipeline(t *testing.T) {
	fa, fb, _, _ := twoFiles(t, 1<<20)
	pairs := pairsEvery(64, 4096, 8192)
	wantErr := errors.New("kernel failed")
	cfg := Config{Backend: aio.NewUring(8, 2), Device: device.GPUModel(), SliceBytes: 32 << 10}
	calls := 0
	_, err := Run(context.Background(), fa, fb, pairs, cfg, func(ChunkPair, []byte, []byte) (time.Duration, error) {
		calls++
		if calls == 3 {
			return 0, wantErr
		}
		return 0, nil
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("error = %v, want %v", err, wantErr)
	}
}

func TestRunReadErrorPropagates(t *testing.T) {
	fa, fb, _, _ := twoFiles(t, 8192)
	// Request far past EOF: the read comes back short, which the mmap
	// backend tolerates but yields a backend error in uring only when the
	// request itself is invalid; use a negative offset to force an error.
	pairs := []ChunkPair{{Index: 0, OffA: -4, OffB: 0, Len: 16}}
	if _, err := Run(context.Background(), fa, fb, pairs, Config{Backend: aio.NewUring(4, 1), Device: device.GPUModel()}, func(ChunkPair, []byte, []byte) (time.Duration, error) {
		return 0, nil
	}); err == nil {
		t.Error("negative offset read accepted")
	}
}

func TestRunWithMmapBackend(t *testing.T) {
	fa, fb, da, _ := twoFiles(t, 256<<10)
	pairs := pairsEvery(16, 4096, 16384)
	cfg := Config{Backend: aio.Mmap{}, Device: device.CPUModel(), SliceBytes: 32 << 10}
	ok := true
	_, err := Run(context.Background(), fa, fb, pairs, cfg, func(p ChunkPair, a, b []byte) (time.Duration, error) {
		if !bytes.Equal(a, da[p.OffA:p.OffA+int64(p.Len)]) {
			ok = false
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("mmap-backed pipeline delivered wrong bytes")
	}
}

func TestDefaultsApplied(t *testing.T) {
	fa, fb, _, _ := twoFiles(t, 64<<10)
	pairs := pairsEvery(4, 4096, 8192)
	// nil backend and zero SliceBytes must be defaulted.
	stats, err := Run(context.Background(), fa, fb, pairs, Config{Device: device.GPUModel()}, func(ChunkPair, []byte, []byte) (time.Duration, error) {
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Slices != 1 {
		t.Errorf("Slices = %d, want 1 (all chunks fit one default slice)", stats.Slices)
	}
}
