package stream

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aio"
	"repro/internal/device"
	"repro/internal/pfs"
)

// countingBackend counts ReadBatch calls and the requests they carry,
// delegating to the inner backend.
type countingBackend struct {
	inner   aio.Backend
	batches int32
	reqs    int32
}

func (c *countingBackend) Name() string { return "counting" }

func (c *countingBackend) ReadBatch(ctx context.Context, f *pfs.File, reqs []aio.ReadReq) (pfs.Cost, time.Duration, error) {
	atomic.AddInt32(&c.batches, 1)
	atomic.AddInt32(&c.reqs, int32(len(reqs)))
	return c.inner.ReadBatch(ctx, f, reqs)
}

// oneFile creates a single file standing in for the shared CAS pack.
func oneFile(t *testing.T, size int) (*pfs.File, []byte) {
	t.Helper()
	fa, _, da, _ := twoFiles(t, size)
	return fa, da
}

// samePackPairs interleaves A and B extents in one file the way
// differential captures lay them out: A's chunk then B's representative.
func samePackPairs(n, chunk int) []ChunkPair {
	pairs := make([]ChunkPair, n)
	for i := range pairs {
		base := int64(2 * i * chunk)
		pairs[i] = ChunkPair{Index: i, OffA: base, OffB: base + int64(chunk), Len: chunk}
	}
	return pairs
}

func TestRunSameFileMergesBatches(t *testing.T) {
	f, data := oneFile(t, 1<<20)
	const n, chunk = 32, 4096
	pairs := samePackPairs(n, chunk)
	cb := &countingBackend{inner: aio.Mmap{}}
	cfg := Config{Backend: cb, Device: device.GPUModel(), SliceBytes: 32 << 10}
	var visited int32
	stats, err := Run(context.Background(), f, f, pairs, cfg, func(p ChunkPair, a, b []byte) (time.Duration, error) {
		atomic.AddInt32(&visited, 1)
		if !bytes.Equal(a, data[p.OffA:p.OffA+int64(p.Len)]) {
			t.Errorf("chunk %d: side-A buffer mismatch", p.Index)
		}
		if !bytes.Equal(b, data[p.OffB:p.OffB+int64(p.Len)]) {
			t.Errorf("chunk %d: side-B buffer mismatch", p.Index)
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != n {
		t.Errorf("visited %d chunks, want %d", visited, n)
	}
	// One merged batch per slice (the two-file path issues two), carrying
	// both sides' requests.
	if got := atomic.LoadInt32(&cb.batches); int(got) != stats.Slices {
		t.Errorf("ReadBatch called %d times over %d slices, want one merged batch per slice", got, stats.Slices)
	}
	if got := atomic.LoadInt32(&cb.reqs); got != 2*n {
		t.Errorf("backend saw %d requests, want %d (both sides)", got, 2*n)
	}
	if stats.BytesRead != int64(2*n*chunk) {
		t.Errorf("BytesRead = %d, want %d", stats.BytesRead, 2*n*chunk)
	}
}

func TestRunSameFileCoalescesAcrossSides(t *testing.T) {
	// Adjacent A/B extents in the pack must merge into one PFS op when the
	// batch is issued as a single coalescing read — the whole point of the
	// merged path.
	f, _ := oneFile(t, 1<<20)
	const n, chunk = 16, 4096
	pairs := samePackPairs(n, chunk)
	run := func(backend aio.Backend) int {
		cfg := Config{Backend: backend, Device: device.GPUModel(), SliceBytes: 1 << 20}
		stats, err := Run(context.Background(), f, f, pairs, cfg, func(ChunkPair, []byte, []byte) (time.Duration, error) {
			return 0, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.ReadCost.Ops + stats.ReadCost.CachedOps
	}
	plain := run(aio.Legacy{})
	merged := run(aio.NewCoalescing(aio.Legacy{}, 16<<10))
	if merged >= plain {
		t.Errorf("coalesced same-file read took %d ops, plain took %d — extents did not merge across sides", merged, plain)
	}
	if merged != 1 {
		t.Errorf("fully adjacent extents should collapse to 1 op, got %d", merged)
	}
}

func TestRunSameFileRingClosedFallsBack(t *testing.T) {
	f, data := oneFile(t, 256<<10)
	pairs := samePackPairs(8, 4096)
	cfg := Config{Backend: closedBackend{}, Device: device.GPUModel(), SliceBytes: 32 << 10, Retry: retryPolicy()}
	ok := true
	stats, err := Run(context.Background(), f, f, pairs, cfg, func(p ChunkPair, a, b []byte) (time.Duration, error) {
		if !bytes.Equal(a, data[p.OffA:p.OffA+int64(p.Len)]) || !bytes.Equal(b, data[p.OffB:p.OffB+int64(p.Len)]) {
			ok = false
		}
		return 0, nil
	})
	if err != nil {
		t.Fatalf("ring-closed same-file read should degrade to Legacy, not fail: %v", err)
	}
	if !ok {
		t.Error("fallback delivered wrong bytes")
	}
	if stats.RingFallbacks != stats.Slices || stats.Slices == 0 {
		t.Errorf("RingFallbacks = %d over %d slices, want all", stats.RingFallbacks, stats.Slices)
	}
}
