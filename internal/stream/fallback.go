package stream

import (
	"sync"

	"repro/internal/aio"
)

// The compare layer injects Config.Backend on every production path (the
// service plane's ring reaches it through normalized Options; the svcown
// lint rule keeps process-wide acquisition out of this package). Direct
// Run calls that leave Backend nil — tests, benchmarks — fall back to a
// package-private persistent ring with the plane-default shape (256-deep
// queue, 4 workers), started on first use and reused across batches.
var (
	fallbackOnce sync.Once
	fallbackRing *aio.Uring
)

// fallbackBackend returns the package fallback ring for nil
// Config.Backend.
func fallbackBackend() *aio.Uring {
	fallbackOnce.Do(func() { fallbackRing = aio.NewUring(256, 4) })
	return fallbackRing
}
