// Package stream implements the multi-level overlapping I/O pipeline of
// the comparator's verification stage (paper §2.1, Fig. 3): an I/O
// producer reads slices of scattered chunk pairs from the PFS into host
// buffers through an aio backend while the consumer transfers the previous
// slice to the device and runs the comparison kernel. Double buffering
// overlaps the two, so steady-state cost is the maximum of the I/O and
// compute rates rather than their sum.
//
// The pipeline runs with real goroutine overlap (wall time) and accounts
// virtual time with the standard double-buffer recurrence:
//
//	total = io_0 + Σ_{i≥1} max(io_i, comp_{i-1}) + comp_last
package stream

import (
	"fmt"
	"time"

	"repro/internal/aio"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/pfs"
)

// ChunkPair is one unit of verification work: the same logical chunk in
// the two runs' checkpoint files.
type ChunkPair struct {
	// Index is the caller-defined chunk identifier.
	Index int
	// OffA and OffB are absolute file offsets in run A's and run B's files.
	OffA, OffB int64
	// Len is the chunk length in bytes.
	Len int
}

// Config parameterizes the pipeline.
type Config struct {
	// Backend performs the scattered reads.
	Backend aio.Backend
	// Device prices host-to-device transfers.
	Device device.Model
	// SliceBytes is the target bytes per pipeline slice per run
	// (default 8 MiB).
	SliceBytes int
}

// Stats reports the pipeline's resource consumption.
type Stats struct {
	// Slices is the number of pipeline slices executed.
	Slices int
	// BytesRead counts bytes read from both files.
	BytesRead int64
	// ReadCost aggregates the storage cost of all reads.
	ReadCost pfs.Cost
	// IOVirtual is the summed un-overlapped I/O virtual time.
	IOVirtual time.Duration
	// ComputeVirtual is the summed transfer + kernel virtual time.
	ComputeVirtual time.Duration
	// PipelineVirtual is the overlapped end-to-end virtual time.
	PipelineVirtual time.Duration
	// Wall is the measured wall-clock time of the pipeline.
	Wall time.Duration
}

// Compute is the consumer callback: it receives one chunk pair with both
// buffers filled and returns the virtual duration of its kernel work.
type Compute func(p ChunkPair, a, b []byte) (time.Duration, error)

type slice struct {
	pairs    []ChunkPair
	bufA     []byte
	bufB     []byte
	io       time.Duration
	cost     pfs.Cost
	err      error
	reqsA    []aio.ReadReq
	reqsB    []aio.ReadReq
	byteSize int64
}

// Run streams all chunk pairs through the pipeline.
func Run(fA, fB *pfs.File, pairs []ChunkPair, cfg Config, compute Compute) (Stats, error) {
	var stats Stats
	if len(pairs) == 0 {
		return stats, nil
	}
	if cfg.Backend == nil {
		cfg.Backend = aio.NewUring(0, 0)
	}
	if cfg.SliceBytes <= 0 {
		cfg.SliceBytes = 8 << 20
	}
	sw := metrics.NewStopwatch()

	// Partition pairs into slices of ~SliceBytes.
	var slices []*slice
	cur := &slice{}
	for _, p := range pairs {
		if p.Len <= 0 {
			return stats, fmt.Errorf("stream: chunk %d has non-positive length", p.Index)
		}
		cur.pairs = append(cur.pairs, p)
		cur.byteSize += int64(p.Len)
		if cur.byteSize >= int64(cfg.SliceBytes) {
			slices = append(slices, cur)
			cur = &slice{}
		}
	}
	if len(cur.pairs) > 0 {
		slices = append(slices, cur)
	}
	stats.Slices = len(slices)

	// Producer: fills slices in order, double-buffered via a depth-1
	// channel (one slice in flight while one is consumed).
	filled := make(chan *slice, 1)
	done := make(chan struct{})
	go func() {
		defer close(filled)
		for _, s := range slices {
			s.fill(fA, fB, cfg.Backend)
			select {
			case filled <- s:
			case <-done:
				return
			}
		}
	}()
	defer func() {
		close(done)
		for range filled { // drain so the producer can exit
		}
	}()

	// Consumer: virtual-time recurrence for the double-buffered pipeline.
	var pipeVirtual, prevComp time.Duration
	first := true
	for s := range filled {
		if s.err != nil {
			return stats, s.err
		}
		stats.ReadCost.Add(s.cost)
		stats.BytesRead += 2 * s.byteSize
		stats.IOVirtual += s.io

		if first {
			pipeVirtual += s.io
			first = false
		} else if s.io > prevComp {
			pipeVirtual += s.io
		} else {
			pipeVirtual += prevComp
		}

		// One batched kernel per slice: launch charged here, the
		// callbacks contribute only their bandwidth terms.
		comp := cfg.Device.KernelLaunch + cfg.Device.TransferTime(2*s.byteSize)
		var posA, posB int64
		for _, p := range s.pairs {
			a := s.bufA[posA : posA+int64(p.Len)]
			b := s.bufB[posB : posB+int64(p.Len)]
			posA += int64(p.Len)
			posB += int64(p.Len)
			kv, err := compute(p, a, b)
			if err != nil {
				return stats, err
			}
			comp += kv
		}
		stats.ComputeVirtual += comp
		prevComp = comp
	}
	pipeVirtual += prevComp // drain the final compute stage
	stats.PipelineVirtual = pipeVirtual
	stats.Wall = sw.Lap()
	return stats, nil
}

// fill reads the slice's chunks from both files through the backend.
func (s *slice) fill(fA, fB *pfs.File, backend aio.Backend) {
	s.bufA = make([]byte, s.byteSize)
	s.bufB = make([]byte, s.byteSize)
	s.reqsA = make([]aio.ReadReq, len(s.pairs))
	s.reqsB = make([]aio.ReadReq, len(s.pairs))
	var pos int64
	for i, p := range s.pairs {
		s.reqsA[i] = aio.ReadReq{Off: p.OffA, Len: p.Len, Buf: s.bufA[pos : pos+int64(p.Len)], Tag: p.Index}
		s.reqsB[i] = aio.ReadReq{Off: p.OffB, Len: p.Len, Buf: s.bufB[pos : pos+int64(p.Len)], Tag: p.Index}
		pos += int64(p.Len)
	}
	costA, tA, err := backend.ReadBatch(fA, s.reqsA)
	if err != nil {
		s.err = fmt.Errorf("stream: read run A: %w", err)
		return
	}
	costB, tB, err := backend.ReadBatch(fB, s.reqsB)
	if err != nil {
		s.err = fmt.Errorf("stream: read run B: %w", err)
		return
	}
	s.cost = costA
	s.cost.Add(costB)
	s.io = tA + tB
}
