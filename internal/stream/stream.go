// Package stream implements the multi-level overlapping I/O pipeline of
// the comparator's verification stage (paper §2.1, Fig. 3): an I/O
// producer reads slices of scattered chunk pairs from the PFS into host
// buffers through an aio backend while the consumer transfers the previous
// slice to the device and runs the comparison kernel. Buffering is
// configurable depth-N (Config.Depth, default 2 — classic double
// buffering), so steady-state cost is bounded by the slower of the I/O and
// compute rates rather than their sum.
//
// Slice buffers come from a free list sized to the pipeline depth: each
// buffer set (host buffers for both runs plus the two request batches) is
// recycled as its slice completes, so steady-state slice processing does
// no heap allocation. When the backend implements aio.PairReader, both
// runs' requests for a slice are submitted as one overlapped batch;
// otherwise the two reads serialize.
//
// The pipeline runs with real goroutine overlap (wall time) and accounts
// virtual time with the depth-N recurrence (VirtualPipeline):
//
//	ioStart_i   = max(ioEnd_{i-1}, compEnd_{i-depth})
//	compStart_i = max(compEnd_{i-1}, ioEnd_i)
//
// which at depth 2 reduces to the classic double-buffer closed form
//
//	total = io_0 + Σ_{i≥1} max(io_i, comp_{i-1}) + comp_last
//
// and at depth 1 to the fully serial sum Σ (io_i + comp_i).
package stream

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/aio"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/retry"
)

// ChunkPair is one unit of verification work: the same logical chunk in
// the two runs' checkpoint files.
type ChunkPair struct {
	// Index is the caller-defined chunk identifier.
	Index int
	// OffA and OffB are absolute file offsets in run A's and run B's files.
	OffA, OffB int64
	// Len is the chunk length in bytes.
	Len int
}

// Config parameterizes the pipeline.
type Config struct {
	// Backend performs the scattered reads. The compare layer always
	// injects one (the service plane's ring, or compare's own fallback);
	// direct calls that leave it nil get a package-private persistent
	// ring of the same shape.
	Backend aio.Backend
	// Device prices host-to-device transfers.
	Device device.Model
	// SliceBytes is the target bytes per pipeline slice per run
	// (default 8 MiB).
	SliceBytes int
	// Depth is the pipeline depth: how many slice buffer sets may be in
	// flight at once (default 2, classic double buffering; 1 serializes
	// I/O against compute). The producer blocks acquiring a buffer set
	// from the free list, so the wall-clock pipeline and the virtual-time
	// recurrence share the same bound.
	Depth int
	// Retry governs re-issue of a slice's batch reads on Transient
	// errors. Backoff is charged to the slice's I/O virtual time; an
	// exhausted budget surfaces the error wrapped Permanent. The zero
	// policy disables retries.
	Retry retry.Policy
}

// Stats reports the pipeline's resource consumption. On error the
// cumulative fields (Slices, BytesRead, ReadCost, IOVirtual,
// ComputeVirtual, PipelineVirtual) cover only the slices consumed before
// the failure — partial but truthful; Wall always covers the whole call.
type Stats struct {
	// Slices is the number of pipeline slices consumed.
	Slices int
	// BytesRead counts bytes read from both files.
	BytesRead int64
	// ReadCost aggregates the storage cost of all reads.
	ReadCost pfs.Cost
	// IOVirtual is the summed un-overlapped I/O virtual time.
	IOVirtual time.Duration
	// ComputeVirtual is the summed transfer + kernel virtual time.
	ComputeVirtual time.Duration
	// PipelineVirtual is the overlapped end-to-end virtual time.
	PipelineVirtual time.Duration
	// Wall is the measured wall-clock time of the pipeline, set on both
	// success and error returns.
	Wall time.Duration
	// ReadRetries counts batch reads re-issued under Config.Retry.
	ReadRetries int
	// RingFallbacks counts slices that fell back to a fresh-ring
	// aio.Legacy read after the shared ring reported ErrRingClosed.
	RingFallbacks int
}

// Compute is the consumer callback: it receives one chunk pair with both
// buffers filled and returns the virtual duration of its kernel work.
type Compute func(p ChunkPair, a, b []byte) (time.Duration, error)

// slice is one pipeline buffer set. Buffers and request batches are
// recycled through the free list: reset keeps capacity, so after the pool
// warms up a fill performs no heap allocation.
type slice struct {
	pairs    []ChunkPair
	bufA     []byte
	bufB     []byte
	io       time.Duration
	cost     pfs.Cost
	err      error
	reqsA    []aio.ReadReq
	reqsB    []aio.ReadReq
	reqsAB   []aio.ReadReq // merged batch for the same-file (shared pack) path
	byteSize int64
	retries  int // batch reads re-issued under the retry policy
	fellBack bool // slice was read via the Legacy fallback
}

// reset clears the slice for reuse, keeping every backing array.
func (s *slice) reset() {
	s.pairs = s.pairs[:0]
	s.reqsA = s.reqsA[:0]
	s.reqsB = s.reqsB[:0]
	s.reqsAB = s.reqsAB[:0]
	s.byteSize = 0
	s.io = 0
	s.cost = pfs.Cost{}
	s.err = nil
	s.retries = 0
	s.fellBack = false
}

// Run streams all chunk pairs through the pipeline. Cancellation is
// observed at three points: the producer aborts between slices (and its
// backend reads observe the context themselves), the consumer aborts
// between slices, and a canceled run drains the producer before
// returning, so no goroutine or pooled buffer leaks.
func Run(ctx context.Context, fA, fB *pfs.File, pairs []ChunkPair, cfg Config, compute Compute) (stats Stats, err error) {
	if len(pairs) == 0 {
		return stats, nil
	}
	if err := ctx.Err(); err != nil {
		return stats, err
	}
	if cfg.Backend == nil {
		cfg.Backend = fallbackBackend()
	}
	if cfg.SliceBytes <= 0 {
		cfg.SliceBytes = 8 << 20
	}
	if cfg.Depth < 1 {
		cfg.Depth = 2
	}
	for _, p := range pairs {
		if p.Len <= 0 {
			return stats, fmt.Errorf("stream: chunk %d has non-positive length", p.Index)
		}
	}
	sw := metrics.NewStopwatch()
	defer func() { stats.Wall = sw.Lap() }()

	// Free list of slice buffer sets, sized to the pipeline depth: the
	// producer cannot run more than Depth slices ahead of the consumer.
	pool := make(chan *slice, cfg.Depth)
	for i := 0; i < cfg.Depth; i++ {
		pool <- &slice{}
	}
	pair, _ := cfg.Backend.(aio.PairReader)

	// Producer: partitions pairs into ~SliceBytes slices lazily, filling
	// each into a pooled buffer set.
	filled := make(chan *slice, cfg.Depth)
	done := make(chan struct{})
	go func() {
		defer close(filled)
		next := 0
		for next < len(pairs) {
			var s *slice
			select {
			case s = <-pool:
			case <-done:
				return
			case <-ctx.Done():
				return
			}
			s.reset()
			for next < len(pairs) {
				p := pairs[next]
				s.pairs = append(s.pairs, p)
				s.byteSize += int64(p.Len)
				next++
				if s.byteSize >= int64(cfg.SliceBytes) {
					break
				}
			}
			s.fill(ctx, fA, fB, cfg, pair)
			select {
			case filled <- s:
			case <-done:
				return
			}
		}
	}()
	defer func() {
		close(done)
		for range filled { // drain so the producer can exit
		}
	}()

	// Consumer: runs the compute stage and advances the virtual clock by
	// the depth-N recurrence.
	vp := NewVirtualPipeline(cfg.Depth)
	for s := range filled {
		if cerr := ctx.Err(); cerr != nil {
			return stats, cerr
		}
		if s.err != nil {
			return stats, s.err
		}
		stats.Slices++
		stats.ReadCost.Add(s.cost)
		stats.BytesRead += 2 * s.byteSize
		stats.IOVirtual += s.io
		stats.ReadRetries += s.retries
		if s.fellBack {
			stats.RingFallbacks++
		}

		// One batched kernel per slice: launch charged here, the
		// callbacks contribute only their bandwidth terms.
		comp := cfg.Device.KernelLaunch + cfg.Device.TransferTime(2*s.byteSize)
		var posA, posB int64
		for _, p := range s.pairs {
			a := s.bufA[posA : posA+int64(p.Len)]
			b := s.bufB[posB : posB+int64(p.Len)]
			posA += int64(p.Len)
			posB += int64(p.Len)
			kv, err := compute(p, a, b)
			if err != nil {
				return stats, err
			}
			comp += kv
		}
		stats.ComputeVirtual += comp
		vp.Advance(s.io, comp)
		stats.PipelineVirtual = vp.Total()
		pool <- s // recycle the buffer set
	}
	return stats, ctx.Err()
}

// fill reads the slice's chunks from both files through the backend,
// reusing the slice's buffers and request batches. Reads are governed by
// cfg.Retry (batch re-issue on Transient errors, backoff charged to the
// slice's I/O time), and a closed shared ring degrades to a one-off
// fresh-ring aio.Legacy read of the same requests.
func (s *slice) fill(ctx context.Context, fA, fB *pfs.File, cfg Config, pair aio.PairReader) {
	n := s.byteSize
	if int64(cap(s.bufA)) < n {
		s.bufA = make([]byte, n)
		s.bufB = make([]byte, n)
	}
	s.bufA = s.bufA[:n]
	s.bufB = s.bufB[:n]
	var pos int64
	for _, p := range s.pairs {
		s.reqsA = append(s.reqsA, aio.ReadReq{Off: p.OffA, Len: p.Len, Buf: s.bufA[pos : pos+int64(p.Len)], Tag: p.Index})
		s.reqsB = append(s.reqsB, aio.ReadReq{Off: p.OffB, Len: p.Len, Buf: s.bufB[pos : pos+int64(p.Len)], Tag: p.Index})
		pos += int64(p.Len)
	}
	sameFile := fA == fB
	if sameFile {
		// Both sides live in the same file (differential comparisons read
		// every chunk from the shared CAS pack): merge the two batches into
		// one so a coalescing backend can bridge gaps ACROSS sides — A and
		// B representatives captured in the same iteration sit adjacent in
		// the pack — and the whole slice costs a single batched submission.
		s.reqsAB = append(append(s.reqsAB, s.reqsA...), s.reqsB...)
	}
	read := func() error {
		if sameFile {
			cost, t, err := cfg.Backend.ReadBatch(ctx, fA, s.reqsAB)
			if err != nil {
				return fmt.Errorf("stream: read shared pack: %w", err)
			}
			s.cost = cost
			s.io = t
			return nil
		}
		if pair != nil {
			cost, t, err := pair.ReadBatchPair(ctx, fA, fB, s.reqsA, s.reqsB)
			if err != nil {
				return fmt.Errorf("stream: read runs A+B: %w", err)
			}
			s.cost = cost
			s.io = t
			return nil
		}
		costA, tA, err := cfg.Backend.ReadBatch(ctx, fA, s.reqsA)
		if err != nil {
			return fmt.Errorf("stream: read run A: %w", err)
		}
		costB, tB, err := cfg.Backend.ReadBatch(ctx, fB, s.reqsB)
		if err != nil {
			return fmt.Errorf("stream: read run B: %w", err)
		}
		s.cost = costA
		s.cost.Add(costB)
		s.io = tA + tB
		return nil
	}
	var attempts int
	backoff, err := cfg.Retry.Do(ctx, func(attempt int) error {
		attempts = attempt + 1
		return read()
	})
	s.retries = attempts - 1
	s.io += backoff
	if err != nil && errors.Is(err, aio.ErrRingClosed) {
		// First rung of the degradation ladder: the shared ring is gone,
		// so pay the fresh-ring price for this slice instead of failing
		// the comparison. Run-A and run-B batches serialize here (one
		// merged batch when both sides read the same file).
		leg := aio.Legacy{}
		if sameFile {
			cost, t, errL := leg.ReadBatch(ctx, fA, s.reqsAB)
			if errL == nil {
				s.cost = cost
				s.io += t
				s.fellBack = true
				err = nil
			}
		} else {
			costA, tA, errA := leg.ReadBatch(ctx, fA, s.reqsA)
			if errA == nil {
				var costB pfs.Cost
				var tB time.Duration
				costB, tB, errA = leg.ReadBatch(ctx, fB, s.reqsB)
				if errA == nil {
					s.cost = costA
					s.cost.Add(costB)
					s.io += tA + tB
					s.fellBack = true
					err = nil
				}
			}
		}
	}
	s.err = err
}

// VirtualPipeline accumulates the virtual-clock completion time of a
// depth-N two-stage (I/O → compute) pipeline. Slice i's read can start
// only when the previous read finished (one I/O channel) AND a buffer set
// is free, i.e. slice i-depth's compute finished; its compute starts when
// the previous compute finished (one device) and its own read is done:
//
//	ioStart_i   = max(ioEnd_{i-1}, compEnd_{i-depth})
//	compStart_i = max(compEnd_{i-1}, ioEnd_i)
//
// Exported so tests can check the recurrence against its closed forms
// (serial sum at depth 1, the double-buffer formula at depth 2).
type VirtualPipeline struct {
	ioEnd   time.Duration
	compEnd time.Duration
	ends    []time.Duration // compEnd of the last `depth` slices, ring-indexed
	n       int
}

// NewVirtualPipeline returns an accumulator for the given depth
// (values < 1 are treated as 1).
func NewVirtualPipeline(depth int) *VirtualPipeline {
	if depth < 1 {
		depth = 1
	}
	return &VirtualPipeline{ends: make([]time.Duration, depth)}
}

// Advance feeds the next slice's I/O and compute virtual durations.
func (v *VirtualPipeline) Advance(io, comp time.Duration) {
	depth := len(v.ends)
	ioStart := v.ioEnd
	if v.n >= depth {
		// The buffer set is recycled from slice n-depth; wait for its
		// compute to release it.
		if free := v.ends[v.n%depth]; free > ioStart {
			ioStart = free
		}
	}
	v.ioEnd = ioStart + io
	compStart := v.compEnd
	if v.ioEnd > compStart {
		compStart = v.ioEnd
	}
	v.compEnd = compStart + comp
	v.ends[v.n%depth] = v.compEnd
	v.n++
}

// Total returns the pipeline completion time of the slices fed so far.
func (v *VirtualPipeline) Total() time.Duration { return v.compEnd }
