package compare

import (
	"context"
	"testing"

	"repro/internal/aio"
	"repro/internal/cas"
	"repro/internal/ckpt"
	"repro/internal/errbound"
	"repro/internal/merkle"
	"repro/internal/pfs"
	"repro/internal/synth"
)

// diffEnv holds a store with a shared CAS and a capturer per run, the
// differential counterpart of testEnv.
type diffEnv struct {
	store *pfs.Store
	cs    *cas.Store
	caps  map[string]*DiffCapturer
	opts  Options
}

func newDiffEnv(t *testing.T, opts Options) *diffEnv {
	t.Helper()
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	cs, _, err := cas.Open(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	return &diffEnv{store: store, cs: cs, caps: make(map[string]*DiffCapturer), opts: opts}
}

// capture differentially captures one iteration of one run and returns
// its canonical checkpoint name.
func (e *diffEnv) capture(t *testing.T, runID string, it int, fields []ckpt.FieldSpec, data [][]byte) (string, *DiffCaptureReport) {
	t.Helper()
	c, ok := e.caps[runID]
	if !ok {
		var err error
		c, err = NewDiffCapturer(e.store, e.cs, e.opts)
		if err != nil {
			t.Fatal(err)
		}
		e.caps[runID] = c
	}
	meta := ckpt.Meta{RunID: runID, Iteration: it, Rank: 0, Fields: fields}
	rep, err := c.Capture(context.Background(), meta, data)
	if err != nil {
		t.Fatal(err)
	}
	return ckpt.Name(runID, it, 0), rep
}

func f32Fields(names []string, elems int) []ckpt.FieldSpec {
	fields := make([]ckpt.FieldSpec, len(names))
	for i, n := range names {
		fields[i] = ckpt.FieldSpec{Name: n, DType: errbound.Float32, Count: int64(elems)}
	}
	return fields
}

// evolve perturbs every field, standing in for one simulation step.
func evolve(data [][]byte, seed int64) [][]byte {
	out := make([][]byte, len(data))
	for i := range data {
		out[i] = synth.PerturbF32(data[i], synth.PerturbConfig{
			Seed:          seed + int64(i),
			BlockElems:    1024,
			MagLo:         1e-3,
			MagHi:         1e-2,
			UntouchedFrac: 0.6,
			ChangedFrac:   0.05,
		})
	}
	return out
}

// TestDiffCaptureGoldenIncrementalRoot is the golden equivalence test of
// the incremental capture path: after every warm capture, the
// incrementally updated tree saved by DiffCapturer must be bit-identical
// to a full rebuild — both from the manifest's digests and from the raw
// data itself.
func TestDiffCaptureGoldenIncrementalRoot(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	env := newDiffEnv(t, opts)
	const elems = 16 << 10
	fields := f32Fields([]string{"x", "vx"}, elems)
	data := [][]byte{synth.FieldF32(elems, 1), synth.FieldF32(elems, 2)}

	for it := 1; it <= 4; it++ {
		name, rep := env.capture(t, "runA", it, fields, data)
		if it == 1 {
			if !rep.Cold {
				t.Fatal("first capture must be cold")
			}
		} else {
			if rep.Cold {
				t.Fatalf("iteration %d went cold with a prior manifest", it)
			}
			if rep.UpdatedLeaves == 0 || rep.RehashedNodes == 0 {
				t.Fatalf("iteration %d: evolution updated %d leaves / %d nodes, want > 0",
					it, rep.UpdatedLeaves, rep.RehashedNodes)
			}
		}

		saved, _, _, err := LoadMetadata(context.Background(), env.store, name)
		if err != nil {
			t.Fatal(err)
		}
		full, _, err := Build(fields, data, opts)
		if err != nil {
			t.Fatal(err)
		}
		for fi := range fields {
			if saved.Fields[fi].Tree.Root() != full.Fields[fi].Tree.Root() {
				t.Fatalf("iteration %d field %s: incremental root differs from raw-data rebuild", it, fields[fi].Name)
			}
			fm := &rep.Manifest.Fields[fi]
			rt, err := merkle.New(fm.Bytes(), rep.Manifest.ChunkSize, fm.Digests)
			if err != nil {
				t.Fatal(err)
			}
			rt.Build(opts.Exec)
			if saved.Fields[fi].Tree.Root() != rt.Root() {
				t.Fatalf("iteration %d field %s: incremental root differs from manifest rebuild", it, fields[fi].Name)
			}
		}
		data = evolve(data, int64(100*it))
	}
}

// TestCompareDiffMatchesMerkle: the differential comparison of a pair
// captured through the shared CAS must report exactly the diffs the
// classic two-file comparison (and ground truth) reports.
func TestCompareDiffMatchesMerkle(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	classic := newEnv(t, 64<<10, opts, synth.DefaultPerturb(7))
	env := newDiffEnv(t, opts)
	fields := classic.meta.Fields
	nameA, _ := env.capture(t, "runA", 10, fields, classic.dataA)
	nameB, _ := env.capture(t, "runB", 10, fields, classic.dataB)
	env.store.EvictAll()

	want := groundTruth(t, classic, 1e-5)
	rm, err := CompareMerkle(context.Background(), classic.store, classic.nameA, classic.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := CompareDiff(context.Background(), env.store, env.cs, nameA, nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDiffs(t, want, diffsToMap(rd.Diffs), "diff-vs-truth")
	assertSameDiffs(t, diffsToMap(rm.Diffs), diffsToMap(rd.Diffs), "diff-vs-merkle")
	if rd.Method != "merkle-cas" {
		t.Errorf("Method = %q", rd.Method)
	}
	if rd.CandidateChunks != rm.CandidateChunks {
		t.Errorf("CandidateChunks = %d, classic found %d", rd.CandidateChunks, rm.CandidateChunks)
	}
	if rd.ChangedChunks != rm.ChangedChunks {
		t.Errorf("ChangedChunks = %d, classic found %d", rd.ChangedChunks, rm.ChangedChunks)
	}
	if rd.CASPrunedChunks != 0 {
		t.Errorf("CASPrunedChunks = %d without a memo, want 0", rd.CASPrunedChunks)
	}
	if rm.CASPrunedChunks != 0 {
		t.Errorf("classic comparison reported %d CAS-pruned chunks", rm.CASPrunedChunks)
	}
	if rd.TotalElements != rm.TotalElements || rd.TotalChunks != rm.TotalChunks {
		t.Errorf("totals diverge: diff %d/%d, classic %d/%d",
			rd.TotalElements, rd.TotalChunks, rm.TotalElements, rm.TotalChunks)
	}
}

// TestCompareDiffMemoReplaySkipsReads: a memo warmed by one comparison
// prunes every candidate of an identical re-comparison — zero stage-2
// read ops, identical diffs.
func TestCompareDiffMemoReplaySkipsReads(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	classic := newEnv(t, 64<<10, opts, synth.DefaultPerturb(8))
	env := newDiffEnv(t, opts)
	fields := classic.meta.Fields
	nameA, _ := env.capture(t, "runA", 10, fields, classic.dataA)
	nameB, _ := env.capture(t, "runB", 10, fields, classic.dataB)

	memo := NewCASMemo(1e-5)
	opts.Memo = memo

	env.store.EvictAll()
	ops0, _ := env.store.ReadStats()
	r1, err := CompareDiff(context.Background(), env.store, env.cs, nameA, nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	ops1, _ := env.store.ReadStats()
	if r1.CASPrunedChunks != 0 {
		t.Errorf("cold memo pruned %d chunks", r1.CASPrunedChunks)
	}
	if memo.Len() != r1.CandidateChunks || r1.CandidateChunks == 0 {
		t.Fatalf("memo holds %d verdicts after verifying %d candidates", memo.Len(), r1.CandidateChunks)
	}

	env.store.EvictAll()
	r2, err := CompareDiff(context.Background(), env.store, env.cs, nameA, nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	ops2, _ := env.store.ReadStats()
	if r2.CASPrunedChunks != r2.CandidateChunks || r2.CandidateChunks == 0 {
		t.Errorf("memoized pass pruned %d of %d candidates, want all", r2.CASPrunedChunks, r2.CandidateChunks)
	}
	if warmOps, coldOps := ops2-ops1, ops1-ops0; warmOps >= coldOps {
		t.Errorf("memoized pass took %d read ops, cold pass took %d — pruning saved nothing", warmOps, coldOps)
	}
	assertSameDiffs(t, diffsToMap(r1.Diffs), diffsToMap(r2.Diffs), "memo-replay")
	if r2.DiffCount != r1.DiffCount || r2.ChangedChunks != r1.ChangedChunks {
		t.Errorf("replayed verdicts diverge: %d/%d diffs, %d/%d changed chunks",
			r2.DiffCount, r1.DiffCount, r2.ChangedChunks, r1.ChangedChunks)
	}
	if r2.Degraded || r2.UnverifiedChunks != 0 {
		t.Error("clean memoized pass must not be degraded")
	}
}

// TestCompareDiffPrunedNeverUnverified: a pruned chunk's verdict is
// proven, so even when every pack read fails, a fully memoized comparison
// completes clean — and the same failure without the memo degrades every
// candidate to Unverified, never silently matching.
func TestCompareDiffPrunedNeverUnverified(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	classic := newEnv(t, 64<<10, opts, synth.DefaultPerturb(9))
	env := newDiffEnv(t, opts)
	fields := classic.meta.Fields
	nameA, _ := env.capture(t, "runA", 10, fields, classic.dataA)
	nameB, _ := env.capture(t, "runB", 10, fields, classic.dataB)

	memo := NewCASMemo(1e-5)
	opts.Memo = memo
	r1, err := CompareDiff(context.Background(), env.store, env.cs, nameA, nameB, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Every stage-2 pack read now fails. The memoized re-comparison never
	// schedules one.
	opts.Backend = nameFailBackend{inner: aio.Mmap{}, match: cas.PackName, err: errStorage}
	opts.Degrade = true
	env.store.EvictAll()
	r2, err := CompareDiff(context.Background(), env.store, env.cs, nameA, nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r2.CASPrunedChunks != r2.CandidateChunks {
		t.Fatalf("pruned %d of %d candidates, want all", r2.CASPrunedChunks, r2.CandidateChunks)
	}
	if r2.Degraded || r2.UnverifiedChunks != 0 {
		t.Errorf("pruned chunks reported unverified: Degraded=%v Unverified=%d",
			r2.Degraded, r2.UnverifiedChunks)
	}
	assertSameDiffs(t, diffsToMap(r1.Diffs), diffsToMap(r2.Diffs), "pruned-under-faults")

	// Control: the same failure without the memo degrades every candidate.
	opts.Memo = nil
	env.store.EvictAll()
	r3, err := CompareDiff(context.Background(), env.store, env.cs, nameA, nameB, opts)
	if err != nil {
		t.Fatalf("degrade mode must absorb the pack failure: %v", err)
	}
	if !r3.Degraded || r3.UnverifiedChunks != r3.CandidateChunks || r3.CandidateChunks == 0 {
		t.Errorf("unmemoized control: Degraded=%v Unverified=%d Candidates=%d, want all candidates unverified",
			r3.Degraded, r3.UnverifiedChunks, r3.CandidateChunks)
	}
	if r3.Identical() {
		t.Error("degraded result must never be a clean match")
	}
}

// TestCompareDiffMemoEpsilonMismatch: a memo carries verdicts only at its
// pinned ε; any other comparison must refuse it.
func TestCompareDiffMemoEpsilonMismatch(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	env := newDiffEnv(t, opts)
	fields := f32Fields([]string{"x"}, 4<<10)
	data := [][]byte{synth.FieldF32(4<<10, 3)}
	nameA, _ := env.capture(t, "runA", 1, fields, data)
	nameB, _ := env.capture(t, "runB", 1, fields, data)
	opts.Memo = NewCASMemo(1e-3)
	if _, err := CompareDiff(context.Background(), env.store, env.cs, nameA, nameB, opts); err == nil {
		t.Error("ε-mismatched memo accepted")
	}
}
