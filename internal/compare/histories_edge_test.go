package compare

import (
	"context"
	"errors"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/errbound"
	"repro/internal/pfs"
	"repro/internal/synth"
)

// historyEnv writes two runs with the given iterations (run B perturbed
// from run A at every iteration) plus Merkle metadata for everything.
func historyEnv(t *testing.T, iters []int, opts Options, pert synth.PerturbConfig) *pfs.Store {
	t.Helper()
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	const elems = 4 << 10
	dataA, dataB := synth.RunPair(elems, 2, 99, pert)
	fields := []ckpt.FieldSpec{
		{Name: "x", DType: errbound.Float32, Count: elems},
		{Name: "v", DType: errbound.Float32, Count: elems},
	}
	for _, it := range iters {
		for _, rd := range []struct {
			run  string
			data [][]byte
		}{{"runA", dataA}, {"runB", dataB}} {
			meta := ckpt.Meta{RunID: rd.run, Iteration: it, Rank: 0, Fields: fields}
			if _, err := ckpt.WriteCheckpoint(store, meta, rd.data); err != nil {
				t.Fatal(err)
			}
			name := ckpt.Name(rd.run, it, 0)
			if _, _, err := BuildAndSave(context.Background(), store, name, opts); err != nil {
				t.Fatal(err)
			}
		}
	}
	store.EvictAll()
	return store
}

// TestHistoriesLengthMismatchPartialRanks covers the length-mismatch
// error when the runs diverge in rank count, not just iteration count.
func TestHistoriesLengthMismatchPartialRanks(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	fields := []ckpt.FieldSpec{{Name: "x", DType: errbound.Float32, Count: 64}}
	write := func(run string, iter, rank int) {
		meta := ckpt.Meta{RunID: run, Iteration: iter, Rank: rank, Fields: fields}
		if _, err := ckpt.WriteCheckpoint(store, meta, [][]byte{make([]byte, 256)}); err != nil {
			t.Fatal(err)
		}
	}
	write("r1", 10, 0)
	write("r1", 10, 1)
	write("r2", 10, 0)
	rep, err := CompareHistories(context.Background(), store, "r1", "r2", MethodDirect, Options{Epsilon: 1e-6})
	if err == nil {
		t.Fatal("rank-count mismatch accepted")
	}
	if rep != nil {
		t.Fatalf("got a report alongside an upfront validation error: %+v", rep)
	}
}

// TestHistoriesCompactedCheckpointMidHistory compacts one checkpoint in
// the middle of run A's history and asserts CompareHistories degrades
// that pair to the metadata-only comparison instead of failing.
func TestHistoriesCompactedCheckpointMidHistory(t *testing.T) {
	opts := baseOpts(1e-6, 4<<10)
	pert := synth.PerturbConfig{} // identical runs
	store := historyEnv(t, []int{10, 20, 30}, opts, pert)

	midName := ckpt.Name("runA", 20, 0)
	if _, _, err := CompactCheckpoint(context.Background(), store, midName, opts); err != nil {
		t.Fatal(err)
	}
	if !IsCompacted(store, midName) {
		t.Fatal("checkpoint not compacted")
	}

	rep, err := CompareHistories(context.Background(), store, "runA", "runB", MethodMerkle, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pairs) != 3 {
		t.Fatalf("compared %d pairs, want 3", len(rep.Pairs))
	}
	for i, p := range rep.Pairs {
		wantMetaOnly := i == 1
		if p.MetadataOnly != wantMetaOnly {
			t.Errorf("pair %d (iter %d): MetadataOnly = %v, want %v", i, p.Iteration, p.MetadataOnly, wantMetaOnly)
		}
		if p.Result == nil {
			t.Fatalf("pair %d missing result", i)
		}
	}
	if !rep.Reproducible() {
		t.Error("identical histories with one compacted checkpoint not reproducible")
	}
	// The metadata-only pair reads its (tiny) metadata files, never the
	// checkpoint data.
	mid := rep.Pairs[1].Result
	if mid.BytesRead >= mid.CheckpointBytes {
		t.Errorf("metadata-only pair read %d bytes, not less than %d checkpoint bytes",
			mid.BytesRead, mid.CheckpointBytes)
	}
}

// TestHistoriesCancellationPartialReport cancels a history comparison
// partway through and asserts ctx.Err() propagation with a partial
// report of the pairs that finished.
func TestHistoriesCancellationPartialReport(t *testing.T) {
	opts := baseOpts(1e-7, 4<<10)
	pert := synth.DefaultPerturb(5)
	pert.MagLo, pert.MagHi = 1e-3, 1e-2 // beyond eps: stage 2 streams
	store := historyEnv(t, []int{10, 20, 30}, opts, pert)

	calls := errCallsOf(t, func(ctx context.Context) error {
		store.EvictAll()
		_, err := CompareHistories(ctx, store, "runA", "runB", MethodMerkle, opts)
		return err
	})

	// Cancel inside the last pair's sub-plan: the two finished pairs
	// must survive in the partial report.
	store.EvictAll()
	cc := &countingCtx{Context: context.Background(), budget: calls - 2}
	rep, err := CompareHistories(cc, store, "runA", "runB", MethodMerkle, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("no partial report on mid-history cancellation")
	}
	if len(rep.Pairs) != 2 {
		t.Fatalf("partial report has %d pairs, want 2", len(rep.Pairs))
	}
	for i, want := range []int{10, 20} {
		if rep.Pairs[i].Iteration != want {
			t.Errorf("pair %d iteration = %d, want %d", i, rep.Pairs[i].Iteration, want)
		}
	}
	if n := store.OpenHandles(); n != 0 {
		t.Fatalf("%d reader handles leaked after canceled history comparison", n)
	}

	// Canceled before any pair: empty-but-valid report, bare ctx error.
	cc = &countingCtx{Context: context.Background(), budget: 0}
	rep, err = CompareHistories(cc, store, "runA", "runB", MethodMerkle, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || len(rep.Pairs) != 0 {
		t.Fatalf("want empty partial report, got %+v", rep)
	}
}
