package compare

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/aio"
	"repro/internal/cas"
	"repro/internal/engine"
	"repro/internal/errbound"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/simclock"
	"repro/internal/stream"
)

// This file holds the differential N-run group comparison. It composes
// the two read-reduction layers: the group layer already reads each
// member's candidate union once regardless of how many pairs share it,
// and the CAS layer collapses that further — every needed chunk is an
// extent of ONE shared pack, so chunks deduplicated across members (the
// common case for runs of the same simulation) occupy the same extent and
// are fetched exactly once for the whole group. CAS pruning (extent
// equality and memoized digest-pair verdicts) then removes candidates
// from stage 2 entirely, before the union is even assembled.

// GroupCompareDiff compares N differentially captured runs as one group:
// stage 1 runs every pair's tree diff from metadata loaded once per
// member, CAS pruning removes candidates whose verdict the store proves
// (never reported Unverified — their verdict is proven, not skipped),
// and the survivors are fetched from the shared pack with ONE
// deduplicated batched read covering every member of every pair.
// Member 0 is the baseline. Every member must have been captured into cs
// with its manifest and metadata on the store at the options' ε.
func GroupCompareDiff(ctx context.Context, store *pfs.Store, cs *cas.Store, baseline string, runs []string, topology Topology, opts Options) (*GroupReport, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := checkMemo(opts.Memo, opts.Epsilon); err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("compare: group needs at least one run besides the baseline")
	}
	members := append([]string{baseline}, runs...)
	pairIdx, err := topology.pairList(len(members))
	if err != nil {
		return nil, err
	}
	st := &groupState{
		store:    store,
		members:  members,
		topo:     topology,
		opts:     opts,
		pairIdx:  pairIdx,
		rep:      &GroupReport{Members: members, Topology: topology},
		diffMode: true,
		cs:       cs,
	}
	var p engine.Plan
	p.Retry = opts.Retry
	open := p.Add(engine.StepSetup, "open-manifests", st.stepOpenMembersDiff)
	load := p.Add(engine.StepLoadMetadata, "load-metadata", st.stepLoadMembers, open)
	diff := p.Add(engine.StepTreeDiff, "tree-diff", st.stepPairDiffs, load)
	prune := p.Add(engine.StepTreeDiff, "cas-prune", st.stepGroupCASPrune, diff)
	merge := p.Add(engine.StepCoalesce, "merge-pack-union", st.stepMergePackUnion, prune)
	verify := p.Add(engine.StepStreamVerify, "shared-read-verify", st.stepSharedVerifyDiff, merge)
	p.Add(engine.StepReport, "report", st.stepGroupReportDiff, verify)
	erep, err := engine.Execute(ctx, &p)
	st.rep.Steps = erep.Steps
	if err != nil {
		return nil, err
	}
	return st.rep, nil
}

// stepOpenMembersDiff loads and cross-validates every member's leaf
// manifest and opens the shared pack — the differential counterpart of
// stepOpenMembers (there are no container files to open).
func (st *groupState) stepOpenMembersDiff(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	st.startOps, st.startBytes = st.store.ReadStats()
	st.mans = make([]*cas.Manifest, len(st.members))
	var metaCost pfs.Cost
	for i, name := range st.members {
		m, cost, err := cas.LoadManifest(ctx, st.store, name)
		if err != nil {
			return err
		}
		metaCost.Add(cost)
		st.mans[i] = m
		if i > 0 && !cas.SameSchema(st.mans[0], m) {
			return fmt.Errorf("compare: manifests of %s and %s have different schemas", st.members[0], name)
		}
	}
	//lint:ignore floatcmp,epsflow manifest digests are only comparable at the exact ε they were captured with
	if st.mans[0].Epsilon != st.opts.Epsilon {
		return fmt.Errorf("compare: manifest ε %g does not match requested ε %g", st.mans[0].Epsilon, st.opts.Epsilon)
	}
	pack, err := st.cs.Pack()
	if err != nil {
		return err
	}
	x.CloseOnExit(pack)
	st.pack = pack
	st.rep.CheckpointBytes = st.mans[0].TotalBytes()

	st.rep.BytesRead += metaCost.TotalBytes()
	readV := st.store.Model().SerialReadTime(metaCost, st.store.Sharers())
	deserV := simclock.BandwidthTime(metaCost.TotalBytes(), deserializeBytesPerSec)
	st.rep.Breakdown.AddVirtual(metrics.PhaseRead, readV)
	st.rep.Breakdown.AddVirtual(metrics.PhaseDeserialize, deserV)
	st.rep.Breakdown.AddVirtual(metrics.PhaseSetup, st.opts.SetupVirtual)
	st.rep.Breakdown.AddWall(metrics.PhaseSetup, sw.Lap())
	x.AddVirtual(st.opts.SetupVirtual + readV + deserV)
	return nil
}

// stepGroupCASPrune removes candidate chunks whose verdict the store
// proves without reading, per pair: extent equality (both members
// deduplicated to the same pack extent) and memoized digest-pair
// verdicts, replayed into the pair's result at report time.
func (st *groupState) stepGroupCASPrune(ctx context.Context, x *engine.Exec) error {
	memo := st.opts.Memo
	st.replays = make([]map[int]map[int][]int64, len(st.pairIdx))
	for pi, pr := range st.pairIdx {
		a, b := pr[0], pr[1]
		res := st.rep.Pairs[pi].Result
		for fi, chunks := range st.pairCands[pi] {
			if len(chunks) == 0 {
				continue
			}
			fA := &st.mans[a].Fields[fi]
			fB := &st.mans[b].Fields[fi]
			chunkElems := int64(st.mans[a].ChunkSize) / int64(fA.DType.Size())
			kept := chunks[:0]
			for _, ci := range chunks {
				if fA.Locs[ci] == fB.Locs[ci] {
					res.CASPrunedChunks++
					continue
				}
				if memo != nil {
					if idx, ok := memo.lookup(fA.Digests[ci], fB.Digests[ci], fA.DType); ok {
						res.CASPrunedChunks++
						st.recordReplay(pi, fi, ci, int64(ci)*chunkElems, idx)
						continue
					}
				}
				kept = append(kept, ci)
			}
			if len(kept) == 0 {
				kept = nil
			}
			st.pairCands[pi][fi] = kept
		}
	}
	return nil
}

// recordReplay stashes one memoized chunk verdict (absolute element
// indices) for materialization into the pair's result at report time.
func (st *groupState) recordReplay(pi, fi, ci int, baseElem int64, idx []int64) {
	if st.replays[pi] == nil {
		st.replays[pi] = make(map[int]map[int][]int64)
	}
	if st.replays[pi][fi] == nil {
		st.replays[pi][fi] = make(map[int][]int64)
	}
	abs := make([]int64, len(idx))
	for i, e := range idx {
		abs[i] = baseElem + e
	}
	st.replays[pi][fi][ci] = abs
}

// stepMergePackUnion builds the group's single read plan: the union of
// every surviving (member, field, chunk) need, keyed by pack extent — a
// chunk deduplicated across members (or needed by several pairs) is read
// exactly once for the whole group. Each member's union view indexes the
// shared buffer, so verifyPair works unchanged.
func (st *groupState) stepMergePackUnion(ctx context.Context, x *engine.Exec) error {
	type memberNeed struct {
		m, fi, ci int
	}
	needLoc := make(map[cas.Loc]bool)
	var needs []memberNeed
	seen := make(map[[3]int]bool)
	for pi, pr := range st.pairIdx {
		for fi, chunks := range st.pairCands[pi] {
			for _, ci := range chunks {
				for _, m := range []int{pr[0], pr[1]} {
					key := [3]int{m, fi, ci}
					if seen[key] {
						continue
					}
					seen[key] = true
					needs = append(needs, memberNeed{m: m, fi: fi, ci: ci})
					needLoc[st.mans[m].Fields[fi].Locs[ci]] = true
				}
			}
		}
	}
	if len(needLoc) == 0 {
		return nil
	}
	locs := make([]cas.Loc, 0, len(needLoc))
	for loc := range needLoc {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i].Off < locs[j].Off })

	u := &st.packUnion
	var total int64
	for _, loc := range locs {
		total += int64(loc.Len)
	}
	u.buf = make([]byte, total)
	u.reqs = make([]aio.ReadReq, 0, len(locs))
	locPos := make(map[cas.Loc]int64, len(locs))
	var pos int64
	for _, loc := range locs {
		locPos[loc] = pos
		u.reqs = append(u.reqs, aio.ReadReq{
			Off: loc.Off, Len: int(loc.Len), Buf: u.buf[pos : pos+int64(loc.Len)], Tag: len(u.reqs),
		})
		pos += int64(loc.Len)
	}

	// Per-member views into the shared buffer.
	st.unions = make([]memberUnion, len(st.members))
	for _, nd := range needs {
		mu := &st.unions[nd.m]
		if mu.pos == nil {
			mu.pos = make(map[[2]int]int64)
			mu.buf = u.buf
		}
		mu.pos[[2]int{nd.fi, nd.ci}] = locPos[st.mans[nd.m].Fields[nd.fi].Locs[nd.ci]]
	}
	return nil
}

// stepSharedVerifyDiff runs the differential stage 2: one batched read of
// the pack union (retried on Transient errors, degrading to a fresh-ring
// aio.Legacy read on a closed shared ring), then every pair verifies from
// the shared buffer. Under Options.Degrade a read that still fails drops
// every pair's SURVIVING candidates to the metadata-only verdict — pruned
// chunks keep their proven verdict and are never counted Unverified.
func (st *groupState) stepSharedVerifyDiff(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	vp := stream.NewVirtualPipeline(st.opts.Depth)
	hashers := make(map[errbound.DType]*errbound.Hasher)
	u := &st.packUnion

	loaded := len(u.reqs) == 0
	var io time.Duration
	if !loaded {
		attempts := 0
		backoff, err := st.opts.Retry.Do(ctx, func(attempt int) error {
			attempts = attempt + 1
			var rerr error
			_, io, rerr = st.opts.Backend.ReadBatch(ctx, st.pack, u.reqs)
			return rerr
		})
		st.rep.ReadRetries += attempts - 1
		io += backoff
		if err != nil && errors.Is(err, aio.ErrRingClosed) {
			leg := aio.Legacy{}
			var lio time.Duration
			_, lio, err = leg.ReadBatch(ctx, st.pack, u.reqs)
			io += lio
			if err == nil {
				st.rep.RingFallbacks++
			}
		}
		switch {
		case err == nil:
			loaded = true
			st.rep.BytesRead += int64(len(u.buf))
		case st.opts.Degrade && ctx.Err() == nil:
		default:
			return fmt.Errorf("compare: group verification: %w", err)
		}
	}

	var comp time.Duration
	for pi := range st.pairIdx {
		if !st.pairHasCands(pi) {
			continue
		}
		if !loaded {
			res := st.rep.Pairs[pi].Result
			res.Degraded = true
			for _, chunks := range st.pairCands[pi] {
				res.UnverifiedChunks += len(chunks)
			}
			continue
		}
		c, err := st.verifyPair(ctx, pi, hashers)
		if err != nil {
			return err
		}
		comp += c
	}
	vp.Advance(io, comp)
	st.foldGroupRereads(x)
	st.rep.PipelineVirtual = vp.Total()
	st.rep.Breakdown.AddVirtual(metrics.PhaseCompareDirect, vp.Total())
	st.rep.Breakdown.AddWall(metrics.PhaseCompareDirect, sw.Lap())
	x.AddVirtual(vp.Total())
	return nil
}

// stepGroupReportDiff materializes the memo replays into the pair results
// — exactly as a stage-2 verification of the same chunks would have —
// then runs the standard store-level accounting.
func (st *groupState) stepGroupReportDiff(ctx context.Context, x *engine.Exec) error {
	for pi, fieldMap := range st.replays {
		if len(fieldMap) == 0 {
			continue
		}
		res := st.rep.Pairs[pi].Result
		fis := make([]int, 0, len(fieldMap))
		for fi := range fieldMap {
			fis = append(fis, fi)
		}
		sort.Ints(fis)
		for _, fi := range fis {
			name := st.metas[0].Fields[fi].Name
			var indices []int64
			changed := 0
			cis := make([]int, 0, len(fieldMap[fi]))
			for ci := range fieldMap[fi] {
				cis = append(cis, ci)
			}
			sort.Ints(cis)
			for _, ci := range cis {
				if idx := fieldMap[fi][ci]; len(idx) > 0 {
					changed++
					indices = append(indices, idx...)
				}
			}
			if changed == 0 {
				continue
			}
			res.ChangedChunks += changed
			res.DiffCount += int64(len(indices))
			merged := false
			for di := range res.Diffs {
				if res.Diffs[di].Field == name {
					res.Diffs[di].Indices = append(res.Diffs[di].Indices, indices...)
					sort.Slice(res.Diffs[di].Indices, func(i, j int) bool {
						return res.Diffs[di].Indices[i] < res.Diffs[di].Indices[j]
					})
					merged = true
					break
				}
			}
			if !merged {
				sort.Slice(indices, func(i, j int) bool { return indices[i] < indices[j] })
				res.Diffs = append(res.Diffs, FieldDiff{Field: name, Indices: indices})
			}
		}
		// Replays can introduce a field out of order; restore field order.
		order := make(map[string]int, len(st.metas[0].Fields))
		for fi := range st.metas[0].Fields {
			order[st.metas[0].Fields[fi].Name] = fi
		}
		sort.SliceStable(res.Diffs, func(i, j int) bool {
			return order[res.Diffs[i].Field] < order[res.Diffs[j].Field]
		})
	}
	return st.stepGroupReport(ctx, x)
}
