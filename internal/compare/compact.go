package compare

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/engine"
	"repro/internal/pfs"
)

// This file implements the paper's §5 future-work extension: online
// checkpoint compaction. Once a checkpoint's Merkle metadata exists, the
// boolean reproducibility question ("did anything move beyond ε, and in
// which chunks?") no longer needs the data — so old history can be
// compacted to metadata-only, freeing ~99.9 % of its storage while keeping
// every iteration comparable at chunk granularity.

// ErrCompacted is returned when a data-level comparison is attempted on a
// compacted checkpoint.
var ErrCompacted = errors.New("compare: checkpoint is compacted (metadata only)")

// CompactReport summarizes one compaction pass.
type CompactReport struct {
	// Removed lists the checkpoint files whose data was deleted.
	Removed []string
	// BytesFreed is the storage reclaimed.
	BytesFreed int64
	// MetadataBuilt lists checkpoints whose metadata had to be built
	// during the pass (it must exist before the data can be dropped).
	MetadataBuilt []string
}

// IsCompacted reports whether a checkpoint exists only as metadata.
func IsCompacted(store *pfs.Store, name string) bool {
	if f, err := store.Open(name); err == nil {
		f.Close()
		return false
	}
	f, err := store.Open(MetadataName(name))
	if err != nil {
		return false
	}
	f.Close()
	return true
}

// CompactCheckpoint replaces one checkpoint with its metadata: metadata is
// built (with opts) if missing, then the data file is removed.
func CompactCheckpoint(ctx context.Context, store *pfs.Store, name string, opts Options) (built bool, freed int64, err error) {
	if _, _, _, lerr := LoadMetadata(ctx, store, name); lerr != nil {
		if cerr := ctx.Err(); cerr != nil {
			return false, 0, cerr
		}
		if _, _, err := BuildAndSave(ctx, store, name, opts); err != nil {
			return false, 0, fmt.Errorf("compact %s: build metadata: %w", name, err)
		}
		built = true
	}
	f, err := store.Open(name)
	if err != nil {
		return built, 0, fmt.Errorf("compact %s: %w", name, err)
	}
	size := f.Size()
	f.Close()
	if err := store.Remove(name); err != nil {
		return built, 0, err
	}
	return built, size, nil
}

// CompactHistory compacts every checkpoint of a run except the
// keepLatest most recent iterations (per rank). Metadata is built where
// missing so no comparability is lost. The planner lists the history up
// front and emits one compact step per checkpoint, so cancellation lands
// on a checkpoint boundary and the partial report stays truthful.
func CompactHistory(ctx context.Context, store *pfs.Store, runID string, keepLatest int, opts Options) (*CompactReport, error) {
	if keepLatest < 0 {
		keepLatest = 0
	}
	names, err := ckpt.History(store, runID)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("compare: run %q has no checkpoints to compact", runID)
	}
	// Determine the iterations to keep: the highest keepLatest distinct
	// iteration numbers.
	iterSet := map[int]bool{}
	for _, n := range names {
		_, it, _, _ := ckpt.ParseName(n)
		iterSet[it] = true
	}
	iters := make([]int, 0, len(iterSet))
	for it := range iterSet {
		iters = append(iters, it)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(iters)))
	keep := map[int]bool{}
	for i := 0; i < keepLatest && i < len(iters); i++ {
		keep[iters[i]] = true
	}

	report := &CompactReport{}
	var p engine.Plan
	p.Retry = opts.retryPolicy()
	for _, n := range names {
		_, it, _, _ := ckpt.ParseName(n)
		if keep[it] {
			continue
		}
		name := n
		p.Add(engine.StepCompact, "compact:"+name, func(ctx context.Context, x *engine.Exec) error {
			built, freed, err := CompactCheckpoint(ctx, store, name, opts)
			if err != nil {
				return err
			}
			if built {
				report.MetadataBuilt = append(report.MetadataBuilt, name)
			}
			report.Removed = append(report.Removed, name)
			report.BytesFreed += freed
			return nil
		})
	}
	if _, err := engine.Execute(ctx, &p); err != nil {
		return report, err
	}
	return report, nil
}

// MetadataHistory lists the run's checkpoint names that still have
// metadata, whether or not their data survives — the comparable history
// after compaction.
func MetadataHistory(store *pfs.Store, runID string) ([]string, error) {
	names, err := store.List(runID + "/")
	if err != nil {
		return nil, err
	}
	var out []string
	for _, n := range names {
		base, ok := strings.CutSuffix(n, ".mrkl")
		if !ok {
			continue
		}
		if _, _, _, ok := ckpt.ParseName(base); ok {
			out = append(out, base)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		_, ii, ri, _ := ckpt.ParseName(out[i])
		_, ij, rj, _ := ckpt.ParseName(out[j])
		if ii != ij {
			return ii < ij
		}
		return ri < rj
	})
	return out, nil
}

// CompareTreesOnly performs stage 1 alone from saved metadata: it answers
// whether (and in which chunks) two checkpoints may differ beyond ε,
// without touching checkpoint data — so it works on compacted history.
// Result.Diffs stays empty; DiffCount is 0 when the trees fully match and
// -1 (unknown count) when candidate chunks exist. Its engine plan is
// setup → load-metadata → tree-diff → report.
func CompareTreesOnly(ctx context.Context, store *pfs.Store, nameA, nameB string, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	st := newPairState(store, nameA, nameB, opts, "merkle-meta")
	st.dataless = true
	var p engine.Plan
	p.Retry = opts.Retry
	setup := p.Add(engine.StepSetup, "setup", st.stepSetupVirtual)
	load := p.Add(engine.StepLoadMetadata, "load-metadata", st.stepLoadMetadata, setup)
	diff := p.Add(engine.StepTreeDiff, "tree-diff", st.stepTreeDiff, load)
	p.Add(engine.StepReport, "report", func(ctx context.Context, x *engine.Exec) error {
		if st.res.CandidateChunks > 0 {
			st.res.DiffCount = -1
		}
		return nil
	}, diff)
	return st.runPlan(ctx, &p)
}
