package compare

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/merkle"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/simclock"
)

// This file implements the paper's §5 future-work extension: online
// checkpoint compaction. Once a checkpoint's Merkle metadata exists, the
// boolean reproducibility question ("did anything move beyond ε, and in
// which chunks?") no longer needs the data — so old history can be
// compacted to metadata-only, freeing ~99.9 % of its storage while keeping
// every iteration comparable at chunk granularity.

// ErrCompacted is returned when a data-level comparison is attempted on a
// compacted checkpoint.
var ErrCompacted = errors.New("compare: checkpoint is compacted (metadata only)")

// CompactReport summarizes one compaction pass.
type CompactReport struct {
	// Removed lists the checkpoint files whose data was deleted.
	Removed []string
	// BytesFreed is the storage reclaimed.
	BytesFreed int64
	// MetadataBuilt lists checkpoints whose metadata had to be built
	// during the pass (it must exist before the data can be dropped).
	MetadataBuilt []string
}

// IsCompacted reports whether a checkpoint exists only as metadata.
func IsCompacted(store *pfs.Store, name string) bool {
	if _, err := store.Open(name); err == nil {
		return false
	}
	if _, err := store.Open(MetadataName(name)); err == nil {
		return true
	}
	return false
}

// CompactCheckpoint replaces one checkpoint with its metadata: metadata is
// built (with opts) if missing, then the data file is removed.
func CompactCheckpoint(store *pfs.Store, name string, opts Options) (built bool, freed int64, err error) {
	if _, _, _, lerr := LoadMetadata(store, name); lerr != nil {
		if _, _, err := BuildAndSave(store, name, opts); err != nil {
			return false, 0, fmt.Errorf("compact %s: build metadata: %w", name, err)
		}
		built = true
	}
	f, err := store.Open(name)
	if err != nil {
		return built, 0, fmt.Errorf("compact %s: %w", name, err)
	}
	size := f.Size()
	f.Close()
	if err := store.Remove(name); err != nil {
		return built, 0, err
	}
	return built, size, nil
}

// CompactHistory compacts every checkpoint of a run except the
// keepLatest most recent iterations (per rank). Metadata is built where
// missing so no comparability is lost.
func CompactHistory(store *pfs.Store, runID string, keepLatest int, opts Options) (*CompactReport, error) {
	if keepLatest < 0 {
		keepLatest = 0
	}
	names, err := ckpt.History(store, runID)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("compare: run %q has no checkpoints to compact", runID)
	}
	// Determine the iterations to keep: the highest keepLatest distinct
	// iteration numbers.
	iterSet := map[int]bool{}
	for _, n := range names {
		_, it, _, _ := ckpt.ParseName(n)
		iterSet[it] = true
	}
	iters := make([]int, 0, len(iterSet))
	for it := range iterSet {
		iters = append(iters, it)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(iters)))
	keep := map[int]bool{}
	for i := 0; i < keepLatest && i < len(iters); i++ {
		keep[iters[i]] = true
	}

	report := &CompactReport{}
	for _, n := range names {
		_, it, _, _ := ckpt.ParseName(n)
		if keep[it] {
			continue
		}
		built, freed, err := CompactCheckpoint(store, n, opts)
		if err != nil {
			return report, err
		}
		if built {
			report.MetadataBuilt = append(report.MetadataBuilt, n)
		}
		report.Removed = append(report.Removed, n)
		report.BytesFreed += freed
	}
	return report, nil
}

// MetadataHistory lists the run's checkpoint names that still have
// metadata, whether or not their data survives — the comparable history
// after compaction.
func MetadataHistory(store *pfs.Store, runID string) ([]string, error) {
	names, err := store.List(runID + "/")
	if err != nil {
		return nil, err
	}
	var out []string
	for _, n := range names {
		base, ok := strings.CutSuffix(n, ".mrkl")
		if !ok {
			continue
		}
		if _, _, _, ok := ckpt.ParseName(base); ok {
			out = append(out, base)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		_, ii, ri, _ := ckpt.ParseName(out[i])
		_, ij, rj, _ := ckpt.ParseName(out[j])
		if ii != ij {
			return ii < ij
		}
		return ri < rj
	})
	return out, nil
}

// CompareTreesOnly performs stage 1 alone from saved metadata: it answers
// whether (and in which chunks) two checkpoints may differ beyond ε,
// without touching checkpoint data — so it works on compacted history.
// Result.Diffs stays empty; DiffCount is 0 when the trees fully match and
// -1 (unknown count) when candidate chunks exist.
func CompareTreesOnly(store *pfs.Store, nameA, nameB string, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	res := &Result{Method: "merkle-meta"}
	sw := metrics.NewStopwatch()
	res.Breakdown.AddVirtual(metrics.PhaseSetup, opts.SetupVirtual)
	res.Breakdown.AddWall(metrics.PhaseSetup, sw.Lap())

	model := store.Model()
	sharers := store.Sharers()
	ma, costA, dwA, err := LoadMetadata(store, nameA)
	if err != nil {
		return nil, err
	}
	mb, costB, dwB, err := LoadMetadata(store, nameB)
	if err != nil {
		return nil, err
	}
	var cost pfs.Cost
	cost.Add(costA)
	cost.Add(costB)
	res.MetadataBytes = ma.Bytes()
	res.BytesRead = cost.TotalBytes()
	res.Breakdown.AddVirtual(metrics.PhaseRead, model.SerialReadTime(cost, sharers))
	res.Breakdown.AddWall(metrics.PhaseRead, sw.Lap())
	res.Breakdown.AddVirtual(metrics.PhaseDeserialize,
		simclock.BandwidthTime(cost.TotalBytes(), deserializeBytesPerSec))
	res.Breakdown.AddWall(metrics.PhaseDeserialize, dwA+dwB)

	if ma.Epsilon != opts.Epsilon || mb.Epsilon != opts.Epsilon {
		return nil, fmt.Errorf("compare: metadata ε (%g, %g) does not match requested ε %g",
			ma.Epsilon, mb.Epsilon, opts.Epsilon)
	}
	if len(ma.Fields) != len(mb.Fields) {
		return nil, fmt.Errorf("compare: metadata field counts differ: %d vs %d",
			len(ma.Fields), len(mb.Fields))
	}
	for fi := range ma.Fields {
		ta, tb := ma.Fields[fi].Tree, mb.Fields[fi].Tree
		start := opts.StartLevel
		if start < 0 {
			start = ta.DefaultStartLevel(opts.Exec.Workers())
		}
		chunks, _, err := merkle.Diff(ta, tb, start, opts.Exec)
		if err != nil {
			return nil, fmt.Errorf("compare: field %q: %w", ma.Fields[fi].Name, err)
		}
		res.TotalChunks += ta.NumChunks()
		res.CandidateChunks += len(chunks)
		res.TotalElements += ta.DataLen() / int64(ma.Fields[fi].DType.Size())
		res.CheckpointBytes += ta.DataLen()
	}
	res.Breakdown.AddWall(metrics.PhaseCompareTree, sw.Lap())
	if res.CandidateChunks > 0 {
		res.DiffCount = -1
	}
	return res, nil
}
