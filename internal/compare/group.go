package compare

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/aio"
	"repro/internal/cas"
	"repro/internal/ckpt"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/errbound"
	"repro/internal/merkle"
	"repro/internal/metrics"
	"repro/internal/murmur3"
	"repro/internal/pfs"
	"repro/internal/simclock"
	"repro/internal/stream"
)

// Topology selects which checkpoint pairs an N-run group comparison
// covers.
type Topology int

// Group-comparison topologies.
const (
	// TopologyStar compares every run against the baseline (N-1 pairs):
	// the reproducibility question "which runs diverge from the
	// reference?".
	TopologyStar Topology = iota + 1
	// TopologyAllPairs compares every run against every other
	// (N·(N-1)/2 pairs): the ensemble question "which runs diverge from
	// each other?".
	TopologyAllPairs
)

// String returns the topology's report name.
func (t Topology) String() string {
	switch t {
	case TopologyStar:
		return "star"
	case TopologyAllPairs:
		return "all-pairs"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// pairList enumerates the member-index pairs of a topology over n members
// (member 0 is the baseline).
func (t Topology) pairList(n int) ([][2]int, error) {
	var out [][2]int
	switch t {
	case TopologyStar:
		for i := 1; i < n; i++ {
			out = append(out, [2]int{0, i})
		}
	case TopologyAllPairs:
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				out = append(out, [2]int{i, j})
			}
		}
	default:
		return nil, fmt.Errorf("compare: unknown topology %d", int(t))
	}
	return out, nil
}

// PairList enumerates the member-index pairs the topology covers over n
// members (member 0 is the baseline) — exported so out-of-package
// planners (internal/shard) cover exactly the same pairs in the same
// order.
func (t Topology) PairList(n int) ([][2]int, error) { return t.pairList(n) }

// GroupPairReport is one pair's outcome within a group comparison.
type GroupPairReport struct {
	// A and B index GroupReport.Members.
	A, B int
	// NameA and NameB are the compared checkpoint names.
	NameA, NameB string
	// Result is the pair's comparison outcome (method "merkle-group").
	Result *Result
}

// GroupReport is the outcome of one N-run group comparison.
type GroupReport struct {
	// Members lists the compared checkpoints; index 0 is the baseline.
	Members []string
	// Topology is the pair coverage.
	Topology Topology
	// Pairs holds one report per compared pair, in topology order.
	Pairs []GroupPairReport
	// ReadOps and ReadBytes are the store-level PFS read operations and
	// bytes the whole group comparison issued (metadata + shared candidate
	// reads, after coalescing) — the quantity GroupCompare minimizes
	// versus sequential pairwise comparison.
	ReadOps, ReadBytes int64
	// BytesRead counts data + metadata bytes delivered to the comparator.
	BytesRead int64
	// MetadataBytes is the serialized metadata size per member.
	MetadataBytes int64
	// CheckpointBytes is the raw data size of ONE member's checkpoint.
	CheckpointBytes int64
	// PipelineVirtual is the overlapped virtual time of the shared
	// stage-2 read+verify pipeline.
	PipelineVirtual time.Duration
	// Breakdown is the group-level per-phase cost split.
	Breakdown metrics.Breakdown
	// Steps is the engine's per-step timing table.
	Steps metrics.StepSpans
	// ReadRetries counts stage-2 batch reads re-issued under the retry
	// policy; RingFallbacks counts member unions served by the fresh-ring
	// fallback after the shared ring reported closed.
	ReadRetries   int
	RingFallbacks int
	// MemberRoots holds each member's combined Merkle root
	// (Metadata.CombinedRoot), in Members order, for the verdict ledger.
	MemberRoots []murmur3.Digest
}

// Reproducible reports whether every compared pair cleanly matched within
// ε. A degraded pair (unread or unverifiable chunks) is never a clean
// match, so a degraded group is never reproducible.
func (g *GroupReport) Reproducible() bool {
	for i := range g.Pairs {
		if !g.Pairs[i].Result.Identical() {
			return false
		}
	}
	return true
}

// Degraded reports whether any pair completed on a degraded path.
func (g *GroupReport) Degraded() bool {
	for i := range g.Pairs {
		if g.Pairs[i].Result.Degraded {
			return true
		}
	}
	return false
}

// UnverifiedChunks totals the unverified candidate chunks across pairs.
func (g *GroupReport) UnverifiedChunks() int {
	total := 0
	for i := range g.Pairs {
		total += g.Pairs[i].Result.UnverifiedChunks
	}
	return total
}

// unionChunk is one (field, chunk) a member must be read at, with its
// file-offset range.
type unionChunk struct {
	field, chunk int
	off          int64 // chunk offset within the field
	n            int
}

// memberUnion is one member's deduplicated stage-2 read plan: the union of
// candidate chunks over every pair the member participates in, read once.
type memberUnion struct {
	entries []unionChunk
	pos     map[[2]int]int64 // (field, chunk) -> offset into buf
	buf     []byte
	reqs    []aio.ReadReq
}

// groupState carries one group comparison through its plan steps.
type groupState struct {
	store   *pfs.Store
	members []string
	topo    Topology
	opts    Options
	rep     *GroupReport

	readers  []*ckpt.Reader
	metas    []*Metadata
	selected func(string) bool
	pairIdx  [][2]int
	// pairCands[p][f] holds pair p's candidate chunks in field f
	// (nil when the field's trees match).
	pairCands [][][]int
	unions    []memberUnion

	startOps, startBytes int64
	totalElements        int64

	// chunkOK caches per-member (field, chunk) integrity verdicts under
	// Options.Degrade: 0 unchecked, 1 verified, 2 unverifiable.
	chunkOK    []map[[2]int]int8
	rereads    int
	rereadCost pfs.Cost

	// Differential mode (GroupCompareDiff): members are manifests over a
	// shared CAS pack, stage 2 is one loc-deduplicated pack read, and memo
	// replays land per pair at report time.
	diffMode  bool
	cs        *cas.Store
	mans      []*cas.Manifest
	pack      *pfs.File
	packUnion memberUnion
	// replays[pi][fi][ci] holds a pair's memo-replayed absolute diff
	// indices (possibly empty: proven identical within ε).
	replays []map[int]map[int][]int64
}

// GroupCompare compares N runs' checkpoints as one group: each member's
// metadata is loaded once, the tree diffs of every pair (by topology) run
// from those in-memory trees, the candidate-chunk sets of pairs sharing a
// member are merged, and each member's union is fetched with ONE
// deduplicated batched read — so an N-run comparison issues strictly fewer
// PFS read operations and bytes than N-1 (star) or N·(N-1)/2 (all-pairs)
// sequential pairwise comparisons, which re-read shared members per pair.
// Member 0 of the group is the baseline; topology selects star (baseline
// vs each run) or all-pairs coverage. Every member must have Merkle
// metadata at the options' ε and chunk size.
func GroupCompare(ctx context.Context, store *pfs.Store, baseline string, runs []string, topology Topology, opts Options) (*GroupReport, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("compare: group needs at least one run besides the baseline")
	}
	members := append([]string{baseline}, runs...)
	pairIdx, err := topology.pairList(len(members))
	if err != nil {
		return nil, err
	}
	st := &groupState{
		store:   store,
		members: members,
		topo:    topology,
		opts:    opts,
		pairIdx: pairIdx,
		rep:     &GroupReport{Members: members, Topology: topology},
	}
	var p engine.Plan
	p.Retry = opts.Retry
	open := p.Add(engine.StepSetup, "open-members", st.stepOpenMembers)
	load := p.Add(engine.StepLoadMetadata, "load-metadata", st.stepLoadMembers, open)
	diff := p.Add(engine.StepTreeDiff, "tree-diff", st.stepPairDiffs, load)
	merge := p.Add(engine.StepCoalesce, "merge-unions", st.stepMergeUnions, diff)
	verify := p.Add(engine.StepStreamVerify, "shared-read-verify", st.stepSharedVerify, merge)
	p.Add(engine.StepReport, "report", st.stepGroupReport, verify)
	erep, err := engine.Execute(ctx, &p)
	st.rep.Steps = erep.Steps
	if err != nil {
		return nil, err
	}
	return st.rep, nil
}

// stepOpenMembers opens every member once and validates schema parity.
func (st *groupState) stepOpenMembers(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	st.startOps, st.startBytes = st.store.ReadStats()
	st.readers = make([]*ckpt.Reader, len(st.members))
	for i, name := range st.members {
		r, _, err := ckpt.OpenReader(st.store, name)
		if err != nil {
			return err
		}
		x.CloseOnExit(r)
		st.readers[i] = r
		if i > 0 && !ckpt.SameSchema(st.readers[0].Meta(), r.Meta()) {
			return fmt.Errorf("compare: %s and %s have different schemas", st.members[0], name)
		}
	}
	st.rep.CheckpointBytes = st.readers[0].Meta().TotalBytes()
	st.rep.Breakdown.AddVirtual(metrics.PhaseSetup, st.opts.SetupVirtual)
	st.rep.Breakdown.AddWall(metrics.PhaseSetup, sw.Lap())
	x.AddVirtual(st.opts.SetupVirtual)
	return nil
}

// stepLoadMembers loads each member's metadata exactly once — the first
// saving versus sequential pairwise comparison, which loads a shared
// member's metadata once per pair.
func (st *groupState) stepLoadMembers(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	model := st.store.Model()
	sharers := st.store.Sharers()
	st.metas = make([]*Metadata, len(st.members))
	var metaCost pfs.Cost
	var deserWall time.Duration
	for i, name := range st.members {
		m, cost, dwall, err := LoadMetadata(ctx, st.store, name)
		if err != nil {
			return err
		}
		metaCost.Add(cost)
		deserWall += dwall
		st.metas[i] = m
		if i > 0 {
			if err := checkMetaPair(st.metas[0], m, st.opts.Epsilon); err != nil {
				return err
			}
		}
	}
	//lint:ignore epsflow ε settings are configuration, not computed values; they must match exactly
	if st.metas[0].Epsilon != st.opts.Epsilon {
		return fmt.Errorf("compare: metadata ε %g does not match requested ε %g",
			st.metas[0].Epsilon, st.opts.Epsilon)
	}
	st.rep.MemberRoots = make([]murmur3.Digest, len(st.metas))
	for i, m := range st.metas {
		st.rep.MemberRoots[i] = m.CombinedRoot()
	}
	st.rep.MetadataBytes = st.metas[0].Bytes()
	st.rep.BytesRead += metaCost.TotalBytes()
	readV := model.SerialReadTime(metaCost, sharers)
	deserV := simclock.BandwidthTime(metaCost.TotalBytes(), deserializeBytesPerSec)
	st.rep.Breakdown.AddVirtual(metrics.PhaseRead, readV)
	st.rep.Breakdown.AddWall(metrics.PhaseRead, sw.Lap())
	st.rep.Breakdown.AddVirtual(metrics.PhaseDeserialize, deserV)
	st.rep.Breakdown.AddWall(metrics.PhaseDeserialize, deserWall)
	x.AddVirtual(readV + deserV)

	fieldNames := make([]string, len(st.metas[0].Fields))
	for i := range fieldNames {
		fieldNames[i] = st.metas[0].Fields[i].Name
	}
	selected, err := st.opts.fieldFilter(fieldNames)
	if err != nil {
		return err
	}
	st.selected = selected
	for _, fm := range st.metas[0].Fields {
		if selected(fm.Name) {
			st.totalElements += fm.Tree.DataLen() / int64(fm.DType.Size())
		}
	}
	return nil
}

// stepPairDiffs runs stage 1 for every pair from the in-memory trees: no
// additional I/O regardless of pair count.
func (st *groupState) stepPairDiffs(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	exec := device.Cancelable{Done: ctx.Done(), Inner: st.opts.Exec}
	nFields := len(st.metas[0].Fields)
	st.pairCands = make([][][]int, len(st.pairIdx))
	st.rep.Pairs = make([]GroupPairReport, len(st.pairIdx))
	var treeVirtual time.Duration
	method := "merkle-group"
	if st.diffMode {
		method = "merkle-cas-group"
	}
	for pi, pr := range st.pairIdx {
		a, b := pr[0], pr[1]
		res := &Result{
			Method:          method,
			CheckpointBytes: st.rep.CheckpointBytes,
			MetadataBytes:   st.rep.MetadataBytes,
			TotalElements:   st.totalElements,
		}
		st.rep.Pairs[pi] = GroupPairReport{
			A: a, B: b, NameA: st.members[a], NameB: st.members[b], Result: res,
		}
		st.pairCands[pi] = make([][]int, nFields)
		for fi := 0; fi < nFields; fi++ {
			fm := st.metas[a].Fields[fi]
			if !st.selected(fm.Name) {
				continue
			}
			ta, tb := fm.Tree, st.metas[b].Fields[fi].Tree
			start := st.opts.StartLevel
			if start < 0 {
				start = ta.DefaultStartLevel(exec.Workers())
			}
			chunks, nodes, err := merkle.Diff(ta, tb, start, exec)
			if err != nil {
				return fmt.Errorf("compare: pair %s vs %s field %q: %w",
					st.members[a], st.members[b], fm.Name, err)
			}
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			res.TotalChunks += ta.NumChunks()
			res.CandidateChunks += len(chunks)
			if len(chunks) > 0 {
				st.pairCands[pi][fi] = chunks
			}
			levels := ta.Depth() - start + 1
			treeVirtual += time.Duration(levels)*st.opts.Device.KernelLaunch +
				simclock.BandwidthTime(nodes*16, float64(st.opts.Device.NodeHashesPerSec)*16)
		}
	}
	st.rep.Breakdown.AddVirtual(metrics.PhaseCompareTree, treeVirtual)
	st.rep.Breakdown.AddWall(metrics.PhaseCompareTree, sw.Lap())
	x.AddVirtual(treeVirtual)
	return nil
}

// stepMergeUnions merges the candidate-chunk sets of every pair sharing a
// member into one deduplicated, offset-sorted read plan per member — the
// second saving: a chunk two pairs both need from the same member is read
// once, not twice.
func (st *groupState) stepMergeUnions(ctx context.Context, x *engine.Exec) error {
	need := make([]map[[2]int]bool, len(st.members))
	for pi, pr := range st.pairIdx {
		for fi, chunks := range st.pairCands[pi] {
			for _, ci := range chunks {
				key := [2]int{fi, ci}
				for _, m := range []int{pr[0], pr[1]} {
					if need[m] == nil {
						need[m] = make(map[[2]int]bool)
					}
					need[m][key] = true
				}
			}
		}
	}
	st.unions = make([]memberUnion, len(st.members))
	for m := range st.members {
		if len(need[m]) == 0 {
			continue
		}
		u := &st.unions[m]
		u.entries = make([]unionChunk, 0, len(need[m]))
		for key := range need[m] {
			fi, ci := key[0], key[1]
			tree := st.metas[m].Fields[fi].Tree
			off, n := tree.ChunkRange(ci)
			u.entries = append(u.entries, unionChunk{field: fi, chunk: ci, off: off, n: n})
		}
		sort.Slice(u.entries, func(i, j int) bool {
			if u.entries[i].field != u.entries[j].field {
				return u.entries[i].field < u.entries[j].field
			}
			return u.entries[i].chunk < u.entries[j].chunk
		})
		var total int64
		for _, e := range u.entries {
			total += int64(e.n)
		}
		u.buf = make([]byte, total)
		u.pos = make(map[[2]int]int64, len(u.entries))
		u.reqs = make([]aio.ReadReq, 0, len(u.entries))
		var pos int64
		for _, e := range u.entries {
			base := st.readers[m].FieldFileOffset(e.field)
			u.pos[[2]int{e.field, e.chunk}] = pos
			u.reqs = append(u.reqs, aio.ReadReq{
				Off: base + e.off, Len: e.n, Buf: u.buf[pos : pos+int64(e.n)], Tag: len(u.reqs),
			})
			pos += int64(e.n)
		}
	}
	return nil
}

// readMember fetches one member's union solo, retrying Transient errors
// under the options' policy and falling back to a fresh ring when the
// shared ring reports closed. It returns the I/O virtual time including
// backoff.
func (st *groupState) readMember(ctx context.Context, m int) (time.Duration, error) {
	u := &st.unions[m]
	file := st.readers[m].File()
	var io time.Duration
	attempts := 0
	backoff, err := st.opts.Retry.Do(ctx, func(attempt int) error {
		attempts = attempt + 1
		var rerr error
		_, io, rerr = st.opts.Backend.ReadBatch(ctx, file, u.reqs)
		return rerr
	})
	st.rep.ReadRetries += attempts - 1
	io += backoff
	if err != nil && errors.Is(err, aio.ErrRingClosed) {
		leg := aio.Legacy{}
		var lio time.Duration
		_, lio, err = leg.ReadBatch(ctx, file, u.reqs)
		io += lio
		if err == nil {
			st.rep.RingFallbacks++
		}
	}
	return io, err
}

// stepSharedVerify runs the shared stage 2: each member's union is fetched
// with one batched read (consecutive members paired through the backend's
// overlapped pair path), and each pair is verified element-wise from the
// cached union buffers as soon as both of its members have landed.
//
// Reads climb the degradation ladder: Transient errors retry with backoff
// on the virtual clock, a failed paired read retries each member solo, a
// closed shared ring falls back to a fresh ring, and — with Options.Degrade
// set — a member whose union still cannot be read drops to a metadata-only
// verdict for every pair it touches instead of failing the plan.
func (st *groupState) stepSharedVerify(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	pairRd, _ := st.opts.Backend.(aio.PairReader)

	// Members that need reading, in index order.
	var toRead []int
	for m := range st.unions {
		if len(st.unions[m].reqs) > 0 {
			toRead = append(toRead, m)
		}
	}

	hashers := make(map[errbound.DType]*errbound.Hasher)
	loaded := make([]bool, len(st.members))
	failed := make([]bool, len(st.members))
	comparedPair := make([]bool, len(st.pairIdx))
	vp := stream.NewVirtualPipeline(st.opts.Depth)

	// compareReady verifies every not-yet-compared pair whose members are
	// both loaded, returning the compute virtual time of the batch.
	compareReady := func() (time.Duration, error) {
		var comp time.Duration
		for pi, pr := range st.pairIdx {
			if comparedPair[pi] || !st.pairHasCands(pi) {
				continue
			}
			a, b := pr[0], pr[1]
			if !loaded[a] || !loaded[b] {
				continue
			}
			comparedPair[pi] = true
			c, err := st.verifyPair(ctx, pi, hashers)
			if err != nil {
				return comp, err
			}
			comp += c
		}
		return comp, nil
	}

	for bi := 0; bi < len(toRead); bi += 2 {
		if err := ctx.Err(); err != nil {
			return err
		}
		var io time.Duration
		ma := toRead[bi]
		mb := -1
		if bi+1 < len(toRead) {
			mb = toRead[bi+1]
		}
		if mb >= 0 && pairRd != nil {
			ua, ub := &st.unions[ma], &st.unions[mb]
			attempts := 0
			backoff, err := st.opts.Retry.Do(ctx, func(attempt int) error {
				attempts = attempt + 1
				var rerr error
				_, io, rerr = pairRd.ReadBatchPair(ctx,
					st.readers[ma].File(), st.readers[mb].File(), ua.reqs, ub.reqs)
				return rerr
			})
			st.rep.ReadRetries += attempts - 1
			io += backoff
			if err == nil {
				loaded[ma], loaded[mb] = true, true
				st.rep.BytesRead += int64(len(ua.buf)) + int64(len(ub.buf))
			}
			// A failed paired read falls through to the solo rung below:
			// one bad member must not take down both.
		}
		for _, m := range []int{ma, mb} {
			if m < 0 || loaded[m] {
				continue
			}
			mio, err := st.readMember(ctx, m)
			io += mio
			switch {
			case err == nil:
				loaded[m] = true
				st.rep.BytesRead += int64(len(st.unions[m].buf))
			case st.opts.Degrade && ctx.Err() == nil:
				failed[m] = true
			default:
				return fmt.Errorf("compare: group verification: %w", err)
			}
		}
		comp, err := compareReady()
		if err != nil {
			return err
		}
		vp.Advance(io, comp)
	}
	// Pairs touching a member whose union never landed degrade to the
	// metadata-only verdict: stage 1 proved which chunks could diverge;
	// none of them were verified.
	for pi, pr := range st.pairIdx {
		if comparedPair[pi] || !st.pairHasCands(pi) {
			continue
		}
		if failed[pr[0]] || failed[pr[1]] {
			res := st.rep.Pairs[pi].Result
			res.Degraded = true
			res.UnverifiedChunks += res.CandidateChunks
		}
	}
	st.foldGroupRereads(x)
	st.rep.PipelineVirtual = vp.Total()
	st.rep.Breakdown.AddVirtual(metrics.PhaseCompareDirect, vp.Total())
	st.rep.Breakdown.AddWall(metrics.PhaseCompareDirect, sw.Lap())
	x.AddVirtual(vp.Total())
	return nil
}

// foldGroupRereads prices the integrity re-reads issued by verifyPair into
// the report and the plan clock.
func (st *groupState) foldGroupRereads(x *engine.Exec) {
	if st.rereadCost == (pfs.Cost{}) {
		return
	}
	st.rep.BytesRead += st.rereadCost.TotalBytes()
	v := st.store.Model().SerialReadTime(st.rereadCost, st.store.Sharers())
	st.rep.Breakdown.AddVirtual(metrics.PhaseRead, v)
	x.AddVirtual(v)
	st.rereadCost = pfs.Cost{}
}

// pairHasCands reports whether pair pi has any candidate chunks.
func (st *groupState) pairHasCands(pi int) bool {
	for _, chunks := range st.pairCands[pi] {
		if len(chunks) > 0 {
			return true
		}
	}
	return false
}

// verifyPair compares one pair's candidate chunks from the two members'
// cached union buffers, filling the pair's Result, and returns the priced
// compute time of its verification batch.
func (st *groupState) verifyPair(ctx context.Context, pi int, hashers map[errbound.DType]*errbound.Hasher) (time.Duration, error) {
	pr := st.pairIdx[pi]
	a, b := pr[0], pr[1]
	res := st.rep.Pairs[pi].Result
	ua, ub := &st.unions[a], &st.unions[b]
	var pairBytes int64
	comp := st.opts.Device.KernelLaunch
	for fi, chunks := range st.pairCands[pi] {
		if len(chunks) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return comp, err
		}
		fm := st.metas[a].Fields[fi]
		hasher := hashers[fm.DType]
		if hasher == nil {
			h, err := st.opts.hasherFor(fm.DType)
			if err != nil {
				return comp, err
			}
			hashers[fm.DType] = h
			hasher = h
		}
		tree := fm.Tree
		eltSize := int64(fm.DType.Size())
		chunkElems := int64(tree.ChunkSize()) / eltSize
		var indices []int64
		changed := 0
		for _, ci := range chunks {
			key := [2]int{fi, ci}
			_, n := tree.ChunkRange(ci)
			pa := ua.pos[key]
			pb := ub.pos[key]
			da := ua.buf[pa : pa+int64(n)]
			db := ub.buf[pb : pb+int64(n)]
			if st.opts.Degrade {
				// Integrity rung: each side's union bytes must re-hash to
				// that member's stored leaf. An unverifiable side excludes
				// the chunk from diffing — untrusted bytes must produce
				// neither a false divergence nor a false match.
				if !st.chunkGood(a, fi, ci, hasher) || !st.chunkGood(b, fi, ci, hasher) {
					res.Degraded = true
					res.UnverifiedChunks++
					pairBytes += int64(n)
					continue
				}
			}
			idx, _, err := hasher.CompareSlices(nil, da, db)
			if err != nil {
				return comp, err
			}
			if st.diffMode && st.opts.Memo != nil {
				st.opts.Memo.insert(st.mans[a].Fields[fi].Digests[ci],
					st.mans[b].Fields[fi].Digests[ci], fm.DType, idx)
			}
			if len(idx) > 0 {
				changed++
				base := int64(ci) * chunkElems
				for _, e := range idx {
					indices = append(indices, base+e)
				}
			}
			pairBytes += int64(n)
		}
		res.ChangedChunks += changed
		if len(indices) > 0 {
			sort.Slice(indices, func(i, j int) bool { return indices[i] < indices[j] })
			res.Diffs = append(res.Diffs, FieldDiff{Field: fm.Name, Indices: indices})
			res.DiffCount += int64(len(indices))
		}
	}
	comp += st.opts.Device.TransferTime(2*pairBytes) + st.opts.Device.CompareRateTime(pairBytes)
	return comp, nil
}

// chunkGood verifies one member's cached union bytes for a (field, chunk)
// against that member's leaf hash, re-reading the chunk once into the
// union buffer on mismatch (an in-flight flip re-reads clean and every
// pair sharing the chunk sees the recovered bytes; media corruption
// repeats). Verdicts are cached so shared chunks are checked once.
func (st *groupState) chunkGood(m, fi, ci int, hasher *errbound.Hasher) bool {
	if st.chunkOK == nil {
		st.chunkOK = make([]map[[2]int]int8, len(st.members))
	}
	if st.chunkOK[m] == nil {
		st.chunkOK[m] = make(map[[2]int]int8)
	}
	key := [2]int{fi, ci}
	if v := st.chunkOK[m][key]; v != 0 {
		return v == 1
	}
	tree := st.metas[m].Fields[fi].Tree
	want := tree.Leaf(ci)
	off, n := tree.ChunkRange(ci)
	u := &st.unions[m]
	pos := u.pos[key]
	data := u.buf[pos : pos+int64(n)]
	ok := false
	if got, err := hasher.HashChunk(data); err == nil && got == want {
		ok = true
	} else {
		// Re-read from the chunk's home: the member's container file, or
		// its extent in the shared pack in differential mode.
		file, base := (*pfs.File)(nil), int64(0)
		if st.diffMode {
			file, base = st.pack, st.mans[m].Fields[fi].Locs[ci].Off-off
		} else {
			file, base = st.readers[m].File(), st.readers[m].FieldFileOffset(fi)
		}
		nr, cost, rerr := file.ReadAt(data, base+off)
		st.rereads++
		st.rereadCost.Add(cost)
		if rerr == nil && nr == n {
			if got, herr := hasher.HashChunk(data); herr == nil && got == want {
				ok = true
			}
		}
	}
	if ok {
		st.chunkOK[m][key] = 1
	} else {
		st.chunkOK[m][key] = 2
	}
	return ok
}

// stepGroupReport finalizes store-level I/O accounting.
func (st *groupState) stepGroupReport(ctx context.Context, x *engine.Exec) error {
	ops, bytes := st.store.ReadStats()
	st.rep.ReadOps = ops - st.startOps
	st.rep.ReadBytes = bytes - st.startBytes
	return nil
}
