// Package compare implements the checkpoint-comparison runtime, the
// paper's primary contribution: error-bounded Merkle metadata construction
// at checkpoint time, and the two-stage comparison (pruned tree diff, then
// streamed element-wise verification of candidate chunks) that identifies
// every intermediate value differing between two runs by more than ε.
// The Direct and AllClose baselines of §3.2 live here too, sharing the
// same substrates so comparisons are apples-to-apples.
package compare

import (
	"fmt"
	"math"
	"time"

	"repro/internal/aio"
	"repro/internal/device"
	"repro/internal/errbound"
	"repro/internal/retry"
)

// Options parameterizes metadata construction and comparison.
type Options struct {
	// Epsilon is the absolute error bound ε; values differing by more
	// than ε count as divergent. Required.
	Epsilon float64
	// ChunkSize is the hashing/verification granularity in bytes
	// (default 64 KiB; the paper sweeps 4 KiB–512 KiB).
	ChunkSize int
	// Exec runs the data-parallel kernels. Production callers get the
	// service plane's persistent pool injected here (internal/service
	// normalizes options before they reach this package); direct calls
	// that leave it nil fall back to a package-private persistent pool
	// with the same shape (GOMAXPROCS workers, started once, reused
	// across every tree level and compare batch). Pass device.Serial{}
	// for the single-threaded "CPU" backend, or a private
	// device.NewPool/device.NewParallel to bound parallelism per
	// comparison.
	Exec device.Executor
	// Device prices kernels and transfers (default: GPU model).
	Device device.Model
	// Backend performs scattered reads. Production callers get the
	// service plane's persistent io_uring-style engine injected here
	// (wrapped in aio.Coalescing — see CoalesceMaxGap); direct calls
	// that leave it nil fall back to a package-private persistent ring
	// of the same shape (deep queue, ring workers started once and
	// reused across every batch), identically wrapped. An explicitly
	// set Backend is used as-is, never wrapped.
	Backend aio.Backend
	// SliceBytes is the streaming pipeline slice size (default 8 MiB).
	SliceBytes int
	// Depth is the verification pipeline depth: buffer sets in flight
	// between the I/O producer and the compute consumer (default 2,
	// classic double buffering; 1 serializes I/O against compute).
	Depth int
	// CoalesceMaxGap controls read coalescing on the default backend: the
	// largest hole in bytes bridged between two candidate chunks (0
	// selects the 16 KiB default; negative disables coalescing). Ignored
	// when Backend is set explicitly.
	CoalesceMaxGap int
	// StartLevel is the tree-diff BFS start level; negative selects the
	// mid-tree heuristic (default).
	StartLevel int
	// SetupVirtual is the fixed setup cost charged per comparison on the
	// virtual clock (buffer allocation, device context); default 50 ms.
	SetupVirtual time.Duration
	// Fields optionally restricts the comparison to the named checkpoint
	// fields (nil compares everything). Unknown names are an error.
	Fields []string
	// RelEpsilon is the relative tolerance term of the AllClose baseline
	// (numpy's rtol: close when |a-b| <= ε + RelEpsilon·|b|). The paper
	// evaluates with rtol=0 and the Merkle/Direct methods ignore it —
	// relative bounds cannot be grid-quantized globally.
	RelEpsilon float64
	// Retry is the storage retry policy: engine steps and stage-2 batch
	// reads re-issue on Transient-classified errors with capped
	// exponential backoff (deterministic jitter, priced on the virtual
	// clock — never slept). The zero value selects retry.Default()
	// (3 attempts); a negative MaxAttempts disables retries.
	Retry retry.Policy
	// Memo, when set, carries stage-2 verdicts across differential (CAS)
	// comparisons: a chunk-pair verdict proven once for a digest pair is
	// replayed on later CompareDiff/GroupCompareDiff calls instead of
	// re-reading and re-comparing. Only the differential planners consult
	// it (a digest names a unique byte string only inside the shared
	// store), and its ε must match Epsilon. Safe for concurrent use.
	Memo *CASMemo
	// Degrade enables the degradation ladder for Merkle-path comparisons:
	// a stage-2 read that exhausts its retries degrades the affected pair
	// to a metadata-only verdict instead of failing the plan, and a chunk
	// whose bytes fail leaf-hash integrity verification gets one re-read
	// before being counted Unverified. Degraded results are never
	// reported as clean matches — Result.Identical and
	// GroupReport.Reproducible return false. Default false: any storage
	// error (after retries) fails the comparison.
	Degrade bool
}

// fieldFilter resolves the Fields option against the available field
// names: it returns a predicate and an error naming any unknown field.
func (o Options) fieldFilter(available []string) (func(string) bool, error) {
	if len(o.Fields) == 0 {
		return func(string) bool { return true }, nil
	}
	have := make(map[string]bool, len(available))
	for _, n := range available {
		have[n] = true
	}
	want := make(map[string]bool, len(o.Fields))
	for _, n := range o.Fields {
		if !have[n] {
			return nil, fmt.Errorf("compare: field %q not in checkpoint (have %v)", n, available)
		}
		want[n] = true
	}
	return func(name string) bool { return want[name] }, nil
}

// withDefaults returns a copy with unset fields defaulted.
func (o Options) withDefaults() Options {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 64 << 10
	}
	if o.Exec == nil {
		o.Exec = fallbackExec()
	}
	//lint:ignore epsflow zero is the unset sentinel here, never a computed value
	if o.Device.HashBytesPerSec == 0 {
		o.Device = device.GPUModel()
	}
	if o.Backend == nil {
		// Deep queue: Lustre-style PFS sustain high IOPS when many
		// scattered reads are in flight, which is what io_uring enables.
		// The persistent engine is reused across comparisons, and
		// clustered candidate chunks are coalesced into fewer PFS ops
		// unless the caller opts out with a negative CoalesceMaxGap.
		if o.CoalesceMaxGap < 0 {
			o.Backend = fallbackBackend()
		} else {
			o.Backend = aio.NewCoalescing(fallbackBackend(), o.CoalesceMaxGap)
		}
	}
	if o.SliceBytes <= 0 {
		o.SliceBytes = 8 << 20
	}
	if o.Depth < 1 {
		o.Depth = 2
	}
	if o.StartLevel == 0 {
		o.StartLevel = -1
	}
	if o.SetupVirtual == 0 {
		o.SetupVirtual = 50 * time.Millisecond
	}
	o.Retry = o.retryPolicy()
	return o
}

// retryPolicy resolves the Retry knob on its documented semantics — zero
// value selects retry.Default(), negative MaxAttempts disables retries —
// without defaulting the rest of the options (planners that delegate
// per-pair defaulting still need the policy for their own engine plan).
func (o Options) retryPolicy() retry.Policy {
	switch {
	case o.Retry.MaxAttempts == 0:
		return retry.Default()
	case o.Retry.MaxAttempts < 0:
		return retry.Policy{}
	}
	return o.Retry
}

// validate checks the required fields after defaulting.
func (o Options) validate() error {
	if !(o.Epsilon > 0) || math.IsInf(o.Epsilon, 0) {
		return fmt.Errorf("compare: epsilon %v must be positive and finite", o.Epsilon)
	}
	if err := o.Device.Validate(); err != nil {
		return err
	}
	return nil
}

// hasherFor builds the error-bounded hasher for a field dtype.
func (o Options) hasherFor(dtype errbound.DType) (*errbound.Hasher, error) {
	return errbound.NewHasher(dtype, o.Epsilon)
}

// Normalize validates the options and returns a copy with unset fields
// defaulted — the same normalization every compare entry point applies.
// Exported for planners outside this package (internal/shard) that must
// agree bit-for-bit with the single-node paths on chunking, ε, and field
// selection.
func (o Options) Normalize() (Options, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return Options{}, err
	}
	return o, nil
}

// HasherFor builds the error-bounded hasher for a field dtype using the
// options' ε. Exported for out-of-package planners (internal/shard).
func (o Options) HasherFor(dtype errbound.DType) (*errbound.Hasher, error) {
	return o.hasherFor(dtype)
}

// FieldFilter resolves the Fields option against the available field
// names: it returns a predicate and an error naming any unknown field.
// Exported for out-of-package planners (internal/shard).
func (o Options) FieldFilter(available []string) (func(string) bool, error) {
	return o.fieldFilter(available)
}
