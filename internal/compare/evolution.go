package compare

import (
	"context"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/engine"
	"repro/internal/pfs"
)

// EvolutionPoint is one consecutive-iteration self-comparison within a
// single run.
type EvolutionPoint struct {
	// FromIter and ToIter are the compared iterations.
	FromIter, ToIter int
	// Rank is the process rank.
	Rank int
	// CandidateChunks counts chunks whose ε-hashes changed between the
	// two iterations; TotalChunks is the denominator.
	CandidateChunks, TotalChunks int
}

// ChangedFraction returns the chunk-level rate of change.
func (p EvolutionPoint) ChangedFraction() float64 {
	if p.TotalChunks == 0 {
		return 0
	}
	return float64(p.CandidateChunks) / float64(p.TotalChunks)
}

// EvolutionReport profiles how fast ONE run's state evolves relative to ε:
// each point tree-diffs two consecutive checkpoints of the same rank. The
// paper's conclusions suggest using the low cost of tree construction "to
// determine when to take checkpoints or perform more costly analyses" —
// this report is that signal: a run whose consecutive checkpoints stop
// changing is checkpointing too often (or has converged), one that changes
// everywhere is checkpointing too rarely.
type EvolutionReport struct {
	// RunID is the profiled run.
	RunID string
	// Points are ordered by rank then iteration.
	Points []EvolutionPoint
}

// Evolution builds the report from saved metadata only (it works on
// compacted history). Every checkpoint of the run must have metadata at
// the options' ε and chunk size. The planner lists the history up front
// and emits one tree-diff step per consecutive pair, so cancellation
// lands on a pair boundary.
func Evolution(ctx context.Context, store *pfs.Store, runID string, opts Options) (*EvolutionReport, error) {
	names, err := MetadataHistory(store, runID)
	if err != nil {
		return nil, err
	}
	if len(names) < 2 {
		return nil, fmt.Errorf("compare: run %q needs >= 2 checkpoints with metadata, has %d", runID, len(names))
	}
	// Group by rank, ordered by iteration (MetadataHistory sorts by
	// iteration then rank).
	byRank := map[int][]string{}
	ranks := []int{}
	for _, n := range names {
		_, _, rank, _ := ckpt.ParseName(n)
		if _, ok := byRank[rank]; !ok {
			ranks = append(ranks, rank)
		}
		byRank[rank] = append(byRank[rank], n)
	}
	report := &EvolutionReport{RunID: runID}
	var p engine.Plan
	p.Retry = opts.retryPolicy()
	for _, rank := range ranks {
		rank := rank
		seq := byRank[rank]
		for i := 1; i < len(seq); i++ {
			from, to := seq[i-1], seq[i]
			p.Add(engine.StepTreeDiff, fmt.Sprintf("pair:%s->%s", from, to),
				func(ctx context.Context, x *engine.Exec) error {
					res, err := CompareTreesOnly(ctx, store, from, to, opts)
					if err != nil {
						return fmt.Errorf("compare: evolution %s -> %s: %w", from, to, err)
					}
					_, fromIter, _, _ := ckpt.ParseName(from)
					_, toIter, _, _ := ckpt.ParseName(to)
					report.Points = append(report.Points, EvolutionPoint{
						FromIter:        fromIter,
						ToIter:          toIter,
						Rank:            rank,
						CandidateChunks: res.CandidateChunks,
						TotalChunks:     res.TotalChunks,
					})
					return nil
				})
		}
	}
	if _, err := engine.Execute(ctx, &p); err != nil {
		return nil, err
	}
	return report, nil
}
