package compare

import (
	"sync"

	"repro/internal/aio"
	"repro/internal/device"
)

// Production traffic reaches this package through internal/service: the
// plane injects its own persistent pool and ring into Options before
// normalization, and the svcown lint rule keeps process-wide resource
// acquisition (aio.Default / device.Default) out of every other package.
// Direct planner calls — tests, benchmarks, tools driving compare.*
// without a plane — may still leave Exec/Backend nil, and get the
// package-private lazy fallbacks below: the same shape as the plane's
// defaults (GOMAXPROCS pool workers; a 256-deep ring with 4 workers, the
// depth the overlap pricing model keys on), so a direct call stays bit-
// and price-identical to a planned one. They start on first use and live
// for the process; tests that count goroutines warm them up before
// taking a baseline, exactly as they did for the old singletons.
var (
	fallbackOnce sync.Once
	fallbackPool *device.Pool
	fallbackRing *aio.Uring
)

// ensureFallback lazily builds both fallback resources together so a
// comparison never observes one without the other.
func ensureFallback() {
	fallbackOnce.Do(func() {
		fallbackPool = device.NewPool(0)
		fallbackRing = aio.NewUring(256, 4)
	})
}

// fallbackExec returns the package fallback executor for nil
// Options.Exec.
func fallbackExec() device.Executor {
	ensureFallback()
	return fallbackPool
}

// fallbackBackend returns the package fallback ring for nil
// Options.Backend.
func fallbackBackend() *aio.Uring {
	ensureFallback()
	return fallbackRing
}
