package compare

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cas"
	"repro/internal/engine"
	"repro/internal/errbound"
	"repro/internal/metrics"
	"repro/internal/murmur3"
	"repro/internal/pfs"
	"repro/internal/simclock"
)

// This file holds the differential (CAS-backed) comparison planner. A
// differentially captured checkpoint has no container file: its leaf
// manifest maps every chunk to an extent in the shared content-addressed
// pack. That changes both stages of the comparison:
//
//   - stage 1 is unchanged (the Merkle metadata is built from the same
//     digests the manifest records), but
//   - between stage 1 and stage 2 a pruning pass removes candidate chunks
//     whose verdict the store already proves: two sides resolving to the
//     same pack extent are identical by construction, and a digest pair
//     whose element-wise verdict was established by an earlier
//     differential comparison replays from the memo — zero read ops.
//   - stage 2 streams the surviving chunks from the pack (one file, both
//     sides), so the coalescer merges extents across sides.
//
// Soundness hinges on full-digest keying: inside one CAS a digest names
// exactly one stored byte string, so any function of the chunk contents —
// including CompareSlices' divergent-index list — is a function of the
// digest pair. The casprune lint rule guards the "full" part.

// memoKey identifies a memoized stage-2 verdict: the (ordered) digest
// pair and the element type the comparison ran under. ε is pinned by the
// memo itself.
type memoKey struct {
	a, b  murmur3.Digest
	dtype errbound.DType
}

// CASMemo memoizes stage-2 verdicts of differential comparisons: for a
// pair of CAS representatives, the chunk-relative divergent element
// indices (possibly empty — identical-within-ε is a verdict too, and the
// common one). Share one memo across the comparisons of a run sequence to
// skip re-verifying digest pairs that persist across iterations.
type CASMemo struct {
	eps float64

	mu sync.Mutex
	m  map[memoKey][]int64
}

// NewCASMemo returns an empty memo pinned to the comparison ε.
func NewCASMemo(epsilon float64) *CASMemo {
	return &CASMemo{eps: epsilon, m: make(map[memoKey][]int64)}
}

// Epsilon returns the ε the memo's verdicts were established under.
func (m *CASMemo) Epsilon() float64 { return m.eps }

// Len returns the number of memoized verdicts.
func (m *CASMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}

// lookup returns the memoized chunk-relative divergence indices for a
// digest pair. The returned slice is shared and must not be mutated.
func (m *CASMemo) lookup(a, b murmur3.Digest, dtype errbound.DType) ([]int64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	idx, ok := m.m[memoKey{a: a, b: b, dtype: dtype}]
	return idx, ok
}

// insert records a verdict (idx may be empty: provably identical within ε).
func (m *CASMemo) insert(a, b murmur3.Digest, dtype errbound.DType, idx []int64) {
	cp := make([]int64, len(idx))
	copy(cp, idx)
	m.mu.Lock()
	m.m[memoKey{a: a, b: b, dtype: dtype}] = cp
	m.mu.Unlock()
}

// checkMemo validates a memo against the comparison options.
func checkMemo(memo *CASMemo, eps float64) error {
	if memo == nil {
		return nil
	}
	//lint:ignore floatcmp memoized verdicts are valid only at the exact ε they were established under
	if memo.eps != eps {
		return fmt.Errorf("compare: memo built for ε=%g, comparison at ε=%g", memo.eps, eps)
	}
	return nil
}

// CompareDiff runs the two-stage comparison of one differentially
// captured checkpoint pair: stage 1 over the saved Merkle metadata as in
// CompareMerkle, then a CAS pruning pass (extent equality and memoized
// verdicts remove candidate chunks without any read), then stage 2
// streaming the survivors' representative bytes from the shared pack.
// Both checkpoints must have been captured into cs with manifests on the
// given store. The pruning composes with the degradation ladder: a pruned
// chunk is proven, so it can never be counted Unverified.
func CompareDiff(ctx context.Context, store *pfs.Store, cs *cas.Store, nameA, nameB string, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := checkMemo(opts.Memo, opts.Epsilon); err != nil {
		return nil, err
	}
	st := newPairState(store, nameA, nameB, opts, "merkle-cas")
	st.diffMode = true
	st.cs = cs
	var p engine.Plan
	p.Retry = opts.Retry
	open := p.Add(engine.StepSetup, "open-manifests", st.stepOpenDiff)
	load := p.Add(engine.StepLoadMetadata, "load-metadata", st.stepLoadMetadata, open)
	diff := p.Add(engine.StepTreeDiff, "tree-diff", st.stepTreeDiff, load)
	prune := p.Add(engine.StepTreeDiff, "cas-prune", st.stepCASPrune, diff)
	coal := p.Add(engine.StepCoalesce, "assemble-batches", st.stepAssemblePairs, prune)
	verify := p.Add(engine.StepStreamVerify, "stream-verify", st.stepStreamVerify, coal)
	p.Add(engine.StepReport, "report", st.stepReportMerkle, verify)
	return st.runPlan(ctx, &p)
}

// stepOpenDiff loads and validates both leaf manifests and opens the
// shared pack on the cleanup chain — the differential counterpart of
// stepOpenPair.
func (st *pairState) stepOpenDiff(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	manA, costA, err := cas.LoadManifest(ctx, st.store, st.nameA)
	if err != nil {
		return err
	}
	manB, costB, err := cas.LoadManifest(ctx, st.store, st.nameB)
	if err != nil {
		return err
	}
	if !cas.SameSchema(manA, manB) {
		return fmt.Errorf("compare: manifests of %s and %s have different schemas", st.nameA, st.nameB)
	}
	//lint:ignore floatcmp,epsflow manifest digests are only comparable at the exact ε they were captured with
	if manA.Epsilon != st.opts.Epsilon {
		return fmt.Errorf("compare: manifest ε %g does not match requested ε %g", manA.Epsilon, st.opts.Epsilon)
	}
	pack, err := st.cs.Pack()
	if err != nil {
		return err
	}
	x.CloseOnExit(pack)
	st.manA, st.manB, st.pack = manA, manB, pack
	st.res.CheckpointBytes = manA.TotalBytes()

	var c pfs.Cost
	c.Add(costA)
	c.Add(costB)
	st.res.BytesRead += c.TotalBytes()
	readV := st.store.Model().SerialReadTime(c, st.store.Sharers())
	deserV := simclock.BandwidthTime(c.TotalBytes(), deserializeBytesPerSec)
	st.res.Breakdown.AddVirtual(metrics.PhaseRead, readV)
	st.res.Breakdown.AddVirtual(metrics.PhaseDeserialize, deserV)
	st.res.Breakdown.AddVirtual(metrics.PhaseSetup, st.opts.SetupVirtual)
	st.res.Breakdown.AddWall(metrics.PhaseSetup, sw.Lap())
	x.AddVirtual(st.opts.SetupVirtual + readV + deserV)
	return nil
}

// stepCASPrune removes candidate chunks whose verdict the store proves
// without reading: extent equality (both sides deduplicated to the same
// representative — identical by construction) and memoized digest-pair
// verdicts (replayed into the divergence lists). Pruned chunks cost zero
// stage-2 read ops and are excluded from the degradation ladder's
// unverified accounting — their verdict is proven, not skipped.
func (st *pairState) stepCASPrune(ctx context.Context, x *engine.Exec) error {
	if !st.diffMode {
		return nil
	}
	memo := st.opts.Memo
	kept := st.candidates[:0]
	for _, fc := range st.candidates {
		fA := &st.manA.Fields[fc.field]
		fB := &st.manB.Fields[fc.field]
		chunkElems := int64(st.manA.ChunkSize) / int64(fA.DType.Size())
		keptChunks := fc.chunks[:0]
		for _, ci := range fc.chunks {
			if fA.Locs[ci] == fB.Locs[ci] {
				// Same representative extent: provably identical, and a
				// pure stage-1 false positive (possible only when the
				// metadata trees predate the shared capture).
				st.res.CASPrunedChunks++
				continue
			}
			if memo != nil {
				if idx, ok := memo.lookup(fA.Digests[ci], fB.Digests[ci], fA.DType); ok {
					st.res.CASPrunedChunks++
					st.replayVerdict(fc.field, ci, int64(ci)*chunkElems, idx)
					continue
				}
			}
			keptChunks = append(keptChunks, ci)
		}
		if len(keptChunks) > 0 {
			kept = append(kept, fieldCandidates{field: fc.field, chunks: keptChunks})
		}
	}
	st.candidates = kept
	return nil
}

// replayVerdict lands a memoized chunk verdict in the result exactly as a
// stage-2 verification of the same pair would have.
func (st *pairState) replayVerdict(field, chunk int, baseElem int64, idx []int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, e := range idx {
		st.fieldDiffs[field] = append(st.fieldDiffs[field], baseElem+e)
	}
	if len(idx) > 0 {
		if st.changed[field] == nil {
			st.changed[field] = make(map[int]bool)
		}
		st.changed[field][chunk] = true
	}
}
