package compare

import (
	"context"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/errbound"
	"repro/internal/pfs"
	"repro/internal/synth"
)

// evolutionEnv captures a run whose state changes progressively more per
// iteration.
func evolutionEnv(t *testing.T, opts Options) *pfs.Store {
	t.Helper()
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	const elems = 32 << 10
	fields := []ckpt.FieldSpec{{Name: "x", DType: errbound.Float32, Count: elems}}
	base := synth.FieldF32(elems, 1)
	state := base
	for _, step := range []struct {
		iter      int
		untouched float64
	}{{10, 1.0}, {20, 0.9}, {30, 0.5}, {40, 0.0}} {
		pert := synth.DefaultPerturb(int64(step.iter))
		pert.MagLo, pert.MagHi = 1e-3, 1e-2 // always beyond eps
		pert.BlockElems = 1024
		pert.ChangedFrac = 0.05
		pert.UntouchedFrac = step.untouched
		state = synth.PerturbF32(state, pert)
		meta := ckpt.Meta{RunID: "evo", Iteration: step.iter, Rank: 0, Fields: fields}
		if _, err := ckpt.WriteCheckpoint(store, meta, [][]byte{state}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := BuildAndSave(context.Background(), store, ckpt.Name("evo", step.iter, 0), opts); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

func TestEvolutionTracksChangeRate(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	store := evolutionEnv(t, opts)
	report, err := Evolution(context.Background(), store, "evo", opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.RunID != "evo" || len(report.Points) != 3 {
		t.Fatalf("report = %+v", report)
	}
	// Change rate grows monotonically by construction (untouched
	// fraction 0.9 -> 0.5 -> 0.0).
	prev := -1.0
	for _, p := range report.Points {
		f := p.ChangedFraction()
		if f < prev {
			t.Errorf("change rate not monotone: %v after %v (point %+v)", f, prev, p)
		}
		prev = f
		if p.TotalChunks == 0 {
			t.Errorf("point %+v has no chunks", p)
		}
	}
	// The final step touched every block: near-total change.
	if last := report.Points[2].ChangedFraction(); last < 0.9 {
		t.Errorf("final change rate %.2f, want near 1", last)
	}
	// The first step changed ~10% of blocks.
	if first := report.Points[0].ChangedFraction(); first > 0.5 {
		t.Errorf("first change rate %.2f, want modest", first)
	}
}

func TestEvolutionWorksOnCompactedHistory(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	store := evolutionEnv(t, opts)
	if _, err := CompactHistory(context.Background(), store, "evo", 0, opts); err != nil {
		t.Fatal(err)
	}
	report, err := Evolution(context.Background(), store, "evo", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Points) != 3 {
		t.Errorf("compacted evolution points = %d", len(report.Points))
	}
}

func TestEvolutionValidation(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evolution(context.Background(), store, "none", opts); err == nil {
		t.Error("empty run accepted")
	}
	if _, err := Evolution(context.Background(), store, "none", Options{}); err == nil {
		t.Error("zero options accepted")
	}
}

func TestEvolutionMultiRank(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	const elems = 8 << 10
	fields := []ckpt.FieldSpec{{Name: "x", DType: errbound.Float32, Count: elems}}
	for rank := 0; rank < 2; rank++ {
		for _, iter := range []int{10, 20} {
			data := synth.FieldF32(elems, int64(rank*100+iter))
			meta := ckpt.Meta{RunID: "mr", Iteration: iter, Rank: rank, Fields: fields}
			if _, err := ckpt.WriteCheckpoint(store, meta, [][]byte{data}); err != nil {
				t.Fatal(err)
			}
			if _, _, err := BuildAndSave(context.Background(), store, ckpt.Name("mr", iter, rank), opts); err != nil {
				t.Fatal(err)
			}
		}
	}
	report, err := Evolution(context.Background(), store, "mr", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Points) != 2 { // one transition per rank
		t.Fatalf("points = %+v", report.Points)
	}
	seenRanks := map[int]bool{}
	for _, p := range report.Points {
		seenRanks[p.Rank] = true
		if p.FromIter != 10 || p.ToIter != 20 {
			t.Errorf("point = %+v", p)
		}
	}
	if !seenRanks[0] || !seenRanks[1] {
		t.Errorf("ranks covered: %v", seenRanks)
	}
}

func TestFieldFilteredComparison(t *testing.T) {
	opts := baseOpts(1e-5, 8<<10)
	env := newEnv(t, 32<<10, opts, synth.DefaultPerturb(123))
	full, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Restrict to one field: counts shrink to that field only.
	opts.Fields = []string{"phi"}
	env.store.EvictAll()
	res, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalChunks*3 != full.TotalChunks {
		t.Errorf("filtered chunks %d, full %d", res.TotalChunks, full.TotalChunks)
	}
	for _, d := range res.Diffs {
		if d.Field != "phi" {
			t.Errorf("unexpected field %q in filtered result", d.Field)
		}
	}
	// Direct agrees under the same filter.
	env.store.EvictAll()
	rd, err := CompareDirect(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rd.DiffCount != res.DiffCount {
		t.Errorf("filtered: merkle %d diffs, direct %d", res.DiffCount, rd.DiffCount)
	}
	// AllClose accepts the filter too.
	if _, _, err := CompareAllClose(context.Background(), env.store, env.nameA, env.nameB, opts); err != nil {
		t.Fatal(err)
	}
	// Unknown field rejected everywhere.
	opts.Fields = []string{"nope"}
	if _, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts); err == nil {
		t.Error("merkle accepted unknown field")
	}
	if _, err := CompareDirect(context.Background(), env.store, env.nameA, env.nameB, opts); err == nil {
		t.Error("direct accepted unknown field")
	}
	if _, _, err := CompareAllClose(context.Background(), env.store, env.nameA, env.nameB, opts); err == nil {
		t.Error("allclose accepted unknown field")
	}
}
