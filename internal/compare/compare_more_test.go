package compare

import (
	"context"
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/aio"
	"repro/internal/ckpt"
	"repro/internal/device"
	"repro/internal/errbound"
	"repro/internal/pfs"
	"repro/internal/synth"
)

// f64field builds a raw float64 buffer.
func f64field(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, 8*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(rng.NormFloat64()*10))
	}
	return b
}

// TestMixedDTypeCheckpoint compares a checkpoint mixing f32 and f64
// fields through all three methods.
func TestMixedDTypeCheckpoint(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	const n32, n64 = 8192, 4096
	fields := []ckpt.FieldSpec{
		{Name: "pos", DType: errbound.Float32, Count: n32},
		{Name: "energy", DType: errbound.Float64, Count: n64},
	}
	dataA := [][]byte{synth.FieldF32(n32, 1), f64field(n64, 2)}
	// Run B: perturb the f64 field beyond eps at three known indices.
	e := append([]byte(nil), dataA[1]...)
	for _, idx := range []int{10, 2000, 4095} {
		v := math.Float64frombits(binary.LittleEndian.Uint64(e[idx*8:]))
		binary.LittleEndian.PutUint64(e[idx*8:], math.Float64bits(v+1e-3))
	}
	dataB := [][]byte{append([]byte(nil), dataA[0]...), e}

	opts := Options{Epsilon: 1e-5, ChunkSize: 4 << 10, Exec: device.NewParallel(2)}
	for run, data := range map[string][][]byte{"mA": dataA, "mB": dataB} {
		meta := ckpt.Meta{RunID: run, Iteration: 0, Rank: 0, Fields: fields}
		if _, err := ckpt.WriteCheckpoint(store, meta, data); err != nil {
			t.Fatal(err)
		}
		m, _, err := Build(fields, data, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := SaveMetadata(store, ckpt.Name(run, 0, 0), m); err != nil {
			t.Fatal(err)
		}
	}
	store.EvictAll()

	nameA, nameB := ckpt.Name("mA", 0, 0), ckpt.Name("mB", 0, 0)
	rm, err := CompareMerkle(context.Background(), store, nameA, nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := CompareDirect(context.Background(), store, nameA, nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*Result{rm, rd} {
		if res.DiffCount != 3 {
			t.Errorf("%s: DiffCount = %d, want 3", res.Method, res.DiffCount)
		}
		if len(res.Diffs) != 1 || res.Diffs[0].Field != "energy" {
			t.Errorf("%s: diffs = %+v", res.Method, res.Diffs)
		}
		want := []int64{10, 2000, 4095}
		for i, w := range want {
			if res.Diffs[0].Indices[i] != w {
				t.Errorf("%s: index %d = %d, want %d", res.Method, i, res.Diffs[0].Indices[i], w)
			}
		}
	}
	ok, _, err := CompareAllClose(context.Background(), store, nameA, nameB, opts)
	if err != nil || ok {
		t.Errorf("allclose = %v, %v; want false", ok, err)
	}
}

// TestQuickMerkleEqualsDirect is the central correctness property as a
// randomized test: for random perturbation patterns, chunk sizes and
// bounds, the Merkle method and Direct report identical divergences.
func TestQuickMerkleEqualsDirect(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	iter := 0
	f := func(seed int64, chunkSel, epsSel uint8) bool {
		iter++
		chunk := []int{4 << 10, 16 << 10, 64 << 10}[int(chunkSel)%3]
		eps := []float64{1e-3, 1e-5, 1e-7}[int(epsSel)%3]
		const elems = 16 << 10
		pert := synth.DefaultPerturb(seed)
		pert.BlockElems = 512
		pert.ChangedFrac = 0.05
		dataA, dataB := synth.RunPair(elems, 2, seed, pert)
		fields := []ckpt.FieldSpec{
			{Name: "a", DType: errbound.Float32, Count: elems},
			{Name: "b", DType: errbound.Float32, Count: elems},
		}
		opts := Options{Epsilon: eps, ChunkSize: chunk, Exec: device.Serial{}}
		runA, runB := "qA", "qB"
		for run, data := range map[string][][]byte{runA: dataA, runB: dataB} {
			meta := ckpt.Meta{RunID: run, Iteration: iter, Rank: 0, Fields: fields}
			if _, err := ckpt.WriteCheckpoint(store, meta, data); err != nil {
				t.Log(err)
				return false
			}
			m, _, err := Build(fields, data, opts)
			if err != nil {
				t.Log(err)
				return false
			}
			if _, err := SaveMetadata(store, ckpt.Name(run, iter, 0), m); err != nil {
				t.Log(err)
				return false
			}
		}
		rm, err := CompareMerkle(context.Background(), store, ckpt.Name(runA, iter, 0), ckpt.Name(runB, iter, 0), opts)
		if err != nil {
			t.Log(err)
			return false
		}
		rd, err := CompareDirect(context.Background(), store, ckpt.Name(runA, iter, 0), ckpt.Name(runB, iter, 0), opts)
		if err != nil {
			t.Log(err)
			return false
		}
		if rm.DiffCount != rd.DiffCount || len(rm.Diffs) != len(rd.Diffs) {
			t.Logf("seed=%d chunk=%d eps=%g: merkle %d diffs, direct %d",
				seed, chunk, eps, rm.DiffCount, rd.DiffCount)
			return false
		}
		for i := range rm.Diffs {
			if rm.Diffs[i].Field != rd.Diffs[i].Field ||
				len(rm.Diffs[i].Indices) != len(rd.Diffs[i].Indices) {
				return false
			}
			for j := range rm.Diffs[i].Indices {
				if rm.Diffs[i].Indices[j] != rd.Diffs[i].Indices[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestMmapBackendComparison runs the Merkle compare with the mmap backend
// and checks it finds the same divergences as io_uring.
func TestMmapBackendComparison(t *testing.T) {
	opts := baseOpts(1e-5, 8<<10)
	env := newEnv(t, 64<<10, opts, synth.DefaultPerturb(77))
	uringRes, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	env.store.EvictAll()
	mopts := opts
	mopts.Backend = aio.Mmap{}
	mmapRes, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, mopts)
	if err != nil {
		t.Fatal(err)
	}
	if uringRes.DiffCount != mmapRes.DiffCount {
		t.Errorf("uring found %d diffs, mmap %d", uringRes.DiffCount, mmapRes.DiffCount)
	}
	// mmap must be priced slower for the same scattered work whenever
	// there was scattered work at all.
	if uringRes.CandidateChunks > 8 && mmapRes.VirtualElapsed() <= uringRes.VirtualElapsed() {
		t.Errorf("mmap virtual %v not above io_uring %v",
			mmapRes.VirtualElapsed(), uringRes.VirtualElapsed())
	}
}

// TestStartLevelEquivalence verifies every BFS start level yields the same
// comparison outcome end to end.
func TestStartLevelEquivalence(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	env := newEnv(t, 32<<10, opts, synth.DefaultPerturb(88))
	var ref *Result
	for _, level := range []int{-1, 1, 3, 20} {
		o := opts
		o.StartLevel = level
		env.store.EvictAll()
		res, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, o)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.DiffCount != ref.DiffCount || res.CandidateChunks != ref.CandidateChunks {
			t.Errorf("level %d: diffs=%d candidates=%d, want %d/%d",
				level, res.DiffCount, res.CandidateChunks, ref.DiffCount, ref.CandidateChunks)
		}
	}
}

// TestMissingMetadataError ensures a clear failure when metadata was never
// built.
func TestMissingMetadataError(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	fields := []ckpt.FieldSpec{{Name: "x", DType: errbound.Float32, Count: 128}}
	for _, run := range []string{"nmA", "nmB"} {
		meta := ckpt.Meta{RunID: run, Iteration: 0, Rank: 0, Fields: fields}
		if _, err := ckpt.WriteCheckpoint(store, meta, [][]byte{make([]byte, 512)}); err != nil {
			t.Fatal(err)
		}
	}
	opts := Options{Epsilon: 1e-5}
	if _, err := CompareMerkle(context.Background(), store, ckpt.Name("nmA", 0, 0), ckpt.Name("nmB", 0, 0), opts); err == nil {
		t.Error("missing metadata accepted")
	}
}

// TestChunkLargerThanField exercises the degenerate single-chunk-per-field
// geometry.
func TestChunkLargerThanField(t *testing.T) {
	opts := baseOpts(1e-5, 1<<20) // 1 MiB chunks over 16 KiB fields
	env := newEnv(t, 4<<10, opts, synth.DefaultPerturb(99))
	res, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalChunks != 3 { // one chunk per field
		t.Errorf("TotalChunks = %d, want 3", res.TotalChunks)
	}
	rd, err := CompareDirect(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiffCount != rd.DiffCount {
		t.Errorf("merkle %d diffs, direct %d", res.DiffCount, rd.DiffCount)
	}
}

// TestHistoriesValidation covers the history-level error paths.
func TestHistoriesValidation(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Epsilon: 1e-5}
	if _, err := CompareHistories(context.Background(), store, "ghost1", "ghost2", MethodDirect, opts); err == nil {
		t.Error("empty histories accepted")
	}
	// Mismatched history lengths.
	fields := []ckpt.FieldSpec{{Name: "x", DType: errbound.Float32, Count: 64}}
	mk := func(run string, iters ...int) {
		for _, it := range iters {
			meta := ckpt.Meta{RunID: run, Iteration: it, Rank: 0, Fields: fields}
			if _, err := ckpt.WriteCheckpoint(store, meta, [][]byte{make([]byte, 256)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	mk("h1", 10, 20)
	mk("h2", 10)
	if _, err := CompareHistories(context.Background(), store, "h1", "h2", MethodDirect, opts); err == nil {
		t.Error("length mismatch accepted")
	}
	// Misaligned iterations.
	mk("h3", 10, 30)
	if _, err := CompareHistories(context.Background(), store, "h1", "h3", MethodDirect, opts); err == nil {
		t.Error("iteration misalignment accepted")
	}
	// Aligned, identical: reproducible.
	mk("h4", 10, 20)
	rep, err := CompareHistories(context.Background(), store, "h1", "h4", MethodDirect, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reproducible() || rep.TotalDiffs() != 0 {
		t.Error("identical histories not reproducible")
	}
}

// TestAllCloseViaMethodRun covers Method.Run's allclose path, whose
// DiffCount sentinel (-1) marks divergence without a count.
func TestAllCloseViaMethodRun(t *testing.T) {
	opts := baseOpts(1e-7, 8<<10)
	pert := synth.DefaultPerturb(111)
	pert.MagLo, pert.MagHi = 1e-3, 1e-2 // everything beyond eps
	pert.UntouchedFrac = 0
	pert.BlockElems = 256
	pert.ChangedFrac = 1
	env := newEnv(t, 8<<10, opts, pert)
	res, err := MethodAllClose.Run(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiffCount != -1 {
		t.Errorf("DiffCount = %d, want -1 sentinel", res.DiffCount)
	}
	if res.Identical() {
		t.Error("Identical() true despite divergence")
	}
}

// TestResultZeroChunks guards the rate helpers against division by zero.
func TestResultZeroChunks(t *testing.T) {
	var r Result
	if r.MarkedFraction() != 0 || r.FalsePositiveRate() != 0 {
		t.Error("zero-chunk rates should be 0")
	}
	if r.ThroughputGBps() != 0 {
		t.Error("zero-duration throughput should be 0")
	}
}

// TestMetadataCompatVersioning ensures version/magic changes are caught.
func TestMetadataCompatVersioning(t *testing.T) {
	fields := []ckpt.FieldSpec{{Name: "x", DType: errbound.Float32, Count: 1024}}
	m, _, err := Build(fields, [][]byte{synth.FieldF32(1024, 1)}, Options{Epsilon: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, flip := range []int{0, 4} { // magic, version
		c := append([]byte(nil), raw...)
		c[flip] ^= 0xff
		if _, err := ReadMetadata(bytes.NewReader(c)); err == nil {
			t.Errorf("corruption at byte %d accepted", flip)
		}
	}
}
