package compare

import (
	"context"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/errbound"
	"repro/internal/pfs"
	"repro/internal/synth"
)

// compactEnv builds a 3-iteration history for two runs with metadata.
func compactEnv(t *testing.T, opts Options) (*pfs.Store, []int) {
	t.Helper()
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	const elems = 16 << 10
	fields := []ckpt.FieldSpec{{Name: "x", DType: errbound.Float32, Count: elems}}
	iters := []int{10, 20, 30}
	for _, run := range []string{"cA", "cB"} {
		for _, it := range iters {
			data := synth.FieldF32(elems, int64(it))
			if run == "cB" {
				pert := synth.DefaultPerturb(int64(it))
				pert.BlockElems = 512
				pert.ChangedFrac = 0.05
				data = synth.PerturbF32(data, pert)
			}
			meta := ckpt.Meta{RunID: run, Iteration: it, Rank: 0, Fields: fields}
			if _, err := ckpt.WriteCheckpoint(store, meta, [][]byte{data}); err != nil {
				t.Fatal(err)
			}
			if _, _, err := BuildAndSave(context.Background(), store, ckpt.Name(run, it, 0), opts); err != nil {
				t.Fatal(err)
			}
		}
	}
	return store, iters
}

func TestCompactHistoryKeepsLatest(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	store, iters := compactEnv(t, opts)
	report, err := CompactHistory(context.Background(), store, "cA", 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Removed) != 2 {
		t.Fatalf("removed %v", report.Removed)
	}
	if report.BytesFreed <= 0 {
		t.Error("no bytes freed")
	}
	if len(report.MetadataBuilt) != 0 {
		t.Errorf("metadata rebuilt for %v despite existing", report.MetadataBuilt)
	}
	// Old iterations are metadata-only; the latest keeps its data.
	for _, it := range iters[:2] {
		if !IsCompacted(store, ckpt.Name("cA", it, 0)) {
			t.Errorf("iteration %d not compacted", it)
		}
	}
	if IsCompacted(store, ckpt.Name("cA", 30, 0)) {
		t.Error("latest iteration compacted")
	}
	// Data-level history shrinks; metadata history is intact.
	dh, err := ckpt.History(store, "cA")
	if err != nil {
		t.Fatal(err)
	}
	if len(dh) != 1 {
		t.Errorf("data history = %v", dh)
	}
	mh, err := MetadataHistory(store, "cA")
	if err != nil {
		t.Fatal(err)
	}
	if len(mh) != 3 {
		t.Errorf("metadata history = %v", mh)
	}
}

func TestCompactedStillComparableAtTreeLevel(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	store, _ := compactEnv(t, opts)
	// Establish ground truth while data exists.
	full, err := CompareMerkle(context.Background(), store, ckpt.Name("cA", 10, 0), ckpt.Name("cB", 10, 0), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []string{"cA", "cB"} {
		if _, err := CompactHistory(context.Background(), store, run, 1, opts); err != nil {
			t.Fatal(err)
		}
	}
	// Data-level comparison now fails for compacted iterations...
	if _, err := CompareMerkle(context.Background(), store, ckpt.Name("cA", 10, 0), ckpt.Name("cB", 10, 0), opts); err == nil {
		t.Error("data-level compare succeeded on compacted checkpoints")
	}
	// ...but the tree-level comparison still answers the question.
	res, err := CompareTreesOnly(context.Background(), store, ckpt.Name("cA", 10, 0), ckpt.Name("cB", 10, 0), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidateChunks != full.CandidateChunks {
		t.Errorf("tree-only candidates %d, full run had %d", res.CandidateChunks, full.CandidateChunks)
	}
	if full.DiffCount > 0 && res.DiffCount != -1 {
		t.Errorf("DiffCount = %d, want -1 (unknown) for divergent compacted pair", res.DiffCount)
	}
	if res.Method != "merkle-meta" {
		t.Errorf("Method = %q", res.Method)
	}
	if res.CheckpointBytes != full.CheckpointBytes {
		t.Errorf("CheckpointBytes = %d, want %d", res.CheckpointBytes, full.CheckpointBytes)
	}
}

func TestCompactTreesOnlyIdentical(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	fields := []ckpt.FieldSpec{{Name: "x", DType: errbound.Float32, Count: 4096}}
	data := synth.FieldF32(4096, 9)
	for _, run := range []string{"idA", "idB"} {
		meta := ckpt.Meta{RunID: run, Iteration: 0, Rank: 0, Fields: fields}
		if _, err := ckpt.WriteCheckpoint(store, meta, [][]byte{data}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := BuildAndSave(context.Background(), store, ckpt.Name(run, 0, 0), opts); err != nil {
			t.Fatal(err)
		}
		if _, _, err := CompactCheckpoint(context.Background(), store, ckpt.Name(run, 0, 0), opts); err != nil {
			t.Fatal(err)
		}
	}
	res, err := CompareTreesOnly(context.Background(), store, ckpt.Name("idA", 0, 0), ckpt.Name("idB", 0, 0), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiffCount != 0 || res.CandidateChunks != 0 {
		t.Errorf("identical compacted pair: diffs=%d candidates=%d", res.DiffCount, res.CandidateChunks)
	}
	if !res.Identical() {
		t.Error("Identical() = false")
	}
}

func TestCompactCheckpointBuildsMissingMetadata(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	fields := []ckpt.FieldSpec{{Name: "x", DType: errbound.Float32, Count: 1024}}
	meta := ckpt.Meta{RunID: "nb", Iteration: 0, Rank: 0, Fields: fields}
	if _, err := ckpt.WriteCheckpoint(store, meta, [][]byte{synth.FieldF32(1024, 1)}); err != nil {
		t.Fatal(err)
	}
	name := ckpt.Name("nb", 0, 0)
	built, freed, err := CompactCheckpoint(context.Background(), store, name, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !built {
		t.Error("metadata not built")
	}
	if freed <= 0 {
		t.Error("nothing freed")
	}
	if !IsCompacted(store, name) {
		t.Error("not compacted")
	}
	// Compacting again fails (no data file).
	if _, _, err := CompactCheckpoint(context.Background(), store, name, opts); err == nil {
		t.Error("double compaction succeeded")
	}
}

func TestCompactHistoryValidation(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompactHistory(context.Background(), store, "ghost", 1, opts); err == nil {
		t.Error("empty run accepted")
	}
	// keepLatest covering everything is a no-op.
	store2, _ := compactEnv(t, opts)
	report, err := CompactHistory(context.Background(), store2, "cA", 99, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Removed) != 0 {
		t.Errorf("keepLatest=99 removed %v", report.Removed)
	}
	// Negative keepLatest clamps to 0 (compact everything).
	report, err = CompactHistory(context.Background(), store2, "cA", -1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Removed) != 3 {
		t.Errorf("keepLatest=-1 removed %v", report.Removed)
	}
}

func TestIsCompactedStates(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	if IsCompacted(store, "never/existed.ckpt") {
		t.Error("missing checkpoint reported compacted")
	}
}

func TestCompareTreesOnlyEpsilonMismatch(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	store, _ := compactEnv(t, opts)
	other := opts
	other.Epsilon = 1e-3
	_, err := CompareTreesOnly(context.Background(), store, ckpt.Name("cA", 10, 0), ckpt.Name("cB", 10, 0), other)
	if err == nil {
		t.Error("epsilon mismatch accepted")
	}
	var zero Options
	if _, err := CompareTreesOnly(context.Background(), store, "x", "y", zero); err == nil {
		t.Error("zero options accepted")
	}
}
