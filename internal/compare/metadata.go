package compare

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/errbound"
	"repro/internal/merkle"
	"repro/internal/metrics"
	"repro/internal/murmur3"
	"repro/internal/pfs"
)

// Metadata is the compact Merkle representation of one checkpoint: one
// error-bounded tree per field (paper §2.3).
type Metadata struct {
	// Epsilon is the error bound the leaves were hashed under. Two
	// metadata files are comparable only with equal ε and chunk size.
	Epsilon float64
	// Fields holds one named tree per checkpoint field, in field order.
	Fields []FieldMeta
}

// FieldMeta is the tree of one field.
type FieldMeta struct {
	Name  string
	DType errbound.DType
	Tree  *merkle.Tree
}

// CombinedRoot folds the per-field Merkle roots into one digest that
// identifies the whole checkpoint snapshot: field names and roots are
// chained in field order, so any field rename, reorder, or content
// change under the active ε moves the combined root. This is the digest
// the verdict ledger (internal/wal) binds into each record.
func (m *Metadata) CombinedRoot() murmur3.Digest {
	var acc murmur3.Digest
	for _, f := range m.Fields {
		acc = murmur3.SumDigest([]byte(f.Name), acc)
		acc = murmur3.HashPair(acc, f.Tree.Root())
	}
	return acc
}

// BuildStats reports metadata construction cost.
type BuildStats struct {
	// HashVirtual prices the leaf-hash kernels on the device model.
	HashVirtual time.Duration
	// TreeVirtual prices the interior-node kernels (one per level).
	TreeVirtual time.Duration
	// Wall is the measured construction time.
	Wall time.Duration
	// Bytes is the data hashed.
	Bytes int64
}

// TotalVirtual returns hash + tree virtual time, the Fig. 8 metric.
func (s BuildStats) TotalVirtual() time.Duration { return s.HashVirtual + s.TreeVirtual }

// Build constructs checkpoint metadata from in-memory field buffers (the
// paper's checkpoint-time path, where the data is already resident on the
// device). data[i] must match fields[i].Bytes().
func Build(fields []ckpt.FieldSpec, data [][]byte, opts Options) (*Metadata, BuildStats, error) {
	opts = opts.withDefaults()
	var stats BuildStats
	if err := opts.validate(); err != nil {
		return nil, stats, err
	}
	if len(fields) != len(data) {
		return nil, stats, fmt.Errorf("compare: %d buffers for %d fields", len(data), len(fields))
	}
	sw := metrics.NewStopwatch()

	// Validate buffers and construct hashers serially, so size and ε
	// errors surface deterministically in field order.
	hashers := make([]*errbound.Hasher, len(fields))
	for i, f := range fields {
		if int64(len(data[i])) != f.Bytes() {
			return nil, stats, fmt.Errorf("compare: field %q has %d bytes, want %d", f.Name, len(data[i]), f.Bytes())
		}
		h, err := opts.hasherFor(f.DType)
		if err != nil {
			return nil, stats, err
		}
		hashers[i] = h
	}

	// Build the field trees, in parallel across fields when the executor
	// has idle capacity (each tree's chunk hashing is itself parallel, but
	// small fields underfill the pool; cross-field fan-out keeps it busy).
	trees := make([]*merkle.Tree, len(fields))
	fieldErrs := make([]error, len(fields))
	if opts.Exec.Workers() > 1 && len(fields) > 1 {
		var wg sync.WaitGroup
		for i := range fields {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				trees[i], fieldErrs[i] = buildFieldTree(hashers[i], data[i], opts)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range fields {
			trees[i], fieldErrs[i] = buildFieldTree(hashers[i], data[i], opts)
		}
	}

	// Assemble results and virtual pricing in field order, deterministic
	// regardless of build interleaving: one leaf-hash kernel over each
	// field's bytes, one node kernel per interior level.
	m := &Metadata{Epsilon: opts.Epsilon, Fields: make([]FieldMeta, 0, len(fields))}
	for i, f := range fields {
		if fieldErrs[i] != nil {
			return nil, stats, fmt.Errorf("compare: field %q: %w", f.Name, fieldErrs[i])
		}
		tree := trees[i]
		m.Fields = append(m.Fields, FieldMeta{Name: f.Name, DType: f.DType, Tree: tree})
		stats.HashVirtual += opts.Device.HashTime(f.Bytes())
		for level := tree.Depth() - 1; level >= 0; level-- {
			stats.TreeVirtual += opts.Device.NodeHashTime(int64(1) << level)
		}
		stats.Bytes += f.Bytes()
	}
	stats.Wall = sw.Lap()
	return m, stats, nil
}

// buildFieldTree chunks one field, hashes the chunks in parallel, and
// builds the tree's interior levels.
func buildFieldTree(hasher *errbound.Hasher, data []byte, opts Options) (*merkle.Tree, error) {
	dataLen := int64(len(data))
	if dataLen == 0 {
		return nil, errors.New("empty field")
	}
	chunkSize := opts.ChunkSize
	numChunks := int((dataLen + int64(chunkSize) - 1) / int64(chunkSize))
	leaves := make([]murmur3.Digest, numChunks)
	var firstErr kernelError
	opts.Exec.For(numChunks, func(i int) {
		off := int64(i) * int64(chunkSize)
		end := off + int64(chunkSize)
		if end > dataLen {
			end = dataLen
		}
		d, err := hasher.HashChunk(data[off:end])
		if err != nil {
			firstErr.store(i, err)
			return
		}
		leaves[i] = d
	})
	if err := firstErr.err(); err != nil {
		return nil, err
	}
	tree, err := merkle.New(dataLen, chunkSize, leaves)
	if err != nil {
		return nil, err
	}
	tree.Build(opts.Exec)
	return tree, nil
}

// kernelError captures the lowest-index error produced by a parallel
// kernel without allocating an O(iterations) error slice per build: a CAS
// loop keeps the entry with the smallest index, so the reported error is
// the same one the old serial scan found, regardless of worker
// interleaving.
type kernelError struct {
	p atomic.Pointer[indexedError]
}

type indexedError struct {
	index int
	err   error
}

// store records err for iteration index unless an earlier iteration
// already failed.
func (k *kernelError) store(index int, err error) {
	e := &indexedError{index: index, err: err}
	for {
		cur := k.p.Load()
		if cur != nil && cur.index <= index {
			return
		}
		if k.p.CompareAndSwap(cur, e) {
			return
		}
	}
}

// err returns the captured error, nil if every iteration succeeded.
func (k *kernelError) err() error {
	if e := k.p.Load(); e != nil {
		return e.err
	}
	return nil
}

// BuildFromReader reads every field of a checkpoint and builds its
// metadata, returning the storage cost of the reads (the offline-tool
// path). Cancellation is observed between field reads.
func BuildFromReader(ctx context.Context, r *ckpt.Reader, opts Options) (*Metadata, BuildStats, pfs.Cost, error) {
	meta := r.Meta()
	data := make([][]byte, len(meta.Fields))
	var total pfs.Cost
	for i := range meta.Fields {
		if err := ctx.Err(); err != nil {
			return nil, BuildStats{}, total, err
		}
		d, cost, err := r.ReadField(i)
		total.Add(cost)
		if err != nil {
			return nil, BuildStats{}, total, err
		}
		data[i] = d
	}
	m, stats, err := Build(meta.Fields, data, opts)
	return m, stats, total, err
}

// MetadataName returns the canonical metadata file name for a checkpoint
// file name.
func MetadataName(checkpointName string) string { return checkpointName + ".mrkl" }

// Metadata container format:
//
//	magic   [4]byte "RMET"
//	version u16
//	nfields u16
//	epsilon f64 bits
//	fields  n × { name u16 len + bytes, dtype u8, tree (merkle format) }
const (
	metaMagic = "RMET"
	metaVer   = 1
)

// WriteTo serializes the metadata container.
func (m *Metadata) WriteTo(w io.Writer) (int64, error) {
	if len(m.Fields) == 0 || len(m.Fields) > 0xffff {
		return 0, fmt.Errorf("compare: metadata field count %d out of range", len(m.Fields))
	}
	bw := bufio.NewWriter(w)
	var written int64
	hdr := make([]byte, 0, 16)
	hdr = append(hdr, metaMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, metaVer)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(m.Fields)))
	hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(m.Epsilon))
	n, err := bw.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("compare: write metadata header: %w", err)
	}
	for _, f := range m.Fields {
		if len(f.Name) == 0 || len(f.Name) > 0xffff {
			return written, fmt.Errorf("compare: field name length %d out of range", len(f.Name))
		}
		var fh []byte
		fh = binary.LittleEndian.AppendUint16(fh, uint16(len(f.Name)))
		fh = append(fh, f.Name...)
		fh = append(fh, byte(f.DType))
		n, err := bw.Write(fh)
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("compare: write field header: %w", err)
		}
		tn, err := f.Tree.WriteTo(bw)
		written += tn
		if err != nil {
			return written, err
		}
	}
	if err := bw.Flush(); err != nil {
		return written, fmt.Errorf("compare: flush metadata: %w", err)
	}
	return written, nil
}

// ReadMetadata deserializes a metadata container.
func ReadMetadata(r io.Reader) (*Metadata, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("compare: read metadata header: %w", err)
	}
	if string(hdr[0:4]) != metaMagic {
		return nil, fmt.Errorf("%w: bad metadata magic %q", merkle.ErrCorrupt, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != metaVer {
		return nil, fmt.Errorf("%w: unsupported metadata version %d", merkle.ErrCorrupt, v)
	}
	nf := int(binary.LittleEndian.Uint16(hdr[6:8]))
	if nf == 0 {
		return nil, fmt.Errorf("%w: zero fields", merkle.ErrCorrupt)
	}
	m := &Metadata{
		Epsilon: math.Float64frombits(binary.LittleEndian.Uint64(hdr[8:16])),
		Fields:  make([]FieldMeta, 0, nf),
	}
	for i := 0; i < nf; i++ {
		var lb [2]byte
		if _, err := io.ReadFull(br, lb[:]); err != nil {
			return nil, fmt.Errorf("compare: read field %d header: %w", i, err)
		}
		nameLen := int(binary.LittleEndian.Uint16(lb[:]))
		if nameLen == 0 || nameLen > 4096 {
			return nil, fmt.Errorf("%w: field %d name length %d", merkle.ErrCorrupt, i, nameLen)
		}
		nb := make([]byte, nameLen+1)
		if _, err := io.ReadFull(br, nb); err != nil {
			return nil, fmt.Errorf("compare: read field %d name: %w", i, err)
		}
		dtype := errbound.DType(nb[nameLen])
		if dtype.Size() == 0 {
			return nil, fmt.Errorf("%w: field %d bad dtype %d", merkle.ErrCorrupt, i, dtype)
		}
		tree, _, err := merkle.ReadFrom(br)
		if err != nil {
			return nil, err
		}
		m.Fields = append(m.Fields, FieldMeta{Name: string(nb[:nameLen]), DType: dtype, Tree: tree})
	}
	return m, nil
}

// Bytes returns the serialized size of the metadata.
func (m *Metadata) Bytes() int64 {
	var t int64 = 16
	for _, f := range m.Fields {
		t += int64(2+len(f.Name)+1) + f.Tree.MetadataBytes()
	}
	return t
}

// SaveMetadata writes the metadata next to its checkpoint on a store.
func SaveMetadata(store *pfs.Store, checkpointName string, m *Metadata) (pfs.Cost, error) {
	w, err := store.Create(MetadataName(checkpointName))
	if err != nil {
		return pfs.Cost{}, err
	}
	if _, err := m.WriteTo(w); err != nil {
		w.Close()
		return w.Cost(), err
	}
	cost := w.Cost()
	if err := w.Close(); err != nil {
		return cost, err
	}
	return cost, nil
}

// LoadMetadata reads the metadata for a checkpoint from a store, returning
// the read cost and the wall time spent deserializing. The read observes
// the context block by block.
func LoadMetadata(ctx context.Context, store *pfs.Store, checkpointName string) (*Metadata, pfs.Cost, time.Duration, error) {
	data, cost, err := store.ReadFileFull(ctx, MetadataName(checkpointName), 4<<20)
	if err != nil {
		return nil, cost, 0, err
	}
	sw := metrics.NewStopwatch()
	m, err := ReadMetadata(bytes.NewReader(data))
	if err != nil {
		return nil, cost, sw.Lap(), err
	}
	return m, cost, sw.Lap(), nil
}
