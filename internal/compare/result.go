package compare

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/murmur3"
)

// FieldDiff lists the divergent elements of one checkpoint field.
type FieldDiff struct {
	// Field is the field name.
	Field string
	// Indices are the element indices whose difference exceeds ε,
	// ascending.
	Indices []int64
}

// Result reports one checkpoint-pair comparison.
type Result struct {
	// Method names the approach ("merkle", "direct", "allclose").
	Method string
	// Diffs lists the divergent elements per field (empty for AllClose,
	// which only answers the boolean question).
	Diffs []FieldDiff
	// DiffCount is the total number of divergent elements.
	DiffCount int64
	// TotalElements is the total element count across fields.
	TotalElements int64

	// CandidateChunks counts chunks the hash stage marked as potentially
	// changed (always 0 for the baselines).
	CandidateChunks int
	// ChangedChunks counts candidate chunks that really contained an
	// out-of-bound difference.
	ChangedChunks int
	// TotalChunks counts all data chunks across fields.
	TotalChunks int
	// CASPrunedChunks counts candidate chunks excluded from stage-2
	// scheduling because the content-addressed store proved their verdict
	// without a read: both sides resolved to the same pack extent, or the
	// digest pair's verdict was memoized from an earlier differential
	// comparison. Pruned chunks stay counted in CandidateChunks (and in
	// ChangedChunks when the replayed verdict contained divergence); they
	// are never Unverified. Always 0 outside differential mode.
	CASPrunedChunks int

	// CheckpointBytes is the raw data size of ONE run's checkpoint.
	CheckpointBytes int64
	// BytesRead counts data + metadata bytes read from storage
	// (both runs).
	BytesRead int64
	// MetadataBytes is the serialized Merkle metadata size per run
	// (0 for baselines).
	MetadataBytes int64

	// Breakdown is the per-phase cost split of Fig. 6.
	Breakdown metrics.Breakdown
	// Steps is the engine's per-step timing table for this comparison's
	// plan, in execution order.
	Steps metrics.StepSpans

	// Degraded reports that the comparison completed on a degraded path:
	// some candidate chunks could not be read (metadata-only verdict) or
	// could not be integrity-verified. Any diffs recorded are real, but
	// absence of diffs is inconclusive — Identical() returns false.
	Degraded bool
	// UnverifiedChunks counts candidate chunks whose content was never
	// cleanly verified: reads that exhausted their retries, or bytes that
	// failed leaf-hash integrity verification even after one re-read.
	// Always 0 unless Options.Degrade is set (strict mode fails instead).
	UnverifiedChunks int
	// ReadRetries counts stage-2 batch reads re-issued under the retry
	// policy; RingFallbacks counts slices served by the fresh-ring
	// fallback after the shared ring reported closed.
	ReadRetries   int
	RingFallbacks int

	// RootA and RootB are the combined Merkle roots of the two compared
	// snapshots (Metadata.CombinedRoot), zero for plans that never load
	// metadata (the direct/allclose baselines). The verdict ledger binds
	// them so a historical verdict's inputs can be re-derived.
	RootA murmur3.Digest
	RootB murmur3.Digest
}

// FalsePositiveChunks returns candidates that contained no real
// difference — the conservative hash's false positives (Fig. 7b).
func (r *Result) FalsePositiveChunks() int {
	return r.CandidateChunks - r.ChangedChunks
}

// FalsePositiveRate returns false positives over total chunks, the Fig. 7b
// metric.
func (r *Result) FalsePositiveRate() float64 {
	if r.TotalChunks == 0 {
		return 0
	}
	return float64(r.FalsePositiveChunks()) / float64(r.TotalChunks)
}

// MarkedFraction returns the fraction of checkpoint data marked as
// potentially changed by the hash stage, the Fig. 7a metric.
func (r *Result) MarkedFraction() float64 {
	if r.TotalChunks == 0 {
		return 0
	}
	return float64(r.CandidateChunks) / float64(r.TotalChunks)
}

// VirtualElapsed returns the end-to-end virtual runtime.
func (r *Result) VirtualElapsed() time.Duration {
	return r.Breakdown.Total().Virtual
}

// WallElapsed returns the measured wall runtime.
func (r *Result) WallElapsed() time.Duration {
	return r.Breakdown.Total().Wall
}

// ThroughputGBps is the paper's throughput metric: the amount of
// checkpoint data compared (both runs) over the total virtual runtime.
func (r *Result) ThroughputGBps() float64 {
	return metrics.Throughput(2*r.CheckpointBytes, r.VirtualElapsed())
}

// Identical reports whether no element exceeded the bound. A degraded
// comparison is never identical: chunks that were unread or unverifiable
// could hide divergence, so the clean verdict requires a clean run.
func (r *Result) Identical() bool {
	return r.DiffCount == 0 && !r.Degraded && r.UnverifiedChunks == 0
}
