package compare

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"context"

	"repro/internal/cas"
	"repro/internal/ckpt"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/errbound"
	"repro/internal/merkle"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/simclock"
	"repro/internal/stream"
)

// This file holds the shared plan-step vocabulary of the comparison entry
// points. Every entry point (CompareMerkle, CompareDirect, CompareAllClose,
// CompareTreesOnly, and through them the history/evolution/compaction
// planners) is a thin planner: it assembles an engine.Plan from the step
// builders below and hands it to engine.Execute, which supplies the
// context checkpoints, the per-step timing table, and the LIFO cleanup
// chain that keeps early-return errors leak-free.

// fieldCandidates is one field's stage-1 output: the candidate chunks the
// tree diff could not prune.
type fieldCandidates struct {
	field  int
	chunks []int
}

// chunkRef maps one streamed chunk pair back to its field and element
// base. chunk is the Merkle chunk index for changed-chunk accounting, or
// -1 for the direct sweep (which has no chunk notion). offA and offB are
// the absolute file offsets the chunk streams from — field-relative in
// the checkpoint container, or pack extents in differential mode.
type chunkRef struct {
	field    int
	chunk    int
	baseElem int64
	hasher   *errbound.Hasher
	offA     int64
	offB     int64
}

// pairState carries one checkpoint pair's comparison through its plan
// steps. Steps communicate exclusively through this state; the context
// arrives per step through the engine (never stored — the ctxflow rule).
type pairState struct {
	store        *pfs.Store
	nameA, nameB string
	opts         Options
	res          *Result

	// verifyWrap labels stage-2 errors ("verification", "direct").
	verifyWrap string
	// dataless marks metadata-only plans (CompareTreesOnly): no readers,
	// all fields compared, element totals taken from the trees.
	dataless bool

	ra, rb   *ckpt.Reader
	ma, mb   *Metadata
	selected func(string) bool

	// Differential (CAS) mode: leaf manifests replace the checkpoint
	// readers and stage 2 streams representative bytes from the shared
	// pack file instead of the two containers.
	diffMode   bool
	cs         *cas.Store
	manA, manB *cas.Manifest
	pack       *pfs.File

	candidates []fieldCandidates
	pairs      []stream.ChunkPair
	refs       []chunkRef

	mu         sync.Mutex
	fieldDiffs map[int][]int64
	changed    map[int]map[int]bool // field -> chunk -> really changed

	// Degradation-ladder bookkeeping (Options.Degrade).
	verified   int      // chunk pairs cleanly verified by stage 2
	unverified int      // chunk pairs that failed integrity verification
	rereads    int      // integrity re-reads issued
	rereadCost pfs.Cost // cost of those re-reads
	computeErr bool     // a compute-callback error: never degraded away
}

func newPairState(store *pfs.Store, nameA, nameB string, opts Options, method string) *pairState {
	return &pairState{
		store:      store,
		nameA:      nameA,
		nameB:      nameB,
		opts:       opts,
		res:        &Result{Method: method},
		verifyWrap: "verification",
		fieldDiffs: make(map[int][]int64),
		changed:    make(map[int]map[int]bool),
	}
}

// runPlan executes the plan and attaches the per-step timing table to the
// result. Step errors come back unwrapped; on failure the result is
// dropped (the engine report recorded which step failed).
func (st *pairState) runPlan(ctx context.Context, p *engine.Plan) (*Result, error) {
	rep, err := engine.Execute(ctx, p)
	st.res.Steps = rep.Steps
	if err != nil {
		return nil, err
	}
	return st.res, nil
}

// stepOpenPair opens both checkpoints, registers them on the cleanup
// chain, and validates the schemas match.
func (st *pairState) stepOpenPair(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	ra, _, err := ckpt.OpenReader(st.store, st.nameA)
	if err != nil {
		return err
	}
	x.CloseOnExit(ra)
	rb, _, err := ckpt.OpenReader(st.store, st.nameB)
	if err != nil {
		return err
	}
	x.CloseOnExit(rb)
	if !ckpt.SameSchema(ra.Meta(), rb.Meta()) {
		return fmt.Errorf("compare: %s and %s have different schemas", st.nameA, st.nameB)
	}
	st.ra, st.rb = ra, rb
	st.res.CheckpointBytes = ra.Meta().TotalBytes()
	st.res.Breakdown.AddVirtual(metrics.PhaseSetup, st.opts.SetupVirtual)
	st.res.Breakdown.AddWall(metrics.PhaseSetup, sw.Lap())
	x.AddVirtual(st.opts.SetupVirtual)
	return nil
}

// stepSetupVirtual charges the fixed setup cost for plans that open no
// checkpoint data (metadata-only comparison).
func (st *pairState) stepSetupVirtual(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	st.res.Breakdown.AddVirtual(metrics.PhaseSetup, st.opts.SetupVirtual)
	st.res.Breakdown.AddWall(metrics.PhaseSetup, sw.Lap())
	x.AddVirtual(st.opts.SetupVirtual)
	return nil
}

// stepLoadMetadata loads both runs' Merkle metadata (Read phase), prices
// deserialization, and validates ε and field parity.
func (st *pairState) stepLoadMetadata(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	model := st.store.Model()
	sharers := st.store.Sharers()
	ma, costA, dwallA, err := LoadMetadata(ctx, st.store, st.nameA)
	if err != nil {
		return err
	}
	mb, costB, dwallB, err := LoadMetadata(ctx, st.store, st.nameB)
	if err != nil {
		return err
	}
	st.ma, st.mb = ma, mb
	st.res.RootA, st.res.RootB = ma.CombinedRoot(), mb.CombinedRoot()
	var metaCost pfs.Cost
	metaCost.Add(costA)
	metaCost.Add(costB)
	st.res.MetadataBytes = ma.Bytes()
	st.res.BytesRead += metaCost.TotalBytes()
	readV := model.SerialReadTime(metaCost, sharers)
	deserV := simclock.BandwidthTime(metaCost.TotalBytes(), deserializeBytesPerSec)
	st.res.Breakdown.AddVirtual(metrics.PhaseRead, readV)
	st.res.Breakdown.AddWall(metrics.PhaseRead, sw.Lap())
	st.res.Breakdown.AddVirtual(metrics.PhaseDeserialize, deserV)
	st.res.Breakdown.AddWall(metrics.PhaseDeserialize, dwallA+dwallB)
	x.AddVirtual(readV + deserV)

	if err := checkMetaPair(ma, mb, st.opts.Epsilon); err != nil {
		return err
	}
	if st.dataless {
		st.selected = func(string) bool { return true }
		return nil
	}
	fieldNames := make([]string, len(ma.Fields))
	for i := range ma.Fields {
		fieldNames[i] = ma.Fields[i].Name
	}
	selected, err := st.opts.fieldFilter(fieldNames)
	if err != nil {
		return err
	}
	st.selected = selected
	return nil
}

// checkMetaPair validates that two metadata files are comparable with each
// other at the requested ε.
func checkMetaPair(ma, mb *Metadata, eps float64) error {
	//lint:ignore floatcmp metadata is only valid for the exact ε it was built with; bitwise equality is the contract
	if ma.Epsilon != eps || mb.Epsilon != eps {
		return fmt.Errorf("compare: metadata ε (%g, %g) does not match requested ε %g",
			ma.Epsilon, mb.Epsilon, eps)
	}
	if len(ma.Fields) != len(mb.Fields) {
		return fmt.Errorf("compare: metadata field counts differ: %d vs %d",
			len(ma.Fields), len(mb.Fields))
	}
	return nil
}

// CheckMetaPair validates that two metadata files are comparable with
// each other at the requested ε — the same gate every pairwise planner
// runs. Exported for out-of-package planners (internal/shard).
func CheckMetaPair(ma, mb *Metadata, eps float64) error {
	return checkMetaPair(ma, mb, eps)
}

// stepTreeDiff runs stage 1: the pruned BFS tree diff per selected field
// (CompareTree phase). The executor is wrapped so a canceled context
// stops the diff kernels between poll intervals.
func (st *pairState) stepTreeDiff(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	exec := device.Cancelable{Done: ctx.Done(), Inner: st.opts.Exec}
	var treeVirtual time.Duration
	for fi := range st.ma.Fields {
		fm := st.ma.Fields[fi]
		if !st.selected(fm.Name) {
			continue
		}
		ta, tb := fm.Tree, st.mb.Fields[fi].Tree
		start := st.opts.StartLevel
		if start < 0 {
			start = ta.DefaultStartLevel(exec.Workers())
		}
		chunks, nodes, err := merkle.Diff(ta, tb, start, exec)
		if err != nil {
			return fmt.Errorf("compare: field %q: %w", fm.Name, err)
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		st.res.TotalChunks += ta.NumChunks()
		st.res.CandidateChunks += len(chunks)
		if len(chunks) > 0 {
			st.candidates = append(st.candidates, fieldCandidates{field: fi, chunks: chunks})
		}
		if st.dataless {
			// Metadata-only comparison takes its totals from the trees and
			// (as before the engine refactor) prices no diff kernels: the
			// stage-1-only paths report chunk fractions, not device time.
			st.res.TotalElements += ta.DataLen() / int64(fm.DType.Size())
			st.res.CheckpointBytes += ta.DataLen()
			continue
		}
		// One kernel per visited level (bounded by depth), nodes at the
		// node-hash comparison rate.
		levels := ta.Depth() - start + 1
		treeVirtual += time.Duration(levels)*st.opts.Device.KernelLaunch +
			simclock.BandwidthTime(nodes*16, float64(st.opts.Device.NodeHashesPerSec)*16)
	}
	st.res.Breakdown.AddVirtual(metrics.PhaseCompareTree, treeVirtual)
	st.res.Breakdown.AddWall(metrics.PhaseCompareTree, sw.Lap())
	x.AddVirtual(treeVirtual)
	return nil
}

// stepAssemblePairs turns the candidate chunks of every field into one
// batched stage-2 read plan, so scattered reads amortize the queue latency
// once instead of once per field (byte-level coalescing then happens in
// the aio backend).
func (st *pairState) stepAssemblePairs(ctx context.Context, x *engine.Exec) error {
	hashers := make(map[errbound.DType]*errbound.Hasher)
	for _, fc := range st.candidates {
		fi := fc.field
		fm := st.ma.Fields[fi]
		hasher := hashers[fm.DType]
		if hasher == nil {
			h, err := st.opts.hasherFor(fm.DType)
			if err != nil {
				return err
			}
			hashers[fm.DType] = h
			hasher = h
		}
		tree := fm.Tree
		var baseA, baseB int64
		if !st.diffMode {
			baseA = st.ra.FieldFileOffset(fi)
			baseB = st.rb.FieldFileOffset(fi)
		}
		eltSize := int64(fm.DType.Size())
		chunkElems := int64(tree.ChunkSize()) / eltSize
		for _, ci := range fc.chunks {
			off, n := tree.ChunkRange(ci)
			offA, offB := baseA+off, baseB+off
			if st.diffMode {
				// Stream each side's representative bytes from its pack
				// extent; the manifest pins extent length to chunk length.
				locA := st.manA.Fields[fi].Locs[ci]
				locB := st.manB.Fields[fi].Locs[ci]
				if int(locA.Len) != n || int(locB.Len) != n {
					return fmt.Errorf("compare: field %q chunk %d: pack extents %d/%d bytes, tree says %d",
						fm.Name, ci, locA.Len, locB.Len, n)
				}
				offA, offB = locA.Off, locB.Off
			}
			st.pairs = append(st.pairs, stream.ChunkPair{
				Index: len(st.refs),
				OffA:  offA,
				OffB:  offB,
				Len:   n,
			})
			st.refs = append(st.refs, chunkRef{
				field:    fi,
				chunk:    ci,
				baseElem: int64(ci) * chunkElems,
				hasher:   hasher,
				offA:     offA,
				offB:     offB,
			})
		}
	}
	return nil
}

// verifyCompute is the stage-2 consumer callback shared by the Merkle and
// direct plans: element-wise ε comparison of one chunk pair, recording
// divergent indices (and, for Merkle chunks, changed-chunk accounting).
func (st *pairState) verifyCompute(p stream.ChunkPair, a, b []byte) (time.Duration, error) {
	ref := st.refs[p.Index]
	if st.opts.Degrade && ref.chunk >= 0 {
		// Integrity rung of the degradation ladder: the streamed bytes
		// must re-hash to the leaves their metadata was built from —
		// corruption beyond ε quantization (bit rot, a torn transfer)
		// cannot masquerade as a clean chunk.
		va := st.integrityCheck(ref, a, sideA)
		vb := st.integrityCheck(ref, b, sideB)
		if va == nil || vb == nil {
			st.mu.Lock()
			st.unverified++
			st.mu.Unlock()
			// The chunk is excluded from diffing: untrusted bytes must
			// produce neither a false divergence nor a false match.
			return st.opts.Device.CompareRateTime(int64(len(a))), nil
		}
		a, b = va, vb
	}
	idx, _, err := ref.hasher.CompareSlices(nil, a, b)
	if err != nil {
		st.mu.Lock()
		st.computeErr = true
		st.mu.Unlock()
		return 0, err
	}
	if st.diffMode && st.opts.Memo != nil && ref.chunk >= 0 {
		// Memoize the verdict under the digest pair. Sound only here, in
		// differential mode: both byte strings are CAS representatives, so
		// one digest names exactly one stored byte string and the verdict
		// is a pure function of the (full) digest pair.
		fA := &st.manA.Fields[ref.field]
		fB := &st.manB.Fields[ref.field]
		st.opts.Memo.insert(fA.Digests[ref.chunk], fB.Digests[ref.chunk], fA.DType, idx)
	}
	st.mu.Lock()
	st.verified++
	for _, e := range idx {
		st.fieldDiffs[ref.field] = append(st.fieldDiffs[ref.field], ref.baseElem+e)
	}
	if len(idx) > 0 && ref.chunk >= 0 {
		if st.changed[ref.field] == nil {
			st.changed[ref.field] = make(map[int]bool)
		}
		st.changed[ref.field][ref.chunk] = true
	}
	st.mu.Unlock()
	return st.opts.Device.CompareRateTime(int64(len(a))), nil
}

// integrityCheck sides.
const (
	sideA = 0
	sideB = 1
)

// integrityCheck verifies one side's streamed chunk against the leaf hash
// its metadata was built from, re-reading the chunk once on mismatch (an
// in-flight flip re-reads clean; media corruption repeats). It returns the
// verified bytes — data itself or the re-read copy — or nil when the
// chunk remains unverifiable. In differential mode the re-read gathers the
// representative from its pack extent; the leaf-hash check is what turns a
// torn or rotted CAS chunk into Corrupt instead of a silent dedup hit.
func (st *pairState) integrityCheck(ref chunkRef, data []byte, side int) []byte {
	m, off := st.ma, ref.offA
	if side == sideB {
		m, off = st.mb, ref.offB
	}
	tree := m.Fields[ref.field].Tree
	want := tree.Leaf(ref.chunk)
	if got, err := ref.hasher.HashChunk(data); err == nil && got == want {
		return data
	}
	f := st.pack
	if !st.diffMode {
		if side == sideB {
			f = st.rb.File()
		} else {
			f = st.ra.File()
		}
	}
	_, n := tree.ChunkRange(ref.chunk)
	buf := make([]byte, n)
	nr, cost, err := f.ReadAt(buf, off)
	st.mu.Lock()
	st.rereads++
	st.rereadCost.Add(cost)
	st.mu.Unlock()
	if err != nil || nr != n {
		return nil
	}
	if got, herr := ref.hasher.HashChunk(buf); herr == nil && got == want {
		return buf
	}
	return nil
}

// stepStreamVerify runs stage 2: the overlapped read+compare pipeline over
// the assembled chunk pairs. With Options.Degrade set, a Merkle-path pair
// whose stream fails (after retries and the ring fallback) degrades to a
// metadata-only verdict: diffs already proven stay, the remaining pairs
// are counted Unverified, and the result is marked Degraded rather than
// failing the plan.
func (st *pairState) stepStreamVerify(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	if len(st.pairs) > 0 {
		fA, fB := st.pack, st.pack
		if !st.diffMode {
			fA, fB = st.ra.File(), st.rb.File()
		}
		stats, err := stream.Run(ctx, fA, fB, st.pairs, stream.Config{
			Backend:    st.opts.Backend,
			Device:     st.opts.Device,
			SliceBytes: st.opts.SliceBytes,
			Depth:      st.opts.Depth,
			Retry:      st.opts.Retry,
		}, st.verifyCompute)
		st.res.BytesRead += stats.BytesRead
		st.res.ReadRetries += stats.ReadRetries
		st.res.RingFallbacks += stats.RingFallbacks
		addPipeline(&st.res.Breakdown, stats)
		x.AddVirtual(stats.PipelineVirtual)
		st.foldRereads(x)
		if err != nil {
			// Degradation applies only to the Merkle path: stage 1 already
			// bounded what the missing chunks could hide. The direct sweep
			// has no such net, and compute or cancellation errors are never
			// degraded away.
			if !st.opts.Degrade || st.verifyWrap != "verification" ||
				st.computeErr || ctx.Err() != nil {
				return fmt.Errorf("compare: %s: %w", st.verifyWrap, err)
			}
			if missing := len(st.pairs) - st.verified - st.unverified; missing > 0 {
				st.unverified += missing
			}
		}
		if st.unverified > 0 {
			st.res.Degraded = true
			st.res.UnverifiedChunks += st.unverified
		}
	}
	st.res.Breakdown.AddWall(metrics.PhaseCompareDirect, sw.Lap())
	return nil
}

// foldRereads prices the integrity re-reads issued by verifyCompute into
// the result and the plan clock.
func (st *pairState) foldRereads(x *engine.Exec) {
	st.mu.Lock()
	cost := st.rereadCost
	st.rereadCost = pfs.Cost{}
	st.mu.Unlock()
	if cost == (pfs.Cost{}) {
		return
	}
	st.res.BytesRead += cost.TotalBytes()
	v := st.store.Model().SerialReadTime(cost, st.store.Sharers())
	st.res.Breakdown.AddVirtual(metrics.PhaseRead, v)
	x.AddVirtual(v)
}

// sortedFieldDiffs drains the accumulated per-field divergence indices
// into the result, ascending, in field order.
func (st *pairState) sortedFieldDiffs(fieldName func(int) string, numFields int) {
	for fi := 0; fi < numFields; fi++ {
		if idx := st.fieldDiffs[fi]; len(idx) > 0 {
			sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
			st.res.Diffs = append(st.res.Diffs, FieldDiff{Field: fieldName(fi), Indices: idx})
			st.res.DiffCount += int64(len(idx))
		}
	}
}
