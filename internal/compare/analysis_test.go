package compare

import (
	"context"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/errbound"
	"repro/internal/pfs"
)

func f32buf(vals ...float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(v))
	}
	return b
}

func writePair(t *testing.T, a, b []byte) (*pfs.Store, string, string) {
	t.Helper()
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	n := int64(len(a) / 4)
	fields := []ckpt.FieldSpec{{Name: "x", DType: errbound.Float32, Count: n}}
	for run, data := range map[string][]byte{"hA": a, "hB": b} {
		meta := ckpt.Meta{RunID: run, Iteration: 0, Rank: 0, Fields: fields}
		if _, err := ckpt.WriteCheckpoint(store, meta, [][]byte{data}); err != nil {
			t.Fatal(err)
		}
	}
	return store, ckpt.Name("hA", 0, 0), ckpt.Name("hB", 0, 0)
}

func TestAnalyzeHistogram(t *testing.T) {
	// Known diffs: 0, 1e-6-ish, 1e-3-ish, 0.5.
	a := f32buf(1, 2, 3, 4)
	b := f32buf(1, 2+1e-6, 3+1e-3, 4.5)
	store, nameA, nameB := writePair(t, a, b)
	an, err := Analyze(context.Background(), store, nameA, nameB)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Fields) != 1 {
		t.Fatalf("fields = %d", len(an.Fields))
	}
	h := an.Fields[0]
	if h.Total != 4 || h.Zero != 1 {
		t.Errorf("total=%d zero=%d", h.Total, h.Zero)
	}
	if h.Max < 0.49 || h.Max > 0.51 {
		t.Errorf("max = %v", h.Max)
	}
	// Decade -1 holds the 0.5 diff.
	if h.Decades[-1] != 1 {
		t.Errorf("decades = %v", h.Decades)
	}
	var sum int64
	for _, c := range h.Decades {
		sum += c
	}
	if sum+h.Zero != h.Total {
		t.Errorf("histogram does not partition: %v + %d != %d", h.Decades, h.Zero, h.Total)
	}
	s := h.String()
	if !strings.Contains(s, "4 elements") || !strings.Contains(s, "1 identical") {
		t.Errorf("String() = %q", s)
	}
}

func TestAnalyzeNonFinite(t *testing.T) {
	a := f32buf(1, float32(math.NaN()), 3)
	b := f32buf(1, float32(math.NaN()), float32(math.Inf(1)))
	store, nameA, nameB := writePair(t, a, b)
	an, err := Analyze(context.Background(), store, nameA, nameB)
	if err != nil {
		t.Fatal(err)
	}
	h := an.Fields[0]
	// NaN vs NaN counts as identical; 3 vs +Inf lands in the non-finite
	// bucket.
	if h.Zero != 2 {
		t.Errorf("zero = %d", h.Zero)
	}
	if h.Decades[999] != 1 {
		t.Errorf("non-finite bucket = %v", h.Decades)
	}
}

func TestCountAbove(t *testing.T) {
	h := FieldHistogram{
		Field:   "x",
		Total:   100,
		Decades: map[int]int64{-7: 50, -4: 30, -1: 5},
	}
	if got := h.CountAbove(1e-3); got != 5 {
		t.Errorf("CountAbove(1e-3) = %d", got)
	}
	if got := h.CountAbove(1e-5); got != 35 {
		t.Errorf("CountAbove(1e-5) = %d", got)
	}
	if got := h.CountAbove(1e-9); got != 85 {
		t.Errorf("CountAbove(1e-9) = %d", got)
	}
}

func TestSuggestEpsilon(t *testing.T) {
	h := FieldHistogram{
		Field:   "x",
		Total:   1000,
		Zero:    900,
		Decades: map[int]int64{-7: 80, -3: 20},
	}
	// Budget 5%: the -3 decade (20 elements = 2%) fits, the -7 decade
	// (80 more) does not -> eps at the top of the -7 decade.
	eps := h.SuggestEpsilon(0.05)
	if eps != 1e-6 {
		t.Errorf("SuggestEpsilon(0.05) = %g, want 1e-6", eps)
	}
	// Budget 50%: everything fits; the smallest decade's floor is used.
	eps = h.SuggestEpsilon(0.5)
	if eps != 1e-7 {
		t.Errorf("SuggestEpsilon(0.5) = %g, want 1e-7", eps)
	}
	// Budget 0: even the top decade exceeds it -> bound above everything.
	eps = h.SuggestEpsilon(0)
	if eps != 1e-2 {
		t.Errorf("SuggestEpsilon(0) = %g, want 1e-2", eps)
	}
	// Identical runs: any bound works.
	clean := FieldHistogram{Field: "x", Total: 10, Zero: 10, Decades: map[int]int64{}}
	if clean.SuggestEpsilon(0.1) <= 0 {
		t.Error("identical-run suggestion not positive")
	}
	var empty FieldHistogram
	if empty.SuggestEpsilon(0.1) != 0 {
		t.Error("empty histogram should suggest 0")
	}
}

func TestAnalyzeSchemaMismatch(t *testing.T) {
	store, nameA, _ := writePair(t, f32buf(1, 2), f32buf(1, 2))
	fields := []ckpt.FieldSpec{{Name: "other", DType: errbound.Float32, Count: 4}}
	meta := ckpt.Meta{RunID: "odd", Iteration: 0, Rank: 0, Fields: fields}
	if _, err := ckpt.WriteCheckpoint(store, meta, [][]byte{make([]byte, 16)}); err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(context.Background(), store, nameA, ckpt.Name("odd", 0, 0)); err == nil {
		t.Error("schema mismatch accepted")
	}
}
