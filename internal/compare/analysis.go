package compare

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/errbound"
	"repro/internal/pfs"
)

// Analysis characterizes HOW two checkpoints differ, not just where: a
// per-field histogram of divergence magnitudes by decade. This is the
// tool a domain scientist uses to pick the error bound ε in the first
// place — the paper assumes ε "is typically known by domain experts"
// (§2.4); this report is how the expert gets to know it.
type Analysis struct {
	// Fields holds one histogram per field, in checkpoint order.
	Fields []FieldHistogram
}

// FieldHistogram is one field's divergence profile.
type FieldHistogram struct {
	// Field is the field name.
	Field string
	// Decades counts nonzero |a-b| by decade: key d covers
	// [10^d, 10^(d+1)).
	Decades map[int]int64
	// Zero counts bitwise-identical element pairs.
	Zero int64
	// Max is the largest absolute difference.
	Max float64
	// Total is the element count.
	Total int64
}

// CountAbove returns how many elements differ by more than eps.
func (h *FieldHistogram) CountAbove(eps float64) int64 {
	var n int64
	cut := int(math.Floor(math.Log10(eps)))
	for d, c := range h.Decades {
		if d > cut {
			n += c
		}
	}
	// The cut decade itself is partially above eps; this histogram is a
	// decade-granular summary, so attribute the boundary decade fully
	// when eps sits at its lower edge.
	//lint:ignore floatcmp exact decade-edge attribution is the histogram's documented convention
	if c, ok := h.Decades[cut]; ok && math.Pow(10, float64(cut)) >= eps {
		n += c
	}
	return n
}

// String renders the histogram compactly, densest decades first.
func (h *FieldHistogram) String() string {
	type row struct {
		d int
		c int64
	}
	rows := make([]row, 0, len(h.Decades))
	for d, c := range h.Decades {
		rows = append(rows, row{d, c})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].d > rows[b].d })
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d elements, %d identical, max |diff| %.3g", h.Field, h.Total, h.Zero, h.Max)
	for _, r := range rows {
		fmt.Fprintf(&sb, "\n  1e%+03d..1e%+03d: %d", r.d, r.d+1, r.c)
	}
	return sb.String()
}

// Analyze reads both checkpoints fully and builds the divergence profile.
// It is an analysis pass, not a fast comparison: every byte is read.
// Cancellation is observed between fields.
func Analyze(ctx context.Context, store *pfs.Store, nameA, nameB string) (*Analysis, error) {
	ra, _, err := ckpt.OpenReader(store, nameA)
	if err != nil {
		return nil, err
	}
	defer ra.Close()
	rb, _, err := ckpt.OpenReader(store, nameB)
	if err != nil {
		return nil, err
	}
	defer rb.Close()
	if !ckpt.SameSchema(ra.Meta(), rb.Meta()) {
		return nil, fmt.Errorf("compare: %s and %s have different schemas", nameA, nameB)
	}
	out := &Analysis{Fields: make([]FieldHistogram, 0, ra.NumFields())}
	for fi := 0; fi < ra.NumFields(); fi++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		f := ra.Field(fi)
		da, _, err := ra.ReadField(fi)
		if err != nil {
			return nil, err
		}
		db, _, err := rb.ReadField(fi)
		if err != nil {
			return nil, err
		}
		h, err := histogramField(f, da, db)
		if err != nil {
			return nil, err
		}
		out.Fields = append(out.Fields, h)
	}
	return out, nil
}

func histogramField(f ckpt.FieldSpec, a, b []byte) (FieldHistogram, error) {
	h := FieldHistogram{Field: f.Name, Decades: make(map[int]int64)}
	esz := f.DType.Size()
	if len(a) != len(b) || len(a)%esz != 0 {
		return h, fmt.Errorf("compare: field %q buffers misshapen", f.Name)
	}
	n := len(a) / esz
	h.Total = int64(n)
	for i := 0; i < n; i++ {
		var va, vb float64
		if f.DType == errbound.Float32 {
			va = float64(math.Float32frombits(binary.LittleEndian.Uint32(a[i*4:])))
			vb = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:])))
		} else {
			va = math.Float64frombits(binary.LittleEndian.Uint64(a[i*8:]))
			vb = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		}
		d := math.Abs(va - vb)
		switch {
		//lint:ignore floatcmp the zero bucket counts bit-identical pairs by definition
		case d == 0 || (math.IsNaN(va) && math.IsNaN(vb)):
			h.Zero++
		case math.IsNaN(d) || math.IsInf(d, 0):
			h.Decades[999]++ // non-finite bucket
			h.Max = math.Inf(1)
		default:
			h.Decades[int(math.Floor(math.Log10(d)))]++
			if d > h.Max { //lint:ignore floatcmp running max; exact ordering intended
				h.Max = d
			}
		}
	}
	return h, nil
}

// SuggestEpsilon proposes an error bound from the profile: the smallest
// decade boundary that would classify at most maxFrac of the elements as
// divergent. It returns 0 when even the largest observed decade exceeds
// the budget.
func (h *FieldHistogram) SuggestEpsilon(maxFrac float64) float64 {
	if h.Total == 0 {
		return 0
	}
	decades := make([]int, 0, len(h.Decades))
	for d := range h.Decades {
		if d != 999 {
			decades = append(decades, d)
		}
	}
	if len(decades) == 0 {
		return math.SmallestNonzeroFloat64 // nothing differs: any bound works
	}
	sort.Ints(decades)
	budget := int64(maxFrac * float64(h.Total))
	var above int64
	// Walk decades from the top down, accumulating the divergent tail.
	for i := len(decades) - 1; i >= 0; i-- {
		if above+h.Decades[decades[i]] > budget {
			// eps at the upper edge of this decade keeps the tail within
			// budget.
			return math.Pow(10, float64(decades[i]+1))
		}
		above += h.Decades[decades[i]]
	}
	return math.Pow(10, float64(decades[0]))
}
