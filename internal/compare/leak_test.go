package compare

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/synth"
)

// countingCtx decrements a budget on every Err() call and reports
// context.Canceled once it is exhausted (sticky). It lets tests cancel a
// comparison deterministically partway through its sequential step
// sequence without relying on timers. Done() stays open, so only the
// explicit Err checks observe the cancellation — exactly the paths the
// engine contract guarantees.
type countingCtx struct {
	//lint:ignore ctxflow test-only context implementation; the embedded parent IS the context
	context.Context
	budget int64
}

func (c *countingCtx) Err() error {
	if atomic.AddInt64(&c.budget, -1) < 0 {
		return context.Canceled
	}
	return nil
}

// errCallsOf runs fn under a counting context with an effectively
// unlimited budget and returns how many Err checks it consumed.
func errCallsOf(t *testing.T, fn func(ctx context.Context) error) int64 {
	t.Helper()
	cc := &countingCtx{Context: context.Background(), budget: 1 << 40}
	if err := fn(cc); err != nil {
		t.Fatalf("baseline run failed: %v", err)
	}
	return (1 << 40) - atomic.LoadInt64(&cc.budget)
}

// leakEnv builds a perturbed pair so stage 2 genuinely streams data.
func leakEnv(t *testing.T) (*testEnv, Options) {
	t.Helper()
	opts := baseOpts(1e-7, 8<<10)
	pert := synth.DefaultPerturb(7)
	pert.MagLo, pert.MagHi = 1e-3, 1e-2
	env := newEnv(t, 16<<10, opts, pert)
	return env, opts
}

// waitGoroutines polls until the goroutine count drops back to at most
// base, failing after a deadline. Background runtime goroutines can
// linger briefly after a canceled pipeline drains.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 64<<10)
			t.Fatalf("goroutines leaked: %d > %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStage2FailureClosesReaders injects a read fault into the streaming
// phase and asserts the engine's cleanup chain closed every checkpoint
// reader: no handle survives the early-return error path.
func TestStage2FailureClosesReaders(t *testing.T) {
	env, opts := leakEnv(t)

	// Measure a clean run's read-op count, then arm the fault on its last
	// read — deep inside stage 2.
	startOps, _ := env.store.ReadStats()
	if _, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts); err != nil {
		t.Fatal(err)
	}
	endOps, _ := env.store.ReadStats()
	total := endOps - startOps
	if total < 3 {
		t.Fatalf("unexpectedly few read ops: %d", total)
	}

	injected := errors.New("injected stage-2 read failure")
	env.store.EvictAll()
	faults.FailReads(env.store, int(total)-1, injected)
	_, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts)
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if n := env.store.OpenHandles(); n != 0 {
		t.Fatalf("%d reader handles leaked after stage-2 failure", n)
	}
}

// TestDirectFailureClosesReaders exercises the same invariant on the
// direct sweep, whose plan has no metadata phase.
func TestDirectFailureClosesReaders(t *testing.T) {
	env, opts := leakEnv(t)
	injected := errors.New("injected direct read failure")
	faults.FailReads(env.store, 2, injected)
	if _, err := CompareDirect(context.Background(), env.store, env.nameA, env.nameB, opts); !errors.Is(err, injected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if n := env.store.OpenHandles(); n != 0 {
		t.Fatalf("%d reader handles leaked after direct failure", n)
	}
}

// TestCancelMidComparisonNoLeaks cancels a comparison partway through its
// step sequence and asserts ctx.Err() propagation plus zero leaked
// handles and goroutines.
func TestCancelMidComparisonNoLeaks(t *testing.T) {
	env, opts := leakEnv(t)
	calls := errCallsOf(t, func(ctx context.Context) error {
		env.store.EvictAll()
		_, err := CompareMerkle(ctx, env.store, env.nameA, env.nameB, opts)
		return err
	})
	base := runtime.NumGoroutine()
	// Cancel at every prefix depth: step boundaries, metadata loads, and
	// per-slice pipeline checks all fold into the same Err sequence.
	for _, budget := range []int64{0, 1, 2, calls / 2, calls - 1} {
		env.store.EvictAll()
		cc := &countingCtx{Context: context.Background(), budget: budget}
		res, err := CompareMerkle(cc, env.store, env.nameA, env.nameB, opts)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("budget %d: err = %v, want context.Canceled", budget, err)
		}
		if res != nil {
			t.Fatalf("budget %d: non-nil result on cancellation", budget)
		}
		if n := env.store.OpenHandles(); n != 0 {
			t.Fatalf("budget %d: %d reader handles leaked", budget, n)
		}
	}
	waitGoroutines(t, base)
}

// TestGroupCancelNoLeaks cancels GroupCompare at several depths; the
// shared-read plan must close every member's reader on each path.
func TestGroupCancelNoLeaks(t *testing.T) {
	env, opts := leakEnv(t)
	calls := errCallsOf(t, func(ctx context.Context) error {
		env.store.EvictAll()
		_, err := GroupCompare(ctx, env.store, env.nameA, []string{env.nameB}, TopologyStar, opts)
		return err
	})
	base := runtime.NumGoroutine()
	for _, budget := range []int64{0, 1, calls / 2, calls - 1} {
		env.store.EvictAll()
		cc := &countingCtx{Context: context.Background(), budget: budget}
		rep, err := GroupCompare(cc, env.store, env.nameA, []string{env.nameB}, TopologyStar, opts)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("budget %d: err = %v, want context.Canceled", budget, err)
		}
		if rep != nil {
			t.Fatalf("budget %d: non-nil report on cancellation", budget)
		}
		if n := env.store.OpenHandles(); n != 0 {
			t.Fatalf("budget %d: %d reader handles leaked", budget, n)
		}
	}
	waitGoroutines(t, base)
}
