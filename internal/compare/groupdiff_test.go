package compare

import (
	"context"
	"testing"

	"repro/internal/aio"
	"repro/internal/cas"
	"repro/internal/synth"
)

// threeRunDiffEnv captures a baseline and two perturbed runs into one
// shared CAS and returns their checkpoint names.
func threeRunDiffEnv(t *testing.T, opts Options) (*diffEnv, []string) {
	t.Helper()
	env := newDiffEnv(t, opts)
	const elems = 64 << 10
	fields := f32Fields([]string{"x", "vx", "phi"}, elems)
	base := make([][]byte, len(fields))
	for i := range base {
		base[i] = synth.FieldF32(elems, int64(40+i))
	}
	names := make([]string, 3)
	for ri, runID := range []string{"runA", "runB", "runC"} {
		data := base
		if ri > 0 {
			data = make([][]byte, len(base))
			for i := range base {
				data[i] = synth.PerturbF32(base[i], synth.DefaultPerturb(int64(10*ri+i)))
			}
		}
		names[ri], _ = env.capture(t, runID, 10, fields, data)
	}
	env.store.EvictAll()
	return env, names
}

// TestGroupCompareDiffMatchesPairwise: the grouped differential
// comparison must report exactly what sequential pairwise CompareDiff
// calls report, while issuing fewer store read operations (shared
// members and deduplicated extents are fetched once for the group).
func TestGroupCompareDiffMatchesPairwise(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	env, names := threeRunDiffEnv(t, opts)

	ops0, _ := env.store.ReadStats()
	rep, err := GroupCompareDiff(context.Background(), env.store, env.cs, names[0], names[1:], TopologyStar, opts)
	if err != nil {
		t.Fatal(err)
	}
	ops1, _ := env.store.ReadStats()
	groupOps := ops1 - ops0

	if len(rep.Pairs) != 2 {
		t.Fatalf("star over 3 members has %d pairs, want 2", len(rep.Pairs))
	}
	var pairwiseOps int64
	for pi, pr := range rep.Pairs {
		if pr.Result.Method != "merkle-cas-group" {
			t.Errorf("pair %d Method = %q", pi, pr.Result.Method)
		}
		env.store.EvictAll()
		po0, _ := env.store.ReadStats()
		solo, err := CompareDiff(context.Background(), env.store, env.cs, pr.NameA, pr.NameB, opts)
		if err != nil {
			t.Fatal(err)
		}
		po1, _ := env.store.ReadStats()
		pairwiseOps += po1 - po0
		assertSameDiffs(t, diffsToMap(solo.Diffs), diffsToMap(pr.Result.Diffs), pr.NameB)
		if pr.Result.DiffCount != solo.DiffCount || pr.Result.ChangedChunks != solo.ChangedChunks {
			t.Errorf("pair %d: group found %d diffs / %d changed, pairwise %d / %d",
				pi, pr.Result.DiffCount, pr.Result.ChangedChunks, solo.DiffCount, solo.ChangedChunks)
		}
		if pr.Result.CandidateChunks != solo.CandidateChunks {
			t.Errorf("pair %d: CandidateChunks %d vs pairwise %d",
				pi, pr.Result.CandidateChunks, solo.CandidateChunks)
		}
	}
	if rep.Reproducible() {
		t.Error("perturbed group reported reproducible")
	}
	if groupOps >= pairwiseOps {
		t.Errorf("group comparison took %d read ops, pairwise took %d — sharing saved nothing", groupOps, pairwiseOps)
	}
}

// TestGroupCompareDiffMemoPrunesAndSurvivesPackFailure: a memo warmed by
// one group comparison prunes every candidate of the next — which then
// completes clean even when every pack read fails, while the unmemoized
// control degrades its surviving candidates to Unverified.
func TestGroupCompareDiffMemoPrunesAndSurvivesPackFailure(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	env, names := threeRunDiffEnv(t, opts)
	memo := NewCASMemo(1e-5)
	opts.Memo = memo

	rep1, err := GroupCompareDiff(context.Background(), env.store, env.cs, names[0], names[1:], TopologyStar, opts)
	if err != nil {
		t.Fatal(err)
	}
	if memo.Len() == 0 {
		t.Fatal("clean group comparison left the memo empty")
	}
	for pi, pr := range rep1.Pairs {
		if pr.Result.CASPrunedChunks != 0 {
			t.Errorf("pair %d: cold memo pruned %d chunks", pi, pr.Result.CASPrunedChunks)
		}
	}

	// Every pack read now fails; the memoized group never schedules one.
	opts.Backend = nameFailBackend{inner: aio.Mmap{}, match: cas.PackName, err: errStorage}
	opts.Degrade = true
	env.store.EvictAll()
	rep2, err := GroupCompareDiff(context.Background(), env.store, env.cs, names[0], names[1:], TopologyStar, opts)
	if err != nil {
		t.Fatal(err)
	}
	for pi, pr := range rep2.Pairs {
		r1 := rep1.Pairs[pi].Result
		if pr.Result.CASPrunedChunks != pr.Result.CandidateChunks || pr.Result.CandidateChunks == 0 {
			t.Errorf("pair %d: pruned %d of %d candidates, want all",
				pi, pr.Result.CASPrunedChunks, pr.Result.CandidateChunks)
		}
		if pr.Result.Degraded || pr.Result.UnverifiedChunks != 0 {
			t.Errorf("pair %d: pruned chunks reported unverified: Degraded=%v Unverified=%d",
				pi, pr.Result.Degraded, pr.Result.UnverifiedChunks)
		}
		assertSameDiffs(t, diffsToMap(r1.Diffs), diffsToMap(pr.Result.Diffs), pr.NameB)
		if pr.Result.DiffCount != r1.DiffCount || pr.Result.ChangedChunks != r1.ChangedChunks {
			t.Errorf("pair %d: replay found %d diffs / %d changed, clean run %d / %d",
				pi, pr.Result.DiffCount, pr.Result.ChangedChunks, r1.DiffCount, r1.ChangedChunks)
		}
	}
	if rep2.Degraded() {
		t.Error("fully memoized group marked degraded")
	}

	// Control: no memo, same failure — every surviving candidate degrades.
	opts.Memo = nil
	env.store.EvictAll()
	rep3, err := GroupCompareDiff(context.Background(), env.store, env.cs, names[0], names[1:], TopologyStar, opts)
	if err != nil {
		t.Fatalf("degrade mode must absorb the pack failure: %v", err)
	}
	if !rep3.Degraded() {
		t.Fatal("unmemoized control not degraded")
	}
	for pi, pr := range rep3.Pairs {
		if pr.Result.UnverifiedChunks != pr.Result.CandidateChunks || pr.Result.CandidateChunks == 0 {
			t.Errorf("pair %d: Unverified=%d Candidates=%d, want all candidates unverified",
				pi, pr.Result.UnverifiedChunks, pr.Result.CandidateChunks)
		}
		if pr.Result.Identical() {
			t.Errorf("pair %d: degraded pair reported identical", pi)
		}
	}
	if rep3.Reproducible() {
		t.Error("degraded group reported reproducible")
	}
}

// TestGroupCompareDiffAllPairs exercises the all-pairs topology,
// including the run-vs-run pair that never touches the baseline.
func TestGroupCompareDiffAllPairs(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	env, names := threeRunDiffEnv(t, opts)
	rep, err := GroupCompareDiff(context.Background(), env.store, env.cs, names[0], names[1:], TopologyAllPairs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pairs) != 3 {
		t.Fatalf("all-pairs over 3 members has %d pairs, want 3", len(rep.Pairs))
	}
	for _, pr := range rep.Pairs {
		env.store.EvictAll()
		solo, err := CompareDiff(context.Background(), env.store, env.cs, pr.NameA, pr.NameB, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameDiffs(t, diffsToMap(solo.Diffs), diffsToMap(pr.Result.Diffs), pr.NameA+"/"+pr.NameB)
	}
}
