package compare

import (
	"context"

	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/errbound"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/stream"
)

// hostCompareModel prices the AllClose baseline's vectorized host-side
// comparison: memory-bound numpy kernels, no device, no kernel launches.
func hostCompareModel() device.Model {
	return device.Model{
		Name:                "host",
		HashBytesPerSec:     2e9,
		CompareBytesPerSec:  4e9,
		TransferBytesPerSec: 20e9,
		NodeHashesPerSec:    1e7,
	}
}

// CompareDirect is the optimized element-wise baseline of §3.2.2: every
// byte of both checkpoints is streamed from the PFS through the async I/O
// pipeline and compared within ε on the device, reporting the indices of
// all divergent elements. Unlike the Merkle method it needs no metadata
// but must always read everything, regardless of the error bound. Its
// engine plan is the Merkle plan minus stage 1:
// open → plan-sweep → stream-verify → report.
func CompareDirect(ctx context.Context, store *pfs.Store, nameA, nameB string, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	st := newPairState(store, nameA, nameB, opts, "direct")
	st.verifyWrap = "direct"
	var p engine.Plan
	p.Retry = opts.Retry
	open := p.Add(engine.StepSetup, "open-checkpoints", st.stepOpenPair)
	plan := p.Add(engine.StepCoalesce, "plan-sweep", st.stepPlanSweep, open)
	verify := p.Add(engine.StepStreamVerify, "stream-verify", st.stepStreamVerify, plan)
	p.Add(engine.StepReport, "report", st.stepReportDirect, verify)
	return st.runPlan(ctx, &p)
}

// stepPlanSweep builds one whole-checkpoint stream of contiguous
// slice-sized chunk pairs spanning every selected field, so the sequential
// sweep pays the batch latency once.
func (st *pairState) stepPlanSweep(ctx context.Context, x *engine.Exec) error {
	ra, rb := st.ra, st.rb
	names := make([]string, ra.NumFields())
	for i := range names {
		names[i] = ra.Field(i).Name
	}
	selected, err := st.opts.fieldFilter(names)
	if err != nil {
		return err
	}
	st.selected = selected
	for fi := 0; fi < ra.NumFields(); fi++ {
		f := ra.Field(fi)
		if !selected(f.Name) {
			continue
		}
		h, err := st.opts.hasherFor(f.DType)
		if err != nil {
			return err
		}
		eltSize := int64(f.DType.Size())
		fb := f.Bytes()
		chunkSize := int64(st.opts.SliceBytes)
		baseA := ra.FieldFileOffset(fi)
		baseB := rb.FieldFileOffset(fi)
		for off := int64(0); off < fb; off += chunkSize {
			n := chunkSize
			if off+n > fb {
				n = fb - off
			}
			st.pairs = append(st.pairs, stream.ChunkPair{
				Index: len(st.refs), OffA: baseA + off, OffB: baseB + off, Len: int(n),
			})
			st.refs = append(st.refs, chunkRef{
				field:    fi,
				chunk:    -1, // the sweep has no Merkle chunk notion
				baseElem: off / eltSize,
				hasher:   h,
			})
		}
		st.res.TotalElements += f.Count
	}
	return nil
}

// stepReportDirect drains the divergence lists into the result.
func (st *pairState) stepReportDirect(ctx context.Context, x *engine.Exec) error {
	st.sortedFieldDiffs(func(fi int) string { return st.ra.Field(fi).Name }, st.ra.NumFields())
	return nil
}

// CompareAllClose is the naive baseline of §3.2.1 (numpy.allclose with
// atol=ε, rtol=0): both checkpoints are read in full with plain blocking
// sequential I/O (no async overlap) and compared element-wise on the host.
// It answers only whether ANY element exceeds the bound — it cannot say
// where — which is why Result.Diffs stays empty. Its plan is
// open → read-compare → report, with the context checked between fields.
func CompareAllClose(ctx context.Context, store *pfs.Store, nameA, nameB string, opts Options) (bool, *Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return false, nil, err
	}
	st := newPairState(store, nameA, nameB, opts, "allclose")
	allWithin := true
	var p engine.Plan
	p.Retry = opts.Retry
	open := p.Add(engine.StepSetup, "open-checkpoints", st.stepOpenPair)
	p.Add(engine.StepReadFull, "read-compare", func(ctx context.Context, x *engine.Exec) error {
		ok, err := st.allCloseFields(ctx, x)
		if err != nil {
			return err
		}
		allWithin = ok
		return nil
	}, open)
	res, err := st.runPlan(ctx, &p)
	if err != nil {
		return false, nil, err
	}
	return allWithin, res, nil
}

// allCloseFields runs the blocking per-field read + host compare loop of
// the AllClose baseline.
func (st *pairState) allCloseFields(ctx context.Context, x *engine.Exec) (bool, error) {
	sw := metrics.NewStopwatch()
	ra, rb := st.ra, st.rb
	model := st.store.Model()
	sharers := st.store.Sharers()
	hostModel := hostCompareModel()

	names := make([]string, ra.NumFields())
	for i := range names {
		names[i] = ra.Field(i).Name
	}
	selected, err := st.opts.fieldFilter(names)
	if err != nil {
		return false, err
	}

	allWithin := true
	for fi := 0; fi < ra.NumFields(); fi++ {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		f := ra.Field(fi)
		if !selected(f.Name) {
			continue
		}
		hasher, err := st.opts.hasherFor(f.DType)
		if err != nil {
			return false, err
		}
		// Blocking sequential reads of both fields, no overlap: the read
		// cost of A and B stack (numpy reads an array at a time).
		da, costA, err := ra.ReadField(fi)
		if err != nil {
			return false, err
		}
		db, costB, err := rb.ReadField(fi)
		if err != nil {
			return false, err
		}
		var cost pfs.Cost
		cost.Add(costA)
		cost.Add(costB)
		st.res.BytesRead += cost.TotalBytes()
		readV := model.SerialReadTime(cost, sharers)
		st.res.Breakdown.AddVirtual(metrics.PhaseRead, readV)
		st.res.Breakdown.AddWall(metrics.PhaseRead, sw.Lap())

		// Vectorized full-array comparison on the host (numpy computes
		// the whole boolean array; there is no early exit).
		var ok bool
		if st.opts.RelEpsilon > 0 {
			ok, err = errbound.AllCloseRel(da, db, f.DType, st.opts.Epsilon, st.opts.RelEpsilon)
		} else {
			ok, err = hasher.AllClose(da, db)
		}
		if err != nil {
			return false, err
		}
		if !ok {
			allWithin = false
		}
		st.res.TotalElements += f.Count
		compV := hostModel.CompareTime(f.Bytes())
		st.res.Breakdown.AddVirtual(metrics.PhaseCompareDirect, compV)
		st.res.Breakdown.AddWall(metrics.PhaseCompareDirect, sw.Lap())
		x.AddVirtual(readV + compV)
	}
	if !allWithin {
		st.res.DiffCount = -1 // unknown count: allclose only answers the boolean
	}
	return allWithin, nil
}
