package compare

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/device"
	"repro/internal/errbound"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/stream"
)

// hostCompareModel prices the AllClose baseline's vectorized host-side
// comparison: memory-bound numpy kernels, no device, no kernel launches.
func hostCompareModel() device.Model {
	return device.Model{
		Name:                "host",
		HashBytesPerSec:     2e9,
		CompareBytesPerSec:  4e9,
		TransferBytesPerSec: 20e9,
		NodeHashesPerSec:    1e7,
	}
}

// CompareDirect is the optimized element-wise baseline of §3.2.2: every
// byte of both checkpoints is streamed from the PFS through the async I/O
// pipeline and compared within ε on the device, reporting the indices of
// all divergent elements. Unlike the Merkle method it needs no metadata
// but must always read everything, regardless of the error bound.
func CompareDirect(store *pfs.Store, nameA, nameB string, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	res := &Result{Method: "direct"}
	sw := metrics.NewStopwatch()

	ra, _, err := ckpt.OpenReader(store, nameA)
	if err != nil {
		return nil, err
	}
	defer ra.Close()
	rb, _, err := ckpt.OpenReader(store, nameB)
	if err != nil {
		return nil, err
	}
	defer rb.Close()
	if !ckpt.SameSchema(ra.Meta(), rb.Meta()) {
		return nil, fmt.Errorf("compare: %s and %s have different schemas", nameA, nameB)
	}
	res.CheckpointBytes = ra.Meta().TotalBytes()
	res.Breakdown.AddVirtual(metrics.PhaseSetup, opts.SetupVirtual)
	res.Breakdown.AddWall(metrics.PhaseSetup, sw.Lap())

	// Build one whole-checkpoint stream of contiguous slice-sized chunk
	// pairs spanning every field, so the sequential sweep pays the batch
	// latency once.
	type chunkRef struct {
		field    int
		baseElem int64
		hasher   *hasherRef
	}
	type job struct {
		pairs []stream.ChunkPair
		refs  []chunkRef
	}
	names := make([]string, ra.NumFields())
	for i := range names {
		names[i] = ra.Field(i).Name
	}
	selected, err := opts.fieldFilter(names)
	if err != nil {
		return nil, err
	}

	var jb job
	hashers := make(map[int]*hasherRef, ra.NumFields())
	for fi := 0; fi < ra.NumFields(); fi++ {
		f := ra.Field(fi)
		if !selected(f.Name) {
			continue
		}
		h, err := opts.hasherFor(f.DType)
		if err != nil {
			return nil, err
		}
		hashers[fi] = &hasherRef{h: h, eltSize: int64(f.DType.Size())}
		fb := f.Bytes()
		chunkSize := int64(opts.SliceBytes)
		baseA := ra.FieldFileOffset(fi)
		baseB := rb.FieldFileOffset(fi)
		for off := int64(0); off < fb; off += chunkSize {
			n := chunkSize
			if off+n > fb {
				n = fb - off
			}
			jb.pairs = append(jb.pairs, stream.ChunkPair{
				Index: len(jb.refs), OffA: baseA + off, OffB: baseB + off, Len: int(n),
			})
			jb.refs = append(jb.refs, chunkRef{
				field:    fi,
				baseElem: off / hashers[fi].eltSize,
				hasher:   hashers[fi],
			})
		}
		res.TotalElements += f.Count
	}

	var mu sync.Mutex
	fieldDiffs := make(map[int][]int64)
	stats, err := stream.Run(ra.File(), rb.File(), jb.pairs, stream.Config{
		Backend:    opts.Backend,
		Device:     opts.Device,
		SliceBytes: opts.SliceBytes,
		Depth:      opts.Depth,
	}, func(p stream.ChunkPair, a, b []byte) (time.Duration, error) {
		ref := jb.refs[p.Index]
		idx, _, err := ref.hasher.h.CompareSlices(nil, a, b)
		if err != nil {
			return 0, err
		}
		if len(idx) > 0 {
			mu.Lock()
			for _, e := range idx {
				fieldDiffs[ref.field] = append(fieldDiffs[ref.field], ref.baseElem+e)
			}
			mu.Unlock()
		}
		return opts.Device.CompareRateTime(int64(len(a))), nil
	})
	if err != nil {
		return nil, fmt.Errorf("compare: direct: %w", err)
	}
	res.BytesRead += stats.BytesRead
	addPipeline(&res.Breakdown, stats)

	for fi := 0; fi < ra.NumFields(); fi++ {
		if idx := fieldDiffs[fi]; len(idx) > 0 {
			sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
			res.Diffs = append(res.Diffs, FieldDiff{Field: ra.Field(fi).Name, Indices: idx})
			res.DiffCount += int64(len(idx))
		}
	}
	res.Breakdown.AddWall(metrics.PhaseCompareDirect, sw.Lap())
	return res, nil
}

// hasherRef pairs a hasher with its element size for index arithmetic.
type hasherRef struct {
	h       *errbound.Hasher
	eltSize int64
}

// CompareAllClose is the naive baseline of §3.2.1 (numpy.allclose with
// atol=ε, rtol=0): both checkpoints are read in full with plain blocking
// sequential I/O (no async overlap) and compared element-wise on the host.
// It answers only whether ANY element exceeds the bound — it cannot say
// where — which is why Result.Diffs stays empty.
func CompareAllClose(store *pfs.Store, nameA, nameB string, opts Options) (bool, *Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return false, nil, err
	}
	res := &Result{Method: "allclose"}
	sw := metrics.NewStopwatch()

	ra, _, err := ckpt.OpenReader(store, nameA)
	if err != nil {
		return false, nil, err
	}
	defer ra.Close()
	rb, _, err := ckpt.OpenReader(store, nameB)
	if err != nil {
		return false, nil, err
	}
	defer rb.Close()
	if !ckpt.SameSchema(ra.Meta(), rb.Meta()) {
		return false, nil, fmt.Errorf("compare: %s and %s have different schemas", nameA, nameB)
	}
	res.CheckpointBytes = ra.Meta().TotalBytes()
	res.Breakdown.AddVirtual(metrics.PhaseSetup, opts.SetupVirtual)
	res.Breakdown.AddWall(metrics.PhaseSetup, sw.Lap())

	model := store.Model()
	sharers := store.Sharers()
	hostModel := hostCompareModel()

	names := make([]string, ra.NumFields())
	for i := range names {
		names[i] = ra.Field(i).Name
	}
	selected, err := opts.fieldFilter(names)
	if err != nil {
		return false, nil, err
	}

	allWithin := true
	for fi := 0; fi < ra.NumFields(); fi++ {
		f := ra.Field(fi)
		if !selected(f.Name) {
			continue
		}
		hasher, err := opts.hasherFor(f.DType)
		if err != nil {
			return false, nil, err
		}
		// Blocking sequential reads of both fields, no overlap: the read
		// cost of A and B stack (numpy reads an array at a time).
		da, costA, err := ra.ReadField(fi)
		if err != nil {
			return false, nil, err
		}
		db, costB, err := rb.ReadField(fi)
		if err != nil {
			return false, nil, err
		}
		var cost pfs.Cost
		cost.Add(costA)
		cost.Add(costB)
		res.BytesRead += cost.TotalBytes()
		res.Breakdown.AddVirtual(metrics.PhaseRead, model.SerialReadTime(cost, sharers))
		res.Breakdown.AddWall(metrics.PhaseRead, sw.Lap())

		// Vectorized full-array comparison on the host (numpy computes
		// the whole boolean array; there is no early exit).
		var ok bool
		if opts.RelEpsilon > 0 {
			ok, err = errbound.AllCloseRel(da, db, f.DType, opts.Epsilon, opts.RelEpsilon)
		} else {
			ok, err = hasher.AllClose(da, db)
		}
		if err != nil {
			return false, nil, err
		}
		if !ok {
			allWithin = false
		}
		res.TotalElements += f.Count
		res.Breakdown.AddVirtual(metrics.PhaseCompareDirect, hostModel.CompareTime(f.Bytes()))
		res.Breakdown.AddWall(metrics.PhaseCompareDirect, sw.Lap())
	}
	if !allWithin {
		res.DiffCount = -1 // unknown count: allclose only answers the boolean
	}
	return allWithin, res, nil
}
