package compare

import (
	"context"
	"sync"
	"time"

	"repro/internal/cas"
	"repro/internal/ckpt"
	"repro/internal/merkle"
	"repro/internal/metrics"
	"repro/internal/pfs"
)

// DiffCaptureReport summarizes one differential capture: the dedup
// outcome, the total write cost, and how the Merkle metadata was brought
// up to date.
type DiffCaptureReport struct {
	// Manifest is the saved leaf manifest of this checkpoint.
	Manifest *cas.Manifest
	// Stats aggregates the CAS dedup outcome.
	Stats cas.CaptureStats
	// Cost covers every write: pack, index, manifest, and metadata.
	Cost pfs.Cost
	// Cold reports the no-prior-manifest path: the tree was built from
	// scratch rather than updated incrementally.
	Cold bool
	// UpdatedLeaves is the number of leaf digests that changed since the
	// previous iteration (0 on the cold path).
	UpdatedLeaves int
	// RehashedNodes counts interior nodes recomputed by the incremental
	// update (0 on the cold path, where every node is computed).
	RehashedNodes int
	// TreeWall is the wall time of metadata construction — incremental
	// update on the warm path, full build on the cold path.
	TreeWall time.Duration
}

// DiffCapturer captures a sequence of checkpoints differentially: chunks
// are deduplicated through a shared CAS, and each iteration's Merkle
// metadata is derived from the previous iteration's tree by incremental
// update (merkle.Update over the changed leaves) instead of a full
// rebuild. One capturer serves one run; iterations of distinct ranks are
// tracked independently. Safe for concurrent use across ranks.
//
// The saved artifacts — a .cman manifest and .mrkl metadata per
// checkpoint — are exactly what CompareDiff and GroupCompareDiff consume.
type DiffCapturer struct {
	store *pfs.Store
	cs    *cas.Store
	opts  Options

	mu   sync.Mutex
	prev map[int]*diffPrev // rank → previous iteration's artifacts
}

type diffPrev struct {
	man  *cas.Manifest
	meta *Metadata
}

// NewDiffCapturer validates the options and returns a capturer writing
// through the given CAS.
func NewDiffCapturer(store *pfs.Store, cs *cas.Store, opts Options) (*DiffCapturer, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &DiffCapturer{store: store, cs: cs, opts: opts, prev: make(map[int]*diffPrev)}, nil
}

// Capture differentially captures one checkpoint (data in meta.Fields
// order) and saves its manifest and Merkle metadata. The golden property
// — asserted by TestDiffCaptureGoldenIncrementalRoot and re-checked by
// cmd/benchcapture on every benched workload — is that the incrementally
// updated tree is bit-identical to a full rebuild.
func (c *DiffCapturer) Capture(ctx context.Context, meta ckpt.Meta, data [][]byte) (*DiffCaptureReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	prev := c.prev[meta.Rank]
	c.mu.Unlock()

	cfg := ckpt.DiffConfig{
		Epsilon:   c.opts.Epsilon,
		ChunkSize: c.opts.ChunkSize,
		Exec:      c.opts.Exec,
	}
	if prev != nil {
		cfg.Prev = prev.man
	}
	rep := &DiffCaptureReport{}
	res, err := ckpt.WriteCheckpointDiff(c.store, c.cs, meta, data, cfg)
	rep.Stats = res.Stats
	rep.Cost = res.Cost
	if err != nil {
		return rep, err
	}
	rep.Manifest = res.Manifest
	rep.Cold = res.Cold

	// Bring the Merkle metadata up to date: clone-and-update from the
	// previous tree on the warm path, full build from the manifest digests
	// on the cold path.
	sw := metrics.NewStopwatch()
	m := &Metadata{Epsilon: c.opts.Epsilon, Fields: make([]FieldMeta, len(res.Manifest.Fields))}
	warm := !res.Cold && prev != nil && prev.meta != nil && len(prev.meta.Fields) == len(res.Manifest.Fields)
	for fi := range res.Manifest.Fields {
		fm := &res.Manifest.Fields[fi]
		var tree *merkle.Tree
		if warm {
			tree = prev.meta.Fields[fi].Tree.Clone()
			updates := make([]merkle.LeafUpdate, 0, len(res.Changed[fi]))
			for _, ci := range res.Changed[fi] {
				updates = append(updates, merkle.LeafUpdate{Chunk: ci, Digest: fm.Digests[ci]})
			}
			n, err := tree.Update(updates, c.opts.Exec)
			if err != nil {
				return rep, err
			}
			rep.UpdatedLeaves += len(updates)
			rep.RehashedNodes += n
		} else {
			t, err := merkle.New(fm.Bytes(), res.Manifest.ChunkSize, fm.Digests)
			if err != nil {
				return rep, err
			}
			t.Build(c.opts.Exec)
			tree = t
		}
		m.Fields[fi] = FieldMeta{Name: fm.Name, DType: fm.DType, Tree: tree}
	}
	rep.TreeWall = sw.Lap()

	name := ckpt.Name(meta.RunID, meta.Iteration, meta.Rank)
	mcost, err := SaveMetadata(c.store, name, m)
	rep.Cost.Add(mcost)
	if err != nil {
		return rep, err
	}

	c.mu.Lock()
	c.prev[meta.Rank] = &diffPrev{man: res.Manifest, meta: m}
	c.mu.Unlock()
	return rep, nil
}
