package compare

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/aio"
	"repro/internal/ckpt"
	"repro/internal/pfs"
	"repro/internal/retry"
	"repro/internal/synth"
)

// nameFailBackend fails every batch read against files whose name contains
// match, scoping injected stage-2 failures to one run's data file (metadata
// loads bypass the backend, so they stay healthy).
type nameFailBackend struct {
	inner aio.Backend
	match string
	err   error
}

func (b nameFailBackend) Name() string { return "namefail" }

func (b nameFailBackend) ReadBatch(ctx context.Context, f *pfs.File, reqs []aio.ReadReq) (pfs.Cost, time.Duration, error) {
	if strings.Contains(f.Name(), b.match) {
		return pfs.Cost{}, 0, b.err
	}
	return b.inner.ReadBatch(ctx, f, reqs)
}

// corruptBackend simulates in-flight corruption: every batch read against
// the matching file lands, then gets one high exponent bit flipped per
// request buffer. Direct pfs re-reads bypass it, so the integrity re-read
// sees the clean on-disk bytes.
type corruptBackend struct {
	inner aio.Backend
	match string
}

func (b corruptBackend) Name() string { return "corrupt" }

func (b corruptBackend) ReadBatch(ctx context.Context, f *pfs.File, reqs []aio.ReadReq) (pfs.Cost, time.Duration, error) {
	cost, io, err := b.inner.ReadBatch(ctx, f, reqs)
	if err == nil && strings.Contains(f.Name(), b.match) {
		for _, r := range reqs {
			if len(r.Buf) >= 4 {
				r.Buf[3] ^= 0x40
			}
		}
	}
	return cost, io, err
}

// flakyCountBackend fails its first `fails` batch reads with a Transient
// error, then delegates.
type flakyCountBackend struct {
	inner aio.Backend
	fails int
	calls int
}

func (b *flakyCountBackend) Name() string { return "flakycount" }

func (b *flakyCountBackend) ReadBatch(ctx context.Context, f *pfs.File, reqs []aio.ReadReq) (pfs.Cost, time.Duration, error) {
	b.calls++
	if b.calls <= b.fails {
		return pfs.Cost{}, 0, retry.Mark(errors.New("transient blip"), retry.Transient)
	}
	return b.inner.ReadBatch(ctx, f, reqs)
}

// corruptOnDisk flips one high exponent bit every stride bytes of the
// checkpoint's data region on the backing file, so every chunk of every
// field re-reads corrupt (media damage, not an in-flight glitch).
func corruptOnDisk(t *testing.T, store *pfs.Store, name string) {
	t.Helper()
	r, _, err := ckpt.OpenReader(store, name)
	if err != nil {
		t.Fatal(err)
	}
	dataStart := r.FieldFileOffset(0)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(store.Root(), filepath.FromSlash(name))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Byte 3 of every 64th float32 is its sign/exponent byte: flipping
	// 0x40 moves the value far beyond any test ε in every chunk.
	for off := dataStart + 3; off < int64(len(raw)); off += 256 {
		raw[off] ^= 0x40
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	store.EvictAll()
}

// TestDegradeStreamFailureMetadataOnlyVerdict: a stage-2 read failure that
// survives retries degrades the pair to a metadata-only verdict instead of
// failing, and the degraded result is never a clean match.
func TestDegradeStreamFailureMetadataOnlyVerdict(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	env := newEnv(t, 64<<10, opts, synth.DefaultPerturb(70))
	opts.Backend = nameFailBackend{inner: aio.Mmap{}, match: "runB", err: errStorage}
	opts.Degrade = true
	res, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatalf("degrade mode must absorb the stream failure: %v", err)
	}
	if !res.Degraded {
		t.Error("result not marked Degraded")
	}
	if res.UnverifiedChunks != res.CandidateChunks || res.CandidateChunks == 0 {
		t.Errorf("UnverifiedChunks = %d, want all %d candidates", res.UnverifiedChunks, res.CandidateChunks)
	}
	if res.Identical() {
		t.Error("degraded result must never be a clean match")
	}

	// Strict mode: same failure is fatal.
	opts.Degrade = false
	env.store.EvictAll()
	if _, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts); !errors.Is(err, errStorage) {
		t.Errorf("strict mode error = %v, want injected fault", err)
	}
}

// TestDegradeInFlightCorruptionRecovers: corruption between disk and the
// comparator fails the leaf-hash integrity check; the single direct
// re-read sees the clean bytes and the comparison completes undegraded
// with exactly the ground-truth diffs.
func TestDegradeInFlightCorruptionRecovers(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	env := newEnv(t, 64<<10, opts, synth.DefaultPerturb(71))
	opts.Backend = corruptBackend{inner: aio.Mmap{}, match: "runB"}
	opts.Degrade = true
	res, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.UnverifiedChunks != 0 {
		t.Errorf("recovered comparison marked degraded: Degraded=%v Unverified=%d",
			res.Degraded, res.UnverifiedChunks)
	}
	assertSameDiffs(t, groundTruth(t, env, 1e-5), diffsToMap(res.Diffs), "recovered")
}

// TestDegradeOnDiskCorruptionUnverified: media corruption repeats on the
// re-read, so every damaged candidate chunk is counted Unverified rather
// than diffed from untrusted bytes — and the result is never Identical
// even with zero recorded diffs.
func TestDegradeOnDiskCorruptionUnverified(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	env := newEnv(t, 64<<10, opts, synth.DefaultPerturb(72))
	corruptOnDisk(t, env.store, env.nameB)
	opts.Degrade = true
	res, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.UnverifiedChunks != res.CandidateChunks || res.CandidateChunks == 0 {
		t.Errorf("Degraded=%v Unverified=%d Candidates=%d, want all candidates unverified",
			res.Degraded, res.UnverifiedChunks, res.CandidateChunks)
	}
	if res.DiffCount != 0 {
		t.Errorf("untrusted chunks produced %d diffs, want none recorded", res.DiffCount)
	}
	if res.Identical() {
		t.Error("unverified result must never be a clean match")
	}
}

// TestDegradeRetriesTransientAtCompareLevel: transient stage-2 blips are
// retried away and accounted, leaving an undegraded, exact result.
func TestDegradeRetriesTransientAtCompareLevel(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	env := newEnv(t, 64<<10, opts, synth.DefaultPerturb(73))
	opts.Backend = &flakyCountBackend{inner: aio.Mmap{}, fails: 2}
	opts.Retry = retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Multiplier: 2}
	res, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatalf("transient blips should be retried away: %v", err)
	}
	if res.ReadRetries != 2 {
		t.Errorf("ReadRetries = %d, want 2", res.ReadRetries)
	}
	if res.Degraded {
		t.Error("retried comparison must not be degraded")
	}
	assertSameDiffs(t, groundTruth(t, env, 1e-5), diffsToMap(res.Diffs), "retried")
}

// ringClosedBackend always reports the shared ring as closed, the way a
// raw Ring does after Close (the Uring wrapper self-heals, so the error
// must be forced to exercise the fallback rung).
type ringClosedBackend struct{}

func (ringClosedBackend) Name() string { return "closed" }

func (ringClosedBackend) ReadBatch(context.Context, *pfs.File, []aio.ReadReq) (pfs.Cost, time.Duration, error) {
	return pfs.Cost{}, 0, aio.ErrRingClosed
}

// TestDegradeRingClosedFallsBack: a closed shared ring falls back to a
// fresh ring per slice — the first ladder rung — without degrading.
func TestDegradeRingClosedFallsBack(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	env := newEnv(t, 64<<10, opts, synth.DefaultPerturb(74))
	opts.Backend = ringClosedBackend{}
	res, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatalf("closed ring should fall back, not fail: %v", err)
	}
	if res.RingFallbacks == 0 {
		t.Error("fallback not accounted in RingFallbacks")
	}
	if res.Degraded {
		t.Error("ring fallback must not degrade the result")
	}
	assertSameDiffs(t, groundTruth(t, env, 1e-5), diffsToMap(res.Diffs), "fallback")
}

// TestGroupRingClosedFallsBack: group member unions served by the
// fresh-ring fallback complete undegraded and are accounted.
func TestGroupRingClosedFallsBack(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	env := newEnv(t, 64<<10, opts, synth.DefaultPerturb(77))
	opts.Backend = ringClosedBackend{}
	rep, err := GroupCompare(context.Background(), env.store, env.nameA, []string{env.nameB}, TopologyStar, opts)
	if err != nil {
		t.Fatalf("closed ring should fall back, not fail: %v", err)
	}
	if rep.RingFallbacks == 0 {
		t.Error("fallback not accounted in GroupReport.RingFallbacks")
	}
	if rep.Degraded() {
		t.Error("ring fallback must not degrade the group")
	}
	if rep.Pairs[0].Result.DiffCount == 0 {
		t.Error("divergent pair lost its diffs through the fallback")
	}
}

// TestGroupDegradeMemberReadFailure: a member whose union read fails after
// retries degrades every pair it touches to the metadata-only verdict; the
// group is never reported reproducible.
func TestGroupDegradeMemberReadFailure(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	env := newEnv(t, 64<<10, opts, synth.DefaultPerturb(75))
	opts.Backend = nameFailBackend{inner: aio.Mmap{}, match: "runB", err: errStorage}
	opts.Degrade = true
	rep, err := GroupCompare(context.Background(), env.store, env.nameA, []string{env.nameB}, TopologyStar, opts)
	if err != nil {
		t.Fatalf("degrade mode must absorb the member failure: %v", err)
	}
	pr := rep.Pairs[0].Result
	if !pr.Degraded || pr.UnverifiedChunks != pr.CandidateChunks || pr.CandidateChunks == 0 {
		t.Errorf("pair Degraded=%v Unverified=%d Candidates=%d", pr.Degraded, pr.UnverifiedChunks, pr.CandidateChunks)
	}
	if !rep.Degraded() || rep.UnverifiedChunks() == 0 {
		t.Error("group report must surface the degradation")
	}
	if rep.Reproducible() {
		t.Error("degraded group must never be reproducible")
	}

	// Strict mode: same failure is fatal.
	opts.Degrade = false
	env.store.EvictAll()
	if _, err := GroupCompare(context.Background(), env.store, env.nameA, []string{env.nameB}, TopologyStar, opts); !errors.Is(err, errStorage) {
		t.Errorf("strict group error = %v, want injected fault", err)
	}
}

// TestGroupDegradeOnDiskCorruptionUnverified: the group integrity rung
// counts media-damaged chunks Unverified instead of diffing them.
func TestGroupDegradeOnDiskCorruptionUnverified(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	env := newEnv(t, 64<<10, opts, synth.DefaultPerturb(76))
	corruptOnDisk(t, env.store, env.nameB)
	opts.Degrade = true
	rep, err := GroupCompare(context.Background(), env.store, env.nameA, []string{env.nameB}, TopologyStar, opts)
	if err != nil {
		t.Fatal(err)
	}
	pr := rep.Pairs[0].Result
	if !pr.Degraded || pr.UnverifiedChunks != pr.CandidateChunks || pr.CandidateChunks == 0 {
		t.Errorf("pair Degraded=%v Unverified=%d Candidates=%d", pr.Degraded, pr.UnverifiedChunks, pr.CandidateChunks)
	}
	if pr.DiffCount != 0 {
		t.Errorf("untrusted chunks produced %d diffs", pr.DiffCount)
	}
	if rep.Reproducible() {
		t.Error("unverified group must never be reproducible")
	}
}
