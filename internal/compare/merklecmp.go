package compare

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/errbound"
	"repro/internal/merkle"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/simclock"
	"repro/internal/stream"
)

// deserializeBytesPerSec prices metadata parsing (a memory-bandwidth-bound
// scan) on the virtual clock.
const deserializeBytesPerSec = 5e9

// CompareMerkle runs the paper's two-stage comparison of one checkpoint
// pair using previously saved metadata:
//
//	stage 1: load both metadata files and diff the trees (pruned BFS),
//	         producing the candidate chunk list;
//	stage 2: stream only the candidate chunks from both checkpoint files
//	         and verify them element-wise within ε.
//
// Both checkpoints (and their metadata) live on the given store under
// their canonical names.
func CompareMerkle(store *pfs.Store, nameA, nameB string, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	res := &Result{Method: "merkle"}
	sw := metrics.NewStopwatch()

	// --- Setup: open both checkpoints.
	ra, _, err := ckpt.OpenReader(store, nameA)
	if err != nil {
		return nil, err
	}
	defer ra.Close()
	rb, _, err := ckpt.OpenReader(store, nameB)
	if err != nil {
		return nil, err
	}
	defer rb.Close()
	if !ckpt.SameSchema(ra.Meta(), rb.Meta()) {
		return nil, fmt.Errorf("compare: %s and %s have different schemas", nameA, nameB)
	}
	res.CheckpointBytes = ra.Meta().TotalBytes()
	res.Breakdown.AddVirtual(metrics.PhaseSetup, opts.SetupVirtual)
	res.Breakdown.AddWall(metrics.PhaseSetup, sw.Lap())

	// --- Stage 1a: read metadata (Read phase) and deserialize.
	model := store.Model()
	sharers := store.Sharers()
	ma, costA, dwallA, err := LoadMetadata(store, nameA)
	if err != nil {
		return nil, err
	}
	mb, costB, dwallB, err := LoadMetadata(store, nameB)
	if err != nil {
		return nil, err
	}
	var metaCost pfs.Cost
	metaCost.Add(costA)
	metaCost.Add(costB)
	res.MetadataBytes = ma.Bytes()
	res.BytesRead += metaCost.TotalBytes()
	res.Breakdown.AddVirtual(metrics.PhaseRead, model.SerialReadTime(metaCost, sharers))
	res.Breakdown.AddWall(metrics.PhaseRead, sw.Lap())
	res.Breakdown.AddVirtual(metrics.PhaseDeserialize,
		simclock.BandwidthTime(metaCost.TotalBytes(), deserializeBytesPerSec))
	res.Breakdown.AddWall(metrics.PhaseDeserialize, dwallA+dwallB)

	if ma.Epsilon != opts.Epsilon || mb.Epsilon != opts.Epsilon {
		return nil, fmt.Errorf("compare: metadata ε (%g, %g) does not match requested ε %g",
			ma.Epsilon, mb.Epsilon, opts.Epsilon)
	}
	if len(ma.Fields) != len(mb.Fields) {
		return nil, fmt.Errorf("compare: metadata field counts differ: %d vs %d",
			len(ma.Fields), len(mb.Fields))
	}

	fieldNames := make([]string, len(ma.Fields))
	for i := range ma.Fields {
		fieldNames[i] = ma.Fields[i].Name
	}
	selected, err := opts.fieldFilter(fieldNames)
	if err != nil {
		return nil, err
	}

	// --- Stage 1b: pruned BFS tree diff per field (CompareTree phase).
	type fieldCandidates struct {
		field  int
		chunks []int
	}
	candidates := make([]fieldCandidates, 0, len(ma.Fields))
	var treeVirtual time.Duration
	for fi := range ma.Fields {
		if !selected(ma.Fields[fi].Name) {
			continue
		}
		ta, tb := ma.Fields[fi].Tree, mb.Fields[fi].Tree
		start := opts.StartLevel
		if start < 0 {
			start = ta.DefaultStartLevel(opts.Exec.Workers())
		}
		chunks, nodes, err := merkle.Diff(ta, tb, start, opts.Exec)
		if err != nil {
			return nil, fmt.Errorf("compare: field %q: %w", ma.Fields[fi].Name, err)
		}
		res.TotalChunks += ta.NumChunks()
		res.CandidateChunks += len(chunks)
		if len(chunks) > 0 {
			candidates = append(candidates, fieldCandidates{field: fi, chunks: chunks})
		}
		// One kernel per visited level (bounded by depth), nodes at the
		// node-hash comparison rate.
		levels := ta.Depth() - start + 1
		treeVirtual += time.Duration(levels)*opts.Device.KernelLaunch +
			simclock.BandwidthTime(nodes*16, float64(opts.Device.NodeHashesPerSec)*16)
	}
	res.Breakdown.AddVirtual(metrics.PhaseCompareTree, treeVirtual)
	res.Breakdown.AddWall(metrics.PhaseCompareTree, sw.Lap())

	// --- Stage 2: stream ALL candidate chunks (across fields) in one
	// batched pipeline per checkpoint pair, so scattered reads amortize
	// the queue latency once instead of once per field.
	type chunkRef struct {
		field      int
		chunk      int
		hasher     *errbound.Hasher
		chunkElems int64
	}
	var (
		pairs []stream.ChunkPair
		refs  []chunkRef
	)
	hashers := make(map[errbound.DType]*errbound.Hasher)
	for _, fc := range candidates {
		fi := fc.field
		fm := ma.Fields[fi]
		hasher := hashers[fm.DType]
		if hasher == nil {
			h, err := opts.hasherFor(fm.DType)
			if err != nil {
				return nil, err
			}
			hashers[fm.DType] = h
			hasher = h
		}
		tree := fm.Tree
		baseA := ra.FieldFileOffset(fi)
		baseB := rb.FieldFileOffset(fi)
		eltSize := int64(fm.DType.Size())
		for _, ci := range fc.chunks {
			off, n := tree.ChunkRange(ci)
			pairs = append(pairs, stream.ChunkPair{
				Index: len(refs),
				OffA:  baseA + off,
				OffB:  baseB + off,
				Len:   n,
			})
			refs = append(refs, chunkRef{
				field:      fi,
				chunk:      ci,
				hasher:     hasher,
				chunkElems: int64(tree.ChunkSize()) / eltSize,
			})
		}
	}
	var (
		mu         sync.Mutex
		fieldDiffs = make(map[int][]int64)
		changed    = make(map[int]map[int]bool) // field -> chunk -> really changed
	)
	if len(pairs) > 0 {
		stats, err := stream.Run(ra.File(), rb.File(), pairs, stream.Config{
			Backend:    opts.Backend,
			Device:     opts.Device,
			SliceBytes: opts.SliceBytes,
			Depth:      opts.Depth,
		}, func(p stream.ChunkPair, a, b []byte) (time.Duration, error) {
			ref := refs[p.Index]
			idx, _, err := ref.hasher.CompareSlices(nil, a, b)
			if err != nil {
				return 0, err
			}
			if len(idx) > 0 {
				base := int64(ref.chunk) * ref.chunkElems
				mu.Lock()
				for _, e := range idx {
					fieldDiffs[ref.field] = append(fieldDiffs[ref.field], base+e)
				}
				if changed[ref.field] == nil {
					changed[ref.field] = make(map[int]bool)
				}
				changed[ref.field][ref.chunk] = true
				mu.Unlock()
			}
			return opts.Device.CompareRateTime(int64(len(a))), nil
		})
		if err != nil {
			return nil, fmt.Errorf("compare: verification: %w", err)
		}
		res.BytesRead += stats.BytesRead
		addPipeline(&res.Breakdown, stats)
	}
	res.Breakdown.AddWall(metrics.PhaseCompareDirect, sw.Lap())

	// --- Assemble the report.
	for _, fc := range candidates {
		res.ChangedChunks += len(changed[fc.field])
	}
	for fi, fm := range ma.Fields {
		if !selected(fm.Name) {
			continue
		}
		res.TotalElements += fm.Tree.DataLen() / int64(fm.DType.Size())
		if idx := fieldDiffs[fi]; len(idx) > 0 {
			sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
			res.Diffs = append(res.Diffs, FieldDiff{Field: fm.Name, Indices: idx})
			res.DiffCount += int64(len(idx))
		}
	}
	return res, nil
}

// addPipeline folds a stage-2 pipeline's virtual cost into the breakdown.
// Following the paper's timer structure (Fig. 6: "for small error bounds,
// we need to load more data which is why the verification time is
// dominant"), the verification phase owns its overlapped data loading:
// the whole pipeline time is charged to CompareDirect, while PhaseRead
// holds only the metadata reads.
func addPipeline(b *metrics.Breakdown, stats stream.Stats) {
	b.AddVirtual(metrics.PhaseCompareDirect, stats.PipelineVirtual)
}

// BuildAndSave builds metadata for a checkpoint already on the store and
// saves it alongside (the offline-tool flow of cmd/reprocmp).
func BuildAndSave(store *pfs.Store, name string, opts Options) (*Metadata, BuildStats, error) {
	r, _, err := ckpt.OpenReader(store, name)
	if err != nil {
		return nil, BuildStats{}, err
	}
	defer r.Close()
	m, stats, _, err := BuildFromReader(r, opts)
	if err != nil {
		return nil, stats, err
	}
	if _, err := SaveMetadata(store, name, m); err != nil {
		return nil, stats, err
	}
	return m, stats, nil
}
