package compare

import (
	"context"

	"repro/internal/ckpt"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/stream"
)

// deserializeBytesPerSec prices metadata parsing (a memory-bandwidth-bound
// scan) on the virtual clock.
const deserializeBytesPerSec = 5e9

// CompareMerkle runs the paper's two-stage comparison of one checkpoint
// pair using previously saved metadata:
//
//	stage 1: load both metadata files and diff the trees (pruned BFS),
//	         producing the candidate chunk list;
//	stage 2: stream only the candidate chunks from both checkpoint files
//	         and verify them element-wise within ε.
//
// Both checkpoints (and their metadata) live on the given store under
// their canonical names. The comparison is an engine plan
// (open → load-metadata → tree-diff → coalesce → stream-verify → report):
// cancellation is observed before every step and inside the diff kernels
// and the streaming pipeline, and the cleanup chain closes both readers on
// every exit path.
func CompareMerkle(ctx context.Context, store *pfs.Store, nameA, nameB string, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	st := newPairState(store, nameA, nameB, opts, "merkle")
	var p engine.Plan
	p.Retry = opts.Retry
	open := p.Add(engine.StepSetup, "open-checkpoints", st.stepOpenPair)
	load := p.Add(engine.StepLoadMetadata, "load-metadata", st.stepLoadMetadata, open)
	diff := p.Add(engine.StepTreeDiff, "tree-diff", st.stepTreeDiff, load)
	coal := p.Add(engine.StepCoalesce, "assemble-batches", st.stepAssemblePairs, diff)
	verify := p.Add(engine.StepStreamVerify, "stream-verify", st.stepStreamVerify, coal)
	p.Add(engine.StepReport, "report", st.stepReportMerkle, verify)
	return st.runPlan(ctx, &p)
}

// stepReportMerkle assembles the Merkle result: changed-chunk counts,
// per-field divergence lists, and element totals over selected fields.
func (st *pairState) stepReportMerkle(ctx context.Context, x *engine.Exec) error {
	// Sum over the changed map, not the surviving candidate list: in
	// differential mode CAS pruning can replay a memoized divergence for a
	// field whose every candidate chunk was pruned from stage 2.
	for fi := range st.changed {
		st.res.ChangedChunks += len(st.changed[fi])
	}
	for _, fm := range st.ma.Fields {
		if !st.selected(fm.Name) {
			continue
		}
		st.res.TotalElements += fm.Tree.DataLen() / int64(fm.DType.Size())
	}
	st.sortedFieldDiffs(func(fi int) string { return st.ma.Fields[fi].Name }, len(st.ma.Fields))
	return nil
}

// addPipeline folds a stage-2 pipeline's virtual cost into the breakdown.
// Following the paper's timer structure (Fig. 6: "for small error bounds,
// we need to load more data which is why the verification time is
// dominant"), the verification phase owns its overlapped data loading:
// the whole pipeline time is charged to CompareDirect, while PhaseRead
// holds only the metadata reads.
func addPipeline(b *metrics.Breakdown, stats stream.Stats) {
	b.AddVirtual(metrics.PhaseCompareDirect, stats.PipelineVirtual)
}

// BuildAndSave builds metadata for a checkpoint already on the store and
// saves it alongside (the offline-tool flow of cmd/reprocmp).
func BuildAndSave(ctx context.Context, store *pfs.Store, name string, opts Options) (*Metadata, BuildStats, error) {
	r, _, err := ckpt.OpenReader(store, name)
	if err != nil {
		return nil, BuildStats{}, err
	}
	defer r.Close()
	m, stats, _, err := BuildFromReader(ctx, r, opts)
	if err != nil {
		return nil, stats, err
	}
	if _, err := SaveMetadata(store, name, m); err != nil {
		return nil, stats, err
	}
	return m, stats, nil
}
