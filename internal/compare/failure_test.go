package compare

import (
	"context"
	"errors"
	"testing"

	"repro/internal/aio"
	"repro/internal/faults"
	"repro/internal/synth"
)

var errStorage = errors.New("injected storage fault")

// TestMerkleSurvivesNothingButReportsReadFaults injects a read fault at
// various depths of the comparison and checks the error surfaces cleanly
// (no hang, no partial result).
func TestMerkleReadFaultPropagates(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	env := newEnv(t, 64<<10, opts, synth.DefaultPerturb(55))
	// Fault during metadata read (first reads of the comparison).
	faults.FailReads(env.store, 0, errStorage)
	if _, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts); !errors.Is(err, errStorage) {
		t.Errorf("metadata-read fault error = %v", err)
	}
	// Fault later, inside the verification pipeline's scattered reads
	// (ops 1-3 are the metadata reads; coalescing merges the candidate
	// chunks into a handful of runs, so op 6 lands mid-verification).
	env.store.EvictAll()
	faults.FailReads(env.store, 6, errStorage)
	if _, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts); !errors.Is(err, errStorage) {
		t.Errorf("verification-read fault error = %v", err)
	}
	// Disarmed: succeeds again.
	faults.FailReads(env.store, 0, nil)
	env.store.EvictAll()
	if _, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts); err != nil {
		t.Errorf("post-fault comparison failed: %v", err)
	}
}

func TestDirectReadFaultPropagates(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	env := newEnv(t, 32<<10, opts, synth.DefaultPerturb(56))
	faults.FailReads(env.store, 3, errStorage)
	if _, err := CompareDirect(context.Background(), env.store, env.nameA, env.nameB, opts); !errors.Is(err, errStorage) {
		t.Errorf("direct fault error = %v", err)
	}
}

func TestAllCloseReadFaultPropagates(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	env := newEnv(t, 32<<10, opts, synth.DefaultPerturb(57))
	faults.FailReads(env.store, 2, errStorage)
	if _, _, err := CompareAllClose(context.Background(), env.store, env.nameA, env.nameB, opts); !errors.Is(err, errStorage) {
		t.Errorf("allclose fault error = %v", err)
	}
}

func TestMerkleFaultWithMmapBackend(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	opts.Backend = aio.Mmap{}
	env := newEnv(t, 32<<10, opts, synth.DefaultPerturb(58))
	faults.FailReads(env.store, 10, errStorage)
	if _, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts); !errors.Is(err, errStorage) {
		t.Errorf("mmap fault error = %v", err)
	}
}

func TestBuildAndSaveWriteFault(t *testing.T) {
	opts := baseOpts(1e-5, 4<<10)
	env := newEnv(t, 16<<10, opts, synth.DefaultPerturb(59))
	faults.FailWrites(env.store, 0, errStorage)
	if _, _, err := BuildAndSave(context.Background(), env.store, env.nameA, opts); !errors.Is(err, errStorage) {
		t.Errorf("metadata write fault error = %v", err)
	}
	// Disarmed retry succeeds (the failed write is replaced).
	if _, _, err := BuildAndSave(context.Background(), env.store, env.nameA, opts); err != nil {
		t.Errorf("retry after write fault failed: %v", err)
	}
}
