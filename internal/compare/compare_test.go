package compare

import (
	"context"
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/device"
	"repro/internal/errbound"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/synth"
)

// testEnv writes two synthetic checkpoints (run B perturbed from run A)
// plus their metadata onto a store and returns everything needed to
// compare them.
type testEnv struct {
	store        *pfs.Store
	nameA, nameB string
	dataA, dataB [][]byte
	meta         ckpt.Meta
}

func newEnv(t *testing.T, elems int, opts Options, perturb synth.PerturbConfig) *testEnv {
	t.Helper()
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	const nFields = 3
	dataA, dataB := synth.RunPair(elems, nFields, 42, perturb)
	fields := make([]ckpt.FieldSpec, nFields)
	for i, n := range []string{"x", "vx", "phi"} {
		fields[i] = ckpt.FieldSpec{Name: n, DType: errbound.Float32, Count: int64(elems)}
	}
	metaA := ckpt.Meta{RunID: "runA", Iteration: 10, Rank: 0, Fields: fields}
	metaB := ckpt.Meta{RunID: "runB", Iteration: 10, Rank: 0, Fields: fields}
	if _, err := ckpt.WriteCheckpoint(store, metaA, dataA); err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.WriteCheckpoint(store, metaB, dataB); err != nil {
		t.Fatal(err)
	}
	env := &testEnv{
		store: store,
		nameA: ckpt.Name("runA", 10, 0),
		nameB: ckpt.Name("runB", 10, 0),
		dataA: dataA,
		dataB: dataB,
		meta:  metaA,
	}
	// Build and save metadata for both (the checkpoint-time step).
	for _, nd := range []struct {
		name string
		data [][]byte
	}{{env.nameA, dataA}, {env.nameB, dataB}} {
		m, _, err := Build(fields, nd.data, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := SaveMetadata(store, nd.name, m); err != nil {
			t.Fatal(err)
		}
	}
	store.EvictAll() // every comparison starts cold, per the methodology
	return env
}

func baseOpts(eps float64, chunk int) Options {
	return Options{
		Epsilon:   eps,
		ChunkSize: chunk,
		Exec:      device.NewParallel(2),
	}
}

// groundTruth computes the expected diff indices per field directly.
func groundTruth(t *testing.T, env *testEnv, eps float64) map[string][]int64 {
	t.Helper()
	h, err := errbound.NewHasher(errbound.Float32, eps)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]int64)
	for fi, f := range env.meta.Fields {
		idx, _, err := h.CompareSlices(nil, env.dataA[fi], env.dataB[fi])
		if err != nil {
			t.Fatal(err)
		}
		if len(idx) > 0 {
			out[f.Name] = idx
		}
	}
	return out
}

func diffsToMap(diffs []FieldDiff) map[string][]int64 {
	out := make(map[string][]int64, len(diffs))
	for _, d := range diffs {
		out[d.Field] = d.Indices
	}
	return out
}

func assertSameDiffs(t *testing.T, want, got map[string][]int64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d fields with diffs, want %d", label, len(got), len(want))
	}
	for f, w := range want {
		g, ok := got[f]
		if !ok {
			t.Fatalf("%s: field %s missing", label, f)
		}
		if len(g) != len(w) {
			t.Fatalf("%s: field %s has %d diffs, want %d", label, f, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: field %s diff %d = %d, want %d", label, f, i, g[i], w[i])
			}
		}
	}
}

func TestMerkleMatchesGroundTruth(t *testing.T) {
	for _, eps := range []float64{1e-3, 1e-5, 1e-7} {
		for _, chunk := range []int{4 << 10, 64 << 10} {
			opts := baseOpts(eps, chunk)
			env := newEnv(t, 64<<10, opts, synth.DefaultPerturb(7))
			want := groundTruth(t, env, eps)
			res, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts)
			if err != nil {
				t.Fatalf("eps=%g chunk=%d: %v", eps, chunk, err)
			}
			assertSameDiffs(t, want, diffsToMap(res.Diffs), "merkle")
			if res.Method != "merkle" {
				t.Errorf("Method = %q", res.Method)
			}
			var wantCount int64
			for _, w := range want {
				wantCount += int64(len(w))
			}
			if res.DiffCount != wantCount {
				t.Errorf("DiffCount = %d, want %d", res.DiffCount, wantCount)
			}
		}
	}
}

func TestDirectMatchesGroundTruth(t *testing.T) {
	opts := baseOpts(1e-5, 16<<10)
	env := newEnv(t, 64<<10, opts, synth.DefaultPerturb(8))
	want := groundTruth(t, env, 1e-5)
	res, err := CompareDirect(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDiffs(t, want, diffsToMap(res.Diffs), "direct")
	if res.CandidateChunks != 0 || res.MetadataBytes != 0 {
		t.Error("direct method should not report hash-stage artifacts")
	}
}

func TestMerkleAgreesWithDirect(t *testing.T) {
	opts := baseOpts(1e-6, 8<<10)
	env := newEnv(t, 32<<10, opts, synth.DefaultPerturb(9))
	rm, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	env.store.EvictAll()
	rd, err := CompareDirect(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDiffs(t, diffsToMap(rd.Diffs), diffsToMap(rm.Diffs), "merkle-vs-direct")
	if rm.DiffCount != rd.DiffCount {
		t.Errorf("merkle found %d, direct found %d", rm.DiffCount, rd.DiffCount)
	}
}

func TestAllCloseAgrees(t *testing.T) {
	opts := baseOpts(1e-5, 16<<10)
	env := newEnv(t, 32<<10, opts, synth.DefaultPerturb(10))
	want := groundTruth(t, env, 1e-5)
	ok, res, err := CompareAllClose(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ok != (len(want) == 0) {
		t.Errorf("allclose = %v, ground truth has %d fields with diffs", ok, len(want))
	}
	if len(res.Diffs) != 0 {
		t.Error("allclose must not report locations")
	}
}

func TestAllCloseIdenticalRuns(t *testing.T) {
	opts := baseOpts(1e-7, 16<<10)
	pert := synth.DefaultPerturb(11)
	pert.UntouchedFrac = 1.0 // identical runs
	env := newEnv(t, 16<<10, opts, pert)
	ok, res, err := CompareAllClose(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("identical runs reported as differing")
	}
	if !res.Identical() {
		t.Error("Identical() = false for identical runs")
	}
}

func TestMerkleIdenticalRunsReadNoData(t *testing.T) {
	// The paper's ideal case: no changes -> only metadata is read.
	opts := baseOpts(1e-5, 8<<10)
	pert := synth.DefaultPerturb(12)
	pert.UntouchedFrac = 1.0
	env := newEnv(t, 64<<10, opts, pert)
	res, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiffCount != 0 || res.CandidateChunks != 0 {
		t.Errorf("identical runs: diffs=%d candidates=%d", res.DiffCount, res.CandidateChunks)
	}
	if res.BytesRead > 2*res.MetadataBytes+4096 {
		t.Errorf("identical runs read %d bytes, metadata is only %d", res.BytesRead, res.MetadataBytes)
	}
}

func TestConservativeNoFalseNegatives(t *testing.T) {
	// Every ground-truth divergent element must be inside a candidate
	// chunk: the error-bounded hash can have false positives, never false
	// negatives. Verified implicitly by diff equality, and explicitly by
	// chunk accounting here.
	opts := baseOpts(1e-4, 4<<10)
	env := newEnv(t, 128<<10, opts, synth.DefaultPerturb(13))
	res, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChangedChunks > res.CandidateChunks {
		t.Errorf("changed chunks %d exceed candidates %d", res.ChangedChunks, res.CandidateChunks)
	}
	if res.FalsePositiveChunks() < 0 {
		t.Errorf("negative false positives: %d", res.FalsePositiveChunks())
	}
	if res.FalsePositiveRate() < 0 || res.FalsePositiveRate() > 1 {
		t.Errorf("FP rate out of range: %v", res.FalsePositiveRate())
	}
	want := groundTruth(t, env, 1e-4)
	assertSameDiffs(t, want, diffsToMap(res.Diffs), "conservative")
}

func TestMerkleReadsLessThanDirect(t *testing.T) {
	// The headline claim: with few changes, the Merkle method reads far
	// less data and is faster on the virtual clock.
	// Low change rate (the reproducibility-study regime the method is
	// built for): ~2% of blocks diverge above ε.
	opts := baseOpts(1e-3, 4<<10)
	opts.SetupVirtual = time.Millisecond // do not let fixed setup wash out the comparison
	pert := synth.DefaultPerturb(14)
	pert.UntouchedFrac = 0.98
	env := newEnv(t, 4<<20, opts, pert)
	rm, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	env.store.EvictAll()
	rd, err := CompareDirect(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rm.BytesRead >= rd.BytesRead {
		t.Errorf("merkle read %d bytes, direct read %d", rm.BytesRead, rd.BytesRead)
	}
	if rm.VirtualElapsed() >= rd.VirtualElapsed() {
		t.Errorf("merkle virtual %v not faster than direct %v", rm.VirtualElapsed(), rd.VirtualElapsed())
	}
	if rm.ThroughputGBps() <= rd.ThroughputGBps() {
		t.Errorf("merkle throughput %.2f <= direct %.2f", rm.ThroughputGBps(), rd.ThroughputGBps())
	}
}

func TestBreakdownPhasesPopulated(t *testing.T) {
	opts := baseOpts(1e-5, 8<<10)
	env := newEnv(t, 64<<10, opts, synth.DefaultPerturb(15))
	res, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []metrics.Phase{metrics.PhaseSetup, metrics.PhaseRead, metrics.PhaseDeserialize, metrics.PhaseCompareTree} {
		if res.Breakdown.Get(p).Virtual <= 0 {
			t.Errorf("phase %v has no virtual time", p)
		}
	}
	if res.VirtualElapsed() <= 0 || res.WallElapsed() <= 0 {
		t.Error("elapsed times not accounted")
	}
}

func TestEpsilonMismatchRejected(t *testing.T) {
	opts := baseOpts(1e-5, 8<<10)
	env := newEnv(t, 16<<10, opts, synth.DefaultPerturb(16))
	other := opts
	other.Epsilon = 1e-3 // metadata was built at 1e-5
	if _, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, other); err == nil {
		t.Error("ε mismatch between metadata and options accepted")
	}
}

func TestSchemaMismatchRejected(t *testing.T) {
	opts := baseOpts(1e-5, 8<<10)
	env := newEnv(t, 16<<10, opts, synth.DefaultPerturb(17))
	// A third checkpoint with a different schema.
	fields := []ckpt.FieldSpec{{Name: "x", DType: errbound.Float32, Count: 100}}
	m := ckpt.Meta{RunID: "other", Iteration: 10, Rank: 0, Fields: fields}
	if _, err := ckpt.WriteCheckpoint(env.store, m, [][]byte{make([]byte, 400)}); err != nil {
		t.Fatal(err)
	}
	otherName := ckpt.Name("other", 10, 0)
	if _, err := CompareMerkle(context.Background(), env.store, env.nameA, otherName, opts); err == nil {
		t.Error("schema mismatch accepted by merkle")
	}
	if _, err := CompareDirect(context.Background(), env.store, env.nameA, otherName, opts); err == nil {
		t.Error("schema mismatch accepted by direct")
	}
	if _, _, err := CompareAllClose(context.Background(), env.store, env.nameA, otherName, opts); err == nil {
		t.Error("schema mismatch accepted by allclose")
	}
}

func TestOptionsValidation(t *testing.T) {
	env := newEnv(t, 1024, baseOpts(1e-5, 4096), synth.DefaultPerturb(18))
	for _, eps := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := CompareMerkle(context.Background(), env.store, env.nameA, env.nameB, Options{Epsilon: eps}); err == nil {
			t.Errorf("epsilon %v accepted", eps)
		}
	}
	if _, _, err := Build(nil, [][]byte{{1}}, Options{Epsilon: 1e-5}); err == nil {
		t.Error("mismatched build inputs accepted")
	}
}

func TestMetadataRoundTrip(t *testing.T) {
	opts := baseOpts(1e-5, 8<<10)
	fields := []ckpt.FieldSpec{
		{Name: "x", DType: errbound.Float32, Count: 10000},
		{Name: "phi", DType: errbound.Float64, Count: 5000},
	}
	data := [][]byte{synth.FieldF32(10000, 1), make([]byte, 40000)}
	m, stats, err := Build(fields, data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bytes != 80000 {
		t.Errorf("hashed bytes = %d", stats.Bytes)
	}
	if stats.TotalVirtual() <= 0 {
		t.Error("build virtual time not accounted")
	}
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) || n != m.Bytes() {
		t.Errorf("WriteTo reported %d, buffer %d, Bytes() %d", n, buf.Len(), m.Bytes())
	}
	got, err := ReadMetadata(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epsilon != m.Epsilon || len(got.Fields) != len(m.Fields) {
		t.Error("round trip lost container state")
	}
	for i := range m.Fields {
		if got.Fields[i].Name != m.Fields[i].Name || got.Fields[i].DType != m.Fields[i].DType {
			t.Errorf("field %d identity lost", i)
		}
		if got.Fields[i].Tree.Root() != m.Fields[i].Tree.Root() {
			t.Errorf("field %d tree root lost", i)
		}
	}
}

func TestReadMetadataRejectsGarbage(t *testing.T) {
	if _, err := ReadMetadata(bytes.NewReader([]byte("not metadata at all..."))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadMetadata(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestBuildAndSave(t *testing.T) {
	opts := baseOpts(1e-5, 8<<10)
	env := newEnv(t, 8<<10, opts, synth.DefaultPerturb(19))
	m, stats, err := BuildAndSave(context.Background(), env.store, env.nameA, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Fields) != 3 || stats.Bytes == 0 {
		t.Error("BuildAndSave returned incomplete results")
	}
	loaded, _, _, err := LoadMetadata(context.Background(), env.store, env.nameA)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fields[0].Tree.Root() != m.Fields[0].Tree.Root() {
		t.Error("saved metadata does not round trip through the store")
	}
}

func TestFig8ShapeTreeBuildCPUvsGPU(t *testing.T) {
	// Tree construction priced on the GPU model must be orders of
	// magnitude below the CPU model, and flat in chunk size.
	// 16 MiB of data: large enough that kernel-launch latency no longer
	// hides the bandwidth gap (the full 4-orders gap appears at the
	// paper's 7 GB scale; see cmd/experiments -fig 8).
	fields := []ckpt.FieldSpec{{Name: "x", DType: errbound.Float32, Count: 1 << 22}}
	data := [][]byte{synth.FieldF32(1<<22, 3)}
	var prevGPU time.Duration
	for _, chunk := range []int{4 << 10, 32 << 10} {
		gpuOpts := Options{Epsilon: 1e-7, ChunkSize: chunk, Device: device.GPUModel(), Exec: device.NewParallel(2)}
		cpuOpts := Options{Epsilon: 1e-7, ChunkSize: chunk, Device: device.CPUModel(), Exec: device.Serial{}}
		_, gs, err := Build(fields, data, gpuOpts)
		if err != nil {
			t.Fatal(err)
		}
		_, cs, err := Build(fields, data, cpuOpts)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(cs.TotalVirtual()) / float64(gs.TotalVirtual())
		if ratio < 100 {
			t.Errorf("chunk %d: CPU/GPU build ratio %.1f, want >> 100", chunk, ratio)
		}
		if prevGPU > 0 {
			rel := math.Abs(float64(gs.TotalVirtual()-prevGPU)) / float64(prevGPU)
			if rel > 0.5 {
				t.Errorf("GPU build time varies %.2f across chunk sizes, want flat", rel)
			}
		}
		prevGPU = gs.TotalVirtual()
	}
}
