package compare

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/engine"
	"repro/internal/pfs"
)

// Method selects a comparison approach.
type Method int

// Comparison methods.
const (
	// MethodMerkle is the paper's contribution: metadata-driven two-stage
	// comparison.
	MethodMerkle Method = iota + 1
	// MethodDirect is the optimized element-wise baseline.
	MethodDirect
	// MethodAllClose is the naive boolean baseline.
	MethodAllClose
)

// String returns the method's report name.
func (m Method) String() string {
	switch m {
	case MethodMerkle:
		return "merkle"
	case MethodDirect:
		return "direct"
	case MethodAllClose:
		return "allclose"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Run dispatches one checkpoint-pair comparison by method.
func (m Method) Run(ctx context.Context, store *pfs.Store, nameA, nameB string, opts Options) (*Result, error) {
	switch m {
	case MethodMerkle:
		return CompareMerkle(ctx, store, nameA, nameB, opts)
	case MethodDirect:
		return CompareDirect(ctx, store, nameA, nameB, opts)
	case MethodAllClose:
		_, res, err := CompareAllClose(ctx, store, nameA, nameB, opts)
		return res, err
	default:
		return nil, fmt.Errorf("compare: unknown method %d", int(m))
	}
}

// PairReport is the comparison of one aligned checkpoint pair.
type PairReport struct {
	// Iteration and Rank identify the checkpoint within the histories.
	Iteration int
	Rank      int
	// NameA and NameB are the compared file names.
	NameA, NameB string
	// MetadataOnly marks a pair where at least one side was compacted, so
	// the comparison fell back to the metadata-only tree diff
	// (CompareTreesOnly) regardless of the requested method.
	MetadataOnly bool
	// Result is the comparison outcome.
	Result *Result
}

// HistoryReport is the comparison of two runs' full checkpoint histories,
// the multi-run analysis of the paper's problem formulation.
type HistoryReport struct {
	// RunA and RunB are the compared run IDs.
	RunA, RunB string
	// Pairs holds one report per aligned checkpoint, ordered by iteration
	// then rank. On an error or cancellation mid-history this holds the
	// pairs completed before the failure — partial but truthful.
	Pairs []PairReport
	// FirstDivergence points at the earliest pair with an out-of-bound
	// difference (nil if the runs are reproducible within ε).
	FirstDivergence *PairReport
}

// TotalDiffs sums divergent elements across all pairs.
func (h *HistoryReport) TotalDiffs() int64 {
	var t int64
	for i := range h.Pairs {
		if d := h.Pairs[i].Result.DiffCount; d > 0 {
			t += d
		}
	}
	return t
}

// Reproducible reports whether no checkpoint pair diverged beyond ε.
func (h *HistoryReport) Reproducible() bool { return h.FirstDivergence == nil }

// Degraded reports whether any pair completed on a degraded path
// (unverified chunks or a metadata-only verdict): absence of divergence is
// then inconclusive even when Reproducible returns true.
func (h *HistoryReport) Degraded() bool {
	for i := range h.Pairs {
		r := h.Pairs[i].Result
		if r.Degraded || r.UnverifiedChunks > 0 {
			return true
		}
	}
	return false
}

// unionHistory lists a run's comparable checkpoints: the union of its data
// files (ckpt.History) and its metadata-only survivors (MetadataHistory),
// so compacted history still aligns. Sorted by iteration then rank.
func unionHistory(store *pfs.Store, runID string) ([]string, error) {
	data, err := ckpt.History(store, runID)
	if err != nil {
		return nil, err
	}
	meta, err := MetadataHistory(store, runID)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(data)+len(meta))
	out := make([]string, 0, len(data)+len(meta))
	for _, n := range data {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, n := range meta {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		_, ii, ri, _ := ckpt.ParseName(out[i])
		_, ij, rj, _ := ckpt.ParseName(out[j])
		if ii != ij {
			return ii < ij
		}
		return ri < rj
	})
	return out, nil
}

// CompareHistories aligns the checkpoint histories of two runs on a store
// (by iteration and rank) and compares every pair with the given method.
// Histories align on the union of data checkpoints and metadata-only
// survivors, so a pair with a compacted side degrades to the metadata-only
// tree diff instead of failing; both histories must still contain the same
// set of (iteration, rank) captures. The planner emits one step per pair,
// so cancellation lands on a pair boundary; on error or cancellation the
// returned report holds the pairs completed so far alongside the error.
func CompareHistories(ctx context.Context, store *pfs.Store, runA, runB string, method Method, opts Options) (*HistoryReport, error) {
	histA, err := unionHistory(store, runA)
	if err != nil {
		return nil, err
	}
	histB, err := unionHistory(store, runB)
	if err != nil {
		return nil, err
	}
	if len(histA) == 0 {
		return nil, fmt.Errorf("compare: run %q has no checkpoints", runA)
	}
	if len(histA) != len(histB) {
		return nil, fmt.Errorf("compare: histories have %d vs %d checkpoints", len(histA), len(histB))
	}
	report := &HistoryReport{RunA: runA, RunB: runB, Pairs: make([]PairReport, 0, len(histA))}
	var p engine.Plan
	p.Retry = opts.retryPolicy()
	for i := range histA {
		nameA, nameB := histA[i], histB[i]
		_, itA, rkA, _ := ckpt.ParseName(nameA)
		_, itB, rkB, _ := ckpt.ParseName(nameB)
		if itA != itB || rkA != rkB {
			return nil, fmt.Errorf("compare: history misalignment at %s vs %s", nameA, nameB)
		}
		it, rk := itA, rkA
		p.Add(engine.StepStreamVerify, fmt.Sprintf("pair:iter=%d:rank=%d", it, rk),
			func(ctx context.Context, x *engine.Exec) error {
				metaOnly := IsCompacted(store, nameA) || IsCompacted(store, nameB)
				var res *Result
				var err error
				if metaOnly {
					res, err = CompareTreesOnly(ctx, store, nameA, nameB, opts)
				} else {
					res, err = method.Run(ctx, store, nameA, nameB, opts)
				}
				if err != nil {
					return fmt.Errorf("compare: pair iter=%d rank=%d: %w", it, rk, err)
				}
				report.Pairs = append(report.Pairs, PairReport{
					Iteration: it, Rank: rk, NameA: nameA, NameB: nameB,
					MetadataOnly: metaOnly, Result: res,
				})
				if res.DiffCount != 0 && report.FirstDivergence == nil {
					report.FirstDivergence = &report.Pairs[len(report.Pairs)-1]
				}
				return nil
			})
	}
	if _, err := engine.Execute(ctx, &p); err != nil {
		return report, err
	}
	return report, nil
}
