package compare

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/pfs"
)

// Method selects a comparison approach.
type Method int

// Comparison methods.
const (
	// MethodMerkle is the paper's contribution: metadata-driven two-stage
	// comparison.
	MethodMerkle Method = iota + 1
	// MethodDirect is the optimized element-wise baseline.
	MethodDirect
	// MethodAllClose is the naive boolean baseline.
	MethodAllClose
)

// String returns the method's report name.
func (m Method) String() string {
	switch m {
	case MethodMerkle:
		return "merkle"
	case MethodDirect:
		return "direct"
	case MethodAllClose:
		return "allclose"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Run dispatches one checkpoint-pair comparison by method.
func (m Method) Run(store *pfs.Store, nameA, nameB string, opts Options) (*Result, error) {
	switch m {
	case MethodMerkle:
		return CompareMerkle(store, nameA, nameB, opts)
	case MethodDirect:
		return CompareDirect(store, nameA, nameB, opts)
	case MethodAllClose:
		_, res, err := CompareAllClose(store, nameA, nameB, opts)
		return res, err
	default:
		return nil, fmt.Errorf("compare: unknown method %d", int(m))
	}
}

// PairReport is the comparison of one aligned checkpoint pair.
type PairReport struct {
	// Iteration and Rank identify the checkpoint within the histories.
	Iteration int
	Rank      int
	// NameA and NameB are the compared file names.
	NameA, NameB string
	// Result is the comparison outcome.
	Result *Result
}

// HistoryReport is the comparison of two runs' full checkpoint histories,
// the multi-run analysis of the paper's problem formulation.
type HistoryReport struct {
	// RunA and RunB are the compared run IDs.
	RunA, RunB string
	// Pairs holds one report per aligned checkpoint, ordered by iteration
	// then rank.
	Pairs []PairReport
	// FirstDivergence points at the earliest pair with an out-of-bound
	// difference (nil if the runs are reproducible within ε).
	FirstDivergence *PairReport
}

// TotalDiffs sums divergent elements across all pairs.
func (h *HistoryReport) TotalDiffs() int64 {
	var t int64
	for i := range h.Pairs {
		if d := h.Pairs[i].Result.DiffCount; d > 0 {
			t += d
		}
	}
	return t
}

// Reproducible reports whether no checkpoint pair diverged beyond ε.
func (h *HistoryReport) Reproducible() bool { return h.FirstDivergence == nil }

// CompareHistories aligns the checkpoint histories of two runs on a store
// (by iteration and rank) and compares every pair with the given method.
// Both histories must contain the same set of (iteration, rank) captures.
func CompareHistories(store *pfs.Store, runA, runB string, method Method, opts Options) (*HistoryReport, error) {
	histA, err := ckpt.History(store, runA)
	if err != nil {
		return nil, err
	}
	histB, err := ckpt.History(store, runB)
	if err != nil {
		return nil, err
	}
	if len(histA) == 0 {
		return nil, fmt.Errorf("compare: run %q has no checkpoints", runA)
	}
	if len(histA) != len(histB) {
		return nil, fmt.Errorf("compare: histories have %d vs %d checkpoints", len(histA), len(histB))
	}
	report := &HistoryReport{RunA: runA, RunB: runB, Pairs: make([]PairReport, 0, len(histA))}
	for i := range histA {
		_, itA, rkA, _ := ckpt.ParseName(histA[i])
		_, itB, rkB, _ := ckpt.ParseName(histB[i])
		if itA != itB || rkA != rkB {
			return nil, fmt.Errorf("compare: history misalignment at %s vs %s", histA[i], histB[i])
		}
		res, err := method.Run(store, histA[i], histB[i], opts)
		if err != nil {
			return nil, fmt.Errorf("compare: pair iter=%d rank=%d: %w", itA, rkA, err)
		}
		report.Pairs = append(report.Pairs, PairReport{
			Iteration: itA, Rank: rkA, NameA: histA[i], NameB: histB[i], Result: res,
		})
		if res.DiffCount != 0 && report.FirstDivergence == nil {
			report.FirstDivergence = &report.Pairs[len(report.Pairs)-1]
		}
	}
	return report, nil
}
