package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/compare"
	"repro/internal/device"
	"repro/internal/errbound"
	"repro/internal/pfs"
	"repro/internal/synth"
)

// buildWorkload writes nPairs checkpoint pairs with metadata and returns
// the pair list.
func buildWorkload(t *testing.T, store *pfs.Store, nPairs, elems int, opts compare.Options) []Pair {
	t.Helper()
	fields := []ckpt.FieldSpec{
		{Name: "x", DType: errbound.Float32, Count: int64(elems)},
		{Name: "vx", DType: errbound.Float32, Count: int64(elems)},
	}
	pairs := make([]Pair, 0, nPairs)
	for i := 0; i < nPairs; i++ {
		pert := synth.DefaultPerturb(int64(100 + i))
		pert.UntouchedFrac = 0.9
		dataA, dataB := synth.RunPair(elems, len(fields), int64(i), pert)
		metaA := ckpt.Meta{RunID: "scaleA", Iteration: i, Rank: 0, Fields: fields}
		metaB := ckpt.Meta{RunID: "scaleB", Iteration: i, Rank: 0, Fields: fields}
		if _, err := ckpt.WriteCheckpoint(store, metaA, dataA); err != nil {
			t.Fatal(err)
		}
		if _, err := ckpt.WriteCheckpoint(store, metaB, dataB); err != nil {
			t.Fatal(err)
		}
		nameA, nameB := ckpt.Name("scaleA", i, 0), ckpt.Name("scaleB", i, 0)
		for _, nd := range []struct {
			name string
			data [][]byte
		}{{nameA, dataA}, {nameB, dataB}} {
			m, _, err := compare.Build(fields, nd.data, opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := compare.SaveMetadata(store, nd.name, m); err != nil {
				t.Fatal(err)
			}
		}
		pairs = append(pairs, Pair{NameA: nameA, NameB: nameB})
	}
	return pairs
}

func scalingOpts(eps float64) compare.Options {
	return compare.Options{
		Epsilon:      eps,
		ChunkSize:    4 << 10,
		Exec:         device.NewParallel(2),
		SetupVirtual: time.Millisecond, // keep fixed costs from washing out laptop-scale dynamics
	}
}

func TestRunPartitionsAllPairs(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	opts := scalingOpts(1e-5)
	pairs := buildWorkload(t, store, 10, 8<<10, opts)
	res, err := Run(context.Background(), store, pairs, Config{Processes: 3, Method: compare.MethodMerkle, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.PerProcess {
		total += p.Pairs
	}
	if total != 10 {
		t.Errorf("processes covered %d pairs, want 10", total)
	}
	if res.MakespanVirtual <= 0 {
		t.Error("makespan not accounted")
	}
	if res.TotalPairs != 10 || res.Processes != 3 || res.PerNode != 4 {
		t.Errorf("result identity: %+v", res)
	}
	if res.PerProcessThroughputGBps() <= 0 || res.AggregateThroughputGBps() <= 0 {
		t.Error("throughput not accounted")
	}
}

func TestStrongScalingShape(t *testing.T) {
	// Fig. 10's structural claims at laptop scale: (1) makespan shrinks
	// near-linearly with process count for both methods; (2) the Merkle
	// method's per-process throughput stays above Direct's.
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	opts := scalingOpts(1e-3)
	pairs := buildWorkload(t, store, 8, 1<<20, opts)

	makespan := map[int]map[string]float64{}
	for _, procs := range []int{2, 4, 8} {
		makespan[procs] = map[string]float64{}
		for _, m := range []compare.Method{compare.MethodMerkle, compare.MethodDirect} {
			res, err := Run(context.Background(), store, pairs, Config{Processes: procs, Method: m, Opts: opts, Static: true})
			if err != nil {
				t.Fatal(err)
			}
			makespan[procs][m.String()] = res.MakespanVirtual.Seconds()
		}
	}
	for _, m := range []string{"merkle", "direct"} {
		sp := makespan[2][m] / makespan[8][m]
		if sp < 2.0 {
			t.Errorf("%s: speedup 2→8 procs = %.2f, want >= 2", m, sp)
		}
	}
	for _, procs := range []int{2, 4, 8} {
		if makespan[procs]["merkle"] >= makespan[procs]["direct"] {
			t.Errorf("procs=%d: merkle makespan %.4fs not below direct %.4fs",
				procs, makespan[procs]["merkle"], makespan[procs]["direct"])
		}
	}
}

func TestRunValidation(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	opts := scalingOpts(1e-5)
	if _, err := Run(context.Background(), store, nil, Config{Processes: 2, Method: compare.MethodDirect, Opts: opts}); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := Run(context.Background(), store, []Pair{{NameA: "a", NameB: "b"}}, Config{Processes: 0, Method: compare.MethodDirect, Opts: opts}); err == nil {
		t.Error("zero processes accepted")
	}
	// Missing files must surface as an error, not a hang.
	if _, err := Run(context.Background(), store, []Pair{{NameA: "missing1", NameB: "missing2"}},
		Config{Processes: 2, Method: compare.MethodDirect, Opts: opts}); err == nil {
		t.Error("missing files accepted")
	}
}

func TestMoreProcessesThanPairs(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	opts := scalingOpts(1e-5)
	pairs := buildWorkload(t, store, 2, 4<<10, opts)
	res, err := Run(context.Background(), store, pairs, Config{Processes: 8, Method: compare.MethodMerkle, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.PerProcess {
		total += p.Pairs
	}
	if total != 2 {
		t.Errorf("covered %d pairs, want 2", total)
	}
}

func TestSharersRestoredAfterRun(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	opts := scalingOpts(1e-5)
	pairs := buildWorkload(t, store, 2, 4<<10, opts)
	if _, err := Run(context.Background(), store, pairs, Config{Processes: 8, PerNode: 4, Method: compare.MethodDirect, Opts: opts}); err != nil {
		t.Fatal(err)
	}
	if store.Sharers() != 1 {
		t.Errorf("sharers left at %d after run", store.Sharers())
	}
}

// buildSkewedWorkload writes nPairs checkpoint pairs whose sizes alternate
// tiny/huge by index parity, so the stride partition over two processes
// puts all the heavy pairs on process 1.
func buildSkewedWorkload(t *testing.T, store *pfs.Store, nPairs, tinyElems, bigElems int, opts compare.Options) []Pair {
	t.Helper()
	pairs := make([]Pair, 0, nPairs)
	for i := 0; i < nPairs; i++ {
		elems := tinyElems
		if i%2 == 1 {
			elems = bigElems
		}
		fields := []ckpt.FieldSpec{{Name: "x", DType: errbound.Float32, Count: int64(elems)}}
		pert := synth.DefaultPerturb(int64(300 + i))
		dataA, dataB := synth.RunPair(elems, len(fields), int64(i), pert)
		for ab, data := range [][][]byte{dataA, dataB} {
			runID := []string{"skewA", "skewB"}[ab]
			if _, err := ckpt.WriteCheckpoint(store, ckpt.Meta{RunID: runID, Iteration: i, Rank: 0, Fields: fields}, data); err != nil {
				t.Fatal(err)
			}
			m, _, err := compare.Build(fields, data, opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := compare.SaveMetadata(store, ckpt.Name(runID, i, 0), m); err != nil {
				t.Fatal(err)
			}
		}
		pairs = append(pairs, Pair{NameA: ckpt.Name("skewA", i, 0), NameB: ckpt.Name("skewB", i, 0)})
	}
	return pairs
}

// TestStealingBalancesSkew puts every heavy pair on one process's deque:
// the idle process must steal from its tail, all pairs must still run
// exactly once, and the balanced makespan must beat the static stride.
func TestStealingBalancesSkew(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	// A near-zero setup cost: the default 50ms flat per-pair virtual setup
	// would make tiny pairs as virtually expensive as huge ones, decoupling
	// the virtual makespan from the size skew the test constructs. (Zero
	// would be normalized back to the default.)
	opts := scalingOpts(1e-5)
	opts.SetupVirtual = time.Microsecond
	pairs := buildSkewedWorkload(t, store, 8, 1<<10, 1<<20, opts)
	run := func(static bool) *Result {
		res, err := Run(context.Background(), store, pairs, Config{Processes: 2, Method: compare.MethodMerkle, Opts: opts, Static: static})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, p := range res.PerProcess {
			total += p.Pairs
		}
		if total != len(pairs) {
			t.Fatalf("static=%v: covered %d pairs, want %d", static, total, len(pairs))
		}
		return res
	}
	static := run(true)
	if static.Steals != 0 {
		t.Errorf("static run recorded %d steals", static.Steals)
	}
	steal := run(false)
	if steal.Steals == 0 {
		t.Fatal("stealing run recorded no steals on a skewed workload")
	}
	if steal.MakespanVirtual >= static.MakespanVirtual {
		t.Errorf("stealing makespan %v not below static %v", steal.MakespanVirtual, static.MakespanVirtual)
	}
	if steal.TotalDiffs != static.TotalDiffs {
		t.Errorf("TotalDiffs changed with schedule: %d vs %d", steal.TotalDiffs, static.TotalDiffs)
	}
}

// cancelHook cancels a context after N reads of one file — a
// deterministic mid-pair cancellation inside a comparison's stage 2.
type cancelHook struct {
	name   string
	after  int
	cancel context.CancelFunc

	mu    sync.Mutex
	count int
}

func (h *cancelHook) BeforeRead(name string, off int64, n int) error {
	if name == h.name {
		h.mu.Lock()
		h.count++
		fire := h.count == h.after
		h.mu.Unlock()
		if fire {
			h.cancel()
		}
	}
	return nil
}

func (h *cancelHook) AfterRead(name string, off int64, p []byte) pfs.Cost { return pfs.Cost{} }

func (h *cancelHook) BeforeWrite(name string, off int64, n int) (int, error) { return 0, nil }

// TestMidPairCancellation cancels from inside a pair's data reads — not
// between pairs — and requires the cancellation to surface from Run.
func TestMidPairCancellation(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	opts := scalingOpts(1e-5)
	pairs := buildWorkload(t, store, 4, 8<<10, opts)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	store.SetFaultHook(&cancelHook{name: pairs[2].NameB, after: 2, cancel: cancel})
	defer store.SetFaultHook(nil)
	_, err = Run(ctx, store, pairs, Config{Processes: 2, Method: compare.MethodDirect, Opts: opts})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestZeroDurationThroughput guards the throughput accessors against
// division by a zero virtual clock: they must report 0, not NaN or +Inf.
func TestZeroDurationThroughput(t *testing.T) {
	r := &Result{PerProcess: []ProcessResult{{BytesCompared: 1 << 20}}}
	if got := r.PerProcessThroughputGBps(); got != 0 {
		t.Errorf("PerProcessThroughputGBps on zero duration = %v, want 0", got)
	}
	if got := r.AggregateThroughputGBps(); got != 0 {
		t.Errorf("AggregateThroughputGBps on zero duration = %v, want 0", got)
	}
	var empty Result
	if got := empty.PerProcessThroughputGBps(); got != 0 {
		t.Errorf("PerProcessThroughputGBps on empty result = %v, want 0", got)
	}
}

func TestMethodString(t *testing.T) {
	if compare.MethodMerkle.String() != "merkle" ||
		compare.MethodDirect.String() != "direct" ||
		compare.MethodAllClose.String() != "allclose" {
		t.Error("method names wrong")
	}
	if compare.Method(42).String() == "" {
		t.Error("unknown method has empty name")
	}
	if _, err := compare.Method(42).Run(context.Background(), nil, "", "", compare.Options{Epsilon: 1}); err == nil {
		t.Error("unknown method ran")
	}
}

func ExampleRun() {
	fmt.Println("see TestStrongScalingShape")
	// Output: see TestStrongScalingShape
}
