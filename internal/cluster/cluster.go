// Package cluster implements the strong-scaling harness of the paper's
// §3.4.6: a workload of checkpoint pairs is partitioned over N simulated
// processes (four per node on Polaris), each process compares its share
// sequentially, and the study reports per-process and aggregate throughput
// as the process count grows.
//
// Processes on the same node share that node's PFS link, which the pfs
// cost model expresses through the store's sharers factor; distinct nodes
// add PFS bandwidth, as on a multi-OST Lustre installation, so the
// aggregate scales near-linearly — the behaviour Fig. 10 shows for both
// methods.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/compare"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/shard"
)

// Pair is one unit of comparison work.
type Pair struct {
	NameA, NameB string
}

// Config parameterizes a scaling run.
type Config struct {
	// Processes is the total process count.
	Processes int
	// PerNode is how many processes share one node's PFS link (default 4,
	// as on Polaris).
	PerNode int
	// Method selects the comparison approach.
	Method compare.Method
	// Opts are the comparison options used by every process.
	Opts compare.Options
	// Static pins the historical stride partition — pair i runs on process
	// i mod Processes, no stealing. Fig. 10 uses it so the figure keeps the
	// paper's schedule; everything else gets work stealing by default.
	Static bool
}

// ProcessResult is one process's share of the work.
type ProcessResult struct {
	// Proc is the process index.
	Proc int
	// Pairs is the number of checkpoint pairs compared.
	Pairs int
	// Virtual is the summed virtual runtime of the process's comparisons.
	Virtual time.Duration
	// Wall is the summed measured runtime.
	Wall time.Duration
	// BytesRead counts storage bytes read.
	BytesRead int64
	// BytesCompared counts checkpoint data covered (both runs).
	BytesCompared int64
	// Diffs counts divergent elements found by this process's pairs.
	Diffs int64
}

// Result is the outcome of one scaling configuration.
type Result struct {
	// Processes and PerNode echo the configuration.
	Processes int
	PerNode   int
	// PerProcess holds every process's share.
	PerProcess []ProcessResult
	// TotalPairs is the workload size.
	TotalPairs int
	// MakespanVirtual is the slowest process's virtual runtime — the
	// strong-scaling wall time of the study.
	MakespanVirtual time.Duration
	// TotalDiffs sums divergent elements across all pairs.
	TotalDiffs int64
	// Steals and StolenPairs count work-stealing activity (zero under
	// Config.Static).
	Steals      int64
	StolenPairs int64
}

// PerProcessThroughputGBps returns the mean per-process comparison
// throughput, the y-axis of Fig. 10.
func (r *Result) PerProcessThroughputGBps() float64 {
	if len(r.PerProcess) == 0 {
		return 0
	}
	var sum float64
	for _, p := range r.PerProcess {
		sum += metrics.Throughput(p.BytesCompared, p.Virtual)
	}
	return sum / float64(len(r.PerProcess))
}

// AggregateThroughputGBps returns total data over the makespan.
func (r *Result) AggregateThroughputGBps() float64 {
	var bytes int64
	for _, p := range r.PerProcess {
		bytes += p.BytesCompared
	}
	return metrics.Throughput(bytes, r.MakespanVirtual)
}

// Run executes the workload under the configuration. The pairs' files
// (and, for the Merkle method, their metadata) must already exist on the
// store; the page cache is evicted first so every process starts cold.
// Cancellation is observed between pairs on every process and inside each
// comparison's engine plan.
//
// Pairs are seeded onto per-process deques in the stride order the harness
// has always used (pair i on process i mod Processes) so the Static
// schedule is reproducible, but by default an idle process steals pair
// batches from the tail of the most-loaded peer's deque, which keeps the
// makespan tight when pair costs are skewed.
func Run(ctx context.Context, store *pfs.Store, pairs []Pair, cfg Config) (*Result, error) {
	if cfg.Processes < 1 {
		return nil, fmt.Errorf("cluster: processes %d must be positive", cfg.Processes)
	}
	if cfg.PerNode <= 0 {
		cfg.PerNode = 4
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("cluster: empty workload")
	}
	store.EvictAll()
	// Processes on one node contend for the node's PFS link.
	sharers := cfg.Processes
	if sharers > cfg.PerNode {
		sharers = cfg.PerNode
	}
	store.SetSharers(sharers)
	defer store.SetSharers(1)

	res := &Result{
		Processes:  cfg.Processes,
		PerNode:    cfg.PerNode,
		TotalPairs: len(pairs),
		PerProcess: make([]ProcessResult, cfg.Processes),
	}
	dq := shard.NewDeques[int](cfg.Processes, nil)
	for i := range pairs {
		dq.Push(i%cfg.Processes, i)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for p := 0; p < cfg.Processes; p++ {
		wg.Add(1)
		go func(proc int) {
			defer wg.Done()
			// Each process accumulates into its own slot and the result is
			// folded once after the barrier — no per-pair lock traffic.
			pr := &res.PerProcess[proc]
			pr.Proc = proc
			for {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i, ok := dq.Pop(proc)
				if !ok && !cfg.Static {
					i, ok = dq.Steal(proc)
				}
				if !ok {
					return
				}
				r, err := cfg.Method.Run(ctx, store, pairs[i].NameA, pairs[i].NameB, cfg.Opts)
				if err != nil {
					fail(fmt.Errorf("cluster: proc %d pair %d: %w", proc, i, err))
					return
				}
				pr.Pairs++
				pr.Virtual += r.VirtualElapsed()
				pr.Wall += r.WallElapsed()
				pr.BytesRead += r.BytesRead
				pr.BytesCompared += 2 * r.CheckpointBytes
				pr.Diffs += r.DiffCount
			}
		}(p)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for i := range res.PerProcess {
		pr := &res.PerProcess[i]
		res.TotalDiffs += pr.Diffs
		if pr.Virtual > res.MakespanVirtual {
			res.MakespanVirtual = pr.Virtual
		}
	}
	res.Steals, res.StolenPairs = dq.StealStats()
	return res, nil
}
