// Package cluster implements the strong-scaling harness of the paper's
// §3.4.6: a workload of checkpoint pairs is partitioned over N simulated
// processes (four per node on Polaris), each process compares its share
// sequentially, and the study reports per-process and aggregate throughput
// as the process count grows.
//
// Processes on the same node share that node's PFS link, which the pfs
// cost model expresses through the store's sharers factor; distinct nodes
// add PFS bandwidth, as on a multi-OST Lustre installation, so the
// aggregate scales near-linearly — the behaviour Fig. 10 shows for both
// methods.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/compare"
	"repro/internal/metrics"
	"repro/internal/pfs"
)

// Pair is one unit of comparison work.
type Pair struct {
	NameA, NameB string
}

// Config parameterizes a scaling run.
type Config struct {
	// Processes is the total process count.
	Processes int
	// PerNode is how many processes share one node's PFS link (default 4,
	// as on Polaris).
	PerNode int
	// Method selects the comparison approach.
	Method compare.Method
	// Opts are the comparison options used by every process.
	Opts compare.Options
}

// ProcessResult is one process's share of the work.
type ProcessResult struct {
	// Proc is the process index.
	Proc int
	// Pairs is the number of checkpoint pairs compared.
	Pairs int
	// Virtual is the summed virtual runtime of the process's comparisons.
	Virtual time.Duration
	// Wall is the summed measured runtime.
	Wall time.Duration
	// BytesRead counts storage bytes read.
	BytesRead int64
	// BytesCompared counts checkpoint data covered (both runs).
	BytesCompared int64
}

// Result is the outcome of one scaling configuration.
type Result struct {
	// Processes and PerNode echo the configuration.
	Processes int
	PerNode   int
	// PerProcess holds every process's share.
	PerProcess []ProcessResult
	// TotalPairs is the workload size.
	TotalPairs int
	// MakespanVirtual is the slowest process's virtual runtime — the
	// strong-scaling wall time of the study.
	MakespanVirtual time.Duration
	// TotalDiffs sums divergent elements across all pairs.
	TotalDiffs int64
}

// PerProcessThroughputGBps returns the mean per-process comparison
// throughput, the y-axis of Fig. 10.
func (r *Result) PerProcessThroughputGBps() float64 {
	if len(r.PerProcess) == 0 {
		return 0
	}
	var sum float64
	for _, p := range r.PerProcess {
		sum += metrics.Throughput(p.BytesCompared, p.Virtual)
	}
	return sum / float64(len(r.PerProcess))
}

// AggregateThroughputGBps returns total data over the makespan.
func (r *Result) AggregateThroughputGBps() float64 {
	var bytes int64
	for _, p := range r.PerProcess {
		bytes += p.BytesCompared
	}
	return metrics.Throughput(bytes, r.MakespanVirtual)
}

// Run executes the workload under the configuration. The pairs' files
// (and, for the Merkle method, their metadata) must already exist on the
// store; the page cache is evicted first so every process starts cold.
// Cancellation is observed between pairs on every process and inside each
// comparison's engine plan.
func Run(ctx context.Context, store *pfs.Store, pairs []Pair, cfg Config) (*Result, error) {
	if cfg.Processes < 1 {
		return nil, fmt.Errorf("cluster: processes %d must be positive", cfg.Processes)
	}
	if cfg.PerNode <= 0 {
		cfg.PerNode = 4
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("cluster: empty workload")
	}
	store.EvictAll()
	// Processes on one node contend for the node's PFS link.
	sharers := cfg.Processes
	if sharers > cfg.PerNode {
		sharers = cfg.PerNode
	}
	store.SetSharers(sharers)
	defer store.SetSharers(1)

	res := &Result{
		Processes:  cfg.Processes,
		PerNode:    cfg.PerNode,
		TotalPairs: len(pairs),
		PerProcess: make([]ProcessResult, cfg.Processes),
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for p := 0; p < cfg.Processes; p++ {
		wg.Add(1)
		go func(proc int) {
			defer wg.Done()
			pr := ProcessResult{Proc: proc}
			for i := proc; i < len(pairs); i += cfg.Processes {
				if err := ctx.Err(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				r, err := cfg.Method.Run(ctx, store, pairs[i].NameA, pairs[i].NameB, cfg.Opts)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("cluster: proc %d pair %d: %w", proc, i, err)
					}
					mu.Unlock()
					return
				}
				pr.Pairs++
				pr.Virtual += r.VirtualElapsed()
				pr.Wall += r.WallElapsed()
				pr.BytesRead += r.BytesRead
				pr.BytesCompared += 2 * r.CheckpointBytes
				if r.DiffCount > 0 {
					mu.Lock()
					res.TotalDiffs += r.DiffCount
					mu.Unlock()
				}
			}
			mu.Lock()
			res.PerProcess[proc] = pr
			if pr.Virtual > res.MakespanVirtual {
				res.MakespanVirtual = pr.Virtual
			}
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}
