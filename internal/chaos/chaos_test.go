// Package chaos is the soak harness for the degradation ladder: it runs
// N-run group comparisons under deterministic seeded fault schedules
// (internal/faults) across both topologies and asserts the three
// robustness invariants end to end:
//
//  1. No leaks: every trial returns with zero open pfs handles, and the
//     goroutine count settles back to the post-warmup baseline.
//  2. No false matches: a group containing a genuinely divergent member
//     must never report Reproducible() — under any fault schedule the
//     divergence is either detected (DiffCount > 0) or the comparison is
//     visibly degraded, never silently clean.
//  3. No silent degradation: whenever a trial absorbs a fault on the
//     degraded path, the report says so (Degraded/UnverifiedChunks),
//     and a fault schedule that exhausts the retry budget surfaces an
//     error rather than a verdict.
//
// The package contains only test files on purpose: chaos is a property
// of the production packages, not a library.
//
// Scale is env-gated: the default run (part of `go test ./...` and the
// -race gate in `make check`) soaks chaosSeeds seeds at small sizes;
// CHAOS_FULL=1 (the `make chaos` target) widens the group, the data, and
// the seed range.
package chaos

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/compare"
	"repro/internal/device"
	"repro/internal/errbound"
	"repro/internal/faults"
	"repro/internal/pfs"
	"repro/internal/synth"
)

// chaosSeeds is the smoke-scale seed count; acceptance floor is 8.
const chaosSeeds = 8

// scale describes one soak configuration.
type scale struct {
	seeds int // fault-schedule seeds per topology
	runs  int // group size (baseline + runs-1 members)
	elems int // float32 elements per field
	chunk int
}

func soakScale() scale {
	if os.Getenv("CHAOS_FULL") == "1" {
		return scale{seeds: 24, runs: 5, elems: 64 << 10, chunk: 4 << 10}
	}
	return scale{seeds: chaosSeeds, runs: 3, elems: 16 << 10, chunk: 4 << 10}
}

// group is a seeded store with one baseline, n-1 members, and exactly one
// genuinely divergent member (the last run).
type group struct {
	store    *pfs.Store
	baseline string
	runs     []string
}

// seedGroup writes nRuns checkpoints: runs 0..n-2 are bit-identical to
// the baseline; the last run is perturbed well above ε so it provably
// diverges. Metadata is built fault-free before the hook is attached.
func seedGroup(t *testing.T, sc scale, opts compare.Options) group {
	t.Helper()
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	const nFields = 2
	pert := synth.DefaultPerturb(99)
	pert.MagLo, pert.MagHi = 1e-3, 1e-2 // far above the 1e-5 ε
	base, diverged := synth.RunPair(sc.elems, nFields, 1234, pert)
	fields := make([]ckpt.FieldSpec, nFields)
	for i, n := range []string{"x", "phi"} {
		fields[i] = ckpt.FieldSpec{Name: n, DType: errbound.Float32, Count: int64(sc.elems)}
	}
	g := group{store: store}
	for r := 0; r < sc.runs; r++ {
		runID := fmt.Sprintf("run%d", r)
		data := base
		if r == sc.runs-1 {
			data = diverged
		}
		meta := ckpt.Meta{RunID: runID, Iteration: 10, Rank: 0, Fields: fields}
		if _, err := ckpt.WriteCheckpoint(store, meta, data); err != nil {
			t.Fatal(err)
		}
		name := ckpt.Name(runID, 10, 0)
		m, _, err := compare.Build(fields, data, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := compare.SaveMetadata(store, name, m); err != nil {
			t.Fatal(err)
		}
		if r == 0 {
			g.baseline = name
		} else {
			g.runs = append(g.runs, name)
		}
	}
	store.EvictAll()
	return g
}

// schedule derives a deterministic fault mix from the seed. Transient
// errors stay under the default retry budget (the engine re-runs a step
// MaxAttempts=3 times and the compare layer retries reads besides), so a
// schedule is absorbable by design; permanent rules on odd seeds push
// trials onto the degraded or abort path.
func schedule(seed uint64) []faults.Rule {
	rules := []faults.Rule{
		{Kind: faults.TransientRead, After: int(seed % 7), Count: 2},
		{Kind: faults.LatencySpike, Prob: 0.25, Count: -1,
			Spike: pfs.Cost{Ops: 1, Bytes: 1 << 20}},
		{Kind: faults.BitFlip, After: int(seed % 11), Count: int(seed%3) + 1},
	}
	if seed%2 == 1 {
		// Permanent failure scoped to the divergent member's files: lands
		// either in stage 1 (clean abort) or stage 2 (metadata-only
		// degraded verdict) depending on where the op counter falls.
		rules = append(rules, faults.Rule{
			Kind: faults.PermanentRead, Name: "/iter", After: int(20 + seed%17),
		})
	}
	return rules
}

// outcome summarizes one trial for the soak-level coverage asserts.
type outcome struct {
	aborted      bool
	degraded     bool
	errsInjected int64
}

// trial runs one seeded group comparison and checks the invariants.
func trial(t *testing.T, g group, topo compare.Topology, seed uint64, opts compare.Options) outcome {
	t.Helper()
	inj := faults.New(seed, schedule(seed)...)
	g.store.SetFaultHook(inj)
	defer g.store.SetFaultHook(nil)
	rep, err := compare.GroupCompare(context.Background(), g.store, g.baseline, g.runs, topo, opts)
	if h := g.store.OpenHandles(); h != 0 {
		t.Fatalf("seed %d: %d pfs handles leaked (err=%v)", seed, h, err)
	}
	if st := inj.Stats(); st.ReadOps == 0 {
		t.Fatalf("seed %d: fault hook never saw a read — the harness is vacuous", seed)
	}
	out := outcome{errsInjected: inj.Stats().ReadErrs + inj.Stats().WriteErrs}
	if err != nil {
		// Abort path: the schedule exhausted a budget or hit a permanent
		// fault outside the degradable stage. That is a legitimate
		// outcome — the invariant is that it is an error, not a verdict.
		out.aborted = true
		return out
	}
	out.degraded = rep.Degraded()
	// Zero false matches: the last member provably diverges, so a clean
	// reproducibility claim is a lie under every schedule.
	if rep.Reproducible() {
		t.Fatalf("seed %d topo %v: divergent group reported reproducible (degraded=%v unverified=%d)",
			seed, topo, rep.Degraded(), rep.UnverifiedChunks())
	}
	// No silent degradation: an undegraded report must have found the
	// divergence outright.
	if !rep.Degraded() {
		var diffs int64
		for i := range rep.Pairs {
			diffs += rep.Pairs[i].Result.DiffCount
		}
		if diffs == 0 {
			t.Fatalf("seed %d topo %v: neither diffs nor degradation surfaced", seed, topo)
		}
	}
	// Internal consistency: unverified chunks imply the degraded flag.
	for i := range rep.Pairs {
		r := rep.Pairs[i].Result
		if r.UnverifiedChunks > 0 && !r.Degraded {
			t.Fatalf("seed %d: pair %d has %d unverified chunks but no degraded flag",
				seed, i, r.UnverifiedChunks)
		}
	}
	g.store.EvictAll()
	return out
}

// waitGoroutines polls until the goroutine count settles back to at most
// base; background pipeline goroutines can linger briefly after a trial.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 128<<10)
			t.Fatalf("goroutines leaked: %d > %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosSoak is the main harness: seeds × topologies, degrade on.
func TestChaosSoak(t *testing.T) {
	sc := soakScale()
	opts := compare.Options{
		Epsilon:   1e-5,
		ChunkSize: sc.chunk,
		Exec:      device.NewParallel(2),
		Degrade:   true,
	}
	g := seedGroup(t, sc, opts)

	// Warm up once fault-free so shared worker pools (ring backend,
	// executor) spin up before the goroutine baseline is taken.
	if _, err := compare.GroupCompare(context.Background(), g.store, g.baseline, g.runs,
		compare.TopologyStar, opts); err != nil {
		t.Fatalf("fault-free warmup failed: %v", err)
	}
	g.store.EvictAll()
	base := runtime.NumGoroutine()

	var trials, aborted, degraded int
	var injected int64
	for _, topo := range []compare.Topology{compare.TopologyStar, compare.TopologyAllPairs} {
		for seed := uint64(0); seed < uint64(sc.seeds); seed++ {
			out := trial(t, g, topo, seed, opts)
			trials++
			injected += out.errsInjected
			if out.aborted {
				aborted++
			}
			if out.degraded {
				degraded++
			}
		}
	}
	t.Logf("chaos soak: %d trials, %d aborted, %d degraded, %d errors injected",
		trials, aborted, degraded, injected)
	// Coverage floor: the soak must actually exercise the fault machinery
	// and land at least one trial on a non-clean path.
	if injected == 0 {
		t.Fatal("no errors injected across the soak — schedules are inert")
	}
	if aborted+degraded == 0 {
		t.Fatal("every trial completed clean — the ladder was never exercised")
	}
	waitGoroutines(t, base)
}

// TestChaosStrictAborts pins the strict-mode contract under the same
// schedules: with Degrade off, a permanent fault must surface as an
// error, never as a degraded-looking report.
func TestChaosStrictAborts(t *testing.T) {
	sc := soakScale()
	opts := compare.Options{
		Epsilon:   1e-5,
		ChunkSize: sc.chunk,
		Exec:      device.NewParallel(2),
	}
	g := seedGroup(t, sc, opts)
	for seed := uint64(1); seed < uint64(sc.seeds); seed += 2 { // permanent-fault seeds
		inj := faults.New(seed, schedule(seed)...)
		g.store.SetFaultHook(inj)
		rep, err := compare.GroupCompare(context.Background(), g.store, g.baseline, g.runs,
			compare.TopologyStar, opts)
		g.store.SetFaultHook(nil)
		if h := g.store.OpenHandles(); h != 0 {
			t.Fatalf("seed %d: %d pfs handles leaked", seed, h)
		}
		if err == nil && rep.Degraded() {
			t.Fatalf("seed %d: strict mode produced a degraded report instead of an error", seed)
		}
		g.store.EvictAll()
	}
}
