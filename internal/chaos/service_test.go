package chaos

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/aio"
	"repro/internal/ckpt"
	"repro/internal/compare"
	"repro/internal/errbound"
	"repro/internal/faults"
	"repro/internal/pfs"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/synth"
)

// pairEnv is one store holding a divergent checkpoint pair with saved
// metadata — the unit fixture for the service-plane fault-isolation
// trials (seedGroup builds N-run groups; this one needs pairs on two
// independent stores).
type pairEnv struct {
	store        *pfs.Store
	nameA, nameB string
}

func seedPair(t *testing.T, elems int, seed int64, opts compare.Options) pairEnv {
	t.Helper()
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	perturb := synth.DefaultPerturb(seed)
	perturb.MagLo, perturb.MagHi = 1e-3, 1e-2
	perturb.UntouchedFrac = 0.5
	dataA, dataB := synth.RunPair(elems, 2, seed, perturb)
	fields := []ckpt.FieldSpec{
		{Name: "x", DType: errbound.Float32, Count: int64(elems)},
		{Name: "vx", DType: errbound.Float32, Count: int64(elems)},
	}
	env := pairEnv{store: store, nameA: ckpt.Name("runA", 10, 0), nameB: ckpt.Name("runB", 10, 0)}
	for run, data := range map[string][][]byte{"runA": dataA, "runB": dataB} {
		meta := ckpt.Meta{RunID: run, Iteration: 10, Rank: 0, Fields: fields}
		if _, err := ckpt.WriteCheckpoint(store, meta, data); err != nil {
			t.Fatal(err)
		}
		m, _, err := compare.Build(fields, data, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := compare.SaveMetadata(store, ckpt.Name(run, 10, 0), m); err != nil {
			t.Fatal(err)
		}
	}
	store.EvictAll()
	return env
}

// svcRingClosed reports the shared ring closed on every batch, forcing
// the fresh-ring fallback rung for the whole comparison.
type svcRingClosed struct{}

func (svcRingClosed) Name() string { return "closed" }

func (svcRingClosed) ReadBatch(context.Context, *pfs.File, []aio.ReadReq) (pfs.Cost, time.Duration, error) {
	return pfs.Cost{}, 0, aio.ErrRingClosed
}

// scrubSvc zeroes the wall-clock-bearing fields for oracle equality.
func scrubSvc(r *compare.Result) *compare.Result {
	if r == nil {
		return nil
	}
	c := *r
	var zb compare.Result
	c.Breakdown = zb.Breakdown
	c.Steps = nil
	return &c
}

// TestServicePlaneFaultIsolation runs a chaos schedule against one
// session of a shared plane — a ring-closed backend, a permanent-read
// fault schedule, and a worker death mid-shard-comparison — while a
// bystander session on the same plane keeps comparing fault-free. The
// faults must stay confined: the victim's verdicts degrade (visibly,
// never silently), the bystander stays bit-identical to its serial
// oracle with clean statistics, and the plane still closes leak-free.
func TestServicePlaneFaultIsolation(t *testing.T) {
	opts := compare.Options{Epsilon: 1e-5, ChunkSize: 4 << 10}
	envV := seedPair(t, 32<<10, 91, opts)
	envB := seedPair(t, 32<<10, 92, opts)
	ctx := context.Background()

	// Serial oracles on the direct path; the second, warm-cache pass is
	// the reference, and the runs also warm the compare fallback pool and
	// ring before the goroutine baseline.
	var wantV, wantB *compare.Result
	for i := 0; i < 2; i++ {
		var err error
		wantV, err = compare.CompareMerkle(ctx, envV.store, envV.nameA, envV.nameB, opts)
		if err != nil {
			t.Fatal(err)
		}
		wantB, err = compare.CompareMerkle(ctx, envB.store, envB.nameA, envB.nameB, opts)
		if err != nil {
			t.Fatal(err)
		}
	}
	if wantV.DiffCount == 0 || wantB.DiffCount == 0 {
		t.Fatal("fixture pairs do not diverge; the trial is vacuous")
	}

	base := runtime.NumGoroutine()
	p := service.New(service.Config{MaxInFlight: 4})
	victim := p.Open("victim")
	bystander := p.Open("bystander")

	const bystanderRounds = 6
	var wg sync.WaitGroup
	var victimErr, bystanderErr error

	wg.Add(1)
	go func() { // victim: three faulted submissions
		defer wg.Done()
		// 1. Ring-closed mid-session: the comparison survives on the
		// fresh-ring fallback, visibly accounted, verdict intact.
		o := opts
		o.Backend = svcRingClosed{}
		res, err := victim.Compare(ctx, envV.store, envV.nameA, envV.nameB, o)
		if err != nil {
			victimErr = err
			return
		}
		if res.RingFallbacks == 0 {
			t.Error("victim ring-closed compare: fallback not accounted")
		}
		if res.DiffCount != wantV.DiffCount {
			t.Errorf("victim ring-closed compare: DiffCount %d, want %d", res.DiffCount, wantV.DiffCount)
		}

		// 2. Permanent read faults under the degradation ladder: the
		// verdict is degraded or an error — never silently clean.
		inj := faults.New(91, faults.Rule{Kind: faults.PermanentRead, Name: "/iter", After: 10})
		envV.store.SetFaultHook(inj)
		o = opts
		o.Degrade = true
		res, err = victim.Compare(ctx, envV.store, envV.nameA, envV.nameB, o)
		envV.store.SetFaultHook(nil)
		if st := inj.Stats(); st.ReadOps == 0 {
			t.Error("victim fault schedule never saw a read — the trial is vacuous")
		}
		if err == nil && !res.Degraded && res.UnverifiedChunks == 0 && res.DiffCount == 0 {
			t.Error("victim faulted compare reported silently clean")
		}
		if h := envV.store.OpenHandles(); h != 0 {
			t.Errorf("victim store leaked %d handles after faulted compare", h)
		}

		// 3. Worker death mid-shard-comparison: stealing absorbs it and
		// the verdict still matches the oracle.
		cfg := shard.Config{Workers: 4, Stealing: true, Chaos: shard.Chaos{Enabled: true, Worker: 1, AfterUnits: 1}}
		sres, _, err := victim.ShardCompare(ctx, envV.store, envV.nameA, envV.nameB, cfg, opts)
		if err != nil {
			victimErr = err
			return
		}
		if sres.DiffCount != wantV.DiffCount {
			t.Errorf("victim sharded compare after worker death: DiffCount %d, want %d", sres.DiffCount, wantV.DiffCount)
		}
	}()

	wg.Add(1)
	go func() { // bystander: fault-free rounds on the same plane
		defer wg.Done()
		for r := 0; r < bystanderRounds; r++ {
			res, err := bystander.Compare(ctx, envB.store, envB.nameA, envB.nameB, opts)
			if err != nil {
				bystanderErr = err
				return
			}
			if got, want := scrubSvc(res), scrubSvc(wantB); !deepEqualResult(got, want) {
				t.Errorf("bystander round %d: result diverges from serial oracle under victim faults", r)
			}
		}
	}()
	wg.Wait()

	if victimErr != nil {
		t.Fatalf("victim session: %v", victimErr)
	}
	if bystanderErr != nil {
		t.Fatalf("bystander session: %v", bystanderErr)
	}

	// The victim's degradation shows in its own counters only.
	vs := victim.Stats()
	if vs.Submitted != 3 || vs.Completed+vs.Failed != 3 {
		t.Errorf("victim stats: %+v", vs)
	}
	bs := bystander.Stats()
	want := service.Stats{Submitted: bystanderRounds, Completed: bystanderRounds, Divergent: bystanderRounds}
	if bs != want {
		t.Errorf("bystander stats contaminated: %+v, want %+v", bs, want)
	}

	if h := envB.store.OpenHandles(); h != 0 {
		t.Errorf("bystander store leaked %d handles", h)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("plane close after chaos: %v", err)
	}
	waitGoroutines(t, base)
}

func deepEqualResult(a, b *compare.Result) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Method != b.Method || a.DiffCount != b.DiffCount || a.TotalElements != b.TotalElements ||
		a.CandidateChunks != b.CandidateChunks || a.ChangedChunks != b.ChangedChunks ||
		a.TotalChunks != b.TotalChunks || a.CASPrunedChunks != b.CASPrunedChunks ||
		a.CheckpointBytes != b.CheckpointBytes || a.BytesRead != b.BytesRead ||
		a.MetadataBytes != b.MetadataBytes || a.Degraded != b.Degraded ||
		a.UnverifiedChunks != b.UnverifiedChunks || a.ReadRetries != b.ReadRetries ||
		a.RingFallbacks != b.RingFallbacks || len(a.Diffs) != len(b.Diffs) {
		return false
	}
	for i := range a.Diffs {
		if a.Diffs[i].Field != b.Diffs[i].Field || len(a.Diffs[i].Indices) != len(b.Diffs[i].Indices) {
			return false
		}
		for j := range a.Diffs[i].Indices {
			if a.Diffs[i].Indices[j] != b.Diffs[i].Indices[j] {
				return false
			}
		}
	}
	return true
}
