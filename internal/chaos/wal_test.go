package chaos

// Kill-and-restart chaos over the crash-durable job journal
// (internal/wal) wired through the service plane. The journal wedges on
// its first append failure, so a one-shot write fault at append k
// leaves exactly the log prefix a kill -9 at that write would leave:
// the prefix before the fault is durable, nothing after it reaches the
// store in that life. The trials sweep the kill across every journal
// write point and both failure shapes (clean cut and torn frame) and
// assert the recovery invariants: no accepted job is lost, no verdict
// is emitted twice, and the replayed chain verifies.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/compare"
	"repro/internal/faults"
	"repro/internal/service"
	"repro/internal/wal"
)

// walTrialJobs is the fixed submission schedule for one life: a
// divergent pair (exit 2) bracketed by two self-comparisons (exit 0).
// Three jobs x three appends (accepted, started, verdict) = nine
// deterministic journal write points per clean life.
const walWritesPerLife = 9

func walTrialSpecs(env pairEnv, opts compare.Options) ([]service.JobSpec, []int) {
	specs := []service.JobSpec{
		{Kind: service.JobCompare, A: env.nameA, B: env.nameB, Options: opts},
		{Kind: service.JobCompare, A: env.nameA, B: env.nameA, Options: opts},
		{Kind: service.JobCompare, A: env.nameB, B: env.nameB, Options: opts},
	}
	wantExit := []int{2, 0, 0}
	return specs, wantExit
}

// TestChaosWALKillRestart kills the daemon's journal at every write
// point — clean cuts and torn frames — then recovers on a fresh plane
// and checks exactly-once end to end: every job the client saw accepted
// is either served from the ledger or re-admitted (never both, never
// neither), re-run jobs reach their expected verdicts, and the final
// chain passes wal.Verify with no pending jobs.
func TestChaosWALKillRestart(t *testing.T) {
	shapes := []struct {
		name string
		kind faults.Kind
		keep int
	}{
		{"clean-cut", faults.PermanentWrite, 0},
		{"torn-frame", faults.TornWrite, 7},
	}
	for _, shape := range shapes {
		// killAt == walWritesPerLife is the fault-free control life.
		for killAt := 0; killAt <= walWritesPerLife; killAt++ {
			t.Run(fmt.Sprintf("%s/append-%d", shape.name, killAt), func(t *testing.T) {
				t.Parallel()
				runWALKillTrial(t, shape.kind, shape.keep, killAt)
			})
		}
	}
}

func runWALKillTrial(t *testing.T, kind faults.Kind, keep, killAt int) {
	ctx := context.Background()
	opts := compare.Options{Epsilon: 1e-5, ChunkSize: 4 << 10}
	env := seedPair(t, 4<<10, 23, opts)
	specs, wantExit := walTrialSpecs(env, opts)

	// Life 1: the journal dies at append killAt. Count -1 keeps the rule
	// armed, but the wedge means only the first firing ever sees disk.
	p1 := service.New(service.Config{MaxInFlight: 1})
	if _, err := p1.Recover(ctx, env.store, ""); err != nil {
		t.Fatalf("life 1 recover: %v", err)
	}
	env.store.SetFaultHook(faults.New(uint64(killAt), faults.Rule{
		Kind: kind, Name: "journal", After: killAt, Count: -1, Keep: keep,
	}))
	sess := p1.Open("victim")
	accepted := map[uint64]int{} // job ID -> index into specs/wantExit
	for i, spec := range specs {
		job, err := sess.Submit(env.store, spec)
		if err != nil {
			continue // rejected before durability: the client saw the error
		}
		accepted[job.ID()] = i
		<-job.Done()
	}
	env.store.SetFaultHook(nil)
	if err := p1.Close(); err != nil {
		t.Fatalf("life 1 close: %v", err)
	}

	// Life 2: fresh plane, same store. Recovery must account for every
	// accepted job exactly once — a durable verdict in the ledger, or a
	// re-admitted run, never both and never neither.
	p2 := service.New(service.Config{MaxInFlight: 1})
	rec, err := p2.Recover(ctx, env.store, "")
	if err != nil {
		t.Fatalf("life 2 recover: %v", err)
	}
	resumed := map[uint64]bool{}
	for _, j := range rec.Resumed {
		if _, ok := accepted[j.ID()]; !ok {
			t.Errorf("job %d re-admitted but was never accepted by a client", j.ID())
		}
		resumed[j.ID()] = true
	}
	for id := range rec.Ledger {
		if _, ok := accepted[id]; !ok {
			t.Errorf("ledger verdict for job %d, which was never accepted", id)
		}
	}
	for id := range accepted {
		if _, inLedger := rec.Ledger[id]; inLedger == resumed[id] {
			t.Errorf("job %d: inLedger=%v resumed=%v, want exactly one", id, inLedger, resumed[id])
		}
	}
	for _, j := range rec.Resumed {
		<-j.Done()
	}
	if err := p2.Close(); err != nil {
		t.Fatalf("life 2 close: %v", err)
	}

	// The surviving chain must verify clean: nothing pending, no
	// duplicate or orphan verdicts, and each accepted job's one verdict
	// carries the exit code its inputs dictate.
	vrep, err := wal.Verify(ctx, env.store, "")
	if err != nil {
		t.Fatalf("verify after recovery: %v", err)
	}
	if len(vrep.PendingJobs) != 0 {
		t.Errorf("jobs still pending after recovery: %v", vrep.PendingJobs)
	}
	_, rep, err := wal.Open(ctx, env.store, "")
	if err != nil {
		t.Fatalf("reopen after recovery: %v", err)
	}
	cls := wal.Classify(rep.Records)
	if len(cls.Verdicts) != len(accepted) {
		t.Errorf("chain has %d verdicts for %d accepted jobs", len(cls.Verdicts), len(accepted))
	}
	for id, i := range accepted {
		v, ok := cls.Verdicts[id]
		if !ok {
			t.Errorf("job %d: no verdict in the recovered chain", id)
			continue
		}
		if v.Exit != wantExit[i] {
			t.Errorf("job %d: exit %d, want %d", id, v.Exit, wantExit[i])
		}
	}
}

// TestChaosWALTamper flips one byte inside an early record of a
// service-written journal and demands loud failure: wal.Open and
// wal.Verify must return ErrTampered, never a shortened-but-clean
// chain. A read-side bit flip (faults.BitFlip) must likewise never
// yield the full chain silently.
func TestChaosWALTamper(t *testing.T) {
	ctx := context.Background()
	opts := compare.Options{Epsilon: 1e-5, ChunkSize: 4 << 10}
	env := seedPair(t, 4<<10, 29, opts)
	specs, _ := walTrialSpecs(env, opts)

	p := service.New(service.Config{MaxInFlight: 1})
	if _, err := p.Recover(ctx, env.store, ""); err != nil {
		t.Fatal(err)
	}
	sess := p.Open("auditor")
	for _, spec := range specs {
		job, err := sess.Submit(env.store, spec)
		if err != nil {
			t.Fatal(err)
		}
		<-job.Done()
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wal.Open(ctx, env.store, ""); err != nil {
		t.Fatalf("pristine journal must open clean: %v", err)
	}

	// Recompute a fresh CRC over a flipped payload byte so the frame
	// still parses: the hash chain, not the per-frame checksum, is what
	// must catch a deliberate edit. A plain flip (stale CRC) is caught
	// too, but as damage, and damage to the final record is the known
	// blind spot — so tamper an early record and keep the frame valid.
	path := filepath.Join(env.store.Root(), wal.DefaultName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := flipInsideFrame(t, raw)
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	env.store.EvictAll()
	if _, _, err := wal.Open(ctx, env.store, ""); !errorsIsTampered(err) {
		t.Fatalf("open of tampered journal: got %v, want ErrTampered", err)
	}
	if _, err := wal.Verify(ctx, env.store, ""); !errorsIsTampered(err) {
		t.Fatalf("verify of tampered journal: got %v, want ErrTampered", err)
	}

	// Restore the pristine bytes, then corrupt on the read path instead:
	// a bit flip anywhere in the journal must never replay as the full
	// clean chain.
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	env.store.EvictAll()
	_, pristine, err := wal.Open(ctx, env.store, "")
	if err != nil {
		t.Fatal(err)
	}
	// The seed picks which bit flips; sweep it so the corruption lands in
	// different records (and record regions) across trials.
	for trial := uint64(0); trial < 8; trial++ {
		env.store.SetFaultHook(faults.New(trial, faults.Rule{
			Kind: faults.BitFlip, Name: "journal", Count: -1,
		}))
		_, rep, err := wal.Open(ctx, env.store, "")
		env.store.SetFaultHook(nil)
		env.store.EvictAll()
		if err != nil {
			continue // refused loudly: acceptable
		}
		if len(rep.Records) == len(pristine.Records) && rep.Holes == 0 && rep.TornTailBytes == 0 {
			t.Fatalf("trial %d: bit-flipped journal replayed as the full clean chain", trial)
		}
	}
}

// Journal frame layout, duplicated here so the tamper is authored from
// an attacker's seat, not through wal's own codec: magic u32 | stored
// offset u64 | payload length u32 | payload | CRC32-IEEE over
// offset..payload.
const (
	tamperMagic  = 0x4c41574a // "JWAL" little-endian
	tamperHeader = 4 + 8 + 4
)

// flipInsideFrame flips one payload byte of the second record and
// rewrites that frame's CRC so the tampering survives framing and must
// be caught by the chain check.
func flipInsideFrame(t *testing.T, raw []byte) []byte {
	t.Helper()
	out := append([]byte(nil), raw...)
	// Walk to the second frame: a mid-chain record, past the blind spot
	// at the tail.
	off := 0
	for frame := 0; frame < 1; frame++ {
		if off+tamperHeader > len(out) || binary.LittleEndian.Uint32(out[off:]) != tamperMagic {
			t.Fatalf("no frame at offset %d", off)
		}
		off += tamperHeader + int(binary.LittleEndian.Uint32(out[off+12:])) + 4
	}
	if off+tamperHeader >= len(out) || binary.LittleEndian.Uint32(out[off:]) != tamperMagic {
		t.Fatalf("journal has no second frame to tamper (len %d)", len(out))
	}
	n := int(binary.LittleEndian.Uint32(out[off+12:]))
	out[off+tamperHeader+n/2] ^= 0x01
	crc := crc32.ChecksumIEEE(out[off+4 : off+tamperHeader+n])
	binary.LittleEndian.PutUint32(out[off+tamperHeader+n:], crc)
	return out
}

func errorsIsTampered(err error) bool {
	return errors.Is(err, wal.ErrTampered)
}
