// Differential-capture chaos: seeded fault schedules aimed at the CAS
// write path. The invariants mirror the comparison soak, shifted to
// capture time:
//
//  1. No silent loss: a capture under faults either succeeds or returns
//     an error — a torn pack or manifest write never yields a "clean"
//     capture.
//  2. No poisoned store: after any failed capture, the reopened CAS
//     replays consistently and a full Scrub re-hashes every referenced
//     extent clean — torn bytes are unreferenced holes, never a future
//     dedup hit.
//  3. No false matches downstream: whenever both runs' captures land,
//     the differential comparison of the genuinely divergent pair never
//     reports Identical.
package chaos

import (
	"context"
	"testing"

	"repro/internal/cas"
	"repro/internal/ckpt"
	"repro/internal/compare"
	"repro/internal/device"
	"repro/internal/errbound"
	"repro/internal/faults"
	"repro/internal/murmur3"
	"repro/internal/pfs"
	"repro/internal/synth"
)

// diffSchedule derives a capture-targeted fault mix: torn pack writes on
// every seed, permanent CAS write failures on odd seeds, torn manifest
// writes on every third seed, plus background latency spikes.
func diffSchedule(seed uint64) []faults.Rule {
	rules := []faults.Rule{
		{Kind: faults.TornWrite, Name: "cas/pack", After: int(seed % 9), Count: 1, Keep: 64 + int(seed%4096)},
		{Kind: faults.LatencySpike, Prob: 0.25, Count: -1,
			Spike: pfs.Cost{Ops: 1, Bytes: 1 << 20}},
	}
	if seed%2 == 1 {
		rules = append(rules, faults.Rule{Kind: faults.PermanentWrite, Name: "cas/", After: int(seed % 13)})
	}
	if seed%3 == 2 {
		rules = append(rules, faults.Rule{Kind: faults.TornWrite, Name: ".cman", Count: 1, Keep: 32})
	}
	return rules
}

func TestChaosDiffCapture(t *testing.T) {
	sc := soakScale()
	opts := compare.Options{
		Epsilon:   1e-5,
		ChunkSize: sc.chunk,
		Exec:      device.NewParallel(2),
		Degrade:   true,
	}
	hasher, err := errbound.NewHasher(errbound.Float32, opts.Epsilon)
	if err != nil {
		t.Fatal(err)
	}
	scrubHash := func(b []byte) (murmur3.Digest, error) { return hasher.HashChunk(b) }
	pert := synth.DefaultPerturb(99)
	pert.MagLo, pert.MagHi = 1e-3, 1e-2 // far above the 1e-5 ε

	const nFields = 2
	fields := make([]ckpt.FieldSpec, nFields)
	for i, n := range []string{"x", "phi"} {
		fields[i] = ckpt.FieldSpec{Name: n, DType: errbound.Float32, Count: int64(sc.elems)}
	}

	var trials, captureErrs int
	var injectedWrites int64
	for seed := uint64(0); seed < uint64(sc.seeds); seed++ {
		trials++
		store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
		if err != nil {
			t.Fatal(err)
		}
		cs, _, err := cas.Open(context.Background(), store)
		if err != nil {
			t.Fatal(err)
		}
		capture := func(c *compare.DiffCapturer, runID string, it int, data [][]byte) error {
			meta := ckpt.Meta{RunID: runID, Iteration: it, Rank: 0, Fields: fields}
			_, cerr := c.Capture(context.Background(), meta, data)
			return cerr
		}
		capA, err := compare.NewDiffCapturer(store, cs, opts)
		if err != nil {
			t.Fatal(err)
		}
		capB, err := compare.NewDiffCapturer(store, cs, opts)
		if err != nil {
			t.Fatal(err)
		}

		// Iteration 1 lands fault-free; iteration 2 captures under the
		// seeded schedule. Run B provably diverges from run A.
		base, diverged := synth.RunPair(sc.elems, nFields, int64(1000+seed), pert)
		if err := capture(capA, "runA", 1, base); err != nil {
			t.Fatalf("seed %d: fault-free capture failed: %v", seed, err)
		}
		if err := capture(capB, "runB", 1, base); err != nil {
			t.Fatalf("seed %d: fault-free capture failed: %v", seed, err)
		}
		evolved := make([][]byte, nFields)
		divergedNext := make([][]byte, nFields)
		for i := range base {
			evolved[i] = synth.PerturbF32(base[i], synth.PerturbConfig{
				Seed: int64(7 * (seed + uint64(i) + 1)), BlockElems: 1024,
				MagLo: 1e-3, MagHi: 1e-2, UntouchedFrac: 0.5, ChangedFrac: 0.05,
			})
			divergedNext[i] = synth.PerturbF32(evolved[i], pert)
			copy(divergedNext[i], diverged[i][:64]) // keep a guaranteed-divergent prefix
		}

		inj := faults.New(seed, diffSchedule(seed)...)
		store.SetFaultHook(inj)
		errA := capture(capA, "runA", 2, evolved)
		errB := capture(capB, "runB", 2, divergedNext)
		store.SetFaultHook(nil)
		st := inj.Stats()
		injectedWrites += st.WriteErrs
		if st.WriteOps == 0 {
			t.Fatalf("seed %d: fault hook never saw a write — the harness is vacuous", seed)
		}
		if h := store.OpenHandles(); h != 0 {
			t.Fatalf("seed %d: %d pfs handles leaked (errA=%v errB=%v)", seed, h, errA, errB)
		}

		// Invariant 2: whatever the schedule did, the reopened CAS must
		// replay cleanly and every referenced extent must re-hash clean.
		store.EvictAll()
		cs2, _, err := cas.Open(context.Background(), store)
		if err != nil {
			t.Fatalf("seed %d: CAS poisoned by faulted capture: %v (errA=%v errB=%v)", seed, err, errA, errB)
		}
		if _, err := cs2.Scrub(context.Background(), scrubHash); err != nil {
			t.Fatalf("seed %d: scrub found referenced corruption: %v (errA=%v errB=%v)", seed, err, errA, errB)
		}

		if errA != nil || errB != nil {
			captureErrs++
			continue
		}
		// Invariant 3: both captures landed, so the divergent pair must
		// never compare clean.
		nameA := ckpt.Name("runA", 2, 0)
		nameB := ckpt.Name("runB", 2, 0)
		res, err := compare.CompareDiff(context.Background(), store, cs2, nameA, nameB, opts)
		if err != nil {
			t.Fatalf("seed %d: fault-free comparison of captured pair failed: %v", seed, err)
		}
		if res.Identical() {
			t.Fatalf("seed %d: divergent pair compared identical after faulted capture", seed)
		}
		if res.DiffCount == 0 && !res.Degraded {
			t.Fatalf("seed %d: neither diffs nor degradation surfaced", seed)
		}
		if h := store.OpenHandles(); h != 0 {
			t.Fatalf("seed %d: %d pfs handles leaked after comparison", seed, h)
		}
	}
	t.Logf("chaos diff capture: %d trials, %d capture errors, %d write errors injected",
		trials, captureErrs, injectedWrites)
	// Coverage floor: the schedules must actually tear writes, and at
	// least one capture must surface an error (never silently absorb one).
	if injectedWrites == 0 {
		t.Fatal("no write errors injected across the soak — schedules are inert")
	}
	if captureErrs == 0 {
		t.Fatal("every faulted capture completed clean — the write path was never exercised")
	}
}
