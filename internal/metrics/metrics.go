// Package metrics provides the comparison-cost breakdown timers of the
// paper's Fig. 6 (setup, read, deserialization, compare-tree,
// compare-direct) and throughput accounting. Every timer records both
// wall-clock time (what actually elapsed in this process) and virtual time
// (what the simclock cost model says the operation would cost on the
// paper's hardware); reports always state which one they show.
package metrics

import (
	"fmt"
	"strings"
	"time"
)

// Span is a dual wall/virtual duration.
type Span struct {
	Wall    time.Duration
	Virtual time.Duration
}

// Add accumulates another span.
func (s *Span) Add(o Span) {
	s.Wall += o.Wall
	s.Virtual += o.Virtual
}

// AddWall accumulates wall time only.
func (s *Span) AddWall(d time.Duration) { s.Wall += d }

// AddVirtual accumulates virtual time only.
func (s *Span) AddVirtual(d time.Duration) { s.Virtual += d }

// Phase identifies one part of the comparison process (Fig. 6 legend).
type Phase int

// Breakdown phases, in presentation order.
const (
	PhaseSetup Phase = iota + 1
	PhaseRead
	PhaseDeserialize
	PhaseCompareTree
	PhaseCompareDirect
	numPhases
)

// String returns the paper's legend label for the phase.
func (p Phase) String() string {
	switch p {
	case PhaseSetup:
		return "Setup time"
	case PhaseRead:
		return "Read time"
	case PhaseDeserialize:
		return "Deserialization time"
	case PhaseCompareTree:
		return "Compare tree time"
	case PhaseCompareDirect:
		return "Compare direct time"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Phases lists all phases in presentation order.
func Phases() []Phase {
	return []Phase{PhaseSetup, PhaseRead, PhaseDeserialize, PhaseCompareTree, PhaseCompareDirect}
}

// Breakdown accumulates per-phase spans for one comparison. The zero value
// is ready to use. Breakdown is not safe for concurrent use; merge
// per-goroutine breakdowns with Merge.
type Breakdown struct {
	spans [numPhases]Span
}

// Add accumulates a span into a phase.
func (b *Breakdown) Add(p Phase, s Span) {
	if p > 0 && p < numPhases {
		b.spans[p].Add(s)
	}
}

// AddWall accumulates wall time into a phase.
func (b *Breakdown) AddWall(p Phase, d time.Duration) {
	if p > 0 && p < numPhases {
		b.spans[p].AddWall(d)
	}
}

// AddVirtual accumulates virtual time into a phase.
func (b *Breakdown) AddVirtual(p Phase, d time.Duration) {
	if p > 0 && p < numPhases {
		b.spans[p].AddVirtual(d)
	}
}

// Get returns the accumulated span for a phase.
func (b *Breakdown) Get(p Phase) Span {
	if p > 0 && p < numPhases {
		return b.spans[p]
	}
	return Span{}
}

// Total returns the sum over all phases.
func (b *Breakdown) Total() Span {
	var t Span
	for _, p := range Phases() {
		t.Add(b.spans[p])
	}
	return t
}

// Merge accumulates another breakdown into b.
func (b *Breakdown) Merge(o *Breakdown) {
	for _, p := range Phases() {
		b.spans[p].Add(o.spans[p])
	}
}

// String renders the virtual-time breakdown compactly.
func (b *Breakdown) String() string {
	var sb strings.Builder
	for i, p := range Phases() {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%v", p, b.Get(p).Virtual.Round(time.Microsecond))
	}
	return sb.String()
}

// Throughput returns bytes/duration in GB/s (decimal GB, as the paper
// reports). A non-positive duration yields 0.
func Throughput(bytes int64, d time.Duration) float64 {
	if d <= 0 || bytes <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e9
}

// Stopwatch measures a wall-clock interval.
type Stopwatch struct {
	start time.Time
	now   func() time.Time
}

// NewStopwatch returns a started stopwatch.
func NewStopwatch() *Stopwatch {
	s := &Stopwatch{now: time.Now}
	s.start = s.now()
	return s
}

// Lap returns the elapsed wall time and restarts the stopwatch.
func (s *Stopwatch) Lap() time.Duration {
	n := s.now()
	d := n.Sub(s.start)
	s.start = n
	return d
}
