package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestSpanAdd(t *testing.T) {
	var s Span
	s.Add(Span{Wall: time.Second, Virtual: 2 * time.Second})
	s.AddWall(time.Second)
	s.AddVirtual(time.Second)
	if s.Wall != 2*time.Second || s.Virtual != 3*time.Second {
		t.Errorf("span = %+v", s)
	}
}

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		PhaseSetup:         "Setup time",
		PhaseRead:          "Read time",
		PhaseDeserialize:   "Deserialization time",
		PhaseCompareTree:   "Compare tree time",
		PhaseCompareDirect: "Compare direct time",
	}
	for p, w := range want {
		if p.String() != w {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), w)
		}
	}
	if !strings.Contains(Phase(99).String(), "99") {
		t.Error("unknown phase should include its number")
	}
	if len(Phases()) != 5 {
		t.Errorf("Phases() has %d entries, want 5", len(Phases()))
	}
}

func TestBreakdownAccumulateAndTotal(t *testing.T) {
	var b Breakdown
	b.Add(PhaseRead, Span{Wall: time.Second, Virtual: 3 * time.Second})
	b.AddWall(PhaseSetup, time.Second)
	b.AddVirtual(PhaseCompareDirect, 2*time.Second)
	tot := b.Total()
	if tot.Wall != 2*time.Second {
		t.Errorf("total wall = %v", tot.Wall)
	}
	if tot.Virtual != 5*time.Second {
		t.Errorf("total virtual = %v", tot.Virtual)
	}
	if got := b.Get(PhaseRead).Virtual; got != 3*time.Second {
		t.Errorf("read virtual = %v", got)
	}
	// Out-of-range phases are ignored, not panics.
	b.Add(Phase(0), Span{Wall: time.Hour})
	b.AddWall(Phase(42), time.Hour)
	b.AddVirtual(Phase(-1), time.Hour)
	if b.Total().Wall != 2*time.Second {
		t.Error("out-of-range phase mutated the breakdown")
	}
	if (b.Get(Phase(0)) != Span{}) {
		t.Error("out-of-range Get should return zero span")
	}
}

func TestBreakdownMerge(t *testing.T) {
	var a, b Breakdown
	a.AddVirtual(PhaseRead, time.Second)
	b.AddVirtual(PhaseRead, 2*time.Second)
	b.AddVirtual(PhaseSetup, time.Second)
	a.Merge(&b)
	if a.Get(PhaseRead).Virtual != 3*time.Second {
		t.Errorf("merged read = %v", a.Get(PhaseRead).Virtual)
	}
	if a.Get(PhaseSetup).Virtual != time.Second {
		t.Errorf("merged setup = %v", a.Get(PhaseSetup).Virtual)
	}
}

func TestBreakdownString(t *testing.T) {
	var b Breakdown
	b.AddVirtual(PhaseRead, 1500*time.Microsecond)
	s := b.String()
	if !strings.Contains(s, "Read time=1.5ms") {
		t.Errorf("String() = %q", s)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(2e9, time.Second); got != 2.0 {
		t.Errorf("2 GB in 1s = %v GB/s", got)
	}
	if Throughput(100, 0) != 0 {
		t.Error("zero duration should yield 0")
	}
	if Throughput(0, time.Second) != 0 {
		t.Error("zero bytes should yield 0")
	}
}

func TestStopwatchLap(t *testing.T) {
	s := NewStopwatch()
	base := time.Unix(0, 0)
	calls := 0
	s.now = func() time.Time {
		calls++
		return base.Add(time.Duration(calls) * time.Second)
	}
	s.start = base
	if d := s.Lap(); d != time.Second {
		t.Errorf("first lap = %v", d)
	}
	if d := s.Lap(); d != time.Second {
		t.Errorf("second lap = %v", d)
	}
}
