package metrics

import (
	"fmt"
	"strings"
	"time"
)

// StepSpan is the recorded cost of one engine plan node: the step's kind
// and label (the plan key) plus its dual wall/virtual span. Labels are
// unique within one plan, so they key lookups.
type StepSpan struct {
	// Kind is the step-type name ("load-metadata", "stream-verify", ...).
	Kind string
	// Label is the plan node's unique label within its plan.
	Label string
	// Span is the step's measured wall time and accumulated virtual time.
	Span Span
}

// StepSpans is the per-step timing table of one executed plan, ordered by
// execution order.
type StepSpans []StepSpan

// Add appends one step's timing.
func (s *StepSpans) Add(kind, label string, sp Span) {
	*s = append(*s, StepSpan{Kind: kind, Label: label, Span: sp})
}

// Get returns the span recorded under the given plan-node label.
func (s StepSpans) Get(label string) (Span, bool) {
	for i := range s {
		if s[i].Label == label {
			return s[i].Span, true
		}
	}
	return Span{}, false
}

// Total sums every step's span.
func (s StepSpans) Total() Span {
	var t Span
	for i := range s {
		t.Add(s[i].Span)
	}
	return t
}

// String renders the table compactly, virtual times only.
func (s StepSpans) String() string {
	var sb strings.Builder
	for i := range s {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%v", s[i].Label, s[i].Span.Virtual.Round(time.Microsecond))
	}
	return sb.String()
}
