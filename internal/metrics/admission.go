package metrics

// TenantAdmission is one tenant's admission-control counters, the
// capacity-planning view the reprod daemon serves on GET /v1/metrics.
// Counters are cumulative since plane creation.
type TenantAdmission struct {
	// Tenant is the tenant ID.
	Tenant string `json:"tenant"`
	// Accepted counts submissions that passed admission (granted or
	// queued).
	Accepted int64 `json:"accepted"`
	// Rejected counts backpressure rejections (the daemon's 429s:
	// tenant quota exceeded, admission queue full).
	Rejected int64 `json:"rejected"`
	// RetryAfterMs is the total virtual backoff attached to this
	// tenant's rejections, in milliseconds — the price the tenant was
	// asked to pay. A high total with few rejections means each
	// rejection hit hard (deep queue); many rejections with a low total
	// means light per-hit pressure.
	RetryAfterMs int64 `json:"retryAfterMs"`
}
