package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/errbound"
	"repro/internal/pfs"
)

func testMeta(runID string, iter, rank, particles int) Meta {
	fields := make([]FieldSpec, 0, 7)
	for _, n := range []string{"x", "y", "z", "vx", "vy", "vz", "phi"} {
		fields = append(fields, FieldSpec{Name: n, DType: errbound.Float32, Count: int64(particles)})
	}
	return Meta{RunID: runID, Iteration: iter, Rank: rank, Fields: fields}
}

func testData(meta Meta, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]byte, len(meta.Fields))
	for i, f := range meta.Fields {
		b := make([]byte, f.Bytes())
		for j := 0; j < int(f.Count); j++ {
			binary.LittleEndian.PutUint32(b[j*4:], math.Float32bits(rng.Float32()*100-50))
		}
		data[i] = b
	}
	return data
}

func newStore(t *testing.T) *pfs.Store {
	t.Helper()
	s, err := pfs.NewStore(t.TempDir(), pfs.NVMeModel())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNameRoundTrip(t *testing.T) {
	n := Name("run1", 30, 7)
	if n != "run1/iter0030.rank007.ckpt" {
		t.Errorf("Name = %q", n)
	}
	run, it, rk, ok := ParseName(n)
	if !ok || run != "run1" || it != 30 || rk != 7 {
		t.Errorf("ParseName = %q %d %d %v", run, it, rk, ok)
	}
	for _, bad := range []string{"x.ckpt", "run1/iter30.rank7.ckpt", "run/iter0001.rank001.dat"} {
		if _, _, _, ok := ParseName(bad); ok {
			t.Errorf("ParseName(%q) accepted", bad)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := newStore(t)
	meta := testMeta("runA", 10, 0, 1000)
	data := testData(meta, 1)
	if _, err := WriteCheckpoint(s, meta, data); err != nil {
		t.Fatal(err)
	}

	r, _, err := OpenReader(s, Name("runA", 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	got := r.Meta()
	if got.RunID != "runA" || got.Iteration != 10 || got.Rank != 0 {
		t.Errorf("meta = %+v", got)
	}
	if r.NumFields() != 7 {
		t.Fatalf("NumFields = %d", r.NumFields())
	}
	if !SameSchema(meta, got) {
		t.Error("schema not preserved")
	}
	for i := range meta.Fields {
		if r.Field(i) != meta.Fields[i] {
			t.Errorf("field %d = %+v, want %+v", i, r.Field(i), meta.Fields[i])
		}
		fd, _, err := r.ReadField(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fd, data[i]) {
			t.Errorf("field %d data mismatch", i)
		}
		if _, err := r.VerifyField(i); err != nil {
			t.Errorf("VerifyField(%d): %v", i, err)
		}
	}
	if got.TotalBytes() != 7*1000*4 {
		t.Errorf("TotalBytes = %d", got.TotalBytes())
	}
}

func TestFieldIndexAndOffsets(t *testing.T) {
	s := newStore(t)
	meta := testMeta("runB", 0, 0, 128)
	data := testData(meta, 2)
	if _, err := WriteCheckpoint(s, meta, data); err != nil {
		t.Fatal(err)
	}
	r, _, err := OpenReader(s, Name("runB", 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if i := r.FieldIndex("vz"); i != 5 {
		t.Errorf("FieldIndex(vz) = %d", i)
	}
	if i := r.FieldIndex("nope"); i != -1 {
		t.Errorf("FieldIndex(nope) = %d", i)
	}
	// Field offsets are strictly increasing by field size.
	for i := 1; i < r.NumFields(); i++ {
		if r.FieldFileOffset(i) != r.FieldFileOffset(i-1)+r.Field(i-1).Bytes() {
			t.Errorf("field %d offset %d not contiguous", i, r.FieldFileOffset(i))
		}
	}
}

func TestReadFieldAtScattered(t *testing.T) {
	s := newStore(t)
	meta := testMeta("runC", 0, 0, 4096)
	data := testData(meta, 3)
	if _, err := WriteCheckpoint(s, meta, data); err != nil {
		t.Fatal(err)
	}
	r, _, err := OpenReader(s, Name("runC", 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 256)
	n, _, err := r.ReadFieldAt(3, buf, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 256 || !bytes.Equal(buf, data[3][1000:1256]) {
		t.Error("scattered read content mismatch")
	}
	// Clamped read at the end of the field.
	tail := make([]byte, 256)
	n, _, err = r.ReadFieldAt(3, tail, meta.Fields[3].Bytes()-100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("tail read n = %d, want 100", n)
	}
	// Out-of-range offsets rejected.
	if _, _, err := r.ReadFieldAt(3, buf, -1); err == nil {
		t.Error("negative offset accepted")
	}
	if _, _, err := r.ReadFieldAt(3, buf, meta.Fields[3].Bytes()); err == nil {
		t.Error("offset at field end accepted")
	}
}

func TestEncodeValidation(t *testing.T) {
	var buf bytes.Buffer
	good := testMeta("r", 0, 0, 4)
	data := testData(good, 4)

	if _, err := Encode(&buf, good, data[:3]); err == nil {
		t.Error("wrong buffer count accepted")
	}
	if _, err := Encode(&buf, Meta{RunID: "r"}, nil); err == nil {
		t.Error("zero fields accepted")
	}
	noID := good
	noID.RunID = ""
	if _, err := Encode(&buf, noID, data); err == nil {
		t.Error("empty run ID accepted")
	}
	badDT := testMeta("r", 0, 0, 4)
	badDT.Fields[0].DType = errbound.DType(99)
	if _, err := Encode(&buf, badDT, data); err == nil {
		t.Error("bad dtype accepted")
	}
	badCount := testMeta("r", 0, 0, 4)
	badCount.Fields[0].Count = 0
	if _, err := Encode(&buf, badCount, data); err == nil {
		t.Error("zero count accepted")
	}
	short := testData(good, 5)
	short[2] = short[2][:8]
	if _, err := Encode(&buf, good, short); err == nil {
		t.Error("short field data accepted")
	}
}

func TestCorruptionDetected(t *testing.T) {
	s := newStore(t)
	meta := testMeta("runD", 0, 0, 64)
	data := testData(meta, 6)
	var buf bytes.Buffer
	if _, err := Encode(&buf, meta, data); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	write := func(name string, b []byte) {
		w, err := s.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(b); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Header corruption -> OpenReader fails with ErrCorrupt.
	bad := append([]byte(nil), raw...)
	bad[1] ^= 0xff
	write("bad1.ckpt", bad)
	if _, _, err := OpenReader(s, "bad1.ckpt"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("magic corruption error = %v", err)
	}

	bad2 := append([]byte(nil), raw...)
	bad2[10] ^= 0x01 // inside run ID / header body: header CRC must trip
	write("bad2.ckpt", bad2)
	if _, _, err := OpenReader(s, "bad2.ckpt"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("header corruption error = %v", err)
	}

	// Data corruption -> VerifyField fails.
	bad3 := append([]byte(nil), raw...)
	bad3[len(bad3)-5] ^= 0x01
	write("bad3.ckpt", bad3)
	r, _, err := OpenReader(s, "bad3.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.VerifyField(6); !errors.Is(err, ErrCorrupt) {
		t.Errorf("data corruption error = %v", err)
	}

	// Truncated file.
	write("bad4.ckpt", raw[:16])
	if _, _, err := OpenReader(s, "bad4.ckpt"); err == nil {
		t.Error("truncated checkpoint accepted")
	}
}

func TestHistoryOrdering(t *testing.T) {
	s := newStore(t)
	meta := testMeta("runE", 0, 0, 8)
	for _, ir := range [][2]int{{20, 1}, {10, 0}, {10, 1}, {20, 0}} {
		m := meta
		m.Iteration, m.Rank = ir[0], ir[1]
		if _, err := WriteCheckpoint(s, m, testData(m, int64(ir[0]*10+ir[1]))); err != nil {
			t.Fatal(err)
		}
	}
	// A non-checkpoint file in the run directory must be ignored.
	w, _ := s.Create("runE/notes.txt")
	w.Write([]byte("hi"))
	w.Close()

	h, err := History(s, "runE")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"runE/iter0010.rank000.ckpt",
		"runE/iter0010.rank001.ckpt",
		"runE/iter0020.rank000.ckpt",
		"runE/iter0020.rank001.ckpt",
	}
	if len(h) != len(want) {
		t.Fatalf("history = %v", h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("history[%d] = %q, want %q", i, h[i], want[i])
		}
	}
}

func TestCheckpointerAsyncFlush(t *testing.T) {
	local := newStore(t)
	remote, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCheckpointer(local, remote, 2)

	metas := make([]Meta, 0, 4)
	for iter := 0; iter < 4; iter++ {
		m := testMeta("runF", iter*10, 0, 256)
		metas = append(metas, m)
		if err := c.Capture(m, testData(m, int64(iter))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Everything must now be durable on the remote tier and readable.
	for _, m := range metas {
		r, _, err := OpenReader(remote, Name(m.RunID, m.Iteration, m.Rank))
		if err != nil {
			t.Fatalf("remote read %d: %v", m.Iteration, err)
		}
		if !SameSchema(m, r.Meta()) {
			t.Error("remote schema mismatch")
		}
		r.Close()
	}
	lc, rc := c.Costs()
	if lc.TotalBytes() == 0 || rc.TotalBytes() == 0 {
		t.Error("costs not accounted")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Error("double close errored")
	}
	if err := c.Capture(metas[0], testData(metas[0], 0)); err == nil {
		t.Error("capture after close accepted")
	}
}

func TestSameSchema(t *testing.T) {
	a := testMeta("x", 0, 0, 10)
	b := testMeta("y", 5, 1, 10) // different identity, same layout
	if !SameSchema(a, b) {
		t.Error("identical layouts reported different")
	}
	c := testMeta("z", 0, 0, 11)
	if SameSchema(a, c) {
		t.Error("different counts reported same")
	}
	d := testMeta("z", 0, 0, 10)
	d.Fields = d.Fields[:6]
	if SameSchema(a, d) {
		t.Error("different field counts reported same")
	}
}
