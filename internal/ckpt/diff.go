package ckpt

import (
	"fmt"

	"repro/internal/cas"
	"repro/internal/device"
	"repro/internal/errbound"
	"repro/internal/murmur3"
	"repro/internal/pfs"
)

// DiffConfig parameterizes a differential capture.
type DiffConfig struct {
	// Epsilon is the quantization bound the leaf digests are keyed on.
	// Required, and must match the comparison ε the manifests will be
	// consumed with.
	Epsilon float64
	// ChunkSize is the dedup/hash granularity in bytes (default 64 KiB,
	// matching compare.Options).
	ChunkSize int
	// Exec parallelizes chunk hashing across workers (nil → serial).
	Exec device.Executor
	// Prev is the previous iteration's manifest for this rank, used to
	// report which chunks changed (the incremental Merkle update set).
	// Nil — or a manifest with different ε, chunking, or schema — selects
	// the cold path: every chunk is reported changed via a nil Changed.
	Prev *cas.Manifest
}

// DiffResult reports one differential capture.
type DiffResult struct {
	// Manifest maps every chunk of the checkpoint to its digest and pack
	// extent; it has already been saved next to the checkpoint name.
	Manifest *cas.Manifest
	// Stats aggregates the dedup outcome across fields.
	Stats cas.CaptureStats
	// Cost covers pack, index, and manifest writes. On error it is
	// partial but truthful (same discipline as WriteCheckpoint).
	Cost pfs.Cost
	// Changed lists, per field, the chunk indices whose digest differs
	// from Prev — exactly the merkle.Update set. Nil when Cold.
	Changed [][]int
	// Cold reports that no usable previous manifest was available.
	Cold bool
}

// WriteCheckpointDiff captures a checkpoint differentially: it hashes
// every chunk with the ε-quantized leaf hasher, stores only chunks whose
// digest is not already in the CAS, and writes a leaf manifest in place of
// the full container. Consecutive iterations — and ε-close sibling runs
// capturing into the same store — therefore write only their divergence.
//
// The returned result's Cost and Stats stay meaningful on error paths:
// they cover whatever writes completed before the failure.
func WriteCheckpointDiff(store *pfs.Store, cs *cas.Store, meta Meta, data [][]byte, cfg DiffConfig) (*DiffResult, error) {
	res := &DiffResult{}
	if len(data) != len(meta.Fields) {
		return res, fmt.Errorf("ckpt: %d data buffers for %d fields", len(data), len(meta.Fields))
	}
	if len(meta.Fields) == 0 {
		return res, fmt.Errorf("ckpt: checkpoint must have at least one field")
	}
	chunkSize := cfg.ChunkSize
	if chunkSize <= 0 {
		chunkSize = 64 << 10
	}
	exec := cfg.Exec
	if exec == nil {
		exec = device.Serial{}
	}

	m := &cas.Manifest{Epsilon: cfg.Epsilon, ChunkSize: chunkSize, Fields: make([]cas.FieldManifest, len(meta.Fields))}
	for i, f := range meta.Fields {
		if f.DType.Size() == 0 {
			return res, fmt.Errorf("ckpt: field %q has unsupported dtype", f.Name)
		}
		if int64(len(data[i])) != f.Bytes() {
			return res, fmt.Errorf("ckpt: field %q has %d bytes, want %d", f.Name, len(data[i]), f.Bytes())
		}
		digests, err := hashFieldChunks(f.DType, cfg.Epsilon, data[i], chunkSize, exec)
		if err != nil {
			return res, err
		}
		m.Fields[i] = cas.FieldManifest{Name: f.Name, DType: f.DType, Count: f.Count, Digests: digests}
	}
	res.Manifest = m

	// Store new chunks field by field; dedup spans fields, iterations, and
	// runs because the CAS index is shared.
	for i := range m.Fields {
		locs, stats, cost, err := cs.PutChunks(data[i], chunkSize, m.Fields[i].Digests)
		res.Stats.Add(stats)
		res.Cost.Add(cost)
		if err != nil {
			return res, fmt.Errorf("ckpt: differential capture of field %q: %w", m.Fields[i].Name, err)
		}
		m.Fields[i].Locs = locs
	}

	// Difference against the previous manifest for the incremental update
	// set. A schema or parameter mismatch degrades to the cold path rather
	// than erroring: the capture itself is complete either way.
	if cfg.Prev != nil && cas.SameSchema(cfg.Prev, m) {
		res.Changed = make([][]int, len(m.Fields))
		for i := range m.Fields {
			prev := cfg.Prev.Fields[i].Digests
			cur := m.Fields[i].Digests
			changed := []int{}
			for c := range cur {
				if c >= len(prev) || cur[c] != prev[c] {
					changed = append(changed, c)
				}
			}
			res.Changed[i] = changed
		}
	} else {
		res.Cold = true
	}

	name := Name(meta.RunID, meta.Iteration, meta.Rank)
	mcost, err := cas.SaveManifest(store, name, m)
	res.Cost.Add(mcost)
	if err != nil {
		return res, fmt.Errorf("ckpt: save manifest for %s: %w", name, err)
	}
	return res, nil
}

// hashFieldChunks computes the ε-quantized leaf digest of every chunk in
// parallel (each chunk hash is independent; the chaining is within-chunk).
func hashFieldChunks(dtype errbound.DType, eps float64, data []byte, chunkSize int, exec device.Executor) ([]murmur3.Digest, error) {
	h, err := errbound.NewHasher(dtype, eps)
	if err != nil {
		return nil, err
	}
	nChunks := (len(data) + chunkSize - 1) / chunkSize
	digests := make([]murmur3.Digest, nChunks)
	errs := make([]error, nChunks)
	exec.For(nChunks, func(i int) {
		lo, hi := i*chunkSize, (i+1)*chunkSize
		if hi > len(data) {
			hi = len(data)
		}
		digests[i], errs[i] = h.HashChunk(data[lo:hi])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return digests, nil
}
