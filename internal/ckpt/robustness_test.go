package ckpt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickParserNeverPanics feeds arbitrary bytes to the header parser:
// it must classify every input as parsed, short, or corrupt — never panic
// and never claim success on garbage that fails the CRC.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		h, consumed, needMore, err := parseHeader(data)
		if err != nil {
			return true // rejected cleanly
		}
		if needMore {
			return true // wants a longer prefix
		}
		// Claimed success: the header must be internally consistent.
		return consumed > 0 && len(h.meta.Fields) > 0 && h.dataStart == consumed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickBitFlippedHeadersRejected flips random bits in valid encodings:
// the header CRC must catch every corruption in the header region.
func TestQuickBitFlippedHeadersRejected(t *testing.T) {
	meta := testMeta("rq", 3, 1, 32)
	var buf bytes.Buffer
	if _, err := Encode(&buf, meta, testData(meta, 9)); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Find the header length: parse once.
	_, hdrLen, _, err := parseHeader(good)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		corrupted := append([]byte(nil), good...)
		bit := rng.Intn(int(hdrLen) * 8)
		corrupted[bit/8] ^= 1 << (bit % 8)
		h, _, needMore, err := parseHeader(corrupted)
		if err != nil || needMore {
			continue // rejected or classified short: fine
		}
		// Parsed "successfully": only acceptable if the flip landed in a
		// spot that leaves all parsed state AND the CRC identical — which
		// cannot happen for a single bit flip inside the CRC'd region.
		t.Fatalf("trial %d: single bit flip at %d accepted (fields=%d)",
			trial, bit, len(h.meta.Fields))
	}
}

// TestEncodeDeterministic confirms identical inputs produce identical
// bytes (metadata files are diffable artifacts).
func TestEncodeDeterministic(t *testing.T) {
	meta := testMeta("det", 1, 0, 64)
	data := testData(meta, 3)
	var a, b bytes.Buffer
	if _, err := Encode(&a, meta, data); err != nil {
		t.Fatal(err)
	}
	if _, err := Encode(&b, meta, data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("encoding is not deterministic")
	}
}
