package ckpt

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/pfs"
)

// Reader reads a checkpoint file on a store, supporting both whole-field
// reads and the scattered ReadFieldAt access pattern of the comparator's
// verification stage.
type Reader struct {
	f   *pfs.File
	hdr header
}

// OpenReader opens and parses a checkpoint file, returning the reader and
// the storage cost of reading the header.
func OpenReader(store *pfs.Store, name string) (*Reader, pfs.Cost, error) {
	f, err := store.Open(name)
	if err != nil {
		return nil, pfs.Cost{}, err
	}
	r, cost, err := NewReader(f)
	if err != nil {
		_ = f.Close() // the header parse error takes precedence
		return nil, cost, err
	}
	return r, cost, nil
}

// NewReader parses a checkpoint header from an open file. The reader owns
// the file and closes it on Close.
func NewReader(f *pfs.File) (*Reader, pfs.Cost, error) {
	var total pfs.Cost
	// Headers are small; read a growing prefix until parsing succeeds.
	size := int64(4096)
	for {
		if size > f.Size() {
			size = f.Size()
		}
		buf := make([]byte, size)
		n, cost, err := f.ReadAt(buf, 0)
		total.Add(cost)
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, total, err
		}
		h, _, needMore, perr := parseHeader(buf[:n])
		if perr != nil {
			return nil, total, fmt.Errorf("parse %s: %w", f.Name(), perr)
		}
		if !needMore {
			return &Reader{f: f, hdr: h}, total, nil
		}
		if size == f.Size() {
			return nil, total, fmt.Errorf("%w: truncated header in %s", ErrCorrupt, f.Name())
		}
		size *= 4
	}
}

// Meta returns the checkpoint metadata.
func (r *Reader) Meta() Meta { return r.hdr.meta }

// NumFields returns the number of fields.
func (r *Reader) NumFields() int { return len(r.hdr.meta.Fields) }

// Field returns the spec of field i.
func (r *Reader) Field(i int) FieldSpec { return r.hdr.meta.Fields[i] }

// FieldIndex returns the index of the named field, or -1.
func (r *Reader) FieldIndex(name string) int {
	for i, f := range r.hdr.meta.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// FieldFileOffset returns the absolute file offset of field i's data, the
// anchor for scattered chunk reads.
func (r *Reader) FieldFileOffset(i int) int64 {
	return r.hdr.dataStart + r.hdr.offsets[i]
}

// File returns the underlying pfs file (for backends issuing scattered
// reads directly).
func (r *Reader) File() *pfs.File { return r.f }

// ReadFieldAt reads len(p) bytes of field i starting at byte offset off
// within the field.
func (r *Reader) ReadFieldAt(i int, p []byte, off int64) (int, pfs.Cost, error) {
	fb := r.hdr.meta.Fields[i].Bytes()
	if off < 0 || off >= fb {
		return 0, pfs.Cost{}, fmt.Errorf("ckpt: offset %d outside field %q (%d bytes)",
			off, r.hdr.meta.Fields[i].Name, fb)
	}
	want := int64(len(p))
	if off+want > fb {
		want = fb - off
	}
	n, cost, err := r.f.ReadAt(p[:want], r.FieldFileOffset(i)+off)
	if err != nil && !errors.Is(err, io.EOF) {
		return n, cost, err
	}
	return n, cost, nil
}

// ReadField reads the entire field i in large sequential blocks.
func (r *Reader) ReadField(i int) ([]byte, pfs.Cost, error) {
	fb := r.hdr.meta.Fields[i].Bytes()
	data := make([]byte, fb)
	var total pfs.Cost
	const block = 1 << 20
	for off := int64(0); off < fb; off += block {
		end := off + block
		if end > fb {
			end = fb
		}
		_, cost, err := r.ReadFieldAt(i, data[off:end], off)
		total.Add(cost)
		if err != nil {
			return nil, total, err
		}
	}
	return data, total, nil
}

// VerifyField reads field i and checks its CRC.
func (r *Reader) VerifyField(i int) (pfs.Cost, error) {
	data, cost, err := r.ReadField(i)
	if err != nil {
		return cost, err
	}
	if crc32.ChecksumIEEE(data) != r.hdr.crcs[i] {
		return cost, fmt.Errorf("%w: field %q crc mismatch", ErrCorrupt, r.hdr.meta.Fields[i].Name)
	}
	return cost, nil
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// SameSchema reports whether two checkpoints have identical field layouts,
// the precondition for pairwise comparison.
func SameSchema(a, b Meta) bool {
	if len(a.Fields) != len(b.Fields) {
		return false
	}
	for i := range a.Fields {
		if a.Fields[i] != b.Fields[i] {
			return false
		}
	}
	return true
}
