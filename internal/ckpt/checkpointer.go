package ckpt

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/pfs"
)

// Checkpointer captures checkpoints through two storage tiers, the VELOC
// pattern the paper relies on (§1, §3.3.1): the checkpoint is written
// synchronously to fast node-local storage, then flushed to the PFS in the
// background while the application continues. Close (or Flush) must be
// called to guarantee durability on the PFS tier.
type Checkpointer struct {
	local  *pfs.Store
	remote *pfs.Store

	jobs chan flushJob
	wg   sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	flushErr error
	inFlight sync.WaitGroup

	// cost accounting (virtual)
	localCost  pfs.Cost
	remoteCost pfs.Cost
}

type flushJob struct {
	name string
}

// NewCheckpointer starts a checkpointer with the given number of background
// flush workers (minimum 1).
func NewCheckpointer(local, remote *pfs.Store, flushWorkers int) *Checkpointer {
	if flushWorkers < 1 {
		flushWorkers = 1
	}
	c := &Checkpointer{
		local:  local,
		remote: remote,
		jobs:   make(chan flushJob, flushWorkers),
	}
	c.wg.Add(flushWorkers)
	for i := 0; i < flushWorkers; i++ {
		//lint:ignore gocheck flusher pool joined by Checkpointer.Close via c.wg.Wait
		go c.flusher()
	}
	return c
}

func (c *Checkpointer) flusher() {
	defer c.wg.Done()
	for job := range c.jobs {
		err := c.flushOne(job.name)
		if err != nil {
			c.mu.Lock()
			if c.flushErr == nil {
				c.flushErr = err
			}
			c.mu.Unlock()
		}
		c.inFlight.Done()
	}
}

// flushOne copies one checkpoint from the local tier to the remote tier.
// The background flusher has no caller-scoped lifetime to inherit — its
// cancellation point is the jobs channel closing in Close, not a context.
func (c *Checkpointer) flushOne(name string) error {
	//lint:ignore ctxflow the flusher outlives any caller; Close is its cancellation
	data, cost, err := c.local.ReadFileFull(context.Background(), name, 4<<20)
	if err != nil {
		return fmt.Errorf("flush %s: read local: %w", name, err)
	}
	c.mu.Lock()
	c.localCost.Add(cost)
	c.mu.Unlock()

	w, err := c.remote.Create(name)
	if err != nil {
		return fmt.Errorf("flush %s: %w", name, err)
	}
	// Partial cost on every path: a failed flush still moved bytes (a torn
	// write persists a prefix), and dropping them would skew the capture
	// bench deltas under fault injection.
	defer func() {
		c.mu.Lock()
		c.remoteCost.Add(w.Cost())
		c.mu.Unlock()
	}()
	if _, err := w.Write(data); err != nil {
		_ = w.Close() // the write error takes precedence
		return fmt.Errorf("flush %s: %w", name, err)
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("flush %s: %w", name, err)
	}
	return nil
}

// Capture writes the checkpoint to the local tier and schedules its
// background flush to the PFS tier. It returns once the local write is
// durable, so the application can continue immediately.
func (c *Checkpointer) Capture(meta Meta, data [][]byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("ckpt: checkpointer closed")
	}
	c.inFlight.Add(1)
	c.mu.Unlock()

	name := Name(meta.RunID, meta.Iteration, meta.Rank)
	w, err := c.local.Create(name)
	if err != nil {
		c.inFlight.Done()
		return err
	}
	// Accumulate the local write cost on every path, including encode and
	// close failures — partial but truthful, mirroring WriteCheckpoint.
	defer func() {
		c.mu.Lock()
		c.localCost.Add(w.Cost())
		c.mu.Unlock()
	}()
	if _, err := Encode(w, meta, data); err != nil {
		_ = w.Close() // the encode error takes precedence
		c.inFlight.Done()
		return err
	}
	if err := w.Close(); err != nil {
		c.inFlight.Done()
		return err
	}

	c.jobs <- flushJob{name: name}
	return nil
}

// Flush blocks until every scheduled background flush has completed and
// returns the first flush error, if any.
func (c *Checkpointer) Flush() error {
	c.inFlight.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushErr
}

// Costs returns the accumulated virtual write costs on the two tiers.
func (c *Checkpointer) Costs() (local, remote pfs.Cost) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.localCost, c.remoteCost
}

// Close flushes outstanding work and stops the background workers.
func (c *Checkpointer) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()

	err := c.Flush()
	close(c.jobs)
	c.wg.Wait()
	return err
}

// WriteCheckpoint is the synchronous single-tier convenience used by tools
// and tests: encode directly onto one store. On error the returned cost
// covers the writes that did complete before the failure (a torn write's
// persisted prefix included) — partial but truthful, the same discipline
// as stream.Stats.Wall — so bench deltas stay honest under fault
// injection.
func WriteCheckpoint(store *pfs.Store, meta Meta, data [][]byte) (cost pfs.Cost, err error) {
	name := Name(meta.RunID, meta.Iteration, meta.Rank)
	w, err := store.Create(name)
	if err != nil {
		return pfs.Cost{}, err
	}
	defer func() { cost = w.Cost() }()
	if _, err := Encode(w, meta, data); err != nil {
		_ = w.Close() // the encode error takes precedence
		return cost, err
	}
	return cost, w.Close()
}
