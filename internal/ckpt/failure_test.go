package ckpt

import (
	"errors"
	"testing"

	"repro/internal/faults"
	"repro/internal/pfs"
)

var errInjected = errors.New("injected storage fault")

func TestCheckpointerSurfacesFlushFailure(t *testing.T) {
	local := newStore(t)
	remote, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCheckpointer(local, remote, 1)
	defer c.Close()

	meta := testMeta("flushfail", 0, 0, 64)
	faults.FailWrites(remote, 0, errInjected)
	if err := c.Capture(meta, testData(meta, 1)); err != nil {
		t.Fatalf("capture itself must succeed (local tier is healthy): %v", err)
	}
	if err := c.Flush(); !errors.Is(err, errInjected) {
		t.Errorf("Flush error = %v, want injected fault", err)
	}
}

func TestCheckpointerLocalWriteFailureIsSynchronous(t *testing.T) {
	local := newStore(t)
	remote, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCheckpointer(local, remote, 1)
	defer c.Close()
	faults.FailWrites(local, 0, errInjected)
	meta := testMeta("localfail", 0, 0, 64)
	if err := c.Capture(meta, testData(meta, 2)); !errors.Is(err, errInjected) {
		t.Errorf("capture error = %v, want injected fault", err)
	}
	// The checkpointer remains usable for later captures.
	meta2 := testMeta("localfail", 10, 0, 64)
	if err := c.Capture(meta2, testData(meta2, 3)); err != nil {
		t.Errorf("capture after local fault failed: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Errorf("flush after recovery failed: %v", err)
	}
}

func TestReaderFaultDuringField(t *testing.T) {
	s := newStore(t)
	meta := testMeta("rf", 0, 0, 4096)
	if _, err := WriteCheckpoint(s, meta, testData(meta, 4)); err != nil {
		t.Fatal(err)
	}
	r, _, err := OpenReader(s, Name("rf", 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	faults.FailReads(s, 0, errInjected)
	if _, _, err := r.ReadField(0); !errors.Is(err, errInjected) {
		t.Errorf("ReadField error = %v", err)
	}
	if _, _, err := r.ReadField(0); err != nil {
		t.Errorf("ReadField after fault failed: %v", err)
	}
}
