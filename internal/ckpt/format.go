// Package ckpt implements the checkpoint capture substrate modelled on the
// VELOC library the paper uses (§3.3.1): typed, named checkpoint fields in
// a CRC-protected binary container, captured asynchronously through two
// storage tiers — a fast node-local tier written synchronously, flushed in
// the background to the PFS tier while the application continues.
//
// A checkpoint history is a set of files named
// <runID>/iter<NNNN>.rank<RRR>.ckpt on a store; the comparator pairs the
// histories of two runs file by file.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"regexp"
	"sort"
	"strconv"

	"repro/internal/errbound"
	"repro/internal/pfs"
)

// Format constants.
const (
	formatMagic = "VLCK"
	formatVer   = 1
	// maxFields bounds header parsing against corrupt files.
	maxFields = 1 << 16
	// maxNameLen bounds name parsing against corrupt files.
	maxNameLen = 1 << 12
)

// ErrCorrupt is returned when a checkpoint file fails an integrity check.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint")

// FieldSpec describes one captured variable.
type FieldSpec struct {
	// Name is the variable name ("x", "vx", "phi", ...).
	Name string
	// DType is the element type.
	DType errbound.DType
	// Count is the number of elements.
	Count int64
}

// Bytes returns the field's raw size.
func (f FieldSpec) Bytes() int64 { return f.Count * int64(f.DType.Size()) }

// Meta identifies a checkpoint within a run's history.
type Meta struct {
	// RunID identifies the application run.
	RunID string
	// Iteration is the simulation step the checkpoint captures.
	Iteration int
	// Rank is the distributed process rank.
	Rank int
	// Fields lists the captured variables in file order.
	Fields []FieldSpec
}

// TotalBytes returns the summed raw size of all fields.
func (m Meta) TotalBytes() int64 {
	var t int64
	for _, f := range m.Fields {
		t += f.Bytes()
	}
	return t
}

// Name returns the canonical history file name for a checkpoint.
func Name(runID string, iteration, rank int) string {
	return fmt.Sprintf("%s/iter%04d.rank%03d.ckpt", runID, iteration, rank)
}

var nameRe = regexp.MustCompile(`^(.+)/iter(\d{4})\.rank(\d{3})\.ckpt$`)

// ParseName inverts Name. ok is false for non-checkpoint paths.
func ParseName(name string) (runID string, iteration, rank int, ok bool) {
	m := nameRe.FindStringSubmatch(name)
	if m == nil {
		return "", 0, 0, false
	}
	it, err1 := strconv.Atoi(m[2])
	rk, err2 := strconv.Atoi(m[3])
	if err1 != nil || err2 != nil {
		return "", 0, 0, false
	}
	return m[1], it, rk, true
}

// History lists a run's checkpoint file names on a store, sorted by
// iteration then rank.
func History(store *pfs.Store, runID string) ([]string, error) {
	names, err := store.List(runID + "/")
	if err != nil {
		return nil, err
	}
	var out []string
	for _, n := range names {
		if _, _, _, ok := ParseName(n); ok {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		_, ii, ri, _ := ParseName(out[i])
		_, ij, rj, _ := ParseName(out[j])
		if ii != ij {
			return ii < ij
		}
		return ri < rj
	})
	return out, nil
}

// Encode serializes a checkpoint to w. data[i] must hold exactly
// meta.Fields[i].Bytes() raw little-endian bytes.
//
// Layout (little-endian):
//
//	magic     [4]byte "VLCK"
//	version   u16
//	reserved  u16
//	runID     u16 len + bytes
//	iteration u32
//	rank      u32
//	nfields   u32
//	fields    n × { name u16 len + bytes, dtype u8, pad u8,
//	                count u64, offset u64, crc32 u32 }
//	headerCRC u32 (over everything above)
//	data      concatenated field bytes
func Encode(w io.Writer, meta Meta, data [][]byte) (int64, error) {
	if len(data) != len(meta.Fields) {
		return 0, fmt.Errorf("ckpt: %d data buffers for %d fields", len(data), len(meta.Fields))
	}
	if len(meta.Fields) == 0 {
		return 0, errors.New("ckpt: checkpoint must have at least one field")
	}
	if len(meta.RunID) == 0 || len(meta.RunID) > maxNameLen {
		return 0, fmt.Errorf("ckpt: run ID length %d out of range", len(meta.RunID))
	}

	var hdr []byte
	hdr = append(hdr, formatMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, formatVer)
	hdr = binary.LittleEndian.AppendUint16(hdr, 0)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(meta.RunID)))
	hdr = append(hdr, meta.RunID...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(meta.Iteration))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(meta.Rank))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(meta.Fields)))

	var off int64
	for i, f := range meta.Fields {
		if f.DType.Size() == 0 {
			return 0, fmt.Errorf("ckpt: field %q has unsupported dtype", f.Name)
		}
		if f.Count <= 0 {
			return 0, fmt.Errorf("ckpt: field %q has non-positive count %d", f.Name, f.Count)
		}
		if len(f.Name) == 0 || len(f.Name) > maxNameLen {
			return 0, fmt.Errorf("ckpt: field %d name length %d out of range", i, len(f.Name))
		}
		if int64(len(data[i])) != f.Bytes() {
			return 0, fmt.Errorf("ckpt: field %q has %d bytes, want %d", f.Name, len(data[i]), f.Bytes())
		}
		hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(f.Name)))
		hdr = append(hdr, f.Name...)
		hdr = append(hdr, byte(f.DType), 0)
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(f.Count))
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(off))
		hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(data[i]))
		off += f.Bytes()
	}
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(hdr))

	var written int64
	n, err := w.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("ckpt: write header: %w", err)
	}
	for i := range data {
		n, err := w.Write(data[i])
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("ckpt: write field %q: %w", meta.Fields[i].Name, err)
		}
	}
	return written, nil
}

// header is the parsed prefix of a checkpoint file.
type header struct {
	meta      Meta
	offsets   []int64 // per-field offset within the data section
	crcs      []uint32
	dataStart int64
}

// parseHeader decodes a header from buf, returning the parsed header and
// the number of header bytes consumed; needMore is set when buf is too
// short (callers re-read with a larger prefix).
func parseHeader(buf []byte) (h header, consumed int64, needMore bool, err error) {
	r := &byteReader{buf: buf}
	magic := r.bytes(4)
	if r.short {
		return h, 0, true, nil
	}
	if string(magic) != formatMagic {
		return h, 0, false, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	ver := r.u16()
	r.u16() // reserved
	if r.short {
		return h, 0, true, nil
	}
	if ver != formatVer {
		return h, 0, false, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, ver)
	}
	idLen := int(r.u16())
	if r.short {
		return h, 0, true, nil
	}
	if idLen == 0 || idLen > maxNameLen {
		return h, 0, false, fmt.Errorf("%w: run ID length %d", ErrCorrupt, idLen)
	}
	id := r.bytes(idLen)
	iter := r.u32()
	rank := r.u32()
	nf := int(r.u32())
	if r.short {
		return h, 0, true, nil
	}
	if nf == 0 || nf > maxFields {
		return h, 0, false, fmt.Errorf("%w: field count %d", ErrCorrupt, nf)
	}
	h.meta = Meta{
		RunID:     string(id),
		Iteration: int(iter),
		Rank:      int(rank),
		Fields:    make([]FieldSpec, 0, nf),
	}
	h.offsets = make([]int64, 0, nf)
	h.crcs = make([]uint32, 0, nf)
	for i := 0; i < nf; i++ {
		nameLen := int(r.u16())
		if r.short {
			return h, 0, true, nil
		}
		if nameLen == 0 || nameLen > maxNameLen {
			return h, 0, false, fmt.Errorf("%w: field %d name length %d", ErrCorrupt, i, nameLen)
		}
		name := r.bytes(nameLen)
		dtype := errbound.DType(r.u8())
		r.u8() // pad
		count := int64(r.u64())
		off := int64(r.u64())
		crc := r.u32()
		if r.short {
			return h, 0, true, nil
		}
		if dtype.Size() == 0 || count <= 0 || off < 0 {
			return h, 0, false, fmt.Errorf("%w: field %q implausible (dtype=%d count=%d off=%d)",
				ErrCorrupt, name, dtype, count, off)
		}
		h.meta.Fields = append(h.meta.Fields, FieldSpec{Name: string(name), DType: dtype, Count: count})
		h.offsets = append(h.offsets, off)
		h.crcs = append(h.crcs, crc)
	}
	bodyLen := r.off
	gotCRC := r.u32()
	if r.short {
		return h, 0, true, nil
	}
	if crc32.ChecksumIEEE(buf[:bodyLen]) != gotCRC {
		return h, 0, false, fmt.Errorf("%w: header crc mismatch", ErrCorrupt)
	}
	h.dataStart = r.off
	return h, r.off, false, nil
}

// byteReader is a bounds-checked little-endian cursor.
type byteReader struct {
	buf   []byte
	off   int64
	short bool
}

func (r *byteReader) bytes(n int) []byte {
	if r.short || int64(len(r.buf))-r.off < int64(n) {
		r.short = true
		return nil
	}
	b := r.buf[r.off : r.off+int64(n)]
	r.off += int64(n)
	return b
}

func (r *byteReader) u8() uint8 {
	b := r.bytes(1)
	if r.short {
		return 0
	}
	return b[0]
}

func (r *byteReader) u16() uint16 {
	b := r.bytes(2)
	if r.short {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *byteReader) u32() uint32 {
	b := r.bytes(4)
	if r.short {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *byteReader) u64() uint64 {
	b := r.bytes(8)
	if r.short {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
