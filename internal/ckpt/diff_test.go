package ckpt

import (
	"context"

	"testing"

	"repro/internal/cas"
	"repro/internal/device"
	"repro/internal/errbound"
	"repro/internal/faults"
	"repro/internal/pfs"
	"repro/internal/synth"
)

func diffFixture(t *testing.T) (*pfs.Store, *cas.Store) {
	t.Helper()
	store, err := pfs.NewStore(t.TempDir(), pfs.NVMeModel())
	if err != nil {
		t.Fatal(err)
	}
	cs, _, err := cas.Open(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	return store, cs
}

func diffMeta(iter int) Meta {
	return Meta{RunID: "run", Iteration: iter, Rank: 0, Fields: []FieldSpec{
		{Name: "x", DType: errbound.Float32, Count: 16384},
		{Name: "phi", DType: errbound.Float32, Count: 16384},
	}}
}

func TestWriteCheckpointDiffColdThenWarm(t *testing.T) {
	store, cs := diffFixture(t)
	cfg := DiffConfig{Epsilon: 1e-5, ChunkSize: 4 << 10, Exec: device.NewParallel(4)}

	data0 := [][]byte{synth.FieldF32(16384, 1), synth.FieldF32(16384, 2)}
	res0, err := WriteCheckpointDiff(store, cs, diffMeta(0), data0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res0.Cold || res0.Changed != nil {
		t.Fatalf("first capture not cold: cold=%v changed=%v", res0.Cold, res0.Changed)
	}
	if res0.Stats.ChunksWritten != res0.Stats.Chunks || res0.Stats.DedupHits != 0 {
		t.Fatalf("cold capture stats %+v", res0.Stats)
	}

	// Warm capture: mutate two chunks of field 0, leave field 1 untouched.
	data1 := [][]byte{append([]byte{}, data0[0]...), data0[1]}
	copy(data1[0][0:], synth.FieldF32(1024, 99))      // chunk 0
	copy(data1[0][8<<10:], synth.FieldF32(1024, 100)) // chunk 2
	cfg.Prev = res0.Manifest
	res1, err := WriteCheckpointDiff(store, cs, diffMeta(1), data1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cold {
		t.Fatal("warm capture reported cold")
	}
	if got := res1.Changed[0]; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("changed chunks of field 0: %v, want [0 2]", got)
	}
	if len(res1.Changed[1]) != 0 {
		t.Fatalf("untouched field reported %v changed", res1.Changed[1])
	}
	if res1.Stats.ChunksWritten != 2 {
		t.Fatalf("warm capture wrote %d chunks, want 2", res1.Stats.ChunksWritten)
	}
	if res1.Stats.DedupHits != res1.Stats.Chunks-2 {
		t.Fatalf("warm capture stats %+v", res1.Stats)
	}

	// The manifest round-trips and its extents reproduce the data.
	m, _, err := cas.LoadManifest(context.Background(), store, Name("run", 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !cas.SameSchema(m, res1.Manifest) {
		t.Fatal("loaded manifest schema differs")
	}
	f, err := cs.Pack()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for fi := range m.Fields {
		for ci, loc := range m.Fields[fi].Locs {
			buf := make([]byte, loc.Len)
			if _, _, err := f.ReadAt(buf, loc.Off); err != nil {
				t.Fatal(err)
			}
			lo := ci * m.ChunkSize
			want := data1[fi][lo : lo+int(loc.Len)]
			for k := range buf {
				if buf[k] != want[k] {
					t.Fatalf("field %d chunk %d byte %d differs after gather", fi, ci, k)
				}
			}
		}
	}
}

func TestWriteCheckpointDiffSchemaChangeGoesCold(t *testing.T) {
	store, cs := diffFixture(t)
	cfg := DiffConfig{Epsilon: 1e-5, ChunkSize: 4 << 10}
	data := [][]byte{synth.FieldF32(16384, 1), synth.FieldF32(16384, 2)}
	res0, err := WriteCheckpointDiff(store, cs, diffMeta(0), data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same data, different ε: digests are not comparable, must go cold.
	cfg.Prev = res0.Manifest
	cfg.Epsilon = 1e-6
	res1, err := WriteCheckpointDiff(store, cs, diffMeta(1), data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Cold {
		t.Fatal("ε change did not select the cold path")
	}
}

func TestWriteCheckpointDiffPartialCostOnError(t *testing.T) {
	store, cs := diffFixture(t)
	cfg := DiffConfig{Epsilon: 1e-5, ChunkSize: 4 << 10}
	data := [][]byte{synth.FieldF32(16384, 1), synth.FieldF32(16384, 2)}

	// Fail pack writes after the first: field 0 lands, field 1 tears.
	inj := faults.New(5, faults.Rule{Kind: faults.PermanentWrite, Name: "cas/pack", After: 1, Count: -1})
	store.SetFaultHook(inj)
	res, err := WriteCheckpointDiff(store, cs, diffMeta(0), data, cfg)
	store.SetFaultHook(nil)
	if err == nil {
		t.Fatal("injected write fault did not surface")
	}
	if res.Cost.Bytes == 0 {
		t.Fatal("error path dropped the partial capture cost")
	}
	if res.Stats.ChunksWritten == 0 {
		t.Fatal("error path dropped the partial capture stats")
	}
}

// TestWriteCheckpointPartialCostOnError pins the satellite fix: a torn
// write mid-container still reports the persisted prefix in the cost.
func TestWriteCheckpointPartialCostOnError(t *testing.T) {
	store, _ := diffFixture(t)
	// After: 1 skips the header write and tears the first field write, so
	// the partial cost must cover the header plus the 512-byte torn prefix.
	inj := faults.New(6, faults.Rule{Kind: faults.TornWrite, Name: ".ckpt", After: 1, Count: 1, Keep: 512})
	store.SetFaultHook(inj)
	cost, err := WriteCheckpoint(store, diffMeta(0), [][]byte{synth.FieldF32(16384, 1), synth.FieldF32(16384, 2)})
	store.SetFaultHook(nil)
	if err == nil {
		t.Fatal("torn write did not surface")
	}
	if cost.Bytes <= 512 {
		t.Fatalf("partial cost %d bytes, want header + 512-byte torn prefix", cost.Bytes)
	}
}

// TestCapturePartialCostOnError pins the same discipline on the two-tier
// path: local-tier cost accumulates even when the encode write fails.
func TestCapturePartialCostOnError(t *testing.T) {
	local, _ := diffFixture(t)
	remote, _ := diffFixture(t)
	c := NewCheckpointer(local, remote, 1)
	inj := faults.New(7, faults.Rule{Kind: faults.TornWrite, Name: ".ckpt", After: 1, Count: 1, Keep: 256})
	local.SetFaultHook(inj)
	err := c.Capture(diffMeta(0), [][]byte{synth.FieldF32(16384, 1), synth.FieldF32(16384, 2)})
	local.SetFaultHook(nil)
	if err == nil {
		t.Fatal("torn local write did not surface")
	}
	lc, _ := c.Costs()
	if lc.Bytes <= 256 {
		t.Fatalf("local cost %d bytes on error, want header + 256-byte torn prefix", lc.Bytes)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFlushPartialCostOnError: remote-tier cost accumulates when the
// background flush dies mid-write.
func TestFlushPartialCostOnError(t *testing.T) {
	local, _ := diffFixture(t)
	remote, _ := diffFixture(t)
	c := NewCheckpointer(local, remote, 1)
	inj := faults.New(8, faults.Rule{Kind: faults.TornWrite, Name: ".ckpt", Count: 1, Keep: 128})
	remote.SetFaultHook(inj)
	if err := c.Capture(diffMeta(0), [][]byte{synth.FieldF32(16384, 1), synth.FieldF32(16384, 2)}); err != nil {
		t.Fatal(err)
	}
	ferr := c.Flush()
	remote.SetFaultHook(nil)
	if ferr == nil {
		t.Fatal("torn remote flush did not surface")
	}
	_, rc := c.Costs()
	if rc.Bytes != 128 {
		t.Fatalf("remote cost %d bytes on error, want the 128-byte torn prefix", rc.Bytes)
	}
	if err := c.Close(); err == nil {
		t.Log("close after flush error returned nil (flush error already consumed)")
	}
}
