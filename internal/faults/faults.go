// Package faults is the deterministic fault-injection layer for pfs
// stores. It implements pfs.FaultHook with a scriptable schedule of rules
// — transient/permanent read and write errors, torn writes, bit flips in
// returned buffers, and virtual-clock latency spikes — replacing the old
// one-shot Store.FailReads/FailWrites hooks (kept here as helpers).
//
// Determinism: every probabilistic decision is drawn from a splitmix64
// stream keyed by the injector's seed, and deterministic rules fire on
// exact operation counts. Under a concurrent workload the *assignment* of
// faults to specific operations follows arrival order, but the fault
// stream itself is a pure function of the seed, so a chaos schedule is
// reproducible in aggregate: same seed, same rule mix, same counts.
//
// Classification: transient rules wrap their error with
// retry.Mark(err, retry.Transient) so the retry layer backs off and
// re-issues; permanent rules leave the error unclassified (the retry
// default), so it propagates — exactly like the pre-existing one-shot
// hooks that failure tests rely on.
package faults

import (
	"errors"
	"strings"
	"sync"

	"repro/internal/pfs"
	"repro/internal/retry"
)

// Errors injected when a rule carries no explicit Err.
var (
	ErrInjectedRead  = errors.New("faults: injected read error")
	ErrInjectedWrite = errors.New("faults: injected write error")
)

// Kind selects what a Rule does when it fires.
type Kind int

const (
	// TransientRead fails a read with a Transient-classified error.
	TransientRead Kind = iota
	// PermanentRead fails a read with an unclassified (Permanent) error.
	PermanentRead
	// TransientWrite fails a write with a Transient-classified error.
	TransientWrite
	// PermanentWrite fails a write with an unclassified error.
	PermanentWrite
	// TornWrite fails a write after persisting the first Keep bytes.
	TornWrite
	// BitFlip XORs one seeded-random bit of a successful read's buffer.
	BitFlip
	// LatencySpike adds Spike to a successful read's cost, pricing a
	// storage stall on the virtual clock without touching wall time.
	LatencySpike
)

func (k Kind) String() string {
	switch k {
	case TransientRead:
		return "transient-read"
	case PermanentRead:
		return "permanent-read"
	case TransientWrite:
		return "transient-write"
	case PermanentWrite:
		return "permanent-write"
	case TornWrite:
		return "torn-write"
	case BitFlip:
		return "bit-flip"
	case LatencySpike:
		return "latency-spike"
	default:
		return "unknown"
	}
}

// reads reports whether the kind applies to read operations.
func (k Kind) reads() bool {
	switch k {
	case TransientRead, PermanentRead, BitFlip, LatencySpike:
		return true
	}
	return false
}

// Rule is one line of a fault schedule.
type Rule struct {
	Kind Kind
	// Name restricts the rule to files whose store-relative name contains
	// this substring; empty matches every file.
	Name string
	// After skips that many matching operations before the rule may fire.
	After int
	// Count bounds how often the rule fires: 0 means once (the one-shot
	// default), -1 means unlimited, n > 0 means n times.
	Count int
	// Prob, when > 0, makes the rule probabilistic: each matching
	// operation past After fires with probability Prob, decided by the
	// injector's seeded stream. Count still bounds total firings.
	Prob float64
	// Err overrides the injected error for the error kinds.
	Err error
	// Keep is the byte prefix a TornWrite persists before failing.
	Keep int
	// Spike is the extra cost a LatencySpike charges.
	Spike pfs.Cost
}

// err returns the rule's error, classified per its kind.
func (r *Rule) err(isRead bool) error {
	e := r.Err
	if e == nil {
		if isRead {
			e = ErrInjectedRead
		} else {
			e = ErrInjectedWrite
		}
	}
	switch r.Kind {
	case TransientRead, TransientWrite:
		return retry.Mark(e, retry.Transient)
	}
	return e
}

// Stats counts what the injector actually did, for chaos-harness asserts.
type Stats struct {
	ReadOps, WriteOps                  int64 // operations observed
	ReadErrs, WriteErrs                int64 // errors injected
	TornWrites, BitFlips, LatencySpikes int64
}

// rule tracks a Rule's live countdown state.
type rule struct {
	Rule
	seen  int // matching ops observed so far
	fired int // times fired
}

// Injector implements pfs.FaultHook by evaluating a schedule of rules
// against the operation stream. Safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rng   uint64
	rules []*rule
	stats Stats
}

// New builds an injector with the given seed and schedule.
func New(seed uint64, schedule ...Rule) *Injector {
	in := &Injector{rng: seed}
	for _, r := range schedule {
		rc := r
		in.rules = append(in.rules, &rule{Rule: rc})
	}
	return in
}

var _ pfs.FaultHook = (*Injector)(nil)

// Stats returns a snapshot of the injector's counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// next draws from the seeded stream. Caller holds in.mu.
func (in *Injector) next() uint64 {
	in.rng += 0x9e3779b97f4a7c15
	x := in.rng
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fires advances r's counters for one matching op and reports whether the
// rule fires on it. Caller holds in.mu.
func (in *Injector) fires(r *rule) bool {
	budget := r.Count
	if budget == 0 {
		budget = 1 // the one-shot default
	}
	if budget > 0 && r.fired >= budget {
		return false
	}
	r.seen++
	if r.seen <= r.After {
		return false
	}
	if r.Prob > 0 {
		// 53-bit uniform in [0,1).
		u := float64(in.next()>>11) / (1 << 53)
		//lint:ignore floatcmp probability threshold on a deterministic uniform draw; any consistent cut is correct
		if u >= r.Prob {
			return false
		}
	}
	r.fired++
	return true
}

// match reports whether the rule applies to this op type and file.
func (r *rule) match(isRead bool, name string) bool {
	if r.Kind.reads() != isRead {
		return false
	}
	return r.Name == "" || strings.Contains(name, r.Name)
}

// BeforeRead implements pfs.FaultHook.
func (in *Injector) BeforeRead(name string, off int64, n int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.ReadOps++
	for _, r := range in.rules {
		if r.Kind != TransientRead && r.Kind != PermanentRead {
			continue
		}
		if !r.match(true, name) {
			continue
		}
		if in.fires(r) {
			in.stats.ReadErrs++
			return r.err(true)
		}
	}
	return nil
}

// AfterRead implements pfs.FaultHook: bit flips corrupt p in place, latency
// spikes return extra cost. Multiple firing rules compose.
func (in *Injector) AfterRead(name string, off int64, p []byte) pfs.Cost {
	in.mu.Lock()
	defer in.mu.Unlock()
	var extra pfs.Cost
	for _, r := range in.rules {
		if r.Kind != BitFlip && r.Kind != LatencySpike {
			continue
		}
		if !r.match(true, name) {
			continue
		}
		if !in.fires(r) {
			continue
		}
		switch r.Kind {
		case BitFlip:
			if len(p) > 0 {
				d := in.next()
				p[d%uint64(len(p))] ^= 1 << ((d >> 32) % 8)
				in.stats.BitFlips++
			}
		case LatencySpike:
			extra.Add(r.Spike)
			in.stats.LatencySpikes++
		}
	}
	return extra
}

// BeforeWrite implements pfs.FaultHook.
func (in *Injector) BeforeWrite(name string, off int64, n int) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.WriteOps++
	for _, r := range in.rules {
		if !r.match(false, name) {
			continue
		}
		if !in.fires(r) {
			continue
		}
		if r.Kind == TornWrite {
			in.stats.TornWrites++
			keep := r.Keep
			if keep > n {
				keep = n
			}
			err := r.Err
			if err == nil {
				err = ErrInjectedWrite
			}
			return keep, err
		}
		in.stats.WriteErrs++
		return 0, r.err(false)
	}
	return 0, nil
}

// FailReads arms a one-shot read fault on the store with the semantics of
// the old pfs.Store.FailReads: the (after+1)-th subsequent read operation
// fails once with err, unclassified so it propagates through retry. A nil
// err disarms fault injection entirely.
func FailReads(s *pfs.Store, after int, err error) {
	if err == nil {
		s.SetFaultHook(nil)
		return
	}
	s.SetFaultHook(New(0, Rule{Kind: PermanentRead, After: after, Err: err}))
}

// FailWrites is FailReads for write operations.
func FailWrites(s *pfs.Store, after int, err error) {
	if err == nil {
		s.SetFaultHook(nil)
		return
	}
	s.SetFaultHook(New(0, Rule{Kind: PermanentWrite, After: after, Err: err}))
}
