package faults

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/pfs"
	"repro/internal/retry"
)

var errInjected = errors.New("injected storage fault")

func newStore(t *testing.T) *pfs.Store {
	t.Helper()
	s, err := pfs.NewStore(t.TempDir(), pfs.NVMeModel())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func writeFile(t *testing.T, s *pfs.Store, name string, data []byte) {
	t.Helper()
	w, err := s.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// The three tests below pin the exact semantics of the old one-shot
// pfs.Store.FailReads/FailWrites hooks, now provided by this package.

func TestFailReadsFiresOnce(t *testing.T) {
	s := newStore(t)
	writeFile(t, s, "fr.dat", make([]byte, 16<<10))
	f, err := s.Open("fr.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)

	FailReads(s, 1, errInjected)
	if _, _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("first read should pass: %v", err)
	}
	if _, _, err := f.ReadAt(buf, 0); !errors.Is(err, errInjected) {
		t.Fatalf("second read error = %v", err)
	}
	// Fault consumed: subsequent reads succeed.
	if _, _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("post-fault read failed: %v", err)
	}
}

func TestFailWritesFiresImmediately(t *testing.T) {
	s := newStore(t)
	w, err := s.Create("fw.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	FailWrites(s, 0, errInjected)
	if _, err := w.Write([]byte("boom")); !errors.Is(err, errInjected) {
		t.Fatalf("write error = %v", err)
	}
	if _, err := w.Write([]byte("ok")); err != nil {
		t.Fatalf("post-fault write failed: %v", err)
	}
}

func TestDisarmFaults(t *testing.T) {
	s := newStore(t)
	FailReads(s, 0, errInjected)
	FailReads(s, 0, nil) // disarm
	writeFile(t, s, "dz.dat", make([]byte, 4096))
	f, err := s.Open("dz.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, _, err := f.ReadAt(make([]byte, 16), 0); err != nil {
		t.Fatalf("disarmed fault still fired: %v", err)
	}
}

func TestOneShotErrorsAreUnclassified(t *testing.T) {
	s := newStore(t)
	writeFile(t, s, "c.dat", make([]byte, 64))
	FailReads(s, 0, errInjected)
	f, err := s.Open("c.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, _, err = f.ReadAt(make([]byte, 16), 0)
	if retry.Classify(err) != retry.Permanent {
		t.Fatalf("one-shot fault should classify Permanent, got %v", retry.Classify(err))
	}
}

func TestTransientRuleIsMarked(t *testing.T) {
	s := newStore(t)
	writeFile(t, s, "t.dat", make([]byte, 64))
	s.SetFaultHook(New(1, Rule{Kind: TransientRead, Count: 2}))
	f, err := s.Open("t.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 16)
	for i := 0; i < 2; i++ {
		_, _, err := f.ReadAt(buf, 0)
		if !errors.Is(err, ErrInjectedRead) || !retry.IsTransient(err) {
			t.Fatalf("read %d: err = %v (class %v), want transient injected", i, err, retry.Classify(err))
		}
	}
	if _, _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("rule budget spent, read should pass: %v", err)
	}
}

func TestNameScopedRule(t *testing.T) {
	s := newStore(t)
	writeFile(t, s, "run1/a.dat", make([]byte, 64))
	writeFile(t, s, "run2/a.dat", make([]byte, 64))
	s.SetFaultHook(New(0, Rule{Kind: PermanentRead, Name: "run2/", Count: -1}))
	f1, err := s.Open("run1/a.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()
	f2, err := s.Open("run2/a.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if _, _, err := f1.ReadAt(make([]byte, 8), 0); err != nil {
		t.Fatalf("run1 read should be clean: %v", err)
	}
	if _, _, err := f2.ReadAt(make([]byte, 8), 0); !errors.Is(err, ErrInjectedRead) {
		t.Fatalf("run2 read should fail: %v", err)
	}
}

func TestTornWritePersistsPrefix(t *testing.T) {
	s := newStore(t)
	s.SetFaultHook(New(0, Rule{Kind: TornWrite, Keep: 3, Err: errInjected}))
	w, err := s.Create("torn.dat")
	if err != nil {
		t.Fatal(err)
	}
	n, werr := w.Write([]byte("hello world"))
	if !errors.Is(werr, errInjected) || n != 3 {
		t.Fatalf("torn write: n=%d err=%v, want n=3 with injected error", n, werr)
	}
	if _, err := w.Write([]byte("!")); err != nil {
		t.Fatalf("write after torn fault failed: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, _, err := s.ReadFileFull(context.Background(), "torn.dat", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte("hel!")) {
		t.Fatalf("torn file content %q, want %q", data, "hel!")
	}
}

func TestBitFlipCorruptsBuffer(t *testing.T) {
	s := newStore(t)
	orig := make([]byte, 4096)
	for i := range orig {
		orig[i] = byte(i)
	}
	writeFile(t, s, "bf.dat", orig)
	s.SetFaultHook(New(42, Rule{Kind: BitFlip}))
	f, err := s.Open("bf.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	if _, _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range buf {
		if buf[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bit flip changed %d bytes, want exactly 1", diff)
	}
	// One-shot: the next read is clean.
	if _, _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, orig) {
		t.Fatal("second read should return pristine bytes")
	}
}

func TestLatencySpikeChargesCost(t *testing.T) {
	s := newStore(t)
	writeFile(t, s, "ls.dat", make([]byte, 4096))
	spike := pfs.Cost{Ops: 50}
	s.SetFaultHook(New(0, Rule{Kind: LatencySpike, Spike: spike}))
	f, err := s.Open("ls.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s.EvictAll()
	_, c1, err := f.ReadAt(make([]byte, 4096), 0)
	if err != nil {
		t.Fatal(err)
	}
	s.EvictAll()
	s.SetFaultHook(nil)
	_, c2, err := f.ReadAt(make([]byte, 4096), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Ops-c2.Ops != spike.Ops {
		t.Fatalf("spike charged %d extra ops, want %d", c1.Ops-c2.Ops, spike.Ops)
	}
}

func TestProbabilisticScheduleDeterministic(t *testing.T) {
	run := func(seed uint64) Stats {
		s := newStore(t)
		writeFile(t, s, "p.dat", make([]byte, 64<<10))
		in := New(seed, Rule{Kind: TransientRead, Prob: 0.3, Count: -1})
		s.SetFaultHook(in)
		f, err := s.Open("p.dat")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		buf := make([]byte, 4096)
		for i := 0; i < 100; i++ {
			_, _, _ = f.ReadAt(buf, int64(i%16)*4096) // faults expected
		}
		return in.Stats()
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed produced different stats: %+v vs %+v", a, b)
	}
	if a.ReadErrs == 0 || a.ReadErrs == a.ReadOps {
		t.Fatalf("prob 0.3 over %d ops injected %d errors — schedule not probabilistic", a.ReadOps, a.ReadErrs)
	}
}

func TestAfterDelaysFiring(t *testing.T) {
	in := New(0, Rule{Kind: PermanentRead, After: 2})
	for i := 0; i < 2; i++ {
		if err := in.BeforeRead("x", 0, 8); err != nil {
			t.Fatalf("op %d should pass: %v", i, err)
		}
	}
	if err := in.BeforeRead("x", 0, 8); err == nil {
		t.Fatal("third op should fail")
	}
	if err := in.BeforeRead("x", 0, 8); err != nil {
		t.Fatalf("one-shot spent, fourth op should pass: %v", err)
	}
	st := in.Stats()
	if st.ReadOps != 4 || st.ReadErrs != 1 {
		t.Fatalf("stats = %+v, want 4 ops / 1 err", st)
	}
}
