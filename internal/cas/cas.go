// Package cas implements a content-addressed chunk store keyed by the
// ε-quantized leaf digest of the comparator's chained Murmur3 hash.
// Differential capture writes each checkpoint chunk through the store:
// chunks whose digest is already present are deduplicated against the
// stored representative, and only new content is appended to a shared
// pack file. Because every run of an experiment captures into the same
// store, the dedup is cross-run as well as cross-iteration — a replica
// that agrees with the baseline within ε writes almost nothing.
//
// On-disk layout under the pfs store, at the fixed "cas/" prefix:
//
//	cas/pack.dat   — append-only chunk bytes (the representatives)
//	cas/index.log  — append-only 32-byte records mapping digest → extent
//
// Both files only ever grow, which gives simple crash consistency: a pack
// record is made durable *before* its index record, so a torn pack write
// leaves an unreferenced hole that later appends simply skip past, and a
// torn index tail is detected by its CRC and ignored on replay. The index
// can never reference bytes that were not fully written.
//
// The digest is ε-lossy by construction: two chunks whose elements fall in
// the same quantization cells share a digest even when their bytes differ.
// Dedup therefore stores one representative per cell pattern; every reader
// of a deduplicated chunk sees values within ε of what that run computed.
// See DESIGN.md §13 for the soundness argument and its composition bounds.
package cas

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"sort"
	"sync"

	"repro/internal/murmur3"
	"repro/internal/pfs"
)

const (
	// PackName is the pfs path of the shared append-only chunk pack.
	PackName = "cas/pack.dat"
	// IndexName is the pfs path of the append-only digest index log.
	IndexName = "cas/index.log"

	// indexRecSize is the on-disk size of one index record:
	// digest (16) + pack offset (8) + length (4) + CRC32 (4).
	indexRecSize = murmur3.DigestSize + 8 + 4 + 4

	// slabFlush caps the coalescing arena used to batch consecutive new
	// chunks into single pack writes (the PR-3 arena idiom applied to the
	// scatter of dirty extents at capture time).
	slabFlush = 4 << 20
)

// ErrCorrupt reports CAS on-disk state that fails its integrity checks:
// an index record with a bad CRC, an extent past the end of the pack, or
// a scrubbed chunk whose bytes no longer hash to their digest.
var ErrCorrupt = errors.New("cas: corrupt store")

// Loc is the extent of one stored chunk inside the pack file.
type Loc struct {
	Off int64
	Len int32
}

// CaptureStats summarizes one differential put.
type CaptureStats struct {
	// Chunks is the number of chunks offered.
	Chunks int
	// DedupHits counts chunks whose digest was already stored (including
	// duplicates within the same put).
	DedupHits int
	// ChunksWritten counts chunks appended to the pack.
	ChunksWritten int
	// BytesWritten is the pack bytes appended (excludes index records).
	BytesWritten int64
	// BytesTotal is the logical size of the offered chunks.
	BytesTotal int64
}

// Add accumulates other into s.
func (s *CaptureStats) Add(other CaptureStats) {
	s.Chunks += other.Chunks
	s.DedupHits += other.DedupHits
	s.ChunksWritten += other.ChunksWritten
	s.BytesWritten += other.BytesWritten
	s.BytesTotal += other.BytesTotal
}

// Store is a content-addressed chunk store layered on a pfs.Store. It is
// safe for concurrent use; puts are serialized (the pack is append-only).
type Store struct {
	fs *pfs.Store

	mu       sync.Mutex
	index    map[murmur3.Digest]Loc
	packSize int64
	slab     []byte // grow-only coalescing arena, reused across puts
	recs     []byte // grow-only index-record buffer, reused across puts
}

// Open replays the index log against the current pack size and returns the
// store. A missing pack/index (fresh store) is not an error. The returned
// cost covers the replay read.
func Open(ctx context.Context, fsys *pfs.Store) (*Store, pfs.Cost, error) {
	s := &Store{fs: fsys, index: make(map[murmur3.Digest]Loc)}
	var cost pfs.Cost

	if f, err := fsys.Open(PackName); err == nil {
		s.packSize = f.Size()
		if cerr := f.Close(); cerr != nil {
			return nil, cost, cerr
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, cost, err
	}

	raw, c, err := fsys.ReadFileFull(ctx, IndexName, 4<<20)
	cost.Add(c)
	if errors.Is(err, fs.ErrNotExist) {
		return s, cost, nil
	}
	if err != nil {
		return nil, cost, err
	}
	// A torn tail record (crash mid-append) is expected and ignored; a CRC
	// failure in a complete record means bit rot and is fatal.
	for off := 0; off+indexRecSize <= len(raw); off += indexRecSize {
		rec := raw[off : off+indexRecSize]
		want := binary.LittleEndian.Uint32(rec[28:])
		if crc32.ChecksumIEEE(rec[:28]) != want {
			return nil, cost, fmt.Errorf("%w: index record at %d fails CRC", ErrCorrupt, off)
		}
		var d murmur3.Digest
		copy(d[:], rec[:murmur3.DigestSize])
		loc := Loc{
			Off: int64(binary.LittleEndian.Uint64(rec[16:])),
			Len: int32(binary.LittleEndian.Uint32(rec[24:])),
		}
		if loc.Len <= 0 || loc.Off < 0 || loc.Off+int64(loc.Len) > s.packSize {
			return nil, cost, fmt.Errorf("%w: index record at %d references [%d,+%d) beyond pack size %d",
				ErrCorrupt, off, loc.Off, loc.Len, s.packSize)
		}
		s.index[d] = loc
	}
	return s, cost, nil
}

// Len returns the number of distinct digests stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// PackSize returns the current pack file size in bytes (including any
// unreferenced holes left by torn writes).
func (s *Store) PackSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.packSize
}

// Lookup returns the stored extent for a digest.
func (s *Store) Lookup(d murmur3.Digest) (Loc, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	loc, ok := s.index[d]
	return loc, ok
}

// PutChunks stores the chunks of data at chunkSize granularity, where
// digests[i] is the ε-quantized leaf digest of chunk i (the last chunk may
// be short). Chunks whose digest is already present — from an earlier put,
// another run, or earlier in this same call — are deduplicated; new chunks
// are appended to the pack in coalesced batches and their index records
// made durable only after the pack write succeeds.
//
// The returned locations map each input chunk to its representative
// extent. On error the returned cost and stats cover the writes that did
// complete — partial but truthful, so bench deltas stay honest under fault
// injection — and every chunk whose bytes fully reached the pack remains
// usable through the in-memory index.
func (s *Store) PutChunks(data []byte, chunkSize int, digests []murmur3.Digest) ([]Loc, CaptureStats, pfs.Cost, error) {
	if chunkSize <= 0 {
		return nil, CaptureStats{}, pfs.Cost{}, fmt.Errorf("cas: chunk size %d must be positive", chunkSize)
	}
	nChunks := (len(data) + chunkSize - 1) / chunkSize
	if len(digests) != nChunks {
		return nil, CaptureStats{}, pfs.Cost{}, fmt.Errorf("cas: %d digests for %d chunks", len(digests), nChunks)
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	locs := make([]Loc, nChunks)
	stats := CaptureStats{Chunks: nChunks, BytesTotal: int64(len(data))}

	// Plan pass: resolve dedup hits against the index and assign pack
	// offsets to new chunks in input order (so consecutive new chunks are
	// adjacent in the pack and coalesce into one write).
	type pending struct {
		chunk int
		loc   Loc
	}
	var news []pending
	nextOff := s.packSize
	claimed := make(map[murmur3.Digest]int) // digest → index into news, for intra-put dups
	for i := 0; i < nChunks; i++ {
		lo := i * chunkSize
		hi := lo + chunkSize
		if hi > len(data) {
			hi = len(data)
		}
		n := int32(hi - lo)
		if loc, ok := s.index[digests[i]]; ok && loc.Len == n {
			locs[i] = loc
			stats.DedupHits++
			continue
		}
		if j, ok := claimed[digests[i]]; ok && news[j].loc.Len == n {
			locs[i] = news[j].loc
			stats.DedupHits++
			continue
		}
		loc := Loc{Off: nextOff, Len: n}
		claimed[digests[i]] = len(news)
		news = append(news, pending{chunk: i, loc: loc})
		locs[i] = loc
		nextOff += int64(n)
	}
	if len(news) == 0 {
		return locs, stats, pfs.Cost{}, nil
	}

	// Write pass: append the new chunks through the coalescing arena, then
	// index every chunk whose bytes fully persisted. The writer's offset
	// tracks actual durable bytes, so a torn write indexes only the prefix.
	w, err := s.fs.Append(PackName)
	if err != nil {
		return locs, stats, pfs.Cost{}, err
	}
	base := s.packSize
	written := int64(0)
	slab := s.slab[:0]
	var werr error
	flush := func() {
		if len(slab) == 0 || werr != nil {
			return
		}
		n, err := w.Write(slab)
		written += int64(n)
		werr = err
		slab = slab[:0]
	}
	for _, p := range news {
		lo := p.chunk * chunkSize
		slab = append(slab, data[lo:lo+int(p.loc.Len)]...)
		if len(slab) >= slabFlush {
			flush()
		}
		if werr != nil {
			break
		}
	}
	flush()
	s.slab = slab[:0]
	cost := w.Cost()
	if cerr := w.Close(); werr == nil {
		werr = cerr
	}
	s.packSize = base + written

	// Index only chunks that fully landed; a chunk torn at the boundary is
	// abandoned (its bytes become an unreferenced hole in the pack).
	recs := s.recs[:0]
	for _, p := range news {
		if p.loc.Off+int64(p.loc.Len) > s.packSize {
			break
		}
		s.index[digests[p.chunk]] = p.loc
		stats.ChunksWritten++
		stats.BytesWritten += int64(p.loc.Len)
		var rec [indexRecSize]byte
		copy(rec[:], digests[p.chunk][:])
		binary.LittleEndian.PutUint64(rec[16:], uint64(p.loc.Off))
		binary.LittleEndian.PutUint32(rec[24:], uint32(p.loc.Len))
		binary.LittleEndian.PutUint32(rec[28:], crc32.ChecksumIEEE(rec[:28]))
		recs = append(recs, rec[:]...)
	}
	s.recs = recs[:0]
	if len(recs) > 0 {
		iw, err := s.fs.Append(IndexName)
		if err != nil {
			if werr == nil {
				werr = err
			}
		} else {
			_, err = iw.Write(recs)
			cost.Add(iw.Cost())
			if cerr := iw.Close(); err == nil {
				err = cerr
			}
			if werr == nil {
				werr = err
			}
		}
	}
	return locs, stats, cost, werr
}

// Pack opens the pack file for reading. The caller owns the handle.
func (s *Store) Pack() (*pfs.File, error) {
	return s.fs.Open(PackName)
}

// Scrub re-reads every indexed extent and re-hashes it with the provided
// hash function (injected because digests are ε-quantized: the store does
// not know ε or the element type). It returns the number of chunks
// verified and wraps ErrCorrupt on the first mismatch — proof that no
// index record ever points at torn or rotted bytes.
func (s *Store) Scrub(ctx context.Context, hash func(chunk []byte) (murmur3.Digest, error)) (int, error) {
	s.mu.Lock()
	type entry struct {
		d   murmur3.Digest
		loc Loc
	}
	entries := make([]entry, 0, len(s.index))
	for d, loc := range s.index {
		entries = append(entries, entry{d, loc})
	}
	s.mu.Unlock()
	// Deterministic scan order (and sequential pack I/O).
	sort.Slice(entries, func(i, j int) bool { return entries[i].loc.Off < entries[j].loc.Off })

	f, err := s.fs.Open(PackName)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var buf []byte
	for i, e := range entries {
		if err := ctx.Err(); err != nil {
			return i, err
		}
		if int(e.loc.Len) > len(buf) {
			buf = make([]byte, e.loc.Len)
		}
		b := buf[:e.loc.Len]
		if _, _, err := f.ReadAt(b, e.loc.Off); err != nil {
			return i, fmt.Errorf("cas: scrub read [%d,+%d): %w", e.loc.Off, e.loc.Len, err)
		}
		got, err := hash(b)
		if err != nil {
			return i, err
		}
		if got != e.d {
			return i, fmt.Errorf("%w: chunk at [%d,+%d) hashes to %x, index says %x",
				ErrCorrupt, e.loc.Off, e.loc.Len, got, e.d)
		}
	}
	return len(entries), nil
}
