// Manifest format: the per-checkpoint leaf manifest a differential
// capture leaves next to where the full .ckpt container would have been.
// It records, for every field, the ε-quantized digest and pack extent of
// each chunk — everything the comparator needs to reconstruct the field
// (gather extents from the pack) or to prune it (digest equality), without
// the checkpoint bytes ever being rewritten.
package cas

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/errbound"
	"repro/internal/murmur3"
	"repro/internal/pfs"
)

// manifestMagic identifies the serialized manifest format ("RCMF" =
// repro CAS manifest format).
const manifestMagic = "RCMF"

const (
	manifestVersion = 1
	maxManFields    = 1 << 16
	maxManChunks    = 1 << 30
	manEntrySize    = murmur3.DigestSize + 8 + 4 // digest + off + len
)

// FieldManifest describes one field of a differentially captured
// checkpoint: Digests[i] and Locs[i] are the leaf digest and pack extent
// of chunk i.
type FieldManifest struct {
	Name    string
	DType   errbound.DType
	Count   int64 // element count
	Digests []murmur3.Digest
	Locs    []Loc
}

// Bytes returns the logical field size.
func (f *FieldManifest) Bytes() int64 { return f.Count * int64(f.DType.Size()) }

// Manifest is the leaf manifest of one differentially captured checkpoint.
type Manifest struct {
	// Epsilon and ChunkSize pin the digest parameters: digests from
	// manifests with different ε or chunking are never comparable.
	Epsilon   float64
	ChunkSize int
	Fields    []FieldManifest
}

// ManifestName returns the manifest path for a checkpoint name (the name
// ckpt.Meta.Name would give the full container), e.g.
// "runA/iter0004.rank000.ckpt" → "runA/iter0004.rank000.ckpt.cman".
func ManifestName(checkpointName string) string { return checkpointName + ".cman" }

// TotalBytes returns the logical checkpoint size the manifest describes.
func (m *Manifest) TotalBytes() int64 {
	var n int64
	for i := range m.Fields {
		n += m.Fields[i].Bytes()
	}
	return n
}

// FieldIndex returns the index of the named field, or -1.
func (m *Manifest) FieldIndex(name string) int {
	for i := range m.Fields {
		if m.Fields[i].Name == name {
			return i
		}
	}
	return -1
}

// SameSchema reports whether two manifests describe the same field layout
// and digest parameters (name, dtype, count, ε, chunk size) — the
// precondition for comparing or differencing their digests.
func SameSchema(a, b *Manifest) bool {
	//lint:ignore floatcmp,epsflow digest parameters must match bitwise, not approximately
	if a.Epsilon != b.Epsilon || a.ChunkSize != b.ChunkSize || len(a.Fields) != len(b.Fields) {
		return false
	}
	for i := range a.Fields {
		fa, fb := &a.Fields[i], &b.Fields[i]
		if fa.Name != fb.Name || fa.DType != fb.DType || fa.Count != fb.Count {
			return false
		}
	}
	return true
}

// encode serializes the manifest: header, per-field sections, CRC tail.
func (m *Manifest) encode() ([]byte, error) {
	if len(m.Fields) == 0 || len(m.Fields) > maxManFields {
		return nil, fmt.Errorf("cas: manifest has %d fields (want 1..%d)", len(m.Fields), maxManFields)
	}
	size := 4 + 2 + 2 + 8 + 4 + 4
	for i := range m.Fields {
		f := &m.Fields[i]
		if len(f.Digests) != len(f.Locs) {
			return nil, fmt.Errorf("cas: field %q has %d digests but %d locs", f.Name, len(f.Digests), len(f.Locs))
		}
		if len(f.Digests) > maxManChunks {
			return nil, fmt.Errorf("cas: field %q has %d chunks (max %d)", f.Name, len(f.Digests), maxManChunks)
		}
		size += 2 + len(f.Name) + 1 + 8 + 4 + len(f.Digests)*manEntrySize
	}
	size += 4 // CRC
	buf := make([]byte, 0, size)
	buf = append(buf, manifestMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, manifestVersion)
	buf = binary.LittleEndian.AppendUint16(buf, 0) // reserved
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Epsilon))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.ChunkSize))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Fields)))
	for i := range m.Fields {
		f := &m.Fields[i]
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(f.Name)))
		buf = append(buf, f.Name...)
		buf = append(buf, byte(f.DType))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Count))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Digests)))
		for j := range f.Digests {
			buf = append(buf, f.Digests[j][:]...)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Locs[j].Off))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Locs[j].Len))
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// decode parses a serialized manifest, verifying magic and CRC.
func decode(raw []byte) (*Manifest, error) {
	if len(raw) < 4+2+2+8+4+4+4 || string(raw[:4]) != manifestMagic {
		return nil, fmt.Errorf("%w: not a CAS manifest", ErrCorrupt)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: manifest CRC mismatch", ErrCorrupt)
	}
	off := 4
	ver := binary.LittleEndian.Uint16(body[off:])
	if ver != manifestVersion {
		return nil, fmt.Errorf("cas: unsupported manifest version %d", ver)
	}
	off += 4 // version + reserved
	m := &Manifest{
		Epsilon:   math.Float64frombits(binary.LittleEndian.Uint64(body[off:])),
		ChunkSize: int(binary.LittleEndian.Uint32(body[off+8:])),
	}
	nFields := int(binary.LittleEndian.Uint32(body[off+12:]))
	off += 16
	if nFields <= 0 || nFields > maxManFields {
		return nil, fmt.Errorf("%w: manifest declares %d fields", ErrCorrupt, nFields)
	}
	m.Fields = make([]FieldManifest, nFields)
	for i := 0; i < nFields; i++ {
		if off+2 > len(body) {
			return nil, fmt.Errorf("%w: truncated manifest field header", ErrCorrupt)
		}
		nameLen := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+nameLen+1+8+4 > len(body) {
			return nil, fmt.Errorf("%w: truncated manifest field header", ErrCorrupt)
		}
		f := &m.Fields[i]
		f.Name = string(body[off : off+nameLen])
		off += nameLen
		f.DType = errbound.DType(body[off])
		f.Count = int64(binary.LittleEndian.Uint64(body[off+1:]))
		nChunks := int(binary.LittleEndian.Uint32(body[off+9:]))
		off += 13
		if nChunks < 0 || nChunks > maxManChunks || off+nChunks*manEntrySize > len(body) {
			return nil, fmt.Errorf("%w: manifest field %q declares %d chunks", ErrCorrupt, f.Name, nChunks)
		}
		f.Digests = make([]murmur3.Digest, nChunks)
		f.Locs = make([]Loc, nChunks)
		for j := 0; j < nChunks; j++ {
			copy(f.Digests[j][:], body[off:])
			f.Locs[j] = Loc{
				Off: int64(binary.LittleEndian.Uint64(body[off+16:])),
				Len: int32(binary.LittleEndian.Uint32(body[off+24:])),
			}
			off += manEntrySize
		}
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing manifest bytes", ErrCorrupt, len(body)-off)
	}
	return m, nil
}

// SaveManifest writes the manifest for a checkpoint name to the pfs store.
func SaveManifest(fsys *pfs.Store, checkpointName string, m *Manifest) (cost pfs.Cost, err error) {
	raw, err := m.encode()
	if err != nil {
		return pfs.Cost{}, err
	}
	w, err := fsys.Create(ManifestName(checkpointName))
	if err != nil {
		return pfs.Cost{}, err
	}
	// Partial cost on every path, mirroring ckpt.WriteCheckpoint.
	defer func() { cost = w.Cost() }()
	if _, werr := w.Write(raw); werr != nil {
		_ = w.Close()
		return cost, werr
	}
	return cost, w.Close()
}

// LoadManifest reads and verifies the manifest for a checkpoint name.
func LoadManifest(ctx context.Context, fsys *pfs.Store, checkpointName string) (*Manifest, pfs.Cost, error) {
	raw, cost, err := fsys.ReadFileFull(ctx, ManifestName(checkpointName), 4<<20)
	if err != nil {
		return nil, cost, err
	}
	m, err := decode(raw)
	return m, cost, err
}
