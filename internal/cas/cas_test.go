package cas

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/errbound"
	"repro/internal/faults"
	"repro/internal/murmur3"
	"repro/internal/pfs"
	"repro/internal/synth"
)

func newStore(t *testing.T) (*pfs.Store, *Store) {
	t.Helper()
	fsys, err := pfs.NewStore(t.TempDir(), pfs.NVMeModel())
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := Open(context.Background(), fsys)
	if err != nil {
		t.Fatal(err)
	}
	return fsys, s
}

func hashChunks(t *testing.T, h *errbound.Hasher, data []byte, chunkSize int) []murmur3.Digest {
	t.Helper()
	n := (len(data) + chunkSize - 1) / chunkSize
	out := make([]murmur3.Digest, n)
	for i := 0; i < n; i++ {
		lo, hi := i*chunkSize, (i+1)*chunkSize
		if hi > len(data) {
			hi = len(data)
		}
		d, err := h.HashChunk(data[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		out[i] = d
	}
	return out
}

func TestPutDedupAndRoundTrip(t *testing.T) {
	fsys, s := newStore(t)
	h, err := errbound.NewHasher(errbound.Float32, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 4 << 10
	data := synth.FieldF32(8192, 1) // 32 KiB + change → 8 chunks
	digests := hashChunks(t, h, data, chunk)

	locs, stats, cost, err := s.PutChunks(data, chunk, digests)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DedupHits != 0 || stats.ChunksWritten != len(digests) {
		t.Fatalf("first put: stats %+v", stats)
	}
	if cost.Bytes == 0 {
		t.Fatal("first put reported zero write bytes")
	}

	// Second put of the same content: all dedup hits, zero pack growth.
	before := s.PackSize()
	locs2, stats2, _, err := s.PutChunks(data, chunk, digests)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.DedupHits != len(digests) || stats2.ChunksWritten != 0 {
		t.Fatalf("second put: stats %+v", stats2)
	}
	if s.PackSize() != before {
		t.Fatalf("pack grew on pure-dedup put: %d -> %d", before, s.PackSize())
	}
	for i := range locs {
		if locs[i] != locs2[i] {
			t.Fatalf("chunk %d: locs differ %+v vs %+v", i, locs[i], locs2[i])
		}
	}

	// Every chunk reads back bit-identical from its extent.
	f, err := s.Pack()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i, loc := range locs {
		buf := make([]byte, loc.Len)
		if _, _, err := f.ReadAt(buf, loc.Off); err != nil {
			t.Fatal(err)
		}
		lo := i * chunk
		if !bytes.Equal(buf, data[lo:lo+int(loc.Len)]) {
			t.Fatalf("chunk %d bytes differ after round trip", i)
		}
	}

	// Reopen: index replay reproduces the same state.
	s2, _, err := Open(context.Background(), fsys)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s.Len() || s2.PackSize() != s.PackSize() {
		t.Fatalf("replay mismatch: %d/%d vs %d/%d", s2.Len(), s2.PackSize(), s.Len(), s.PackSize())
	}
	for i, d := range digests {
		loc, ok := s2.Lookup(d)
		if !ok || loc != locs[i] {
			t.Fatalf("replayed index lost chunk %d", i)
		}
	}
	if n, err := s2.Scrub(context.Background(), h.HashChunk); err != nil || n != len(digests) {
		t.Fatalf("scrub: n=%d err=%v", n, err)
	}
}

func TestPutIntraCallDedup(t *testing.T) {
	_, s := newStore(t)
	h, _ := errbound.NewHasher(errbound.Float32, 1e-5)
	const chunk = 4 << 10
	half := synth.FieldF32(2048, 7) // two chunks
	data := append(append([]byte{}, half...), half...)
	digests := hashChunks(t, h, data, chunk)

	_, stats, _, err := s.PutChunks(data, chunk, digests)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ChunksWritten != 2 || stats.DedupHits != 2 {
		t.Fatalf("intra-call dedup: stats %+v", stats)
	}
}

func TestTornPackWriteNeverIndexed(t *testing.T) {
	fsys, s := newStore(t)
	h, _ := errbound.NewHasher(errbound.Float32, 1e-5)
	const chunk = 4 << 10
	data := synth.FieldF32(8192, 3)
	digests := hashChunks(t, h, data, chunk)

	// Tear the very first pack write mid-chunk: half a chunk persists.
	inj := faults.New(1, faults.Rule{
		Kind: faults.TornWrite, Name: "cas/pack", Count: 1, Keep: chunk / 2,
	})
	fsys.SetFaultHook(inj)
	_, stats, cost, err := s.PutChunks(data, chunk, digests)
	fsys.SetFaultHook(nil)
	if err == nil {
		t.Fatal("torn pack write did not surface as an error")
	}
	if stats.ChunksWritten != 0 {
		t.Fatalf("torn write indexed %d chunks", stats.ChunksWritten)
	}
	if cost.Bytes != int64(chunk/2) {
		t.Fatalf("partial cost %d bytes, want %d (truthful accounting)", cost.Bytes, chunk/2)
	}

	// The torn bytes are an unreferenced hole: no digest resolves to them,
	// and a retry appends past them and scrubs clean.
	for _, d := range digests {
		if _, ok := s.Lookup(d); ok {
			t.Fatal("torn chunk became a dedup hit")
		}
	}
	locs, _, _, err := s.PutChunks(data, chunk, digests)
	if err != nil {
		t.Fatal(err)
	}
	if locs[0].Off != int64(chunk/2) {
		t.Fatalf("retry did not append past the hole: off %d", locs[0].Off)
	}
	if _, err := s.Scrub(context.Background(), h.HashChunk); err != nil {
		t.Fatalf("scrub after torn write: %v", err)
	}
	s2, _, err := Open(context.Background(), fsys)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s2.Scrub(context.Background(), h.HashChunk); err != nil || n != len(digests) {
		t.Fatalf("replayed scrub: n=%d err=%v", n, err)
	}
}

func TestCorruptIndexDetected(t *testing.T) {
	fsys, s := newStore(t)
	h, _ := errbound.NewHasher(errbound.Float32, 1e-5)
	const chunk = 4 << 10
	data := synth.FieldF32(4096, 5)
	if _, _, _, err := s.PutChunks(data, chunk, hashChunks(t, h, data, chunk)); err != nil {
		t.Fatal(err)
	}

	// Flip a bit in a committed index record on the next read: replay must
	// refuse the store rather than trust a rotted extent.
	inj := faults.New(2, faults.Rule{Kind: faults.BitFlip, Name: "cas/index", Count: 1})
	fsys.SetFaultHook(inj)
	fsys.EvictAll()
	_, _, err := Open(context.Background(), fsys)
	fsys.SetFaultHook(nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt index replay: err=%v, want ErrCorrupt", err)
	}
}

func TestScrubDetectsPackRot(t *testing.T) {
	fsys, s := newStore(t)
	h, _ := errbound.NewHasher(errbound.Float32, 1e-5)
	const chunk = 4 << 10
	data := synth.FieldF32(4096, 9)
	if _, _, _, err := s.PutChunks(data, chunk, hashChunks(t, h, data, chunk)); err != nil {
		t.Fatal(err)
	}
	inj := faults.New(3, faults.Rule{Kind: faults.BitFlip, Name: "cas/pack", Count: 1})
	fsys.SetFaultHook(inj)
	fsys.EvictAll()
	_, err := s.Scrub(context.Background(), h.HashChunk)
	fsys.SetFaultHook(nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scrub on flipped pack byte: err=%v, want ErrCorrupt", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	fsys, s := newStore(t)
	h, _ := errbound.NewHasher(errbound.Float64, 1e-7)
	const chunk = 8 << 10
	data := synth.FieldF32(8192, 11) // bytes reinterpreted as f64 is fine for format tests
	digests := hashChunks(t, h, data, chunk)
	locs, _, _, err := s.PutChunks(data, chunk, digests)
	if err != nil {
		t.Fatal(err)
	}
	m := &Manifest{
		Epsilon:   1e-7,
		ChunkSize: chunk,
		Fields: []FieldManifest{{
			Name: "phi", DType: errbound.Float64, Count: int64(len(data) / 8),
			Digests: digests, Locs: locs,
		}},
	}
	if _, err := SaveManifest(fsys, "run/iter0000.rank000.ckpt", m); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadManifest(context.Background(), fsys, "run/iter0000.rank000.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if !SameSchema(m, got) {
		t.Fatal("round-tripped manifest schema differs")
	}
	for i := range digests {
		if got.Fields[0].Digests[i] != digests[i] || got.Fields[0].Locs[i] != locs[i] {
			t.Fatalf("entry %d differs after round trip", i)
		}
	}
	if got.TotalBytes() != m.TotalBytes() {
		t.Fatalf("total bytes %d vs %d", got.TotalBytes(), m.TotalBytes())
	}

	// Corrupt one byte: CRC must reject.
	inj := faults.New(4, faults.Rule{Kind: faults.BitFlip, Name: ".cman", Count: 1})
	fsys.SetFaultHook(inj)
	fsys.EvictAll()
	_, _, err = LoadManifest(context.Background(), fsys, "run/iter0000.rank000.ckpt")
	fsys.SetFaultHook(nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt manifest load: err=%v, want ErrCorrupt", err)
	}
}
