package safeclose

import (
	"errors"
	"testing"
)

type fakeCloser struct {
	err    error
	closed bool
}

func (f *fakeCloser) Close() error {
	f.closed = true
	return f.err
}

func TestDoRecordsCloseError(t *testing.T) {
	closeErr := errors.New("close failed")
	c := &fakeCloser{err: closeErr}
	var err error
	Do(c, &err)
	if !c.closed {
		t.Fatal("Close not called")
	}
	if !errors.Is(err, closeErr) {
		t.Fatalf("err: got %v, want %v", err, closeErr)
	}
}

func TestDoKeepsEarlierError(t *testing.T) {
	first := errors.New("write failed")
	c := &fakeCloser{err: errors.New("close failed")}
	err := first
	Do(c, &err)
	if !errors.Is(err, first) {
		t.Fatalf("earlier error must win, got %v", err)
	}
	if !c.closed {
		t.Fatal("Close must still be called")
	}
}

func TestDoCleanClose(t *testing.T) {
	c := &fakeCloser{}
	var err error
	Do(c, &err)
	if err != nil {
		t.Fatalf("clean close must leave err nil, got %v", err)
	}
}
