// Package safeclose is the sanctioned pattern for closing writers on
// durability-critical paths. A dropped Close error is the worst failure
// mode this codebase has: a checkpoint that hashed clean but never
// became durable passes every comparison and still loses the run. The
// errclose lint rule flags `_ = w.Close()` and bare `defer w.Close()`;
// this package is both the manual fix and the rewrite target of
// `reprovet -fix`.
package safeclose

import "io"

// Do closes c and records the error in *errp unless an earlier error is
// already there — the first failure on a write path is the diagnostic
// one; a later Close failure is usually its consequence.
//
// The intended use is with a named error result:
//
//	func write(path string) (err error) {
//		f, err := os.Create(path)
//		if err != nil {
//			return err
//		}
//		defer safeclose.Do(f, &err)
//		...
//	}
func Do(c io.Closer, errp *error) {
	if err := c.Close(); err != nil && *errp == nil {
		*errp = err
	}
}
