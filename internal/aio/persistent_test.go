package aio

import (
	"context"
	"bytes"
	"sync"
	"testing"

	"repro/internal/pfs"
)

// newPairFiles creates one store holding two files with distinct
// deterministic contents (cold cache).
func newPairFiles(t *testing.T, size int) (*pfs.Store, *pfs.File, *pfs.File, []byte, []byte) {
	t.Helper()
	s, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, seed byte) []byte {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i)*3 + seed
		}
		w, err := s.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		s.Evict(name)
		return data
	}
	dataA := write("runA.bin", 1)
	dataB := write("runB.bin", 2)
	fA, err := s.Open("runA.bin")
	if err != nil {
		t.Fatal(err)
	}
	fB, err := s.Open("runB.bin")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fA.Close(); fB.Close() })
	return s, fA, fB, dataA, dataB
}

// TestRingSubmitCloseRace is the regression test for the Submit/Close
// TOCTOU race: Submit used to drop r.mu between the closed check and the
// channel send, so a concurrent Close could close sq mid-send and panic.
// Run under -race this also proves the submit/close handshake is clean.
func TestRingSubmitCloseRace(t *testing.T) {
	_, f, data := newFile(t, 1<<20)
	for iter := 0; iter < 40; iter++ {
		r := NewRing(4, 2)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				reqs := scatteredReqs(data, 16, 4096, seed)
				for {
					if _, err := r.Submit(context.Background(), f, reqs); err != nil {
						return // ring closed: the only legal failure
					}
				}
			}(int64(iter*4 + g))
		}
		r.Close()
		wg.Wait()
	}
}

func TestUringRingPersistsAcrossBatches(t *testing.T) {
	_, f, data := newFile(t, 1<<20)
	u := NewUring(16, 2)
	defer u.Close()
	for i := 0; i < 3; i++ {
		reqs := scatteredReqs(data, 32, 4096, int64(i))
		if _, _, err := u.ReadBatch(context.Background(), f, reqs); err != nil {
			t.Fatal(err)
		}
		verifyFilled(t, data, reqs)
	}
	u.mu.Lock()
	ring := u.ring
	u.mu.Unlock()
	if ring == nil {
		t.Fatal("persistent ring not retained after batches")
	}
	// Close releases the ring; the next batch lazily restarts it.
	u.Close()
	reqs := scatteredReqs(data, 32, 4096, 99)
	if _, _, err := u.ReadBatch(context.Background(), f, reqs); err != nil {
		t.Fatalf("batch after Close: %v", err)
	}
	verifyFilled(t, data, reqs)
	u.Close()
}

func TestReadBatchPairFillsBothRuns(t *testing.T) {
	_, fA, fB, dataA, dataB := newPairFiles(t, 1<<20)
	u := NewUring(64, 4)
	defer u.Close()
	reqsA := distinctReqs(48)
	reqsB := distinctReqs(48)
	cost, elapsed, err := u.ReadBatchPair(context.Background(), fA, fB, reqsA, reqsB)
	if err != nil {
		t.Fatal(err)
	}
	verifyFilled(t, dataA, reqsA)
	verifyFilled(t, dataB, reqsB)
	if cost.Ops != 96 {
		t.Errorf("combined cold ops = %d, want 96", cost.Ops)
	}
	if elapsed <= 0 {
		t.Errorf("pair elapsed = %v", elapsed)
	}
}

// TestPairCheaperThanSerialBatches checks the tentpole pricing claim: one
// overlapped A+B submission into the shared ring is strictly cheaper on
// the virtual clock than the Legacy engine's two serial batches, because
// the pair forms one deep queue (fewer latency rounds at equal queue
// depth) and pays the final-completion latency once.
func TestPairCheaperThanSerialBatches(t *testing.T) {
	store, fA, fB, dataA, dataB := newPairFiles(t, 1<<20)
	mkReqs := func() ([]ReadReq, []ReadReq) {
		return distinctReqs(64), distinctReqs(64)
	}

	reqsA, reqsB := mkReqs()
	legacy := Legacy{QueueDepth: 64, Workers: 4}
	costA, tA, err := legacy.ReadBatch(context.Background(), fA, reqsA)
	if err != nil {
		t.Fatal(err)
	}
	costB, tB, err := legacy.ReadBatch(context.Background(), fB, reqsB)
	if err != nil {
		t.Fatal(err)
	}
	verifyFilled(t, dataA, reqsA)
	verifyFilled(t, dataB, reqsB)
	serial := tA + tB

	store.EvictAll()
	reqsA, reqsB = mkReqs()
	u := NewUring(64, 4)
	defer u.Close()
	pairCost, pair, err := u.ReadBatchPair(context.Background(), fA, fB, reqsA, reqsB)
	if err != nil {
		t.Fatal(err)
	}
	if want := costA.Ops + costB.Ops; pairCost.Ops != want {
		t.Errorf("pair ops = %d, serial ops = %d", pairCost.Ops, want)
	}
	if pair >= serial {
		t.Errorf("pair virtual %v not cheaper than serial %v", pair, serial)
	}
}

func TestDefaultSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() is not a singleton")
	}
	_, f, data := newFile(t, 1<<20)
	reqs := scatteredReqs(data, 16, 4096, 3)
	if _, _, err := Default().ReadBatch(context.Background(), f, reqs); err != nil {
		t.Fatal(err)
	}
	verifyFilled(t, data, reqs)
}

// distinctReqs builds n non-overlapping page-distinct requests, so cold
// and cached op counts are independent of worker completion order.
func distinctReqs(n int) []ReadReq {
	reqs := make([]ReadReq, n)
	for i := range reqs {
		reqs[i] = ReadReq{Off: int64(i) * 8192, Len: 4096, Buf: make([]byte, 4096), Tag: i}
	}
	return reqs
}

func TestLegacyMatchesUringResults(t *testing.T) {
	store, f, data := newFile(t, 1<<20)
	reqsL := distinctReqs(40)
	legacy := Legacy{}
	costL, _, err := legacy.ReadBatch(context.Background(), f, reqsL)
	if err != nil {
		t.Fatal(err)
	}
	verifyFilled(t, data, reqsL)

	store.EvictAll()
	u := NewUring(64, 4)
	defer u.Close()
	reqsU := distinctReqs(40)
	costU, _, err := u.ReadBatch(context.Background(), f, reqsU)
	if err != nil {
		t.Fatal(err)
	}
	verifyFilled(t, data, reqsU)
	for i := range reqsL {
		if !bytes.Equal(reqsL[i].Buf, reqsU[i].Buf) {
			t.Fatalf("request %d: legacy and uring bytes differ", i)
		}
	}
	if costL != costU {
		t.Errorf("cold costs differ: legacy %+v, uring %+v", costL, costU)
	}
}

// TestCoalescingPairEquivalence checks the pair path of the coalescing
// wrapper: identical bytes delivered, strictly fewer PFS ops than the
// uncoalesced pair on a clustered request pattern.
func TestCoalescingPairEquivalence(t *testing.T) {
	store, fA, fB, dataA, dataB := newPairFiles(t, 1<<20)
	clustered := func(data []byte) []ReadReq {
		var reqs []ReadReq
		for cluster := 0; cluster < 8; cluster++ {
			base := int64(cluster) * 96 << 10
			for j := 0; j < 4; j++ {
				off := base + int64(j)*4096
				reqs = append(reqs, ReadReq{Off: off, Len: 4096, Buf: make([]byte, 4096), Tag: len(reqs)})
			}
		}
		return reqs
	}

	u := NewUring(64, 4)
	defer u.Close()
	plainA, plainB := clustered(dataA), clustered(dataB)
	plainCost, _, err := u.ReadBatchPair(context.Background(), fA, fB, plainA, plainB)
	if err != nil {
		t.Fatal(err)
	}

	store.EvictAll()
	co := NewCoalescing(u, 16<<10)
	coA, coB := clustered(dataA), clustered(dataB)
	coCost, _, err := co.ReadBatchPair(context.Background(), fA, fB, coA, coB)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plainA {
		if !bytes.Equal(plainA[i].Buf, coA[i].Buf) || !bytes.Equal(plainB[i].Buf, coB[i].Buf) {
			t.Fatalf("request %d: coalesced pair bytes differ from plain", i)
		}
	}
	verifyFilled(t, dataA, coA)
	verifyFilled(t, dataB, coB)
	if coCost.Ops >= plainCost.Ops {
		t.Errorf("coalesced pair ops = %d, plain = %d", coCost.Ops, plainCost.Ops)
	}
	if coCost.Ops != 16 {
		t.Errorf("coalesced pair ops = %d, want 16 (8 clusters per run)", coCost.Ops)
	}
}

// TestCoalescingPairSerialInner drives the pair path over an inner backend
// without pair support (Mmap) to cover the serial fallback.
func TestCoalescingPairSerialInner(t *testing.T) {
	_, fA, fB, dataA, dataB := newPairFiles(t, 1<<20)
	co := NewCoalescing(Mmap{}, 16<<10)
	reqsA := scatteredReqs(dataA, 24, 4096, 31)
	reqsB := scatteredReqs(dataB, 24, 4096, 32)
	if _, _, err := co.ReadBatchPair(context.Background(), fA, fB, reqsA, reqsB); err != nil {
		t.Fatal(err)
	}
	verifyFilled(t, dataA, reqsA)
	verifyFilled(t, dataB, reqsB)
}
