// Package aio provides the asynchronous scattered-read engine of the
// comparator (paper §2.5.2). Two backends implement the same interface:
//
//   - Uring: an io_uring-style engine with a submission queue and a
//     completion queue shared with a pool of "kernel" workers. Many reads
//     are enqueued with a single submit, latencies overlap up to the queue
//     depth, and completions are reaped asynchronously.
//   - Mmap: a memory-map-style backend in which every first touch of a
//     page triggers a synchronous page fault: faults serialize and each
//     pays the full device latency. This is the slower baseline of Fig. 9.
//
// Both backends perform real reads through the pfs store (so data paths
// are exercised end to end) and price the batch on the virtual clock using
// the store's cost model.
package aio

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/pfs"
)

// ReadReq is one scattered read: fill Buf[:Len] from Off. Tag is an opaque
// caller identifier (the comparator uses the chunk index).
type ReadReq struct {
	Off int64
	Len int
	Buf []byte
	Tag int
}

// Backend reads a batch of scattered requests from a file. It returns the
// aggregate storage cost and the virtual elapsed time of the whole batch.
// Implementations must fill every request's buffer before returning.
type Backend interface {
	// Name identifies the backend in reports ("io_uring", "mmap").
	Name() string
	// ReadBatch executes all requests against f.
	ReadBatch(f *pfs.File, reqs []ReadReq) (pfs.Cost, time.Duration, error)
}

// Uring is the io_uring-style backend.
type Uring struct {
	// QueueDepth is the maximum number of in-flight operations (ring size).
	QueueDepth int
	// Workers is the number of kernel-side worker goroutines.
	Workers int
}

var _ Backend = (*Uring)(nil)

// NewUring returns a Uring backend with sensible defaults applied
// (queue depth 64, workers 4).
func NewUring(queueDepth, workers int) *Uring {
	if queueDepth < 1 {
		queueDepth = 64
	}
	if workers < 1 {
		workers = 4
	}
	return &Uring{QueueDepth: queueDepth, Workers: workers}
}

// Name implements Backend.
func (u *Uring) Name() string { return "io_uring" }

// ReadBatch submits all requests through a ring and reaps completions.
func (u *Uring) ReadBatch(f *pfs.File, reqs []ReadReq) (pfs.Cost, time.Duration, error) {
	if len(reqs) == 0 {
		return pfs.Cost{}, 0, nil
	}
	ring := NewRing(u.QueueDepth, u.Workers)
	defer ring.Close()

	if err := ring.Submit(f, reqs); err != nil {
		return pfs.Cost{}, 0, err
	}
	comps, err := ring.Reap(len(reqs))
	var cost pfs.Cost
	for i := range comps {
		cost.Add(comps[i].Cost)
	}
	elapsed := priceOverlapped(f, cost, u.QueueDepth, batchIsScattered(reqs))
	if err != nil {
		return cost, elapsed, err
	}
	return cost, elapsed, nil
}

// scatteredMaxReq is the request size up to which a deep queue of reads
// stripes across a PFS's storage targets and reaches the model's
// scattered (aggregate) bandwidth. Larger requests behave like sequential
// streams.
const scatteredMaxReq = 2 << 20

// scatteredMinOps is the minimum batch size for the striping effect.
const scatteredMinOps = 8

// batchIsScattered reports whether a request batch gets the deep-queue
// striping bandwidth.
func batchIsScattered(reqs []ReadReq) bool {
	if len(reqs) < scatteredMinOps {
		return false
	}
	var bytes int64
	for i := range reqs {
		bytes += int64(reqs[i].Len)
	}
	return bytes/int64(len(reqs)) <= scatteredMaxReq
}

// priceOverlapped prices a batch whose per-op latencies overlap up to the
// queue depth. The amortized latency term ADDS to the bandwidth term
// rather than hiding under it: small scattered reads under-utilize a PFS
// (per-RPC server work, per-OST seeks), so the penalty persists even when
// the pipe is otherwise bandwidth-bound — the effect behind the paper's
// chunk-size trade-off (Fig. 5, §3.4.1).
func priceOverlapped(f *pfs.File, cost pfs.Cost, queueDepth int, scattered bool) time.Duration {
	store := fileStore(f)
	m := store.Model()
	sharers := store.Sharers()
	if queueDepth < 1 {
		queueDepth = 1
	}
	rounds := func(n int) time.Duration {
		return time.Duration((n + queueDepth - 1) / queueDepth)
	}
	latTerm := rounds(cost.Ops)*m.ReadLatency + rounds(cost.CachedOps)*m.CachedLatency
	bwTerm := m.BandwidthTerm(cost, sharers)
	if scattered {
		bwTerm = m.ScatteredBandwidthTerm(cost, sharers)
	}
	elapsed := latTerm + bwTerm
	// The final completion still pays one latency.
	switch {
	case cost.Ops > 0:
		elapsed += m.ReadLatency
	case cost.CachedOps > 0:
		elapsed += m.CachedLatency
	}
	return elapsed
}

// Mmap is the synchronous page-fault backend. Each first touch of a cold
// region triggers a synchronous fault that pays the full read latency; the
// kernel's fault-around behaviour brings in a cluster of FaultAroundPages
// pages per fault (Linux defaults to 16; readahead widens it for
// sequential access, so 32 is a fair average), which both amortizes faults
// a little and reads unrequested bytes.
type Mmap struct {
	// FaultAroundPages is the pages brought in per fault (default 32).
	FaultAroundPages int
}

var _ Backend = Mmap{}

// Name implements Backend.
func (Mmap) Name() string { return "mmap" }

// ReadBatch touches every request's pages in order, faulting cold clusters
// synchronously.
func (mm Mmap) ReadBatch(f *pfs.File, reqs []ReadReq) (pfs.Cost, time.Duration, error) {
	store := fileStore(f)
	m := store.Model()
	around := mm.FaultAroundPages
	if around < 1 {
		around = 32
	}
	clusterSize := int64(m.PageSize) * int64(around)
	cluster := make([]byte, clusterSize)
	var cost pfs.Cost
	for i := range reqs {
		r := &reqs[i]
		if err := checkReq(r); err != nil {
			return cost, 0, err
		}
		first := r.Off / clusterSize
		last := (r.Off + int64(r.Len) - 1) / clusterSize
		for c := first; c <= last; c++ {
			clusterOff := c * clusterSize
			n, cc, err := f.ReadAt(cluster, clusterOff)
			cost.Add(cc)
			if err != nil && !errors.Is(err, io.EOF) {
				return cost, 0, fmt.Errorf("aio: mmap fault at cluster %d: %w", c, err)
			}
			// Copy the overlap of this cluster with the request window.
			lo := r.Off - clusterOff
			if lo < 0 {
				lo = 0
			}
			hi := r.Off + int64(r.Len) - clusterOff
			if hi > int64(n) {
				hi = int64(n)
			}
			if hi > lo {
				dst := clusterOff + lo - r.Off
				copy(r.Buf[dst:dst+(hi-lo)], cluster[lo:hi])
			}
		}
	}
	// Synchronous pricing: every fault serializes its full latency.
	elapsed := time.Duration(cost.Ops)*m.ReadLatency +
		time.Duration(cost.CachedOps)*m.CachedLatency +
		m.BandwidthTerm(cost, store.Sharers())
	return cost, elapsed, nil
}

// Ring is the submission/completion queue pair of the Uring backend.
// Submission blocks only when the submission queue is at the queue depth,
// and workers complete operations concurrently — the programming model of
// io_uring, with the kernel replaced by goroutines. The completion side
// never blocks the workers (io_uring's CQ-overflow behaviour), so a ring
// can always be closed safely even with unreaped completions.
type Ring struct {
	sq chan sqe
	wg sync.WaitGroup

	mu     sync.Mutex
	cond   *sync.Cond
	comps  []Completion
	closed bool
}

type sqe struct {
	f   *pfs.File
	req ReadReq
}

// Completion is one completed operation.
type Completion struct {
	Tag  int
	N    int
	Cost pfs.Cost
	Err  error
}

// NewRing creates a ring with the given queue depth and worker count and
// starts the workers. Close must be called to stop them.
func NewRing(queueDepth, workers int) *Ring {
	if queueDepth < 1 {
		queueDepth = 1
	}
	if workers < 1 {
		workers = 1
	}
	r := &Ring{
		sq: make(chan sqe, queueDepth),
	}
	r.cond = sync.NewCond(&r.mu)
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		//lint:ignore gocheck worker pool joined by Ring.Close via r.wg.Wait
		go r.worker()
	}
	return r
}

func (r *Ring) worker() {
	defer r.wg.Done()
	for e := range r.sq {
		var comp Completion
		comp.Tag = e.req.Tag
		if err := checkReq(&e.req); err != nil {
			comp.Err = err
		} else {
			n, cost, err := e.f.ReadAt(e.req.Buf[:e.req.Len], e.req.Off)
			comp.N = n
			comp.Cost = cost
			if err != nil && !errors.Is(err, io.EOF) {
				comp.Err = err
			}
		}
		r.mu.Lock()
		r.comps = append(r.comps, comp)
		r.cond.Signal()
		r.mu.Unlock()
	}
}

// Submit enqueues all requests for the file. It blocks only when the
// submission queue is full (in-flight operations at the queue depth).
func (r *Ring) Submit(f *pfs.File, reqs []ReadReq) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return errors.New("aio: ring closed")
	}
	r.mu.Unlock()
	for i := range reqs {
		r.sq <- sqe{f: f, req: reqs[i]}
	}
	return nil
}

// Reap waits for n completions and returns them (order is completion
// order, not submission order). The first error encountered is returned
// after all n completions are collected.
func (r *Ring) Reap(n int) ([]Completion, error) {
	out := make([]Completion, 0, n)
	var firstErr error
	r.mu.Lock()
	for len(out) < n {
		for len(r.comps) == 0 {
			r.cond.Wait()
		}
		take := n - len(out)
		if take > len(r.comps) {
			take = len(r.comps)
		}
		out = append(out, r.comps[:take]...)
		r.comps = r.comps[take:]
	}
	r.mu.Unlock()
	for i := range out {
		if out[i].Err != nil {
			firstErr = out[i].Err
			break
		}
	}
	return out, firstErr
}

// Close stops accepting submissions, waits for in-flight operations to
// complete, and stops the workers. Unreaped completions are discarded.
func (r *Ring) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.sq)
	r.wg.Wait()
}

func checkReq(r *ReadReq) error {
	if r.Len <= 0 {
		return fmt.Errorf("aio: request tag %d has non-positive length %d", r.Tag, r.Len)
	}
	if r.Off < 0 {
		return fmt.Errorf("aio: request tag %d has negative offset %d", r.Tag, r.Off)
	}
	if len(r.Buf) < r.Len {
		return fmt.Errorf("aio: request tag %d buffer too small: %d < %d", r.Tag, len(r.Buf), r.Len)
	}
	return nil
}

// fileStore exposes the store behind a file for pricing.
func fileStore(f *pfs.File) *pfs.Store { return f.Store() }
