// Package aio provides the asynchronous scattered-read engine of the
// comparator (paper §2.5.2). Two backends implement the same interface:
//
//   - Uring: an io_uring-style engine with a submission queue and a
//     completion queue shared with a pool of "kernel" workers. The ring is
//     persistent: it starts lazily on first use and is reused across every
//     ReadBatch call, so steady-state batches pay no goroutine spawn or
//     teardown. Many reads are enqueued with a single submit, latencies
//     overlap up to the queue depth, and completions are reaped
//     asynchronously. Uring also implements PairReader: the comparator's
//     run-A and run-B batches are submitted into the one ring together so
//     their latencies overlap instead of summing tA + tB.
//   - Mmap: a memory-map-style backend in which every first touch of a
//     page triggers a synchronous page fault: faults serialize and each
//     pays the full device latency. This is the slower baseline of Fig. 9.
//
// Both backends perform real reads through the pfs store (so data paths
// are exercised end to end) and price the batch on the virtual clock using
// the store's cost model.
package aio

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/pfs"
)

// ReadReq is one scattered read: fill Buf[:Len] from Off. Tag is an opaque
// caller identifier (the comparator uses the chunk index).
type ReadReq struct {
	Off int64
	Len int
	Buf []byte
	Tag int
}

// Backend reads a batch of scattered requests from a file. It returns the
// aggregate storage cost and the virtual elapsed time of the whole batch.
// Implementations must fill every request's buffer before returning.
// Cancelling the context aborts the batch: in-flight operations complete
// (or are skipped) promptly and the call returns ctx.Err().
type Backend interface {
	// Name identifies the backend in reports ("io_uring", "mmap").
	Name() string
	// ReadBatch executes all requests against f.
	ReadBatch(ctx context.Context, f *pfs.File, reqs []ReadReq) (pfs.Cost, time.Duration, error)
}

// PairReader is implemented by backends that can execute the run-A and
// run-B halves of a verification slice as one overlapped batch. Both
// files must live in the same store: the combined batch is priced once,
// against fA's cost model, as a single deep queue of in-flight operations.
// Backends without this fast path are driven through two serial ReadBatch
// calls by the stream pipeline.
type PairReader interface {
	Backend
	// ReadBatchPair executes reqsA against fA and reqsB against fB as one
	// overlapped batch, returning the combined cost and the virtual
	// elapsed time of the whole pair.
	ReadBatchPair(ctx context.Context, fA, fB *pfs.File, reqsA, reqsB []ReadReq) (pfs.Cost, time.Duration, error)
}

// Uring is the io_uring-style backend. The zero value is usable: the
// persistent ring starts lazily on the first batch with defaulted
// parameters. A Uring serializes batch groups internally, so it is safe
// for concurrent use; Close stops the ring's workers (the next batch
// restarts them), and the process-wide Default engine is never closed.
type Uring struct {
	// QueueDepth is the maximum number of in-flight operations (ring size).
	QueueDepth int
	// Workers is the number of kernel-side worker goroutines.
	Workers int

	// mu serializes batch groups on the ring (one ReadBatch or
	// ReadBatchPair reaps exactly its own completions) and guards the
	// lazy ring start.
	mu   sync.Mutex
	ring *Ring
}

var (
	_ Backend    = (*Uring)(nil)
	_ PairReader = (*Uring)(nil)
)

// NewUring returns a Uring backend with sensible defaults applied
// (queue depth 64, workers 4). The ring itself starts on first use.
func NewUring(queueDepth, workers int) *Uring {
	if queueDepth < 1 {
		queueDepth = 64
	}
	if workers < 1 {
		workers = 4
	}
	return &Uring{QueueDepth: queueDepth, Workers: workers}
}

// Name implements Backend.
func (u *Uring) Name() string { return "io_uring" }

func (u *Uring) queueDepth() int {
	if u.QueueDepth < 1 {
		return 64
	}
	return u.QueueDepth
}

// ensureRing lazily starts the persistent ring. Caller holds u.mu.
func (u *Uring) ensureRing() *Ring {
	if u.ring == nil {
		workers := u.Workers
		if workers < 1 {
			workers = 4
		}
		u.ring = NewRing(u.queueDepth(), workers)
	}
	return u.ring
}

// Close stops the persistent ring's workers. The ring restarts lazily on
// the next batch, so a closed Uring remains usable; Close exists so
// bounded-lifetime backends (benchmarks, per-experiment engines) do not
// leak workers.
func (u *Uring) Close() {
	u.mu.Lock()
	ring := u.ring
	u.ring = nil
	u.mu.Unlock()
	if ring != nil {
		ring.Close()
	}
}

// ReadBatch submits all requests through the persistent ring and reaps
// their completions. On cancellation every submitted operation is still
// reaped (so the ring stays reusable) and ctx.Err() is returned.
func (u *Uring) ReadBatch(ctx context.Context, f *pfs.File, reqs []ReadReq) (pfs.Cost, time.Duration, error) {
	if len(reqs) == 0 {
		return pfs.Cost{}, 0, nil
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	ring := u.ensureRing()
	submitted, serr := ring.Submit(ctx, f, reqs)
	cost, err := ring.reapCost(submitted)
	if serr != nil {
		return cost, 0, serr
	}
	if cerr := ctx.Err(); cerr != nil {
		return cost, 0, cerr
	}
	elapsed := priceOverlapped(f, cost, u.queueDepth(), batchIsScattered(len(reqs), batchBytes(reqs)))
	return cost, elapsed, err
}

// ReadBatchPair implements PairReader: both runs' requests enter the one
// ring back to back and complete as a single deep queue, so the pair is
// priced once — the A and B latencies overlap instead of summing, and the
// final-completion latency is paid once instead of twice. Both files must
// live in the same store; the combined batch is priced against fA's model.
func (u *Uring) ReadBatchPair(ctx context.Context, fA, fB *pfs.File, reqsA, reqsB []ReadReq) (pfs.Cost, time.Duration, error) {
	if len(reqsA)+len(reqsB) == 0 {
		return pfs.Cost{}, 0, nil
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	ring := u.ensureRing()
	subA, errA := ring.Submit(ctx, fA, reqsA)
	if errA != nil {
		// Part of the A half may already be in flight: drain its
		// completions so the ring stays reusable for the next group.
		cost, _ := ring.reapCost(subA)
		return cost, 0, errA
	}
	subB, errB := ring.Submit(ctx, fB, reqsB)
	cost, err := ring.reapCost(subA + subB)
	if errB != nil {
		return cost, 0, errB
	}
	if cerr := ctx.Err(); cerr != nil {
		return cost, 0, cerr
	}
	ops := len(reqsA) + len(reqsB)
	scattered := batchIsScattered(ops, batchBytes(reqsA)+batchBytes(reqsB))
	elapsed := priceOverlapped(fA, cost, u.queueDepth(), scattered)
	return cost, elapsed, err
}

// defaultUring is the process-wide shared engine behind Default.
var (
	defaultUring     *Uring
	defaultUringOnce sync.Once
)

// Default returns the process-wide shared io_uring-style engine (queue
// depth 256, 4 workers; ring started on first use, never closed). It is
// the backend the compare layer selects when Options.Backend is nil,
// mirroring device.Default().
func Default() *Uring {
	defaultUringOnce.Do(func() { defaultUring = NewUring(256, 4) })
	return defaultUring
}

// Legacy is the pre-persistent-ring engine, retained as the benchmark
// baseline (cmd/benchstream): every ReadBatch constructs a fresh Ring,
// drives one batch through it, and tears it down — paying worker spawn and
// join per batch — and it implements only Backend, so run-A and run-B
// batches serialize. New code should use Uring.
type Legacy struct {
	// QueueDepth is the ring size (default 64).
	QueueDepth int
	// Workers is the worker count per ring (default 4).
	Workers int
}

var _ Backend = Legacy{}

// Name implements Backend.
func (Legacy) Name() string { return "io_uring_fresh" }

// ReadBatch spawns a ring, submits all requests, reaps, and tears the
// ring down.
func (l Legacy) ReadBatch(ctx context.Context, f *pfs.File, reqs []ReadReq) (pfs.Cost, time.Duration, error) {
	if len(reqs) == 0 {
		return pfs.Cost{}, 0, nil
	}
	queueDepth := l.QueueDepth
	if queueDepth < 1 {
		queueDepth = 64
	}
	workers := l.Workers
	if workers < 1 {
		workers = 4
	}
	//lint:ignore ringlife the per-batch ring spawn IS the baseline this backend preserves for benchmarks
	ring := NewRing(queueDepth, workers)
	defer ring.Close()
	submitted, serr := ring.Submit(ctx, f, reqs)
	cost, err := ring.reapCost(submitted)
	if serr != nil {
		return cost, 0, serr
	}
	if cerr := ctx.Err(); cerr != nil {
		return cost, 0, cerr
	}
	elapsed := priceOverlapped(f, cost, queueDepth, batchIsScattered(len(reqs), batchBytes(reqs)))
	return cost, elapsed, err
}

// scatteredMaxReq is the request size up to which a deep queue of reads
// stripes across a PFS's storage targets and reaches the model's
// scattered (aggregate) bandwidth. Larger requests behave like sequential
// streams.
const scatteredMaxReq = 2 << 20

// scatteredMinOps is the minimum batch size for the striping effect.
const scatteredMinOps = 8

// batchBytes sums the requested bytes of a batch.
func batchBytes(reqs []ReadReq) int64 {
	var bytes int64
	for i := range reqs {
		bytes += int64(reqs[i].Len)
	}
	return bytes
}

// batchIsScattered reports whether a batch of ops requests totalling bytes
// gets the deep-queue striping bandwidth.
func batchIsScattered(ops int, bytes int64) bool {
	if ops < scatteredMinOps {
		return false
	}
	return bytes/int64(ops) <= scatteredMaxReq
}

// priceOverlapped prices a batch whose per-op latencies overlap up to the
// queue depth. The amortized latency term ADDS to the bandwidth term
// rather than hiding under it: small scattered reads under-utilize a PFS
// (per-RPC server work, per-OST seeks), so the penalty persists even when
// the pipe is otherwise bandwidth-bound — the effect behind the paper's
// chunk-size trade-off (Fig. 5, §3.4.1).
func priceOverlapped(f *pfs.File, cost pfs.Cost, queueDepth int, scattered bool) time.Duration {
	store := fileStore(f)
	m := store.Model()
	sharers := store.Sharers()
	if queueDepth < 1 {
		queueDepth = 1
	}
	rounds := func(n int) time.Duration {
		return time.Duration((n + queueDepth - 1) / queueDepth)
	}
	latTerm := rounds(cost.Ops)*m.ReadLatency + rounds(cost.CachedOps)*m.CachedLatency
	bwTerm := m.BandwidthTerm(cost, sharers)
	if scattered {
		bwTerm = m.ScatteredBandwidthTerm(cost, sharers)
	}
	elapsed := latTerm + bwTerm
	// The final completion still pays one latency.
	switch {
	case cost.Ops > 0:
		elapsed += m.ReadLatency
	case cost.CachedOps > 0:
		elapsed += m.CachedLatency
	}
	return elapsed
}

// Mmap is the synchronous page-fault backend. Each first touch of a cold
// region triggers a synchronous fault that pays the full read latency; the
// kernel's fault-around behaviour brings in a cluster of FaultAroundPages
// pages per fault (Linux defaults to 16; readahead widens it for
// sequential access, so 32 is a fair average), which both amortizes faults
// a little and reads unrequested bytes.
type Mmap struct {
	// FaultAroundPages is the pages brought in per fault (default 32).
	FaultAroundPages int
}

var _ Backend = Mmap{}

// Name implements Backend.
func (Mmap) Name() string { return "mmap" }

// ReadBatch touches every request's pages in order, faulting cold clusters
// synchronously. Every fault is a cancellation point.
func (mm Mmap) ReadBatch(ctx context.Context, f *pfs.File, reqs []ReadReq) (pfs.Cost, time.Duration, error) {
	store := fileStore(f)
	m := store.Model()
	around := mm.FaultAroundPages
	if around < 1 {
		around = 32
	}
	clusterSize := int64(m.PageSize) * int64(around)
	cluster := make([]byte, clusterSize)
	var cost pfs.Cost
	for i := range reqs {
		r := &reqs[i]
		if err := checkReq(r); err != nil {
			return cost, 0, err
		}
		first := r.Off / clusterSize
		last := (r.Off + int64(r.Len) - 1) / clusterSize
		for c := first; c <= last; c++ {
			clusterOff := c * clusterSize
			n, cc, err := f.ReadAtCtx(ctx, cluster, clusterOff)
			cost.Add(cc)
			if err != nil && !errors.Is(err, io.EOF) {
				return cost, 0, fmt.Errorf("aio: mmap fault at cluster %d: %w", c, err)
			}
			// Copy the overlap of this cluster with the request window.
			lo := r.Off - clusterOff
			if lo < 0 {
				lo = 0
			}
			hi := r.Off + int64(r.Len) - clusterOff
			if hi > int64(n) {
				hi = int64(n)
			}
			if hi > lo {
				dst := clusterOff + lo - r.Off
				copy(r.Buf[dst:dst+(hi-lo)], cluster[lo:hi])
			}
		}
	}
	// Synchronous pricing: every fault serializes its full latency.
	elapsed := time.Duration(cost.Ops)*m.ReadLatency +
		time.Duration(cost.CachedOps)*m.CachedLatency +
		m.BandwidthTerm(cost, store.Sharers())
	return cost, elapsed, nil
}

// Ring is the submission/completion queue pair of the Uring backend.
// Submission blocks only when the submission queue is at the queue depth,
// and workers complete operations concurrently — the programming model of
// io_uring, with the kernel replaced by goroutines. The completion side
// never blocks the workers (io_uring's CQ-overflow behaviour), so a ring
// can always be closed safely even with unreaped completions.
type Ring struct {
	sq chan sqe
	wg sync.WaitGroup

	// submits tracks Submit calls in flight so Close can wait for them
	// before closing sq: a Submit that passed the closed check is
	// guaranteed to finish sending before the channel closes.
	submits sync.WaitGroup

	mu     sync.Mutex
	cond   *sync.Cond
	comps  []Completion // pending completions are comps[head:]
	head   int
	closed bool
}

type sqe struct {
	f   *pfs.File
	req ReadReq
	// cancel, when non-nil and closed, makes the worker complete the
	// operation immediately with errCanceled instead of reading. It is the
	// submitting context's Done channel (a channel, not the context itself,
	// so no context is stored in a struct — see the ctxflow lint rule).
	cancel <-chan struct{}
}

// ErrRingClosed is returned by Submit on a closed ring. Callers holding a
// batch when the shared ring shuts down (a torn-down engine, an exiting
// process) can fall back to a fresh-ring Legacy read of the same requests
// — the first rung of the degradation ladder — instead of failing the
// comparison.
var ErrRingClosed = errors.New("aio: ring closed")

// errCanceled is the completion error of operations skipped because their
// batch's context was canceled. Callers surface ctx.Err() instead.
var errCanceled = errors.New("aio: batch canceled")

// Completion is one completed operation.
type Completion struct {
	Tag  int
	N    int
	Cost pfs.Cost
	Err  error
}

// NewRing creates a ring with the given queue depth and worker count and
// starts the workers. Close must be called to stop them.
func NewRing(queueDepth, workers int) *Ring {
	if queueDepth < 1 {
		queueDepth = 1
	}
	if workers < 1 {
		workers = 1
	}
	r := &Ring{
		sq: make(chan sqe, queueDepth),
	}
	r.cond = sync.NewCond(&r.mu)
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		//lint:ignore gocheck worker pool joined by Ring.Close via r.wg.Wait
		go r.worker()
	}
	return r
}

func (r *Ring) worker() {
	defer r.wg.Done()
	for e := range r.sq {
		var comp Completion
		comp.Tag = e.req.Tag
		canceled := false
		if e.cancel != nil {
			select {
			case <-e.cancel:
				canceled = true
			default:
			}
		}
		if canceled {
			// Complete without reading so a canceled batch drains the
			// ring at channel speed rather than device speed.
			comp.Err = errCanceled
		} else if err := checkReq(&e.req); err != nil {
			comp.Err = err
		} else {
			n, cost, err := e.f.ReadAt(e.req.Buf[:e.req.Len], e.req.Off)
			comp.N = n
			comp.Cost = cost
			if err != nil && !errors.Is(err, io.EOF) {
				comp.Err = err
			}
		}
		r.mu.Lock()
		r.comps = append(r.comps, comp)
		r.cond.Signal()
		r.mu.Unlock()
	}
}

// Submit enqueues all requests for the file, returning how many entered
// the ring — the count the caller must reap even on error. It blocks only
// when the submission queue is full (in-flight operations at the queue
// depth); a canceled context unblocks it, and the requests submitted
// before cancellation complete fast via their cancel channel. Submit is
// safe against a concurrent Close: it either completes the whole send
// before the queue closes or returns the closed error without sending.
// (Registering in r.submits under r.mu is what closes the old TOCTOU
// window — Close waits on the group before closing sq.)
func (r *Ring) Submit(ctx context.Context, f *pfs.File, reqs []ReadReq) (int, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0, ErrRingClosed
	}
	r.submits.Add(1)
	r.mu.Unlock()
	defer r.submits.Done()
	done := ctx.Done()
	for i := range reqs {
		select {
		case r.sq <- sqe{f: f, req: reqs[i], cancel: done}:
		case <-done:
			return i, ctx.Err()
		}
	}
	return len(reqs), nil
}

// takeLocked removes up to n pending completions and returns how many it
// removed and the slice window holding them (valid until r.mu is
// released). When the queue drains completely it is rewound to the front
// of its backing array, so a serialized submit/reap cadence reuses one
// allocation forever.
func (r *Ring) takeLocked(n int) (int, []Completion) {
	avail := len(r.comps) - r.head
	if avail > n {
		avail = n
	}
	window := r.comps[r.head : r.head+avail]
	r.head += avail
	if r.head == len(r.comps) {
		r.comps = r.comps[:0]
		r.head = 0
	}
	return avail, window
}

// Reap waits for n completions and returns them (order is completion
// order, not submission order). The first error encountered is returned
// after all n completions are collected.
func (r *Ring) Reap(n int) ([]Completion, error) {
	out := make([]Completion, 0, n)
	r.mu.Lock()
	for len(out) < n {
		got, window := r.takeLocked(n - len(out))
		if got == 0 {
			r.cond.Wait()
			continue
		}
		out = append(out, window...)
	}
	r.mu.Unlock()
	var firstErr error
	for i := range out {
		if out[i].Err != nil {
			firstErr = out[i].Err
			break
		}
	}
	return out, firstErr
}

// reapCost waits for n completions and folds them directly into an
// aggregate cost without materializing a []Completion — the zero-alloc
// reap the persistent backends use on every batch.
func (r *Ring) reapCost(n int) (pfs.Cost, error) {
	var cost pfs.Cost
	var firstErr error
	got := 0
	r.mu.Lock()
	for got < n {
		k, window := r.takeLocked(n - got)
		if k == 0 {
			r.cond.Wait()
			continue
		}
		for i := range window {
			cost.Add(window[i].Cost)
			if window[i].Err != nil && firstErr == nil {
				firstErr = window[i].Err
			}
		}
		got += k
	}
	r.mu.Unlock()
	return cost, firstErr
}

// Close stops accepting submissions, waits for in-flight operations to
// complete, and stops the workers. Unreaped completions are discarded.
func (r *Ring) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	// Wait for Submits that passed the closed check before closing the
	// channel they send on.
	r.submits.Wait()
	close(r.sq)
	r.wg.Wait()
}

func checkReq(r *ReadReq) error {
	if r.Len <= 0 {
		return fmt.Errorf("aio: request tag %d has non-positive length %d", r.Tag, r.Len)
	}
	if r.Off < 0 {
		return fmt.Errorf("aio: request tag %d has negative offset %d", r.Tag, r.Off)
	}
	if len(r.Buf) < r.Len {
		return fmt.Errorf("aio: request tag %d buffer too small: %d < %d", r.Tag, len(r.Buf), r.Len)
	}
	return nil
}

// fileStore exposes the store behind a file for pricing.
func fileStore(f *pfs.File) *pfs.Store { return f.Store() }
