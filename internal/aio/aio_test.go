package aio

import (
	"context"
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/pfs"
)

// newFile creates a store with a file of deterministic content and returns
// the open file with its content (cold cache).
func newFile(t *testing.T, size int) (*pfs.Store, *pfs.File, []byte) {
	t.Helper()
	s, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	rng := rand.New(rand.NewSource(int64(size)))
	rng.Read(data)
	w, err := s.Create("data.bin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s.Evict("data.bin")
	f, err := s.Open("data.bin")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return s, f, data
}

// scatteredReqs builds n requests of reqLen bytes at shuffled offsets.
func scatteredReqs(data []byte, n, reqLen int, seed int64) []ReadReq {
	rng := rand.New(rand.NewSource(seed))
	maxOff := len(data) - reqLen
	reqs := make([]ReadReq, n)
	for i := range reqs {
		reqs[i] = ReadReq{
			Off: int64(rng.Intn(maxOff/reqLen+1)) * int64(reqLen),
			Len: reqLen,
			Buf: make([]byte, reqLen),
			Tag: i,
		}
	}
	return reqs
}

func verifyFilled(t *testing.T, data []byte, reqs []ReadReq) {
	t.Helper()
	for i := range reqs {
		r := &reqs[i]
		want := data[r.Off : r.Off+int64(r.Len)]
		if !bytes.Equal(r.Buf[:r.Len], want) {
			t.Fatalf("request %d (off=%d len=%d): content mismatch", r.Tag, r.Off, r.Len)
		}
	}
}

func TestUringFillsBuffers(t *testing.T) {
	_, f, data := newFile(t, 1<<20)
	reqs := scatteredReqs(data, 100, 4096, 1)
	u := NewUring(16, 4)
	cost, elapsed, err := u.ReadBatch(context.Background(), f, reqs)
	if err != nil {
		t.Fatal(err)
	}
	verifyFilled(t, data, reqs)
	if cost.TotalBytes() == 0 {
		t.Error("no bytes accounted")
	}
	if elapsed <= 0 {
		t.Error("non-positive virtual elapsed")
	}
	if u.Name() != "io_uring" {
		t.Errorf("Name = %q", u.Name())
	}
}

func TestMmapFillsBuffers(t *testing.T) {
	_, f, data := newFile(t, 1<<20)
	reqs := scatteredReqs(data, 100, 4096, 2)
	cost, elapsed, err := Mmap{}.ReadBatch(context.Background(), f, reqs)
	if err != nil {
		t.Fatal(err)
	}
	verifyFilled(t, data, reqs)
	if cost.TotalBytes() == 0 || elapsed <= 0 {
		t.Error("mmap accounting empty")
	}
	if (Mmap{}).Name() != "mmap" {
		t.Error("bad name")
	}
}

func TestMmapUnalignedRequests(t *testing.T) {
	_, f, data := newFile(t, 256<<10)
	// Requests that straddle page boundaries at odd offsets.
	reqs := []ReadReq{
		{Off: 100, Len: 5000, Buf: make([]byte, 5000), Tag: 0},
		{Off: 4095, Len: 2, Buf: make([]byte, 2), Tag: 1},
		{Off: 65536 - 1, Len: 8192, Buf: make([]byte, 8192), Tag: 2},
	}
	if _, _, err := (Mmap{}).ReadBatch(context.Background(), f, reqs); err != nil {
		t.Fatal(err)
	}
	verifyFilled(t, data, reqs)
}

func TestUringFasterThanMmapForScatteredReads(t *testing.T) {
	// Fig. 9's structural claim: >3x on cold scattered smalls.
	_, f1, data := newFile(t, 4<<20)
	reqs1 := scatteredReqs(data, 500, 4096, 3)
	_, mmapElapsed, err := Mmap{}.ReadBatch(context.Background(), f1, reqs1)
	if err != nil {
		t.Fatal(err)
	}

	_, f2, data2 := newFile(t, 4<<20)
	reqs2 := scatteredReqs(data2, 500, 4096, 3)
	_, uringElapsed, err := NewUring(64, 4).ReadBatch(context.Background(), f2, reqs2)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(mmapElapsed) / float64(uringElapsed)
	if ratio < 3 {
		t.Errorf("mmap/io_uring = %.2f, want >= 3", ratio)
	}
}

func TestWarmBatchCheaper(t *testing.T) {
	_, f, data := newFile(t, 1<<20)
	reqs := scatteredReqs(data, 200, 4096, 4)
	u := NewUring(32, 2)
	_, cold, err := u.ReadBatch(context.Background(), f, reqs)
	if err != nil {
		t.Fatal(err)
	}
	_, warm, err := u.ReadBatch(context.Background(), f, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if warm >= cold {
		t.Errorf("warm batch (%v) not cheaper than cold (%v)", warm, cold)
	}
}

func TestEmptyBatch(t *testing.T) {
	_, f, _ := newFile(t, 4096)
	cost, elapsed, err := NewUring(8, 2).ReadBatch(context.Background(), f, nil)
	if err != nil || cost.TotalBytes() != 0 || elapsed != 0 {
		t.Errorf("empty batch: cost=%+v elapsed=%v err=%v", cost, elapsed, err)
	}
}

func TestBadRequests(t *testing.T) {
	_, f, _ := newFile(t, 4096)
	bads := [][]ReadReq{
		{{Off: 0, Len: 0, Buf: nil}},
		{{Off: -1, Len: 4, Buf: make([]byte, 4)}},
		{{Off: 0, Len: 10, Buf: make([]byte, 4)}},
	}
	for i, reqs := range bads {
		if _, _, err := NewUring(4, 1).ReadBatch(context.Background(), f, reqs); err == nil {
			t.Errorf("uring bad request %d accepted", i)
		}
		if _, _, err := (Mmap{}).ReadBatch(context.Background(), f, reqs); err == nil {
			t.Errorf("mmap bad request %d accepted", i)
		}
	}
}

func TestNewUringDefaults(t *testing.T) {
	u := NewUring(0, 0)
	if u.QueueDepth < 1 || u.Workers < 1 {
		t.Errorf("defaults not applied: %+v", u)
	}
}

func TestRingSubmitReapDirect(t *testing.T) {
	_, f, data := newFile(t, 64<<10)
	r := NewRing(8, 2)
	defer r.Close()
	reqs := scatteredReqs(data, 20, 1024, 5)
	if _, err := r.Submit(context.Background(), f, reqs); err != nil {
		t.Fatal(err)
	}
	comps, err := r.Reap(len(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != len(reqs) {
		t.Fatalf("reaped %d, want %d", len(comps), len(reqs))
	}
	seen := make(map[int]bool)
	for _, c := range comps {
		if c.N != 1024 {
			t.Errorf("tag %d read %d bytes", c.Tag, c.N)
		}
		seen[c.Tag] = true
	}
	if len(seen) != len(reqs) {
		t.Error("duplicate or missing completion tags")
	}
	verifyFilled(t, data, reqs)
}

func TestRingCloseDrainsUnreaped(t *testing.T) {
	_, f, data := newFile(t, 64<<10)
	r := NewRing(4, 2)
	reqs := scatteredReqs(data, 10, 512, 6)
	if _, err := r.Submit(context.Background(), f, reqs); err != nil {
		t.Fatal(err)
	}
	// Close without reaping: must not deadlock or leak workers.
	r.Close()
	r.Close() // double close is a no-op
	if _, err := r.Submit(context.Background(), f, reqs); err == nil {
		t.Error("submit after close accepted")
	}
}

func TestRingClampsParams(t *testing.T) {
	r := NewRing(0, 0)
	defer r.Close()
	// Must still function with clamped depth/workers.
	_, f, data := newFile(t, 8<<10)
	reqs := scatteredReqs(data, 4, 256, 7)
	if _, err := r.Submit(context.Background(), f, reqs); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Reap(len(reqs)); err != nil {
		t.Fatal(err)
	}
	verifyFilled(t, data, reqs)
}

func BenchmarkUring500Scattered4K(b *testing.B) {
	s, err := pfs.NewStore(b.TempDir(), pfs.LustreModel())
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4<<20)
	w, _ := s.Create("bench.bin")
	w.Write(data)
	w.Close()
	f, _ := s.Open("bench.bin")
	defer f.Close()
	reqs := make([]ReadReq, 500)
	for i := range reqs {
		reqs[i] = ReadReq{Off: int64(i * 8192), Len: 4096, Buf: make([]byte, 4096), Tag: i}
	}
	u := NewUring(64, 4)
	b.SetBytes(500 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := u.ReadBatch(context.Background(), f, reqs); err != nil {
			b.Fatal(err)
		}
	}
}
