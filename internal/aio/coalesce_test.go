package aio

import (
	"context"
	"bytes"
	"testing"
	"testing/quick"
)

func TestCoalescingFillsBuffersCorrectly(t *testing.T) {
	_, f, data := newFile(t, 1<<20)
	reqs := scatteredReqs(data, 200, 4096, 21)
	c := NewCoalescing(NewUring(64, 2), 8<<10)
	cost, elapsed, err := c.ReadBatch(context.Background(), f, reqs)
	if err != nil {
		t.Fatal(err)
	}
	verifyFilled(t, data, reqs)
	if cost.TotalBytes() == 0 || elapsed <= 0 {
		t.Error("accounting empty")
	}
	if c.Name() != "io_uring+coalesce" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestCoalescingReducesOps(t *testing.T) {
	// Perfectly adjacent chunks must collapse into a single operation.
	_, f, data := newFile(t, 512<<10)
	mk := func() []ReadReq {
		reqs := make([]ReadReq, 64)
		for i := range reqs {
			reqs[i] = ReadReq{Off: int64(i * 4096), Len: 4096, Buf: make([]byte, 4096), Tag: i}
		}
		return reqs
	}
	reqs := mk()
	c := NewCoalescing(NewUring(64, 2), 4096)
	cost, _, err := c.ReadBatch(context.Background(), f, reqs)
	if err != nil {
		t.Fatal(err)
	}
	verifyFilled(t, data, reqs)
	if cost.Ops != 1 {
		t.Errorf("adjacent chunks used %d ops, want 1", cost.Ops)
	}

	// The same batch uncoalesced pays one op per chunk.
	_, f2, data2 := newFile(t, 512<<10)
	reqs2 := mk()
	cost2, _, err := NewUring(64, 2).ReadBatch(context.Background(), f2, reqs2)
	if err != nil {
		t.Fatal(err)
	}
	verifyFilled(t, data2, reqs2)
	if cost2.Ops != 64 {
		t.Errorf("uncoalesced ops = %d, want 64", cost2.Ops)
	}
}

func TestCoalescingRespectsGapLimit(t *testing.T) {
	_, f, data := newFile(t, 1<<20)
	// Two clusters far apart: must remain two operations.
	reqs := []ReadReq{
		{Off: 0, Len: 4096, Buf: make([]byte, 4096), Tag: 0},
		{Off: 4096, Len: 4096, Buf: make([]byte, 4096), Tag: 1},
		{Off: 512 << 10, Len: 4096, Buf: make([]byte, 4096), Tag: 2},
	}
	c := NewCoalescing(NewUring(8, 1), 4096)
	cost, _, err := c.ReadBatch(context.Background(), f, reqs)
	if err != nil {
		t.Fatal(err)
	}
	verifyFilled(t, data, reqs)
	if cost.Ops != 2 {
		t.Errorf("ops = %d, want 2 (gap not bridged)", cost.Ops)
	}
}

func TestCoalescingBridgesSmallGaps(t *testing.T) {
	_, f, data := newFile(t, 256<<10)
	// 4 KiB chunks every 8 KiB: 4 KiB holes, bridged by MaxGap 8 KiB.
	reqs := make([]ReadReq, 8)
	for i := range reqs {
		reqs[i] = ReadReq{Off: int64(i * 8192), Len: 4096, Buf: make([]byte, 4096), Tag: i}
	}
	c := NewCoalescing(NewUring(8, 1), 8192)
	cost, _, err := c.ReadBatch(context.Background(), f, reqs)
	if err != nil {
		t.Fatal(err)
	}
	verifyFilled(t, data, reqs)
	if cost.Ops != 1 {
		t.Errorf("ops = %d, want 1 (gaps bridged)", cost.Ops)
	}
	// The bridged gaps cost extra bytes.
	want := int64(7*8192 + 4096)
	if cost.TotalBytes() != want {
		t.Errorf("bytes = %d, want %d including gaps", cost.TotalBytes(), want)
	}
}

func TestCoalescingOverlappingRequests(t *testing.T) {
	_, f, data := newFile(t, 64<<10)
	reqs := []ReadReq{
		{Off: 0, Len: 8192, Buf: make([]byte, 8192), Tag: 0},
		{Off: 4096, Len: 8192, Buf: make([]byte, 8192), Tag: 1}, // overlaps 0
		{Off: 100, Len: 50, Buf: make([]byte, 50), Tag: 2},      // inside 0
	}
	c := NewCoalescing(Mmap{}, 0)
	if _, _, err := c.ReadBatch(context.Background(), f, reqs); err != nil {
		t.Fatal(err)
	}
	verifyFilled(t, data, reqs)
}

func TestCoalescingSmallBatchPassThrough(t *testing.T) {
	_, f, data := newFile(t, 16<<10)
	reqs := []ReadReq{{Off: 0, Len: 1024, Buf: make([]byte, 1024), Tag: 0}}
	c := NewCoalescing(nil, 0) // defaults
	if _, _, err := c.ReadBatch(context.Background(), f, reqs); err != nil {
		t.Fatal(err)
	}
	verifyFilled(t, data, reqs)
	if _, _, err := c.ReadBatch(context.Background(), f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescingRejectsBadRequests(t *testing.T) {
	_, f, _ := newFile(t, 4096)
	bad := []ReadReq{
		{Off: 0, Len: 16, Buf: make([]byte, 16)},
		{Off: -5, Len: 16, Buf: make([]byte, 16)},
	}
	if _, _, err := (NewCoalescing(nil, 0)).ReadBatch(context.Background(), f, bad); err == nil {
		t.Error("bad request accepted")
	}
}

func TestQuickCoalescingEquivalence(t *testing.T) {
	_, f, data := newFile(t, 256<<10)
	c := NewCoalescing(NewUring(32, 2), 4096)
	u := NewUring(32, 2)
	iter := 0
	prop := func(seed int64, n uint8) bool {
		iter++
		count := int(n%32) + 1
		a := scatteredReqs(data, count, 1024, seed)
		b := make([]ReadReq, len(a))
		for i := range a {
			b[i] = a[i]
			b[i].Buf = make([]byte, a[i].Len)
		}
		if _, _, err := c.ReadBatch(context.Background(), f, a); err != nil {
			return false
		}
		if _, _, err := u.ReadBatch(context.Background(), f, b); err != nil {
			return false
		}
		for i := range a {
			if !bytes.Equal(a[i].Buf, b[i].Buf) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
