package aio

import (
	"sort"
	"time"

	"repro/internal/pfs"
)

// Coalescing wraps a Backend and merges nearby scattered reads into fewer,
// larger operations before submission — the standard optimization for the
// verification stage's I/O pattern: when divergent chunks cluster (as they
// do for spatially correlated divergence), adjacent candidate chunks can
// be fetched with one request, trading a bounded amount of wasted gap
// bytes for a large reduction in operation count.
type Coalescing struct {
	// Inner executes the merged batch.
	Inner Backend
	// MaxGap is the largest hole (in bytes) bridged between two requests
	// (default 16 KiB). Gap bytes are read and discarded.
	MaxGap int
}

var _ Backend = Coalescing{}

// NewCoalescing wraps a backend with defaults applied.
func NewCoalescing(inner Backend, maxGap int) Coalescing {
	if inner == nil {
		inner = NewUring(0, 0)
	}
	if maxGap <= 0 {
		maxGap = 16 << 10
	}
	return Coalescing{Inner: inner, MaxGap: maxGap}
}

// Name implements Backend.
func (c Coalescing) Name() string { return c.Inner.Name() + "+coalesce" }

// ReadBatch merges, executes, and scatters results back into the original
// request buffers.
func (c Coalescing) ReadBatch(f *pfs.File, reqs []ReadReq) (pfs.Cost, time.Duration, error) {
	if len(reqs) <= 1 {
		return c.Inner.ReadBatch(f, reqs)
	}
	for i := range reqs {
		if err := checkReq(&reqs[i]); err != nil {
			return pfs.Cost{}, 0, err
		}
	}
	// Sort request indices by offset.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return reqs[order[a]].Off < reqs[order[b]].Off })

	// Build merged runs.
	type run struct {
		off     int64
		end     int64
		members []int
	}
	var runs []run
	cur := run{off: reqs[order[0]].Off, end: reqs[order[0]].Off + int64(reqs[order[0]].Len), members: []int{order[0]}}
	for _, idx := range order[1:] {
		r := &reqs[idx]
		if r.Off <= cur.end+int64(c.MaxGap) {
			cur.members = append(cur.members, idx)
			if end := r.Off + int64(r.Len); end > cur.end {
				cur.end = end
			}
			continue
		}
		runs = append(runs, cur)
		cur = run{off: r.Off, end: r.Off + int64(r.Len), members: []int{idx}}
	}
	runs = append(runs, cur)

	// Execute the merged batch.
	merged := make([]ReadReq, len(runs))
	for i, r := range runs {
		merged[i] = ReadReq{
			Off: r.off,
			Len: int(r.end - r.off),
			Buf: make([]byte, r.end-r.off),
			Tag: i,
		}
	}
	cost, elapsed, err := c.Inner.ReadBatch(f, merged)
	if err != nil {
		return cost, elapsed, err
	}
	// Scatter back into the original buffers.
	for i, r := range runs {
		for _, idx := range r.members {
			req := &reqs[idx]
			src := req.Off - r.off
			copy(req.Buf[:req.Len], merged[i].Buf[src:src+int64(req.Len)])
		}
	}
	return cost, elapsed, nil
}
