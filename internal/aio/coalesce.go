package aio

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/pfs"
)

// Coalescing wraps a Backend and merges nearby scattered reads into fewer,
// larger operations before submission — the standard optimization for the
// verification stage's I/O pattern: when divergent chunks cluster (as they
// do for spatially correlated divergence), adjacent candidate chunks can
// be fetched with one request, trading a bounded amount of wasted gap
// bytes for a large reduction in operation count. With latency-dominated
// scattered batches this is where most of the stage-2 speedup comes from,
// which is why the compare layer enables it by default.
//
// Construct with NewCoalescing to attach the recycling scratch arena: the
// merge plan (index order, runs, merged requests) and the merged read
// buffer are then reused across batches, so steady-state coalescing does
// no heap allocation. A zero-value Coalescing still works but plans each
// batch in fresh memory.
//
// Coalescing implements PairReader by planning each side independently and
// handing both merged batches to the inner backend's pair path (falling
// back to two serial inner reads when the inner backend lacks one).
type Coalescing struct {
	// Inner executes the merged batch (nil selects Default()).
	Inner Backend
	// MaxGap is the largest hole (in bytes) bridged between two requests
	// (default 16 KiB). Gap bytes are read and discarded.
	MaxGap int

	scratch *coalesceScratch
}

var (
	_ Backend    = Coalescing{}
	_ PairReader = Coalescing{}
)

// NewCoalescing wraps a backend with defaults applied and a private
// scratch arena attached.
func NewCoalescing(inner Backend, maxGap int) Coalescing {
	if maxGap <= 0 {
		maxGap = 16 << 10
	}
	return Coalescing{Inner: inner, MaxGap: maxGap, scratch: &coalesceScratch{}}
}

func (c Coalescing) inner() Backend {
	if c.Inner == nil {
		return Default()
	}
	return c.Inner
}

// Name implements Backend.
func (c Coalescing) Name() string { return c.inner().Name() + "+coalesce" }

// acquire returns the scratch to plan in — the shared arena (locked) when
// one was attached by NewCoalescing, a throwaway otherwise. Pair with
// release. (No closures here: a per-batch method-value allocation would
// defeat the arena.)
func (c Coalescing) acquire() *coalesceScratch {
	sc := c.scratch
	if sc != nil {
		sc.mu.Lock()
	} else {
		sc = &coalesceScratch{}
	}
	sc.begin()
	return sc
}

// release unlocks the shared arena; throwaway scratches just drop.
func (c Coalescing) release(sc *coalesceScratch) {
	if sc == c.scratch {
		sc.mu.Unlock()
	}
}

// ReadBatch merges, executes, and scatters results back into the original
// request buffers.
func (c Coalescing) ReadBatch(ctx context.Context, f *pfs.File, reqs []ReadReq) (pfs.Cost, time.Duration, error) {
	if len(reqs) <= 1 {
		return c.inner().ReadBatch(ctx, f, reqs)
	}
	sc := c.acquire()
	defer c.release(sc)
	p, err := sc.plan(reqs, c.MaxGap)
	if err != nil {
		return pfs.Cost{}, 0, err
	}
	cost, elapsed, err := c.inner().ReadBatch(ctx, f, sc.merged[p.mlo:p.mhi])
	if err != nil {
		return cost, elapsed, err
	}
	sc.scatter(p, reqs)
	return cost, elapsed, nil
}

// ReadBatchPair implements PairReader: each side is planned independently
// (runs never merge across files) and the two merged batches execute as
// one overlapped pair when the inner backend supports it.
func (c Coalescing) ReadBatchPair(ctx context.Context, fA, fB *pfs.File, reqsA, reqsB []ReadReq) (pfs.Cost, time.Duration, error) {
	sc := c.acquire()
	defer c.release(sc)
	pa, err := sc.plan(reqsA, c.MaxGap)
	if err != nil {
		return pfs.Cost{}, 0, err
	}
	pb, err := sc.plan(reqsB, c.MaxGap)
	if err != nil {
		return pfs.Cost{}, 0, err
	}
	mergedA := sc.merged[pa.mlo:pa.mhi]
	mergedB := sc.merged[pb.mlo:pb.mhi]

	inner := c.inner()
	var cost pfs.Cost
	var elapsed time.Duration
	if pr, ok := inner.(PairReader); ok {
		cost, elapsed, err = pr.ReadBatchPair(ctx, fA, fB, mergedA, mergedB)
	} else {
		// No pair path underneath: the two merged batches serialize.
		cost, elapsed, err = inner.ReadBatch(ctx, fA, mergedA)
		if err == nil {
			var costB pfs.Cost
			var tB time.Duration
			costB, tB, err = inner.ReadBatch(ctx, fB, mergedB)
			cost.Add(costB)
			elapsed += tB
		}
	}
	if err != nil {
		return cost, elapsed, err
	}
	sc.scatter(pa, reqsA)
	sc.scatter(pb, reqsB)
	return cost, elapsed, nil
}

// crun is one merged run: the file window [off,end) covering the original
// requests at order[lo:hi] (offset-sorted, so members are consecutive).
type crun struct {
	off, end int64
	lo, hi   int
}

// coalescePlan addresses one planned batch inside the scratch arena:
// runs[rlo:rhi] and merged[mlo:mhi]. Plans are index ranges rather than
// slices because a later plan in the same arena may grow (and therefore
// move) the shared backing arrays.
type coalescePlan struct {
	rlo, rhi int
	mlo, mhi int
}

// coalesceScratch holds the reusable planning state of one Coalescing
// backend: the offset-sorted index order, the merged runs, the merged
// request batch, and one grow-only byte buffer the merged reads land in.
// All of it is reset (not freed) per batch group, so the arena reaches a
// high-water size and then recycles. One batch group plans at a time (mu).
type coalesceScratch struct {
	mu     sync.Mutex
	sorter orderSorter
	runs   []crun
	merged []ReadReq
	buf    []byte
	used   int
}

// begin resets the arena for a new batch group, keeping capacity.
func (sc *coalesceScratch) begin() {
	sc.sorter.order = sc.sorter.order[:0]
	sc.runs = sc.runs[:0]
	sc.merged = sc.merged[:0]
	sc.used = 0
}

// carve returns an n-byte window of the arena buffer. Growing allocates a
// fresh backing array; windows carved earlier keep referencing the old one,
// which stays valid for the rest of the batch group.
func (sc *coalesceScratch) carve(n int) []byte {
	if len(sc.buf)-sc.used < n {
		size := 2 * len(sc.buf)
		if size < n {
			size = n
		}
		if size < 1<<20 {
			size = 1 << 20
		}
		sc.buf = make([]byte, size)
		sc.used = 0
	}
	b := sc.buf[sc.used : sc.used+n]
	sc.used += n
	return b
}

// orderSorter sorts request indices by offset. It is kept in the scratch
// (and passed to sort.Sort by pointer) so sorting allocates nothing.
type orderSorter struct {
	order []int
	reqs  []ReadReq
	base  int
}

func (s *orderSorter) Len() int { return len(s.order) - s.base }
func (s *orderSorter) Less(i, j int) bool {
	return s.reqs[s.order[s.base+i]].Off < s.reqs[s.order[s.base+j]].Off
}
func (s *orderSorter) Swap(i, j int) {
	o := s.order
	o[s.base+i], o[s.base+j] = o[s.base+j], o[s.base+i]
}

// plan validates reqs, sorts them by offset, and appends their merged runs
// and merged requests to the arena.
func (sc *coalesceScratch) plan(reqs []ReadReq, maxGap int) (coalescePlan, error) {
	if maxGap <= 0 {
		maxGap = 16 << 10
	}
	p := coalescePlan{rlo: len(sc.runs), mlo: len(sc.merged)}
	p.rhi, p.mhi = p.rlo, p.mlo
	if len(reqs) == 0 {
		return p, nil
	}
	for i := range reqs {
		if err := checkReq(&reqs[i]); err != nil {
			return p, err
		}
	}
	olo := len(sc.sorter.order)
	for i := range reqs {
		sc.sorter.order = append(sc.sorter.order, i)
	}
	sc.sorter.reqs = reqs
	sc.sorter.base = olo
	sort.Sort(&sc.sorter)
	sc.sorter.reqs = nil

	order := sc.sorter.order
	first := &reqs[order[olo]]
	cur := crun{off: first.Off, end: first.Off + int64(first.Len), lo: olo, hi: olo + 1}
	for oi := olo + 1; oi < len(order); oi++ {
		r := &reqs[order[oi]]
		if r.Off <= cur.end+int64(maxGap) {
			if end := r.Off + int64(r.Len); end > cur.end {
				cur.end = end
			}
			cur.hi = oi + 1
			continue
		}
		sc.runs = append(sc.runs, cur)
		cur = crun{off: r.Off, end: r.Off + int64(r.Len), lo: oi, hi: oi + 1}
	}
	sc.runs = append(sc.runs, cur)

	for ri := p.rlo; ri < len(sc.runs); ri++ {
		r := sc.runs[ri]
		n := int(r.end - r.off)
		sc.merged = append(sc.merged, ReadReq{Off: r.off, Len: n, Buf: sc.carve(n), Tag: ri - p.rlo})
	}
	p.rhi = len(sc.runs)
	p.mhi = len(sc.merged)
	return p, nil
}

// scatter copies each original request's bytes out of its run's merged
// buffer.
func (sc *coalesceScratch) scatter(p coalescePlan, reqs []ReadReq) {
	for ri := p.rlo; ri < p.rhi; ri++ {
		r := sc.runs[ri]
		merged := sc.merged[p.mlo+(ri-p.rlo)]
		for oi := r.lo; oi < r.hi; oi++ {
			req := &reqs[sc.sorter.order[oi]]
			src := req.Off - r.off
			copy(req.Buf[:req.Len], merged.Buf[src:src+int64(req.Len)])
		}
	}
}
