// Package merkle implements the flattened, GPU-style Merkle tree that
// serves as compact checkpoint metadata (paper §2.3, §2.5.1).
//
// The tree is a complete binary tree stored as a flat array (node i has
// children 2i+1 and 2i+2), with the leaf layer padded to a power of two.
// Leaves are the error-bounded digests of fixed-size data chunks; interior
// nodes hash the concatenation of their children. Construction is
// level-synchronous and data-parallel: all hashes within a level are
// computed concurrently through a device.Executor, with synchronization
// only between levels — exactly the Kokkos kernel structure of the paper.
//
// Comparison (Diff) is the pruned breadth-first search of Fig. 4: it
// starts at a configurable middle level (so enough nodes are in flight to
// keep every worker busy), prunes every subtree whose roots match, and
// descends only into mismatching subtrees, returning the set of leaf chunk
// indices that may differ.
package merkle

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"

	"repro/internal/device"
	"repro/internal/murmur3"
)

// Sentinel errors for callers that need to match failure modes.
var (
	// ErrGeometry is returned when two trees cannot be compared because
	// their chunk size or data length differ.
	ErrGeometry = errors.New("merkle: trees have different geometry")
	// ErrCorrupt is returned when deserialization fails an integrity check.
	ErrCorrupt = errors.New("merkle: corrupt metadata")
)

// Tree is a flattened complete binary Merkle tree over the chunks of one
// checkpoint field. The zero value is not usable; construct with New.
type Tree struct {
	chunkSize int
	dataLen   int64
	numLeaves int              // real (unpadded) leaf count
	leafBase  int              // flat index of the first leaf
	depth     int              // leaf level; root is level 0
	nodes     []murmur3.Digest // 2*paddedLeaves - 1 entries
}

// New creates a tree over data of dataLen bytes split into chunkSize-byte
// chunks, with the given leaf digests (len(leaves) must equal
// ceil(dataLen/chunkSize)). Interior nodes are computed by Build.
func New(dataLen int64, chunkSize int, leaves []murmur3.Digest) (*Tree, error) {
	if chunkSize <= 0 {
		return nil, fmt.Errorf("merkle: chunk size %d must be positive", chunkSize)
	}
	if dataLen <= 0 {
		return nil, fmt.Errorf("merkle: data length %d must be positive", dataLen)
	}
	want := int((dataLen + int64(chunkSize) - 1) / int64(chunkSize))
	if len(leaves) != want {
		return nil, fmt.Errorf("merkle: %d leaves for dataLen=%d chunkSize=%d, want %d",
			len(leaves), dataLen, chunkSize, want)
	}
	t := newShell(dataLen, chunkSize, want)
	copy(t.nodes[t.leafBase:], leaves)
	return t, nil
}

// newShell allocates the flattened node array for the given geometry.
func newShell(dataLen int64, chunkSize, numLeaves int) *Tree {
	padded := 1
	depth := 0
	for padded < numLeaves {
		padded <<= 1
		depth++
	}
	return &Tree{
		chunkSize: chunkSize,
		dataLen:   dataLen,
		numLeaves: numLeaves,
		leafBase:  padded - 1,
		depth:     depth,
		nodes:     make([]murmur3.Digest, 2*padded-1),
	}
}

// buildSerialCutoff is the level width below which Build hashes inline
// instead of dispatching a kernel: near the root a level holds a handful
// of ~60 ns pair hashes, so even a reused worker pool costs more to wake
// than the level takes serially.
const buildSerialCutoff = 128

// Build computes all interior hashes bottom-up, level by level, running
// each level's hashes in parallel on the executor. Levels narrower than
// buildSerialCutoff (the top of the tree) run inline on the calling
// goroutine — the per-level kernel dispatch would dominate them.
func (t *Tree) Build(exec device.Executor) {
	if exec == nil {
		exec = device.Serial{}
	}
	for level := t.depth - 1; level >= 0; level-- {
		base := (1 << level) - 1
		width := 1 << level
		if width <= buildSerialCutoff {
			for j := 0; j < width; j++ {
				node := base + j
				t.nodes[node] = murmur3.HashPair(t.nodes[2*node+1], t.nodes[2*node+2])
			}
			continue
		}
		exec.For(width, func(j int) {
			node := base + j
			t.nodes[node] = murmur3.HashPair(t.nodes[2*node+1], t.nodes[2*node+2])
		})
	}
}

// Root returns the root digest (valid after Build).
func (t *Tree) Root() murmur3.Digest { return t.nodes[0] }

// Clone returns a deep copy of the tree. Incremental capture clones the
// previous iteration's tree and applies Update to the changed leaves,
// leaving the original usable for concurrent comparisons.
func (t *Tree) Clone() *Tree {
	c := *t
	c.nodes = make([]murmur3.Digest, len(t.nodes))
	copy(c.nodes, t.nodes)
	return &c
}

// NumChunks returns the number of real data chunks (leaves).
func (t *Tree) NumChunks() int { return t.numLeaves }

// ChunkSize returns the chunk size in bytes.
func (t *Tree) ChunkSize() int { return t.chunkSize }

// DataLen returns the original data length in bytes.
func (t *Tree) DataLen() int64 { return t.dataLen }

// Depth returns the leaf level (the root is level 0).
func (t *Tree) Depth() int { return t.depth }

// Leaf returns the digest of chunk i.
func (t *Tree) Leaf(i int) murmur3.Digest { return t.nodes[t.leafBase+i] }

// ChunkRange returns the byte range [off, off+n) of chunk i within the
// original data; the final chunk may be short.
func (t *Tree) ChunkRange(i int) (off int64, n int) {
	off = int64(i) * int64(t.chunkSize)
	n = t.chunkSize
	if rem := t.dataLen - off; int64(n) > rem {
		n = int(rem)
	}
	return off, n
}

// MetadataBytes returns the serialized size of the tree, the analogue of
// the paper's 2·D·(N/C − 1) metadata-size formula.
func (t *Tree) MetadataBytes() int64 {
	return int64(headerSize) + int64(len(t.nodes))*murmur3.DigestSize + 4 // + CRC
}

// DefaultStartLevel returns the BFS start level for the given parallelism:
// the highest level whose width is at least 4× the worker count (so every
// worker has nodes to process immediately), clamped to the leaf level.
// This is the paper's "start in the middle of the tree" heuristic.
func (t *Tree) DefaultStartLevel(parallelism int) int {
	if parallelism < 1 {
		parallelism = 1
	}
	target := 4 * parallelism
	level := bits.Len(uint(target - 1)) // ceil(log2(target))
	if level > t.depth {
		level = t.depth
	}
	return level
}

// Diff compares two trees with identical geometry and returns the sorted
// chunk indices whose leaf digests differ, using a pruned level-synchronous
// BFS that starts at startLevel (use DefaultStartLevel, or 0 to start at
// the root). Matching interior nodes prune their whole subtree. The
// returned count of compared nodes lets callers price the traversal.
func Diff(a, b *Tree, startLevel int, exec device.Executor) (chunks []int, nodesCompared int64, err error) {
	if a.chunkSize != b.chunkSize || a.dataLen != b.dataLen || a.numLeaves != b.numLeaves {
		return nil, 0, fmt.Errorf("%w: (%d,%d,%d) vs (%d,%d,%d)", ErrGeometry,
			a.chunkSize, a.dataLen, a.numLeaves, b.chunkSize, b.dataLen, b.numLeaves)
	}
	if exec == nil {
		exec = device.Serial{}
	}
	if startLevel < 0 {
		startLevel = 0
	}
	if startLevel > a.depth {
		startLevel = a.depth
	}

	// Seed the frontier with every node at startLevel whose subtree
	// contains at least one real leaf (padding subtrees are skipped).
	levelBase := (1 << startLevel) - 1
	width := 1 << startLevel
	// Number of real leaves under each start-level node: the subtree of
	// node j at startLevel spans leaves [j*span, (j+1)*span).
	span := 1 << (a.depth - startLevel)
	frontier := make([]int32, 0, width)
	for j := 0; j < width; j++ {
		if j*span < a.numLeaves {
			frontier = append(frontier, int32(levelBase+j))
		}
	}

	level := startLevel
	for len(frontier) > 0 {
		nodesCompared += int64(len(frontier))
		if level == a.depth {
			// Leaf level: collect mismatching chunk indices.
			marks := make([]int32, len(frontier))
			exec.For(len(frontier), func(i int) {
				n := frontier[i]
				if a.nodes[n] != b.nodes[n] {
					marks[i] = n - int32(a.leafBase) + 1 // +1: 0 means match
				}
			})
			for _, m := range marks {
				if m > 0 {
					chunks = append(chunks, int(m-1))
				}
			}
			break
		}
		// Interior level: mismatching nodes contribute their children to
		// the next frontier (0 marks a pruned, matching node).
		next := make([]int32, 2*len(frontier))
		exec.For(len(frontier), func(i int) {
			n := frontier[i]
			if a.nodes[n] != b.nodes[n] {
				next[2*i] = 2*n + 1
				next[2*i+1] = 2*n + 2
			} else {
				next[2*i] = -1
				next[2*i+1] = -1
			}
		})
		frontier = frontier[:0]
		childLevel := level + 1
		childSpan := 1 << (a.depth - childLevel)
		childBase := (1 << childLevel) - 1
		for _, n := range next {
			if n < 0 {
				continue
			}
			// Skip padding-only subtrees.
			j := int(n) - childBase
			if j*childSpan >= a.numLeaves {
				continue
			}
			frontier = append(frontier, n)
		}
		level = childLevel
	}
	return chunks, nodesCompared, nil
}

// Serialization format (little-endian):
//
//	magic   [4]byte "MRKL"
//	version u16 (1)
//	digest  u16 (16)
//	chunk   u32
//	leaves  u32
//	dataLen u64
//	nodes   [2P-1][16]byte
//	crc32   u32 (IEEE, over header+nodes)
const (
	headerSize   = 4 + 2 + 2 + 4 + 4 + 8
	formatMagic  = "MRKL"
	formatVer    = 1
	maxLeafCount = 1 << 30 // sanity bound against corrupt headers
)

// WriteTo serializes the tree. It implements io.WriterTo.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	hdr := make([]byte, headerSize)
	copy(hdr[0:4], formatMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], formatVer)
	binary.LittleEndian.PutUint16(hdr[6:8], murmur3.DigestSize)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(t.chunkSize))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(t.numLeaves))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(t.dataLen))

	crc := crc32.NewIEEE()
	var written int64
	n, err := w.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("merkle: write header: %w", err)
	}
	crc.Write(hdr)

	// Write node digests in bulk slabs to keep syscall counts low.
	const slabNodes = 4096
	slab := make([]byte, 0, slabNodes*murmur3.DigestSize)
	flush := func() error {
		if len(slab) == 0 {
			return nil
		}
		crc.Write(slab)
		n, err := w.Write(slab)
		written += int64(n)
		slab = slab[:0]
		if err != nil {
			return fmt.Errorf("merkle: write nodes: %w", err)
		}
		return nil
	}
	for i := range t.nodes {
		slab = append(slab, t.nodes[i][:]...)
		if len(slab) == cap(slab) {
			if err := flush(); err != nil {
				return written, err
			}
		}
	}
	if err := flush(); err != nil {
		return written, err
	}

	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	n, err = w.Write(tail[:])
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("merkle: write crc: %w", err)
	}
	return written, nil
}

// ReadFrom deserializes a tree previously written with WriteTo and returns
// it with the number of bytes consumed.
func ReadFrom(r io.Reader) (*Tree, int64, error) {
	hdr := make([]byte, headerSize)
	var read int64
	n, err := io.ReadFull(r, hdr)
	read += int64(n)
	if err != nil {
		return nil, read, fmt.Errorf("merkle: read header: %w", err)
	}
	if string(hdr[0:4]) != formatMagic {
		return nil, read, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != formatVer {
		return nil, read, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	if d := binary.LittleEndian.Uint16(hdr[6:8]); d != murmur3.DigestSize {
		return nil, read, fmt.Errorf("%w: digest size %d, want %d", ErrCorrupt, d, murmur3.DigestSize)
	}
	chunkSize := int(binary.LittleEndian.Uint32(hdr[8:12]))
	numLeaves := int(binary.LittleEndian.Uint32(hdr[12:16]))
	dataLen := int64(binary.LittleEndian.Uint64(hdr[16:24]))
	if chunkSize <= 0 || numLeaves <= 0 || numLeaves > maxLeafCount || dataLen <= 0 {
		return nil, read, fmt.Errorf("%w: implausible geometry chunk=%d leaves=%d dataLen=%d",
			ErrCorrupt, chunkSize, numLeaves, dataLen)
	}
	want := int((dataLen + int64(chunkSize) - 1) / int64(chunkSize))
	if want != numLeaves {
		return nil, read, fmt.Errorf("%w: leaf count %d inconsistent with dataLen/chunk (%d)",
			ErrCorrupt, numLeaves, want)
	}

	t := newShell(dataLen, chunkSize, numLeaves)
	crc := crc32.NewIEEE()
	crc.Write(hdr)
	buf := make([]byte, len(t.nodes)*murmur3.DigestSize)
	n, err = io.ReadFull(r, buf)
	read += int64(n)
	if err != nil {
		return nil, read, fmt.Errorf("merkle: read nodes: %w", err)
	}
	crc.Write(buf)
	for i := range t.nodes {
		copy(t.nodes[i][:], buf[i*murmur3.DigestSize:])
	}

	var tail [4]byte
	n, err = io.ReadFull(r, tail[:])
	read += int64(n)
	if err != nil {
		return nil, read, fmt.Errorf("merkle: read crc: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != crc.Sum32() {
		return nil, read, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	return t, read, nil
}
