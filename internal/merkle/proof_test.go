package merkle

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/murmur3"
)

func TestProveVerifyAllChunks(t *testing.T) {
	tr := buildTree(t, 100*64, 64, map[int]bool{17: true})
	root := tr.Root()
	for c := 0; c < tr.NumChunks(); c++ {
		p, err := tr.Prove(c)
		if err != nil {
			t.Fatalf("Prove(%d): %v", c, err)
		}
		if len(p.Siblings) != tr.Depth() {
			t.Fatalf("chunk %d: %d siblings, want depth %d", c, len(p.Siblings), tr.Depth())
		}
		if !VerifyProof(root, p) {
			t.Fatalf("valid proof for chunk %d rejected", c)
		}
	}
}

func TestProofRejectsTamperedLeaf(t *testing.T) {
	tr := buildTree(t, 64*64, 64, nil)
	p, err := tr.Prove(10)
	if err != nil {
		t.Fatal(err)
	}
	tampered := p
	tampered.Leaf = murmur3.SumDigest([]byte("evil"), murmur3.Digest{})
	if VerifyProof(tr.Root(), tampered) {
		t.Error("tampered leaf accepted")
	}
}

func TestProofRejectsWrongChunkClaim(t *testing.T) {
	tr := buildTree(t, 64*64, 64, nil)
	p, err := tr.Prove(10)
	if err != nil {
		t.Fatal(err)
	}
	// Claiming the same leaf sits at another position must fail (the
	// path encodes the position).
	wrong := p
	wrong.Chunk = 11
	if VerifyProof(tr.Root(), wrong) {
		t.Error("relocated proof accepted")
	}
	// Out-of-range claims fail cleanly.
	wrong.Chunk = 1 << 30
	if VerifyProof(tr.Root(), wrong) {
		t.Error("out-of-range chunk accepted")
	}
	wrong.Chunk = -1
	if VerifyProof(tr.Root(), wrong) {
		t.Error("negative chunk accepted")
	}
}

func TestProofRejectsWrongRoot(t *testing.T) {
	a := buildTree(t, 64*64, 64, nil)
	b := buildTree(t, 64*64, 64, map[int]bool{3: true})
	p, err := a.Prove(5)
	if err != nil {
		t.Fatal(err)
	}
	if VerifyProof(b.Root(), p) {
		t.Error("proof verified against a different tree's root")
	}
}

func TestProveValidation(t *testing.T) {
	tr := buildTree(t, 16*64, 64, nil)
	if _, err := tr.Prove(-1); err == nil {
		t.Error("negative chunk accepted")
	}
	if _, err := tr.Prove(16); err == nil {
		t.Error("out-of-range chunk accepted")
	}
}

func TestProofSingleLeaf(t *testing.T) {
	tr := buildTree(t, 10, 64, nil)
	p, err := tr.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Siblings) != 0 {
		t.Errorf("single-leaf proof has %d siblings", len(p.Siblings))
	}
	if !VerifyProof(tr.Root(), p) {
		t.Error("single-leaf proof rejected")
	}
	if p.ProofSize() != 16 {
		t.Errorf("ProofSize = %d", p.ProofSize())
	}
}

func TestQuickProofsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(nSeed uint8, chunkSeed uint8) bool {
		n := int(nSeed%200) + 1
		tr, err := New(int64(n)*32, 32, leafDigests(n, nil))
		if err != nil {
			return false
		}
		tr.Build(nil)
		c := int(chunkSeed) % n
		p, err := tr.Prove(c)
		if err != nil {
			return false
		}
		if !VerifyProof(tr.Root(), p) {
			return false
		}
		// A random sibling flip breaks the proof.
		if len(p.Siblings) > 0 {
			bad := p
			bad.Siblings = append([]murmur3.Digest(nil), p.Siblings...)
			i := rng.Intn(len(bad.Siblings))
			bad.Siblings[i][0] ^= 0xff
			if VerifyProof(tr.Root(), bad) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
