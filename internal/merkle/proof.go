package merkle

import (
	"fmt"

	"repro/internal/murmur3"
)

// Proof is the authentication path of one chunk: the chunk's leaf digest
// plus the sibling digest at every level up to the root. A verifier
// holding only the tree's root digest can check that a chunk's
// error-bounded hash belongs to the tree — the integrity-verification use
// of Merkle trees the paper's related work cites (§4), applied to
// checkpoint chunks: a golden ROOT (16 bytes) is enough to audit any
// chunk of a terabyte checkpoint.
type Proof struct {
	// Chunk is the leaf index the proof authenticates.
	Chunk int
	// Leaf is the chunk's error-bounded digest.
	Leaf murmur3.Digest
	// Siblings holds the sibling digest at each level, leaf level first.
	Siblings []murmur3.Digest
}

// Prove extracts the authentication path for a chunk. The tree must be
// built.
func (t *Tree) Prove(chunk int) (Proof, error) {
	if chunk < 0 || chunk >= t.numLeaves {
		return Proof{}, fmt.Errorf("merkle: proof chunk %d out of range [0,%d)", chunk, t.numLeaves)
	}
	p := Proof{
		Chunk:    chunk,
		Leaf:     t.nodes[t.leafBase+chunk],
		Siblings: make([]murmur3.Digest, 0, t.depth),
	}
	node := t.leafBase + chunk
	for node > 0 {
		var sibling int
		if node%2 == 1 { // left child: sibling is node+1
			sibling = node + 1
		} else {
			sibling = node - 1
		}
		p.Siblings = append(p.Siblings, t.nodes[sibling])
		node = (node - 1) / 2
	}
	return p, nil
}

// VerifyProof recomputes the root from a proof and reports whether it
// matches the expected root digest.
func VerifyProof(root murmur3.Digest, p Proof) bool {
	depth := len(p.Siblings)
	leafBase := (1 << depth) - 1
	if p.Chunk < 0 || p.Chunk > leafBase {
		return false
	}
	node := leafBase + p.Chunk
	digest := p.Leaf
	for _, sib := range p.Siblings {
		if node%2 == 1 {
			digest = murmur3.HashPair(digest, sib)
		} else {
			digest = murmur3.HashPair(sib, digest)
		}
		node = (node - 1) / 2
	}
	return digest == root
}

// ProofSize returns the serialized size of a proof in bytes.
func (p Proof) ProofSize() int {
	return murmur3.DigestSize * (1 + len(p.Siblings))
}
