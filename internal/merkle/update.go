package merkle

import (
	"fmt"
	"sort"

	"repro/internal/device"
	"repro/internal/murmur3"
)

// LeafUpdate replaces the digest of one chunk.
type LeafUpdate struct {
	// Chunk is the leaf index.
	Chunk int
	// Digest is the new leaf digest.
	Digest murmur3.Digest
}

// Update applies leaf updates and recomputes exactly the interior nodes on
// the paths from the changed leaves to the root, level-synchronously and
// in parallel — the incremental variant of Build for online comparison,
// where consecutive checkpoints share most chunks and rehashing the whole
// tree would waste the very work the method is designed to avoid.
//
// It returns the number of interior nodes rehashed (≤ changed × depth,
// with shared path prefixes deduplicated).
func (t *Tree) Update(updates []LeafUpdate, exec device.Executor) (int, error) {
	if len(updates) == 0 {
		return 0, nil
	}
	if exec == nil {
		exec = device.Serial{}
	}
	// Apply leaves and collect dirty parent indices.
	dirty := make([]int32, 0, len(updates))
	seen := make(map[int32]struct{}, len(updates))
	for _, u := range updates {
		if u.Chunk < 0 || u.Chunk >= t.numLeaves {
			return 0, fmt.Errorf("merkle: leaf update chunk %d out of range [0,%d)", u.Chunk, t.numLeaves)
		}
		node := int32(t.leafBase + u.Chunk)
		t.nodes[node] = u.Digest
		if node == 0 {
			continue // single-leaf tree: the leaf is the root
		}
		parent := (node - 1) / 2
		if _, ok := seen[parent]; !ok {
			seen[parent] = struct{}{}
			dirty = append(dirty, parent)
		}
	}
	rehashed := 0
	level := t.depth - 1
	for len(dirty) > 0 && level >= 0 {
		// Deterministic order within the level.
		sort.Slice(dirty, func(a, b int) bool { return dirty[a] < dirty[b] })
		batch := dirty
		exec.For(len(batch), func(i int) {
			n := batch[i]
			t.nodes[n] = murmur3.HashPair(t.nodes[2*n+1], t.nodes[2*n+2])
		})
		rehashed += len(batch)
		// Parents of this level's dirty nodes.
		next := make([]int32, 0, (len(batch)+1)/2)
		nseen := make(map[int32]struct{}, len(batch))
		for _, n := range batch {
			if n == 0 {
				continue
			}
			p := (n - 1) / 2
			if _, ok := nseen[p]; !ok {
				nseen[p] = struct{}{}
				next = append(next, p)
			}
		}
		dirty = next
		level--
	}
	return rehashed, nil
}
