package merkle

import (
	"bytes"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/murmur3"
)

// leafDigests builds deterministic fake leaf digests; index i's digest is
// the hash of its index, optionally perturbed for the indices in mutate.
func leafDigests(n int, mutate map[int]bool) []murmur3.Digest {
	out := make([]murmur3.Digest, n)
	for i := 0; i < n; i++ {
		b := []byte{byte(i), byte(i >> 8), byte(i >> 16)}
		if mutate[i] {
			b = append(b, 0xff)
		}
		out[i] = murmur3.SumDigest(b, murmur3.Digest{})
	}
	return out
}

func buildTree(t *testing.T, dataLen int64, chunkSize int, mutate map[int]bool) *Tree {
	t.Helper()
	n := int((dataLen + int64(chunkSize) - 1) / int64(chunkSize))
	tr, err := New(dataLen, chunkSize, leafDigests(n, mutate))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tr.Build(device.Serial{})
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(100, 0, nil); err == nil {
		t.Error("chunkSize=0 accepted")
	}
	if _, err := New(0, 16, nil); err == nil {
		t.Error("dataLen=0 accepted")
	}
	if _, err := New(100, 16, leafDigests(3, nil)); err == nil {
		t.Error("wrong leaf count accepted (want 7)")
	}
}

func TestGeometry(t *testing.T) {
	tr := buildTree(t, 1000, 100, nil) // 10 leaves -> padded 16, depth 4
	if tr.NumChunks() != 10 {
		t.Errorf("NumChunks = %d", tr.NumChunks())
	}
	if tr.Depth() != 4 {
		t.Errorf("Depth = %d", tr.Depth())
	}
	if tr.ChunkSize() != 100 || tr.DataLen() != 1000 {
		t.Error("accessors wrong")
	}
	off, n := tr.ChunkRange(9)
	if off != 900 || n != 100 {
		t.Errorf("ChunkRange(9) = (%d,%d)", off, n)
	}
	// Short final chunk.
	tr2 := buildTree(t, 950, 100, nil)
	off, n = tr2.ChunkRange(9)
	if off != 900 || n != 50 {
		t.Errorf("short ChunkRange(9) = (%d,%d)", off, n)
	}
}

func TestSingleLeafTree(t *testing.T) {
	tr := buildTree(t, 64, 128, nil)
	if tr.NumChunks() != 1 || tr.Depth() != 0 {
		t.Errorf("single leaf: chunks=%d depth=%d", tr.NumChunks(), tr.Depth())
	}
	if tr.Root() != tr.Leaf(0) {
		t.Error("root of single-leaf tree should equal the leaf")
	}
}

func TestBuildParallelMatchesSerial(t *testing.T) {
	leaves := leafDigests(33, nil)
	a, err := New(33*64, 64, leaves)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(33*64, 64, leaves)
	if err != nil {
		t.Fatal(err)
	}
	a.Build(device.Serial{})
	b.Build(device.NewParallel(4))
	if a.Root() != b.Root() {
		t.Error("parallel build root differs from serial build root")
	}
	// nil executor defaults to serial
	c, _ := New(33*64, 64, leaves)
	c.Build(nil)
	if c.Root() != a.Root() {
		t.Error("nil-executor build differs")
	}
}

func TestRootSensitivity(t *testing.T) {
	a := buildTree(t, 64*64, 64, nil)
	b := buildTree(t, 64*64, 64, map[int]bool{17: true})
	if a.Root() == b.Root() {
		t.Error("root insensitive to a leaf change")
	}
}

func TestDiffIdentical(t *testing.T) {
	a := buildTree(t, 10000, 64, nil)
	b := buildTree(t, 10000, 64, nil)
	for _, start := range []int{0, 2, a.Depth()} {
		chunks, compared, err := Diff(a, b, start, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunks) != 0 {
			t.Errorf("start=%d: identical trees diff = %v", start, chunks)
		}
		if compared <= 0 {
			t.Errorf("start=%d: no nodes compared", start)
		}
	}
}

func TestDiffFindsExactChunks(t *testing.T) {
	mutate := map[int]bool{0: true, 7: true, 41: true, 99: true}
	a := buildTree(t, 100*32, 32, nil)
	b := buildTree(t, 100*32, 32, mutate)
	for _, start := range []int{0, 1, 3, 5, a.Depth()} {
		chunks, _, err := Diff(a, b, start, device.NewParallel(3))
		if err != nil {
			t.Fatal(err)
		}
		want := []int{0, 7, 41, 99}
		sort.Ints(chunks)
		if len(chunks) != len(want) {
			t.Fatalf("start=%d: diff = %v, want %v", start, chunks, want)
		}
		for i := range want {
			if chunks[i] != want[i] {
				t.Fatalf("start=%d: diff = %v, want %v", start, chunks, want)
			}
		}
	}
}

func TestDiffPruningReducesWork(t *testing.T) {
	// One changed chunk out of 1024: pruned BFS must visit far fewer nodes
	// than the whole tree.
	a := buildTree(t, 1024*16, 16, nil)
	b := buildTree(t, 1024*16, 16, map[int]bool{512: true})
	_, compared, err := Diff(a, b, a.DefaultStartLevel(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	totalNodes := int64(2*1024 - 1)
	if compared >= totalNodes/4 {
		t.Errorf("pruned BFS compared %d of %d nodes", compared, totalNodes)
	}
}

func TestDiffStartLevelClamped(t *testing.T) {
	a := buildTree(t, 8*16, 16, nil)
	b := buildTree(t, 8*16, 16, map[int]bool{3: true})
	chunks, _, err := Diff(a, b, 99, nil) // beyond leaf level: clamp
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 1 || chunks[0] != 3 {
		t.Errorf("clamped diff = %v", chunks)
	}
	chunks, _, err = Diff(a, b, -5, nil) // below root: clamp
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 1 || chunks[0] != 3 {
		t.Errorf("negative-start diff = %v", chunks)
	}
}

func TestDiffGeometryMismatch(t *testing.T) {
	a := buildTree(t, 1000, 100, nil)
	b := buildTree(t, 1000, 50, nil)
	if _, _, err := Diff(a, b, 0, nil); !errors.Is(err, ErrGeometry) {
		t.Errorf("geometry mismatch error = %v", err)
	}
	c := buildTree(t, 900, 100, nil)
	if _, _, err := Diff(a, c, 0, nil); !errors.Is(err, ErrGeometry) {
		t.Errorf("dataLen mismatch error = %v", err)
	}
}

func TestDefaultStartLevel(t *testing.T) {
	tr := buildTree(t, 1<<20, 1<<10, nil) // 1024 leaves, depth 10
	if lvl := tr.DefaultStartLevel(1); lvl < 1 || lvl > tr.Depth() {
		t.Errorf("start level %d out of range", lvl)
	}
	// Wide parallelism clamps to leaf level.
	if lvl := tr.DefaultStartLevel(1 << 20); lvl != tr.Depth() {
		t.Errorf("start level %d, want leaf level %d", lvl, tr.Depth())
	}
	// Width at chosen level must be >= 4*parallelism when not clamped.
	lvl := tr.DefaultStartLevel(8)
	if 1<<lvl < 32 {
		t.Errorf("level %d has width %d < 32", lvl, 1<<lvl)
	}
}

func TestQuickDiffMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(nLeaves16 uint8, nMut uint8, startSeed uint8) bool {
		n := int(nLeaves16%200) + 1
		mutate := make(map[int]bool)
		for i := 0; i < int(nMut%16); i++ {
			mutate[rng.Intn(n)] = true
		}
		chunkSize := 64
		dataLen := int64(n * chunkSize)
		a, err1 := New(dataLen, chunkSize, leafDigests(n, nil))
		b, err2 := New(dataLen, chunkSize, leafDigests(n, mutate))
		if err1 != nil || err2 != nil {
			return false
		}
		a.Build(nil)
		b.Build(nil)
		start := int(startSeed) % (a.Depth() + 1)
		got, _, err := Diff(a, b, start, nil)
		if err != nil {
			return false
		}
		want := make([]int, 0, len(mutate))
		for i := range mutate {
			want = append(want, i)
		}
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	tr := buildTree(t, 12345, 128, map[int]bool{5: true})
	var buf bytes.Buffer
	nw, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nw != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", nw, buf.Len())
	}
	if nw != tr.MetadataBytes() {
		t.Errorf("MetadataBytes = %d, actual %d", tr.MetadataBytes(), nw)
	}
	got, nr, err := ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if nr != nw {
		t.Errorf("ReadFrom consumed %d, want %d", nr, nw)
	}
	if got.Root() != tr.Root() || got.NumChunks() != tr.NumChunks() ||
		got.ChunkSize() != tr.ChunkSize() || got.DataLen() != tr.DataLen() {
		t.Error("round trip lost tree state")
	}
	chunks, _, err := Diff(tr, got, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 0 {
		t.Errorf("round-tripped tree differs: %v", chunks)
	}
}

func TestReadFromRejectsCorruption(t *testing.T) {
	tr := buildTree(t, 4096, 256, nil)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	flip := func(i int) []byte {
		c := make([]byte, len(good))
		copy(c, good)
		c[i] ^= 0x01
		return c
	}

	if _, _, err := ReadFrom(bytes.NewReader(flip(0))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic error = %v", err)
	}
	if _, _, err := ReadFrom(bytes.NewReader(flip(4))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad version error = %v", err)
	}
	// Flip a node byte: CRC must catch it.
	if _, _, err := ReadFrom(bytes.NewReader(flip(headerSize + 3))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupted node error = %v", err)
	}
	// Truncated stream.
	if _, _, err := ReadFrom(bytes.NewReader(good[:len(good)-8])); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, _, err := ReadFrom(bytes.NewReader(good[:10])); err == nil {
		t.Error("truncated header accepted")
	}
}

func BenchmarkBuild1024Leaves(b *testing.B) {
	leaves := leafDigests(1024, nil)
	tr, err := New(1024*4096, 4096, leaves)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Build(device.Serial{})
	}
}

func BenchmarkDiffOneChange4096Leaves(b *testing.B) {
	a := mustTree(b, 4096)
	c := mustTreeMut(b, 4096, map[int]bool{2048: true})
	start := a.DefaultStartLevel(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Diff(a, c, start, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func mustTree(tb testing.TB, n int) *Tree {
	tr, err := New(int64(n)*64, 64, leafDigests(n, nil))
	if err != nil {
		tb.Fatal(err)
	}
	tr.Build(nil)
	return tr
}

func mustTreeMut(tb testing.TB, n int, m map[int]bool) *Tree {
	tr, err := New(int64(n)*64, 64, leafDigests(n, m))
	if err != nil {
		tb.Fatal(err)
	}
	tr.Build(nil)
	return tr
}
