package merkle

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/murmur3"
)

// nodesEqual compares every node of two trees — root equality alone could
// mask a stale interior node whose parent was coincidentally recomputed
// from fresh siblings.
func nodesEqual(a, b *Tree) (int, bool) {
	if len(a.nodes) != len(b.nodes) {
		return -1, false
	}
	for i := range a.nodes {
		if a.nodes[i] != b.nodes[i] {
			return i, false
		}
	}
	return -1, true
}

// TestUpdateEquivalenceProperty drives Update against a full rebuild under
// randomized seeded dirty-leaf sets: tree sizes spanning the padding edge
// cases (powers of two ±1), dirty fractions from zero through all-dirty,
// serial and parallel executors. Equivalence is asserted on the entire
// node array, not just the root.
func TestUpdateEquivalenceProperty(t *testing.T) {
	sizes := []int{1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65, 1000, 1024, 1025}
	fracs := []float64{0, 0.01, 0.1, 0.5, 0.9, 1}
	execs := map[string]device.Executor{"serial": nil, "parallel": device.NewParallel(4)}

	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		for _, n := range sizes {
			for _, frac := range fracs {
				// Seeded random dirty set of round(frac*n) distinct leaves.
				k := int(frac*float64(n) + 0.5)
				perm := rng.Perm(n)
				updates := make([]LeafUpdate, 0, k)
				ref := leafDigests(n, nil)
				for _, c := range perm[:k] {
					d := murmur3.SumDigest([]byte{byte(c), byte(c >> 8), byte(seed), 0xD1}, murmur3.Digest{})
					updates = append(updates, LeafUpdate{Chunk: c, Digest: d})
					ref[c] = d
				}
				for name, exec := range execs {
					t.Run(fmt.Sprintf("n=%d/frac=%v/seed=%d/%s", n, frac, seed, name), func(t *testing.T) {
						tr, err := New(int64(n)*16, 16, leafDigests(n, nil))
						if err != nil {
							t.Fatal(err)
						}
						tr.Build(exec)
						base := tr.Clone()
						rehashed, err := tr.Update(updates, exec)
						if err != nil {
							t.Fatal(err)
						}
						if k == 0 && rehashed != 0 {
							t.Errorf("zero-dirty update rehashed %d nodes", rehashed)
						}

						want, err := New(int64(n)*16, 16, ref)
						if err != nil {
							t.Fatal(err)
						}
						want.Build(exec)
						if i, ok := nodesEqual(tr, want); !ok {
							t.Fatalf("node %d differs from full rebuild (n=%d k=%d)", i, n, k)
						}

						// Clone isolation: the pre-update snapshot is intact.
						fresh, err := New(int64(n)*16, 16, leafDigests(n, nil))
						if err != nil {
							t.Fatal(err)
						}
						fresh.Build(exec)
						if i, ok := nodesEqual(base, fresh); !ok {
							t.Fatalf("Update mutated the clone's source at node %d", i)
						}
					})
				}
			}
		}
	}
}

// TestUpdateAllDirtyCostsFullInterior pins the all-dirty edge: updating
// every leaf rehashes exactly the interior nodes a full Build would.
func TestUpdateAllDirtyCostsFullInterior(t *testing.T) {
	for _, n := range []int{1, 2, 5, 64, 100} {
		tr, err := New(int64(n)*16, 16, leafDigests(n, nil))
		if err != nil {
			t.Fatal(err)
		}
		tr.Build(nil)
		updates := make([]LeafUpdate, n)
		for i := range updates {
			updates[i] = LeafUpdate{Chunk: i, Digest: murmur3.SumDigest([]byte{byte(i), 0xA7}, murmur3.Digest{})}
		}
		rehashed, err := tr.Update(updates, nil)
		if err != nil {
			t.Fatal(err)
		}
		interior := len(tr.nodes) - (len(tr.nodes) + 1) / 2
		if n == 1 {
			interior = 0
		}
		if rehashed > len(tr.nodes) {
			t.Errorf("n=%d: rehashed %d > total nodes %d", n, rehashed, len(tr.nodes))
		}
		if n > 1 && rehashed < interior {
			// All-dirty must touch every interior node above a real leaf —
			// padding subtrees (all-padding parents) may legitimately be
			// skipped, so compare against the rebuild's interior count only
			// when the tree is exactly a power of two.
			if n&(n-1) == 0 && rehashed != interior {
				t.Errorf("n=%d: all-dirty rehashed %d interior nodes, full rebuild computes %d", n, rehashed, interior)
			}
		}
	}
}
