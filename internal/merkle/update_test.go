package merkle

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/murmur3"
)

func digestOf(parts ...byte) murmur3.Digest {
	return murmur3.SumDigest(parts, murmur3.Digest{})
}

func TestUpdateMatchesFullRebuild(t *testing.T) {
	const n = 100
	leaves := leafDigests(n, nil)
	tr, err := New(int64(n)*32, 32, leaves)
	if err != nil {
		t.Fatal(err)
	}
	tr.Build(nil)

	// Mutate three leaves incrementally.
	updates := []LeafUpdate{
		{Chunk: 0, Digest: digestOf(1)},
		{Chunk: 50, Digest: digestOf(2)},
		{Chunk: 99, Digest: digestOf(3)},
	}
	rehashed, err := tr.Update(updates, device.NewParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	if rehashed == 0 {
		t.Error("no interior nodes rehashed")
	}

	// Reference: full rebuild from the same mutated leaves.
	ref := leafDigests(n, nil)
	ref[0], ref[50], ref[99] = digestOf(1), digestOf(2), digestOf(3)
	want, err := New(int64(n)*32, 32, ref)
	if err != nil {
		t.Fatal(err)
	}
	want.Build(nil)

	if tr.Root() != want.Root() {
		t.Error("incremental root differs from full rebuild")
	}
	chunks, _, err := Diff(tr, want, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 0 {
		t.Errorf("incremental tree differs from rebuild at chunks %v", chunks)
	}
}

func TestUpdateCheaperThanRebuild(t *testing.T) {
	const n = 1 << 14
	tr := mustTree(t, n)
	rehashed, err := tr.Update([]LeafUpdate{{Chunk: 7, Digest: digestOf(9)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One leaf touches exactly depth interior nodes.
	if rehashed != tr.Depth() {
		t.Errorf("rehashed %d nodes, want depth=%d", rehashed, tr.Depth())
	}
}

func TestUpdateSharedPathsDeduplicated(t *testing.T) {
	tr := mustTree(t, 1024)
	// Sibling leaves share every interior ancestor.
	rehashed, err := tr.Update([]LeafUpdate{
		{Chunk: 0, Digest: digestOf(1)},
		{Chunk: 1, Digest: digestOf(2)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rehashed != tr.Depth() {
		t.Errorf("sibling update rehashed %d, want %d (shared path)", rehashed, tr.Depth())
	}
}

func TestUpdateValidation(t *testing.T) {
	tr := mustTree(t, 16)
	if _, err := tr.Update([]LeafUpdate{{Chunk: -1}}, nil); err == nil {
		t.Error("negative chunk accepted")
	}
	if _, err := tr.Update([]LeafUpdate{{Chunk: 16}}, nil); err == nil {
		t.Error("out-of-range chunk accepted")
	}
	if n, err := tr.Update(nil, nil); err != nil || n != 0 {
		t.Errorf("empty update: %d, %v", n, err)
	}
}

func TestUpdateSingleLeafTree(t *testing.T) {
	tr, err := New(10, 32, []murmur3.Digest{digestOf(0)})
	if err != nil {
		t.Fatal(err)
	}
	tr.Build(nil)
	if _, err := tr.Update([]LeafUpdate{{Chunk: 0, Digest: digestOf(5)}}, nil); err != nil {
		t.Fatal(err)
	}
	if tr.Root() != digestOf(5) {
		t.Error("single-leaf root not updated")
	}
}

func TestQuickUpdateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(nSeed, kSeed uint8) bool {
		n := int(nSeed%120) + 2
		k := int(kSeed%8) + 1
		tr, err := New(int64(n)*16, 16, leafDigests(n, nil))
		if err != nil {
			return false
		}
		tr.Build(nil)
		ref := leafDigests(n, nil)
		updates := make([]LeafUpdate, 0, k)
		for i := 0; i < k; i++ {
			c := rng.Intn(n)
			d := digestOf(byte(c), byte(i), 0xEE)
			updates = append(updates, LeafUpdate{Chunk: c, Digest: d})
			ref[c] = d
		}
		if _, err := tr.Update(updates, nil); err != nil {
			return false
		}
		want, err := New(int64(n)*16, 16, ref)
		if err != nil {
			return false
		}
		want.Build(nil)
		return tr.Root() == want.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUpdateOneLeaf16KLeaves(b *testing.B) {
	tr := mustTree(b, 1<<14)
	up := []LeafUpdate{{Chunk: 1 << 13, Digest: digestOf(1)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Update(up, nil); err != nil {
			b.Fatal(err)
		}
	}
}
