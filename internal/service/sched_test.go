package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/retry"
)

// testPlane builds an owned plane with a tight scheduler for admission
// tests; nothing is executed, so Close never blocks.
func testPlane(t *testing.T, cfg Config) *Plane {
	t.Helper()
	p := New(cfg)
	t.Cleanup(func() {
		if err := p.Close(); err != nil {
			t.Errorf("plane close: %v", err)
		}
	})
	return p
}

// wantPrice recomputes the deterministic backpressure price the plane's
// scheduler must attach to a rejection at the given pressure.
func wantPrice(cfg Config, pressure int) time.Duration {
	cfg = cfg.withDefaults()
	price := retry.Policy{
		MaxAttempts: pressureCap + 1,
		BaseDelay:   cfg.RetryAfterBase,
		MaxDelay:    cfg.RetryAfterMax,
		Multiplier:  2,
	}
	if pressure > pressureCap {
		pressure = pressureCap
	}
	d, _ := price.Next(pressure)
	return d
}

func TestAdmissionTenantQuotaDeterministic(t *testing.T) {
	cfg := Config{MaxInFlight: 4, MaxQueued: 4, TenantPending: 1}
	p := testPlane(t, cfg)
	tn := p.tenantState("a")

	first, err := p.sched.reserve(tn)
	if err != nil {
		t.Fatal(err)
	}

	// Quota spent: the rejection is priced, and the price is a pure
	// function of the pressure — two identical rejections agree exactly.
	var prices [2]time.Duration
	for i := range prices {
		_, err := p.sched.reserve(tn)
		var adm *AdmissionError
		if !errors.As(err, &adm) {
			t.Fatalf("over-quota reserve %d: got %v, want *AdmissionError", i, err)
		}
		if adm.Tenant != "a" || adm.Pressure != 1 {
			t.Fatalf("admission error: %+v", adm)
		}
		prices[i] = adm.RetryAfter
	}
	if prices[0] != prices[1] {
		t.Fatalf("rejection price not deterministic: %v vs %v", prices[0], prices[1])
	}
	if want := wantPrice(cfg, 1); prices[0] != want || want <= 0 {
		t.Fatalf("rejection price %v, want %v (> 0)", prices[0], want)
	}

	// Another tenant is unaffected by tenant a's quota.
	other, err := p.sched.reserve(p.tenantState("b"))
	if err != nil {
		t.Fatalf("tenant b rejected by tenant a's quota: %v", err)
	}
	p.sched.release(other)
	p.sched.release(first)

	// Released quota admits again.
	again, err := p.sched.reserve(tn)
	if err != nil {
		t.Fatalf("post-release reserve: %v", err)
	}
	p.sched.release(again)
}

func TestAdmissionQueueFullPricedByDepth(t *testing.T) {
	cfg := Config{MaxInFlight: 1, MaxQueued: 2, TenantPending: 8}
	p := testPlane(t, cfg)
	tn := p.tenantState("a")

	running, err := p.sched.reserve(tn)
	if err != nil {
		t.Fatal(err)
	}
	var queued []*ticket
	for i := 0; i < 2; i++ {
		q, err := p.sched.reserve(tn)
		if err != nil {
			t.Fatalf("queueing reserve %d: %v", i, err)
		}
		queued = append(queued, q)
	}

	// Queue full: rejected with the queue depth as pressure.
	_, err = p.sched.reserve(tn)
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("queue-full reserve: got %v, want *AdmissionError", err)
	}
	if adm.Pressure != 3 {
		t.Fatalf("queue-full pressure %d, want 3", adm.Pressure)
	}
	if want := wantPrice(cfg, 3); adm.RetryAfter != want {
		t.Fatalf("queue-full price %v, want %v", adm.RetryAfter, want)
	}
	// Deeper pressure prices strictly higher (within the cap), so
	// backpressure actually escalates.
	if !(wantPrice(cfg, 3) > wantPrice(cfg, 1)) {
		t.Fatalf("price does not escalate: p3=%v p1=%v", wantPrice(cfg, 3), wantPrice(cfg, 1))
	}

	// FIFO handoff: releasing the running ticket grants the head of the
	// queue, in order.
	ctx := context.Background()
	p.sched.release(running)
	if err := p.sched.wait(ctx, queued[0]); err != nil {
		t.Fatalf("first queued ticket: %v", err)
	}
	p.sched.release(queued[0])
	if err := p.sched.wait(ctx, queued[1]); err != nil {
		t.Fatalf("second queued ticket: %v", err)
	}
	p.sched.release(queued[1])
}

func TestAdmissionWaitCancel(t *testing.T) {
	p := testPlane(t, Config{MaxInFlight: 1, MaxQueued: 4, TenantPending: 4})
	tn := p.tenantState("a")
	running, err := p.sched.reserve(tn)
	if err != nil {
		t.Fatal(err)
	}
	q, err := p.sched.reserve(tn)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.sched.wait(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled wait: %v", err)
	}
	// The withdrawn ticket released its pending count: the tenant can
	// fill the queue again.
	q2, err := p.sched.reserve(tn)
	if err != nil {
		t.Fatalf("reserve after withdrawal: %v", err)
	}
	p.sched.release(running)
	if err := p.sched.wait(context.Background(), q2); err != nil {
		t.Fatal(err)
	}
	p.sched.release(q2)
}

func TestPlaneClosedRejectsEverything(t *testing.T) {
	p := New(Config{MaxInFlight: 1, TenantPending: 4})
	tn := p.tenantState("a")
	q, err := p.sched.reserve(tn) // grant
	if err != nil {
		t.Fatal(err)
	}
	queued, err := p.sched.reserve(tn) // queued behind it
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan error, 1)
	go func() { closed <- p.Close() }()

	// Close rejects the queued ticket with ErrPlaneClosed...
	if err := p.sched.wait(context.Background(), queued); !errors.Is(err, ErrPlaneClosed) {
		t.Fatalf("queued ticket after close: %v", err)
	}
	// ...and waits for the in-flight ticket to release.
	p.sched.release(q)
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}

	if _, err := p.sched.reserve(tn); !errors.Is(err, ErrPlaneClosed) {
		t.Fatalf("reserve on closed plane: %v", err)
	}
	// Idempotent.
	if err := p.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestAdmissionErrorIsTransient(t *testing.T) {
	adm := &AdmissionError{Tenant: "a", Reason: "r", Pressure: 2, RetryAfter: time.Millisecond}
	if adm.RetryClass() != retry.Transient {
		t.Fatalf("admission errors must classify Transient for retry.Do")
	}
	if adm.Error() == "" {
		t.Fatal("empty error text")
	}
}
