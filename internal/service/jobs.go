package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/compare"
	"repro/internal/pfs"
	"repro/internal/shard"
	"repro/internal/wal"
)

// JobKind selects what a submitted job runs.
type JobKind string

// Job kinds.
const (
	// JobCompare is a two-checkpoint Merkle comparison (Spec.A vs
	// Spec.B).
	JobCompare JobKind = "compare"
	// JobGroup is an N-run group comparison (Spec.Baseline, Spec.Runs,
	// Spec.Topology).
	JobGroup JobKind = "group"
	// JobShard is a subtree-sharded comparison (Spec.A vs Spec.B over
	// Spec.Shard workers).
	JobShard JobKind = "shard"
)

// JobSpec describes one asynchronous submission.
type JobSpec struct {
	Kind     JobKind
	A, B     string
	Baseline string
	Runs     []string
	Topology compare.Topology
	Shard    shard.Config
	Options  compare.Options
}

// validate checks the spec's shape for its kind.
func (sp JobSpec) validate() error {
	switch sp.Kind {
	case JobCompare, JobShard:
		if sp.A == "" || sp.B == "" {
			return fmt.Errorf("service: %s job needs two checkpoint names", sp.Kind)
		}
	case JobGroup:
		if sp.Baseline == "" || len(sp.Runs) == 0 {
			return fmt.Errorf("service: group job needs a baseline and at least one run")
		}
	default:
		return fmt.Errorf("service: unknown job kind %q", sp.Kind)
	}
	return nil
}

// names returns every run-bearing name the spec touches, for binding
// validation.
func (sp JobSpec) names() []string {
	switch sp.Kind {
	case JobGroup:
		return append([]string{sp.Baseline}, sp.Runs...)
	default:
		return []string{sp.A, sp.B}
	}
}

// JobState is a job's lifecycle position.
type JobState int

// Job states, in order.
const (
	// JobQueued: admitted, waiting for an execution slot.
	JobQueued JobState = iota
	// JobRunning: holding a slot, comparison in progress.
	JobRunning
	// JobDone: verdict published; Done() is closed.
	JobDone
)

// String returns the state's wire name.
func (st JobState) String() string {
	switch st {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	default:
		return "unknown"
	}
}

// Job is one asynchronous submission in flight. Snapshot its state with
// Status; wait for the verdict on Done.
type Job struct {
	id     uint64
	kind   JobKind
	tenant string
	done   chan struct{}

	mu      sync.Mutex
	state   JobState
	verdict Verdict
	err     error
	result  *compare.Result
	group   *compare.GroupReport
	shardst *shard.Stats
}

// jobIDs numbers jobs process-wide.
var jobIDs atomic.Uint64

// ID returns the job's plane-unique identifier.
func (j *Job) ID() uint64 { return j.id }

// Done closes when the verdict is published.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the pair result for compare/shard jobs, nil before
// completion or for group jobs.
func (j *Job) Result() *compare.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Group returns the group report for group jobs, nil otherwise.
func (j *Job) Group() *compare.GroupReport {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.group
}

// ShardStats returns the schedule stats for shard jobs, nil otherwise.
func (j *Job) ShardStats() *shard.Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.shardst
}

// JobStatus is a wire-friendly snapshot of one job.
type JobStatus struct {
	ID       uint64 `json:"id"`
	Kind     string `json:"kind"`
	Tenant   string `json:"tenant"`
	State    string `json:"state"`
	Verdict  string `json:"verdict,omitempty"`
	ExitCode int    `json:"exitCode"`
	Error    string `json:"error,omitempty"`
	// DiffCount and Degraded summarize the verdict's evidence once
	// done: total out-of-bound elements (pair jobs; -1 is "diverged,
	// count unknown") and whether any path degraded.
	DiffCount int64 `json:"diffCount,omitempty"`
	Degraded  bool  `json:"degraded,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:     j.id,
		Kind:   string(j.kind),
		Tenant: j.tenant,
		State:  j.state.String(),
	}
	if j.state == JobDone {
		st.Verdict = j.verdict.String()
		st.ExitCode = j.verdict.ExitCode()
		if j.err != nil {
			st.Error = j.err.Error()
		}
		switch {
		case j.result != nil:
			st.DiffCount = j.result.DiffCount
			st.Degraded = j.result.Degraded || j.result.UnverifiedChunks > 0
		case j.group != nil:
			for i := range j.group.Pairs {
				st.DiffCount += j.group.Pairs[i].Result.DiffCount
			}
			st.Degraded = j.group.Degraded()
		}
	}
	return st
}

// Submit runs a job asynchronously: options normalization and binding
// validation happen synchronously (a violation is a submission error),
// as does the admission decision (an *AdmissionError carries the
// backpressure price — the daemon's 429). On a journaled plane the
// accepted record is durable before Submit returns — durability is part
// of acceptance, so a journal failure rolls the admission back and the
// submission fails. The returned job is already queued or running; its
// goroutine is joined by Plane.Close, which also fails queued jobs with
// ErrPlaneClosed instead of abandoning them.
func (s *Session) Submit(store *pfs.Store, spec JobSpec) (*Job, error) {
	if err := spec.validate(); err != nil {
		s.reject()
		return nil, err
	}
	s.submitted()
	opts, err := s.prepare(spec.Options, spec.names()...)
	if err != nil {
		return nil, err
	}
	spec.Options = opts
	t, err := s.plane.sched.reserve(s.tenant)
	if err != nil {
		s.reject()
		return nil, err
	}
	j := &Job{
		id:     jobIDs.Add(1),
		kind:   spec.Kind,
		tenant: s.tenant.id,
		done:   make(chan struct{}),
	}
	if err := s.journalAppend(acceptedRecord(j.id, j.tenant, spec)); err != nil {
		s.plane.sched.abort(t)
		s.reject()
		return nil, fmt.Errorf("service: journal accepted record: %w", err)
	}
	s.plane.jobs.Add(1)
	//lint:ignore gocheck joined by Plane.Close via plane.jobs.Wait
	go s.runJob(j, t, store, spec)
	return j, nil
}

// resume re-admits one accepted-but-unfinished journal record under its
// original job ID (Plane.Recover's re-admission path). The accepted
// record already exists in the ledger, so none is appended; started and
// verdict records chain normally as the job re-runs.
func (s *Session) resume(store *pfs.Store, rec wal.Record) (*Job, error) {
	spec, err := specFromRecord(rec)
	if err != nil {
		return nil, err
	}
	s.submitted()
	opts, err := s.prepare(spec.Options, spec.names()...)
	if err != nil {
		return nil, err
	}
	spec.Options = opts
	t, err := s.plane.sched.reserve(s.tenant)
	if err != nil {
		s.reject()
		return nil, err
	}
	j := &Job{
		id:     rec.Job,
		kind:   spec.Kind,
		tenant: s.tenant.id,
		done:   make(chan struct{}),
	}
	s.plane.jobs.Add(1)
	//lint:ignore gocheck joined by Plane.Close via plane.jobs.Wait
	go s.runJob(j, t, store, spec)
	return j, nil
}

// journalAppend appends one lifecycle record when the plane has a
// journal attached; a plane without one runs non-durably and the append
// is a no-op.
func (s *Session) journalAppend(rec wal.Record) error {
	jn := s.plane.journalHandle()
	if jn == nil {
		return nil
	}
	_, err := jn.Append(rec)
	return err
}

// runJob drives one detached job to its verdict.
func (s *Session) runJob(j *Job, t *ticket, store *pfs.Store, spec JobSpec) {
	defer s.plane.jobs.Done()
	// Detached execution is governed by the plane lifecycle, not the
	// submitting request: a canceled HTTP request must not kill the
	// admitted comparison, and Plane.Close fails the ticket instead.
	//lint:ignore ctxflow detached job outlives the submitting request; Plane.Close is its cancellation
	ctx := context.Background()
	if err := s.plane.sched.wait(ctx, t); err != nil {
		s.reject()
		// A plane-closed rejection is deliberately NOT journaled as a
		// verdict: the job stays pending in the ledger, and the next
		// life re-admits and re-runs it to its one durable verdict.
		j.publish(nil, nil, nil, err)
		return
	}
	defer s.plane.sched.release(t)
	if err := s.journalAppend(startedRecord(j.id, j.tenant, spec)); err != nil {
		s.finish(false, false, err)
		j.publish(nil, nil, nil, err)
		return
	}
	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()

	var (
		res   *compare.Result
		rep   *compare.GroupReport
		stats *shard.Stats
		err   error
	)
	switch spec.Kind {
	case JobCompare:
		res, err = s.execCompare(ctx, store, spec.A, spec.B, spec.Options)
	case JobGroup:
		rep, err = s.execGroup(ctx, store, spec.Baseline, spec.Runs, spec.Topology, spec.Options)
	case JobShard:
		res, stats, err = shard.Compare(ctx, store, spec.A, spec.B, spec.Shard, spec.Options)
		s.finishResult(res, err)
	}
	// Durable-then-visible: the verdict record reaches the ledger before
	// the verdict is published. If durability fails, the job fails for
	// THIS life only — the ledger still lists it pending, and the next
	// life re-runs it to its one durable verdict.
	var v Verdict
	if rep != nil || spec.Kind == JobGroup {
		v = GroupVerdict(rep, err)
	} else {
		v = ResultVerdict(res, err)
	}
	if jerr := s.journalAppend(verdictRecord(j.id, j.tenant, spec, v, res, rep, err)); jerr != nil {
		j.publish(nil, nil, nil, fmt.Errorf("service: journal verdict record: %w", jerr))
		return
	}
	j.publish(res, rep, stats, err)
}

// publish records the outcome and closes Done.
func (j *Job) publish(res *compare.Result, rep *compare.GroupReport, stats *shard.Stats, err error) {
	j.mu.Lock()
	j.state = JobDone
	j.err = err
	j.result = res
	j.group = rep
	j.shardst = stats
	if rep != nil || j.kind == JobGroup {
		j.verdict = GroupVerdict(rep, err)
	} else {
		j.verdict = ResultVerdict(res, err)
	}
	j.mu.Unlock()
	close(j.done)
}
