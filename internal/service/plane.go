// Package service is the lifecycle-managed plane behind every comparison
// the system serves. It replaces accidental singleton acquisition — each
// one-shot entry point lazily grabbing the process-wide pool and ring —
// with a Plane that explicitly owns the shared resources:
//
//   - one persistent device.Pool running every comparison kernel,
//   - one persistent aio.Uring serving every stage-2 scattered read,
//   - the content-addressed chunk stores (one cas.Store handle per
//     pfs.Store, opened once and shared),
//   - the stage-2 verdict memos (one CASMemo per ε),
//   - the per-tenant run catalog: immutable run bindings (code ref,
//     params, ε, dataset version) validated at submission time.
//
// Sessions opened on a plane multiplex concurrent compare/group/shard
// plans over those resources behind an admission-controlled scheduler:
// per-tenant quotas, a bounded FIFO queue, and deterministic
// reject-with-retry-after backpressure priced on the virtual clock (see
// sched.go). Startup and shutdown are deterministic — New starts nothing
// until the first comparison, Close drains in-flight work, refuses new
// admissions, and joins every resource it owns, so a closed plane leaks
// neither goroutines nor handles.
//
// The svcown lint rule keeps resource acquisition here: outside this
// package (and test files), calls to aio.Default() / device.Default()
// are forbidden — options reach internal/compare with the plane's pool
// and ring already injected.
package service

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/aio"
	"repro/internal/cas"
	"repro/internal/compare"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/wal"
)

// Config parameterizes a Plane. The zero value selects production
// defaults sized like the pre-plane process-wide singletons, so results
// and virtual prices are bit-identical to the one-shot era.
type Config struct {
	// Workers is the device pool's worker count (<= 0 selects
	// GOMAXPROCS, matching device.Default()).
	Workers int
	// QueueDepth is the ring's submission queue depth (default 256,
	// matching aio.Default(); the overlap pricing model depends on it).
	QueueDepth int
	// RingWorkers is the ring's worker count (default 4).
	RingWorkers int
	// MaxInFlight bounds the comparisons executing concurrently across
	// all tenants (default 64). Admitted work beyond it queues.
	MaxInFlight int
	// MaxQueued bounds the admission queue (default 4096). A submission
	// arriving with the queue full is rejected with a RetryAfter — the
	// queue never grows without bound.
	MaxQueued int
	// TenantPending bounds one tenant's pending (queued + running) jobs
	// (default MaxInFlight). A tenant at its quota is rejected
	// immediately regardless of global capacity.
	TenantPending int
	// RetryAfterBase and RetryAfterMax bound the backpressure price: the
	// RetryAfter attached to a rejection grows exponentially with the
	// pressure that caused it, from Base up to Max (defaults 5ms and
	// 1s), with deterministic jitter — virtual durations, never slept.
	RetryAfterBase time.Duration
	RetryAfterMax  time.Duration
}

// withDefaults fills unset knobs with the production defaults.
func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.RingWorkers <= 0 {
		c.RingWorkers = 4
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 4096
	}
	if c.TenantPending <= 0 {
		c.TenantPending = c.MaxInFlight
	}
	if c.RetryAfterBase <= 0 {
		c.RetryAfterBase = 5 * time.Millisecond
	}
	if c.RetryAfterMax <= 0 {
		c.RetryAfterMax = time.Second
	}
	return c
}

// Plane owns the shared resources every session draws on. Open sessions
// with Open; shut the plane down with Close.
type Plane struct {
	cfg   Config
	exec  *device.Pool
	ring  *aio.Uring
	owns  bool // Close tears down exec/ring (false only for Default())
	sched *sched

	// jobs joins every detached job goroutine (Session.Submit) so Close
	// returns only after the last one has published its verdict.
	jobs sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	tenants map[string]*tenant
	memos   map[uint64]*compare.CASMemo // keyed by ε bits
	stores  map[*pfs.Store]*cas.Store
	// journal is the crash-durable job ledger, attached by Recover (nil
	// for planes running without durability). See journal.go.
	journal *wal.Journal
}

// New creates a plane that owns a fresh pool and ring sized by cfg.
// Nothing starts until the first comparison; Close joins both.
func New(cfg Config) *Plane {
	cfg = cfg.withDefaults()
	return &Plane{
		cfg:     cfg,
		exec:    device.NewPool(cfg.Workers),
		ring:    aio.NewUring(cfg.QueueDepth, cfg.RingWorkers),
		owns:    true,
		sched:   newSched(cfg),
		tenants: make(map[string]*tenant),
		memos:   make(map[uint64]*compare.CASMemo),
		stores:  make(map[*pfs.Store]*cas.Store),
	}
}

// defaultPlane is the process-wide plane behind Default.
var (
	defaultPlane     *Plane
	defaultPlaneOnce sync.Once
)

// Default returns the process-wide plane used by the repro facade's
// one-shot entry points. It wraps the never-closed process singletons
// (device.Default(), aio.Default()) — the only place they are acquired —
// so facade calls share resources with pre-plane code bit-identically.
// Its Close drains admissions but leaves the singletons running.
func Default() *Plane {
	defaultPlaneOnce.Do(func() {
		cfg := Config{}.withDefaults()
		defaultPlane = &Plane{
			cfg:     cfg,
			exec:    device.Default(),
			ring:    aio.Default(),
			sched:   newSched(cfg),
			tenants: make(map[string]*tenant),
			memos:   make(map[uint64]*compare.CASMemo),
			stores:  make(map[*pfs.Store]*cas.Store),
		}
	})
	return defaultPlane
}

// Executor returns the plane's persistent kernel executor.
func (p *Plane) Executor() device.Executor { return p.exec }

// Backend returns the plane's persistent ring engine.
func (p *Plane) Backend() *aio.Uring { return p.ring }

// PeakInFlight reports the highest concurrent-execution count the
// scheduler has reached — the saturation bound MaxInFlight enforces.
func (p *Plane) PeakInFlight() int { return p.sched.peakInFlight() }

// AdmissionMetrics snapshots every tenant's cumulative admission
// counters, sorted by tenant ID — the capacity-planning view reprod
// serves on GET /v1/metrics.
func (p *Plane) AdmissionMetrics() []metrics.TenantAdmission {
	p.mu.Lock()
	tenants := make([]*tenant, 0, len(p.tenants))
	for _, t := range p.tenants {
		tenants = append(tenants, t)
	}
	p.mu.Unlock()
	out := make([]metrics.TenantAdmission, 0, len(tenants))
	p.sched.mu.Lock()
	for _, t := range tenants {
		out = append(out, metrics.TenantAdmission{
			Tenant:       t.id,
			Accepted:     t.accepted,
			Rejected:     t.rejected,
			RetryAfterMs: t.retryAfterTotal.Milliseconds(),
		})
	}
	p.sched.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Open returns a session bound to the named tenant. Sessions are cheap
// and safe for concurrent use; any number may be open per tenant, and
// they share the tenant's bindings and quota. Opening on a closed plane
// succeeds, but every submission fails with ErrPlaneClosed.
func (p *Plane) Open(tenantID string) *Session {
	return &Session{plane: p, tenant: p.tenantState(tenantID)}
}

// tenantState returns (creating on first use) the named tenant's state.
func (p *Plane) tenantState(id string) *tenant {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.tenants[id]
	if !ok {
		t = &tenant{id: id, bindings: make(map[string]Binding)}
		p.tenants[id] = t
	}
	return t
}

// Memo returns the plane-owned stage-2 verdict memo for ε, creating it
// on first use. One memo per ε is shared by every session, so a verdict
// proven once for a digest pair is replayed for every tenant comparing
// through the same CAS. Memoized replay changes a Result's read-op
// accounting, so the plane never injects a memo implicitly — callers
// (the reprod daemon) opt in via Options.Memo.
func (p *Plane) Memo(epsilon float64) *compare.CASMemo {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := epsilonBits(epsilon)
	m, ok := p.memos[key]
	if !ok {
		m = compare.NewCASMemo(epsilon)
		p.memos[key] = m
	}
	return m
}

// CAS returns the plane-owned content-addressed chunk store handle for
// store, opening (and index-replaying) it on first use. One handle per
// pfs.Store is shared by every session — cas.Store is safe for
// concurrent use, and a shared handle is what makes cross-tenant dedup
// and extent pruning see one coherent index.
func (p *Plane) CAS(ctx context.Context, store *pfs.Store) (*cas.Store, error) {
	p.mu.Lock()
	if cs, ok := p.stores[store]; ok {
		p.mu.Unlock()
		return cs, nil
	}
	p.mu.Unlock()
	// Open outside the lock: index replay does real I/O.
	cs, _, err := cas.Open(ctx, store)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if prior, ok := p.stores[store]; ok {
		return prior, nil // lost the race; share the first handle
	}
	p.stores[store] = cs
	return cs, nil
}

// NormalizeOptions is the one options-defaulting path every facade
// variant routes through: the plane's executor and ring are injected
// where the caller left Exec/Backend nil (replicating the coalescing
// wrap the pre-plane defaults applied), then the compare layer's own
// Normalize validates ε and fills the remaining defaults. The Retry
// knob is passed through un-resolved so the planners' own idempotent
// resolution sees the caller's sentinel (zero = default policy,
// negative MaxAttempts = disabled) exactly as a direct call would.
func (p *Plane) NormalizeOptions(o compare.Options) (compare.Options, error) {
	return p.normalizeOptions(o)
}

func (p *Plane) normalizeOptions(o compare.Options) (compare.Options, error) {
	if o.Exec == nil {
		o.Exec = p.exec
	}
	if o.Backend == nil {
		if o.CoalesceMaxGap < 0 {
			o.Backend = p.ring
		} else {
			o.Backend = aio.NewCoalescing(p.ring, o.CoalesceMaxGap)
		}
	}
	raw := o.Retry
	n, err := o.Normalize()
	if err != nil {
		return compare.Options{}, err
	}
	n.Retry = raw
	return n, nil
}

// Close shuts the plane down deterministically: new admissions fail with
// ErrPlaneClosed, queued submissions are rejected, in-flight comparisons
// drain to completion, detached jobs publish their verdicts, and the
// plane's own pool and ring are joined. Idempotent. The Default plane
// drains but leaves the process-wide singletons running (it does not own
// them); planes built by New verify their leak accounting and report a
// shutdown that left work behind as an error.
func (p *Plane) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()

	p.sched.close() // reject the queue, wait out in-flight work
	p.jobs.Wait()   // detached jobs finish publishing after release

	if p.owns {
		p.ring.Close()
		p.exec.Close()
	}
	if n := p.sched.inFlight(); n != 0 {
		return fmt.Errorf("service: plane closed with %d comparisons still accounted in flight", n)
	}
	return nil
}
