package service

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/compare"
	"repro/internal/errbound"
	"repro/internal/pfs"
	"repro/internal/synth"
)

const (
	svcEps   = 1e-5
	svcChunk = 4 << 10
)

func svcOpts() compare.Options {
	return compare.Options{Epsilon: svcEps, ChunkSize: svcChunk}
}

// svcEnv is a store with two perturbed runs and their saved metadata.
type svcEnv struct {
	store        *pfs.Store
	nameA, nameB string
}

func newSvcEnv(t *testing.T, elems int, seed int64) *svcEnv {
	t.Helper()
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	perturb := synth.PerturbConfig{
		Seed:          seed,
		BlockElems:    512,
		MagLo:         1e-3,
		MagHi:         1e-2,
		UntouchedFrac: 0.5,
		ChangedFrac:   0.2,
	}
	dataA, dataB := synth.RunPair(elems, 2, seed, perturb)
	fields := []ckpt.FieldSpec{
		{Name: "x", DType: errbound.Float32, Count: int64(elems)},
		{Name: "vx", DType: errbound.Float32, Count: int64(elems)},
	}
	e := &svcEnv{store: store, nameA: ckpt.Name("runA", 10, 0), nameB: ckpt.Name("runB", 10, 0)}
	for run, data := range map[string][][]byte{"runA": dataA, "runB": dataB} {
		meta := ckpt.Meta{RunID: run, Iteration: 10, Rank: 0, Fields: fields}
		if _, err := ckpt.WriteCheckpoint(store, meta, data); err != nil {
			t.Fatal(err)
		}
		m, _, err := compare.Build(fields, data, svcOpts())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := compare.SaveMetadata(store, ckpt.Name(run, 10, 0), m); err != nil {
			t.Fatal(err)
		}
	}
	store.EvictAll()
	return e
}

// scrubResult clears the timing-bearing fields (host wall time is not
// deterministic); everything else must be bit-identical across paths.
func scrubResult(r *compare.Result) *compare.Result {
	if r == nil {
		return nil
	}
	c := *r
	c.Breakdown = metricsZero(c.Breakdown)
	c.Steps = nil
	return &c
}

// metricsZero returns the zero value of the breakdown's type without
// naming it (keeps the scrubber trivially in sync with the struct).
func metricsZero[T any](T) T { var z T; return z }

func scrubGroup(rep *compare.GroupReport) *compare.GroupReport {
	if rep == nil {
		return nil
	}
	c := *rep
	c.Breakdown = metricsZero(c.Breakdown)
	c.Steps = nil
	// The pipeline's overlapped virtual time prices against shared ring
	// and cache state, and ReadOps/ReadBytes are deltas of store-global
	// counters, so concurrent submissions on one store legitimately
	// perturb all three; the serial oracle test asserts them exactly.
	c.PipelineVirtual = 0
	c.ReadOps = 0
	c.ReadBytes = 0
	c.Pairs = append([]compare.GroupPairReport(nil), rep.Pairs...)
	for i := range c.Pairs {
		c.Pairs[i].Result = scrubResult(c.Pairs[i].Result)
	}
	return &c
}

// TestSessionOracleBitIdentical proves the plane path changes no
// verdicts: a session comparison and a direct planner call (package
// fallback resources, identical shape) agree on every deterministic
// Result field, including the virtual-cost accounting.
func TestSessionOracleBitIdentical(t *testing.T) {
	e := newSvcEnv(t, 32<<10, 42)
	ctx := context.Background()

	e.store.EvictAll()
	direct, err := compare.CompareMerkle(ctx, e.store, e.nameA, e.nameB, svcOpts())
	if err != nil {
		t.Fatal(err)
	}

	p := testPlane(t, Config{})
	s := p.Open("acme")
	e.store.EvictAll()
	planed, err := s.Compare(ctx, e.store, e.nameA, e.nameB, svcOpts())
	if err != nil {
		t.Fatal(err)
	}
	if direct.DiffCount == 0 {
		t.Fatal("fixture pair does not diverge; oracle is vacuous")
	}
	if !reflect.DeepEqual(scrubResult(planed), scrubResult(direct)) {
		t.Errorf("session Compare diverges from direct call:\n plane: %+v\ndirect: %+v", scrubResult(planed), scrubResult(direct))
	}

	// Group comparisons agree too.
	e.store.EvictAll()
	directG, err := compare.GroupCompare(ctx, e.store, e.nameA, []string{e.nameB}, compare.TopologyStar, svcOpts())
	if err != nil {
		t.Fatal(err)
	}
	e.store.EvictAll()
	planedG, err := s.GroupCompare(ctx, e.store, e.nameA, []string{e.nameB}, compare.TopologyStar, svcOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scrubGroup(planedG), scrubGroup(directG)) {
		t.Error("session GroupCompare diverges from direct call")
	}
	if planedG.PipelineVirtual != directG.PipelineVirtual {
		t.Errorf("serial pipeline virtual time diverges: plane %v, direct %v", planedG.PipelineVirtual, directG.PipelineVirtual)
	}
	if planedG.ReadOps != directG.ReadOps || planedG.ReadBytes != directG.ReadBytes {
		t.Errorf("serial read accounting diverges: plane %d ops/%d B, direct %d ops/%d B",
			planedG.ReadOps, planedG.ReadBytes, directG.ReadOps, directG.ReadBytes)
	}

	st := s.Stats()
	if st.Submitted != 2 || st.Completed != 2 || st.Divergent != 2 || st.Rejected != 0 || st.Failed != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestConcurrentSessions runs mixed comparisons from several tenants'
// sessions concurrently over one plane and requires (a) every result
// bit-identical to the serial oracle, (b) per-session statistics that
// never interleave, and (c) a leak-free Close: no goroutines beyond the
// pre-plane baseline survive.
func TestConcurrentSessions(t *testing.T) {
	envC := newSvcEnv(t, 16<<10, 7)  // Compare arm
	envG := newSvcEnv(t, 16<<10, 8)  // GroupCompare arm
	envT := newSvcEnv(t, 16<<10, 9)  // CompareTreesOnly arm
	ctx := context.Background()

	// Serial oracle on the direct planner paths. Each oracle runs twice
	// and keeps the second, warm-cache result: virtual read costs (e.g.
	// GroupReport.PipelineVirtual) depend on PFS cache temperature, and
	// the concurrent rounds below all run against the warmed cache. The
	// pass also warms the compare package's persistent fallback pool and
	// ring, so the goroutine baseline below includes them.
	var wantC, wantT *compare.Result
	var wantG *compare.GroupReport
	for i := 0; i < 2; i++ {
		var err error
		wantC, err = compare.CompareMerkle(ctx, envC.store, envC.nameA, envC.nameB, svcOpts())
		if err != nil {
			t.Fatal(err)
		}
		wantG, err = compare.GroupCompare(ctx, envG.store, envG.nameA, []string{envG.nameB}, compare.TopologyStar, svcOpts())
		if err != nil {
			t.Fatal(err)
		}
		wantT, err = compare.CompareTreesOnly(ctx, envT.store, envT.nameA, envT.nameB, svcOpts())
		if err != nil {
			t.Fatal(err)
		}
	}

	base := runtime.NumGoroutine()
	p := New(Config{MaxInFlight: 4})

	const tenants = 4
	const rounds = 3
	type outcome struct {
		res   []*compare.Result
		grp   []*compare.GroupReport
		trees []*compare.Result
		stats Stats
		err   error
	}
	outcomes := make([]outcome, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := p.Open(fmt.Sprintf("tenant-%d", i))
			o := &outcomes[i]
			for r := 0; r < rounds; r++ {
				res, err := s.Compare(ctx, envC.store, envC.nameA, envC.nameB, svcOpts())
				if err != nil {
					o.err = err
					return
				}
				o.res = append(o.res, res)
				grp, err := s.GroupCompare(ctx, envG.store, envG.nameA, []string{envG.nameB}, compare.TopologyStar, svcOpts())
				if err != nil {
					o.err = err
					return
				}
				o.grp = append(o.grp, grp)
				trees, err := s.CompareTreesOnly(ctx, envT.store, envT.nameA, envT.nameB, svcOpts())
				if err != nil {
					o.err = err
					return
				}
				o.trees = append(o.trees, trees)
			}
			o.stats = s.Stats()
		}(i)
	}
	wg.Wait()

	for i := range outcomes {
		o := &outcomes[i]
		if o.err != nil {
			t.Fatalf("tenant %d: %v", i, o.err)
		}
		for r := 0; r < rounds; r++ {
			if !reflect.DeepEqual(scrubResult(o.res[r]), scrubResult(wantC)) {
				t.Errorf("tenant %d round %d: Compare diverges from serial oracle", i, r)
			}
			if !reflect.DeepEqual(scrubGroup(o.grp[r]), scrubGroup(wantG)) {
				a, _ := json.Marshal(scrubGroup(wantG))
				b, _ := json.Marshal(scrubGroup(o.grp[r]))
				t.Errorf("tenant %d round %d: GroupCompare diverges from serial oracle\nwant %s\n got %s", i, r, a, b)
			}
			if !reflect.DeepEqual(scrubResult(o.trees[r]), scrubResult(wantT)) {
				t.Errorf("tenant %d round %d: CompareTreesOnly diverges from serial oracle", i, r)
			}
		}
		// Per-session counters are exact — concurrent sessions never bleed
		// into each other's statistics.
		want := Stats{Submitted: 3 * rounds, Completed: 3 * rounds, Divergent: 3 * rounds}
		if o.stats != want {
			t.Errorf("tenant %d stats: %+v, want %+v", i, o.stats, want)
		}
	}

	if peak := p.PeakInFlight(); peak < 1 || peak > 4 {
		t.Errorf("peak in-flight %d outside [1,4]", peak)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitGoroutines(t, base)
}

// TestPlaneSaturation floods a two-slot plane far beyond its capacity
// and requires (a) every admitted comparison to succeed with the oracle
// verdict and (b) the concurrent-execution high-water mark to respect
// MaxInFlight exactly.
func TestPlaneSaturation(t *testing.T) {
	e := newSvcEnv(t, 16<<10, 21)
	ctx := context.Background()
	e.store.EvictAll()
	want, err := compare.CompareMerkle(ctx, e.store, e.nameA, e.nameB, svcOpts())
	if err != nil {
		t.Fatal(err)
	}

	p := New(Config{MaxInFlight: 2, MaxQueued: 64, TenantPending: 64})
	defer func() {
		if err := p.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	s := p.Open("flood")

	const flood = 16
	results := make([]*compare.Result, flood)
	errs := make([]error, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Compare(ctx, e.store, e.nameA, e.nameB, svcOpts())
		}(i)
	}
	wg.Wait()

	for i := 0; i < flood; i++ {
		if errs[i] != nil {
			t.Fatalf("flood compare %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(scrubResult(results[i]), scrubResult(want)) {
			t.Errorf("flood compare %d diverges from oracle", i)
		}
	}
	if peak := p.PeakInFlight(); peak > 2 {
		t.Fatalf("peak in-flight %d exceeds MaxInFlight 2", peak)
	}
	st := s.Stats()
	if st.Submitted != flood || st.Completed != flood {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSubmitAsyncJobs covers the detached-job path at the service layer:
// verdicts on the reprocmp contract, and Plane.Close joining every job
// goroutine.
func TestSubmitAsyncJobs(t *testing.T) {
	e := newSvcEnv(t, 16<<10, 33)
	p := New(Config{})
	s := p.Open("async")

	job, err := s.Submit(e.store, JobSpec{Kind: JobCompare, A: e.nameA, B: e.nameB, Options: svcOpts()})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	st := job.Status()
	if st.State != "done" || st.Verdict != "divergent" || st.ExitCode != 2 || st.DiffCount == 0 {
		t.Fatalf("job status: %+v", st)
	}
	if job.Result() == nil {
		t.Fatal("pair job without a result")
	}

	// Identical pair → clean verdict 0.
	clean, err := s.Submit(e.store, JobSpec{Kind: JobCompare, A: e.nameA, B: e.nameA, Options: svcOpts()})
	if err != nil {
		t.Fatal(err)
	}
	<-clean.Done()
	if st := clean.Status(); st.Verdict != "clean" || st.ExitCode != 0 {
		t.Fatalf("clean job status: %+v", st)
	}

	// Bad specs are rejected synchronously.
	if _, err := s.Submit(e.store, JobSpec{Kind: JobCompare, A: e.nameA, Options: svcOpts()}); err == nil {
		t.Error("one-name compare spec accepted")
	}
	if _, err := s.Submit(e.store, JobSpec{Kind: "bogus", A: e.nameA, B: e.nameB, Options: svcOpts()}); err == nil {
		t.Error("unknown kind accepted")
	}

	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// A closed plane rejects new jobs.
	if _, err := s.Submit(e.store, JobSpec{Kind: JobCompare, A: e.nameA, B: e.nameB, Options: svcOpts()}); err == nil {
		t.Error("submission on closed plane accepted")
	}
}

// waitGoroutines waits for the goroutine count to return to base.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 128<<10)
			t.Fatalf("goroutines leaked: %d > %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
