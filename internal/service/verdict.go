package service

import "repro/internal/compare"

// Verdict is a comparison outcome on the reprocmp exit-code contract:
// the numeric values ARE the CLI exit codes, so the daemon and the CLI
// speak one language. Divergence wins over degradation (a proven
// divergence is conclusive even on a degraded path); a degraded clean
// verdict is inconclusive, never clean.
type Verdict int

// Verdicts, by exit code.
const (
	// VerdictClean: runs match within ε on a fully verified path.
	VerdictClean Verdict = 0
	// VerdictError: the comparison itself failed.
	VerdictError Verdict = 1
	// VerdictDivergent: out-of-bound differences were proven.
	VerdictDivergent Verdict = 2
	// VerdictDegraded: no proven divergence, but parts of the
	// comparison were skipped or unverified — inconclusive.
	VerdictDegraded Verdict = 3
)

// String returns the verdict's wire name.
func (v Verdict) String() string {
	switch v {
	case VerdictClean:
		return "clean"
	case VerdictError:
		return "error"
	case VerdictDivergent:
		return "divergent"
	case VerdictDegraded:
		return "degraded"
	default:
		return "unknown"
	}
}

// ExitCode returns the reprocmp-contract exit code.
func (v Verdict) ExitCode() int { return int(v) }

// verdictOf folds the two verdict bits on the contract's precedence.
func verdictOf(diverged, degraded bool) Verdict {
	switch {
	case diverged:
		return VerdictDivergent
	case degraded:
		return VerdictDegraded
	default:
		return VerdictClean
	}
}

// ResultVerdict maps one pair comparison onto the contract, mirroring
// reprocmp's compare subcommand exactly.
func ResultVerdict(res *compare.Result, err error) Verdict {
	if err != nil || res == nil {
		return VerdictError
	}
	return verdictOf(res.DiffCount != 0, res.Degraded || res.UnverifiedChunks > 0)
}

// GroupVerdict maps a group report onto the contract, mirroring
// reprocmp's group subcommand exactly.
func GroupVerdict(rep *compare.GroupReport, err error) Verdict {
	if err != nil || rep == nil {
		return VerdictError
	}
	diverged := false
	for i := range rep.Pairs {
		if rep.Pairs[i].Result.DiffCount != 0 {
			diverged = true
			break
		}
	}
	return verdictOf(diverged, rep.Degraded())
}
