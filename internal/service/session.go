package service

import (
	"context"
	"sync"

	"repro/internal/cas"
	"repro/internal/compare"
	"repro/internal/pfs"
	"repro/internal/shard"
)

// Session is one tenant's submission surface on a plane. Every compare
// entry point the repro facade exposes exists here as a method; each
// submission normalizes its options against the plane's resources,
// validates the named runs against the tenant's immutable bindings,
// passes admission control, and executes on the shared pool and ring.
// Sessions are safe for concurrent use; per-session statistics are
// accounted atomically per submission, so concurrent sessions never
// interleave each other's counters.
type Session struct {
	plane  *Plane
	tenant *tenant

	mu    sync.Mutex
	stats Stats
}

// Stats counts one session's submissions by outcome. Rejected counts
// submissions that never ran (binding violations, admission rejections,
// plane closed); Failed counts admitted comparisons that returned an
// error; Divergent and Degraded classify completed verdicts (a verdict
// can be both).
type Stats struct {
	Submitted int
	Rejected  int
	Completed int
	Failed    int
	Divergent int
	Degraded  int
}

// Tenant returns the tenant the session submits as.
func (s *Session) Tenant() string { return s.tenant.id }

// Plane returns the plane the session runs on.
func (s *Session) Plane() *Plane { return s.plane }

// Stats returns a copy of the session's counters.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Register installs an immutable run binding in the tenant's catalog.
// Re-registering an identical binding is a no-op; a conflicting one
// returns a *BindingError and changes nothing.
func (s *Session) Register(b Binding) error { return s.tenant.register(b) }

// Binding returns the tenant's binding for a run ID, if registered.
func (s *Session) Binding(runID string) (Binding, bool) { return s.tenant.lookup(runID) }

// Bindings lists the tenant's catalog sorted by run ID.
func (s *Session) Bindings() []Binding { return s.tenant.list() }

// prepare normalizes the options on the plane and validates every named
// run against the tenant's bindings. Both failure modes are submission
// errors: nothing was admitted or executed.
func (s *Session) prepare(opts compare.Options, names ...string) (compare.Options, error) {
	n, err := s.plane.normalizeOptions(opts)
	if err != nil {
		s.reject()
		return compare.Options{}, err
	}
	for _, name := range names {
		if err := s.tenant.checkRun(name, n.Epsilon, n.ChunkSize); err != nil {
			s.reject()
			return compare.Options{}, err
		}
	}
	return n, nil
}

// admit passes admission control, blocking while queued. The returned
// release hands the slot back (idempotent); err means nothing was
// admitted.
func (s *Session) admit(ctx context.Context) (release func(), err error) {
	t, err := s.plane.sched.reserve(s.tenant)
	if err != nil {
		s.reject()
		return nil, err
	}
	if err := s.plane.sched.wait(ctx, t); err != nil {
		s.reject()
		return nil, err
	}
	return func() { s.plane.sched.release(t) }, nil
}

// Accounting: every public submission counts Submitted once, then
// exactly one of Rejected / Failed / Completed.

func (s *Session) submitted() {
	s.mu.Lock()
	s.stats.Submitted++
	s.mu.Unlock()
}

func (s *Session) reject() {
	s.mu.Lock()
	s.stats.Rejected++
	s.mu.Unlock()
}

// finish classifies one executed comparison into the counters.
func (s *Session) finish(diverged, degraded bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.stats.Failed++
		return
	}
	s.stats.Completed++
	if diverged {
		s.stats.Divergent++
	}
	if degraded {
		s.stats.Degraded++
	}
}

func (s *Session) finishResult(res *compare.Result, err error) {
	if err != nil || res == nil {
		s.finish(false, false, err)
		return
	}
	s.finish(res.DiffCount != 0, res.Degraded || res.UnverifiedChunks > 0, nil)
}

func (s *Session) finishGroup(rep *compare.GroupReport, err error) {
	if err != nil || rep == nil {
		s.finish(false, false, err)
		return
	}
	diverged := false
	for i := range rep.Pairs {
		if rep.Pairs[i].Result.DiffCount != 0 {
			diverged = true
			break
		}
	}
	s.finish(diverged, rep.Degraded(), nil)
}

func (s *Session) finishHistory(rep *compare.HistoryReport, err error) {
	if err != nil || rep == nil {
		s.finish(false, false, err)
		return
	}
	s.finish(!rep.Reproducible(), rep.Degraded(), nil)
}

// Compare runs the two-stage Merkle comparison of one checkpoint pair.
func (s *Session) Compare(ctx context.Context, store *pfs.Store, nameA, nameB string, opts compare.Options) (*compare.Result, error) {
	s.submitted()
	opts, err := s.prepare(opts, nameA, nameB)
	if err != nil {
		return nil, err
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return s.execCompare(ctx, store, nameA, nameB, opts)
}

func (s *Session) execCompare(ctx context.Context, store *pfs.Store, nameA, nameB string, opts compare.Options) (*compare.Result, error) {
	res, err := compare.CompareMerkle(ctx, store, nameA, nameB, opts)
	s.finishResult(res, err)
	return res, err
}

// CompareDirect runs the optimized element-wise baseline.
func (s *Session) CompareDirect(ctx context.Context, store *pfs.Store, nameA, nameB string, opts compare.Options) (*compare.Result, error) {
	s.submitted()
	opts, err := s.prepare(opts, nameA, nameB)
	if err != nil {
		return nil, err
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	res, err := compare.CompareDirect(ctx, store, nameA, nameB, opts)
	s.finishResult(res, err)
	return res, err
}

// AllClose runs the naive boolean baseline.
func (s *Session) AllClose(ctx context.Context, store *pfs.Store, nameA, nameB string, opts compare.Options) (bool, error) {
	s.submitted()
	opts, err := s.prepare(opts, nameA, nameB)
	if err != nil {
		return false, err
	}
	release, err := s.admit(ctx)
	if err != nil {
		return false, err
	}
	defer release()
	ok, _, err := compare.CompareAllClose(ctx, store, nameA, nameB, opts)
	s.finish(err == nil && !ok, false, err)
	return ok, err
}

// CompareTreesOnly answers from metadata alone (works on compacted
// history).
func (s *Session) CompareTreesOnly(ctx context.Context, store *pfs.Store, nameA, nameB string, opts compare.Options) (*compare.Result, error) {
	s.submitted()
	opts, err := s.prepare(opts, nameA, nameB)
	if err != nil {
		return nil, err
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	res, err := compare.CompareTreesOnly(ctx, store, nameA, nameB, opts)
	s.finishResult(res, err)
	return res, err
}

// CompareHistories aligns and compares two runs' checkpoint histories.
func (s *Session) CompareHistories(ctx context.Context, store *pfs.Store, runA, runB string, method compare.Method, opts compare.Options) (*compare.HistoryReport, error) {
	s.submitted()
	opts, err := s.prepare(opts, runA, runB)
	if err != nil {
		return nil, err
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	rep, err := compare.CompareHistories(ctx, store, runA, runB, method, opts)
	s.finishHistory(rep, err)
	return rep, err
}

// GroupCompare compares N runs' checkpoints as one group plan.
func (s *Session) GroupCompare(ctx context.Context, store *pfs.Store, baseline string, runs []string, topology compare.Topology, opts compare.Options) (*compare.GroupReport, error) {
	s.submitted()
	opts, err := s.prepare(opts, append([]string{baseline}, runs...)...)
	if err != nil {
		return nil, err
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return s.execGroup(ctx, store, baseline, runs, topology, opts)
}

func (s *Session) execGroup(ctx context.Context, store *pfs.Store, baseline string, runs []string, topology compare.Topology, opts compare.Options) (*compare.GroupReport, error) {
	rep, err := compare.GroupCompare(ctx, store, baseline, runs, topology, opts)
	s.finishGroup(rep, err)
	return rep, err
}

// CompareDiff compares two differentially captured checkpoints through
// the plane's shared CAS handle for the store.
func (s *Session) CompareDiff(ctx context.Context, store *pfs.Store, cs *cas.Store, nameA, nameB string, opts compare.Options) (*compare.Result, error) {
	s.submitted()
	opts, err := s.prepare(opts, nameA, nameB)
	if err != nil {
		return nil, err
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	res, err := compare.CompareDiff(ctx, store, cs, nameA, nameB, opts)
	s.finishResult(res, err)
	return res, err
}

// GroupCompareDiff compares N differentially captured runs as one plan.
func (s *Session) GroupCompareDiff(ctx context.Context, store *pfs.Store, cs *cas.Store, baseline string, runs []string, topology compare.Topology, opts compare.Options) (*compare.GroupReport, error) {
	s.submitted()
	opts, err := s.prepare(opts, append([]string{baseline}, runs...)...)
	if err != nil {
		return nil, err
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	rep, err := compare.GroupCompareDiff(ctx, store, cs, baseline, runs, topology, opts)
	s.finishGroup(rep, err)
	return rep, err
}

// ShardCompare runs one comparison sharded across simulated workers.
func (s *Session) ShardCompare(ctx context.Context, store *pfs.Store, nameA, nameB string, cfg shard.Config, opts compare.Options) (*compare.Result, *shard.Stats, error) {
	s.submitted()
	opts, err := s.prepare(opts, nameA, nameB)
	if err != nil {
		return nil, nil, err
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer release()
	res, stats, err := shard.Compare(ctx, store, nameA, nameB, cfg, opts)
	s.finishResult(res, err)
	return res, stats, err
}

// ShardGroupCompare pools a group comparison's stage 2 into one fleet.
func (s *Session) ShardGroupCompare(ctx context.Context, store *pfs.Store, baseline string, runs []string, topology compare.Topology, cfg shard.Config, opts compare.Options) (*compare.GroupReport, *shard.Stats, error) {
	s.submitted()
	opts, err := s.prepare(opts, append([]string{baseline}, runs...)...)
	if err != nil {
		return nil, nil, err
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer release()
	rep, stats, err := shard.GroupCompare(ctx, store, baseline, runs, topology, cfg, opts)
	s.finishGroup(rep, err)
	return rep, stats, err
}

// Analyze profiles two checkpoints' divergence magnitudes (the ε-picking
// tool). No ε is involved, so bindings are not consulted, but the full
// data read passes admission like any comparison.
func (s *Session) Analyze(ctx context.Context, store *pfs.Store, nameA, nameB string) (*compare.Analysis, error) {
	s.submitted()
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	a, err := compare.Analyze(ctx, store, nameA, nameB)
	s.finish(false, false, err)
	return a, err
}

// Evolution builds a run's state-evolution profile from metadata.
func (s *Session) Evolution(ctx context.Context, store *pfs.Store, runID string, opts compare.Options) (*compare.EvolutionReport, error) {
	s.submitted()
	opts, err := s.prepare(opts, runID)
	if err != nil {
		return nil, err
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	rep, err := compare.Evolution(ctx, store, runID, opts)
	s.finish(false, false, err)
	return rep, err
}

// CompactHistory compacts a run's older checkpoints to metadata-only
// form through the plane.
func (s *Session) CompactHistory(ctx context.Context, store *pfs.Store, runID string, keepLatest int, opts compare.Options) (*compare.CompactReport, error) {
	s.submitted()
	opts, err := s.prepare(opts, runID)
	if err != nil {
		return nil, err
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	rep, err := compare.CompactHistory(ctx, store, runID, keepLatest, opts)
	s.finish(false, false, err)
	return rep, err
}

// BuildAndSave builds and saves a checkpoint's metadata with the plane's
// resources. Capture-side work is not admission-gated or counted in the
// session stats (it is the checkpointing path, not a served comparison),
// but bound runs must still be captured at their bound coordinates.
func (s *Session) BuildAndSave(ctx context.Context, store *pfs.Store, name string, opts compare.Options) (*compare.Metadata, compare.BuildStats, error) {
	n, err := s.plane.normalizeOptions(opts)
	if err != nil {
		return nil, compare.BuildStats{}, err
	}
	if err := s.tenant.checkRun(name, n.Epsilon, n.ChunkSize); err != nil {
		return nil, compare.BuildStats{}, err
	}
	return compare.BuildAndSave(ctx, store, name, n)
}
