package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/aio"
	"repro/internal/compare"
	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/retry"
)

// TestNormalizeOptions is the table test for the one options-defaulting
// path every facade variant routes through.
func TestNormalizeOptions(t *testing.T) {
	p := testPlane(t, Config{})
	customExec := device.Serial{}
	customBackend := aio.Legacy{}

	cases := []struct {
		name  string
		in    compare.Options
		check func(t *testing.T, n compare.Options)
	}{
		{
			name: "nil exec and backend get the plane's resources",
			in:   compare.Options{Epsilon: 1e-6},
			check: func(t *testing.T, n compare.Options) {
				if n.Exec != device.Executor(p.exec) {
					t.Errorf("Exec = %T, want the plane pool", n.Exec)
				}
				c, ok := n.Backend.(aio.Coalescing)
				if !ok {
					t.Fatalf("Backend = %T, want aio.Coalescing over the plane ring", n.Backend)
				}
				if c.Inner != aio.Backend(p.ring) {
					t.Errorf("coalescing inner = %T, want the plane ring", c.Inner)
				}
			},
		},
		{
			name: "negative CoalesceMaxGap selects the bare plane ring",
			in:   compare.Options{Epsilon: 1e-6, CoalesceMaxGap: -1},
			check: func(t *testing.T, n compare.Options) {
				if n.Backend != aio.Backend(p.ring) {
					t.Errorf("Backend = %T, want the bare plane ring", n.Backend)
				}
			},
		},
		{
			name: "caller-set exec and backend are kept as-is",
			in:   compare.Options{Epsilon: 1e-6, Exec: customExec, Backend: customBackend},
			check: func(t *testing.T, n compare.Options) {
				if n.Exec != device.Executor(customExec) {
					t.Errorf("Exec overridden: %T", n.Exec)
				}
				if n.Backend != aio.Backend(customBackend) {
					t.Errorf("Backend overridden (or wrapped): %T", n.Backend)
				}
			},
		},
		{
			name: "compare-layer defaults applied",
			in:   compare.Options{Epsilon: 1e-6},
			check: func(t *testing.T, n compare.Options) {
				if n.ChunkSize != 64<<10 || n.SliceBytes != 8<<20 || n.Depth != 2 || n.StartLevel != -1 || n.SetupVirtual != 50*time.Millisecond {
					t.Errorf("defaults: chunk=%d slice=%d depth=%d start=%d setup=%v",
						n.ChunkSize, n.SliceBytes, n.Depth, n.StartLevel, n.SetupVirtual)
				}
			},
		},
		{
			name: "zero Retry sentinel survives normalization",
			in:   compare.Options{Epsilon: 1e-6},
			check: func(t *testing.T, n compare.Options) {
				if n.Retry != (retry.Policy{}) {
					t.Errorf("zero Retry resolved eagerly to %+v; the planners' own resolution must see the sentinel", n.Retry)
				}
			},
		},
		{
			name: "disabled Retry sentinel survives normalization",
			in:   compare.Options{Epsilon: 1e-6, Retry: retry.Policy{MaxAttempts: -1}},
			check: func(t *testing.T, n compare.Options) {
				if n.Retry.MaxAttempts != -1 {
					t.Errorf("disabled Retry became %+v", n.Retry)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := p.NormalizeOptions(tc.in)
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, n)
		})
	}

	if _, err := p.NormalizeOptions(compare.Options{}); err == nil {
		t.Fatal("missing ε accepted")
	}
	if _, err := p.NormalizeOptions(compare.Options{Epsilon: -1}); err == nil {
		t.Fatal("negative ε accepted")
	}
}

func TestPlaneMemoAndCASCaching(t *testing.T) {
	p := testPlane(t, Config{})
	if p.Memo(1e-6) != p.Memo(1e-6) {
		t.Error("memo for one ε not shared")
	}
	if p.Memo(1e-6) == p.Memo(1e-5) {
		t.Error("distinct ε share a memo")
	}

	store, err := pfs.NewStore(t.TempDir(), pfs.NVMeModel())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cs1, err := p.CAS(ctx, store)
	if err != nil {
		t.Fatal(err)
	}
	cs2, err := p.CAS(ctx, store)
	if err != nil {
		t.Fatal(err)
	}
	if cs1 != cs2 {
		t.Error("CAS handle not shared per store")
	}
}

func TestBindingImmutability(t *testing.T) {
	p := testPlane(t, Config{})
	s := p.Open("acme")
	bind := Binding{RunID: "run1", CodeRef: "abc123", Epsilon: 1e-6, ChunkSize: 4096, DatasetVersion: "v1"}
	if err := s.Register(bind); err != nil {
		t.Fatal(err)
	}
	// Identical re-registration is a no-op.
	if err := s.Register(bind); err != nil {
		t.Fatalf("identical re-register: %v", err)
	}
	// Any diverging coordinate is a conflict naming the field.
	for _, tc := range []struct {
		field string
		b     Binding
	}{
		{"codeRef", Binding{RunID: "run1", CodeRef: "def456", Epsilon: 1e-6, ChunkSize: 4096, DatasetVersion: "v1"}},
		{"epsilon", Binding{RunID: "run1", CodeRef: "abc123", Epsilon: 1e-5, ChunkSize: 4096, DatasetVersion: "v1"}},
		{"chunkSize", Binding{RunID: "run1", CodeRef: "abc123", Epsilon: 1e-6, ChunkSize: 8192, DatasetVersion: "v1"}},
		{"datasetVersion", Binding{RunID: "run1", CodeRef: "abc123", Epsilon: 1e-6, ChunkSize: 4096, DatasetVersion: "v2"}},
	} {
		var be *BindingError
		if err := s.Register(tc.b); !errors.As(err, &be) || be.Field != tc.field {
			t.Errorf("conflict on %s: got %v", tc.field, err)
		}
	}
	// The original binding survived every conflicting attempt.
	got, ok := s.Binding("run1")
	if !ok || !got.equal(bind) {
		t.Fatalf("binding mutated: %+v", got)
	}

	// Bindings are per tenant: another tenant may bind run1 differently.
	other := p.Open("rival")
	if err := other.Register(Binding{RunID: "run1", Epsilon: 1e-3}); err != nil {
		t.Fatalf("cross-tenant isolation: %v", err)
	}

	// Invalid bindings never register.
	if err := s.Register(Binding{Epsilon: 1e-6}); err == nil {
		t.Error("empty run ID accepted")
	}
	if err := s.Register(Binding{RunID: "r", Epsilon: 0}); err == nil {
		t.Error("zero ε accepted")
	}

	if got := len(s.Bindings()); got != 1 {
		t.Fatalf("tenant catalog has %d bindings, want 1", got)
	}
}

// TestBindingGatesSubmission exercises the ε/chunk validation on the
// submission path: a bound run compared at the wrong coordinates is a
// submission error before any admission or work.
func TestBindingGatesSubmission(t *testing.T) {
	p := testPlane(t, Config{})
	s := p.Open("acme")
	if err := s.Register(Binding{RunID: "runA", Epsilon: 1e-6, ChunkSize: 4096}); err != nil {
		t.Fatal(err)
	}
	store, err := pfs.NewStore(t.TempDir(), pfs.NVMeModel())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var be *BindingError
	// Wrong ε against the bound run (checkpoint names parse to run IDs).
	_, err = s.Compare(ctx, store, "runA/iter0010.rank000.ckpt", "runB/iter0010.rank000.ckpt", compare.Options{Epsilon: 1e-5, ChunkSize: 4096})
	if !errors.As(err, &be) || be.Field != "epsilon" {
		t.Fatalf("ε mismatch: got %v", err)
	}
	// Wrong chunk size.
	_, err = s.Compare(ctx, store, "runA/iter0010.rank000.ckpt", "runB/iter0010.rank000.ckpt", compare.Options{Epsilon: 1e-6, ChunkSize: 8192})
	if !errors.As(err, &be) || be.Field != "chunkSize" {
		t.Fatalf("chunk mismatch: got %v", err)
	}
	// Unbound runs are not gated (the compare itself fails on the
	// missing checkpoint, which is not a BindingError).
	_, err = s.Compare(ctx, store, "runX/iter0010.rank000.ckpt", "runY/iter0010.rank000.ckpt", compare.Options{Epsilon: 1e-5})
	if err == nil || errors.As(err, &be) {
		t.Fatalf("unbound compare: got %v", err)
	}

	// Every rejection above was a submission error: three submissions,
	// one failed execution, two rejected, nothing completed.
	st := s.Stats()
	if st.Submitted != 3 || st.Rejected != 2 || st.Failed != 1 || st.Completed != 0 {
		t.Fatalf("stats: %+v", st)
	}
}
