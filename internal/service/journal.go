package service

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/compare"
	"repro/internal/murmur3"
	"repro/internal/pfs"
	"repro/internal/shard"
	"repro/internal/wal"
)

// This file binds the crash-durable journal (internal/wal) into the job
// lifecycle. The discipline is durable-then-visible at both ends:
//
//   - the accepted record is appended before Submit returns, so a job
//     the client saw accepted is never lost by a crash;
//   - the verdict record is appended before the verdict is published,
//     so a verdict the client observed is always servable from the
//     ledger after a restart — never recomputed, never duplicated.
//
// A journal-append failure on the verdict path fails the job for THIS
// life only (the client sees an error verdict); the ledger still lists
// the job as pending, so the next life re-admits and re-runs it,
// producing the job's one and only durable verdict.

// acceptedRecord journals one admission. The spec's normalized ε, chunk
// size, and degradation setting are bound so recovery re-runs the job at
// exactly the coordinates the client was promised.
func acceptedRecord(id uint64, tenantID string, spec JobSpec) wal.Record {
	rec := wal.Record{
		Type:        wal.TypeAccepted,
		Job:         id,
		Tenant:      tenantID,
		Kind:        string(spec.Kind),
		Names:       spec.names(),
		Degrade:     spec.Options.Degrade,
		Epsilon:     spec.Options.Epsilon,
		ChunkSize:   spec.Options.ChunkSize,
		ToolVersion: wal.ToolVersion,
	}
	if spec.Kind == JobGroup {
		rec.Topology = spec.Topology.String()
	}
	if spec.Kind == JobShard {
		rec.Workers = spec.Shard.Workers
	}
	return rec
}

// startedRecord journals a job acquiring its execution slot.
func startedRecord(id uint64, tenantID string, spec JobSpec) wal.Record {
	rec := acceptedRecord(id, tenantID, spec)
	rec.Type = wal.TypeStarted
	return rec
}

// verdictRecord journals a job's outcome: the exit code, the divergence
// and degradation evidence, and the compared snapshots' combined Merkle
// roots — everything verify-log needs to recompute the verdict's inputs.
func verdictRecord(id uint64, tenantID string, spec JobSpec, v Verdict,
	res *compare.Result, rep *compare.GroupReport, err error) wal.Record {
	rec := acceptedRecord(id, tenantID, spec)
	rec.Type = wal.TypeVerdict
	rec.Exit = v.ExitCode()
	if err != nil {
		rec.ErrMsg = err.Error()
	}
	switch {
	case res != nil:
		rec.DiffCount = res.DiffCount
		rec.Degraded = res.Degraded || res.UnverifiedChunks > 0
		rec.UnverifiedChunks = res.UnverifiedChunks
		rec.ReadRetries = res.ReadRetries
		rec.RingFallbacks = res.RingFallbacks
		rec.CASPruned = res.CASPrunedChunks
		if res.RootA != (murmur3.Digest{}) || res.RootB != (murmur3.Digest{}) {
			rec.Roots = []murmur3.Digest{res.RootA, res.RootB}
		}
	case rep != nil:
		for i := range rep.Pairs {
			rec.DiffCount += rep.Pairs[i].Result.DiffCount
		}
		rec.Degraded = rep.Degraded()
		rec.ReadRetries = rep.ReadRetries
		rec.RingFallbacks = rep.RingFallbacks
		rec.Roots = append([]murmur3.Digest(nil), rep.MemberRoots...)
	}
	return rec
}

// specFromRecord reconstructs a runnable spec from an accepted record —
// the recovery inverse of acceptedRecord. The rebuilt options carry only
// the journaled coordinates (ε, chunk size, degrade); plane resources
// are re-injected by the normal prepare path on re-admission.
func specFromRecord(rec wal.Record) (JobSpec, error) {
	spec := JobSpec{
		Kind: JobKind(rec.Kind),
		Options: compare.Options{
			Epsilon:   rec.Epsilon,
			ChunkSize: rec.ChunkSize,
			Degrade:   rec.Degrade,
		},
	}
	switch spec.Kind {
	case JobCompare, JobShard:
		if len(rec.Names) != 2 {
			return JobSpec{}, fmt.Errorf("service: journal job %d: %s record has %d names, want 2",
				rec.Job, rec.Kind, len(rec.Names))
		}
		spec.A, spec.B = rec.Names[0], rec.Names[1]
		if spec.Kind == JobShard {
			spec.Shard = shard.Config{Workers: rec.Workers}
		}
	case JobGroup:
		if len(rec.Names) < 2 {
			return JobSpec{}, fmt.Errorf("service: journal job %d: group record has %d names, want >= 2",
				rec.Job, len(rec.Names))
		}
		spec.Baseline = rec.Names[0]
		spec.Runs = append([]string(nil), rec.Names[1:]...)
		switch rec.Topology {
		case "", compare.TopologyStar.String():
			spec.Topology = compare.TopologyStar
		case compare.TopologyAllPairs.String():
			spec.Topology = compare.TopologyAllPairs
		default:
			return JobSpec{}, fmt.Errorf("service: journal job %d: unknown topology %q", rec.Job, rec.Topology)
		}
	default:
		return JobSpec{}, fmt.Errorf("service: journal job %d: unknown kind %q", rec.Job, rec.Kind)
	}
	return spec, nil
}

// raiseJobIDFloor lifts the process-wide job ID counter above every ID
// the journal has seen, so re-admitted and new jobs never collide with
// ledger history.
func raiseJobIDFloor(n uint64) {
	for {
		cur := jobIDs.Load()
		if cur >= n || jobIDs.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Recovery is what Plane.Recover reconstructed from the journal.
type Recovery struct {
	// Ledger maps completed jobs to their durable verdict records. A
	// recovered verdict is served from here, never recomputed.
	Ledger map[uint64]wal.Record
	// Resumed lists the re-admitted jobs — accepted in a previous life
	// but never given a verdict — now queued or running again under
	// their original IDs.
	Resumed []*Job
	// Replay carries the raw chain walk (holes, torn tail, read cost).
	Replay *wal.Replay
}

// Recover opens (replaying) the named journal on store, attaches it to
// the plane so every subsequent job lifecycle event is journaled, and
// restores exactly-once semantics across the restart: completed jobs'
// verdicts are returned as a servable ledger, and accepted-but-unfinished
// jobs are re-admitted under their original IDs. Call once, before
// serving traffic; name "" selects wal.DefaultName. A tampered journal
// refuses to open (ErrTampered) — a plane must not extend a chain it
// cannot trust.
func (p *Plane) Recover(ctx context.Context, store *pfs.Store, name string) (*Recovery, error) {
	j, rep, err := wal.Open(ctx, store, name)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.journal != nil {
		p.mu.Unlock()
		return nil, errors.New("service: plane already has a journal")
	}
	p.journal = j
	p.mu.Unlock()

	cls := wal.Classify(rep.Records)
	raiseJobIDFloor(cls.MaxJob)
	out := &Recovery{Ledger: cls.Verdicts, Replay: rep}
	for _, rec := range cls.Pending {
		job, err := p.Open(rec.Tenant).resume(store, rec)
		if err != nil {
			return out, fmt.Errorf("service: re-admit job %d: %w", rec.Job, err)
		}
		out.Resumed = append(out.Resumed, job)
	}
	return out, nil
}

// journalHandle returns the attached journal, or nil when the plane runs
// without durability.
func (p *Plane) journalHandle() *wal.Journal {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.journal
}

// Journal returns the journal attached by Recover, or nil.
func (p *Plane) Journal() *wal.Journal { return p.journalHandle() }
