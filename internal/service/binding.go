package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/ckpt"
)

// Binding is one run's immutable registration in a tenant's catalog:
// the provenance coordinates a comparison against that run must match.
// Registering a run twice with an identical binding is a no-op;
// registering it with a different binding, or submitting a comparison
// whose ε (or chunk size, when bound) disagrees, is an error — a silent
// recompare at the wrong coordinates would produce a verdict about a
// different question than the one the run was registered to answer.
type Binding struct {
	// RunID names the run (the prefix checkpoint names parse to).
	RunID string `json:"runId"`
	// CodeRef pins the code that produced the run (a commit hash, an
	// image digest — opaque to the plane).
	CodeRef string `json:"codeRef,omitempty"`
	// Params is the run's parameter document, compared byte-exact.
	Params json.RawMessage `json:"params,omitempty"`
	// Epsilon is the error bound the run's metadata was built at. Every
	// comparison touching the run must use exactly this ε.
	Epsilon float64 `json:"epsilon"`
	// ChunkSize, when non-zero, pins the hashing granularity the run's
	// metadata was built at; comparisons must match it.
	ChunkSize int `json:"chunkSize,omitempty"`
	// DatasetVersion pins the input dataset the run consumed.
	DatasetVersion string `json:"datasetVersion,omitempty"`
}

// validate checks a binding at registration time.
func (b Binding) validate() error {
	if b.RunID == "" {
		return fmt.Errorf("service: binding needs a run ID")
	}
	if !(b.Epsilon > 0) || math.IsInf(b.Epsilon, 0) {
		return fmt.Errorf("service: binding for run %q: epsilon %v must be positive and finite", b.RunID, b.Epsilon)
	}
	if b.ChunkSize < 0 {
		return fmt.Errorf("service: binding for run %q: negative chunk size %d", b.RunID, b.ChunkSize)
	}
	return nil
}

// epsilonBits keys ε by its exact bit pattern: bindings are exact, so
// equality here must be too (a lint-exempt float == would invite an
// ε-tolerance reading that does not apply).
func epsilonBits(eps float64) uint64 { return math.Float64bits(eps) }

// equal reports whether two bindings agree exactly.
func (b Binding) equal(o Binding) bool {
	return b.RunID == o.RunID &&
		b.CodeRef == o.CodeRef &&
		bytes.Equal(b.Params, o.Params) &&
		epsilonBits(b.Epsilon) == epsilonBits(o.Epsilon) &&
		b.ChunkSize == o.ChunkSize &&
		b.DatasetVersion == o.DatasetVersion
}

// BindingError reports a submission that contradicts an immutable run
// binding: a re-registration with different provenance, or a comparison
// at mismatched coordinates.
type BindingError struct {
	// Tenant and RunID locate the violated binding.
	Tenant string
	RunID  string
	// Field names the first disagreeing coordinate ("epsilon",
	// "chunkSize", "codeRef", "params", "datasetVersion").
	Field string
	// Bound and Got render the bound and submitted values.
	Bound string
	Got   string
}

// Error implements error.
func (e *BindingError) Error() string {
	return fmt.Sprintf("service: run %q (tenant %q) is bound to %s=%s, submission has %s",
		e.RunID, e.Tenant, e.Field, e.Bound, e.Got)
}

// tenant is one tenant's plane-side state: its immutable run bindings
// (the per-tenant run catalog), its pending-job count, and its
// cumulative admission counters. pending and the counters are guarded by
// the scheduler's mutex (they change only under admission decisions);
// bindings by the tenant's own.
type tenant struct {
	id      string
	pending int // guarded by sched.mu

	// Admission counters for the /v1/metrics capacity-planning view,
	// guarded by sched.mu.
	accepted        int64
	rejected        int64
	retryAfterTotal time.Duration

	mu       sync.Mutex
	bindings map[string]Binding
}

// register installs a binding, idempotently for identical re-runs.
func (t *tenant) register(b Binding) error {
	if err := b.validate(); err != nil {
		return err
	}
	b.Params = bytes.Clone(b.Params) // immutable: detach from the caller
	t.mu.Lock()
	defer t.mu.Unlock()
	prior, ok := t.bindings[b.RunID]
	if !ok {
		t.bindings[b.RunID] = b
		return nil
	}
	if prior.equal(b) {
		return nil
	}
	field, bound, got := firstDivergingField(prior, b)
	return &BindingError{Tenant: t.id, RunID: b.RunID, Field: field, Bound: bound, Got: got}
}

// firstDivergingField names the first coordinate two bindings disagree
// on, for the error message.
func firstDivergingField(bound, got Binding) (field, b, g string) {
	switch {
	case bound.CodeRef != got.CodeRef:
		return "codeRef", bound.CodeRef, got.CodeRef
	case !bytes.Equal(bound.Params, got.Params):
		return "params", string(bound.Params), string(got.Params)
	case epsilonBits(bound.Epsilon) != epsilonBits(got.Epsilon):
		return "epsilon", fmt.Sprintf("%g", bound.Epsilon), fmt.Sprintf("%g", got.Epsilon)
	case bound.ChunkSize != got.ChunkSize:
		return "chunkSize", fmt.Sprint(bound.ChunkSize), fmt.Sprint(got.ChunkSize)
	default:
		return "datasetVersion", bound.DatasetVersion, got.DatasetVersion
	}
}

// lookup returns the binding for a run ID, if registered.
func (t *tenant) lookup(runID string) (Binding, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.bindings[runID]
	return b, ok
}

// list returns the tenant's bindings sorted by run ID.
func (t *tenant) list() []Binding {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Binding, 0, len(t.bindings))
	for _, b := range t.bindings {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RunID < out[j].RunID })
	return out
}

// runIDOf maps a submission name onto the run it binds to: checkpoint
// file names parse to their run prefix, bare run IDs pass through.
func runIDOf(name string) string {
	if id, _, _, ok := ckpt.ParseName(name); ok {
		return id
	}
	return name
}

// checkRun validates one submission name against the tenant's catalog:
// unbound runs compare freely; bound runs must be submitted at exactly
// the bound ε (and chunk size, when pinned). eps and chunk are the
// submission's normalized values.
func (t *tenant) checkRun(name string, eps float64, chunk int) error {
	b, ok := t.lookup(runIDOf(name))
	if !ok {
		return nil
	}
	if epsilonBits(eps) != epsilonBits(b.Epsilon) {
		return &BindingError{
			Tenant: t.id, RunID: b.RunID, Field: "epsilon",
			Bound: fmt.Sprintf("%g", b.Epsilon), Got: fmt.Sprintf("%g", eps),
		}
	}
	if b.ChunkSize != 0 && chunk != b.ChunkSize {
		return &BindingError{
			Tenant: t.id, RunID: b.RunID, Field: "chunkSize",
			Bound: fmt.Sprint(b.ChunkSize), Got: fmt.Sprint(chunk),
		}
	}
	return nil
}
