package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/retry"
)

// ErrPlaneClosed is returned by every submission path once Plane.Close
// has begun: the plane admits nothing new while draining.
var ErrPlaneClosed = errors.New("service: plane closed")

// AdmissionError is a backpressure rejection: the submission was refused
// without queueing, and the caller should resubmit no sooner than
// RetryAfter. The price is deterministic — an exponential function of
// the pressure that caused the rejection, with the same seeded jitter
// internal/retry uses, expressed on the virtual clock (the scheduler
// never sleeps it). It classifies as Transient so retry loops built on
// internal/retry handle rejections like any other transient fault.
type AdmissionError struct {
	// Tenant is the rejected submission's tenant.
	Tenant string
	// Reason says which bound rejected it ("tenant quota exceeded",
	// "admission queue full").
	Reason string
	// Pressure is the load that priced the rejection: jobs over quota,
	// or the queue length the submission would have grown.
	Pressure int
	// RetryAfter is the virtual backoff before resubmitting.
	RetryAfter time.Duration
}

// Error implements error.
func (e *AdmissionError) Error() string {
	return fmt.Sprintf("service: tenant %q rejected: %s (pressure %d, retry after %v)",
		e.Tenant, e.Reason, e.Pressure, e.RetryAfter)
}

// RetryClass marks rejections Transient for internal/retry.
func (e *AdmissionError) RetryClass() retry.Class { return retry.Transient }

// sched is the plane's admission controller: a counting slot pool of
// MaxInFlight with a bounded FIFO wait queue and per-tenant pending
// quotas. Admission is two-phase — reserve decides synchronously
// (grant, queue, or reject-with-price), wait blocks a queued ticket
// until a slot frees — so callers that must not block (the daemon's
// submit endpoint) get their 429 before any work is spawned.
type sched struct {
	maxInFlight   int
	maxQueued     int
	tenantPending int
	price         retry.Policy

	mu       sync.Mutex
	drained  *sync.Cond // signaled when inflight returns to zero
	closed   bool
	inflight int
	peak     int
	queue    []*ticket
}

// pressureCap bounds the exponent of the backpressure price so extreme
// queue lengths saturate at RetryAfterMax instead of overflowing.
const pressureCap = 16

func newSched(cfg Config) *sched {
	s := &sched{
		maxInFlight:   cfg.MaxInFlight,
		maxQueued:     cfg.MaxQueued,
		tenantPending: cfg.TenantPending,
		price: retry.Policy{
			MaxAttempts: pressureCap + 1,
			BaseDelay:   cfg.RetryAfterBase,
			MaxDelay:    cfg.RetryAfterMax,
			Multiplier:  2,
		},
	}
	s.drained = sync.NewCond(&s.mu)
	return s
}

// ticket is one admission: granted immediately (ready already closed)
// or queued (ready closes on grant or rejection; err is set before the
// close and read only after it).
type ticket struct {
	tn       *tenant
	ready    chan struct{}
	err      error
	released bool
}

// granted is the pre-closed channel shared by immediately-granted
// tickets.
var granted = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// retryAfter prices a rejection at the given pressure. Deterministic:
// the same pressure always yields the same virtual duration.
func (s *sched) retryAfter(pressure int) time.Duration {
	if pressure > pressureCap {
		pressure = pressureCap
	}
	if pressure < 1 {
		pressure = 1
	}
	d, _ := s.price.Next(pressure)
	return d
}

// reserve decides admission for one submission by tenant tn: a granted
// or queued ticket, or an immediate error (ErrPlaneClosed, or an
// *AdmissionError carrying the backpressure price). It never blocks.
// Every decision updates the tenant's admission counters (the
// /v1/metrics view): accepted on grant/queue, rejected plus the attached
// backpressure price on a 429.
func (s *sched) reserve(tn *tenant) (*ticket, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrPlaneClosed
	}
	if tn.pending >= s.tenantPending {
		over := tn.pending - s.tenantPending + 1
		return nil, s.rejectWith(tn, "tenant quota exceeded", over)
	}
	if s.inflight < s.maxInFlight && len(s.queue) == 0 {
		tn.pending++
		tn.accepted++
		s.inflight++
		if s.inflight > s.peak {
			s.peak = s.inflight
		}
		return &ticket{tn: tn, ready: granted}, nil
	}
	if len(s.queue) >= s.maxQueued {
		depth := len(s.queue) + 1
		return nil, s.rejectWith(tn, "admission queue full", depth)
	}
	tn.pending++
	tn.accepted++
	t := &ticket{tn: tn, ready: make(chan struct{})}
	s.queue = append(s.queue, t)
	return t, nil
}

// rejectWith prices and counts one backpressure rejection. Caller holds
// s.mu.
func (s *sched) rejectWith(tn *tenant, reason string, pressure int) *AdmissionError {
	after := s.retryAfter(pressure)
	tn.rejected++
	tn.retryAfterTotal += after
	return &AdmissionError{
		Tenant:     tn.id,
		Reason:     reason,
		Pressure:   pressure,
		RetryAfter: after,
	}
}

// wait blocks until the ticket holds an execution slot, the context is
// canceled, or the plane closes. On any error the reservation is
// already undone — the caller must not release.
func (s *sched) wait(ctx context.Context, t *ticket) error {
	select {
	case <-t.ready:
		return t.err
	case <-ctx.Done():
	}
	// Canceled: the grant may have raced the cancellation.
	s.mu.Lock()
	grantedMeanwhile := false
	select {
	case <-t.ready:
		grantedMeanwhile = t.err == nil
	default:
		// Still queued: withdraw.
		for i, q := range s.queue {
			if q == t {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		t.tn.pending--
	}
	s.mu.Unlock()
	if grantedMeanwhile {
		s.release(t) // hand the unused slot to the next waiter
	}
	return ctx.Err()
}

// abort undoes a reservation whose job never ran (the journal refused
// the accepted record, so the admission must be rolled back as if the
// submission had been rejected). A granted ticket releases its slot; a
// still-queued ticket withdraws, exactly like wait's cancellation path.
func (s *sched) abort(t *ticket) {
	s.mu.Lock()
	select {
	case <-t.ready:
		grantedTicket := t.err == nil
		s.mu.Unlock()
		if grantedTicket {
			s.release(t)
		}
		return
	default:
	}
	for i, q := range s.queue {
		if q == t {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	t.tn.pending--
	s.mu.Unlock()
}

// release returns the ticket's slot: the next queued ticket inherits it
// directly (in-flight count unchanged), otherwise the slot pool grows
// back. Idempotent per ticket.
func (s *sched) release(t *ticket) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.released {
		return
	}
	t.released = true
	t.tn.pending--
	if len(s.queue) > 0 {
		next := s.queue[0]
		s.queue = s.queue[1:]
		close(next.ready)
		return
	}
	s.inflight--
	if s.inflight == 0 {
		s.drained.Broadcast()
	}
}

// close rejects every queued ticket with ErrPlaneClosed, refuses new
// reservations, and blocks until in-flight work drains.
func (s *sched) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		for _, t := range s.queue {
			t.err = ErrPlaneClosed
			t.tn.pending--
			close(t.ready)
		}
		s.queue = nil
	}
	for s.inflight > 0 {
		s.drained.Wait()
	}
}

// inFlight reports the currently executing admissions.
func (s *sched) inFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// peakInFlight reports the high-water concurrent-execution mark.
func (s *sched) peakInFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}

// queued reports the current admission-queue length.
func (s *sched) queuedLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}
