package experiments

import (
	"context"
	"fmt"

	"repro/internal/compare"
)

// Fig5 reproduces Figure 5 (a, b or c by problem size): comparison
// throughput of AllClose, Direct and the Merkle method across the error
// bound × chunk size sweep. Throughput is checkpoint data (both runs)
// over virtual runtime, in GB/s, higher is better.
func (e *Env) Fig5(ctx context.Context, size string) (*Table, error) {
	p, err := e.MakePair(size, 5)
	if err != nil {
		return nil, err
	}
	sub := map[string]string{"500M": "a", "1B": "b", "2B": "c"}[size]
	t := &Table{
		ID:    "Figure 5" + sub,
		Title: fmt.Sprintf("Comparison throughput (GB/s), %s particles (%s per checkpoint)", size, gb(p.Bytes)),
		Header: []string{"Error bound", "AllClose", "Direct",
			kb(ChunkSizes[0]), kb(ChunkSizes[1]), kb(ChunkSizes[2]),
			kb(ChunkSizes[3]), kb(ChunkSizes[4]), kb(ChunkSizes[5])},
		Notes: []string{
			"columns 4KB-512KB are our method at that chunk size",
			"virtual-clock throughput (Lustre+A100 cost model); see EXPERIMENTS.md",
		},
	}
	for _, eps := range ErrorBounds {
		row := []string{fmt.Sprintf("%.0e", eps)}
		opts := e.opts(eps, ChunkSizes[0])

		// AllClose baseline.
		e.Store.EvictAll()
		_, resA, err := compare.CompareAllClose(ctx, e.Store, p.NameA, p.NameB, opts)
		if err != nil {
			return nil, fmt.Errorf("fig5 allclose eps=%g: %w", eps, err)
		}
		row = append(row, fmt.Sprintf("%.2f", resA.ThroughputGBps()))

		// Direct baseline.
		e.Store.EvictAll()
		resD, err := compare.CompareDirect(ctx, e.Store, p.NameA, p.NameB, opts)
		if err != nil {
			return nil, fmt.Errorf("fig5 direct eps=%g: %w", eps, err)
		}
		row = append(row, fmt.Sprintf("%.2f", resD.ThroughputGBps()))

		// Our method across chunk sizes.
		for _, chunk := range ChunkSizes {
			if err := e.BuildMetadataFor(ctx, p, eps, chunk); err != nil {
				return nil, err
			}
			e.Store.EvictAll()
			res, err := compare.CompareMerkle(ctx, e.Store, p.NameA, p.NameB, e.opts(eps, chunk))
			if err != nil {
				return nil, fmt.Errorf("fig5 merkle eps=%g chunk=%d: %w", eps, chunk, err)
			}
			row = append(row, fmt.Sprintf("%.2f", res.ThroughputGBps()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
