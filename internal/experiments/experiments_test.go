package experiments

import (
	"context"
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// testEnv uses the default scale divisor: small enough to run in seconds,
// large enough that bandwidth terms dominate latency floors (the regime
// the paper's shapes live in).
func testEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(t.TempDir(), 448) // 7 GB -> ~15.6 MB
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func parseCell(t *testing.T, cell string) float64 {
	t.Helper()
	s := strings.TrimRight(cell, "%x")
	s = strings.ReplaceAll(s, ",", "")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestTable1(t *testing.T) {
	env := testEnv(t)
	tab, err := env.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("Table 1 has %d rows", len(tab.Rows))
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "500M", "7.0 GB", "phi"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	env := testEnv(t)
	tab, err := env.Table2()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1e-3, 1e-4, 1e-5, 1e-6, 1e-7") {
		t.Error("Table 2 missing error bounds")
	}
}

func TestScaledBytes(t *testing.T) {
	env := testEnv(t)
	small, err := env.ScaledBytes("500M")
	if err != nil {
		t.Fatal(err)
	}
	big, err := env.ScaledBytes("2B")
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Errorf("2B scaled (%d) not larger than 500M scaled (%d)", big, small)
	}
	if small%(7*4*1024) != 0 {
		t.Errorf("scaled size %d not chunk-aligned", small)
	}
	if _, err := env.ScaledBytes("nope"); err == nil {
		t.Error("unknown size accepted")
	}
}

func TestMakePairIsReusable(t *testing.T) {
	env := testEnv(t)
	p1, err := env.MakePair("500M", 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := env.MakePair("500M", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p1.NameA != p2.NameA || p1.Bytes != p2.Bytes {
		t.Error("MakePair not stable across calls")
	}
	if len(p1.Fields) != 7 {
		t.Errorf("pair has %d fields", len(p1.Fields))
	}
}

// TestFig5Shape checks the headline comparative claims on one problem
// size: ours >= direct >= allclose, and throughput rising with ε.
func TestFig5Shape(t *testing.T) {
	env := testEnv(t)
	tab, err := env.Fig5(context.Background(), "500M")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(ErrorBounds) {
		t.Fatalf("fig5 has %d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		allclose := parseCell(t, row[1])
		direct := parseCell(t, row[2])
		if direct <= allclose {
			t.Errorf("eps=%s: direct %.2f not above allclose %.2f", row[0], direct, allclose)
		}
		// Our best chunk size must beat direct at every ε.
		best := 0.0
		for _, c := range row[3:] {
			if v := parseCell(t, c); v > best {
				best = v
			}
		}
		if best <= direct {
			t.Errorf("eps=%s: our best %.2f not above direct %.2f", row[0], best, direct)
		}
	}
	// Largest ε (row 0) must beat smallest ε (last row) for our method.
	first := parseCell(t, tab.Rows[0][3])
	last := parseCell(t, tab.Rows[len(tab.Rows)-1][3])
	if first <= last {
		t.Errorf("throughput at 1e-3 (%.2f) not above 1e-7 (%.2f) for 4KB chunks", first, last)
	}
}

func TestFig6Breakdown(t *testing.T) {
	env := testEnv(t)
	tab, err := env.Fig6(context.Background(), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(ChunkSizes) {
		t.Fatalf("fig6 has %d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		var sum float64
		for _, c := range row[1:6] {
			sum += parseCell(t, c)
		}
		total := parseCell(t, row[6])
		if total <= 0 {
			t.Errorf("chunk %s: zero total", row[0])
		}
		if diff := sum - total; diff > 0.001*total+0.001 || diff < -0.001*total-0.001 {
			t.Errorf("chunk %s: phases sum %.4f != total %.4f", row[0], sum, total)
		}
	}
}

func TestFig7Effectiveness(t *testing.T) {
	env := testEnv(t)
	marked, fpr, err := env.Fig7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Smaller ε marks at least as much data (column-wise monotonicity).
	for col := 1; col <= len(ChunkSizes); col++ {
		prev := -1.0
		for _, row := range marked.Rows {
			v := parseCell(t, row[col])
			if v < prev-1e-9 {
				t.Errorf("col %d: marked%% not monotone in ε: %v then %v", col, prev, v)
			}
			prev = v
		}
	}
	// FP rates within [0, 1].
	for _, row := range fpr.Rows {
		for _, c := range row[1:] {
			v := parseCell(t, c)
			if v < 0 || v > 1 {
				t.Errorf("FP rate %v out of range", v)
			}
		}
	}
}

func TestFig8GPUFarFasterAndFlat(t *testing.T) {
	env := testEnv(t)
	tab, err := env.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	var gpuTimes []float64
	for _, row := range tab.Rows {
		cpu := parseCell(t, row[1])
		gpu := parseCell(t, row[2])
		if cpu/gpu < 50 {
			t.Errorf("chunk %s: CPU/GPU = %.1f, want large gap", row[0], cpu/gpu)
		}
		gpuTimes = append(gpuTimes, gpu)
	}
	for i := 1; i < len(gpuTimes); i++ {
		ratio := gpuTimes[i] / gpuTimes[0]
		if ratio > 2 || ratio < 0.5 {
			t.Errorf("GPU time varies %.2fx across chunk sizes, want flat", ratio)
		}
	}
}

func TestFig9UringBeatsMmap(t *testing.T) {
	env := testEnv(t)
	tab, err := env.Fig9(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		mmapMean := parseCell(t, row[1])
		urMean := parseCell(t, row[3])
		if mmapMean <= urMean {
			t.Errorf("chunk %s: mmap %.3f not slower than io_uring %.3f", row[0], mmapMean, urMean)
		}
	}
}

func TestFig10ScalingShape(t *testing.T) {
	env := testEnv(t)
	tab, err := env.Fig10(context.Background(), 1e-3, 8, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("fig10 has %d rows", len(tab.Rows))
	}
	var prevOurs float64
	for i, row := range tab.Rows {
		direct := parseCell(t, row[3])
		ours := parseCell(t, row[4])
		if ours >= direct {
			t.Errorf("procs=%s: our makespan %.3f not below direct %.3f", row[0], ours, direct)
		}
		if i > 0 && ours >= prevOurs {
			t.Errorf("procs=%s: makespan did not shrink (%.3f -> %.3f)", row[0], prevOurs, ours)
		}
		prevOurs = ours
	}
}
