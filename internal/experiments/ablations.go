package experiments

import (
	"context"
	"fmt"

	"repro/internal/aio"
	"repro/internal/compare"
)

// Ablations renders the design-choice studies of DESIGN.md §6 as one
// table: each row disables or replaces one design decision of the method
// and reports the impact on the end-to-end comparison (virtual runtime and
// bytes read) or on the relevant sub-metric.
func (e *Env) Ablations(ctx context.Context) (*Table, error) {
	p, err := e.MakePair("500M", 77)
	if err != nil {
		return nil, err
	}
	const (
		eps   = 1e-5
		chunk = 4 << 10
	)
	if err := e.BuildMetadataFor(ctx, p, eps, chunk); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "Ablations",
		Title:  fmt.Sprintf("Design-choice ablations (%s checkpoints, ε=%.0e, %s chunks)", gb(p.Bytes), eps, kb(chunk)),
		Header: []string{"Variant", "Virtual(ms)", "BytesRead", "Notes"},
		Notes: []string{
			"each row changes exactly one design decision; baseline first",
			"see BenchmarkAblation* for the wall-clock counterparts",
		},
	}

	run := func(label, notes string, mutate func(*compare.Options)) error {
		opts := e.opts(eps, chunk)
		if mutate != nil {
			mutate(&opts)
		}
		e.Store.EvictAll()
		res, err := compare.CompareMerkle(ctx, e.Store, p.NameA, p.NameB, opts)
		if err != nil {
			return fmt.Errorf("ablation %s: %w", label, err)
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%.3f", res.VirtualElapsed().Seconds()*1e3),
			gb(res.BytesRead),
			notes,
		})
		return nil
	}

	if err := run("baseline", "mid-tree BFS, persistent io_uring + coalescing, depth-2 pipeline", nil); err != nil {
		return nil, err
	}
	if err := run("BFS from root", "no mid-tree start (§2.5.1)", func(o *compare.Options) {
		o.StartLevel = 1 // 0 is "auto"; 1 is effectively the root region
	}); err != nil {
		return nil, err
	}
	if err := run("mmap backend", "synchronous page faults instead of io_uring (§2.5.2)", func(o *compare.Options) {
		o.Backend = aio.Mmap{}
	}); err != nil {
		return nil, err
	}
	if err := run("no pipelining", "single giant slice: stage-2 I/O and compare serialize (Fig. 3)", func(o *compare.Options) {
		o.SliceBytes = 1 << 30
	}); err != nil {
		return nil, err
	}
	if err := run("no coalescing", "every candidate chunk is its own PFS op", func(o *compare.Options) {
		o.CoalesceMaxGap = -1
	}); err != nil {
		return nil, err
	}
	if err := run("depth-1 pipeline", "one buffer set: stage-2 I/O and compare serialize", func(o *compare.Options) {
		o.Depth = 1
	}); err != nil {
		return nil, err
	}
	if err := run("depth-4 pipeline", "four buffer sets in flight", func(o *compare.Options) {
		o.Depth = 4
	}); err != nil {
		return nil, err
	}

	// Tree-construction ablation (chained vs flat hashing) is covered by
	// BenchmarkAblationBlockChain: chained hashing costs hashing
	// throughput but makes the digest order-sensitive across the whole
	// chunk; note the trade-off here.
	t.Rows = append(t.Rows, []string{
		"flat chunk hash", "n/a", "n/a",
		"see BenchmarkAblationBlockChain: ~8x faster hashing, loses block-order chaining (§2.4)",
	})
	return t, nil
}
