package experiments

import (
	"context"
	"fmt"

	"repro/internal/compare"
)

// Fig7 reproduces Figure 7: the effectiveness of the error-bounded hash on
// the 2-billion-particle checkpoints. Part (a) is the percentage of
// checkpoint data marked as potentially changed; part (b) is the false
// positive rate (chunks marked despite containing no out-of-bound
// difference). Both as a function of chunk size, one curve per ε.
func (e *Env) Fig7(ctx context.Context) (*Table, *Table, error) {
	p, err := e.MakePair("2B", 7)
	if err != nil {
		return nil, nil, err
	}
	marked := &Table{
		ID:     "Figure 7a",
		Title:  "Percentage of checkpoint data marked as potentially changed",
		Header: append([]string{"Error bound"}, chunkHeaders()...),
	}
	fpr := &Table{
		ID:     "Figure 7b",
		Title:  "False positive rate of the error-bounded hash",
		Header: append([]string{"Error bound"}, chunkHeaders()...),
		Notes: []string{
			"false negatives are structurally impossible (conservative ε-grid); verified by tests",
		},
	}
	for _, eps := range ErrorBounds {
		rowM := []string{fmt.Sprintf("%.0e", eps)}
		rowF := []string{fmt.Sprintf("%.0e", eps)}
		for _, chunk := range ChunkSizes {
			if err := e.BuildMetadataFor(ctx, p, eps, chunk); err != nil {
				return nil, nil, err
			}
			e.Store.EvictAll()
			res, err := compare.CompareMerkle(ctx, e.Store, p.NameA, p.NameB, e.opts(eps, chunk))
			if err != nil {
				return nil, nil, fmt.Errorf("fig7 eps=%g chunk=%d: %w", eps, chunk, err)
			}
			rowM = append(rowM, fmt.Sprintf("%.1f%%", 100*res.MarkedFraction()))
			rowF = append(rowF, fmt.Sprintf("%.4f", res.FalsePositiveRate()))
		}
		marked.Rows = append(marked.Rows, rowM)
		fpr.Rows = append(fpr.Rows, rowF)
	}
	return marked, fpr, nil
}

func chunkHeaders() []string {
	h := make([]string, 0, len(ChunkSizes))
	for _, c := range ChunkSizes {
		h = append(h, kb(c))
	}
	return h
}
