package experiments

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/compare"
)

// Fig10 reproduces Figure 10 (a: ε=1e-7, b: ε=1e-3): strong scaling of
// the Merkle method vs Direct over an increasing process count (four per
// node), comparing a fixed workload of checkpoint pairs from the
// 17-billion-particle run. Reported: mean per-process throughput (GB/s,
// higher is better) and makespan (virtual s, lower is better).
func (e *Env) Fig10(ctx context.Context, eps float64, pairsCount int, processCounts []int) (*Table, error) {
	if pairsCount <= 0 {
		pairsCount = 128
	}
	if len(processCounts) == 0 {
		processCounts = []int{16, 32, 64, 128}
	}
	sub := "a"
	//lint:ignore floatcmp figure sublabel selection by ε decade, not a repro decision
	if eps >= 1e-4 {
		sub = "b"
	}
	// Build the workload: pairsCount checkpoint pairs at the 17B per-rank
	// scale, with metadata at the sweep's chunk size.
	const chunk = 64 << 10
	pairs := make([]cluster.Pair, 0, pairsCount)
	for i := 0; i < pairsCount; i++ {
		p, err := e.MakePair("17B", int64(1000+i))
		if err != nil {
			return nil, err
		}
		if err := e.BuildMetadataFor(ctx, p, eps, chunk); err != nil {
			return nil, err
		}
		pairs = append(pairs, cluster.Pair{NameA: p.NameA, NameB: p.NameB})
	}

	t := &Table{
		ID:    "Figure 10" + sub,
		Title: fmt.Sprintf("Strong scaling, %d checkpoint pairs, ε=%.0e", pairsCount, eps),
		Header: []string{"Processes", "Direct GB/s/proc", "Ours GB/s/proc",
			"Direct makespan", "Ours makespan", "speedup"},
		Notes: []string{
			"four processes per node share one node's PFS link (cost model)",
			fmt.Sprintf("chunk size %s; throughput is per-process mean on the virtual clock", kb(chunk)),
		},
	}
	for _, procs := range processCounts {
		row := []string{fmt.Sprintf("%d", procs)}
		var makespans []float64
		var ths []float64
		for _, m := range []compare.Method{compare.MethodDirect, compare.MethodMerkle} {
			res, err := cluster.Run(ctx, e.Store, pairs, cluster.Config{
				Processes: procs,
				PerNode:   4,
				Method:    m,
				Opts:      e.opts(eps, chunk),
				// The figure keeps the paper's stride schedule; the
				// work-stealing path is studied by cmd/benchshard.
				Static: true,
			})
			if err != nil {
				return nil, fmt.Errorf("fig10 %s procs=%d: %w", m, procs, err)
			}
			ths = append(ths, res.PerProcessThroughputGBps())
			makespans = append(makespans, res.MakespanVirtual.Seconds())
		}
		row = append(row,
			fmt.Sprintf("%.2f", ths[0]),
			fmt.Sprintf("%.2f", ths[1]),
			fmt.Sprintf("%.3f", makespans[0]),
			fmt.Sprintf("%.3f", makespans[1]),
			fmt.Sprintf("%.1fx", makespans[0]/makespans[1]),
		)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
