// Package experiments regenerates every table and figure of the paper's
// evaluation (§3) at laptop scale: same sweeps, same metrics, same
// comparative shapes, with sizes scaled down by a configurable factor and
// performance reported on the virtual clock (see DESIGN.md §2 and §5).
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one rendered experiment result.
type Table struct {
	// ID names the paper artifact ("Table 1", "Figure 5a", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Header labels the columns.
	Header []string
	// Rows holds the data, row-major, already formatted.
	Rows [][]string
	// Notes records scale factors, calibration and caveats.
	Notes []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "=== %s — %s ===\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			// Right-align numbers, left-align first column.
			if i == 0 {
				sb.WriteString(c)
				sb.WriteString(strings.Repeat(" ", pad))
			} else {
				sb.WriteString(strings.Repeat(" ", pad))
				sb.WriteString(c)
			}
		}
		return sb.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// gb formats a byte count as decimal gigabytes or megabytes.
func gb(bytes int64) string {
	switch {
	case bytes >= 1e9:
		return fmt.Sprintf("%.1f GB", float64(bytes)/1e9)
	case bytes >= 1e6:
		return fmt.Sprintf("%.1f MB", float64(bytes)/1e6)
	default:
		return fmt.Sprintf("%.1f KB", float64(bytes)/1e3)
	}
}

// kb formats a chunk size.
func kb(bytes int) string { return fmt.Sprintf("%dKB", bytes/1024) }
