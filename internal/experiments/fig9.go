package experiments

import (
	"context"
	"fmt"

	"repro/internal/aio"
	"repro/internal/compare"
)

// Fig9 reproduces Figure 9: completion time of the comparison with the
// mmap backend vs the io_uring backend for the scattered verification I/O
// (500-million-particle checkpoints, ε=1e-7, several repetitions to show
// spread). Lower is better; the paper reports io_uring >3× faster with
// less variance.
func (e *Env) Fig9(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "Figure 9",
		Title:  "Scattered-I/O backend completion time (virtual s), ε=1e-7",
		Header: []string{"Chunk", "mmap(mean)", "mmap(min–max)", "io_uring(mean)", "io_uring(min–max)", "speedup"},
		Notes: []string{
			"three repetitions with distinct perturbation seeds per cell",
		},
	}
	const reps = 3
	// One persistent engine for every cell; its ring workers are released
	// when the figure completes.
	uring := aio.NewUring(256, 4)
	defer uring.Close()
	for _, chunk := range []int{4 << 10, 8 << 10, 16 << 10} {
		stats := map[string][]float64{}
		for rep := 0; rep < reps; rep++ {
			p, err := e.MakePair("500M", int64(90+rep))
			if err != nil {
				return nil, err
			}
			if err := e.BuildMetadataFor(ctx, p, 1e-7, chunk); err != nil {
				return nil, err
			}
			for _, backend := range []aio.Backend{aio.Mmap{}, uring} {
				opts := e.opts(1e-7, chunk)
				opts.Backend = backend
				e.Store.EvictAll()
				res, err := compare.CompareMerkle(ctx, e.Store, p.NameA, p.NameB, opts)
				if err != nil {
					return nil, fmt.Errorf("fig9 %s chunk=%d: %w", backend.Name(), chunk, err)
				}
				stats[backend.Name()] = append(stats[backend.Name()], res.VirtualElapsed().Seconds())
			}
		}
		mmapMean, mmapMin, mmapMax := summarize(stats["mmap"])
		urMean, urMin, urMax := summarize(stats["io_uring"])
		t.Rows = append(t.Rows, []string{
			kb(chunk),
			fmt.Sprintf("%.3f", mmapMean),
			fmt.Sprintf("%.3f–%.3f", mmapMin, mmapMax),
			fmt.Sprintf("%.3f", urMean),
			fmt.Sprintf("%.3f–%.3f", urMin, urMax),
			fmt.Sprintf("%.1fx", mmapMean/urMean),
		})
	}
	return t, nil
}

func summarize(xs []float64) (mean, min, max float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs {
		mean += x
		if x < min { //lint:ignore floatcmp running min; exact ordering intended
			min = x
		}
		if x > max { //lint:ignore floatcmp running max; exact ordering intended
			max = x
		}
	}
	return mean / float64(len(xs)), min, max
}
