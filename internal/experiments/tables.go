package experiments

import (
	"fmt"
)

// Table1 reproduces the paper's Table 1: the HACC checkpoint schema and
// the problem-size → checkpoint-size map, at both paper and scaled sizes.
func (e *Env) Table1() (*Table, error) {
	t := &Table{
		ID:     "Table 1",
		Title:  "Content of HACC checkpoints",
		Header: []string{"Size", "#Particles(paper)", "Chkpt(paper)", "Chkpt(scaled)", "#Particles(scaled)"},
		Notes: []string{
			"fields: x, y, z, vx, vy, vz (F32 coordinates/velocities), phi (F32 grav. potential)",
			fmt.Sprintf("scale divisor: %d (see DESIGN.md §5)", e.ScaleDiv),
		},
	}
	for _, size := range []string{"500M", "1B", "2B", "17B"} {
		scaled, err := e.ScaledBytes(size)
		if err != nil {
			return nil, err
		}
		paperParticles := map[string]string{
			"500M": "0.5 B", "1B": "1 B", "2B": "2 B", "17B": "17 B (1.1 GB/rank)",
		}[size]
		t.Rows = append(t.Rows, []string{
			size,
			paperParticles,
			gb(PaperCheckpointBytes[size]),
			gb(scaled),
			fmt.Sprintf("%d", scaledParticles(scaled)),
		})
	}
	return t, nil
}

// Table2 reproduces the paper's Table 2: the evaluation parameter matrix.
func (e *Env) Table2() (*Table, error) {
	return &Table{
		ID:     "Table 2",
		Title:  "Setup used to evaluate performance and scalability",
		Header: []string{"Description", "Values"},
		Rows: [][]string{
			{"Number of Nodes", "1, 2, 4, 8, 16, 32 (simulated; 4 processes per node)"},
			{"Error bounds", "1e-3, 1e-4, 1e-5, 1e-6, 1e-7"},
			{"Chunk sizes", "4KB-512KB"},
		},
		Notes: []string{
			"nodes are simulated processes sharing a cost-modelled PFS (internal/cluster)",
		},
	}, nil
}
