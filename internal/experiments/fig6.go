package experiments

import (
	"context"
	"fmt"

	"repro/internal/compare"
	"repro/internal/metrics"
)

// Fig6 reproduces Figure 6 (a: ε=1e-7, b: ε=1e-3): the comparison runtime
// broken into the five phase timers, across chunk sizes, in virtual
// seconds.
func (e *Env) Fig6(ctx context.Context, eps float64) (*Table, error) {
	p, err := e.MakePair("2B", 6)
	if err != nil {
		return nil, err
	}
	sub := "a"
	//lint:ignore floatcmp figure sublabel selection by ε decade, not a repro decision
	if eps >= 1e-4 {
		sub = "b"
	}
	t := &Table{
		ID:    "Figure 6" + sub,
		Title: fmt.Sprintf("Runtime breakdown (virtual s), error bound %.0e", eps),
		Header: []string{"Chunk", "Setup", "Read", "Deserialize", "CompareTree",
			"CompareDirect", "Total"},
		Notes: []string{
			"Read covers metadata only; CompareDirect owns its (overlapped) data loading, as in the paper",
		},
	}
	for _, chunk := range ChunkSizes {
		if err := e.BuildMetadataFor(ctx, p, eps, chunk); err != nil {
			return nil, err
		}
		e.Store.EvictAll()
		res, err := compare.CompareMerkle(ctx, e.Store, p.NameA, p.NameB, e.opts(eps, chunk))
		if err != nil {
			return nil, fmt.Errorf("fig6 eps=%g chunk=%d: %w", eps, chunk, err)
		}
		row := []string{kb(chunk)}
		for _, ph := range metrics.Phases() {
			row = append(row, fmt.Sprintf("%.4f", res.Breakdown.Get(ph).Virtual.Seconds()))
		}
		row = append(row, fmt.Sprintf("%.4f", res.VirtualElapsed().Seconds()))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
