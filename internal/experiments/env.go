package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/ckpt"
	"repro/internal/compare"
	"repro/internal/device"
	"repro/internal/errbound"
	"repro/internal/pfs"
	"repro/internal/service"
	"repro/internal/synth"
)

// Paper constants: the evaluation's problem sizes and sweeps (Tables 1–2).
var (
	// PaperCheckpointBytes are the per-checkpoint sizes of the three
	// Fig. 5 problem sizes (7/14/28 GB) plus the Fig. 10 per-rank share
	// of the 17-billion-particle run (563 GB over 512 ranks ≈ 1.1 GB).
	PaperCheckpointBytes = map[string]int64{
		"500M": 7e9,
		"1B":   14e9,
		"2B":   28e9,
		"17B":  1.1e9,
	}
	// ErrorBounds is the ε sweep of Table 2.
	ErrorBounds = []float64{1e-3, 1e-4, 1e-5, 1e-6, 1e-7}
	// ChunkSizes is the chunk-size sweep of Table 2 / Fig. 5.
	ChunkSizes = []int{4 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}
)

// BytesPerParticle is the checkpoint footprint of one particle (Table 1:
// seven float32 fields).
const BytesPerParticle = 28

// Env is the shared experiment environment.
type Env struct {
	// Store is the PFS tier the checkpoints live on.
	Store *pfs.Store
	// ScaleDiv divides every paper size (default 448: 7 GB → ~15.6 MB).
	ScaleDiv int
	// Exec runs comparison kernels.
	Exec device.Executor
	// Seed makes all workloads deterministic.
	Seed int64
}

// NewEnv creates an experiment environment rooted at dir.
func NewEnv(dir string, scaleDiv int) (*Env, error) {
	if scaleDiv <= 0 {
		scaleDiv = 448
	}
	store, err := pfs.NewStore(filepath.Join(dir, "pfs"), pfs.LustreModel())
	if err != nil {
		return nil, err
	}
	return &Env{
		Store:    store,
		ScaleDiv: scaleDiv,
		Exec:     service.Default().Executor(),
		Seed:     1,
	}, nil
}

// ScaledBytes maps a paper checkpoint size to this environment's size.
func (e *Env) ScaledBytes(size string) (int64, error) {
	paper, ok := PaperCheckpointBytes[size]
	if !ok {
		return 0, fmt.Errorf("experiments: unknown problem size %q", size)
	}
	b := paper / int64(e.ScaleDiv)
	// Keep fields a multiple of the largest chunk size so sweeps align.
	const quantum = 7 * 4 * 1024
	if b < quantum {
		b = quantum
	}
	return b - b%quantum, nil
}

// scaledParticles converts a scaled checkpoint size to a particle count.
func scaledParticles(ckptBytes int64) int {
	return int(ckptBytes / BytesPerParticle)
}

// paperSetupVirtual is the fixed comparison setup cost at paper scale
// (buffer allocation and device context, ~the Fig. 6 setup bars).
const paperSetupVirtual = 500 * time.Millisecond

// opts builds comparison options for one sweep point. Fixed virtual costs
// shrink with the scale divisor so that scaled-down sweeps keep the
// paper's cost proportions.
func (e *Env) opts(eps float64, chunkSize int) compare.Options {
	return compare.Options{
		Epsilon:      eps,
		ChunkSize:    chunkSize,
		Exec:         e.Exec,
		SetupVirtual: paperSetupVirtual / time.Duration(e.ScaleDiv),
	}
}

// pairKey identifies a generated checkpoint pair on the store.
type pairKey struct {
	size string
	seed int64
}

// Pair is a generated checkpoint pair (runA/runB names on the store).
type Pair struct {
	NameA, NameB string
	Fields       []ckpt.FieldSpec
	Bytes        int64 // per-checkpoint raw data bytes
}

// MakePair generates (or reuses) a synthetic nondeterministic-run
// checkpoint pair for a paper problem size, with the HACC Table 1 schema
// at scaled particle count. The perturbation spans the whole ε sweep (see
// internal/synth).
func (e *Env) MakePair(size string, seed int64) (Pair, error) {
	ckptBytes, err := e.ScaledBytes(size)
	if err != nil {
		return Pair{}, err
	}
	particles := scaledParticles(ckptBytes)
	runA := fmt.Sprintf("%s-s%d-A", size, seed)
	runB := fmt.Sprintf("%s-s%d-B", size, seed)
	nameA := ckpt.Name(runA, 0, 0)
	nameB := ckpt.Name(runB, 0, 0)

	fields := make([]ckpt.FieldSpec, 0, 7)
	for _, n := range []string{"x", "y", "z", "vx", "vy", "vz", "phi"} {
		fields = append(fields, ckpt.FieldSpec{Name: n, DType: errbound.Float32, Count: int64(particles)})
	}
	p := Pair{NameA: nameA, NameB: nameB, Fields: fields, Bytes: int64(particles) * BytesPerParticle}

	// Reuse if both files already exist (pairs are deterministic in seed).
	if names, err := e.Store.List(runA + "/"); err == nil && len(names) > 0 {
		if namesB, err := e.Store.List(runB + "/"); err == nil && len(namesB) > 0 {
			return p, nil
		}
	}

	pert := synth.DefaultPerturb(e.Seed + seed)
	dataA, dataB := synth.RunPair(particles, len(fields), e.Seed*7919+seed, pert)
	metaA := ckpt.Meta{RunID: runA, Iteration: 0, Rank: 0, Fields: fields}
	metaB := ckpt.Meta{RunID: runB, Iteration: 0, Rank: 0, Fields: fields}
	if _, err := ckpt.WriteCheckpoint(e.Store, metaA, dataA); err != nil {
		return Pair{}, err
	}
	if _, err := ckpt.WriteCheckpoint(e.Store, metaB, dataB); err != nil {
		return Pair{}, err
	}
	return p, nil
}

// BuildMetadataFor (re)builds and saves both runs' metadata for a sweep
// point. Metadata depends on (ε, chunk size), so sweeps rebuild it.
func (e *Env) BuildMetadataFor(ctx context.Context, p Pair, eps float64, chunkSize int) error {
	opts := e.opts(eps, chunkSize)
	for _, name := range []string{p.NameA, p.NameB} {
		if _, _, err := compare.BuildAndSave(ctx, e.Store, name, opts); err != nil {
			return err
		}
	}
	return nil
}
