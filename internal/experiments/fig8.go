package experiments

import (
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/compare"
	"repro/internal/device"
)

// Fig8 reproduces Figure 8: Merkle tree construction cost on the CPU vs
// the GPU (500-million-particle checkpoint, ε=1e-7), across chunk sizes.
//
// Construction is actually executed at the scaled size (serial executor
// for the CPU column, parallel executor for the GPU column; the measured
// wall times are reported for reference), while the virtual columns price
// the same kernels at the PAPER's 7 GB checkpoint size on the two device
// models — reproducing the ~4-orders-of-magnitude gap and the flatness in
// chunk size the paper reports.
func (e *Env) Fig8() (*Table, error) {
	p, err := e.MakePair("500M", 8)
	if err != nil {
		return nil, err
	}
	r, _, err := ckpt.OpenReader(e.Store, p.NameA)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	fields := r.Meta().Fields
	data := make([][]byte, len(fields))
	for i := range fields {
		d, _, err := r.ReadField(i)
		if err != nil {
			return nil, err
		}
		data[i] = d
	}

	paperBytes := PaperCheckpointBytes["500M"]
	t := &Table{
		ID:    "Figure 8",
		Title: "Tree construction cost, 500M particles (7 GB), ε=1e-7",
		Header: []string{"Chunk", "CPU virt(s)", "GPU virt(s)", "CPU/GPU",
			"CPU wall(ms,scaled)", "GPU wall(ms,scaled)"},
		Notes: []string{
			"virtual columns price the kernels at the paper's 7 GB size on the device models",
			fmt.Sprintf("wall columns measure real construction of the %s scaled checkpoint", gb(p.Bytes)),
		},
	}
	for _, chunk := range []int{4 << 10, 8 << 10, 16 << 10, 32 << 10} {
		cpuOpts := compare.Options{Epsilon: 1e-7, ChunkSize: chunk, Exec: device.Serial{}, Device: device.CPUModel()}
		gpuOpts := compare.Options{Epsilon: 1e-7, ChunkSize: chunk, Exec: e.Exec, Device: device.GPUModel()}
		_, cpuStats, err := compare.Build(fields, data, cpuOpts)
		if err != nil {
			return nil, err
		}
		_, gpuStats, err := compare.Build(fields, data, gpuOpts)
		if err != nil {
			return nil, err
		}
		cpu := priceBuild(device.CPUModel(), paperBytes, len(fields), chunk)
		gpu := priceBuild(device.GPUModel(), paperBytes, len(fields), chunk)
		t.Rows = append(t.Rows, []string{
			kb(chunk),
			fmt.Sprintf("%.4g", cpu.Seconds()),
			fmt.Sprintf("%.4g", gpu.Seconds()),
			fmt.Sprintf("%.0fx", float64(cpu)/float64(gpu)),
			fmt.Sprintf("%.1f", float64(cpuStats.Wall.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(gpuStats.Wall.Microseconds())/1000),
		})
	}
	return t, nil
}

// priceBuild prices metadata construction for a checkpoint of totalBytes
// split into nFields fields, at the given chunk size, on a device model —
// the same kernel structure compare.Build charges.
func priceBuild(m device.Model, totalBytes int64, nFields, chunk int) time.Duration {
	perField := totalBytes / int64(nFields)
	leaves := perField / int64(chunk)
	levels := 0
	for w := int64(1); w < leaves; w <<= 1 {
		levels++
	}
	var total time.Duration
	for f := 0; f < nFields; f++ {
		total += m.HashTime(perField)
		for l := levels - 1; l >= 0; l-- {
			total += m.NodeHashTime(int64(1) << l)
		}
	}
	return total
}
