// Package engine provides the plan/execute split behind every comparison
// entry point. A planner builds an explicit Plan — a small DAG of typed
// steps (load-metadata, tree-diff, coalesce, stream-verify, report, ...)
// — and Execute runs it with context cancellation checked before every
// step and a LIFO cleanup chain that runs on every exit path, so
// early-return errors can no longer leak checkpoint readers or pooled
// buffers.
//
// Plans are acyclic by construction: Add only accepts dependencies on
// steps that already exist, so insertion order is always a valid
// topological order and Execute simply runs steps in the order they were
// added. The value of the explicit DAG is not scheduling cleverness but
// uniformity: every entry point declares the same step vocabulary, gets
// the same per-step wall/virtual timing table (Report.Steps), the same
// cancellation points, and the same cleanup discipline, instead of
// hand-rolling its own open→load→diff→verify orchestration.
package engine

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/metrics"
	"repro/internal/retry"
)

// StepKind names the type of a plan node. Kinds are the shared vocabulary
// across planners; labels distinguish instances within one plan.
type StepKind string

// The step vocabulary used by the comparison planners.
const (
	// StepSetup opens checkpoints, validates options, allocates state.
	StepSetup StepKind = "setup"
	// StepLoadMetadata loads or builds a Merkle metadata tree.
	StepLoadMetadata StepKind = "load-metadata"
	// StepTreeDiff walks two trees to find candidate chunks (stage 1).
	StepTreeDiff StepKind = "tree-diff"
	// StepCoalesce assembles candidate chunks into batched read plans.
	StepCoalesce StepKind = "coalesce"
	// StepStreamVerify runs the overlapped read+compare pipeline (stage 2).
	StepStreamVerify StepKind = "stream-verify"
	// StepReadFull reads whole fields for blocking host-side comparison.
	StepReadFull StepKind = "read-full"
	// StepHostCompare compares buffers on the host (ε checks, allclose).
	StepHostCompare StepKind = "host-compare"
	// StepCompact rewrites a checkpoint into its compacted form.
	StepCompact StepKind = "compact"
	// StepPartition groups stage-1 candidate chunks into self-describing
	// shard work units and assigns them to workers (internal/shard).
	StepPartition StepKind = "partition"
	// StepShardExecute runs the coordinator/worker scale-out: workers
	// drain and steal work-unit deques, the coordinator folds verdicts.
	StepShardExecute StepKind = "shard-execute"
	// StepReport assembles the final result from accumulated state.
	StepReport StepKind = "report"
)

// StepID identifies a step within its plan (its insertion index).
type StepID int

// StepFunc is the body of one step. It receives the plan context and the
// executor, through which it registers cleanups and prices virtual time.
type StepFunc func(ctx context.Context, x *Exec) error

type step struct {
	kind  StepKind
	label string
	run   StepFunc
	deps  []StepID
}

// Plan is an ordered DAG of typed steps. The zero value is an empty plan.
type Plan struct {
	steps []step

	// Retry is the per-step retry policy. A step whose error classifies
	// retry.Transient is re-run after a deterministic virtual backoff,
	// charged to the step's virtual time. The zero policy disables
	// retries. Inner layers that retry themselves (stream reads, group
	// unions) wrap their exhausted errors as Permanent, so step-level and
	// read-level budgets never multiply.
	Retry retry.Policy
}

// Add appends a step and returns its ID. Dependencies must reference
// previously added steps — the plan is acyclic by construction — and are
// recorded for introspection (Describe); execution order is insertion
// order, which the dependency rule guarantees is topological.
func (p *Plan) Add(kind StepKind, label string, run StepFunc, deps ...StepID) StepID {
	id := StepID(len(p.steps))
	for _, d := range deps {
		if d < 0 || d >= id {
			panic(fmt.Sprintf("engine: step %q depends on %d, not yet in plan (have %d steps)", label, d, id))
		}
	}
	p.steps = append(p.steps, step{kind: kind, label: label, run: run, deps: deps})
	return id
}

// Len returns the number of steps in the plan.
func (p *Plan) Len() int { return len(p.steps) }

// Describe renders the plan's shape — "kind:label(deps)" per step — for
// tests and debugging.
func (p *Plan) Describe() string {
	s := ""
	for i, st := range p.steps {
		if i > 0 {
			s += " -> "
		}
		s += fmt.Sprintf("%s:%s", st.kind, st.label)
		if len(st.deps) > 0 {
			s += fmt.Sprintf("%v", st.deps)
		}
	}
	return s
}

// Exec is the per-run executor state handed to every step: the LIFO
// cleanup chain and the current step's virtual-time accumulator.
type Exec struct {
	cleanups []func()
	virtual  time.Duration
}

// Defer registers fn on the executor's cleanup chain. Cleanups run in
// LIFO order on every exit path of Execute — success, step error, or
// cancellation — which is what makes early returns leak-free.
func (x *Exec) Defer(fn func()) {
	x.cleanups = append(x.cleanups, fn)
}

// CloseOnExit registers a closer (a checkpoint reader, a file) on the
// cleanup chain. Close errors on the cleanup path are intentionally
// dropped: the primary error — if any — is already on its way out.
func (x *Exec) CloseOnExit(c io.Closer) {
	if c == nil {
		return
	}
	x.Defer(func() { _ = c.Close() })
}

// AddVirtual prices virtual time onto the currently running step.
func (x *Exec) AddVirtual(d time.Duration) { x.virtual += d }

// runCleanups fires the chain LIFO and clears it.
func (x *Exec) runCleanups() {
	for i := len(x.cleanups) - 1; i >= 0; i-- {
		x.cleanups[i]()
	}
	x.cleanups = nil
}

// Report summarizes one executed plan.
type Report struct {
	// Steps is the per-step timing table, in execution order. On failure
	// it covers the steps that ran, including the failed one.
	Steps metrics.StepSpans
	// Failed is the label of the step that returned an error or was
	// preempted by cancellation ("" on success).
	Failed string
	// Retries counts step re-runs taken under the plan's retry policy.
	Retries int
}

// Total returns the summed wall/virtual span of all executed steps.
func (r *Report) Total() metrics.Span { return r.Steps.Total() }

// Execute runs the plan's steps in order. The context is checked before
// every step, so a canceled plan stops at the next step boundary (steps
// also observe ctx internally through the layers below); the returned
// error is then ctx.Err(). Step errors are returned unwrapped — the
// Report records which step failed. Cleanups registered by any step run
// before Execute returns, on every path.
func Execute(ctx context.Context, p *Plan) (Report, error) {
	var rep Report
	x := &Exec{}
	defer x.runCleanups()
	for _, st := range p.steps {
		if err := ctx.Err(); err != nil {
			rep.Failed = st.label
			return rep, err
		}
		sw := metrics.NewStopwatch()
		x.virtual = 0
		var err error
		for attempt := 0; ; attempt++ {
			err = st.run(ctx, x)
			if err == nil || !retry.IsTransient(err) {
				break
			}
			d, ok := p.Retry.Next(attempt + 1)
			if !ok {
				err = retry.Exhausted(err, attempt+1)
				break
			}
			// Backoff is virtual: priced onto the step, never slept.
			x.AddVirtual(d)
			rep.Retries++
			if cerr := ctx.Err(); cerr != nil {
				err = cerr
				break
			}
		}
		rep.Steps.Add(string(st.kind), st.label, metrics.Span{Wall: sw.Lap(), Virtual: x.virtual})
		if err != nil {
			rep.Failed = st.label
			return rep, err
		}
	}
	return rep, nil
}
