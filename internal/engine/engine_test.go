package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestExecuteRunsStepsInOrder(t *testing.T) {
	var p Plan
	var got []string
	setup := p.Add(StepSetup, "open", func(ctx context.Context, x *Exec) error {
		got = append(got, "open")
		return nil
	})
	diff := p.Add(StepTreeDiff, "diff", func(ctx context.Context, x *Exec) error {
		got = append(got, "diff")
		x.AddVirtual(3 * time.Millisecond)
		return nil
	}, setup)
	p.Add(StepReport, "report", func(ctx context.Context, x *Exec) error {
		got = append(got, "report")
		return nil
	}, diff)

	rep, err := Execute(context.Background(), &p)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if strings.Join(got, ",") != "open,diff,report" {
		t.Fatalf("order = %v", got)
	}
	if rep.Failed != "" {
		t.Fatalf("Failed = %q, want empty", rep.Failed)
	}
	if len(rep.Steps) != 3 {
		t.Fatalf("Steps = %d, want 3", len(rep.Steps))
	}
	sp, ok := rep.Steps.Get("diff")
	if !ok || sp.Virtual != 3*time.Millisecond {
		t.Fatalf("diff span = %v ok=%v, want virtual 3ms", sp, ok)
	}
	if rep.Total().Virtual != 3*time.Millisecond {
		t.Fatalf("Total virtual = %v", rep.Total().Virtual)
	}
}

func TestExecuteStepErrorUnwrappedAndRecorded(t *testing.T) {
	sentinel := errors.New("boom")
	var p Plan
	p.Add(StepSetup, "a", func(ctx context.Context, x *Exec) error { return nil })
	p.Add(StepTreeDiff, "b", func(ctx context.Context, x *Exec) error { return sentinel })
	ran := false
	p.Add(StepReport, "c", func(ctx context.Context, x *Exec) error { ran = true; return nil })

	rep, err := Execute(context.Background(), &p)
	if err != sentinel {
		t.Fatalf("err = %v, want the unwrapped sentinel", err)
	}
	if rep.Failed != "b" {
		t.Fatalf("Failed = %q, want b", rep.Failed)
	}
	if ran {
		t.Fatal("step after failure ran")
	}
	// The failed step's timing is still recorded.
	if len(rep.Steps) != 2 {
		t.Fatalf("Steps = %d, want 2", len(rep.Steps))
	}
}

func TestExecuteCleanupsLIFOOnEveryPath(t *testing.T) {
	cases := []struct {
		name string
		fail bool
	}{
		{"success", false},
		{"error", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var order []string
			var p Plan
			p.Add(StepSetup, "s1", func(ctx context.Context, x *Exec) error {
				x.Defer(func() { order = append(order, "c1") })
				x.Defer(func() { order = append(order, "c2") })
				return nil
			})
			p.Add(StepStreamVerify, "s2", func(ctx context.Context, x *Exec) error {
				x.Defer(func() { order = append(order, "c3") })
				if tc.fail {
					return errors.New("fail")
				}
				return nil
			})
			_, err := Execute(context.Background(), &p)
			if tc.fail && err == nil {
				t.Fatal("want error")
			}
			if !tc.fail && err != nil {
				t.Fatalf("Execute: %v", err)
			}
			if strings.Join(order, ",") != "c3,c2,c1" {
				t.Fatalf("cleanup order = %v, want LIFO c3,c2,c1", order)
			}
		})
	}
}

func TestExecuteCanceledBeforeStep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var p Plan
	cleaned := false
	p.Add(StepSetup, "s1", func(ctx context.Context, x *Exec) error {
		x.Defer(func() { cleaned = true })
		cancel() // cancels before the next step boundary
		return nil
	})
	p.Add(StepStreamVerify, "s2", func(ctx context.Context, x *Exec) error {
		t.Fatal("step ran after cancel")
		return nil
	})
	rep, err := Execute(ctx, &p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Failed != "s2" {
		t.Fatalf("Failed = %q, want s2 (the preempted step)", rep.Failed)
	}
	if !cleaned {
		t.Fatal("cleanup did not run on the cancellation path")
	}
}

func TestCloseOnExit(t *testing.T) {
	var p Plan
	c := &countCloser{}
	p.Add(StepSetup, "s", func(ctx context.Context, x *Exec) error {
		x.CloseOnExit(c)
		x.CloseOnExit(nil) // nil closer is a no-op
		return nil
	})
	if _, err := Execute(context.Background(), &p); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if c.n != 1 {
		t.Fatalf("Close called %d times, want 1", c.n)
	}
}

type countCloser struct{ n int }

func (c *countCloser) Close() error { c.n++; return nil }

func TestAddRejectsForwardDeps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add accepted a forward dependency")
		}
	}()
	var p Plan
	p.Add(StepSetup, "s", func(ctx context.Context, x *Exec) error { return nil }, StepID(0))
}

func TestDescribe(t *testing.T) {
	var p Plan
	a := p.Add(StepSetup, "open", func(ctx context.Context, x *Exec) error { return nil })
	p.Add(StepTreeDiff, "diff", func(ctx context.Context, x *Exec) error { return nil }, a)
	d := p.Describe()
	if !strings.Contains(d, "setup:open") || !strings.Contains(d, "tree-diff:diff[0]") {
		t.Fatalf("Describe = %q", d)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
}
