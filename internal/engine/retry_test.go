package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/retry"
)

func stepRetryPolicy() retry.Policy {
	return retry.Policy{MaxAttempts: 3, BaseDelay: 2 * time.Millisecond, Multiplier: 2}
}

func TestExecuteRetriesTransientStep(t *testing.T) {
	var p Plan
	p.Retry = stepRetryPolicy()
	runs := 0
	p.Add(StepLoadMetadata, "load", func(ctx context.Context, x *Exec) error {
		runs++
		if runs < 3 {
			return retry.Mark(errors.New("blip"), retry.Transient)
		}
		x.AddVirtual(time.Millisecond)
		return nil
	})
	rep, err := Execute(context.Background(), &p)
	if err != nil {
		t.Fatalf("transient step should succeed after retries: %v", err)
	}
	if runs != 3 || rep.Retries != 2 {
		t.Fatalf("runs=%d Retries=%d, want 3 runs / 2 retries", runs, rep.Retries)
	}
	sp, ok := rep.Steps.Get("load")
	if !ok {
		t.Fatal("missing step span")
	}
	// The span carries the successful attempt's work plus both backoffs.
	if sp.Virtual <= time.Millisecond {
		t.Fatalf("step virtual %v should include backoff beyond the 1ms of work", sp.Virtual)
	}
}

func TestExecuteDoesNotRetryPermanent(t *testing.T) {
	var p Plan
	p.Retry = stepRetryPolicy()
	sentinel := errors.New("logic bug")
	runs := 0
	p.Add(StepSetup, "open", func(ctx context.Context, x *Exec) error { runs++; return sentinel })
	rep, err := Execute(context.Background(), &p)
	if !errors.Is(err, sentinel) || runs != 1 {
		t.Fatalf("permanent error retried: runs=%d err=%v", runs, err)
	}
	if rep.Retries != 0 || rep.Failed != "open" {
		t.Fatalf("report = %+v", rep)
	}
}

func TestExecuteExhaustedRetryDemotes(t *testing.T) {
	var p Plan
	p.Retry = stepRetryPolicy()
	base := retry.Mark(errors.New("always flaky"), retry.Transient)
	runs := 0
	p.Add(StepStreamVerify, "verify", func(ctx context.Context, x *Exec) error { runs++; return base })
	_, err := Execute(context.Background(), &p)
	if runs != 3 {
		t.Fatalf("runs = %d, want MaxAttempts=3", runs)
	}
	if retry.Classify(err) != retry.Permanent || !errors.Is(err, base) {
		t.Fatalf("exhausted step error should be Permanent and keep the chain: %v", err)
	}
}

func TestExecuteZeroPolicySingleAttempt(t *testing.T) {
	var p Plan
	runs := 0
	p.Add(StepSetup, "open", func(ctx context.Context, x *Exec) error {
		runs++
		return retry.Mark(errors.New("blip"), retry.Transient)
	})
	if _, err := Execute(context.Background(), &p); err == nil {
		t.Fatal("want error")
	}
	if runs != 1 {
		t.Fatalf("zero policy ran step %d times, want 1", runs)
	}
}
