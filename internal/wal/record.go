// Package wal is the crash-durable job journal behind the service
// plane: an append-only, CRC-framed, hash-chained log of job lifecycle
// events (accepted, started, verdict) that makes reprod survive kill -9
// with exactly-once verdicts and gives every verdict an auditable,
// self-verifying record.
//
// Three disciplines compose:
//
//   - Torn-tail safety (the internal/cas index.log discipline): every
//     record is framed with a magic, its own file offset, a length, and
//     a CRC32 of the payload. A crash mid-append leaves a torn frame
//     that replay skips — recovery never trusts partial bytes. Because
//     pfs has no truncate, a torn region is left in place as a hole and
//     the next append continues after it; the stored-offset field is
//     what lets replay resynchronize on the next genuine frame (a
//     frame-shaped byte pattern at the wrong offset is damage, not
//     data).
//
//   - Hash chaining ("Self-Verifying Measurement Records"): each
//     record's payload embeds the Murmur3 digest of the previous
//     record's payload, so the journal is a tamper-evident chain. A
//     crash hole is distinguishable from tampering: a hole is skipped
//     bytes whose successor still chains from the last valid record,
//     while a flipped byte in a record that has a successor breaks the
//     successor's Prev linkage and replay fails with ErrTampered. (A
//     flip in the final record is indistinguishable from a torn tail —
//     the record is dropped, visibly, as TornTailBytes; see DESIGN §16
//     for this blind spot.)
//
//   - Exactly-once verdicts: durability is part of acceptance. The
//     accepted record is appended before a submission returns, and the
//     verdict record is appended before the verdict becomes visible,
//     so replay can classify every accepted job as completed (serve the
//     ledger verdict, never recompute) or unfinished (re-admit and
//     re-run). After any append error the journal wedges — every later
//     append fails — so the in-memory chain never diverges from disk
//     within one process life.
//
// Records are only constructed through Journal.Append, which assigns
// Seq, Prev, and Digest; the walchain lint rule enforces this outside
// the package.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/murmur3"
)

// DefaultName is the store-relative journal path reprod uses when the
// -journal flag is given without a custom name.
const DefaultName = "wal/journal.log"

// ToolVersion is the journal writer's version string, bound into every
// record so an auditor knows which code produced a verdict.
const ToolVersion = "repro-wal/1"

// Type is a record's lifecycle event.
type Type uint8

// Record types, in lifecycle order.
const (
	// TypeAccepted: the job passed admission; its spec is bound. The
	// record is durable before the submission returns, so a job the
	// client saw accepted is never lost.
	TypeAccepted Type = 1
	// TypeStarted: the job acquired an execution slot.
	TypeStarted Type = 2
	// TypeVerdict: the job's outcome, durable before it is published.
	TypeVerdict Type = 3
)

// String returns the type's wire name.
func (t Type) String() string {
	switch t {
	case TypeAccepted:
		return "accepted"
	case TypeStarted:
		return "started"
	case TypeVerdict:
		return "verdict"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Record is one journal entry. Seq, Prev, and Digest are the chain
// coordinates and are assigned by Journal.Append (Append rejects a
// record arriving with any of them set); every other field is the
// caller's event payload. One Record type serves all three events —
// verdict-only fields are zero on accepted/started records.
type Record struct {
	// Seq is the record's 1-based position in the chain.
	Seq uint64 `json:"seq"`
	// Prev is the Murmur3 digest of the previous record's payload
	// (zero for the genesis record).
	Prev murmur3.Digest `json:"prev"`
	// Digest is the Murmur3 digest of this record's payload — the
	// value the next record's Prev must equal. Derived, not encoded.
	Digest murmur3.Digest `json:"digest"`

	// Type is the lifecycle event.
	Type Type `json:"type"`
	// Job is the plane-unique job ID the event belongs to.
	Job uint64 `json:"job"`
	// Tenant is the submitting tenant.
	Tenant string `json:"tenant"`
	// Kind is the job kind ("compare" | "group" | "shard").
	Kind string `json:"kind"`
	// Names lists the run snapshots the job binds: [A, B] for
	// compare/shard, [baseline, runs...] for group.
	Names []string `json:"names"`
	// Topology is the group pair coverage ("star" | "all-pairs"),
	// empty for pair jobs.
	Topology string `json:"topology,omitempty"`
	// Workers is the shard fleet size, 0 otherwise.
	Workers int `json:"workers,omitempty"`
	// Degrade records whether the degradation ladder was enabled.
	Degrade bool `json:"degrade,omitempty"`
	// Epsilon is the normalized error bound ε the job compares at.
	Epsilon float64 `json:"epsilon"`
	// ChunkSize is the normalized hashing granularity in bytes.
	ChunkSize int `json:"chunkSize"`
	// ToolVersion identifies the writer.
	ToolVersion string `json:"toolVersion"`

	// Verdict-record fields (zero otherwise).

	// Exit is the verdict on the reprocmp 0/2/3/1 exit-code contract.
	Exit int `json:"exit"`
	// DiffCount is the total out-of-bound element count (-1 means
	// "diverged, count unknown").
	DiffCount int64 `json:"diffCount"`
	// Degraded, UnverifiedChunks, ReadRetries, RingFallbacks, and
	// CASPruned carry the degradation ladder's evidence, so an auditor
	// can see why a verdict was inconclusive.
	Degraded         bool `json:"degraded,omitempty"`
	UnverifiedChunks int  `json:"unverifiedChunks,omitempty"`
	ReadRetries      int  `json:"readRetries,omitempty"`
	RingFallbacks    int  `json:"ringFallbacks,omitempty"`
	CASPruned        int  `json:"casPruned,omitempty"`
	// ErrMsg is the failure text of an error verdict.
	ErrMsg string `json:"errMsg,omitempty"`
	// Roots holds the run snapshots' combined Merkle roots, aligned
	// with Names (zero digests when the job failed before loading
	// metadata). Binding the roots into the chained record is what lets
	// verify-log recompute a historical verdict's inputs.
	Roots []murmur3.Digest `json:"roots,omitempty"`
}

// Frame layout: magic u32 | offset u64 | payloadLen u32 | payload |
// crc32 u32. The CRC covers offset, payloadLen, and payload; the offset
// field must equal the frame's own position in the file, which is how
// replay resynchronizes after a damaged region.
const (
	frameMagic    uint32 = 0x4c41574a // "JWAL" little-endian
	frameHeader          = 4 + 8 + 4
	frameOverhead        = frameHeader + 4
	// maxPayload bounds a decoded payload so a corrupt length field
	// cannot drive a huge allocation; real records are a few hundred
	// bytes.
	maxPayload = 1 << 20
)

// recVersion is the payload encoding version.
const recVersion = 1

// errDecode marks a payload that does not decode; replay treats it like
// any other damage (skip and resync, then let chain linkage judge).
var errDecode = errors.New("wal: payload does not decode")

// appendString writes a u32 length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// encodePayload serializes everything but the derived Digest.
func encodePayload(r *Record) []byte {
	b := make([]byte, 0, 192)
	b = append(b, recVersion, byte(r.Type))
	b = binary.LittleEndian.AppendUint64(b, r.Seq)
	b = append(b, r.Prev[:]...)
	b = binary.LittleEndian.AppendUint64(b, r.Job)
	b = appendString(b, r.Tenant)
	b = appendString(b, r.Kind)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Names)))
	for _, n := range r.Names {
		b = appendString(b, n)
	}
	b = appendString(b, r.Topology)
	b = binary.LittleEndian.AppendUint32(b, uint32(r.Workers))
	b = append(b, boolByte(r.Degrade))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.Epsilon))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.ChunkSize))
	b = appendString(b, r.ToolVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(r.Exit)))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.DiffCount))
	b = append(b, boolByte(r.Degraded))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.UnverifiedChunks))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.ReadRetries))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.RingFallbacks))
	b = binary.LittleEndian.AppendUint32(b, uint32(r.CASPruned))
	b = appendString(b, r.ErrMsg)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Roots)))
	for _, d := range r.Roots {
		b = append(b, d[:]...)
	}
	return b
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// payloadReader is a bounds-checked cursor over one payload.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (p *payloadReader) bytes(n int) []byte {
	if p.err != nil {
		return nil
	}
	if n < 0 || p.off+n > len(p.b) {
		p.err = errDecode
		return nil
	}
	out := p.b[p.off : p.off+n]
	p.off += n
	return out
}

func (p *payloadReader) u8() byte {
	b := p.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (p *payloadReader) u32() uint32 {
	b := p.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (p *payloadReader) u64() uint64 {
	b := p.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (p *payloadReader) str() string {
	n := p.u32()
	if p.err != nil || n > maxPayload {
		p.err = errDecode
		return ""
	}
	return string(p.bytes(int(n)))
}

func (p *payloadReader) digest() murmur3.Digest {
	var d murmur3.Digest
	copy(d[:], p.bytes(murmur3.DigestSize))
	return d
}

// decodePayload parses one payload and derives its Digest.
func decodePayload(payload []byte) (Record, error) {
	p := &payloadReader{b: payload}
	if v := p.u8(); v != recVersion {
		return Record{}, fmt.Errorf("%w: version %d", errDecode, v)
	}
	var r Record
	r.Type = Type(p.u8())
	r.Seq = p.u64()
	r.Prev = p.digest()
	r.Job = p.u64()
	r.Tenant = p.str()
	r.Kind = p.str()
	nNames := p.u32()
	if p.err == nil && nNames > maxPayload/4 {
		return Record{}, errDecode
	}
	for i := uint32(0); i < nNames && p.err == nil; i++ {
		r.Names = append(r.Names, p.str())
	}
	r.Topology = p.str()
	r.Workers = int(int32(p.u32()))
	r.Degrade = p.u8() != 0
	r.Epsilon = math.Float64frombits(p.u64())
	r.ChunkSize = int(int32(p.u32()))
	r.ToolVersion = p.str()
	r.Exit = int(int32(p.u32()))
	r.DiffCount = int64(p.u64())
	r.Degraded = p.u8() != 0
	r.UnverifiedChunks = int(int32(p.u32()))
	r.ReadRetries = int(int32(p.u32()))
	r.RingFallbacks = int(int32(p.u32()))
	r.CASPruned = int(int32(p.u32()))
	r.ErrMsg = p.str()
	nRoots := p.u32()
	if p.err == nil && nRoots > maxPayload/murmur3.DigestSize {
		return Record{}, errDecode
	}
	for i := uint32(0); i < nRoots && p.err == nil; i++ {
		r.Roots = append(r.Roots, p.digest())
	}
	if p.err != nil {
		return Record{}, p.err
	}
	if p.off != len(payload) {
		return Record{}, fmt.Errorf("%w: %d trailing bytes", errDecode, len(payload)-p.off)
	}
	r.Digest = payloadDigest(payload)
	return r, nil
}

// payloadDigest is the chain digest of one payload.
func payloadDigest(payload []byte) murmur3.Digest {
	return murmur3.SumDigest(payload, murmur3.Digest{})
}

// encodeFrame wraps a payload destined for file offset off.
func encodeFrame(payload []byte, off int64) []byte {
	b := make([]byte, 0, frameOverhead+len(payload))
	b = binary.LittleEndian.AppendUint32(b, frameMagic)
	b = binary.LittleEndian.AppendUint64(b, uint64(off))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	crc := crc32.ChecksumIEEE(b[4:])
	return binary.LittleEndian.AppendUint32(b, crc)
}

// frameAt checks whether a syntactically valid frame starts at off:
// magic present, stored offset equals off, length in bounds, CRC good.
// It returns the payload and total frame length. ok=false means damage
// (or a torn tail when the frame would extend past EOF).
func frameAt(raw []byte, off int) (payload []byte, frameLen int, ok bool) {
	if off+frameHeader > len(raw) {
		return nil, 0, false
	}
	if binary.LittleEndian.Uint32(raw[off:]) != frameMagic {
		return nil, 0, false
	}
	if binary.LittleEndian.Uint64(raw[off+4:]) != uint64(off) {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(raw[off+12:])
	if n > maxPayload {
		return nil, 0, false
	}
	frameLen = frameOverhead + int(n)
	if off+frameLen > len(raw) {
		return nil, 0, false
	}
	body := raw[off+4 : off+frameHeader+int(n)]
	crc := binary.LittleEndian.Uint32(raw[off+frameHeader+int(n):])
	if crc32.ChecksumIEEE(body) != crc {
		return nil, 0, false
	}
	return raw[off+frameHeader : off+frameHeader+int(n)], frameLen, true
}
