package wal

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faults"
	"repro/internal/murmur3"
	"repro/internal/pfs"
)

func newTestStore(t *testing.T) *pfs.Store {
	t.Helper()
	store, err := pfs.NewStore(t.TempDir(), pfs.NVMeModel())
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// jobRecords is a full lifecycle for one job.
func jobRecords(job uint64, exit int) []Record {
	base := Record{
		Job: job, Tenant: "t1", Kind: "compare",
		Names:   []string{"runA/iter0010.rank000.ckpt", "runB/iter0010.rank000.ckpt"},
		Epsilon: 1e-6, ChunkSize: 64 << 10, ToolVersion: ToolVersion,
	}
	acc := base
	acc.Type = TypeAccepted
	st := base
	st.Type = TypeStarted
	v := base
	v.Type = TypeVerdict
	v.Exit = exit
	v.DiffCount = 7
	v.Roots = []murmur3.Digest{{1, 2}, {3, 4}}
	return []Record{acc, st, v}
}

func appendAll(t *testing.T, j *Journal, recs []Record) []Record {
	t.Helper()
	out := make([]Record, 0, len(recs))
	for _, r := range recs {
		got, err := j.Append(r)
		if err != nil {
			t.Fatalf("append %v: %v", r.Type, err)
		}
		out = append(out, got)
	}
	return out
}

func TestJournalRoundTrip(t *testing.T) {
	ctx := context.Background()
	store := newTestStore(t)
	j, rep, err := Open(ctx, store, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 0 || j.Seq() != 0 {
		t.Fatalf("fresh journal not empty: %+v seq %d", rep, j.Seq())
	}
	want := appendAll(t, j, jobRecords(1, 2))
	if j.Cost().Ops == 0 {
		t.Fatal("appends priced no storage ops")
	}

	j2, rep2, err := Open(ctx, store, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Records) != len(want) || rep2.Holes != 0 || rep2.TornTailBytes != 0 {
		t.Fatalf("replay: %d records, %d holes, %d torn", len(rep2.Records), rep2.Holes, rep2.TornTailBytes)
	}
	for i, got := range rep2.Records {
		w := want[i]
		if got.Seq != w.Seq || got.Prev != w.Prev || got.Digest != w.Digest ||
			got.Type != w.Type || got.Job != w.Job || got.Tenant != w.Tenant ||
			got.Kind != w.Kind || len(got.Names) != len(w.Names) ||
			got.Epsilon != w.Epsilon || got.ChunkSize != w.ChunkSize ||
			got.Exit != w.Exit || got.DiffCount != w.DiffCount || len(got.Roots) != len(w.Roots) {
			t.Fatalf("record %d: got %+v want %+v", i, got, w)
		}
	}
	// Chain linkage is explicit: each Prev is the predecessor's Digest.
	for i := 1; i < len(rep2.Records); i++ {
		if rep2.Records[i].Prev != rep2.Records[i-1].Digest {
			t.Fatalf("record %d does not chain", i)
		}
	}
	// The reopened journal continues the same chain.
	if j2.Seq() != want[len(want)-1].Seq || j2.Head() != want[len(want)-1].Digest {
		t.Fatal("reopened journal lost the chain head")
	}
	more := appendAll(t, j2, jobRecords(2, 0))
	if more[0].Prev != want[len(want)-1].Digest {
		t.Fatal("cross-life append does not chain from the replayed head")
	}

	vrep, err := Verify(ctx, store, "")
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if vrep.Records != 6 || vrep.Jobs != 2 || vrep.Verdicts != 2 ||
		len(vrep.PendingJobs) != 0 || len(vrep.DuplicateVerdicts) != 0 {
		t.Fatalf("verify report: %+v", vrep)
	}
}

func TestJournalRejectsPresetChainFields(t *testing.T) {
	ctx := context.Background()
	store := newTestStore(t)
	j, _, err := Open(ctx, store, "")
	if err != nil {
		t.Fatal(err)
	}
	r := Record{Type: TypeAccepted, Job: 1, Seq: 5}
	if _, err := j.Append(r); err == nil {
		t.Fatal("append accepted a caller-set Seq")
	}
	r = Record{Type: TypeAccepted, Job: 1, Prev: murmur3.Digest{9}}
	if _, err := j.Append(r); err == nil {
		t.Fatal("append accepted a caller-set Prev")
	}
}

func TestJournalTornTailAndHoleResync(t *testing.T) {
	ctx := context.Background()
	store := newTestStore(t)
	j, _, err := Open(ctx, store, "")
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, jobRecords(1, 0))

	// Tear the next append mid-frame: a 7-byte prefix persists.
	store.SetFaultHook(faults.New(1, faults.Rule{Kind: faults.TornWrite, Name: "journal", Keep: 7}))
	if _, err := j.Append(Record{Type: TypeAccepted, Job: 2, Kind: "compare", Names: []string{"a", "b"}}); err == nil {
		t.Fatal("torn append reported success")
	}
	// The journal is wedged: later appends fail without touching disk.
	if _, err := j.Append(Record{Type: TypeStarted, Job: 2}); !errors.Is(err, ErrWedged) {
		t.Fatalf("append after failure: %v, want ErrWedged", err)
	}
	store.SetFaultHook(nil)

	// Restart: the torn frame is a visible torn tail, the chain is intact.
	j2, rep, err := Open(ctx, store, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 3 || rep.TornTailBytes != 7 || rep.Holes != 0 {
		t.Fatalf("replay after tear: %d records, torn %d, holes %d", len(rep.Records), rep.TornTailBytes, rep.Holes)
	}
	// The next life appends past the torn bytes; the hole stays skippable.
	appendAll(t, j2, jobRecords(2, 0))
	j3, rep3, err := Open(ctx, store, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep3.Records) != 6 || rep3.Holes != 1 || rep3.TornTailBytes != 0 {
		t.Fatalf("replay across hole: %d records, holes %d, torn %d", len(rep3.Records), rep3.Holes, rep3.TornTailBytes)
	}
	if _, err := Verify(ctx, store, ""); err != nil {
		t.Fatalf("verify across hole: %v", err)
	}
	_ = j3
}

// journalPath is the journal's real filesystem path, for direct
// tampering in tests.
func journalPath(store *pfs.Store) string {
	return filepath.Join(store.Root(), filepath.FromSlash(DefaultName))
}

func TestJournalTamperDetected(t *testing.T) {
	ctx := context.Background()
	store := newTestStore(t)
	j, _, err := Open(ctx, store, "")
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, jobRecords(1, 0))
	firstLen := j.Size()
	appendAll(t, j, jobRecords(2, 2))
	_ = firstLen

	// Flip one byte inside the FIRST record's payload. Its CRC fails, it
	// is skipped as damage — and then record 2 no longer chains from
	// anything valid, which is the tamper signal.
	path := journalPath(store)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[frameHeader+2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(ctx, store, ""); !errors.Is(err, ErrTampered) {
		t.Fatalf("open tampered journal: %v, want ErrTampered", err)
	}
	if _, err := Verify(ctx, store, ""); !errors.Is(err, ErrTampered) {
		t.Fatalf("verify tampered journal: %v, want ErrTampered", err)
	}
}

func TestJournalTamperedFinalRecordDropsVisibly(t *testing.T) {
	// A flipped byte in the FINAL record is indistinguishable from a
	// torn tail (no successor binds it): the record drops, but visibly —
	// TornTailBytes is non-zero and the verdict disappears from the
	// chain, it never silently changes.
	ctx := context.Background()
	store := newTestStore(t)
	j, _, err := Open(ctx, store, "")
	if err != nil {
		t.Fatal(err)
	}
	recs := appendAll(t, j, jobRecords(1, 0))
	path := journalPath(store)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-6] ^= 0x01 // inside the final record's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep, err := Open(ctx, store, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != len(recs)-1 || rep.TornTailBytes == 0 {
		t.Fatalf("tampered final record: %d records, torn %d — the drop must be visible",
			len(rep.Records), rep.TornTailBytes)
	}
}

func TestJournalBitFlipOnReadDetected(t *testing.T) {
	// A bit flip injected on the read path (faults.BitFlip) corrupts the
	// replay buffer, not the disk: replay must either fail the chain or
	// visibly drop records — never return the full clean chain.
	ctx := context.Background()
	store := newTestStore(t)
	j, _, err := Open(ctx, store, "")
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, jobRecords(1, 0))
	appendAll(t, j, jobRecords(2, 2))

	store.SetFaultHook(faults.New(7, faults.Rule{Kind: faults.BitFlip, Name: "journal"}))
	_, rep, err := Open(ctx, store, "")
	store.SetFaultHook(nil)
	if err == nil && len(rep.Records) == 6 && rep.Holes == 0 && rep.TornTailBytes == 0 {
		t.Fatal("bit-flipped replay passed as fully clean")
	}
}

func TestClassify(t *testing.T) {
	ctx := context.Background()
	store := newTestStore(t)
	j, _, err := Open(ctx, store, "")
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, jobRecords(3, 2))     // completed
	appendAll(t, j, jobRecords(5, 0)[:2]) // accepted + started, no verdict
	appendAll(t, j, jobRecords(6, 0)[:1]) // accepted only
	_, rep, err := Open(ctx, store, "")
	if err != nil {
		t.Fatal(err)
	}
	cls := Classify(rep.Records)
	if cls.MaxJob != 6 {
		t.Fatalf("MaxJob = %d", cls.MaxJob)
	}
	if len(cls.Verdicts) != 1 || cls.Verdicts[3].Exit != 2 {
		t.Fatalf("verdicts: %+v", cls.Verdicts)
	}
	if len(cls.Pending) != 2 || cls.Pending[0].Job != 5 || cls.Pending[1].Job != 6 {
		t.Fatalf("pending: %+v", cls.Pending)
	}
	vrep, err := Verify(ctx, store, "")
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(vrep.PendingJobs) != 2 {
		t.Fatalf("verify pending: %+v", vrep.PendingJobs)
	}
}
